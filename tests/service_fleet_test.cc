// Multi-scenario shard plane tests. The suite names carry "Fleet" so the
// scripts/ci.sh sanitizer legs (-R 'Service|Concurrency|Fleet') run them —
// the register/serve/drain stress test below is the TSan/ASan coverage of
// the ShardRouter / background-warm-up / fleet-ServeBatch interplay.
//
// Covered contracts:
//   * a mixed-scenario batch through MalivaFleet is byte-identical at every
//     fleet thread count, and each shard's slice equals the shard's own
//     standalone ServeBatch (per-shard determinism survives routing);
//   * a single-shard fleet is a drop-in MalivaService (empty routing keys);
//   * routing errors: empty/duplicate ids rejected at registration, unknown
//     keys are NotFound listing every registered scenario;
//   * per-shard ServiceConfig overrides layer over fleet defaults and are
//     Validate()d at registration;
//   * lifecycle: background warm-up reaches Ready, Drain refuses new serves
//     while Evict requires a prior drain, and stats stay per-shard.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/service_fleet.h"

namespace maliva {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig twitter;
    twitter.kind = DatasetKind::kTwitter;
    twitter.num_rows = 12000;
    twitter.num_queries = 80;
    twitter.tau_ms = 500.0;
    twitter.seed = 91;
    twitter_ = new Scenario(BuildScenario(twitter));

    ScenarioConfig taxi;
    taxi.kind = DatasetKind::kTaxi;
    taxi.num_rows = 12000;
    taxi.num_queries = 80;
    taxi.tau_ms = 1000.0;
    taxi.seed = 92;
    taxi_ = new Scenario(BuildScenario(taxi));
  }
  static void TearDownTestSuite() {
    delete twitter_;
    twitter_ = nullptr;
    delete taxi_;
    taxi_ = nullptr;
  }

  /// Cheap training so agent strategies build in-test.
  static ServiceConfig SmallConfig() {
    return ServiceConfig().WithTrainerIterations(3).WithAgentSeeds(1);
  }

  /// Fleet over SmallConfig, warming only the strategies the tests use.
  static FleetConfig SmallFleetConfig(size_t threads = 0) {
    return FleetConfig()
        .WithDefaults(SmallConfig())
        .WithNumThreads(threads)
        .WithWarmupStrategies({"mdp/accurate", "baseline", "naive"});
  }

  /// Mixed twitter/taxi requests with mixed strategies.
  static std::vector<RewriteRequest> MixedRequests(size_t n) {
    std::vector<RewriteRequest> requests;
    requests.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      RewriteRequest req;
      if (i % 3 == 0) {
        req.scenario = "taxi";
        req.query = taxi_->evaluation[i % taxi_->evaluation.size()];
      } else {
        req.scenario = "twitter";
        req.query = twitter_->evaluation[i % twitter_->evaluation.size()];
      }
      req.strategy = (i % 4 == 1) ? "baseline" : (i % 4 == 3) ? "naive" : "mdp/accurate";
      if (i % 5 == 0) req.tau_ms = 300.0 + 40.0 * static_cast<double>(i % 7);
      requests.push_back(req);
    }
    return requests;
  }

  static void ExpectSameDecision(const Result<RewriteResponse>& a,
                                 const Result<RewriteResponse>& b) {
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code());
      return;
    }
    const RewriteResponse& ra = a.value();
    const RewriteResponse& rb = b.value();
    EXPECT_EQ(ra.strategy, rb.strategy);
    EXPECT_EQ(ra.rewritten_sql, rb.rewritten_sql);
    EXPECT_EQ(ra.outcome.option_index, rb.outcome.option_index);
    EXPECT_EQ(ra.outcome.planning_ms, rb.outcome.planning_ms);
    EXPECT_EQ(ra.outcome.exec_ms, rb.outcome.exec_ms);
    EXPECT_EQ(ra.outcome.total_ms, rb.outcome.total_ms);
    EXPECT_EQ(ra.outcome.viable, rb.outcome.viable);
    EXPECT_EQ(ra.outcome.steps, rb.outcome.steps);
    EXPECT_EQ(ra.outcome.quality, rb.outcome.quality);
  }

  static Scenario* twitter_;
  static Scenario* taxi_;
};

Scenario* FleetTest::twitter_ = nullptr;
Scenario* FleetTest::taxi_ = nullptr;

TEST_F(FleetTest, MixedBatchByteIdenticalAcrossThreadCountsAndStandalone) {
  std::vector<RewriteRequest> requests = MixedRequests(24);
  std::vector<Result<RewriteResponse>> reference;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    MalivaFleet fleet(SmallFleetConfig(threads));
    ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
    ASSERT_TRUE(fleet.RegisterScenario("taxi", taxi_).ok());
    fleet.WaitWarmups();
    std::vector<Result<RewriteResponse>> responses = fleet.ServeBatch(requests);
    ASSERT_EQ(responses.size(), requests.size());
    for (const Result<RewriteResponse>& resp : responses) {
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    }
    if (threads == 1) {
      reference = std::move(responses);
    } else {
      for (size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE(i);
        ExpectSameDecision(reference[i], responses[i]);
      }
    }
  }

  // Each shard's slice must equal the shard's own standalone service serving
  // the slice as a batch: routing adds requests from other scenarios in
  // between, but per-shard session indices (and so every byte) are
  // unchanged. Identical training seeds make the services interchangeable.
  for (const char* id : {"twitter", "taxi"}) {
    SCOPED_TRACE(id);
    std::vector<RewriteRequest> slice;
    std::vector<const Result<RewriteResponse>*> fleet_slice;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].scenario == id) {
        slice.push_back(requests[i]);
        fleet_slice.push_back(&reference[i]);
      }
    }
    ASSERT_FALSE(slice.empty());
    Scenario* scenario = std::string(id) == "twitter" ? twitter_ : taxi_;
    MalivaService standalone(scenario, SmallConfig().WithNumThreads(2));
    std::vector<Result<RewriteResponse>> expected = standalone.ServeBatch(slice);
    for (size_t i = 0; i < slice.size(); ++i) {
      SCOPED_TRACE(i);
      ExpectSameDecision(expected[i], *fleet_slice[i]);
    }
  }
}

TEST_F(FleetTest, SingleShardFleetServesEmptyRoutingKeys) {
  MalivaFleet fleet(SmallFleetConfig());
  ASSERT_TRUE(fleet.RegisterScenario("only", twitter_).ok());
  fleet.WaitWarmups();
  MalivaService standalone(twitter_, SmallConfig());

  // Ported single-service callers: no scenario field, same responses.
  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 6; ++i) {
    RewriteRequest req;
    req.query = twitter_->evaluation[i];
    req.strategy = (i % 2 == 0) ? "mdp/accurate" : "baseline";
    requests.push_back(req);
  }
  std::vector<Result<RewriteResponse>> through_fleet = fleet.ServeBatch(requests);
  std::vector<Result<RewriteResponse>> direct = standalone.ServeBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameDecision(direct[i], through_fleet[i]);
  }
  ExpectSameDecision(standalone.Serve(requests[0]), fleet.Serve(requests[0]));

  // A second scenario makes the empty key ambiguous.
  ASSERT_TRUE(fleet.RegisterScenario("second", taxi_).ok());
  Result<RewriteResponse> ambiguous = fleet.Serve(requests[0]);
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(ambiguous.status().message().find("only"), std::string::npos);
  EXPECT_NE(ambiguous.status().message().find("second"), std::string::npos);
}

TEST_F(FleetTest, UnknownScenarioIsNotFoundListingRegistered) {
  MalivaFleet fleet(SmallFleetConfig());
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  ASSERT_TRUE(fleet.RegisterScenario("taxi", taxi_).ok());

  RewriteRequest req;
  req.query = twitter_->evaluation[0];
  req.scenario = "definitely/not-a-scenario";
  req.strategy = "baseline";
  Result<RewriteResponse> resp = fleet.Serve(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), Status::Code::kNotFound);
  // The message lists every registered scenario (KnownStrategies ergonomics).
  EXPECT_NE(resp.status().message().find("taxi"), std::string::npos);
  EXPECT_NE(resp.status().message().find("twitter"), std::string::npos);

  EXPECT_EQ(fleet.ServiceFor("nope").status().code(), Status::Code::kNotFound);
  EXPECT_EQ(fleet.DrainScenario("nope").code(), Status::Code::kNotFound);
  EXPECT_EQ(fleet.EvictScenario("nope").code(), Status::Code::kNotFound);
  EXPECT_EQ(fleet.Stats().routing_errors, 1u);  // only the Serve counts
}

TEST_F(FleetTest, DuplicateAndEmptyScenarioIdsAreRejected) {
  MalivaFleet fleet(SmallFleetConfig());
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());

  Status dup = fleet.RegisterScenario("twitter", taxi_);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(dup.message().find("already registered"), std::string::npos);

  Status empty = fleet.RegisterScenario("", taxi_);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.code(), Status::Code::kInvalidArgument);

  Status null_scenario = fleet.RegisterScenario("null", nullptr);
  ASSERT_FALSE(null_scenario.ok());
  EXPECT_EQ(null_scenario.code(), Status::Code::kInvalidArgument);

  // The failed registrations left nothing behind.
  EXPECT_EQ(fleet.ListScenarios().size(), 1u);
}

TEST_F(FleetTest, PerShardOverridesLayerOverFleetDefaultsAndAreValidated) {
  FleetConfig config = SmallFleetConfig();
  config.defaults.WithDefaultStrategy("baseline");
  MalivaFleet fleet(config);
  ASSERT_TRUE(fleet.RegisterScenario("plain", twitter_).ok());
  ASSERT_TRUE(fleet.RegisterScenario("tuned", taxi_, [](ServiceConfig& c) {
    c.WithDefaultStrategy("naive").WithCrossRequestCache(true);
  }).ok());

  // The overridden shard serves its own default strategy and runs its own
  // knowledge plane; the plain shard keeps the fleet defaults.
  RewriteRequest plain;
  plain.scenario = "plain";
  plain.query = twitter_->evaluation[0];
  Result<RewriteResponse> plain_resp = fleet.Serve(plain);
  ASSERT_TRUE(plain_resp.ok()) << plain_resp.status().ToString();
  EXPECT_EQ(plain_resp.value().strategy, "baseline");

  RewriteRequest tuned;
  tuned.scenario = "tuned";
  tuned.query = taxi_->evaluation[0];
  Result<RewriteResponse> tuned_resp = fleet.Serve(tuned);
  ASSERT_TRUE(tuned_resp.ok()) << tuned_resp.status().ToString();
  EXPECT_EQ(tuned_resp.value().strategy, "naive");

  Result<std::shared_ptr<const MalivaService>> tuned_service = fleet.ServiceFor("tuned");
  ASSERT_TRUE(tuned_service.ok());
  EXPECT_TRUE(tuned_service.value()->config().cross_request_cache);
  Result<std::shared_ptr<const MalivaService>> plain_service = fleet.ServiceFor("plain");
  ASSERT_TRUE(plain_service.ok());
  EXPECT_FALSE(plain_service.value()->config().cross_request_cache);

  // An override that produces an invalid ServiceConfig is rejected at
  // registration (the chokepoint), and registers nothing.
  Status bad = fleet.RegisterScenario("broken", twitter_,
                                      [](ServiceConfig& c) { c.WithBeta(7.0); });
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(fleet.ListScenarios().size(), 2u);
  EXPECT_EQ(fleet.ServiceFor("broken").status().code(), Status::Code::kNotFound);
}

TEST_F(FleetTest, BackgroundWarmupReachesReadyAndIsObservable) {
  MalivaFleet fleet(SmallFleetConfig());
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  fleet.WaitWarmups();
  std::vector<ScenarioInfo> scenarios = fleet.ListScenarios();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].id, "twitter");
  EXPECT_EQ(scenarios[0].state, ShardState::kReady);
  EXPECT_TRUE(scenarios[0].warmup.ok()) << scenarios[0].warmup.ToString();
  EXPECT_EQ(scenarios[0].dataset, std::string("Twitter"));

  // Warmed strategies serve without paying lazy-build latency; verify the
  // strategy is already resident via the underlying service.
  Result<std::shared_ptr<const MalivaService>> service = fleet.ServiceFor("twitter");
  ASSERT_TRUE(service.ok());
  Result<const Rewriter*> warmed = service.value()->GetRewriter("mdp/accurate");
  ASSERT_TRUE(warmed.ok());

  // warmup_threads = 0: no background pool, shards are Ready immediately
  // and build lazily (the standalone-service behavior).
  MalivaFleet lazy(SmallFleetConfig().WithWarmupThreads(0));
  ASSERT_TRUE(lazy.RegisterScenario("taxi", taxi_).ok());
  std::vector<ScenarioInfo> lazy_scenarios = lazy.ListScenarios();
  ASSERT_EQ(lazy_scenarios.size(), 1u);
  EXPECT_EQ(lazy_scenarios[0].state, ShardState::kReady);
  RewriteRequest req;
  req.scenario = "taxi";
  req.query = taxi_->evaluation[0];
  req.strategy = "baseline";
  EXPECT_TRUE(lazy.Serve(req).ok());
}

TEST_F(FleetTest, DrainRefusesNewServesAndEvictRequiresDrain) {
  MalivaFleet fleet(SmallFleetConfig());
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  ASSERT_TRUE(fleet.RegisterScenario("taxi", taxi_).ok());
  fleet.WaitWarmups();

  RewriteRequest req;
  req.scenario = "taxi";
  req.query = taxi_->evaluation[0];
  req.strategy = "baseline";
  ASSERT_TRUE(fleet.Serve(req).ok());

  // Evicting a serving shard is refused: drain first.
  Status premature = fleet.EvictScenario("taxi");
  ASSERT_FALSE(premature.ok());
  EXPECT_EQ(premature.code(), Status::Code::kFailedPrecondition);

  ASSERT_TRUE(fleet.DrainScenario("taxi").ok());
  ASSERT_TRUE(fleet.DrainScenario("taxi").ok());  // idempotent
  Result<RewriteResponse> refused = fleet.Serve(req);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kFailedPrecondition);
  std::vector<ScenarioInfo> scenarios = fleet.ListScenarios();
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].id, "taxi");
  EXPECT_EQ(scenarios[0].state, ShardState::kDraining);

  // The other shard is untouched throughout.
  RewriteRequest other;
  other.scenario = "twitter";
  other.query = twitter_->evaluation[0];
  other.strategy = "baseline";
  ASSERT_TRUE(fleet.Serve(other).ok());

  ASSERT_TRUE(fleet.EvictScenario("taxi").ok());
  EXPECT_EQ(fleet.Serve(req).status().code(), Status::Code::kNotFound);
  EXPECT_EQ(fleet.EvictScenario("taxi").code(), Status::Code::kNotFound);
  EXPECT_EQ(fleet.ListScenarios().size(), 1u);
  ASSERT_TRUE(fleet.Serve(other).ok());
}

TEST_F(FleetTest, StatsStayPerShardAndAggregate) {
  MalivaFleet fleet(SmallFleetConfig());
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  ASSERT_TRUE(fleet.RegisterScenario("taxi", taxi_, [](ServiceConfig& c) {
    c.WithCrossRequestCache(true);
  }).ok());
  fleet.WaitWarmups();

  // Traffic to the taxi shard only.
  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 10; ++i) {
    RewriteRequest req;
    req.scenario = "taxi";
    req.query = taxi_->evaluation[i % taxi_->evaluation.size()];
    req.strategy = "mdp/accurate";
    requests.push_back(req);
  }
  for (const Result<RewriteResponse>& resp : fleet.ServeBatch(requests)) {
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  }

  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.scenarios, 2u);
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_EQ(stats.shards[0].first, "taxi");
  EXPECT_EQ(stats.shards[1].first, "twitter");
  EXPECT_EQ(stats.shards[0].second.requests, 10u);
  EXPECT_GT(stats.shards[0].second.store_size, 0u);  // its own knowledge plane
  EXPECT_EQ(stats.shards[1].second.requests, 0u);    // idle shard stays zero
  EXPECT_EQ(stats.shards[1].second.store_size, 0u);
  EXPECT_EQ(stats.totals.requests, 10u);
  EXPECT_EQ(stats.totals.store_size, stats.shards[0].second.store_size);
  EXPECT_EQ(stats.routing_errors, 0u);
}

TEST_F(FleetTest, FleetConfigValidateRejectsPathologies) {
  // Fleet-level thread wrap-arounds and defective defaults surface from
  // every entry point, not as silent clamps.
  for (FleetConfig config :
       {FleetConfig().WithNumThreads(static_cast<size_t>(-1)),
        FleetConfig().WithWarmupThreads(static_cast<size_t>(-1)),
        FleetConfig().WithDefaults(ServiceConfig().WithBeta(7.0))}) {
    Status st = config.Validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);

    MalivaFleet fleet(config);
    EXPECT_EQ(fleet.RegisterScenario("twitter", twitter_).code(),
              Status::Code::kInvalidArgument);
    RewriteRequest req;
    req.query = twitter_->evaluation[0];
    EXPECT_EQ(fleet.Serve(req).status().code(), Status::Code::kInvalidArgument);
  }
  EXPECT_TRUE(FleetConfig().Validate().ok());
}

class FleetConcurrencyTest : public FleetTest {};

TEST_F(FleetConcurrencyTest, ConcurrentRegisterServeDrainStress) {
  // A stable shard serves from 4 threads while the main thread churns other
  // shards through the full lifecycle (register -> background warm-up ->
  // drain -> evict). Stable serves must never fail; churn serves may see
  // any lifecycle answer but must never crash or deadlock. This is the
  // suite's TSan/ASan leg.
  MalivaFleet fleet(SmallFleetConfig().WithNumThreads(4));
  ASSERT_TRUE(fleet.RegisterScenario("stable", twitter_).ok());
  fleet.WaitWarmups();

  std::atomic<bool> stop{false};
  std::atomic<size_t> stable_failures{0};
  std::atomic<size_t> stable_served{0};
  std::vector<std::thread> servers;
  for (int t = 0; t < 4; ++t) {
    servers.emplace_back([this, &fleet, &stop, &stable_failures, &stable_served, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        RewriteRequest req;
        req.scenario = "stable";
        req.query = twitter_->evaluation[i++ % twitter_->evaluation.size()];
        req.strategy = (i % 2 == 0) ? "mdp/accurate" : "baseline";
        if (fleet.Serve(req).ok()) {
          stable_served.fetch_add(1, std::memory_order_relaxed);
        } else {
          stable_failures.fetch_add(1, std::memory_order_relaxed);
        }
        // A churn-shard request races registration/drain/evict: OK,
        // FailedPrecondition (draining), and NotFound (evicted/not yet
        // registered) are all legal; anything else is a bug.
        RewriteRequest churn;
        churn.scenario = "churn";
        churn.query = taxi_->evaluation[i % taxi_->evaluation.size()];
        churn.strategy = "baseline";
        Result<RewriteResponse> resp = fleet.Serve(churn);
        if (!resp.ok()) {
          Status::Code code = resp.status().code();
          if (code != Status::Code::kNotFound &&
              code != Status::Code::kFailedPrecondition) {
            stable_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Churn failures are collected, not ASSERTed mid-loop: an early return
  // with the server threads still joinable would std::terminate the whole
  // test binary instead of failing this test.
  Status churn_error;
  for (int round = 0; round < 8 && churn_error.ok(); ++round) {
    churn_error = fleet.RegisterScenario("churn", taxi_);
    if (!churn_error.ok()) break;
    RewriteRequest req;
    req.scenario = "churn";
    req.query = taxi_->evaluation[0];
    req.strategy = "baseline";
    (void)fleet.Serve(req);  // may race the drain below; any Status is fine
    churn_error = fleet.DrainScenario("churn");
    if (!churn_error.ok()) break;
    churn_error = fleet.EvictScenario("churn");
  }
  fleet.WaitWarmups();  // scheduled churn warm-ups finish against live shards
  // On a starved scheduler the churn loop can finish before any server
  // thread ran; hold the stop until at least one stable serve landed. A
  // stable *failure* also ends the wait — otherwise the very regression
  // this test guards against would hang here instead of failing below.
  while (stable_served.load(std::memory_order_relaxed) == 0 &&
         stable_failures.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& server : servers) server.join();

  EXPECT_TRUE(churn_error.ok()) << churn_error.ToString();
  EXPECT_EQ(stable_failures.load(), 0u);
  EXPECT_GT(stable_served.load(), 0u);
  std::vector<ScenarioInfo> scenarios = fleet.ListScenarios();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].id, "stable");
  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.shards.size(), 1u);
  EXPECT_GE(stats.shards[0].second.requests, stable_served.load());
}

}  // namespace
}  // namespace maliva
