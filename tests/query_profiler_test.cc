// QueryProfiler unit tests (ISSUE 9): guard semantics, aggregation, and the
// zero-overhead-when-disabled contract, all on an injected counting clock so
// every expectation is exact (no real timers, no flakiness).

#include "util/query_profiler.h"

#include <gtest/gtest.h>

namespace maliva {
namespace {

// Injected clock: advances 1ms per read and counts its reads, so tests can
// assert both exact span arithmetic and "the off path never reads a clock".
int64_t g_clock_reads = 0;
double CountingClock() { return static_cast<double>(g_clock_reads++); }

class QueryProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { g_clock_reads = 0; }
};

TEST_F(QueryProfilerTest, DisabledProfilerNeverReadsClock) {
  QueryProfiler off(&CountingClock, /*enabled=*/false);
  EXPECT_FALSE(off.enabled());
  off.StartTimer(QueryProfiler::kSearch);
  EXPECT_EQ(off.StopTimer(QueryProfiler::kSearch), 0.0);
  EXPECT_FALSE(off.Pause(QueryProfiler::kSearch));
  off.Resume(QueryProfiler::kSearch);
  off.AddCachedMs(QueryProfiler::kSearch, 5.0);
  {
    ProfilerSimpleGuard guard(&off, QueryProfiler::kSignature);
    ProfilerStoppingGuard stopping(&off, QueryProfiler::kSignature);
  }
  ProfileBreakdown snap = off.Snapshot();
  for (int p = 0; p < ProfileBreakdown::kNumPhases; ++p) {
    EXPECT_EQ(snap.phases[p].total_ms, 0.0);
    EXPECT_EQ(snap.phases[p].cached_ms, 0.0);
    EXPECT_EQ(snap.phases[p].count, 0u);
  }
  EXPECT_EQ(g_clock_reads, 0) << "disabled profiler read the clock";
}

TEST_F(QueryProfilerTest, DefaultConstructedIsDisabled) {
  QueryProfiler off;
  EXPECT_FALSE(off.enabled());
  off.StartTimer(QueryProfiler::kRender);
  EXPECT_EQ(off.StopTimer(QueryProfiler::kRender), 0.0);
}

TEST_F(QueryProfilerTest, NullProfilerGuardsAreNoOps) {
  // The serve path's convention: profiling off = null pointer, guards no-op.
  ProfilerSimpleGuard simple(nullptr, QueryProfiler::kSearch);
  ProfilerStoppingGuard stopping(nullptr, QueryProfiler::kSearch);
  ProfilerRunningGuard running(nullptr, QueryProfiler::kSearch, nullptr);
  EXPECT_EQ(g_clock_reads, 0);
}

TEST_F(QueryProfilerTest, SimpleGuardMeasuresExactSpan) {
  QueryProfiler prof(&CountingClock);
  {
    ProfilerSimpleGuard guard(&prof, QueryProfiler::kSignature);
    // Clock read once at start; the next read (at stop) is 1ms later.
  }
  ProfileBreakdown snap = prof.Snapshot();
  EXPECT_EQ(snap.phases[QueryProfiler::kSignature].total_ms, 1.0);
  EXPECT_EQ(snap.phases[QueryProfiler::kSignature].count, 1u);
  EXPECT_EQ(g_clock_reads, 2);
}

TEST_F(QueryProfilerTest, StopTimerReturnsSpanForReattribution) {
  QueryProfiler prof(&CountingClock);
  prof.StartTimer(QueryProfiler::kCacheProbe);
  double span = prof.StopTimer(QueryProfiler::kCacheProbe);
  EXPECT_EQ(span, 1.0);
  prof.AddCachedMs(QueryProfiler::kCacheProbe, span);
  ProfileBreakdown snap = prof.Snapshot();
  EXPECT_EQ(snap.phases[QueryProfiler::kCacheProbe].total_ms, 1.0);
  EXPECT_EQ(snap.phases[QueryProfiler::kCacheProbe].cached_ms, 1.0);
}

TEST_F(QueryProfilerTest, DistinctPhasesNest) {
  QueryProfiler prof(&CountingClock);
  prof.StartTimer(QueryProfiler::kSearch);        // t=0
  prof.StartTimer(QueryProfiler::kSelectivity);   // t=1
  prof.StopTimer(QueryProfiler::kSelectivity);    // t=2 -> ladder 1ms
  prof.StopTimer(QueryProfiler::kSearch);         // t=3 -> search 3ms
  ProfileBreakdown snap = prof.Snapshot();
  EXPECT_EQ(snap.TotalMs(QueryProfiler::kSearch), 3.0);
  EXPECT_EQ(snap.TotalMs(QueryProfiler::kSelectivity), 1.0);
  // Self time subtracts the nested ladder back out.
  EXPECT_EQ(snap.SelfMs(QueryProfiler::kSearch), 2.0);
  EXPECT_EQ(snap.SelfMs(QueryProfiler::kSelectivity), 1.0);
  // Top-level bill counts the ladder once (inside search).
  EXPECT_EQ(snap.TopLevelMs(), 3.0);
}

TEST_F(QueryProfilerTest, StoppingGuardExcludesItsScope) {
  QueryProfiler prof(&CountingClock);
  prof.StartTimer(QueryProfiler::kSearch);  // t=0
  {
    ProfilerStoppingGuard pause(&prof, QueryProfiler::kSearch);  // banks t=1-0
    // 0 reads here belong to kSearch.
  }                                          // resumes at t=2
  prof.StopTimer(QueryProfiler::kSearch);    // t=3: banks another 1ms
  ProfileBreakdown snap = prof.Snapshot();
  EXPECT_EQ(snap.TotalMs(QueryProfiler::kSearch), 2.0);
  // Pause/Resume does not double-count the span.
  EXPECT_EQ(snap.phases[QueryProfiler::kSearch].count, 1u);
}

TEST_F(QueryProfilerTest, StoppingGuardIsNoOpWhenPhaseIdle) {
  QueryProfiler prof(&CountingClock);
  {
    ProfilerStoppingGuard pause(&prof, QueryProfiler::kSearch);
  }
  EXPECT_EQ(prof.Snapshot().TotalMs(QueryProfiler::kSearch), 0.0);
  EXPECT_EQ(g_clock_reads, 0);
}

TEST_F(QueryProfilerTest, RunningGuardFoldsChildIntoParent) {
  QueryProfiler parent(&CountingClock);
  QueryProfiler child(&CountingClock);
  parent.StartTimer(QueryProfiler::kSearch);  // t=0
  {
    ProfilerRunningGuard fold(&parent, QueryProfiler::kSearch, &child);  // pause t=1
    child.StartTimer(QueryProfiler::kSelectivity);  // t=2
    child.StopTimer(QueryProfiler::kSelectivity);   // t=3
  }  // folds child, resumes parent at t=4
  parent.StopTimer(QueryProfiler::kSearch);  // t=5
  ProfileBreakdown snap = parent.Snapshot();
  // Search saw 1ms before the pause + 1ms after the resume.
  EXPECT_EQ(snap.TotalMs(QueryProfiler::kSearch), 2.0);
  // The child's ladder span arrived via operator+=.
  EXPECT_EQ(snap.TotalMs(QueryProfiler::kSelectivity), 1.0);
  EXPECT_EQ(snap.phases[QueryProfiler::kSelectivity].count, 1u);
}

TEST_F(QueryProfilerTest, OperatorPlusEqualsAggregates) {
  QueryProfiler a(&CountingClock);
  QueryProfiler b(&CountingClock);
  a.StartTimer(QueryProfiler::kRender);
  a.StopTimer(QueryProfiler::kRender);
  b.StartTimer(QueryProfiler::kRender);
  b.StopTimer(QueryProfiler::kRender);
  b.AddCachedMs(QueryProfiler::kRender, 0.5);
  int64_t reads_before = g_clock_reads;
  a += b;
  EXPECT_EQ(g_clock_reads, reads_before) << "operator+= must be pure arithmetic";
  ProfileBreakdown snap = a.Snapshot();
  EXPECT_EQ(snap.TotalMs(QueryProfiler::kRender), 2.0);
  EXPECT_EQ(snap.phases[QueryProfiler::kRender].cached_ms, 0.5);
  EXPECT_EQ(snap.phases[QueryProfiler::kRender].count, 2u);
}

TEST_F(QueryProfilerTest, BreakdownOperatorPlusEquals) {
  ProfileBreakdown a;
  a.phases[ProfileBreakdown::kSearch] = {3.0, 1.0, 2};
  ProfileBreakdown b;
  b.phases[ProfileBreakdown::kSearch] = {2.0, 0.5, 1};
  b.phases[ProfileBreakdown::kRender] = {1.0, 0.0, 1};
  a += b;
  EXPECT_EQ(a.phases[ProfileBreakdown::kSearch].total_ms, 5.0);
  EXPECT_EQ(a.phases[ProfileBreakdown::kSearch].cached_ms, 1.5);
  EXPECT_EQ(a.phases[ProfileBreakdown::kSearch].count, 3u);
  EXPECT_EQ(a.phases[ProfileBreakdown::kRender].total_ms, 1.0);
}

TEST_F(QueryProfilerTest, CachedVsUncachedAttribution) {
  ProfileBreakdown bd;
  bd.phases[ProfileBreakdown::kCacheProbe] = {2.0, 2.0, 1};  // all inherited
  bd.phases[ProfileBreakdown::kSearch] = {6.0, 0.0, 1};
  bd.phases[ProfileBreakdown::kSelectivity] = {2.0, 1.0, 4};  // half seeded
  EXPECT_EQ(bd.CachedMs(), 3.0);
  // Top level = probe 2 + search 6 (ladder nested); uncached = 8 - 3.
  EXPECT_EQ(bd.TopLevelMs(), 8.0);
  EXPECT_EQ(bd.UncachedMs(), 5.0);
}

TEST_F(QueryProfilerTest, SelfMsClampsWhenLadderRanOutsideSearch) {
  // A session pre-seed bills kSelectivity with no enclosing kSearch span;
  // self time must clamp at zero instead of going negative.
  ProfileBreakdown bd;
  bd.phases[ProfileBreakdown::kSelectivity] = {4.0, 4.0, 8};
  bd.phases[ProfileBreakdown::kSearch] = {1.0, 0.0, 1};
  EXPECT_EQ(bd.SelfMs(ProfileBreakdown::kSearch), 0.0);
}

TEST_F(QueryProfilerTest, WallClockMsIsMonotone) {
  double a = QueryProfiler::WallClockMs();
  double b = QueryProfiler::WallClockMs();
  EXPECT_GE(b, a);
}

TEST_F(QueryProfilerTest, PhaseNamesAreStable) {
  // BENCH_replay.json and docs key on these strings.
  EXPECT_STREQ(ProfileBreakdown::PhaseName(ProfileBreakdown::kSignature), "signature");
  EXPECT_STREQ(ProfileBreakdown::PhaseName(ProfileBreakdown::kCacheProbe), "cache_probe");
  EXPECT_STREQ(ProfileBreakdown::PhaseName(ProfileBreakdown::kSelectivity), "selectivity");
  EXPECT_STREQ(ProfileBreakdown::PhaseName(ProfileBreakdown::kSearch), "search");
  EXPECT_STREQ(ProfileBreakdown::PhaseName(ProfileBreakdown::kRender), "render");
  EXPECT_STREQ(ProfileBreakdown::PhaseName(ProfileBreakdown::kPublish), "publish");
}

}  // namespace
}  // namespace maliva
