// Overload control plane tests. The suite names carry "Admission" so the
// scripts/ci.sh sanitizer legs (-R 'Service|Concurrency|Fleet|Admission')
// run them — the serve-under-overload stress test below is the TSan/ASan
// coverage of the gate / scheduler / fleet interplay.
//
// Covered contracts:
//   * DeadlineScheduler dispatches EDF within a lane, strict-priority across
//     tiers, and weighted-fair across lanes (workers == 0 + RunOne makes
//     dispatch order itself deterministic and assertable);
//   * AdmissionController::Decide is a pure function of its inputs and walks
//     the documented verdict ladder (overload shed, deadline shed, degrade,
//     admit), with typed ShedStatus codes;
//   * AdmissionConfig::Validate rejects each bad knob by name, through
//     FleetConfig::Validate;
//   * fleet integration: sheds surface as DeadlineExceeded /
//     ResourceExhausted without touching a shard, degrades force the
//     configured cheap strategy and flag the response, stats roll up per
//     shard and fleet-wide;
//   * admission off (the default) keeps the fleet's byte-identical
//     ServeBatch contract at 1/4/8 threads, slice-equal to a standalone
//     service — the plane's "default is inert" regression;
//   * the bench's open-loop ArrivalGenerator is seed-deterministic,
//     monotone, and hits its configured rate.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_common.h"
#include "service/admission_controller.h"
#include "service/deadline_scheduler.h"
#include "service/service_fleet.h"

namespace maliva {
namespace {

// --------------------------------------------------------------- scheduler --

TEST(AdmissionSchedulerTest, EdfOrderingWithinALane) {
  DeadlineScheduler scheduler(0);  // manual mode: we dispatch, so order is exact
  std::vector<int> order;
  auto submit = [&](int tag, double deadline) {
    scheduler.Submit({deadline, "lane", [&order, tag] { order.push_back(tag); }});
  };
  submit(1, 30.0);
  submit(2, 10.0);
  submit(3, 20.0);
  submit(4, 10.0);  // equal deadline: submission order breaks the tie
  while (scheduler.RunOne()) {
  }
  EXPECT_EQ(order, (std::vector<int>{2, 4, 3, 1}));
}

TEST(AdmissionSchedulerTest, HigherTierDispatchesStrictlyFirst) {
  DeadlineScheduler scheduler(0);
  scheduler.SetShare("batch", /*weight=*/8.0, /*tier=*/0);
  scheduler.SetShare("interactive", /*weight=*/1.0, /*tier=*/1);
  std::vector<std::string> order;
  // The batch lane's deadlines are earlier and its weight much larger —
  // strict tiers must still dispatch every interactive job first.
  for (int i = 0; i < 3; ++i) {
    scheduler.Submit({1.0, "batch", [&order] { order.push_back("batch"); }});
    scheduler.Submit(
        {100.0, "interactive", [&order] { order.push_back("interactive"); }});
  }
  while (scheduler.RunOne()) {
  }
  ASSERT_EQ(order.size(), 6u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(order[i], "interactive");
  for (size_t i = 3; i < 6; ++i) EXPECT_EQ(order[i], "batch");
}

TEST(AdmissionSchedulerTest, WeightedShareInterleavesProportionally) {
  DeadlineScheduler scheduler(0);
  scheduler.SetShare("hot", 1.0);
  scheduler.SetShare("cold", 2.0);
  size_t cold_remaining = 10;
  size_t dispatches_until_cold_done = 0;
  size_t total = 0;
  for (int i = 0; i < 20; ++i) {
    scheduler.Submit({50.0, "hot", [] {}});
  }
  for (int i = 0; i < 10; ++i) {
    scheduler.Submit({50.0, "cold", [&] { --cold_remaining; }});
  }
  while (scheduler.RunOne()) {
    ++total;
    if (cold_remaining > 0) dispatches_until_cold_done = total;
  }
  EXPECT_EQ(total, 30u);
  EXPECT_EQ(cold_remaining, 0u);
  // Weight 2 vs 1 → the cold lane drains at twice the hot lane's rate: its
  // 10 jobs finish within the first ~15 dispatches instead of trailing the
  // hot backlog. A FIFO (or unweighted) scheduler would leave cold jobs
  // interleaved to the very end.
  EXPECT_LE(dispatches_until_cold_done, 15u);
}

TEST(AdmissionSchedulerTest, QueueDepthAndStatsTrackDispatch) {
  DeadlineScheduler scheduler(0);
  for (int i = 0; i < 3; ++i) scheduler.Submit({double(i), "lane", [] {}});
  EXPECT_EQ(scheduler.QueueDepth(), 3u);
  EXPECT_TRUE(scheduler.RunOne());
  EXPECT_EQ(scheduler.QueueDepth(), 2u);
  SchedulerStats mid = scheduler.GetStats();
  EXPECT_EQ(mid.submitted, 3u);
  EXPECT_EQ(mid.dispatched, 1u);
  while (scheduler.RunOne()) {
  }
  SchedulerStats done = scheduler.GetStats();
  EXPECT_EQ(done.dispatched, 3u);
  EXPECT_EQ(scheduler.QueueDepth(), 0u);
  EXPECT_GE(done.queue_wait_ms_total, 0.0);
}

TEST(AdmissionSchedulerTest, WorkersDrainEverythingOnWait) {
  DeadlineScheduler scheduler(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    scheduler.Submit({double(i % 7), i % 2 ? "a" : "b", [&ran] { ++ran; }});
  }
  scheduler.Wait();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(scheduler.QueueDepth(), 0u);
}

// -------------------------------------------------------------- controller --

TEST(AdmissionControllerTest, DeadlineScalesTauBySlack) {
  AdmissionController gate(AdmissionConfig().WithEnabled(true).WithSlackFactor(0.1));
  EXPECT_DOUBLE_EQ(gate.DeadlineFor(/*arrival_ms=*/100.0, /*tau_ms=*/500.0), 150.0);
}

TEST(AdmissionControllerTest, DecideWalksTheVerdictLadder) {
  AdmissionConfig config = AdmissionConfig()
                               .WithEnabled(true)
                               .WithMaxQueue(4)
                               .WithInitialServeEstimateMs(10.0);
  AdmissionController gate(config);
  // Queue at capacity wins over everything.
  EXPECT_EQ(gate.Decide(0.0, 100.0, /*queue_depth=*/4, /*workers=*/2),
            AdmissionDecision::kShedOverload);
  // Deadline already blown.
  EXPECT_EQ(gate.Decide(100.0, 100.0, 0, 2), AdmissionDecision::kShedDeadline);
  // Predicted completion (1 queued / 2 workers + own slot ≈ 15ms) misses a
  // 12ms budget → degrade; makes a 40ms budget → admit.
  EXPECT_EQ(gate.Decide(0.0, 12.0, 1, 2), AdmissionDecision::kDegrade);
  EXPECT_EQ(gate.Decide(0.0, 40.0, 1, 2), AdmissionDecision::kAdmit);
}

TEST(AdmissionControllerTest, DegradeDisabledShedsInstead) {
  AdmissionConfig config = AdmissionConfig()
                               .WithEnabled(true)
                               .WithDegradeStrategy("")
                               .WithInitialServeEstimateMs(10.0);
  AdmissionController gate(config);
  EXPECT_EQ(gate.Decide(0.0, 12.0, 1, 2), AdmissionDecision::kShedDeadline);
}

TEST(AdmissionControllerTest, ShedStatusesAreTyped) {
  Status deadline = AdmissionController::ShedStatus(
      AdmissionDecision::kShedDeadline, "twitter", 10.0, 5.0, 3);
  EXPECT_EQ(deadline.code(), Status::Code::kDeadlineExceeded);
  EXPECT_NE(deadline.message().find("twitter"), std::string::npos);
  Status overload = AdmissionController::ShedStatus(
      AdmissionDecision::kShedOverload, "taxi", 10.0, 50.0, 1024);
  EXPECT_EQ(overload.code(), Status::Code::kResourceExhausted);
  EXPECT_NE(overload.message().find("taxi"), std::string::npos);
}

TEST(AdmissionControllerTest, ServeEwmaTracksObservations) {
  AdmissionConfig config = AdmissionConfig()
                               .WithEnabled(true)
                               .WithInitialServeEstimateMs(10.0)
                               .WithServeEstimateAlpha(0.5);
  AdmissionController gate(config);
  EXPECT_DOUBLE_EQ(gate.EstimatedServeMs(), 10.0);
  gate.RecordServeMs(20.0);
  EXPECT_DOUBLE_EQ(gate.EstimatedServeMs(), 15.0);
  gate.RecordServeMs(-3.0);  // garbage observations are ignored
  EXPECT_DOUBLE_EQ(gate.EstimatedServeMs(), 15.0);
}

TEST(AdmissionControllerTest, CountersRollUpPerScenarioAndTotal) {
  AdmissionController gate(AdmissionConfig().WithEnabled(true));
  gate.RecordDecision("a", AdmissionDecision::kAdmit);
  gate.RecordDecision("a", AdmissionDecision::kDegrade);
  gate.RecordDecision("b", AdmissionDecision::kShedDeadline);
  gate.RecordDecision("b", AdmissionDecision::kShedOverload);
  gate.RecordQueueWait("a", 2.5);
  EXPECT_EQ(gate.CountersFor("a").admitted, 1u);
  EXPECT_EQ(gate.CountersFor("a").degraded, 1u);
  EXPECT_DOUBLE_EQ(gate.CountersFor("a").queue_wait_ms_total, 2.5);
  EXPECT_EQ(gate.CountersFor("b").shed_deadline, 1u);
  EXPECT_EQ(gate.CountersFor("b").shed_overload, 1u);
  AdmissionCounters totals = gate.TotalCounters();
  EXPECT_EQ(totals.admitted + totals.degraded + totals.shed_deadline +
                totals.shed_overload,
            4u);
}

TEST(AdmissionControllerTest, SharesResolveWithDefaults) {
  AdmissionConfig config = AdmissionConfig()
                               .WithEnabled(true)
                               .WithDefaultWeight(3.0)
                               .WithShare("vip", 8.0, /*tier=*/2);
  AdmissionController gate(config);
  EXPECT_DOUBLE_EQ(gate.WeightFor("vip"), 8.0);
  EXPECT_EQ(gate.TierFor("vip"), 2);
  EXPECT_DOUBLE_EQ(gate.WeightFor("anyone-else"), 3.0);
  EXPECT_EQ(gate.TierFor("anyone-else"), 0);
}

// --------------------------------------------------------------- validation --

TEST(AdmissionValidateTest, RejectsUnknownDegradeStrategy) {
  FleetConfig config;
  config.WithAdmission(
      AdmissionConfig().WithEnabled(true).WithDegradeStrategy("no-such-strategy"));
  Status st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(st.message().find("degrade_strategy"), std::string::npos);
  EXPECT_NE(st.message().find("baseline"), std::string::npos)
      << "error should list the known strategies: " << st.message();
}

TEST(AdmissionValidateTest, RejectsNonPositiveSlackFactor) {
  for (double bad : {0.0, -1.0}) {
    FleetConfig config;
    config.WithAdmission(AdmissionConfig().WithEnabled(true).WithSlackFactor(bad));
    Status st = config.Validate();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("slack_factor"), std::string::npos);
  }
}

TEST(AdmissionValidateTest, RejectsNonPositiveScenarioWeight) {
  FleetConfig config;
  config.WithAdmission(
      AdmissionConfig().WithEnabled(true).WithShare("twitter", 0.0));
  Status st = config.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("weight"), std::string::npos);
  EXPECT_NE(st.message().find("twitter"), std::string::npos);
}

TEST(AdmissionValidateTest, RejectsBadEwmaKnobs) {
  {
    FleetConfig config;
    config.WithAdmission(
        AdmissionConfig().WithEnabled(true).WithInitialServeEstimateMs(0.0));
    EXPECT_NE(config.Validate().message().find("initial_serve_estimate_ms"),
              std::string::npos);
  }
  {
    FleetConfig config;
    config.WithAdmission(
        AdmissionConfig().WithEnabled(true).WithServeEstimateAlpha(1.5));
    EXPECT_NE(config.Validate().message().find("serve_estimate_alpha"),
              std::string::npos);
  }
  {
    FleetConfig config;
    config.WithAdmission(AdmissionConfig().WithEnabled(true).WithDefaultWeight(-2.0));
    EXPECT_NE(config.Validate().message().find("default_weight"), std::string::npos);
  }
}

TEST(AdmissionValidateTest, DisabledPlaneStillValidatesKnobs) {
  // A bad knob is a bug in the deployment config whether or not the switch
  // is on today; surface it at construction either way.
  FleetConfig config;
  config.WithAdmission(AdmissionConfig().WithSlackFactor(-1.0));
  EXPECT_FALSE(config.Validate().ok());
}

// ---------------------------------------------------------- fleet end-to-end --

class AdmissionFleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig twitter;
    twitter.kind = DatasetKind::kTwitter;
    twitter.num_rows = 12000;
    twitter.num_queries = 80;
    twitter.tau_ms = 500.0;
    twitter.seed = 91;
    twitter_ = new Scenario(BuildScenario(twitter));

    ScenarioConfig taxi;
    taxi.kind = DatasetKind::kTaxi;
    taxi.num_rows = 12000;
    taxi.num_queries = 80;
    taxi.tau_ms = 1000.0;
    taxi.seed = 92;
    taxi_ = new Scenario(BuildScenario(taxi));
  }
  static void TearDownTestSuite() {
    delete twitter_;
    twitter_ = nullptr;
    delete taxi_;
    taxi_ = nullptr;
  }

  static ServiceConfig SmallConfig() {
    return ServiceConfig().WithTrainerIterations(3).WithAgentSeeds(1);
  }

  static FleetConfig SmallFleetConfig(size_t threads = 2) {
    return FleetConfig()
        .WithDefaults(SmallConfig())
        .WithNumThreads(threads)
        .WithWarmupStrategies({"mdp/accurate", "baseline"});
  }

  static RewriteRequest TwitterRequest(size_t i,
                                       const std::string& strategy = "mdp/accurate") {
    RewriteRequest req;
    req.scenario = "twitter";
    req.query = twitter_->evaluation[i % twitter_->evaluation.size()];
    req.strategy = strategy;
    return req;
  }

  static Scenario* twitter_;
  static Scenario* taxi_;
};

Scenario* AdmissionFleetTest::twitter_ = nullptr;
Scenario* AdmissionFleetTest::taxi_ = nullptr;

TEST_F(AdmissionFleetTest, MaxQueueZeroShedsEverythingTyped) {
  // max_queue = 0 is the documented drain lever: every request is refused
  // with ResourceExhausted before touching the shard.
  MalivaFleet fleet(SmallFleetConfig().WithAdmission(
      AdmissionConfig().WithEnabled(true).WithMaxQueue(0)));
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  fleet.WaitWarmups();
  Result<RewriteResponse> response = fleet.Serve(TwitterRequest(0));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kResourceExhausted);
  FleetStats stats = fleet.Stats();
  EXPECT_TRUE(stats.admission.enabled);
  EXPECT_EQ(stats.admission.shed_overload, 1u);
  EXPECT_EQ(stats.totals.requests, 0u) << "shed requests must not reach a shard";
}

TEST_F(AdmissionFleetTest, PredictedMissForcesDegradeStrategy) {
  // An absurd initial serve estimate makes every predicted completion miss
  // its deadline deterministically: the gate must serve with the degrade
  // strategy and flag the response, never shed (the queue has room).
  MalivaFleet fleet(SmallFleetConfig().WithAdmission(
      AdmissionConfig()
          .WithEnabled(true)
          .WithDegradeStrategy("baseline")
          .WithInitialServeEstimateMs(1e9)
          .WithServeEstimateAlpha(1e-9)));
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  fleet.WaitWarmups();
  Result<RewriteResponse> response = fleet.Serve(TwitterRequest(0));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().strategy, "baseline");
  EXPECT_TRUE(response.value().stats.degraded);
  EXPECT_GE(response.value().stats.queue_wait_ms, 0.0);
  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.admission.degraded, 1u);
  EXPECT_EQ(stats.admission.shed_deadline + stats.admission.shed_overload, 0u);
}

TEST_F(AdmissionFleetTest, PredictedMissShedsWhenDegradeDisabled) {
  MalivaFleet fleet(SmallFleetConfig().WithAdmission(
      AdmissionConfig()
          .WithEnabled(true)
          .WithDegradeStrategy("")
          .WithInitialServeEstimateMs(1e9)));
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  fleet.WaitWarmups();
  Result<RewriteResponse> response = fleet.Serve(TwitterRequest(0));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), Status::Code::kDeadlineExceeded);
}

TEST_F(AdmissionFleetTest, AdmittedRequestServesNormally) {
  MalivaFleet fleet(SmallFleetConfig().WithAdmission(
      AdmissionConfig().WithEnabled(true).WithShare("twitter", 2.0, 1)));
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  fleet.WaitWarmups();
  Result<RewriteResponse> response = fleet.Serve(TwitterRequest(0));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().strategy, "mdp/accurate");
  EXPECT_FALSE(response.value().stats.degraded);
  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.admission.admitted, 1u);
  EXPECT_EQ(stats.totals.admission_admitted, 1u);
}

TEST_F(AdmissionFleetTest, ServeAsyncDeliversExactlyOnce) {
  MalivaFleet fleet(SmallFleetConfig().WithAdmission(
      AdmissionConfig().WithEnabled(true)));
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  fleet.WaitWarmups();

  std::mutex mutex;
  std::condition_variable cv;
  int completions = 0;
  Result<RewriteResponse> delivered(Status::Internal("not delivered"));
  Status st = fleet.ServeAsync(TwitterRequest(0),
                               [&](Result<RewriteResponse> response) {
                                 std::unique_lock<std::mutex> lock(mutex);
                                 delivered = std::move(response);
                                 ++completions;
                                 cv.notify_all();
                               });
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return completions > 0; });
  EXPECT_EQ(completions, 1);
  ASSERT_TRUE(delivered.ok()) << delivered.status().ToString();
  EXPECT_EQ(delivered.value().strategy, "mdp/accurate");
}

TEST_F(AdmissionFleetTest, ServeAsyncRequiresAdmission) {
  MalivaFleet fleet(SmallFleetConfig());  // admission off
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  Status st = fleet.ServeAsync(TwitterRequest(0), [](Result<RewriteResponse>) {
    FAIL() << "callback must not run when the call is refused";
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kFailedPrecondition);
}

TEST_F(AdmissionFleetTest, StatsRollUpPerShardAndFleetWide) {
  MalivaFleet fleet(SmallFleetConfig(4).WithAdmission(
      AdmissionConfig().WithEnabled(true)));
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  ASSERT_TRUE(fleet.RegisterScenario("taxi", taxi_).ok());
  fleet.WaitWarmups();

  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 12; ++i) {
    RewriteRequest req = TwitterRequest(i, "baseline");
    if (i % 3 == 0) {
      req.scenario = "taxi";
      req.query = taxi_->evaluation[i % taxi_->evaluation.size()];
    }
    requests.push_back(req);
  }
  for (const Result<RewriteResponse>& response : fleet.ServeBatch(requests)) {
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }

  FleetStats stats = fleet.Stats();
  EXPECT_TRUE(stats.admission.enabled);
  EXPECT_EQ(stats.admission.admitted + stats.admission.degraded, 12u);
  uint64_t per_shard_sum = 0;
  for (const auto& [id, shard_stats] : stats.shards) {
    per_shard_sum +=
        shard_stats.admission_admitted + shard_stats.admission_degraded;
  }
  EXPECT_EQ(per_shard_sum, 12u) << "per-shard gate rows must sum to the total";
  EXPECT_EQ(stats.totals.admission_admitted + stats.totals.admission_degraded,
            12u);
  EXPECT_EQ(stats.admission.queue_depth, 0u);
}

// The plane's "default is inert" regression: with admission off the fleet's
// ServeBatch must stay byte-identical across thread counts and slice-equal
// to a standalone service — the exact pre-existing contract.
TEST_F(AdmissionFleetTest, OffModeKeepsByteEqualityAcrossThreadCounts) {
  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 18; ++i) {
    requests.push_back(TwitterRequest(i, i % 2 ? "baseline" : "mdp/accurate"));
  }
  std::vector<Result<RewriteResponse>> reference;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    MalivaFleet fleet(SmallFleetConfig(threads));
    ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
    fleet.WaitWarmups();
    std::vector<Result<RewriteResponse>> responses = fleet.ServeBatch(requests);
    ASSERT_EQ(responses.size(), requests.size());
    if (threads == 1) {
      reference = std::move(responses);
      continue;
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(reference[i].ok(), responses[i].ok());
      if (!reference[i].ok()) continue;
      EXPECT_EQ(reference[i].value().strategy, responses[i].value().strategy);
      EXPECT_EQ(reference[i].value().rewritten_sql,
                responses[i].value().rewritten_sql);
      EXPECT_EQ(reference[i].value().outcome.total_ms,
                responses[i].value().outcome.total_ms);
      EXPECT_EQ(reference[i].value().outcome.option_index,
                responses[i].value().outcome.option_index);
    }
  }
  // Slice equality vs a standalone service over the same scenario + config.
  MalivaService standalone(twitter_, SmallConfig());
  ASSERT_TRUE(standalone.Warmup({"mdp/accurate", "baseline"}).ok());
  std::vector<Result<RewriteResponse>> expected = standalone.ServeBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(expected[i].ok(), reference[i].ok());
    if (!expected[i].ok()) continue;
    EXPECT_EQ(expected[i].value().rewritten_sql, reference[i].value().rewritten_sql);
    EXPECT_EQ(expected[i].value().outcome.total_ms,
              reference[i].value().outcome.total_ms);
  }
}

// TSan/ASan coverage: many app threads hammering Serve through the gate and
// scheduler with a tiny queue, so admits, degrades, and both shed flavors
// race. Every outcome must be OK or a typed shed, and the gate's accounting
// must balance exactly.
TEST_F(AdmissionFleetTest, ConcurrentServesUnderOverloadStayTypedAndBalanced) {
  MalivaFleet fleet(SmallFleetConfig(4).WithAdmission(
      AdmissionConfig()
          .WithEnabled(true)
          .WithMaxQueue(2)
          .WithSlackFactor(0.02)  // 10ms wall budget on tau=500
          .WithInitialServeEstimateMs(2.0)
          .WithShare("twitter", 2.0)
          .WithShare("taxi", 1.0)));
  ASSERT_TRUE(fleet.RegisterScenario("twitter", twitter_).ok());
  ASSERT_TRUE(fleet.RegisterScenario("taxi", taxi_).ok());
  fleet.WaitWarmups();

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 30;
  std::atomic<size_t> ok_count{0}, shed_count{0}, unexpected{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        RewriteRequest req = TwitterRequest(t * kPerThread + i, "baseline");
        if ((t + i) % 2 == 0) {
          req.scenario = "taxi";
          req.query = taxi_->evaluation[i % taxi_->evaluation.size()];
        }
        Result<RewriteResponse> response = fleet.Serve(req);
        if (response.ok()) {
          ++ok_count;
        } else if (response.status().code() == Status::Code::kDeadlineExceeded ||
                   response.status().code() == Status::Code::kResourceExhausted) {
          ++shed_count;
        } else {
          ++unexpected;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(ok_count.load() + shed_count.load(), kThreads * kPerThread);
  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.admission.admitted + stats.admission.degraded +
                stats.admission.shed_deadline + stats.admission.shed_overload,
            kThreads * kPerThread)
      << "every request must get exactly one gate verdict";
  EXPECT_EQ(stats.admission.admitted + stats.admission.degraded, ok_count.load());
  EXPECT_EQ(stats.admission.shed_deadline + stats.admission.shed_overload,
            shed_count.load());
}

// ------------------------------------------------------- arrival generator --

TEST(AdmissionArrivalGenTest, SameSeedReplaysTheSameTrace) {
  bench::ArrivalGenerator a(1000.0, 7);
  bench::ArrivalGenerator b(1000.0, 7);
  for (int i = 0; i < 200; ++i) EXPECT_DOUBLE_EQ(a.NextMs(), b.NextMs());
  bench::ArrivalGenerator c(1000.0, 8);
  bench::ArrivalGenerator d(1000.0, 7);
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) diverged = c.NextMs() != d.NextMs();
  EXPECT_TRUE(diverged) << "different seeds must give different traces";
}

TEST(AdmissionArrivalGenTest, MonotoneAndApproximatelyAtRate) {
  const double rate_qps = 1000.0;  // 1ms mean gap
  bench::ArrivalGenerator gen(rate_qps, 42);
  double prev = 0.0;
  const int n = 20000;
  double last = 0.0;
  for (int i = 0; i < n; ++i) {
    double t = gen.NextMs();
    EXPECT_GE(t, prev);
    prev = t;
    last = t;
  }
  double mean_gap_ms = last / n;
  EXPECT_GT(mean_gap_ms, 0.9);
  EXPECT_LT(mean_gap_ms, 1.1);
}

}  // namespace
}  // namespace maliva
