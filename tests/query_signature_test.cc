// Canonicalization tests: signature stability under predicate permutation
// and output/id changes, literal-binning behaviour, and distinct signatures
// for semantically different queries.

#include "query/signature.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace maliva {
namespace {

Query TwitterishQuery() {
  Query q;
  q.id = 7;
  q.table = "tweets";
  q.predicates = {
      Predicate::Keyword("text", "storm"),
      Predicate::Time("created_at", 1.5e9, 1.5e9 + 3600.0),
      Predicate::Spatial("coordinate", BoundingBox{-74.1, 40.6, -73.7, 40.9}),
  };
  q.output = OutputKind::kHeatmap;
  q.output_column = "coordinate";
  q.heatmap_bins = 32;
  return q;
}

TEST(QuerySignatureTest, StableUnderPredicatePermutation) {
  Query q = TwitterishQuery();
  CanonicalQuery base = Canonicalize(q);

  Query permuted = q;
  std::swap(permuted.predicates[0], permuted.predicates[2]);
  CanonicalQuery perm = Canonicalize(permuted);

  EXPECT_EQ(base.signature, perm.signature);
  // Slot keys stay in slot order (they key the SelectivityCache), so the
  // permutation permutes them — same multiset, swapped positions.
  ASSERT_EQ(base.slot_keys.size(), 3u);
  ASSERT_EQ(perm.slot_keys.size(), 3u);
  EXPECT_EQ(base.slot_keys[0], perm.slot_keys[2]);
  EXPECT_EQ(base.slot_keys[2], perm.slot_keys[0]);
  EXPECT_EQ(base.slot_keys[1], perm.slot_keys[1]);
}

TEST(QuerySignatureTest, IdAndOutputFieldsAreStripped) {
  Query q = TwitterishQuery();
  CanonicalQuery base = Canonicalize(q);

  Query variant = q;
  variant.id = 123456;
  variant.output = OutputKind::kScatter;
  variant.output_column = "id";
  variant.heatmap_bins = 64;
  CanonicalQuery stripped = Canonicalize(variant);

  EXPECT_EQ(base.signature, stripped.signature);
  EXPECT_EQ(base.slot_keys, stripped.slot_keys);
}

TEST(QuerySignatureTest, DistinctForSemanticallyDifferentQueries) {
  Query q = TwitterishQuery();
  CanonicalQuery base = Canonicalize(q);

  Query other_table = q;
  other_table.table = "taxi";
  EXPECT_NE(base.signature, Canonicalize(other_table).signature);

  Query other_keyword = q;
  other_keyword.predicates[0].keyword = "flood";
  EXPECT_NE(base.signature, Canonicalize(other_keyword).signature);

  Query other_column = q;
  other_column.predicates[1].column = "user_created_at";
  EXPECT_NE(base.signature, Canonicalize(other_column).signature);

  Query extra_predicate = q;
  extra_predicate.predicates.push_back(Predicate::Numeric("statuses", 0, 100));
  EXPECT_NE(base.signature, Canonicalize(extra_predicate).signature);

  Query with_join = q;
  with_join.join = JoinSpec{"users", "user_id", "id", {}};
  EXPECT_NE(base.signature, Canonicalize(with_join).signature);
}

TEST(QuerySignatureTest, RangeLiteralsShareBinsUnderSmallJitter) {
  // Coarse bins make the binning behaviour easy to pin down: with 16 bins
  // the mantissa resolution is 1/32 relative, so 100 vs 101 (same binary
  // exponent, same mantissa bucket) share a bin while 100 vs 120 do not.
  SignatureOptions coarse{16};
  Predicate a = Predicate::Time("created_at", 100.0, 200.0);
  Predicate jitter = Predicate::Time("created_at", 101.0, 201.0);
  Predicate moved = Predicate::Time("created_at", 120.0, 220.0);

  EXPECT_EQ(PredicateSlotKey("tweets", a, coarse),
            PredicateSlotKey("tweets", jitter, coarse));
  EXPECT_NE(PredicateSlotKey("tweets", a, coarse),
            PredicateSlotKey("tweets", moved, coarse));
}

TEST(QuerySignatureTest, RangeExtentDisambiguatesSameLowBound) {
  // Both ranges start at the same bound; the extent binning must separate a
  // short window from a long one even at coarse granularity.
  SignatureOptions coarse{16};
  Predicate minute = Predicate::Time("created_at", 1.5e9, 1.5e9 + 60.0);
  Predicate hour = Predicate::Time("created_at", 1.5e9, 1.5e9 + 3600.0);
  EXPECT_NE(PredicateSlotKey("tweets", minute, coarse),
            PredicateSlotKey("tweets", hour, coarse));
}

TEST(QuerySignatureTest, SpatialPanWithinAGridCellSharesTheSlot) {
  // Grid cells scale with the box's own extent: width 4.5 -> power-of-two
  // tile 8, cell 8/16 = 0.5 degrees; height 3 -> tile 4, cell 0.25. A pan
  // below one cell per axis shares the slot; a viewport-sized pan does not,
  // no matter the coordinate magnitude.
  SignatureOptions coarse{16};
  Predicate at =
      Predicate::Spatial("coordinate", BoundingBox{10.0, 10.0, 14.5, 13.0});
  Predicate pan_small = Predicate::Spatial(
      "coordinate", BoundingBox{10.125, 10.125, 14.625, 13.125});
  Predicate pan_large =
      Predicate::Spatial("coordinate", BoundingBox{40.0, 10.0, 44.5, 13.0});

  EXPECT_EQ(PredicateSlotKey("tweets", at, coarse),
            PredicateSlotKey("tweets", pan_small, coarse));
  EXPECT_NE(PredicateSlotKey("tweets", at, coarse),
            PredicateSlotKey("tweets", pan_large, coarse));
}

TEST(QuerySignatureTest, AnchorResolutionScalesWithTheExtent) {
  // The same absolute one-hour pan is far below a month window's cell but
  // many cells for a two-hour window: anchor grids follow the extent, not
  // the (epoch-sized) magnitude of the bounds.
  SignatureOptions coarse{16};
  const double kMonth = 30.0 * 86400.0;
  Predicate month = Predicate::Time("created_at", 1.5e9, 1.5e9 + kMonth);
  Predicate month_panned =
      Predicate::Time("created_at", 1.5e9 + 3600.0, 1.5e9 + kMonth + 3600.0);
  EXPECT_EQ(PredicateSlotKey("tweets", month, coarse),
            PredicateSlotKey("tweets", month_panned, coarse));

  Predicate hours = Predicate::Time("created_at", 1.5e9, 1.5e9 + 7200.0);
  Predicate hours_panned =
      Predicate::Time("created_at", 1.5e9 + 3600.0, 1.5e9 + 7200.0 + 3600.0);
  EXPECT_NE(PredicateSlotKey("tweets", hours, coarse),
            PredicateSlotKey("tweets", hours_panned, coarse));
}

TEST(QuerySignatureTest, FinerBinsSeparateWhatCoarseBinsShare) {
  Predicate a = Predicate::Time("created_at", 100.0, 200.0);
  Predicate jitter = Predicate::Time("created_at", 101.0, 201.0);
  EXPECT_EQ(PredicateSlotKey("tweets", a, SignatureOptions{16}),
            PredicateSlotKey("tweets", jitter, SignatureOptions{16}));
  EXPECT_NE(PredicateSlotKey("tweets", a, SignatureOptions{1 << 20}),
            PredicateSlotKey("tweets", jitter, SignatureOptions{1 << 20}));
}

TEST(QuerySignatureTest, FingerprintStableWithinTauBin) {
  CanonicalQuery canonical = Canonicalize(TwitterishQuery());
  FingerprintOptions opts;  // tau_bin_ms = 25.0
  // Same [k*25, (k+1)*25) interval shares the fingerprint; crossing the bin
  // edge (exactly 25.0 starts the next bin) does not.
  RequestFingerprint lo =
      MakeRequestFingerprint(canonical.signature, "mdp", 0.0, std::nullopt, opts);
  RequestFingerprint hi = MakeRequestFingerprint(canonical.signature, "mdp",
                                                 24.999, std::nullopt, opts);
  RequestFingerprint next = MakeRequestFingerprint(canonical.signature, "mdp",
                                                   25.0, std::nullopt, opts);
  EXPECT_EQ(lo, hi);
  EXPECT_NE(lo, next);
  EXPECT_EQ(next, MakeRequestFingerprint(canonical.signature, "mdp", 49.9,
                                         std::nullopt, opts));
}

TEST(QuerySignatureTest, FingerprintSeparatesStrategyAndSignature) {
  CanonicalQuery a = Canonicalize(TwitterishQuery());
  Query other = TwitterishQuery();
  other.predicates[0].keyword = "flood";
  CanonicalQuery b = Canonicalize(other);

  RequestFingerprint base =
      MakeRequestFingerprint(a.signature, "mdp", 100.0, std::nullopt);
  EXPECT_NE(base, MakeRequestFingerprint(a.signature, "greedy", 100.0,
                                         std::nullopt));
  EXPECT_NE(base, MakeRequestFingerprint(b.signature, "mdp", 100.0,
                                         std::nullopt));
}

TEST(QuerySignatureTest, FingerprintQualityFloorBinning) {
  CanonicalQuery canonical = Canonicalize(TwitterishQuery());
  FingerprintOptions opts;  // quality_floor_bins = 100
  RequestFingerprint none =
      MakeRequestFingerprint(canonical.signature, "mdp", 100.0, std::nullopt, opts);
  RequestFingerprint low =
      MakeRequestFingerprint(canonical.signature, "mdp", 100.0, 0.901, opts);
  RequestFingerprint same_bin =
      MakeRequestFingerprint(canonical.signature, "mdp", 100.0, 0.909, opts);
  RequestFingerprint next_bin =
      MakeRequestFingerprint(canonical.signature, "mdp", 100.0, 0.911, opts);
  RequestFingerprint top =
      MakeRequestFingerprint(canonical.signature, "mdp", 100.0, 1.0, opts);

  // Absent floor is always its own key.
  EXPECT_NE(none, low);
  EXPECT_NE(none, top);
  // Floors within one 1/100 bin share; crossing the edge separates.
  EXPECT_EQ(low, same_bin);
  EXPECT_NE(low, next_bin);
  // 1.0 gets its own top bin, distinct from 0.99x floors.
  EXPECT_NE(top, MakeRequestFingerprint(canonical.signature, "mdp", 100.0,
                                        0.995, opts));
}

TEST(QuerySignatureTest, FingerprintBinWidthKnobs) {
  CanonicalQuery canonical = Canonicalize(TwitterishQuery());
  // Coarser tau bins share what the default separates.
  FingerprintOptions wide;
  wide.tau_bin_ms = 1000.0;
  EXPECT_EQ(MakeRequestFingerprint(canonical.signature, "mdp", 30.0,
                                   std::nullopt, wide),
            MakeRequestFingerprint(canonical.signature, "mdp", 970.0,
                                   std::nullopt, wide));
  FingerprintOptions dflt;
  EXPECT_NE(MakeRequestFingerprint(canonical.signature, "mdp", 30.0,
                                   std::nullopt, dflt),
            MakeRequestFingerprint(canonical.signature, "mdp", 970.0,
                                   std::nullopt, dflt));
  // One floor bin conflates every bound floor but still not the absent one.
  FingerprintOptions one_bin;
  one_bin.quality_floor_bins = 1;
  EXPECT_EQ(MakeRequestFingerprint(canonical.signature, "mdp", 100.0, 0.1,
                                   one_bin),
            MakeRequestFingerprint(canonical.signature, "mdp", 100.0, 0.9,
                                   one_bin));
  EXPECT_NE(MakeRequestFingerprint(canonical.signature, "mdp", 100.0, 0.1,
                                   one_bin),
            MakeRequestFingerprint(canonical.signature, "mdp", 100.0,
                                   std::nullopt, one_bin));
}

TEST(QuerySignatureTest, JoinRightPredicatesKeyAgainstTheRightTable) {
  Query q = TwitterishQuery();
  q.join = JoinSpec{"users", "user_id", "id",
                    {Predicate::Numeric("followers", 100.0, 1e6)}};
  CanonicalQuery canonical = Canonicalize(q);
  ASSERT_EQ(canonical.slot_keys.size(), 4u);  // 3 base + 1 right

  // The same predicate keyed against the base table must differ: slot keys
  // encode the target table.
  EXPECT_NE(canonical.slot_keys[3],
            PredicateSlotKey("tweets", q.join->right_predicates[0]));
  EXPECT_EQ(canonical.slot_keys[3],
            PredicateSlotKey("users", q.join->right_predicates[0]));
}

}  // namespace
}  // namespace maliva
