// Trainer tests: Algorithm 1 must produce an agent that beats both the
// untrained network and a random policy on a small scenario.

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "qte/accurate_qte.h"
#include "workload/scenario.h"

namespace maliva {
namespace {

class TrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 30000;
    cfg.num_queries = 240;
    cfg.tau_ms = 500.0;
    cfg.seed = 5;
    scenario_ = new Scenario(BuildScenario(cfg));
    qte_ = new AccurateQte();
  }
  static void TearDownTestSuite() {
    delete scenario_;
    delete qte_;
    scenario_ = nullptr;
    qte_ = nullptr;
  }

  RewriterEnv MakeEnv() {
    RewriterEnv renv;
    renv.engine = scenario_->engine.get();
    renv.oracle = scenario_->oracle.get();
    renv.options = &scenario_->options;
    renv.qte = qte_;
    renv.qte_params.unit_cost_ms = 40.0;
    renv.env_config.tau_ms = 500.0;
    return renv;
  }

  double GreedyVqp(const QAgent& agent, const std::vector<const Query*>& ws) {
    RewriterEnv renv = MakeEnv();
    size_t viable = 0;
    for (const Query* q : ws) {
      RewriteOutcome out = RunGreedyEpisode(renv, agent, *q);
      viable += out.viable ? 1 : 0;
    }
    return static_cast<double>(viable) / static_cast<double>(ws.size());
  }

  static Scenario* scenario_;
  static AccurateQte* qte_;
};

Scenario* TrainerTest::scenario_ = nullptr;
AccurateQte* TrainerTest::qte_ = nullptr;

TEST_F(TrainerTest, TrainingImprovesOverUntrained) {
  TrainerConfig tc;
  tc.max_iterations = 15;
  tc.seed = 7;
  Trainer trainer(MakeEnv(), tc);
  std::unique_ptr<QAgent> trained = trainer.Train(scenario_->train);

  QAgent untrained(scenario_->options.size(), 12345);
  double vqp_trained = GreedyVqp(*trained, scenario_->evaluation);
  double vqp_untrained = GreedyVqp(untrained, scenario_->evaluation);
  EXPECT_GT(vqp_trained, vqp_untrained - 0.02);
  EXPECT_GT(vqp_trained, 0.3);  // absolute sanity: most queries servable
}

TEST_F(TrainerTest, HistoryRecordsIterations) {
  TrainerConfig tc;
  tc.max_iterations = 5;
  tc.patience = 100;  // disable early stop
  tc.seed = 8;
  Trainer trainer(MakeEnv(), tc);
  trainer.Train(scenario_->train);
  EXPECT_EQ(trainer.history().size(), 5u);
  for (const Trainer::IterationStats& st : trainer.history()) {
    EXPECT_EQ(st.episodes, scenario_->train.size());
    EXPECT_GE(st.greedy_vqp, 0.0);
    EXPECT_LE(st.greedy_vqp, 1.0);
  }
}

TEST_F(TrainerTest, ConvergenceStopsEarly) {
  TrainerConfig tc;
  tc.max_iterations = 40;
  tc.patience = 2;
  tc.seed = 9;
  Trainer trainer(MakeEnv(), tc);
  trainer.Train(scenario_->train);
  EXPECT_LT(trainer.history().size(), 40u);  // converged before the cap
}

TEST_F(TrainerTest, DeterministicAcrossRuns) {
  TrainerConfig tc;
  tc.max_iterations = 4;
  tc.patience = 100;
  tc.seed = 11;
  Trainer t1(MakeEnv(), tc), t2(MakeEnv(), tc);
  std::unique_ptr<QAgent> a1 = t1.Train(scenario_->train);
  std::unique_ptr<QAgent> a2 = t2.Train(scenario_->train);
  std::vector<double> f(2 * scenario_->options.size() + 1, 0.2);
  EXPECT_EQ(a1->QValues(f), a2->QValues(f));
  ASSERT_EQ(t1.history().size(), t2.history().size());
  for (size_t i = 0; i < t1.history().size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.history()[i].mean_reward, t2.history()[i].mean_reward);
  }
}

TEST_F(TrainerTest, RewardImprovesDuringTraining) {
  TrainerConfig tc;
  tc.max_iterations = 15;
  tc.patience = 100;
  tc.seed = 13;
  Trainer trainer(MakeEnv(), tc);
  trainer.Train(scenario_->train);
  const auto& hist = trainer.history();
  ASSERT_GE(hist.size(), 10u);
  // Mean of last three iterations beats the first iteration.
  double late = (hist[hist.size() - 1].mean_reward + hist[hist.size() - 2].mean_reward +
                 hist[hist.size() - 3].mean_reward) /
                3.0;
  EXPECT_GE(late, hist[0].mean_reward - 0.05);
}

}  // namespace
}  // namespace maliva
