// Rewriter tests: Algorithm 2 invariants, outcome accounting, and the
// two-stage hand-off semantics (Section 6.2).

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "qte/accurate_qte.h"
#include "workload/difficulty.h"
#include "workload/scenario.h"

namespace maliva {
namespace {

class RewriterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 30000;
    cfg.num_queries = 200;
    cfg.tau_ms = 500.0;
    cfg.seed = 61;
    cfg.approx_sample_rates = {0.2, 0.4};
    scenario_ = new Scenario(BuildScenario(cfg));
    qte_ = new AccurateQte();
    quality_ = new QualityOracle(scenario_->engine.get());

    // Train one small exact agent shared across tests.
    RewriterEnv renv = ExactEnv();
    TrainerConfig tc;
    tc.max_iterations = 8;
    tc.seed = 3;
    Trainer trainer(renv, tc);
    exact_agent_ = trainer.Train(scenario_->train).release();
  }
  static void TearDownTestSuite() {
    delete exact_agent_;
    delete quality_;
    delete qte_;
    delete scenario_;
    exact_agent_ = nullptr;
    quality_ = nullptr;
    qte_ = nullptr;
    scenario_ = nullptr;
  }

  static RewriterEnv ExactEnv() {
    RewriterEnv renv;
    renv.engine = scenario_->engine.get();
    renv.oracle = scenario_->oracle.get();
    renv.options = &scenario_->options;
    renv.qte = qte_;
    renv.env_config.tau_ms = 500.0;
    return renv;
  }

  static Scenario* scenario_;
  static AccurateQte* qte_;
  static QualityOracle* quality_;
  static QAgent* exact_agent_;
};

Scenario* RewriterTest::scenario_ = nullptr;
AccurateQte* RewriterTest::qte_ = nullptr;
QualityOracle* RewriterTest::quality_ = nullptr;
QAgent* RewriterTest::exact_agent_ = nullptr;

TEST_F(RewriterTest, OutcomeAccountingConsistent) {
  MalivaRewriter rewriter(ExactEnv(), exact_agent_, "mdp");
  for (size_t i = 0; i < 40; ++i) {
    const Query& q = *scenario_->evaluation[i];
    RewriteOutcome out = rewriter.Rewrite(q);
    EXPECT_NEAR(out.total_ms, out.planning_ms + out.exec_ms, 1e-9);
    EXPECT_EQ(out.viable, out.total_ms <= 500.0);
    EXPECT_GE(out.steps, 1u);
    EXPECT_LE(out.steps, scenario_->options.size());
    EXPECT_LT(out.option_index, scenario_->options.size());
    EXPECT_FALSE(out.approximate);  // exact option set
    EXPECT_DOUBLE_EQ(out.quality, 1.0);
    // The reported execution time must equal the oracle's ground truth.
    EXPECT_DOUBLE_EQ(out.exec_ms,
                     scenario_->oracle->TrueTimeMs(q, scenario_->options[out.option_index]));
  }
}

TEST_F(RewriterTest, CommitsToEstimatedViableOption) {
  // Whenever the outcome is viable, Algorithm 2's commit condition implies
  // the chosen option's true time fits within (tau - planning time).
  MalivaRewriter rewriter(ExactEnv(), exact_agent_, "mdp");
  for (size_t i = 0; i < 40; ++i) {
    RewriteOutcome out = rewriter.Rewrite(*scenario_->evaluation[i]);
    if (out.viable) {
      EXPECT_LE(out.exec_ms, 500.0 - out.planning_ms + 1e-9);
    }
  }
}

TEST_F(RewriterTest, GreedyEpisodeMatchesRewriter) {
  MalivaRewriter rewriter(ExactEnv(), exact_agent_, "mdp");
  const Query& q = *scenario_->evaluation[5];
  RewriteOutcome a = rewriter.Rewrite(q);
  RewriteOutcome b = RunGreedyEpisode(ExactEnv(), *exact_agent_, q);
  EXPECT_EQ(a.option_index, b.option_index);
  EXPECT_DOUBLE_EQ(a.total_ms, b.total_ms);
}

class TwoStageTest : public RewriterTest {
 protected:
  static RewriteOptionSet ApproxOptions() {
    std::vector<ApproxRule> rules = {{ApproxKind::kSampleTable, 0.2},
                                     {ApproxKind::kSampleTable, 0.4}};
    return CrossWithApproxRules(scenario_->options, rules, /*include_exact=*/false);
  }
};

TEST_F(TwoStageTest, HandoffOnlyWhenExactExhausted) {
  RewriteOptionSet approx_options = ApproxOptions();
  RewriterEnv approx_env = ExactEnv();
  approx_env.options = &approx_options;
  approx_env.env_config.beta = 0.5;
  approx_env.env_config.quality = quality_;

  // Train a tiny stage-2 agent.
  TrainerConfig tc;
  tc.max_iterations = 5;
  tc.seed = 9;
  Trainer trainer(approx_env, tc);
  std::unique_ptr<QAgent> approx_agent = trainer.Train(scenario_->train);

  TwoStageRewriter two_stage(ExactEnv(), exact_agent_, approx_env,
                             approx_agent.get(), "2-stage");
  MalivaRewriter exact_only(ExactEnv(), exact_agent_, "exact");

  size_t approximated = 0, exact_viable_kept = 0;
  for (size_t i = 0; i < 60 && i < scenario_->evaluation.size(); ++i) {
    const Query& q = *scenario_->evaluation[i];
    RewriteOutcome exact = exact_only.Rewrite(q);
    RewriteOutcome staged = two_stage.Rewrite(q);
    if (exact.viable) {
      // Stage 1 found a viable exact plan: two-stage must not approximate.
      EXPECT_FALSE(staged.approximate);
      EXPECT_DOUBLE_EQ(staged.quality, 1.0);
      ++exact_viable_kept;
    }
    approximated += staged.approximate ? 1 : 0;
  }
  EXPECT_GT(exact_viable_kept, 10u);
  EXPECT_GT(approximated, 0u);  // some hopeless queries were approximated
}

TEST_F(TwoStageTest, ApproximationImprovesZeroViableVqp) {
  RewriteOptionSet approx_options = ApproxOptions();
  RewriterEnv approx_env = ExactEnv();
  approx_env.options = &approx_options;
  approx_env.env_config.beta = 0.5;
  approx_env.env_config.quality = quality_;
  TrainerConfig tc;
  tc.max_iterations = 5;
  tc.seed = 10;
  Trainer trainer(approx_env, tc);
  std::unique_ptr<QAgent> approx_agent = trainer.Train(scenario_->train);
  TwoStageRewriter two_stage(ExactEnv(), exact_agent_, approx_env,
                             approx_agent.get(), "2-stage");

  size_t rescued = 0, zero_viable = 0;
  for (const Query* q : scenario_->evaluation) {
    if (CountViablePlans(*scenario_->oracle, *q, scenario_->options, 500.0) > 0) {
      continue;
    }
    ++zero_viable;
    RewriteOutcome out = two_stage.Rewrite(*q);
    rescued += out.viable ? 1 : 0;
  }
  if (zero_viable < 5) GTEST_SKIP() << "too few zero-viable queries";
  EXPECT_GT(rescued, 0u);
}

}  // namespace
}  // namespace maliva
