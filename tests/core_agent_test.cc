// QAgent tests: architecture, action selection, masking, target sync.

#include <gtest/gtest.h>

#include <set>

#include "core/agent.h"

namespace maliva {
namespace {

TEST(QAgentTest, ArchitectureMatchesPaper) {
  // Input 2n+1, two hidden layers sized like the input, n outputs (Fig 8).
  QAgent agent(8, 1);
  EXPECT_EQ(agent.num_actions(), 8u);
  std::vector<double> f(17, 0.1);
  EXPECT_EQ(agent.QValues(f).size(), 8u);
}

TEST(QAgentTest, GreedyRespectsValidityMask) {
  QAgent agent(4, 2);
  std::vector<double> f(9, 0.2);
  std::vector<double> q = agent.QValues(f);
  size_t best_all = 0;
  for (size_t i = 1; i < q.size(); ++i) {
    if (q[i] > q[best_all]) best_all = i;
  }
  // Mask out the overall argmax; greedy must pick something else.
  std::vector<uint8_t> valid(4, 1);
  valid[best_all] = 0;
  size_t pick = agent.GreedyAction(f, valid);
  EXPECT_NE(pick, best_all);
  EXPECT_TRUE(valid[pick]);
}

TEST(QAgentTest, GreedySingleValidAction) {
  QAgent agent(5, 3);
  std::vector<double> f(11, 0.0);
  std::vector<uint8_t> valid(5, 0);
  valid[3] = 1;
  EXPECT_EQ(agent.GreedyAction(f, valid), 3u);
}

TEST(QAgentTest, EpsilonZeroIsGreedy) {
  QAgent agent(6, 4);
  Rng rng(9);
  std::vector<double> f(13, 0.3);
  std::vector<uint8_t> valid(6, 1);
  size_t greedy = agent.GreedyAction(f, valid);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(agent.EpsilonGreedyAction(f, valid, 0.0, &rng), greedy);
  }
}

TEST(QAgentTest, EpsilonOneExploresAllValid) {
  QAgent agent(4, 5);
  Rng rng(10);
  std::vector<double> f(9, 0.1);
  std::vector<uint8_t> valid = {1, 0, 1, 1};
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) {
    size_t a = agent.EpsilonGreedyAction(f, valid, 1.0, &rng);
    EXPECT_TRUE(valid[a]);
    seen.insert(a);
  }
  EXPECT_EQ(seen.size(), 3u);  // every valid action eventually sampled
}

TEST(QAgentTest, TargetSyncCopiesOnline) {
  QAgent agent(3, 6);
  std::vector<double> f(7, 0.4);
  // Drift the online network.
  for (int i = 0; i < 50; ++i) {
    agent.online()->AccumulateGradient(f, 0, 5.0);
    agent.online()->Step(1e-2, 1);
  }
  EXPECT_NE(agent.QValues(f)[0], agent.TargetQValues(f)[0]);
  agent.SyncTarget();
  EXPECT_DOUBLE_EQ(agent.QValues(f)[0], agent.TargetQValues(f)[0]);
}

TEST(QAgentTest, DeterministicConstruction) {
  QAgent a(4, 42), b(4, 42);
  std::vector<double> f(9, 0.25);
  EXPECT_EQ(a.QValues(f), b.QValues(f));
  QAgent c(4, 43);
  EXPECT_NE(a.QValues(f), c.QValues(f));
}

}  // namespace
}  // namespace maliva
