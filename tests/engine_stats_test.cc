// Tests for TableStats: histogram/grid/MCV estimation properties, including
// the deliberate failure modes the reproduction depends on.

#include <gtest/gtest.h>

#include "engine/table_stats.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace maliva {
namespace {

using testing_helpers::SmallTweets;

TEST(EquiDepthHistogramTest, UniformDataAccuracy) {
  Rng rng(1);
  Column c("v", ColumnType::kDouble);
  for (int i = 0; i < 20000; ++i) c.AppendDouble(rng.Uniform(0, 100));
  EquiDepthHistogram h(c, 64);
  EXPECT_NEAR(h.EstimateSelectivity(0, 100), 1.0, 1e-9);
  EXPECT_NEAR(h.EstimateSelectivity(25, 75), 0.5, 0.03);
  EXPECT_NEAR(h.EstimateSelectivity(10, 20), 0.1, 0.02);
  EXPECT_EQ(h.EstimateSelectivity(200, 300), 0.0);
  EXPECT_EQ(h.EstimateSelectivity(50, 40), 0.0);  // inverted
}

TEST(EquiDepthHistogramTest, SkewedDataStillCalibrated) {
  Rng rng(2);
  Column c("v", ColumnType::kDouble);
  for (int i = 0; i < 20000; ++i) c.AppendDouble(rng.LogNormal(0, 1));
  EquiDepthHistogram h(c, 64);
  // Equi-depth adapts bucket widths to skew; median range still ~0.5.
  double sel = h.EstimateSelectivity(0.0, 1.0);  // median of lognormal(0,1) = 1
  EXPECT_NEAR(sel, 0.5, 0.05);
}

TEST(EquiDepthHistogramTest, HeavyDuplicates) {
  Column c("v", ColumnType::kInt64);
  for (int i = 0; i < 1000; ++i) c.AppendInt64(5);
  for (int i = 0; i < 100; ++i) c.AppendInt64(10);
  EquiDepthHistogram h(c, 16);
  double sel5 = h.EstimateSelectivity(5, 5);
  EXPECT_GT(sel5, 0.5);  // most buckets are the duplicate value
}

TEST(EquiDepthHistogramTest, EmptyColumn) {
  Column c("v", ColumnType::kDouble);
  EquiDepthHistogram h(c, 16);
  EXPECT_EQ(h.EstimateSelectivity(0, 1), 0.0);
}

TEST(GridHistogram2DTest, UniformAccuracy) {
  Rng rng(3);
  Column c("p", ColumnType::kPoint);
  for (int i = 0; i < 20000; ++i) {
    c.AppendPoint({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  GridHistogram2D g(c, 8);
  EXPECT_NEAR(g.EstimateSelectivity({0, 0, 10, 10}), 1.0, 0.01);
  EXPECT_NEAR(g.EstimateSelectivity({0, 0, 5, 10}), 0.5, 0.03);
  EXPECT_NEAR(g.EstimateSelectivity({2, 2, 4, 4}), 0.04, 0.02);
  EXPECT_EQ(g.EstimateSelectivity({20, 20, 30, 30}), 0.0);
}

TEST(GridHistogram2DTest, HotspotUnderestimatedInsideCell) {
  // All mass concentrated in a tiny hotspot; a small box over the hotspot is
  // underestimated by the uniformity assumption — the deliberate error.
  Rng rng(4);
  Column c("p", ColumnType::kPoint);
  for (int i = 0; i < 5000; ++i) {
    c.AppendPoint({rng.Uniform(4.0, 4.2), rng.Uniform(4.0, 4.2)});  // hotspot
  }
  for (int i = 0; i < 5000; ++i) {
    c.AppendPoint({rng.Uniform(0, 10), rng.Uniform(0, 10)});  // background
  }
  GridHistogram2D g(c, 8);
  double est = g.EstimateSelectivity({4.0, 4.0, 4.2, 4.2});
  // True selectivity is > 0.5; the coarse grid spreads the hotspot mass over
  // the whole enclosing cell.
  EXPECT_LT(est, 0.25);
  EXPECT_GT(est, 0.0);
}

TEST(TextStatsTest, McvAccurateTailDefaults) {
  Column c("text", ColumnType::kText);
  // "top" occurs in 50% of rows, "mid" in 5%, "rare" in 0.1%.
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    std::string s = "base";
    if (rng.Bernoulli(0.5)) s += " top";
    if (rng.Bernoulli(0.05)) s += " mid";
    if (rng.Bernoulli(0.001)) s += " rare";
    c.AppendText(s);
  }
  TextStats stats(c, /*mcv_size=*/2, /*default_selectivity=*/1e-4);
  // "base" and "top" are the two most common -> accurate.
  EXPECT_NEAR(stats.EstimateSelectivity("base"), 1.0, 0.01);
  EXPECT_NEAR(stats.EstimateSelectivity("top"), 0.5, 0.02);
  // "mid" misses the MCV -> falls to the default, a ~500x underestimate.
  EXPECT_DOUBLE_EQ(stats.EstimateSelectivity("mid"), 1e-4);
  EXPECT_DOUBLE_EQ(stats.EstimateSelectivity("absent"), 1e-4);
  EXPECT_TRUE(stats.IsCommon("top"));
  EXPECT_FALSE(stats.IsCommon("mid"));
}

TEST(TableStatsTest, DispatchesByPredicateType) {
  auto table = SmallTweets(5000, 11);
  TableStats stats(*table, TableStats::Options{});
  EXPECT_EQ(stats.num_rows(), 5000u);

  double kw = stats.EstimateSelectivity(Predicate::Keyword("text", "w0"));
  EXPECT_GT(kw, 0.0);
  EXPECT_LE(kw, 1.0);

  double tm = stats.EstimateSelectivity(Predicate::Time("created_at", 0, 9999));
  EXPECT_NEAR(tm, 1.0, 0.02);

  double sp = stats.EstimateSelectivity(
      Predicate::Spatial("coordinates", {0, 0, 100, 50}));
  EXPECT_NEAR(sp, 1.0, 0.02);
}

TEST(TableStatsTest, ConjunctionIsProduct) {
  auto table = SmallTweets(5000, 12);
  TableStats stats(*table, TableStats::Options{});
  Predicate a = Predicate::Time("created_at", 0, 4999);
  Predicate b = Predicate::Spatial("coordinates", {0, 0, 50, 50});
  double pa = stats.EstimateSelectivity(a);
  double pb = stats.EstimateSelectivity(b);
  EXPECT_NEAR(stats.EstimateConjunction({a, b}), pa * pb, 1e-12);
}

TEST(TableStatsTest, CorrelationInvisibleToIndependence) {
  // The "burst" word only occurs within a time window; the independence
  // assumption underestimates the conjunction of (burst AND window).
  auto table = SmallTweets(20000, 13);
  TableStats stats(*table, TableStats::Options{});
  Predicate kw = Predicate::Keyword("text", "burst");
  Predicate tm = Predicate::Time("created_at", 5000, 5999);
  double est = stats.EstimateConjunction({kw, tm});

  // True conjunction selectivity: count directly.
  size_t match = 0;
  const Column& text = table->GetColumn("text");
  const Column& ts = table->GetColumn("created_at");
  for (RowId r = 0; r < table->NumRows(); ++r) {
    if (ts.TimestampAt(r) >= 5000 && ts.TimestampAt(r) < 6000 &&
        text.TextAt(r).find("burst") != std::string::npos) {
      ++match;
    }
  }
  double truth = static_cast<double>(match) / static_cast<double>(table->NumRows());
  EXPECT_GT(truth, est * 2.0);  // at least 2x underestimated
}

}  // namespace
}  // namespace maliva
