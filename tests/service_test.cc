// Service-layer tests: RewriterFactory round-trips, Serve/ServeBatch
// semantics, per-request overrides, and Status (not crash) error paths.

#include <gtest/gtest.h>

#include <span>

#include "baselines/baseline.h"
#include "service/service.h"

namespace maliva {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 20000;
    cfg.num_queries = 120;
    cfg.tau_ms = 500.0;
    cfg.seed = 71;
    cfg.approx_sample_rates = {0.2, 0.4};
    scenario_ = new Scenario(BuildScenario(cfg));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  /// Cheap training so every strategy can be built in-test.
  static ServiceConfig SmallConfig() {
    return ServiceConfig()
        .WithTrainerIterations(3)
        .WithAgentSeeds(1)
        .WithApproxRules({{ApproxKind::kSampleTable, 0.2},
                          {ApproxKind::kSampleTable, 0.4}});
  }

  static Scenario* scenario_;
};

Scenario* ServiceTest::scenario_ = nullptr;

void ExpectSameOutcome(const RewriteOutcome& a, const RewriteOutcome& b) {
  EXPECT_EQ(a.option_index, b.option_index);
  EXPECT_DOUBLE_EQ(a.planning_ms, b.planning_ms);
  EXPECT_DOUBLE_EQ(a.exec_ms, b.exec_ms);
  EXPECT_DOUBLE_EQ(a.total_ms, b.total_ms);
  EXPECT_EQ(a.viable, b.viable);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_DOUBLE_EQ(a.quality, b.quality);
  EXPECT_EQ(a.approximate, b.approximate);
}

TEST_F(ServiceTest, FactoryRoundTripsEveryRegisteredStrategy) {
  MalivaService service(scenario_, SmallConfig());
  std::vector<std::string> names = service.RegisteredStrategies();
  ASSERT_GE(names.size(), 7u);
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    Result<const Rewriter*> built = service.GetRewriter(name);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    EXPECT_FALSE(built.value()->name().empty());
    EXPECT_GT(built.value()->default_tau_ms(), 0.0);
    // Second lookup returns the cached instance.
    Result<const Rewriter*> again = service.GetRewriter(name);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(built.value(), again.value());
    // And the strategy actually serves.
    RewriteRequest req;
    req.query = scenario_->evaluation[0];
    req.strategy = name;
    Result<RewriteResponse> resp = service.Serve(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().strategy, name);
    EXPECT_FALSE(resp.value().rewritten_sql.empty());
  }
}

TEST_F(ServiceTest, RegisteredStrategiesContainTheBuiltins) {
  MalivaService service(scenario_, SmallConfig());
  std::vector<std::string> names = service.RegisteredStrategies();
  for (const char* expected : {"baseline", "naive", "mdp/accurate", "mdp/sampling",
                               "bao", "quality/one-stage", "quality/two-stage"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing builtin strategy " << expected;
  }
}

TEST_F(ServiceTest, ServeBatchMatchesSequentialServe) {
  // Two fresh services train identical agents (seeded training), so batch
  // results on one must match sequential results on the other byte for byte.
  MalivaService sequential(scenario_, SmallConfig());
  MalivaService batched(scenario_, SmallConfig());

  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 12 && i < scenario_->evaluation.size(); ++i) {
    RewriteRequest req;
    req.query = scenario_->evaluation[i];
    req.strategy = (i % 3 == 0) ? "baseline" : (i % 3 == 1) ? "mdp/accurate" : "naive";
    if (i % 4 == 0) req.tau_ms = 250.0 + 50.0 * static_cast<double>(i);
    requests.push_back(req);
  }

  std::vector<Result<RewriteResponse>> batch = batched.ServeBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    Result<RewriteResponse> one = sequential.Serve(requests[i]);
    ASSERT_TRUE(one.ok());
    ASSERT_TRUE(batch[i].ok());
    ExpectSameOutcome(one.value().outcome, batch[i].value().outcome);
    EXPECT_EQ(one.value().rewritten_sql, batch[i].value().rewritten_sql);
    EXPECT_EQ(one.value().strategy, batch[i].value().strategy);
  }
}

TEST_F(ServiceTest, ServeBatchIsDeterministic) {
  MalivaService service(scenario_, SmallConfig());
  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 8 && i < scenario_->evaluation.size(); ++i) {
    RewriteRequest req;
    req.query = scenario_->evaluation[i];
    req.strategy = "mdp/sampling";
    requests.push_back(req);
  }
  std::vector<Result<RewriteResponse>> first = service.ServeBatch(requests);
  std::vector<Result<RewriteResponse>> second = service.ServeBatch(requests);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(first[i].ok());
    ASSERT_TRUE(second[i].ok());
    ExpectSameOutcome(first[i].value().outcome, second[i].value().outcome);
  }
}

TEST_F(ServiceTest, UnknownStrategyReturnsNotFound) {
  MalivaService service(scenario_, SmallConfig());
  Result<const Rewriter*> built = service.GetRewriter("definitely/not-a-strategy");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), Status::Code::kNotFound);

  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "definitely/not-a-strategy";
  Result<RewriteResponse> resp = service.Serve(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), Status::Code::kNotFound);
}

TEST_F(ServiceTest, QualityStrategiesWithoutRulesReturnFailedPrecondition) {
  MalivaService service(scenario_, ServiceConfig()
                                       .WithTrainerIterations(2)
                                       .WithAgentSeeds(1));  // no approx rules
  for (const char* name : {"quality/one-stage", "quality/two-stage"}) {
    SCOPED_TRACE(name);
    Result<const Rewriter*> built = service.GetRewriter(name);
    ASSERT_FALSE(built.ok());
    EXPECT_EQ(built.status().code(), Status::Code::kFailedPrecondition);
  }
}

TEST_F(ServiceTest, ExactRuleInApproxRulesIsRejected) {
  ServiceConfig config = ServiceConfig().WithTrainerIterations(2).WithAgentSeeds(1);
  config.approx_rules = {{ApproxKind::kNone, 1.0}};
  MalivaService service(scenario_, config);
  Result<const Rewriter*> built = service.GetRewriter("quality/one-stage");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(ServiceTest, MissingAgentReturnsStatusInsteadOfCrashing) {
  // A scenario without a training split cannot train agents: strategies that
  // need one must fail with a Status, while "baseline" still serves.
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 5000;
  cfg.num_queries = 40;
  cfg.seed = 72;
  Scenario scenario = BuildScenario(cfg);
  scenario.train.clear();

  MalivaService service(&scenario, ServiceConfig().WithAgentSeeds(1));
  Result<const Rewriter*> mdp = service.GetRewriter("mdp/accurate");
  ASSERT_FALSE(mdp.ok());
  EXPECT_EQ(mdp.status().code(), Status::Code::kFailedPrecondition);
  Result<const Rewriter*> bao = service.GetRewriter("bao");
  ASSERT_FALSE(bao.ok());
  EXPECT_EQ(bao.status().code(), Status::Code::kFailedPrecondition);

  RewriteRequest req;
  req.query = scenario.evaluation[0];
  req.strategy = "baseline";
  EXPECT_TRUE(service.Serve(req).ok());
}

TEST_F(ServiceTest, InvalidRequestsAreRejected) {
  MalivaService service(scenario_, SmallConfig());

  RewriteRequest null_query;
  null_query.strategy = "baseline";
  EXPECT_EQ(service.Serve(null_query).status().code(),
            Status::Code::kInvalidArgument);

  RewriteRequest bad_tau;
  bad_tau.query = scenario_->evaluation[0];
  bad_tau.strategy = "baseline";
  bad_tau.tau_ms = -5.0;
  EXPECT_EQ(service.Serve(bad_tau).status().code(), Status::Code::kInvalidArgument);

  RewriteRequest bad_floor;
  bad_floor.query = scenario_->evaluation[0];
  bad_floor.strategy = "baseline";
  bad_floor.quality_floor = 1.5;
  EXPECT_EQ(service.Serve(bad_floor).status().code(),
            Status::Code::kInvalidArgument);
}

TEST_F(ServiceTest, PerRequestTauOverrideControlsViability) {
  MalivaService service(scenario_, SmallConfig());
  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "baseline";

  req.tau_ms = 1e9;  // everything is viable under an enormous budget
  Result<RewriteResponse> generous = service.Serve(req);
  ASSERT_TRUE(generous.ok());
  EXPECT_TRUE(generous.value().outcome.viable);

  req.tau_ms = 1e-3;  // nothing is viable under a microscopic one
  Result<RewriteResponse> strict = service.Serve(req);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict.value().outcome.viable);

  // The override changes viability accounting only, not the plan choice.
  EXPECT_DOUBLE_EQ(generous.value().outcome.total_ms,
                   strict.value().outcome.total_ms);
}

TEST_F(ServiceTest, QualityFloorFallsBackToExactPlan) {
  MalivaService service(scenario_, SmallConfig());
  // Find a query the quality-aware strategy serves approximately.
  const Query* approximated = nullptr;
  for (const Query* q : scenario_->evaluation) {
    RewriteRequest req;
    req.query = q;
    req.strategy = "quality/one-stage";
    Result<RewriteResponse> resp = service.Serve(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (resp.value().outcome.approximate && resp.value().outcome.quality < 0.99) {
      approximated = q;
      break;
    }
  }
  if (approximated == nullptr) {
    GTEST_SKIP() << "no query was served approximately";
  }

  RewriteRequest strict;
  strict.query = approximated;
  strict.strategy = "quality/one-stage";
  strict.quality_floor = 0.99;
  Result<RewriteResponse> resp = service.Serve(strict);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().exact_fallback);
  EXPECT_EQ(resp.value().strategy, "baseline");  // who actually served it
  EXPECT_DOUBLE_EQ(resp.value().outcome.quality, 1.0);
  EXPECT_FALSE(resp.value().outcome.approximate);
  // The first attempt's planning time stays on the bill: baseline alone
  // makes zero QTE calls and pays only the optimizer pass.
  EXPECT_GT(resp.value().outcome.steps, 0u);
  EXPECT_NEAR(resp.value().outcome.total_ms,
              resp.value().outcome.planning_ms + resp.value().outcome.exec_ms,
              1e-9);
}

TEST_F(ServiceTest, ExplicitQteJitterSeedIsHonored) {
  QteParams custom;
  custom.jitter_seed = 424242;
  MalivaService service(scenario_, SmallConfig().WithQte(custom));
  EXPECT_EQ(service.qte_params().jitter_seed, 424242u);
}

TEST_F(ServiceTest, CustomStrategyCanBeRegistered) {
  // One-time global registration (the registry outlives the test).
  static bool registered = [] {
    Status st = RewriterFactory::Global().Register(
        "custom/lenient-baseline",
        [](MalivaService& s) -> Result<std::unique_ptr<Rewriter>> {
          return std::unique_ptr<Rewriter>(std::make_unique<BaselineRewriter>(
              s.scenario()->engine.get(), s.scenario()->oracle.get(),
              /*tau_ms=*/10.0 * s.scenario()->config.tau_ms));
        });
    return st.ok();
  }();
  ASSERT_TRUE(registered);

  // Duplicate registration is rejected.
  Status dup = RewriterFactory::Global().Register(
      "custom/lenient-baseline",
      [](MalivaService&) -> Result<std::unique_ptr<Rewriter>> {
        return Status::Internal("never built");
      });
  EXPECT_FALSE(dup.ok());

  MalivaService service(scenario_, SmallConfig());
  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "custom/lenient-baseline";
  Result<RewriteResponse> resp = service.Serve(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  // 10x budget: the baseline plan is judged against 5000ms, not 500ms.
  EXPECT_EQ(resp.value().outcome.viable,
            resp.value().outcome.total_ms <= 5000.0);
}

TEST_F(ServiceTest, QteParamsResolveFromScenarioAndConfig) {
  // By default the service adopts the scenario's QTE cost parameters.
  MalivaService from_scenario(scenario_, SmallConfig());
  EXPECT_DOUBLE_EQ(from_scenario.qte_params().unit_cost_ms,
                   scenario_->config.qte.unit_cost_ms);

  // An explicit config override wins.
  QteParams custom;
  custom.unit_cost_ms = 99.0;
  MalivaService overridden(scenario_, SmallConfig().WithQte(custom));
  EXPECT_DOUBLE_EQ(overridden.qte_params().unit_cost_ms, 99.0);

  // Either way the env wiring carries the resolved values.
  EXPECT_DOUBLE_EQ(overridden.MakeEnv(nullptr).qte_params.unit_cost_ms, 99.0);
}

}  // namespace
}  // namespace maliva
