// QTE tests: cost accounting, selectivity-cache sharing (the C_i updates of
// the MDP transition), accurate vs sampling estimation behaviour.

#include <gtest/gtest.h>

#include "qte/accurate_qte.h"
#include "qte/sampling_qte.h"
#include "test_helpers.h"

namespace maliva {
namespace {

using testing_helpers::SmallEngine;
using testing_helpers::SmallQuery;

class QteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = SmallEngine(4000, 7);
    ASSERT_TRUE(engine_->BuildSampleTables("tweets", {0.01}, 3).ok());
    oracle_ = std::make_unique<PlanTimeOracle>(engine_.get());
    options_ = EnumerateHintOnlyOptions(3);
    query_ = SmallQuery(1, "w1", 2000, 7000, {20, 10, 80, 40});
    ctx_.query = &query_;
    ctx_.options = &options_;
    ctx_.engine = engine_.get();
    ctx_.oracle = oracle_.get();
    ctx_.params.unit_cost_ms = 40.0;
    ctx_.params.model_eval_ms = 2.0;
    ctx_.params.qte_sample_rate = 0.01;
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<PlanTimeOracle> oracle_;
  RewriteOptionSet options_;
  Query query_;
  QteContext ctx_;
};

TEST_F(QteTest, NumSlotsEqualsPredicates) { EXPECT_EQ(ctx_.NumSlots(), 3u); }

TEST_F(QteTest, NeededSlotsFollowMask) {
  // Option index == mask for EnumerateHintOnlyOptions.
  EXPECT_EQ(ctx_.NeededSlots(0b101), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(ctx_.NeededSlots(0b010), (std::vector<size_t>{1}));
  // Forced full scan needs every selectivity for the output estimate.
  EXPECT_EQ(ctx_.NeededSlots(0), (std::vector<size_t>{0, 1, 2}));
}

TEST_F(QteTest, ActualSlotCostJittersAroundUnit) {
  for (size_t slot = 0; slot < 3; ++slot) {
    double c = ctx_.ActualSlotCostMs(slot);
    EXPECT_GE(c, 0.75 * ctx_.params.unit_cost_ms);
    EXPECT_LE(c, 1.25 * ctx_.params.unit_cost_ms);
    EXPECT_DOUBLE_EQ(c, ctx_.ActualSlotCostMs(slot));  // deterministic
  }
}

TEST_F(QteTest, PredictCostDropsAsSlotsCollected) {
  AccurateQte qte;
  SelectivityCache cache(ctx_.NumSlots());
  double c_before = qte.PredictCostMs(ctx_, 0b111, cache);
  EXPECT_NEAR(c_before, qte.CostFactor() * 3 * 40.0 + 2.0, 1e-9);
  cache.Set(0, 0.01);
  double c_after = qte.PredictCostMs(ctx_, 0b111, cache);
  EXPECT_NEAR(c_after, qte.CostFactor() * 2 * 40.0 + 2.0, 1e-9);
}

TEST_F(QteTest, EstimateChargesOnlyMissingSlots) {
  // Estimating RQ_1 (keyword index) then RQ_5 (keyword+spatial) only pays for
  // the spatial slot the second time — the paper's Fig 7 transition.
  AccurateQte qte;
  SelectivityCache cache(ctx_.NumSlots());
  QteEstimate first = qte.Estimate(ctx_, 0b001, &cache);
  EXPECT_NEAR(first.cost_ms, qte.CostFactor() * ctx_.ActualSlotCostMs(0) + 2.0, 1e-9);
  QteEstimate second = qte.Estimate(ctx_, 0b101, &cache);
  EXPECT_NEAR(second.cost_ms, qte.CostFactor() * ctx_.ActualSlotCostMs(2) + 2.0, 1e-9);
  QteEstimate third = qte.Estimate(ctx_, 0b100, &cache);
  EXPECT_NEAR(third.cost_ms, 2.0, 1e-9);  // everything cached
}

TEST_F(QteTest, AccurateQteReturnsTrueTime) {
  AccurateQte qte;
  SelectivityCache cache(ctx_.NumSlots());
  for (size_t i = 0; i < options_.size(); ++i) {
    QteEstimate est = qte.Estimate(ctx_, i, &cache);
    EXPECT_DOUBLE_EQ(est.est_ms, oracle_->TrueTimeMs(query_, options_[i]));
  }
}

TEST_F(QteTest, AccurateQteFillsTrueSelectivities) {
  AccurateQte qte;
  SelectivityCache cache(ctx_.NumSlots());
  qte.Estimate(ctx_, 0b111, &cache);
  for (size_t slot = 0; slot < 3; ++slot) {
    ASSERT_TRUE(cache.Has(slot));
    Result<double> truth = engine_->TrueSelectivity("tweets", query_.predicates[slot]);
    EXPECT_DOUBLE_EQ(cache.Get(slot), truth.value());
  }
}

TEST_F(QteTest, SamplingQteWithinErrorBand) {
  SamplingQte qte;
  SelectivityCache cache(ctx_.NumSlots());
  // Estimate the time-index plan: time selectivity ~0.5 is well measurable on
  // the 1% sample, so the estimate should be within ~3x of the truth.
  QteEstimate est = qte.Estimate(ctx_, 0b010, &cache);
  double truth = oracle_->TrueTimeMs(query_, options_[0b010]);
  EXPECT_GT(est.est_ms, truth / 3.0);
  EXPECT_LT(est.est_ms, truth * 3.0);
}

TEST_F(QteTest, SamplingQteDeterministic) {
  SamplingQte qte;
  SelectivityCache c1(ctx_.NumSlots()), c2(ctx_.NumSlots());
  EXPECT_DOUBLE_EQ(qte.Estimate(ctx_, 3, &c1).est_ms, qte.Estimate(ctx_, 3, &c2).est_ms);
}

TEST_F(QteTest, SamplingQteCostsSameUnits) {
  SamplingQte qte;
  SelectivityCache cache(ctx_.NumSlots());
  QteEstimate est = qte.Estimate(ctx_, 0b011, &cache);
  EXPECT_NEAR(est.cost_ms, ctx_.ActualSlotCostMs(0) + ctx_.ActualSlotCostMs(1) + 2.0,
              1e-9);
  EXPECT_EQ(cache.NumCollected(), 2u);
}

TEST(SelectivityCacheTest, Basics) {
  SelectivityCache cache(4);
  EXPECT_EQ(cache.num_slots(), 4u);
  EXPECT_FALSE(cache.Has(0));
  cache.Set(0, 0.25);
  EXPECT_TRUE(cache.Has(0));
  EXPECT_DOUBLE_EQ(cache.Get(0), 0.25);
  EXPECT_EQ(cache.NumCollected(), 1u);
  cache.Set(0, 0.5);  // overwrite allowed
  EXPECT_DOUBLE_EQ(cache.Get(0), 0.5);
}

TEST(PlanTimeOracleTest, CachesExecutions) {
  auto engine = SmallEngine(2000, 5);
  PlanTimeOracle oracle(engine.get());
  Query q = SmallQuery(9, "w1", 0, 9999, {0, 0, 100, 50});
  RewriteOption ro;
  ro.hints.index_mask = 1;
  double a = oracle.TrueTimeMs(q, ro);
  EXPECT_EQ(oracle.CacheSize(), 1u);
  double b = oracle.TrueTimeMs(q, ro);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_EQ(oracle.CacheSize(), 1u);
  ro.hints.index_mask = 2;
  oracle.TrueTimeMs(q, ro);
  EXPECT_EQ(oracle.CacheSize(), 2u);
}

TEST(PlanTimeOracleTest, DistinguishesApproxOptions) {
  auto engine = SmallEngine(2000, 5);
  ASSERT_TRUE(engine->BuildSampleTables("tweets", {0.2}, 3).ok());
  PlanTimeOracle oracle(engine.get());
  Query q = SmallQuery(10, "w0", 0, 9999, {0, 0, 100, 50});
  RewriteOption exact;
  exact.hints.index_mask = 1;
  RewriteOption sampled = exact;
  sampled.approx = {ApproxKind::kSampleTable, 0.2};
  EXPECT_GT(oracle.TrueTimeMs(q, exact), oracle.TrueTimeMs(q, sampled));
  EXPECT_EQ(oracle.CacheSize(), 2u);
}

}  // namespace
}  // namespace maliva
