// Quality-function tests: Jaccard over ids/bins, distribution precision,
// and the caching QualityOracle.

#include <gtest/gtest.h>

#include "quality/quality.h"
#include "test_helpers.h"

namespace maliva {
namespace {

VisResult Ids(std::vector<int64_t> ids) {
  VisResult v;
  v.ids = std::move(ids);
  return v;
}

VisResult Bins(std::vector<std::pair<int64_t, int64_t>> bins) {
  VisResult v;
  for (auto& [b, c] : bins) v.bins[b] = c;
  return v;
}

TEST(JaccardIdsTest, IdenticalIsOne) {
  VisResult a = Ids({1, 2, 3});
  EXPECT_DOUBLE_EQ(JaccardIds(a, a), 1.0);
}

TEST(JaccardIdsTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(JaccardIds(Ids({1, 2}), Ids({3, 4})), 0.0);
}

TEST(JaccardIdsTest, PartialOverlap) {
  // |{2,3}| / |{1,2,3,4}| = 0.5
  EXPECT_DOUBLE_EQ(JaccardIds(Ids({1, 2, 3}), Ids({2, 3, 4})), 0.5);
}

TEST(JaccardIdsTest, EmptyBothIsOne) {
  EXPECT_DOUBLE_EQ(JaccardIds(Ids({}), Ids({})), 1.0);
  EXPECT_DOUBLE_EQ(JaccardIds(Ids({1}), Ids({})), 0.0);
}

TEST(JaccardIdsTest, DuplicatesCollapse) {
  EXPECT_DOUBLE_EQ(JaccardIds(Ids({1, 1, 2}), Ids({1, 2, 2})), 1.0);
}

TEST(JaccardBinsTest, BinSetsNotCounts) {
  VisResult a = Bins({{0, 100}, {1, 1}});
  VisResult b = Bins({{0, 1}, {1, 100}});
  EXPECT_DOUBLE_EQ(JaccardBins(a, b), 1.0);  // same non-empty bins
  VisResult c = Bins({{0, 5}, {2, 5}});
  EXPECT_DOUBLE_EQ(JaccardBins(a, c), 1.0 / 3.0);
}

TEST(DistributionPrecisionTest, IdenticalDistributions) {
  VisResult a = Bins({{0, 10}, {1, 30}});
  EXPECT_NEAR(DistributionPrecision(a, a), 1.0, 1e-12);
  // Scaled counts, same distribution.
  VisResult b = Bins({{0, 1}, {1, 3}});
  EXPECT_NEAR(DistributionPrecision(a, b), 1.0, 1e-12);
}

TEST(DistributionPrecisionTest, DisjointIsZero) {
  VisResult a = Bins({{0, 10}});
  VisResult b = Bins({{1, 10}});
  EXPECT_NEAR(DistributionPrecision(a, b), 0.0, 1e-12);
}

TEST(DistributionPrecisionTest, EmptyEdgeCases) {
  VisResult empty;
  VisResult full = Bins({{0, 1}});
  EXPECT_DOUBLE_EQ(DistributionPrecision(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(DistributionPrecision(full, empty), 0.0);
}

TEST(VisQualityTest, DispatchesOnOutputKind) {
  Query scatter;
  scatter.output = OutputKind::kScatter;
  Query heatmap;
  heatmap.output = OutputKind::kHeatmap;
  VisResult a = Ids({1, 2});
  a.bins[0] = 2;
  VisResult b = Ids({1, 2});
  b.bins[1] = 2;
  EXPECT_DOUBLE_EQ(VisQuality(scatter, a, b), 1.0);  // ids equal
  EXPECT_DOUBLE_EQ(VisQuality(heatmap, a, b), 0.0);  // bins disjoint
}

class QualityOracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = testing_helpers::SmallEngine(4000, 7);
    ASSERT_TRUE(engine_->BuildSampleTables("tweets", {0.2, 0.6}, 3).ok());
    oracle_ = std::make_unique<QualityOracle>(engine_.get());
  }
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<QualityOracle> oracle_;
};

TEST_F(QualityOracleTest, ExactOptionsScoreOneWithoutExecution) {
  Query q = testing_helpers::SmallQuery(1, "w1", 0, 9999, {0, 0, 100, 50});
  RewriteOption exact;
  exact.hints.index_mask = 3;
  EXPECT_DOUBLE_EQ(oracle_->Quality(q, exact), 1.0);
}

TEST_F(QualityOracleTest, LargerSampleHigherQuality) {
  Query q = testing_helpers::SmallQuery(2, "w0", 0, 9999, {0, 0, 100, 50});
  RewriteOption s20, s60;
  s20.hints.index_mask = 1;
  s20.approx = {ApproxKind::kSampleTable, 0.2};
  s60.hints.index_mask = 1;
  s60.approx = {ApproxKind::kSampleTable, 0.6};
  double q20 = oracle_->Quality(q, s20);
  double q60 = oracle_->Quality(q, s60);
  EXPECT_GT(q20, 0.05);
  EXPECT_LT(q20, 0.45);   // ~20% of ids retained -> Jaccard ~0.2
  EXPECT_GT(q60, q20);    // bigger sample, better quality
  EXPECT_LT(q60, 1.0);
}

TEST_F(QualityOracleTest, LimitQualityTracksFraction) {
  Query q = testing_helpers::SmallQuery(3, "w0", 0, 9999, {0, 0, 100, 50});
  double prev = -1.0;
  for (double frac : {0.02, 0.2, 0.9}) {
    RewriteOption ro;
    ro.hints.index_mask = 1;
    ro.approx = {ApproxKind::kLimit, frac};
    double quality = oracle_->Quality(q, ro);
    EXPECT_GT(quality, prev);
    prev = quality;
  }
}

TEST_F(QualityOracleTest, CachedResultsStable) {
  Query q = testing_helpers::SmallQuery(4, "w1", 0, 9999, {0, 0, 100, 50});
  RewriteOption ro;
  ro.hints.index_mask = 1;
  ro.approx = {ApproxKind::kSampleTable, 0.2};
  double a = oracle_->Quality(q, ro);
  double b = oracle_->Quality(q, ro);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace maliva
