// Shared helpers for engine-level tests: a small deterministic dataset with
// text/time/point columns, plus brute-force evaluation of queries.

#ifndef MALIVA_TESTS_TEST_HELPERS_H_
#define MALIVA_TESTS_TEST_HELPERS_H_

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/query.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace maliva {
namespace testing_helpers {

/// Builds a small tweets-like table with correlated structure:
/// word "burst" co-occurs with ts in [5000, 6000) and lon in [40, 60).
inline std::unique_ptr<Table> SmallTweets(size_t n, uint64_t seed) {
  Schema schema = {{"id", ColumnType::kInt64},
                   {"text", ColumnType::kText},
                   {"created_at", ColumnType::kTimestamp},
                   {"coordinates", ColumnType::kPoint}};
  auto t = std::make_unique<Table>("tweets", schema);
  Rng rng(seed);
  ZipfTable words(50, 1.1);
  for (size_t i = 0; i < n; ++i) {
    int64_t ts = rng.UniformInt(0, 9999);
    GeoPoint p{rng.Uniform(0, 100), rng.Uniform(0, 50)};
    std::string text = "w" + std::to_string(words.Sample(&rng)) + " w" +
                       std::to_string(words.Sample(&rng));
    if (ts >= 5000 && ts < 6000 && p.lon >= 40 && p.lon < 60 && rng.Bernoulli(0.8)) {
      text += " burst";
    }
    t->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(i));
    t->MutableColumnAt(1).AppendText(std::move(text));
    t->MutableColumnAt(2).AppendTimestamp(ts);
    t->MutableColumnAt(3).AppendPoint(p);
  }
  Status st = t->Seal();
  assert(st.ok());
  (void)st;
  return t;
}

/// Engine with SmallTweets registered and indexed.
inline std::unique_ptr<Engine> SmallEngine(size_t n = 4000, uint64_t seed = 7,
                                           EngineProfile profile =
                                               EngineProfile::PostgresLike()) {
  auto engine = std::make_unique<Engine>(profile, seed);
  Status st = engine->RegisterTable(SmallTweets(n, seed),
                                    {"text", "created_at", "coordinates"});
  assert(st.ok());
  (void)st;
  return engine;
}

/// Brute-force row ids matching all base predicates of `q` over `table`.
inline std::vector<RowId> BruteForceMatch(const Table& table, const Query& q) {
  std::vector<RowId> out;
  for (RowId r = 0; r < table.NumRows(); ++r) {
    bool ok = true;
    for (const Predicate& p : q.predicates) {
      switch (p.type) {
        case PredicateType::kKeyword: {
          std::vector<std::string> toks = Tokenize(table.GetColumn(p.column).TextAt(r));
          if (std::find(toks.begin(), toks.end(), p.keyword) == toks.end()) ok = false;
          break;
        }
        case PredicateType::kTimeRange:
        case PredicateType::kNumericRange:
          if (!p.range.Contains(table.GetColumn(p.column).NumericAt(r))) ok = false;
          break;
        case PredicateType::kSpatialBox:
          if (!p.box.Contains(table.GetColumn(p.column).PointAt(r))) ok = false;
          break;
      }
      if (!ok) break;
    }
    if (ok) out.push_back(r);
  }
  return out;
}

/// A three-predicate query over SmallTweets.
inline Query SmallQuery(uint64_t id, const std::string& word, double ts_lo, double ts_hi,
                        const BoundingBox& box,
                        OutputKind output = OutputKind::kScatter) {
  Query q;
  q.id = id;
  q.table = "tweets";
  q.output = output;
  q.output_column = "coordinates";
  q.predicates.push_back(Predicate::Keyword("text", word));
  q.predicates.push_back(Predicate::Time("created_at", ts_lo, ts_hi));
  q.predicates.push_back(Predicate::Spatial("coordinates", box));
  return q;
}

}  // namespace testing_helpers
}  // namespace maliva

#endif  // MALIVA_TESTS_TEST_HELPERS_H_
