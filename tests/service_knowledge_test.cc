// Cross-request knowledge plane tests at the service layer: warm-store
// requests collect fewer selectivities than cold ones, off-mode behaviour is
// unchanged and reports no shared traffic, epoch invalidation via engine
// catalog changes, ServiceConfig::Validate(), and the Stats() snapshot. The
// suite name carries "Service" so the scripts/ci.sh sanitizer legs
// (-R 'Service|Concurrency') run it.

#include <gtest/gtest.h>

#include <limits>

#include "query/signature.h"
#include "service/service.h"

namespace maliva {
namespace {

class ServiceKnowledgePlaneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 20000;
    cfg.num_queries = 120;
    cfg.tau_ms = 500.0;
    cfg.seed = 131;
    scenario_ = new Scenario(BuildScenario(cfg));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static ServiceConfig SmallConfig() {
    return ServiceConfig().WithTrainerIterations(3).WithAgentSeeds(1);
  }

  static Scenario* scenario_;
};

Scenario* ServiceKnowledgePlaneTest::scenario_ = nullptr;

TEST_F(ServiceKnowledgePlaneTest, WarmStoreServesSharedHitsAndCollectsLess) {
  MalivaService service(scenario_, SmallConfig().WithCrossRequestCache(true));

  // "naive" enumerates every option, so a cold request collects every slot
  // and a fully warmed one collects none — the cleanest cold/warm contrast.
  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "naive";

  Result<RewriteResponse> cold = service.Serve(req);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold.value().stats.selectivities_collected, 0u);
  EXPECT_EQ(cold.value().stats.shared_hits, 0u);
  EXPECT_GT(cold.value().stats.shared_published, 0u);

  Result<RewriteResponse> warm = service.Serve(req);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().stats.selectivities_collected, 0u);
  EXPECT_EQ(warm.value().stats.shared_hits,
            cold.value().stats.selectivities_collected);
  EXPECT_EQ(warm.value().stats.shared_published, 0u);

  // Shared hits are free (the Fig 7 mechanism across requests): the warmed
  // request pays model evaluations only, so planning time strictly drops
  // while the decision itself — estimates are value-identical — stays put.
  EXPECT_LT(warm.value().outcome.planning_ms, cold.value().outcome.planning_ms);
  EXPECT_EQ(warm.value().outcome.option_index, cold.value().outcome.option_index);
  EXPECT_EQ(warm.value().outcome.steps, cold.value().outcome.steps);
}

TEST_F(ServiceKnowledgePlaneTest, SharingCrossesDistinctQueriesWithSharedPredicates) {
  MalivaService service(scenario_, SmallConfig().WithCrossRequestCache(true));

  // Two distinct Query objects (different ids) with identical predicates —
  // a dashboard refresh. Canonicalization maps them to the same slot keys.
  Query refresh = *scenario_->evaluation[0];
  refresh.id = 999999;
  ASSERT_EQ(Canonicalize(refresh).signature,
            Canonicalize(*scenario_->evaluation[0]).signature);

  RewriteRequest first;
  first.query = scenario_->evaluation[0];
  first.strategy = "naive";
  ASSERT_TRUE(service.Serve(first).ok());

  RewriteRequest second;
  second.query = &refresh;
  second.strategy = "naive";
  Result<RewriteResponse> resp = service.Serve(second);
  ASSERT_TRUE(resp.ok());
  EXPECT_GT(resp.value().stats.shared_hits, 0u);
  EXPECT_EQ(resp.value().stats.selectivities_collected, 0u);
}

TEST_F(ServiceKnowledgePlaneTest, OffModeReportsNoSharedTrafficAndStaysCold) {
  MalivaService service(scenario_, SmallConfig());  // cross_request_cache off

  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "naive";

  Result<RewriteResponse> first = service.Serve(req);
  Result<RewriteResponse> second = service.Serve(req);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  for (const Result<RewriteResponse>* resp : {&first, &second}) {
    EXPECT_EQ(resp->value().stats.shared_hits, 0u);
    EXPECT_EQ(resp->value().stats.shared_published, 0u);
    EXPECT_GT(resp->value().stats.selectivities_collected, 0u);
  }
  // No cross-request memory: the second request repays the full bill.
  EXPECT_EQ(first.value().stats.selectivities_collected,
            second.value().stats.selectivities_collected);
  EXPECT_EQ(first.value().outcome.planning_ms, second.value().outcome.planning_ms);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.store_size, 0u);
  EXPECT_EQ(stats.shared_hits, 0u);
  EXPECT_DOUBLE_EQ(stats.SharedHitRatio(), 0.0);
}

TEST_F(ServiceKnowledgePlaneTest, CatalogChangeInvalidatesSharedKnowledge) {
  // Own scenario: the test mutates the engine catalog (a stats refresh).
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 5000;
  cfg.num_queries = 40;
  cfg.seed = 137;
  Scenario scenario = BuildScenario(cfg);

  MalivaService service(&scenario, SmallConfig().WithCrossRequestCache(true));
  RewriteRequest req;
  req.query = scenario.evaluation[0];
  req.strategy = "naive";

  ASSERT_TRUE(service.Serve(req).ok());
  Result<RewriteResponse> warm = service.Serve(req);
  ASSERT_TRUE(warm.ok());
  ASSERT_GT(warm.value().stats.shared_hits, 0u);

  // Registering new sample tables moves Engine::catalog_version(): the
  // store's knowledge predates the new statistics ground truth and must
  // read as a miss.
  uint64_t before = scenario.engine->catalog_version();
  ASSERT_TRUE(scenario.engine->BuildSampleTables("tweets", {0.33}, 4242).ok());
  ASSERT_GT(scenario.engine->catalog_version(), before);

  Result<RewriteResponse> after = service.Serve(req);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().stats.shared_hits, 0u);
  EXPECT_GT(after.value().stats.selectivities_collected, 0u);

  // And the re-collected knowledge warms the new epoch.
  Result<RewriteResponse> rewarmed = service.Serve(req);
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_GT(rewarmed.value().stats.shared_hits, 0u);
}

TEST_F(ServiceKnowledgePlaneTest, StatsAggregatesAcrossRequests) {
  MalivaService service(scenario_, SmallConfig().WithCrossRequestCache(true));

  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "naive";
  ASSERT_TRUE(service.Serve(req).ok());
  ASSERT_TRUE(service.Serve(req).ok());

  RewriteRequest bad;
  bad.query = scenario_->evaluation[0];
  bad.strategy = "definitely/not-a-strategy";
  ASSERT_FALSE(service.Serve(bad).ok());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_GT(stats.selectivities_collected, 0u);
  EXPECT_GT(stats.shared_hits, 0u);
  EXPECT_GT(stats.shared_published, 0u);
  EXPECT_GT(stats.store_size, 0u);
  EXPECT_GT(stats.SharedHitRatio(), 0.0);
  EXPECT_LT(stats.SharedHitRatio(), 1.0);
  EXPECT_GE(stats.serve_wall_ms_total, 0.0);
  EXPECT_GE(stats.MeanServeWallMs(), 0.0);
}

TEST_F(ServiceKnowledgePlaneTest, ValidateRejectsPathologies) {
  // Valid defaults pass, with and without the knowledge plane.
  EXPECT_TRUE(ServiceConfig().Validate().ok());
  EXPECT_TRUE(ServiceConfig().WithCrossRequestCache(true).Validate().ok());

  auto expect_invalid = [](const ServiceConfig& config) {
    Status st = config.Validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  };

  // num_threads pathologies (unsigned wrap-around, absurd counts).
  expect_invalid(ServiceConfig().WithNumThreads(static_cast<size_t>(-1)));
  expect_invalid(ServiceConfig().WithNumThreads(ServiceConfig::kMaxNumThreads + 1));

  // Cache knobs: zero / conflicting values.
  expect_invalid(
      ServiceConfig().WithCrossRequestCache(true).WithSharedStoreCapacity(0));
  expect_invalid(
      ServiceConfig().WithCrossRequestCache(true).WithSharedStoreShards(0));
  expect_invalid(ServiceConfig()
                     .WithCrossRequestCache(true)
                     .WithSharedStoreCapacity(8)
                     .WithSharedStoreShards(16));
  expect_invalid(
      ServiceConfig().WithCrossRequestCache(true).WithSignatureLiteralBins(0));
  expect_invalid(
      ServiceConfig().WithCrossRequestCache(true).WithSignatureLiteralBins(-4));

  // Other numeric knobs share the same chokepoint.
  expect_invalid(ServiceConfig().WithBeta(1.5));
  expect_invalid(ServiceConfig().WithBeta(-0.1));
  expect_invalid(ServiceConfig().WithBaoPerPlanCostMs(-1.0));
  expect_invalid(ServiceConfig().WithBaoPerPlanCostMs(
      std::numeric_limits<double>::quiet_NaN()));

  // With the flag off, cache knob values are inert and not rejected.
  EXPECT_TRUE(ServiceConfig().WithSharedStoreCapacity(0).Validate().ok());
}

TEST_F(ServiceKnowledgePlaneTest, MisconfiguredServiceFailsServeAndWarmup) {
  MalivaService service(
      scenario_,
      SmallConfig().WithCrossRequestCache(true).WithSharedStoreCapacity(0));

  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "baseline";
  Result<RewriteResponse> resp = service.Serve(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), Status::Code::kInvalidArgument);

  Status warm = service.Warmup({"baseline"});
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.code(), Status::Code::kInvalidArgument);

  // The failed requests still count in telemetry.
  EXPECT_EQ(service.Stats().requests, 1u);
  EXPECT_EQ(service.Stats().errors, 1u);
}

TEST_F(ServiceKnowledgePlaneTest, BatchServingWarmsTheStoreAcrossRequests) {
  MalivaService service(
      scenario_, SmallConfig().WithCrossRequestCache(true).WithNumThreads(4));

  // A pan/zoom-style stream: a handful of distinct tiles, each requested
  // many times. After the batch, the store must hold each tile's slots once
  // and most requests must have been served from shared knowledge.
  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 64; ++i) {
    RewriteRequest req;
    req.query = scenario_->evaluation[i % 4];
    req.strategy = "naive";
    requests.push_back(req);
  }
  std::vector<Result<RewriteResponse>> responses = service.ServeBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (const Result<RewriteResponse>& resp : responses) {
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  }

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_GT(stats.shared_hits, stats.selectivities_collected);
  EXPECT_GT(stats.SharedHitRatio(), 0.5);
}

}  // namespace
}  // namespace maliva
