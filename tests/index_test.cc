// Unit + property tests for indexes: results must match brute-force scans.

#include <gtest/gtest.h>

#include <algorithm>

#include "index/btree_index.h"
#include "index/hash_index.h"
#include "index/inverted_index.h"
#include "index/rowset.h"
#include "index/rtree_index.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace maliva {
namespace {

TEST(RowSetTest, IntersectSorted) {
  RowIdList a{1, 3, 5, 7, 9};
  RowIdList b{3, 4, 5, 9, 10};
  EXPECT_EQ(IntersectSorted(a, b), (RowIdList{3, 5, 9}));
  EXPECT_TRUE(IntersectSorted(a, {}).empty());
}

TEST(RowSetTest, IntersectAllSmallestFirst) {
  RowIdList a{1, 2, 3, 4, 5, 6, 7, 8};
  RowIdList b{2, 4, 6, 8};
  RowIdList c{4, 8};
  EXPECT_EQ(IntersectAll({&a, &b, &c}), (RowIdList{4, 8}));
  EXPECT_EQ(IntersectAll({&a}), a);
  EXPECT_TRUE(IntersectAll({}).empty());
}

TEST(RowSetTest, UnionSorted) {
  EXPECT_EQ(UnionSorted({1, 3}, {2, 3, 4}), (RowIdList{1, 2, 3, 4}));
}

TEST(RowSetTest, IsSortedUnique) {
  EXPECT_TRUE(IsSortedUnique({}));
  EXPECT_TRUE(IsSortedUnique({1, 2, 9}));
  EXPECT_FALSE(IsSortedUnique({1, 1}));
  EXPECT_FALSE(IsSortedUnique({2, 1}));
}

// ---------- BTreeIndex ----------

class BTreeIndexProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeIndexProperty, MatchesBruteForce) {
  size_t n = GetParam();
  Rng rng(n * 7 + 1);
  Table t("t", {{"v", ColumnType::kDouble}});
  std::vector<double> vals;
  for (size_t i = 0; i < n; ++i) {
    double v = rng.Uniform(-100.0, 100.0);
    // Inject duplicates to exercise equal-key handling.
    if (i % 5 == 0) v = std::floor(v);
    vals.push_back(v);
    t.MutableColumnAt(0).AppendDouble(v);
  }
  ASSERT_TRUE(t.Seal().ok());
  BTreeIndex idx(t, "v");

  for (int trial = 0; trial < 30; ++trial) {
    double lo = rng.Uniform(-120.0, 120.0);
    double hi = lo + rng.Uniform(0.0, 80.0);
    RowIdList got = idx.RangeScan(lo, hi);
    RowIdList expect;
    for (RowId r = 0; r < n; ++r) {
      if (vals[r] >= lo && vals[r] <= hi) expect.push_back(r);
    }
    EXPECT_EQ(got, expect);
    EXPECT_EQ(idx.RangeCount(lo, hi), expect.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeIndexProperty,
                         ::testing::Values(0, 1, 2, 17, 256, 2000));

TEST(BTreeIndexTest, InclusiveBounds) {
  Table t("t", {{"v", ColumnType::kInt64}});
  for (int64_t v : {10, 20, 20, 30}) t.MutableColumnAt(0).AppendInt64(v);
  ASSERT_TRUE(t.Seal().ok());
  BTreeIndex idx(t, "v");
  EXPECT_EQ(idx.RangeCount(20, 20), 2u);
  EXPECT_EQ(idx.RangeCount(10, 30), 4u);
  EXPECT_EQ(idx.RangeCount(31, 40), 0u);
  EXPECT_EQ(idx.RangeCount(30, 10), 0u);  // inverted range
  EXPECT_DOUBLE_EQ(idx.MinKey(), 10.0);
  EXPECT_DOUBLE_EQ(idx.MaxKey(), 30.0);
}

TEST(BTreeIndexTest, ResultsSorted) {
  Rng rng(99);
  Table t("t", {{"v", ColumnType::kDouble}});
  for (int i = 0; i < 500; ++i) t.MutableColumnAt(0).AppendDouble(rng.Uniform(0, 1));
  ASSERT_TRUE(t.Seal().ok());
  BTreeIndex idx(t, "v");
  EXPECT_TRUE(IsSortedUnique(idx.RangeScan(0.2, 0.8)));
}

// ---------- RTreeIndex ----------

class RTreeIndexProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeIndexProperty, MatchesBruteForce) {
  size_t n = GetParam();
  Rng rng(n * 13 + 5);
  Table t("t", {{"p", ColumnType::kPoint}});
  std::vector<GeoPoint> pts;
  for (size_t i = 0; i < n; ++i) {
    GeoPoint p{rng.Uniform(-10, 10), rng.Uniform(-5, 5)};
    pts.push_back(p);
    t.MutableColumnAt(0).AppendPoint(p);
  }
  ASSERT_TRUE(t.Seal().ok());
  RTreeIndex idx(t, "p");
  EXPECT_EQ(idx.size(), n);

  for (int trial = 0; trial < 30; ++trial) {
    double lon = rng.Uniform(-12, 10);
    double lat = rng.Uniform(-6, 4);
    BoundingBox box{lon, lat, lon + rng.Uniform(0, 8), lat + rng.Uniform(0, 4)};
    RowIdList got = idx.Query(box);
    RowIdList expect;
    for (RowId r = 0; r < n; ++r) {
      if (box.Contains(pts[r])) expect.push_back(r);
    }
    EXPECT_EQ(got, expect);
    EXPECT_EQ(idx.Count(box), expect.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeIndexProperty,
                         ::testing::Values(0, 1, 63, 64, 65, 1000, 5000));

TEST(RTreeIndexTest, BoundsCoverAll) {
  Rng rng(3);
  Table t("t", {{"p", ColumnType::kPoint}});
  for (int i = 0; i < 300; ++i) {
    t.MutableColumnAt(0).AppendPoint({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  ASSERT_TRUE(t.Seal().ok());
  RTreeIndex idx(t, "p");
  EXPECT_EQ(idx.Query(idx.Bounds()).size(), 300u);
  EXPECT_GE(idx.Height(), 2u);  // 300 points, fanout 64 -> at least 2 levels
}

TEST(RTreeIndexTest, EmptyQuery) {
  Table t("t", {{"p", ColumnType::kPoint}});
  t.MutableColumnAt(0).AppendPoint({0, 0});
  ASSERT_TRUE(t.Seal().ok());
  RTreeIndex idx(t, "p");
  EXPECT_TRUE(idx.Query({5, 5, 6, 6}).empty());
}

// ---------- InvertedIndex ----------

TEST(InvertedIndexTest, LookupMatchesTokenization) {
  Table t("t", {{"text", ColumnType::kText}});
  t.MutableColumnAt(0).AppendText("covid vaccine news");
  t.MutableColumnAt(0).AppendText("Weather today. COVID update");
  t.MutableColumnAt(0).AppendText("sports scores");
  t.MutableColumnAt(0).AppendText("covid covid covid");  // distinct once
  ASSERT_TRUE(t.Seal().ok());
  InvertedIndex idx(t, "text");
  EXPECT_EQ(idx.Lookup("covid"), (RowIdList{0, 1, 3}));
  EXPECT_EQ(idx.Lookup("COVID"), (RowIdList{0, 1, 3}));  // case-insensitive
  EXPECT_EQ(idx.DocFreq("weather"), 1u);
  EXPECT_TRUE(idx.Lookup("absent").empty());
}

TEST(InvertedIndexTest, PostingsSorted) {
  Rng rng(7);
  Table t("t", {{"text", ColumnType::kText}});
  for (int i = 0; i < 1000; ++i) {
    std::string s;
    for (int w = 0; w < 4; ++w) s += "w" + std::to_string(rng.UniformInt(0, 30)) + " ";
    t.MutableColumnAt(0).AppendText(s);
  }
  ASSERT_TRUE(t.Seal().ok());
  InvertedIndex idx(t, "text");
  for (int w = 0; w <= 30; ++w) {
    EXPECT_TRUE(IsSortedUnique(idx.Lookup("w" + std::to_string(w))));
  }
}

TEST(InvertedIndexTest, VocabularySize) {
  Table t("t", {{"text", ColumnType::kText}});
  t.MutableColumnAt(0).AppendText("a b c");
  t.MutableColumnAt(0).AppendText("b c d");
  ASSERT_TRUE(t.Seal().ok());
  InvertedIndex idx(t, "text");
  EXPECT_EQ(idx.VocabularySize(), 4u);
}

// ---------- HashIndex ----------

TEST(HashIndexTest, LookupWithDuplicates) {
  Table t("t", {{"k", ColumnType::kInt64}});
  for (int64_t v : {5, 7, 5, 9, 7, 5}) t.MutableColumnAt(0).AppendInt64(v);
  ASSERT_TRUE(t.Seal().ok());
  HashIndex idx(t, "k");
  EXPECT_EQ(idx.Lookup(5), (RowIdList{0, 2, 5}));
  EXPECT_EQ(idx.Lookup(7), (RowIdList{1, 4}));
  EXPECT_EQ(idx.Lookup(9), (RowIdList{3}));
  EXPECT_TRUE(idx.Lookup(404).empty());
  EXPECT_EQ(idx.DistinctKeys(), 3u);
}

}  // namespace
}  // namespace maliva
