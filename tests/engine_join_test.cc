// Join executor tests: all join methods must agree with a brute-force join;
// costs must differ by method.

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.h"

namespace maliva {
namespace {

std::unique_ptr<Table> JoinTweets(size_t n, size_t num_users, uint64_t seed) {
  Schema schema = {{"id", ColumnType::kInt64},
                   {"text", ColumnType::kText},
                   {"created_at", ColumnType::kTimestamp},
                   {"coordinates", ColumnType::kPoint},
                   {"user_id", ColumnType::kInt64}};
  auto t = std::make_unique<Table>("tweets", schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    t->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(i));
    t->MutableColumnAt(1).AppendText("w" + std::to_string(rng.UniformInt(0, 20)));
    t->MutableColumnAt(2).AppendTimestamp(rng.UniformInt(0, 9999));
    t->MutableColumnAt(3).AppendPoint({rng.Uniform(0, 100), rng.Uniform(0, 50)});
    t->MutableColumnAt(4).AppendInt64(rng.UniformInt(0, static_cast<int64_t>(num_users) - 1));
  }
  EXPECT_TRUE(t->Seal().ok());
  return t;
}

std::unique_ptr<Table> JoinUsers(size_t num_users, uint64_t seed) {
  Schema schema = {{"id", ColumnType::kInt64}, {"tweet_cnt", ColumnType::kInt64}};
  auto t = std::make_unique<Table>("users", schema);
  Rng rng(seed);
  for (size_t u = 0; u < num_users; ++u) {
    t->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(u));
    t->MutableColumnAt(1).AppendInt64(rng.UniformInt(0, 10000));
  }
  EXPECT_TRUE(t->Seal().ok());
  return t;
}

class JoinEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(EngineProfile::PostgresLike(), 5);
    ASSERT_TRUE(engine_
                    ->RegisterTable(JoinTweets(3000, 200, 5),
                                    {"text", "created_at", "coordinates"}, {"user_id"})
                    .ok());
    ASSERT_TRUE(engine_->RegisterTable(JoinUsers(200, 6), {"tweet_cnt"}, {"id"}).ok());
  }

  Query JoinQuery(uint64_t id, double cnt_lo, double cnt_hi) {
    Query q = testing_helpers::SmallQuery(id, "w3", 1000, 8000, {10, 5, 90, 45});
    JoinSpec js;
    js.right_table = "users";
    js.left_key = "user_id";
    js.right_key = "id";
    js.right_predicates.push_back(Predicate::Numeric("tweet_cnt", cnt_lo, cnt_hi));
    q.join = js;
    return q;
  }

  std::set<int64_t> BruteForceJoin(const Query& q) {
    const Table& tweets = *engine_->FindEntry("tweets")->table;
    const Table& users = *engine_->FindEntry("users")->table;
    std::set<int64_t> out;
    for (RowId r : testing_helpers::BruteForceMatch(tweets, q)) {
      int64_t uid = tweets.GetColumn("user_id").Int64At(r);
      // PK lookup.
      int64_t cnt = users.GetColumn("tweet_cnt").Int64At(static_cast<RowId>(uid));
      if (q.join->right_predicates[0].range.Contains(static_cast<double>(cnt))) {
        out.insert(tweets.GetColumn("id").Int64At(r));
      }
    }
    return out;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(JoinEngineTest, AllMethodsAgreeWithBruteForce) {
  Query q = JoinQuery(100, 2000, 8000);
  std::set<int64_t> expect = BruteForceJoin(q);
  ASSERT_FALSE(expect.empty());
  for (JoinMethod jm : {JoinMethod::kNestedLoop, JoinMethod::kHash, JoinMethod::kMerge}) {
    PlanSpec spec;
    spec.index_mask = 0b010;  // time index
    spec.join_method = jm;
    Result<ExecResult> r = engine_->ExecutePlan(q, spec);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::set<int64_t> got(r.value().vis.ids.begin(), r.value().vis.ids.end());
    EXPECT_EQ(got, expect) << "method=" << JoinMethodName(jm);
  }
}

TEST_F(JoinEngineTest, AllMaskAndMethodCombosAgree) {
  Query q = JoinQuery(101, 0, 5000);
  std::set<int64_t> expect = BruteForceJoin(q);
  for (uint32_t mask = 1; mask < 8; ++mask) {
    for (JoinMethod jm :
         {JoinMethod::kNestedLoop, JoinMethod::kHash, JoinMethod::kMerge}) {
      PlanSpec spec;
      spec.index_mask = mask;
      spec.join_method = jm;
      Result<ExecResult> r = engine_->ExecutePlan(q, spec);
      ASSERT_TRUE(r.ok());
      std::set<int64_t> got(r.value().vis.ids.begin(), r.value().vis.ids.end());
      EXPECT_EQ(got, expect) << "mask=" << mask << " method=" << JoinMethodName(jm);
    }
  }
}

TEST_F(JoinEngineTest, MethodsChargeDifferentTimes) {
  Query q = JoinQuery(102, 2000, 8000);
  PlanSpec nl, hash, merge;
  nl.index_mask = hash.index_mask = merge.index_mask = 0b010;
  nl.join_method = JoinMethod::kNestedLoop;
  hash.join_method = JoinMethod::kHash;
  merge.join_method = JoinMethod::kMerge;
  double t_nl = engine_->ExecutePlan(q, nl).value().exec_ms;
  double t_hash = engine_->ExecutePlan(q, hash).value().exec_ms;
  double t_merge = engine_->ExecutePlan(q, merge).value().exec_ms;
  EXPECT_NE(t_nl, t_hash);
  EXPECT_NE(t_hash, t_merge);
}

TEST_F(JoinEngineTest, JoinCardsPopulatedByMethod) {
  Query q = JoinQuery(103, 2000, 8000);
  PlanSpec spec;
  spec.index_mask = 0b010;
  spec.join_method = JoinMethod::kHash;
  ExecResult r = engine_->ExecutePlan(q, spec).value();
  EXPECT_TRUE(r.cards.has_join);
  EXPECT_GT(r.cards.build_rows, 0.0);
  EXPECT_GT(r.cards.probe_rows, 0.0);
  EXPECT_EQ(r.cards.nl_outer, 0.0);

  spec.join_method = JoinMethod::kNestedLoop;
  ExecResult r2 = engine_->ExecutePlan(q, spec).value();
  EXPECT_GT(r2.cards.nl_outer, 0.0);
  EXPECT_EQ(r2.cards.build_rows, 0.0);
}

TEST_F(JoinEngineTest, EmptyRightFilter) {
  Query q = JoinQuery(104, 20000, 30000);  // no user matches
  for (JoinMethod jm : {JoinMethod::kNestedLoop, JoinMethod::kHash, JoinMethod::kMerge}) {
    PlanSpec spec;
    spec.index_mask = 0b001;
    spec.join_method = jm;
    Result<ExecResult> r = engine_->ExecutePlan(q, spec);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().vis.ids.empty());
  }
}

TEST_F(JoinEngineTest, HeatmapOutputAfterJoin) {
  Query q = JoinQuery(105, 0, 8000);
  q.output = OutputKind::kHeatmap;
  PlanSpec spec;
  spec.index_mask = 0b010;
  spec.join_method = JoinMethod::kHash;
  Result<ExecResult> r = engine_->ExecutePlan(q, spec);
  ASSERT_TRUE(r.ok());
  int64_t total = 0;
  for (const auto& [bin, c] : r.value().vis.bins) total += c;
  EXPECT_EQ(static_cast<size_t>(total), BruteForceJoin(q).size());
}

}  // namespace
}  // namespace maliva
