// Approximation-rule execution: LIMIT early exit and sample-table
// substitution must trade quality for speed.

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.h"

namespace maliva {
namespace {

using testing_helpers::BruteForceMatch;
using testing_helpers::SmallQuery;

class ApproxEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(EngineProfile::PostgresLike(), 31);
    ASSERT_TRUE(engine_
                    ->RegisterTable(testing_helpers::SmallTweets(5000, 31),
                                    {"text", "created_at", "coordinates"})
                    .ok());
    ASSERT_TRUE(engine_->BuildSampleTables("tweets", {0.2, 0.01}, 77).ok());
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(ApproxEngineTest, SampleTableNameFormat) {
  EXPECT_EQ(Engine::SampleTableName("tweets", 0.2), "tweets#sample200");
  EXPECT_EQ(Engine::SampleTableName("tweets", 0.01), "tweets#sample10");
}

TEST_F(ApproxEngineTest, SampleTablesRegisteredWithIndexes) {
  const TableEntry* e = engine_->FindEntry("tweets#sample200");
  ASSERT_NE(e, nullptr);
  EXPECT_GT(e->table->NumRows(), 500u);
  EXPECT_LT(e->table->NumRows(), 1500u);
  EXPECT_EQ(e->inverted.count("text"), 1u);
  EXPECT_EQ(e->btrees.count("created_at"), 1u);
  EXPECT_EQ(e->rtrees.count("coordinates"), 1u);
}

TEST_F(ApproxEngineTest, SampleExecutionSubsetOfExact) {
  Query q = SmallQuery(1, "w0", 0, 9999, {0, 0, 100, 50});
  PlanSpec exact;
  exact.index_mask = 1;
  PlanSpec sampled = exact;
  sampled.approx = {ApproxKind::kSampleTable, 0.2};

  ExecResult r_exact = engine_->ExecutePlan(q, exact).value();
  ExecResult r_sample = engine_->ExecutePlan(q, sampled).value();

  std::set<int64_t> exact_ids(r_exact.vis.ids.begin(), r_exact.vis.ids.end());
  for (int64_t id : r_sample.vis.ids) {
    EXPECT_TRUE(exact_ids.count(id) > 0) << "sample produced id not in exact result";
  }
  // Roughly 20% of the rows, and meaningfully faster.
  EXPECT_LT(r_sample.vis.ids.size(), exact_ids.size());
  EXPECT_LT(r_sample.exec_ms, r_exact.exec_ms);
}

TEST_F(ApproxEngineTest, LimitCapsOutputAndTime) {
  Query q = SmallQuery(2, "w0", 0, 9999, {0, 0, 100, 50});
  PlanSpec exact;
  exact.index_mask = 1;
  PlanSpec limited = exact;
  limited.approx = {ApproxKind::kLimit, 0.05};

  ExecResult r_exact = engine_->ExecutePlan(q, exact).value();
  ExecResult r_lim = engine_->ExecutePlan(q, limited).value();

  EXPECT_LT(r_lim.vis.ids.size(), r_exact.vis.ids.size());
  EXPECT_GT(r_lim.vis.ids.size(), 0u);
  EXPECT_LT(r_lim.exec_ms, r_exact.exec_ms);

  // The limited result is a prefix subset of the exact result.
  std::set<int64_t> exact_ids(r_exact.vis.ids.begin(), r_exact.vis.ids.end());
  for (int64_t id : r_lim.vis.ids) EXPECT_TRUE(exact_ids.count(id) > 0);
}

TEST_F(ApproxEngineTest, LimitOnFullScanStopsEarly) {
  Query q = SmallQuery(3, "w0", 0, 9999, {0, 0, 100, 50});
  PlanSpec full;
  full.index_mask = 0;
  PlanSpec lim = full;
  lim.approx = {ApproxKind::kLimit, 0.02};
  ExecResult r_full = engine_->ExecutePlan(q, full).value();
  ExecResult r_lim = engine_->ExecutePlan(q, lim).value();
  EXPECT_LT(r_lim.cards.scanned_rows, r_full.cards.scanned_rows);
  EXPECT_LT(r_lim.exec_ms, r_full.exec_ms);
}

TEST_F(ApproxEngineTest, SmallerLimitFractionIsFaster) {
  Query q = SmallQuery(4, "w0", 0, 9999, {0, 0, 100, 50});
  double prev_ms = 0.0;
  size_t prev_rows = 0;
  for (double frac : {0.01, 0.1, 0.5}) {
    PlanSpec spec;
    spec.index_mask = 1;
    spec.approx = {ApproxKind::kLimit, frac};
    ExecResult r = engine_->ExecutePlan(q, spec).value();
    EXPECT_GE(r.vis.ids.size(), prev_rows);
    EXPECT_GE(r.exec_ms, prev_ms);
    prev_rows = r.vis.ids.size();
    prev_ms = r.exec_ms;
  }
}

TEST_F(ApproxEngineTest, MissingSampleTableIsNotFound) {
  Query q = SmallQuery(5, "w0", 0, 9999, {0, 0, 100, 50});
  PlanSpec spec;
  spec.index_mask = 1;
  spec.approx = {ApproxKind::kSampleTable, 0.4};  // never built
  Result<ExecResult> r = engine_->ExecutePlan(q, spec);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST_F(ApproxEngineTest, SampledSelectivityApproximatesTruth) {
  Predicate pred = Predicate::Time("created_at", 0, 4999);  // ~0.5
  Result<double> truth = engine_->TrueSelectivity("tweets", pred);
  Result<double> sampled = engine_->SampledSelectivity("tweets", pred, 0.2);
  ASSERT_TRUE(truth.ok());
  ASSERT_TRUE(sampled.ok());
  EXPECT_NEAR(sampled.value(), truth.value(), 0.08);
}

TEST_F(ApproxEngineTest, SampledSelectivityNeverZero) {
  // Add-half smoothing: even predicates with no sample matches estimate > 0.
  Predicate pred = Predicate::Keyword("text", "notaword");
  Result<double> sel = engine_->SampledSelectivity("tweets", pred, 0.01);
  ASSERT_TRUE(sel.ok());
  EXPECT_GT(sel.value(), 0.0);
  EXPECT_LT(sel.value(), 0.05);
}

TEST_F(ApproxEngineTest, EstimateOutputCardinalityPositive) {
  Query q = SmallQuery(6, "w0", 0, 9999, {0, 0, 100, 50});
  double est = engine_->EstimateOutputCardinality(q);
  EXPECT_GT(est, 0.0);
  EXPECT_LE(est, 5000.0);
}

TEST(PlanInstabilityTest, CommercialProfileSometimesIgnoresHints) {
  EngineProfile p = EngineProfile::CommercialLike();
  p.plan_instability_prob = 0.5;
  auto engine = std::make_unique<Engine>(p, 99);
  ASSERT_TRUE(engine
                  ->RegisterTable(testing_helpers::SmallTweets(2000, 13),
                                  {"text", "created_at", "coordinates"})
                  .ok());
  size_t ignored = 0;
  for (uint64_t id = 0; id < 40; ++id) {
    Query q = SmallQuery(id, "w1", 0, 9999, {0, 0, 100, 50});
    PlanSpec spec;
    spec.index_mask = 0b111;
    ExecResult r = engine->ExecutePlan(q, spec).value();
    if (r.plan.index_mask != 0b111) ++ignored;
  }
  EXPECT_GT(ignored, 5u);   // hints ignored sometimes...
  EXPECT_LT(ignored, 35u);  // ...but not always
}

}  // namespace
}  // namespace maliva
