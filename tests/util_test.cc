// Unit tests for util: Status/Result, Rng, stats, strings, virtual clock.

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "util/clock.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"

namespace maliva {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad column");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad column");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad column");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_NE(Status::NotFound("x").ToString().find("NotFound"), std::string::npos);
  EXPECT_NE(Status::OutOfRange("x").ToString().find("OutOfRange"), std::string::npos);
  EXPECT_NE(Status::FailedPrecondition("x").ToString().find("FailedPrecondition"),
            std::string::npos);
  EXPECT_NE(Status::Internal("x").ToString().find("Internal"), std::string::npos);
  EXPECT_NE(Status::Unimplemented("x").ToString().find("Unimplemented"),
            std::string::npos);
  EXPECT_NE(Status::DeadlineExceeded("x").ToString().find("DeadlineExceeded"),
            std::string::npos);
  EXPECT_NE(Status::ResourceExhausted("x").ToString().find("ResourceExhausted"),
            std::string::npos);
}

TEST(StatusTest, OverloadCodesAreDistinct) {
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            Status::Code::kResourceExhausted);
  EXPECT_NE(Status::DeadlineExceeded("x").code(),
            Status::ResourceExhausted("x").code());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ReturnNotOkMacroTest, PropagatesError) {
  auto inner = []() { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    MALIVA_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_FALSE(outer().ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(11);
  int hits = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  RunningStat rs;
  for (int i = 0; i < 20000; ++i) rs.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(rs.mean(), 2.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 3.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  std::vector<size_t> s = rng.SampleWithoutReplacement(50, 20);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(s.size(), 20u);
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t v : s) EXPECT_LT(v, 50u);
}

TEST(RngTest, SampleWithoutReplacementAll) {
  Rng rng(17);
  std::vector<size_t> s = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTableTest, RankZeroMostLikely) {
  Rng rng(23);
  ZipfTable z(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 30000; ++i) ++counts[static_cast<size_t>(z.Sample(&rng))];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(ZipfTableTest, SamplesInRange) {
  Rng rng(29);
  ZipfTable z(5, 1.0);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = z.Sample(&rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
  }
}

TEST(RunningStatTest, MeanAndVariance) {
  RunningStat rs;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) rs.Add(v);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 2.5);  // sample variance
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.Add(7.0);
  EXPECT_EQ(rs.mean(), 7.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(StatsTest, MeanStddev) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Stddev(xs), 2.138, 0.001);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Stddev({1.0}), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 5.5);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 50), 42.0);
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("CoViD-19"), "covid-19");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, TokenizeSplitsAndLowercases) {
  std::vector<std::string> t = Tokenize("Hello, COVID world!  x2");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "hello");
  EXPECT_EQ(t[1], "covid");
  EXPECT_EQ(t[2], "world");
  EXPECT_EQ(t[3], "x2");
}

TEST(StringUtilTest, TokenizeEmptyAndPunctuation) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ---").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, "+"), "solo");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowMs(), 0.0);
  clock.Advance(10.5);
  clock.Advance(4.5);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 15.0);
  clock.Reset();
  EXPECT_EQ(clock.NowMs(), 0.0);
}

TEST(ThreadPoolDepthTest, IdlePoolReportsZero) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.PendingTasks(), 0u);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolDepthTest, QueueDepthSeesBacklogBehindABlockedWorker) {
  // One worker, three tasks gated on a latch: the worker claims the first
  // (leaving the queue), the other two stay enqueued — PendingTasks counts
  // all three, QueueDepth only the backlog. This is the load signal the
  // admission gate reads, so the distinction is the contract under test.
  ThreadPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return release; });
    });
  }
  // The worker claims the first task asynchronously; poll until it has.
  while (pool.QueueDepth() != 2) std::this_thread::yield();
  EXPECT_EQ(pool.PendingTasks(), 3u);
  {
    std::unique_lock<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_EQ(pool.PendingTasks(), 0u);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

}  // namespace
}  // namespace maliva
