// SharedSelectivityStore tests: read/publish semantics, epoch invalidation,
// FIFO eviction, and a multi-thread publish/read-through/epoch-bump stress
// run. The suite name carries "Concurrency" so both sanitizer legs of
// scripts/ci.sh (-R 'Service|Concurrency') pick the stress test up.

#include "qte/shared_selectivity_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace maliva {
namespace {

TEST(SharedStoreConcurrencyTest, PublishThenLookupRoundTrips) {
  SharedSelectivityStore store({/*capacity=*/64, /*shards=*/4});
  EXPECT_FALSE(store.Lookup(42, /*epoch=*/1).has_value());
  EXPECT_TRUE(store.Publish(42, 1, 0.25));
  ASSERT_TRUE(store.Lookup(42, 1).has_value());
  EXPECT_DOUBLE_EQ(*store.Lookup(42, 1), 0.25);
  EXPECT_EQ(store.Size(), 1u);
}

TEST(SharedStoreConcurrencyTest, FirstWriterWinsWithinAnEpoch) {
  SharedSelectivityStore store({64, 4});
  EXPECT_TRUE(store.Publish(7, 1, 0.5));
  EXPECT_FALSE(store.Publish(7, 1, 0.9));  // no new knowledge
  EXPECT_DOUBLE_EQ(*store.Lookup(7, 1), 0.5);
}

TEST(SharedStoreConcurrencyTest, EpochMismatchReadsAsMiss) {
  SharedSelectivityStore store({64, 4});
  store.Publish(7, 1, 0.5);
  EXPECT_FALSE(store.Lookup(7, 2).has_value());  // stats refreshed
  EXPECT_FALSE(store.Lookup(7, 0).has_value());
  EXPECT_TRUE(store.Lookup(7, 1).has_value());
}

TEST(SharedStoreConcurrencyTest, StaleEpochEntriesAreRefreshedInPlace) {
  SharedSelectivityStore store({64, 4});
  store.Publish(7, 1, 0.5);
  EXPECT_TRUE(store.Publish(7, 2, 0.8));  // new knowledge under the new epoch
  EXPECT_FALSE(store.Lookup(7, 1).has_value());
  EXPECT_DOUBLE_EQ(*store.Lookup(7, 2), 0.8);
  EXPECT_EQ(store.Size(), 1u);  // replaced, not accumulated
}

TEST(SharedStoreConcurrencyTest, FifoEvictionAtCapacity) {
  SharedSelectivityStore store({/*capacity=*/4, /*shards=*/1});
  for (uint64_t key = 0; key < 4; ++key) store.Publish(key, 1, 0.1);
  EXPECT_EQ(store.Size(), 4u);
  EXPECT_EQ(store.Evictions(), 0u);

  store.Publish(100, 1, 0.9);  // evicts the oldest resident (key 0)
  EXPECT_EQ(store.Size(), 4u);
  EXPECT_EQ(store.Evictions(), 1u);
  EXPECT_FALSE(store.Lookup(0, 1).has_value());
  EXPECT_TRUE(store.Lookup(100, 1).has_value());
  EXPECT_TRUE(store.Lookup(3, 1).has_value());
}

TEST(SharedStoreConcurrencyTest, ClearDropsEverything) {
  SharedSelectivityStore store({64, 4});
  for (uint64_t key = 0; key < 10; ++key) store.Publish(key, 1, 0.1);
  EXPECT_EQ(store.Size(), 10u);
  store.Clear();
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_FALSE(store.Lookup(0, 1).has_value());
}

TEST(SharedStoreConcurrencyTest, ShardCountIsCappedAtCapacity) {
  SharedSelectivityStore store({/*capacity=*/2, /*shards=*/64});
  EXPECT_EQ(store.num_shards(), 2u);
  EXPECT_EQ(store.capacity(), 2u);
}

// Multi-thread stress: publishers and read-through readers over a shared key
// space, with an epoch bump (stats refresh) midway. The deterministic value
// function makes every hit checkable: under first-writer-wins, a lookup
// under epoch e can only ever observe Value(key, e). Run under TSan and ASan
// by scripts/ci.sh.
TEST(SharedStoreConcurrencyTest, StressPublishReadThroughEpochInvalidation) {
  constexpr size_t kThreads = 8;
  constexpr size_t kKeys = 512;
  constexpr size_t kRounds = 400;

  // Capacity below the key-space size so FIFO eviction churns concurrently
  // with reads and publishes.
  SharedSelectivityStore store({/*capacity=*/256, /*shards=*/8});
  std::atomic<uint64_t> epoch{1};

  auto value = [](uint64_t key, uint64_t e) {
    return static_cast<double>(key % 97 + e) / 100.0;
  };

  std::atomic<size_t> hits{0};
  std::atomic<size_t> misses{0};
  std::atomic<bool> corrupt{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        // One thread bumps the epoch midway: everything published before
        // must read as a miss afterwards.
        if (t == 0 && round == kRounds / 2) epoch.fetch_add(1);
        // Even threads publish, odd threads read through; all walk the same
        // scrambled key sequence so readers chase the publishers' keys.
        for (size_t i = 0; i < kKeys; ++i) {
          uint64_t key = (i * 2654435761u) % kKeys;
          uint64_t e = epoch.load();
          if (t % 2 == 0) {
            store.Publish(key, e, value(key, e));
          } else {
            std::optional<double> got = store.Lookup(key, e);
            if (!got.has_value()) {
              misses.fetch_add(1);
            } else if (*got != value(key, e)) {
              corrupt.store(true);
            } else {
              hits.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_FALSE(corrupt.load()) << "a lookup observed a value from the wrong epoch";
  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(store.Size(), store.capacity());
  EXPECT_GT(store.Evictions(), 0u);

  // Quiescent check: the final epoch's entries are intact, older epochs are
  // invisible.
  uint64_t final_epoch = epoch.load();
  size_t resident = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    std::optional<double> got = store.Lookup(key, final_epoch);
    if (!got.has_value()) continue;
    ++resident;
    EXPECT_DOUBLE_EQ(*got, value(key, final_epoch));
    EXPECT_FALSE(store.Lookup(key, final_epoch + 1).has_value());
  }
  EXPECT_GT(resident, 0u);
}

}  // namespace
}  // namespace maliva
