// Baseline / Naive / Bao comparator tests.

#include <gtest/gtest.h>

#include "baselines/bao.h"
#include "baselines/baseline.h"
#include "qte/accurate_qte.h"
#include "qte/sampling_qte.h"
#include "workload/scenario.h"

namespace maliva {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 30000;
    cfg.num_queries = 200;
    cfg.tau_ms = 500.0;
    cfg.seed = 21;
    scenario_ = new Scenario(BuildScenario(cfg));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  RewriterEnv MakeEnv(QueryTimeEstimator* qte) {
    RewriterEnv renv;
    renv.engine = scenario_->engine.get();
    renv.oracle = scenario_->oracle.get();
    renv.options = &scenario_->options;
    renv.qte = qte;
    renv.env_config.tau_ms = 500.0;
    return renv;
  }

  static Scenario* scenario_;
};

Scenario* BaselinesTest::scenario_ = nullptr;

TEST_F(BaselinesTest, BaselineUsesOptimizerDefault) {
  BaselineRewriter baseline(scenario_->engine.get(), scenario_->oracle.get(), 500.0);
  const Query& q = *scenario_->evaluation[0];
  RewriteOutcome out = baseline.Rewrite(q);
  EXPECT_DOUBLE_EQ(out.planning_ms, scenario_->engine->profile().optimizer_ms);
  RewriteOption unhinted;
  EXPECT_DOUBLE_EQ(out.exec_ms, scenario_->oracle->TrueTimeMs(q, unhinted));
  EXPECT_DOUBLE_EQ(out.total_ms, out.planning_ms + out.exec_ms);
  EXPECT_EQ(out.steps, 0u);
  EXPECT_DOUBLE_EQ(out.quality, 1.0);
}

TEST_F(BaselinesTest, NaiveEstimatesEveryOption) {
  SamplingQte qte;
  NaiveRewriter naive(MakeEnv(&qte), "Naive");
  const Query& q = *scenario_->evaluation[1];
  RewriteOutcome out = naive.Rewrite(q);
  EXPECT_EQ(out.steps, scenario_->options.size());
  // Brute-force pays for all three selectivities once plus a model eval per
  // option; planning must exceed the MDP's selective exploration.
  EXPECT_GT(out.planning_ms, 3 * 0.75 * 40.0);
}

TEST_F(BaselinesTest, NaivePicksMinEstimate) {
  AccurateQte qte;  // with the accurate QTE, naive picks the true best plan
  NaiveRewriter naive(MakeEnv(&qte), "Naive");
  const Query& q = *scenario_->evaluation[2];
  RewriteOutcome out = naive.Rewrite(q);
  double best = std::numeric_limits<double>::infinity();
  for (const RewriteOption& ro : scenario_->options) {
    best = std::min(best, scenario_->oracle->TrueTimeMs(q, ro));
  }
  EXPECT_DOUBLE_EQ(out.exec_ms, best);
}

TEST_F(BaselinesTest, BaoFeaturizeShape) {
  BaoQte qte(3);
  const Query& q = *scenario_->evaluation[0];
  std::vector<double> f = qte.Featurize(*scenario_->engine, q, scenario_->options[3]);
  EXPECT_EQ(f.size(), BaoQte::kFeatureDim);
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(BaselinesTest, BaoLearnsToRankPlans) {
  BaoTrainer trainer(scenario_->engine.get(), scenario_->oracle.get(),
                     &scenario_->options);
  std::unique_ptr<BaoQte> qte = trainer.Train(scenario_->train, 77);

  // Over evaluation queries, Bao's predicted-best plan should execute much
  // faster than the worst plan on average (it learned *something* useful).
  double chosen_sum = 0.0, worst_sum = 0.0, best_sum = 0.0;
  for (const Query* q : scenario_->evaluation) {
    double best_pred = std::numeric_limits<double>::infinity();
    size_t best_idx = 0;
    double worst_true = 0.0, best_true = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < scenario_->options.size(); ++i) {
      double pred = qte->PredictMs(qte->Featurize(*scenario_->engine, *q,
                                                  scenario_->options[i]));
      if (pred < best_pred) {
        best_pred = pred;
        best_idx = i;
      }
      double truth = scenario_->oracle->TrueTimeMs(*q, scenario_->options[i]);
      worst_true = std::max(worst_true, truth);
      best_true = std::min(best_true, truth);
    }
    chosen_sum += scenario_->oracle->TrueTimeMs(*q, scenario_->options[best_idx]);
    worst_sum += worst_true;
    best_sum += best_true;
  }
  EXPECT_LT(chosen_sum, 0.3 * worst_sum);  // far better than worst-case
  EXPECT_GT(chosen_sum, best_sum);         // but not oracle-perfect
}

TEST_F(BaselinesTest, BaoChargesPerPlanCost) {
  BaoTrainer trainer(scenario_->engine.get(), scenario_->oracle.get(),
                     &scenario_->options);
  std::unique_ptr<BaoQte> qte = trainer.Train(scenario_->train, 78);
  BaoRewriter bao(scenario_->engine.get(), scenario_->oracle.get(),
                  &scenario_->options, qte.get(), 500.0, /*per_plan_cost_ms=*/10.0);
  RewriteOutcome out = bao.Rewrite(*scenario_->evaluation[0]);
  EXPECT_DOUBLE_EQ(out.planning_ms, scenario_->engine->profile().optimizer_ms +
                                        10.0 * scenario_->options.size());
  EXPECT_EQ(out.steps, scenario_->options.size());
}

TEST_F(BaselinesTest, BaoFitIsDeterministic) {
  BaoTrainer trainer(scenario_->engine.get(), scenario_->oracle.get(),
                     &scenario_->options);
  std::unique_ptr<BaoQte> a = trainer.Train(scenario_->train, 80);
  std::unique_ptr<BaoQte> b = trainer.Train(scenario_->train, 80);
  const Query& q = *scenario_->evaluation[0];
  std::vector<double> f = a->Featurize(*scenario_->engine, q, scenario_->options[2]);
  EXPECT_DOUBLE_EQ(a->PredictMs(f), b->PredictMs(f));
}

}  // namespace
}  // namespace maliva
