// Unit tests for query: predicates, hint sets, RO enumeration, rendering.

#include <gtest/gtest.h>

#include <set>

#include "query/hints.h"
#include "query/query.h"
#include "query/rewritten_query.h"

namespace maliva {
namespace {

TEST(PredicateTest, Factories) {
  Predicate k = Predicate::Keyword("text", "CoViD");
  EXPECT_EQ(k.type, PredicateType::kKeyword);
  EXPECT_EQ(k.keyword, "covid");  // lower-cased

  Predicate t = Predicate::Time("ts", 10, 20);
  EXPECT_EQ(t.type, PredicateType::kTimeRange);
  EXPECT_DOUBLE_EQ(t.range.lo, 10);

  Predicate nu = Predicate::Numeric("x", -1, 1);
  EXPECT_EQ(nu.type, PredicateType::kNumericRange);

  Predicate s = Predicate::Spatial("p", {0, 0, 1, 1});
  EXPECT_EQ(s.type, PredicateType::kSpatialBox);
  EXPECT_DOUBLE_EQ(s.box.max_lon, 1);
}

TEST(PredicateTest, ToStringRendering) {
  EXPECT_EQ(Predicate::Keyword("text", "covid").ToString(), "text CONTAINS 'covid'");
  EXPECT_NE(Predicate::Time("ts", 1, 2).ToString().find("BETWEEN"), std::string::npos);
  EXPECT_NE(Predicate::Spatial("p", {0, 0, 1, 1}).ToString().find("BOX"),
            std::string::npos);
}

TEST(HintSetTest, HasAnyHint) {
  HintSet h;
  EXPECT_FALSE(h.HasAnyHint());
  h.index_mask = 0;
  EXPECT_TRUE(h.HasAnyHint());  // forced full scan is a hint
  HintSet j;
  j.join_method = JoinMethod::kHash;
  EXPECT_TRUE(j.HasAnyHint());
}

TEST(HintSetTest, ToStringShowsMaskAndJoin) {
  HintSet h;
  h.index_mask = 0b101;
  h.join_method = JoinMethod::kMerge;
  std::string s = h.ToString(3);
  EXPECT_NE(s.find("101"), std::string::npos);
  EXPECT_NE(s.find("merge"), std::string::npos);
}

TEST(ApproxRuleTest, Kinds) {
  ApproxRule none;
  EXPECT_FALSE(none.IsApproximate());
  EXPECT_EQ(none.ToString(), "exact");
  ApproxRule limit{ApproxKind::kLimit, 0.04};
  EXPECT_TRUE(limit.IsApproximate());
  EXPECT_NE(limit.ToString().find("limit"), std::string::npos);
  ApproxRule sample{ApproxKind::kSampleTable, 0.2};
  EXPECT_NE(sample.ToString().find("sample"), std::string::npos);
}

TEST(EnumerateHintOnlyTest, CountAndUniqueness) {
  RewriteOptionSet ro = EnumerateHintOnlyOptions(3);
  EXPECT_EQ(ro.size(), 8u);
  std::set<uint32_t> masks;
  for (const RewriteOption& o : ro) {
    ASSERT_TRUE(o.hints.index_mask.has_value());
    masks.insert(*o.hints.index_mask);
    EXPECT_FALSE(o.IsApproximate());
    EXPECT_EQ(o.hints.join_method, JoinMethod::kOptimizerChoice);
  }
  EXPECT_EQ(masks.size(), 8u);
}

TEST(EnumerateHintOnlyTest, ScalesWithPredicates) {
  EXPECT_EQ(EnumerateHintOnlyOptions(4).size(), 16u);
  EXPECT_EQ(EnumerateHintOnlyOptions(5).size(), 32u);
  EXPECT_EQ(EnumerateHintOnlyOptions(1).size(), 2u);
}

TEST(EnumerateJoinTest, PaperCount21) {
  // (2^3 - 1) non-empty index subsets x 3 join methods = 21 (Section 7.5).
  RewriteOptionSet ro = EnumerateJoinOptions(3);
  EXPECT_EQ(ro.size(), 21u);
  std::set<std::pair<uint32_t, int>> combos;
  for (const RewriteOption& o : ro) {
    ASSERT_TRUE(o.hints.index_mask.has_value());
    EXPECT_NE(*o.hints.index_mask, 0u);  // empty mask excluded
    EXPECT_NE(o.hints.join_method, JoinMethod::kOptimizerChoice);
    combos.insert({*o.hints.index_mask, static_cast<int>(o.hints.join_method)});
  }
  EXPECT_EQ(combos.size(), 21u);
}

TEST(CrossWithApproxRulesTest, OneStageLayout) {
  RewriteOptionSet base = EnumerateHintOnlyOptions(3);
  std::vector<ApproxRule> rules = {{ApproxKind::kLimit, 0.01},
                                   {ApproxKind::kLimit, 0.2}};
  RewriteOptionSet all = CrossWithApproxRules(base, rules, /*include_exact=*/true);
  EXPECT_EQ(all.size(), 8u + 16u);
  // First 8 are the exact options.
  for (size_t i = 0; i < 8; ++i) EXPECT_FALSE(all[i].IsApproximate());
  for (size_t i = 8; i < all.size(); ++i) EXPECT_TRUE(all[i].IsApproximate());
}

TEST(CrossWithApproxRulesTest, StageTwoLayout) {
  RewriteOptionSet base = EnumerateHintOnlyOptions(3);
  std::vector<ApproxRule> rules = {{ApproxKind::kSampleTable, 0.2},
                                   {ApproxKind::kSampleTable, 0.4},
                                   {ApproxKind::kSampleTable, 0.8}};
  // Paper Fig 11: 8 hint sets x 3 rules = 24 rewritten queries in stage two.
  RewriteOptionSet all = CrossWithApproxRules(base, rules, /*include_exact=*/false);
  EXPECT_EQ(all.size(), 24u);
  for (const RewriteOption& o : all) EXPECT_TRUE(o.IsApproximate());
}

TEST(QueryTest, ToStringSingleTable) {
  Query q;
  q.table = "tweets";
  q.output = OutputKind::kHeatmap;
  q.output_column = "coordinates";
  q.predicates.push_back(Predicate::Keyword("text", "covid"));
  std::string s = q.ToString();
  EXPECT_NE(s.find("BIN_ID(coordinates)"), std::string::npos);
  EXPECT_NE(s.find("FROM tweets"), std::string::npos);
  EXPECT_NE(s.find("GROUP BY"), std::string::npos);
}

TEST(QueryTest, ToStringJoin) {
  Query q;
  q.table = "tweets";
  q.output = OutputKind::kScatter;
  q.output_column = "coordinates";
  q.predicates.push_back(Predicate::Keyword("text", "covid"));
  JoinSpec js;
  js.right_table = "users";
  js.left_key = "user_id";
  js.right_key = "id";
  js.right_predicates.push_back(Predicate::Numeric("tweet_cnt", 100, 5000));
  q.join = js;
  std::string s = q.ToString();
  EXPECT_NE(s.find("JOIN users"), std::string::npos);
  EXPECT_NE(s.find("tweets.user_id = users.id"), std::string::npos);
  EXPECT_NE(s.find("users.tweet_cnt"), std::string::npos);
}

TEST(RewrittenQueryTest, RendersHintPlusQuery) {
  Query q;
  q.table = "t";
  q.output_column = "p";
  q.predicates.push_back(Predicate::Keyword("text", "x"));
  RewriteOption ro;
  ro.hints.index_mask = 1;
  RewrittenQuery rq{&q, ro};
  std::string s = rq.ToString();
  EXPECT_NE(s.find("/*+"), std::string::npos);
  EXPECT_NE(s.find("FROM t"), std::string::npos);
}

}  // namespace
}  // namespace maliva
