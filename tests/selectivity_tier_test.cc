// Ladder arbitration tests for the histogram selectivity tier
// (qte/selectivity_tier.h): rung-2 answers agree with the engine's
// histograms, untrustworthy columns demote (and re-promote) from probe
// feedback, and a catalog epoch bump silently disables the tier until
// Refresh. The service-level tests cover the end-to-end wiring: per-rung
// request stats and the off-default byte-identity contract.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "qte/selectivity_tier.h"
#include "query/predicate.h"
#include "service/service.h"
#include "tests/test_helpers.h"
#include "workload/scenario.h"

namespace maliva {
namespace {

TEST(SelectivityTier, AnswersMatchEngineHistograms) {
  std::unique_ptr<Engine> engine = testing_helpers::SmallEngine();
  SelectivityTier tier(engine.get(), {});

  Predicate pred = Predicate::Time("created_at", 1000, 4000);
  std::optional<double> est = tier.Estimate("tweets", pred);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(
      *est,
      engine->HistogramSelectivity("tweets", pred, engine->catalog_version()).value());

  // Keyword predicates have no histogram: the tier declines (rung 3's job).
  EXPECT_FALSE(tier.Estimate("tweets", Predicate::Keyword("text", "burst")).has_value());
  EXPECT_FALSE(tier.CanEstimate("tweets", Predicate::Keyword("text", "burst")));
  EXPECT_TRUE(tier.CanEstimate("tweets", pred));

  SelectivityTier::Stats stats = tier.Snapshot();
  EXPECT_EQ(stats.histogram_hits, 1u);  // CanEstimate does not count
}

TEST(SelectivityTier, DemotionAndRepromotionFromProbeFeedback) {
  std::unique_ptr<Engine> engine = testing_helpers::SmallEngine();
  SelectivityTierConfig config;
  config.max_rel_error = 0.25;
  config.error_window = 8;
  SelectivityTier tier(engine.get(), config);

  Predicate pred = Predicate::Time("created_at", 2000, 7000);
  double est = *tier.Estimate("tweets", pred);

  // Feed probes wildly disagreeing with the histogram: after the minimum
  // evidence count the column is demoted and rung 2 declines.
  for (int i = 0; i < 4; ++i) tier.RecordProbe("tweets", pred, est * 3.0);
  EXPECT_FALSE(tier.Estimate("tweets", pred).has_value());
  EXPECT_FALSE(tier.CanEstimate("tweets", pred));
  EXPECT_EQ(tier.Snapshot().demoted_columns, 1u);

  // Demotion is per column: other columns keep answering.
  EXPECT_TRUE(
      tier.CanEstimate("tweets", Predicate::Spatial("coordinates",
                                                    BoundingBox{10, 10, 60, 40})));

  // Rung 3 keeps probing the demoted column; accurate probes push the bad
  // samples out of the bounded window and the column re-promotes itself.
  for (int i = 0; i < 8; ++i) tier.RecordProbe("tweets", pred, est);
  EXPECT_TRUE(tier.Estimate("tweets", pred).has_value());
  EXPECT_EQ(tier.Snapshot().demoted_columns, 0u);
}

TEST(SelectivityTier, CatalogEpochBumpDisablesUntilRefresh) {
  std::unique_ptr<Engine> engine = testing_helpers::SmallEngine();
  SelectivityTier tier(engine.get(), {});
  Predicate pred = Predicate::Time("created_at", 0, 5000);
  ASSERT_TRUE(tier.Estimate("tweets", pred).has_value());
  tier.RecordProbe("tweets", pred, 0.5);
  EXPECT_EQ(tier.Snapshot().probe_records, 1u);

  // A stats refresh (sample build) moves the ground truth: the stale tier
  // must decline every estimate — and drop probe feedback — until re-armed.
  uint64_t old_epoch = tier.epoch();
  ASSERT_TRUE(engine->BuildSampleTables("tweets", {0.05}, 3).ok());
  ASSERT_NE(engine->catalog_version(), old_epoch);
  EXPECT_FALSE(tier.Estimate("tweets", pred).has_value());
  EXPECT_FALSE(tier.CanEstimate("tweets", pred));
  tier.RecordProbe("tweets", pred, 0.5);
  EXPECT_EQ(tier.Snapshot().probe_records, 1u);  // stale feedback dropped

  // Refresh re-arms against the new epoch and clears the old evidence.
  tier.Refresh();
  EXPECT_EQ(tier.epoch(), engine->catalog_version());
  EXPECT_TRUE(tier.Estimate("tweets", pred).has_value());
  EXPECT_EQ(tier.Snapshot().error_samples, 0u);
}

TEST(SelectivityTier, ServiceReportsPerRungHitsAndTelemetry) {
  ScenarioConfig sc;
  sc.num_rows = 4000;
  sc.num_queries = 40;
  sc.seed = 5;
  Scenario scenario = BuildScenario(sc);

  ServiceConfig config;
  config.default_strategy = "naive";  // sampling QTE, no training needed
  config.WithHistogramSelectivity(true);
  MalivaService service(&scenario, config);

  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 10 && i < scenario.evaluation.size(); ++i) {
    requests.push_back(RewriteRequest{scenario.evaluation[i]});
  }
  std::vector<Result<RewriteResponse>> responses = service.ServeBatch(requests);

  size_t histogram_hits = 0;
  size_t probes = 0;
  for (const Result<RewriteResponse>& r : responses) {
    ASSERT_TRUE(r.ok()) << r.status().message();
    const RequestStats& stats = r.value().stats;
    histogram_hits += stats.selectivity_tier_hits[1];
    probes += stats.selectivity_tier_hits[2];
    // The two paid rungs partition the request's collected slots.
    EXPECT_EQ(stats.selectivity_tier_hits[1] + stats.selectivity_tier_hits[2],
              stats.selectivities_collected + stats.shared_hits);
    EXPECT_EQ(stats.selectivity_tier_hits[0], stats.shared_hits);
  }
  // Range/spatial predicates dominate the workload, so rung 2 must fire.
  EXPECT_GT(histogram_hits, 0u);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.histogram_hits, histogram_hits);
  EXPECT_EQ(stats.probe_collections, probes);
}

TEST(SelectivityTier, OffByDefaultKeepsServeBatchByteIdentical) {
  ScenarioConfig sc;
  sc.num_rows = 4000;
  sc.num_queries = 40;
  sc.seed = 9;

  // Baseline: tier off (the default).
  Scenario off_scenario = BuildScenario(sc);
  ServiceConfig off_config;
  off_config.default_strategy = "naive";
  MalivaService off(&off_scenario, off_config);

  // Same scenario, tier constructed but... off stays off; this test pins the
  // default, the enabled path is covered above. Compare two thread counts.
  Scenario threaded_scenario = BuildScenario(sc);
  ServiceConfig threaded_config;
  threaded_config.default_strategy = "naive";
  threaded_config.num_threads = 4;
  MalivaService threaded(&threaded_scenario, threaded_config);

  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 12 && i < off_scenario.evaluation.size(); ++i) {
    requests.push_back(RewriteRequest{off_scenario.evaluation[i]});
  }
  std::vector<RewriteRequest> threaded_requests;
  for (size_t i = 0; i < 12 && i < threaded_scenario.evaluation.size(); ++i) {
    threaded_requests.push_back(RewriteRequest{threaded_scenario.evaluation[i]});
  }

  std::vector<Result<RewriteResponse>> a = off.ServeBatch(requests);
  std::vector<Result<RewriteResponse>> b = threaded.ServeBatch(threaded_requests);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok() && b[i].ok());
    EXPECT_EQ(a[i].value().rewritten_sql, b[i].value().rewritten_sql);
    EXPECT_DOUBLE_EQ(a[i].value().outcome.total_ms, b[i].value().outcome.total_ms);
    EXPECT_EQ(a[i].value().stats.selectivity_tier_hits[1], 0u);  // tier off
  }
}

}  // namespace
}  // namespace maliva
