// End-to-end integration: the full Maliva pipeline — served through
// MalivaService — on a small Twitter scenario must reproduce the paper's
// qualitative claims.

#include <gtest/gtest.h>

#include "harness/setup.h"

namespace maliva {
namespace {

const std::vector<ApproxRule> kRules = {{ApproxKind::kSampleTable, 0.2},
                                        {ApproxKind::kSampleTable, 0.4},
                                        {ApproxKind::kSampleTable, 0.8}};

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 50000;
    cfg.num_queries = 400;
    cfg.tau_ms = 500.0;
    cfg.seed = 33;
    cfg.approx_sample_rates = {0.2, 0.4, 0.8};
    scenario_ = new Scenario(BuildScenario(cfg));

    service_ = new MalivaService(scenario_, ServiceConfig()
                                                .WithTrainerIterations(15)
                                                .WithAgentSeeds(1)
                                                .WithApproxRules(kRules));
  }
  static void TearDownTestSuite() {
    delete service_;
    delete scenario_;
    service_ = nullptr;
    scenario_ = nullptr;
  }

  static Scenario* scenario_;
  static MalivaService* service_;
};

Scenario* IntegrationTest::scenario_ = nullptr;
MalivaService* IntegrationTest::service_ = nullptr;

TEST_F(IntegrationTest, MdpBeatsBaselineOnHardQueries) {
  BucketedWorkload bw = BucketQueries(*scenario_->oracle, scenario_->evaluation,
                                      scenario_->options, 500.0,
                                      BucketScheme::Exact0To4());
  ExperimentResult r = RunExperiment(
      {ApproachFor(*service_, "baseline"), ApproachFor(*service_, "mdp/accurate")}, bw);

  // Aggregate VQP over the hard buckets (1 and 2 viable plans).
  double base = 0.0, mdp = 0.0;
  size_t n = 0;
  for (size_t b = 1; b <= 2; ++b) {
    size_t bn = r.buckets[b].num_queries;
    if (bn == 0) continue;
    base += r.buckets[b].per_approach[0].vqp * static_cast<double>(bn);
    mdp += r.buckets[b].per_approach[1].vqp * static_cast<double>(bn);
    n += bn;
  }
  ASSERT_GT(n, 20u) << "scenario produced too few hard queries";
  base /= static_cast<double>(n);
  mdp /= static_cast<double>(n);
  EXPECT_GT(mdp, base + 10.0) << "MDP must clearly beat the baseline on hard queries";
}

TEST_F(IntegrationTest, ZeroViableBucketUnservableWithoutApproximation) {
  BucketedWorkload bw = BucketQueries(*scenario_->oracle, scenario_->evaluation,
                                      scenario_->options, 500.0,
                                      BucketScheme::Exact0To4());
  ExperimentResult r = RunExperiment({ApproachFor(*service_, "baseline"), ApproachFor(*service_, "mdp/accurate")}, bw);
  if (r.buckets[0].num_queries > 0) {
    EXPECT_DOUBLE_EQ(r.buckets[0].per_approach[0].vqp, 0.0);
    EXPECT_DOUBLE_EQ(r.buckets[0].per_approach[1].vqp, 0.0);
  }
}

TEST_F(IntegrationTest, QualityAwareServesZeroViableQueries) {
  Approach one_stage = ApproachFor(*service_, "quality/one-stage");

  BucketedWorkload bw = BucketQueries(*scenario_->oracle, scenario_->evaluation,
                                      scenario_->options, 500.0,
                                      BucketScheme::Exact0To4());
  if (bw.buckets[0].size() < 10) GTEST_SKIP() << "not enough 0-viable queries";

  ExperimentResult r = RunExperiment({ApproachFor(*service_, "baseline"), one_stage}, bw);
  // Approximation unlocks some of the 0-viable bucket (paper Fig 20a).
  EXPECT_GT(r.buckets[0].per_approach[1].vqp, 5.0);
  // And quality on served queries is below 1 but far above 0.
  EXPECT_LT(r.buckets[0].per_approach[1].quality, 1.0);
  EXPECT_GT(r.buckets[0].per_approach[1].quality, 0.05);
}

TEST_F(IntegrationTest, TwoStagePreservesQualityBetterThanOneStage) {
  Approach one_stage = ApproachFor(*service_, "quality/one-stage");
  Approach two_stage = ApproachFor(*service_, "quality/two-stage");

  BucketedWorkload bw = BucketQueries(*scenario_->oracle, scenario_->evaluation,
                                      scenario_->options, 500.0,
                                      BucketScheme::Exact0To4());
  ExperimentResult r = RunExperiment({one_stage, two_stage}, bw);

  // On queries with >= 3 viable exact plans, the two-stage approach should
  // essentially never approximate, so its quality must be >= one-stage's.
  double q1 = 0.0, q2 = 0.0;
  size_t n = 0;
  for (size_t b = 3; b < r.buckets.size(); ++b) {
    size_t bn = r.buckets[b].num_queries;
    q1 += r.buckets[b].per_approach[0].quality * static_cast<double>(bn);
    q2 += r.buckets[b].per_approach[1].quality * static_cast<double>(bn);
    n += bn;
  }
  if (n < 10) GTEST_SKIP() << "not enough easy queries";
  EXPECT_GE(q2 / static_cast<double>(n), q1 / static_cast<double>(n) - 1e-9);
}

TEST_F(IntegrationTest, ExperimentRunnerMetricsConsistent) {
  BucketedWorkload bw = BucketQueries(*scenario_->oracle, scenario_->evaluation,
                                      scenario_->options, 500.0,
                                      BucketScheme::Exact0To4());
  ExperimentResult r = RunExperiment({ApproachFor(*service_, "baseline")}, bw);
  for (const BucketMetrics& bm : r.buckets) {
    for (const ApproachMetrics& m : bm.per_approach) {
      EXPECT_GE(m.vqp, 0.0);
      EXPECT_LE(m.vqp, 100.0);
      if (bm.num_queries > 0) {
        EXPECT_NEAR(m.aqrt_ms, m.plan_ms + m.exec_ms, 1e-6);
      }
    }
  }
}

TEST_F(IntegrationTest, RewriteOutcomeDeterministic) {
  Approach mdp = ApproachFor(*service_, "mdp/accurate");
  const Query& q = *scenario_->evaluation[0];
  RewriteOutcome a = mdp.rewrite(q);
  RewriteOutcome b = mdp.rewrite(q);
  EXPECT_EQ(a.option_index, b.option_index);
  EXPECT_DOUBLE_EQ(a.total_ms, b.total_ms);
}

TEST_F(IntegrationTest, PlanningTimeBoundedByBudgetPlusOneStep) {
  // The agent stops exploring once the budget is spent: planning time can
  // overshoot tau by at most one estimation step.
  Approach mdp = ApproachFor(*service_, "mdp/accurate");
  for (size_t i = 0; i < std::min<size_t>(50, scenario_->evaluation.size()); ++i) {
    RewriteOutcome out = mdp.rewrite(*scenario_->evaluation[i]);
    EXPECT_LE(out.planning_ms, 500.0 + 2.0 * 3 * 50.0 + 5.0);
    EXPECT_GE(out.steps, 1u);
  }
}

}  // namespace
}  // namespace maliva
