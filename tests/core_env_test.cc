// MDP environment tests: state layout, transition accounting, all three
// termination cases, and the reward definitions (Eq 1 and Eq 2).

#include <gtest/gtest.h>

#include "core/query_env.h"
#include "qte/accurate_qte.h"
#include "test_helpers.h"

namespace maliva {
namespace {

using testing_helpers::SmallEngine;
using testing_helpers::SmallQuery;

class QueryEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = SmallEngine(4000, 7);
    ASSERT_TRUE(engine_->BuildSampleTables("tweets", {0.01}, 3).ok());
    oracle_ = std::make_unique<PlanTimeOracle>(engine_.get());
    options_ = EnumerateHintOnlyOptions(3);
    // "w30" is a tail word (~1% of rows): its single-index plan is viable on
    // the small engine, giving the env a committable option.
    query_ = SmallQuery(1, "w30", 2000, 7000, {20, 10, 80, 40});
    ctx_.query = &query_;
    ctx_.options = &options_;
    ctx_.engine = engine_.get();
    ctx_.oracle = oracle_.get();
    ctx_.params.unit_cost_ms = 40.0;
    ctx_.params.model_eval_ms = 2.0;
    config_.tau_ms = 500.0;
    config_.agent_decision_ms = 0.5;
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<PlanTimeOracle> oracle_;
  RewriteOptionSet options_;
  Query query_;
  QteContext ctx_;
  AccurateQte qte_;
  EnvConfig config_;
};

TEST_F(QueryEnvTest, InitialStateLayout) {
  QueryEnv env(&ctx_, &qte_, config_);
  EXPECT_EQ(env.num_actions(), 8u);
  std::vector<double> f = env.Features();
  ASSERT_EQ(f.size(), 2u * 8 + 1);
  EXPECT_DOUBLE_EQ(f[0], 0.0);               // elapsed = 0
  for (size_t i = 9; i < 17; ++i) {
    EXPECT_DOUBLE_EQ(f[i], 0.0);             // no T_i yet
  }
  for (size_t i = 1; i < 9; ++i) {
    EXPECT_GT(f[i], 0.0);                    // C_i predictions present
  }
  EXPECT_FALSE(env.terminal());
  EXPECT_TRUE(env.HasRemaining());
}

TEST_F(QueryEnvTest, StepChargesElapsedAndRecordsEstimate) {
  QueryEnv env(&ctx_, &qte_, config_);
  env.Step(0b010);  // explore the time-index RQ
  EXPECT_GT(env.elapsed_ms(), 0.0);
  std::vector<double> f = env.Features();
  EXPECT_GT(f[0], 0.0);
  // T for option 2 recorded (position 1 + 8 + 2).
  double t2 = f[1 + 8 + 2];
  EXPECT_GT(t2, 0.0);
}

TEST_F(QueryEnvTest, EstimationCostDropsForSharingOptions) {
  QueryEnv env(&ctx_, &qte_, config_);
  std::vector<double> before = env.Features();
  double c_mask5_before = before[1 + 0b101];
  if (!env.terminal()) env.Step(0b001);  // collects the keyword selectivity
  if (env.terminal()) return;            // committed immediately; nothing to check
  std::vector<double> after = env.Features();
  double c_mask5_after = after[1 + 0b101];
  EXPECT_LT(c_mask5_after, c_mask5_before);  // Fig 7: C_5 shrinks
}

TEST_F(QueryEnvTest, CommitsWhenEstimateLooksViable) {
  QueryEnv env(&ctx_, &qte_, config_);
  // Find an option whose true time fits easily and step onto it.
  size_t good = options_.size();
  for (size_t i = 0; i < options_.size(); ++i) {
    if (oracle_->TrueTimeMs(query_, options_[i]) < 300.0) {
      good = i;
      break;
    }
  }
  ASSERT_LT(good, options_.size()) << "test query needs a viable plan";
  double reward = env.Step(good);
  EXPECT_TRUE(env.terminal());
  EXPECT_EQ(env.decided_option(), good);
  EXPECT_GT(reward, 0.0);  // Eq 1 positive when within budget
}

TEST_F(QueryEnvTest, RewardMatchesEquationOne) {
  QueryEnv env(&ctx_, &qte_, config_);
  size_t good = 0;
  for (size_t i = 0; i < options_.size(); ++i) {
    if (oracle_->TrueTimeMs(query_, options_[i]) < 300.0) {
      good = i;
      break;
    }
  }
  double reward = env.Step(good);
  ASSERT_TRUE(env.terminal());
  double expect = (config_.tau_ms - env.elapsed_ms() - env.decided_exec_ms()) /
                  config_.tau_ms;
  EXPECT_NEAR(reward, std::max(config_.reward_floor, expect), 1e-9);
}

TEST_F(QueryEnvTest, TerminatesWhenBudgetExhausted) {
  EnvConfig tight = config_;
  tight.tau_ms = 50.0;  // one estimation (~40ms+) nearly exhausts the budget
  QueryEnv env(&ctx_, &qte_, tight);
  double reward = 0.0;
  size_t steps = 0;
  while (!env.terminal() && steps < 10) {
    reward = env.Step(0b111 - steps);  // explore expensive options first
    ++steps;
  }
  EXPECT_TRUE(env.terminal());
  EXPECT_LE(steps, 3u);
  EXPECT_LT(reward, 0.0);  // blew the budget
}

TEST_F(QueryEnvTest, ExhaustsAllOptionsPicksMinEstimate) {
  EnvConfig roomy = config_;
  roomy.tau_ms = 50000.0;  // never time out...
  // ...and make every estimate look non-viable by using a tiny tau for the
  // viability check? Instead: use a query with no fast plan.
  Query slow = SmallQuery(2, "w0", 0, 9999, {0, 0, 100, 50});
  QteContext ctx = ctx_;
  ctx.query = &slow;
  roomy.tau_ms = 1.0;  // nothing is viable, but planning time stays < tau? No:
  // tau=1ms means elapsed >= tau after one step. Use moderate tau and verify
  // via a slow query with large estimates instead.
  roomy.tau_ms = 2000.0;

  QueryEnv env(&ctx, &qte_, roomy);
  while (!env.terminal()) {
    // Pick any remaining option.
    const std::vector<uint8_t>& valid = env.valid_actions();
    size_t pick = valid.size();
    for (size_t i = 0; i < valid.size(); ++i) {
      if (valid[i]) {
        pick = i;
        break;
      }
    }
    ASSERT_LT(pick, valid.size());
    env.Step(pick);
  }
  // Either it found something viable or it exhausted/timed out; in all cases
  // a decision exists and is one of the options.
  EXPECT_LT(env.decided_option(), options_.size());
}

TEST_F(QueryEnvTest, RewardFloorClipsCatastrophes) {
  EnvConfig cfg = config_;
  cfg.reward_floor = -2.0;
  Query slow = SmallQuery(3, "w0", 0, 9999, {0, 0, 100, 50});
  QteContext ctx = ctx_;
  ctx.query = &slow;
  QueryEnv env(&ctx, &qte_, cfg);
  double reward = env.Step(0);  // forced full scan: catastrophically slow
  if (!env.terminal()) return;  // (estimate exceeded budget: keep exploring)
  EXPECT_GE(reward, -2.0);
}

TEST_F(QueryEnvTest, QualityAwareRewardBlendsQuality) {
  ASSERT_TRUE(engine_->BuildSampleTables("tweets", {0.2}, 9).ok());
  QualityOracle quality(engine_.get());

  std::vector<ApproxRule> rules = {{ApproxKind::kSampleTable, 0.2}};
  RewriteOptionSet combined = CrossWithApproxRules(options_, rules, true);
  QteContext ctx = ctx_;
  ctx.options = &combined;

  EnvConfig cfg = config_;
  cfg.beta = 0.5;
  cfg.quality = &quality;

  QueryEnv env(&ctx, &qte_, cfg);
  // Explore an approximate option with a fast plan (index 8 + mask).
  size_t approx_fast = combined.size();
  for (size_t i = 8; i < combined.size(); ++i) {
    if (oracle_->TrueTimeMs(query_, combined[i]) < 200.0) {
      approx_fast = i;
      break;
    }
  }
  ASSERT_LT(approx_fast, combined.size());
  double reward = env.Step(approx_fast);
  ASSERT_TRUE(env.terminal());
  double eff = (cfg.tau_ms - env.elapsed_ms() - env.decided_exec_ms()) / cfg.tau_ms;
  double q = quality.Quality(query_, combined[approx_fast]);
  EXPECT_NEAR(reward, 0.5 * eff + 0.5 * q, 1e-9);
  EXPECT_LT(q, 1.0);  // approximate result has quality loss
}

TEST_F(QueryEnvTest, InheritedCacheAndElapsedForTwoStage) {
  SelectivityCache warm(ctx_.NumSlots());
  warm.Set(0, 0.01);
  warm.Set(1, 0.3);
  QueryEnv env(&ctx_, &qte_, config_, /*initial_elapsed_ms=*/120.0, &warm);
  EXPECT_DOUBLE_EQ(env.elapsed_ms(), 120.0);
  // C for mask 0b011 should only include the model eval (slots cached).
  std::vector<double> f = env.Features();
  EXPECT_NEAR(f[1 + 0b011] * config_.tau_ms, ctx_.params.model_eval_ms, 1e-6);
}

TEST_F(QueryEnvTest, FeatureClipping) {
  QueryEnv env(&ctx_, &qte_, config_);
  for (double v : env.Features()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 5.0);
  }
}

}  // namespace
}  // namespace maliva
