// Rewrite-result cache tests (service/rewrite_result_cache.h): the cache
// module's single-flight / CLOCK / context-validation mechanics, the service
// wiring (hit byte-identity, in-batch dedup, probe-only admission path), and
// the invalidation races (catalog epoch + agent snapshot bumps mid-stream).
// The suite names carry "ResultCache" so the scripts/ci.sh sanitizer legs
// (-R '...|ResultCache') run them under TSan/ASan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/rewrite_result_cache.h"
#include "service/service.h"
#include "service/service_fleet.h"

namespace maliva {
namespace {

// ------------------------------------------------------------ unit tests ---

/// Marker payloads: entries are told apart by outcome.total_ms.
CachedRewrite Marked(double marker) {
  CachedRewrite value;
  value.strategy = "marker";
  value.outcome.total_ms = marker;
  return value;
}

TEST(ResultCacheUnitTest, BeginMissPublishHitRoundTrip) {
  RewriteResultCache cache({.capacity = 16, .shards = 2});
  RewriteResultCache::Ticket miss = cache.Begin(42, 1, 1);
  ASSERT_EQ(miss.role, RewriteResultCache::Role::kLeader);
  cache.Publish(miss, 42, 1, 1, Marked(7.0));

  RewriteResultCache::Ticket hit = cache.Begin(42, 1, 1);
  ASSERT_EQ(hit.role, RewriteResultCache::Role::kHit);
  ASSERT_TRUE(hit.value.has_value());
  EXPECT_DOUBLE_EQ(hit.value->outcome.total_ms, 7.0);

  RewriteResultCache::Stats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.stale_declines, 0u);
}

TEST(ResultCacheUnitTest, ContextMismatchDeclinesAndReplacesInPlace) {
  RewriteResultCache cache({.capacity = 16, .shards = 1});
  RewriteResultCache::Ticket t = cache.Begin(42, /*epoch=*/1, /*snapshot=*/1);
  cache.Publish(t, 42, 1, 1, Marked(1.0));

  // Same fingerprint, moved epoch: never trusted, and the recompute's
  // publish replaces the resident entry without growing the map.
  RewriteResultCache::Ticket stale = cache.Begin(42, /*epoch=*/2, 1);
  ASSERT_EQ(stale.role, RewriteResultCache::Role::kLeader);
  cache.Publish(stale, 42, 2, 1, Marked(2.0));
  EXPECT_EQ(cache.Size(), 1u);
  EXPECT_EQ(cache.Snapshot().stale_declines, 1u);

  RewriteResultCache::Ticket hit = cache.Begin(42, 2, 1);
  ASSERT_EQ(hit.role, RewriteResultCache::Role::kHit);
  EXPECT_DOUBLE_EQ(hit.value->outcome.total_ms, 2.0);

  // A snapshot-version move declines the same way.
  RewriteResultCache::Ticket snap = cache.Begin(42, 2, /*snapshot=*/9);
  EXPECT_EQ(snap.role, RewriteResultCache::Role::kLeader);
  cache.Abort(snap, 42);
  EXPECT_EQ(cache.Snapshot().stale_declines, 2u);
}

TEST(ResultCacheUnitTest, ClockEvictionGivesReferencedEntriesASecondChance) {
  RewriteResultCache cache({.capacity = 4, .shards = 1});
  for (uint64_t key = 1; key <= 4; ++key) {
    RewriteResultCache::Ticket t = cache.Begin(key, 1, 1);
    ASSERT_EQ(t.role, RewriteResultCache::Role::kLeader);
    cache.Publish(t, key, 1, 1, Marked(static_cast<double>(key)));
  }
  // Reference key 2 — the first entry the hand will reach. The sweep must
  // clear its bit and evict key 3 (the first unreferenced victim) instead.
  ASSERT_EQ(cache.Begin(2, 1, 1).role, RewriteResultCache::Role::kHit);

  RewriteResultCache::Ticket t5 = cache.Begin(5, 1, 1);
  ASSERT_EQ(t5.role, RewriteResultCache::Role::kLeader);
  cache.Publish(t5, 5, 1, 1, Marked(5.0));

  EXPECT_EQ(cache.Snapshot().evictions, 1u);
  EXPECT_EQ(cache.Size(), 4u);
  EXPECT_EQ(cache.Begin(2, 1, 1).role, RewriteResultCache::Role::kHit);
  EXPECT_EQ(cache.Begin(5, 1, 1).role, RewriteResultCache::Role::kHit);
  RewriteResultCache::Ticket evicted = cache.Begin(3, 1, 1);
  EXPECT_EQ(evicted.role, RewriteResultCache::Role::kLeader);
  cache.Abort(evicted, 3);
}

TEST(ResultCacheUnitTest, ShardCountIsClampedToCapacity) {
  RewriteResultCache cache({.capacity = 3, .shards = 64});
  EXPECT_EQ(cache.capacity(), 3u);
  EXPECT_EQ(cache.num_shards(), 3u);
  RewriteResultCache floor({.capacity = 0, .shards = 0});
  EXPECT_EQ(floor.capacity(), 1u);
  EXPECT_EQ(floor.num_shards(), 1u);
}

TEST(ResultCacheUnitTest, FollowerReceivesLeaderValue) {
  RewriteResultCache cache({.capacity = 16, .shards = 1});
  RewriteResultCache::Ticket leader = cache.Begin(42, 1, 1);
  ASSERT_EQ(leader.role, RewriteResultCache::Role::kLeader);

  std::optional<CachedRewrite> followed;
  std::atomic<bool> enrolled{false};
  std::thread follower([&cache, &followed, &enrolled] {
    RewriteResultCache::Ticket t = cache.Begin(42, 1, 1);
    ASSERT_EQ(t.role, RewriteResultCache::Role::kFollower);
    enrolled.store(true);
    followed = cache.WaitForLeader(t);
  });
  // Publish only after the follower holds its ticket; whether it has
  // reached WaitForLeader yet must not matter (done is latched, not
  // pulsed).
  while (!enrolled.load()) std::this_thread::yield();
  cache.Publish(leader, 42, 1, 1, Marked(7.0));
  follower.join();

  ASSERT_TRUE(followed.has_value());
  EXPECT_DOUBLE_EQ(followed->outcome.total_ms, 7.0);
  EXPECT_EQ(cache.Snapshot().coalesced, 1u);
}

TEST(ResultCacheUnitTest, AbortWakesFollowersEmptyAndFreesTheKey) {
  RewriteResultCache cache({.capacity = 16, .shards = 1});
  RewriteResultCache::Ticket leader = cache.Begin(42, 1, 1);
  ASSERT_EQ(leader.role, RewriteResultCache::Role::kLeader);

  std::optional<CachedRewrite> followed = Marked(0.0);
  std::atomic<bool> enrolled{false};
  std::thread follower([&cache, &followed, &enrolled] {
    RewriteResultCache::Ticket t = cache.Begin(42, 1, 1);
    ASSERT_EQ(t.role, RewriteResultCache::Role::kFollower);
    enrolled.store(true);
    followed = cache.WaitForLeader(t);
  });
  while (!enrolled.load()) std::this_thread::yield();
  cache.Abort(leader, 42);
  follower.join();

  EXPECT_FALSE(followed.has_value());  // compute solo, not coalesced
  EXPECT_EQ(cache.Snapshot().coalesced, 0u);
  EXPECT_EQ(cache.Size(), 0u);

  // The aborted flight is deregistered: the key is free to lead again.
  RewriteResultCache::Ticket retry = cache.Begin(42, 1, 1);
  EXPECT_EQ(retry.role, RewriteResultCache::Role::kLeader);
  cache.Abort(retry, 42);
}

TEST(ResultCacheUnitTest, FlightUnderDifferentContextYieldsSolo) {
  RewriteResultCache cache({.capacity = 16, .shards = 1});
  RewriteResultCache::Ticket leader = cache.Begin(42, /*epoch=*/1, 1);
  ASSERT_EQ(leader.role, RewriteResultCache::Role::kLeader);

  // A new-epoch request must not inherit the old-epoch leader's answer.
  RewriteResultCache::Ticket solo = cache.Begin(42, /*epoch=*/2, 1);
  EXPECT_EQ(solo.role, RewriteResultCache::Role::kSolo);
  EXPECT_EQ(solo.flight, nullptr);
  cache.Publish(leader, 42, 1, 1, Marked(1.0));
  cache.Publish(solo, 42, 2, 1, Marked(2.0));

  // The solo's newer-context publish landed last and is the resident entry.
  RewriteResultCache::Ticket hit = cache.Begin(42, 2, 1);
  ASSERT_EQ(hit.role, RewriteResultCache::Role::kHit);
  EXPECT_DOUBLE_EQ(hit.value->outcome.total_ms, 2.0);
}

TEST(ResultCacheUnitTest, ProbeNeverCountsMissesOrEnrollsFlights) {
  RewriteResultCache cache({.capacity = 16, .shards = 1});
  EXPECT_FALSE(cache.Probe(42, 1, 1).has_value());
  EXPECT_EQ(cache.Snapshot().misses, 0u);

  // The probe did not become a leader: the next Begin leads.
  RewriteResultCache::Ticket t = cache.Begin(42, 1, 1);
  ASSERT_EQ(t.role, RewriteResultCache::Role::kLeader);
  cache.Publish(t, 42, 1, 1, Marked(7.0));

  std::optional<CachedRewrite> probed = cache.Probe(42, 1, 1);
  ASSERT_TRUE(probed.has_value());
  EXPECT_DOUBLE_EQ(probed->outcome.total_ms, 7.0);
  EXPECT_FALSE(cache.Probe(42, /*epoch=*/2, 1).has_value());  // context-exact
  RewriteResultCache::Stats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

// --------------------------------------------------------- service tests ---

class ResultCacheServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 20000;
    cfg.num_queries = 120;
    cfg.tau_ms = 500.0;
    cfg.seed = 211;
    cfg.approx_sample_rates = {0.2, 0.4};
    scenario_ = new Scenario(BuildScenario(cfg));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static ServiceConfig SmallConfig() {
    return ServiceConfig()
        .WithTrainerIterations(3)
        .WithAgentSeeds(1)
        .WithApproxRules({{ApproxKind::kSampleTable, 0.2},
                          {ApproxKind::kSampleTable, 0.4}});
  }

  static RewriteRequest Request(size_t query_index,
                                const std::string& strategy = "mdp/accurate") {
    RewriteRequest req;
    req.query = scenario_->evaluation[query_index % scenario_->evaluation.size()];
    req.strategy = strategy;
    return req;
  }

  /// The decision bytes a hit must replay exactly (wall clock and the
  /// result_cache_* how-served flags are the documented exclusions).
  static void ExpectSameDecision(const Result<RewriteResponse>& a,
                                 const Result<RewriteResponse>& b) {
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code());
      EXPECT_EQ(a.status().message(), b.status().message());
      return;
    }
    const RewriteResponse& ra = a.value();
    const RewriteResponse& rb = b.value();
    EXPECT_EQ(ra.strategy, rb.strategy);
    EXPECT_EQ(ra.rewritten_sql, rb.rewritten_sql);
    EXPECT_EQ(ra.exact_fallback, rb.exact_fallback);
    EXPECT_EQ(ra.outcome.option_index, rb.outcome.option_index);
    EXPECT_EQ(ra.outcome.planning_ms, rb.outcome.planning_ms);
    EXPECT_EQ(ra.outcome.exec_ms, rb.outcome.exec_ms);
    EXPECT_EQ(ra.outcome.total_ms, rb.outcome.total_ms);
    EXPECT_EQ(ra.outcome.viable, rb.outcome.viable);
    EXPECT_EQ(ra.outcome.steps, rb.outcome.steps);
    EXPECT_EQ(ra.outcome.quality, rb.outcome.quality);
    EXPECT_EQ(ra.outcome.approximate, rb.outcome.approximate);
    EXPECT_EQ(ra.stats.selectivities_collected, rb.stats.selectivities_collected);
    EXPECT_EQ(ra.stats.agent_snapshot_version, rb.stats.agent_snapshot_version);
  }

  static Scenario* scenario_;
};

Scenario* ResultCacheServiceTest::scenario_ = nullptr;

TEST_F(ResultCacheServiceTest, OffByDefaultWithZeroTelemetry) {
  MalivaService service(scenario_, SmallConfig());
  RewriteRequest req = Request(0);
  Result<RewriteResponse> a = service.Serve(req);
  Result<RewriteResponse> b = service.Serve(req);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a.value().stats.result_cache_hit);
  EXPECT_FALSE(b.value().stats.result_cache_hit);
  EXPECT_FALSE(service.TryServeCached(req).has_value());

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.result_cache_hits, 0u);
  EXPECT_EQ(stats.result_cache_misses, 0u);
  EXPECT_EQ(stats.result_cache_coalesced, 0u);
  EXPECT_EQ(stats.result_cache_size, 0u);
}

TEST_F(ResultCacheServiceTest, HitReplaysTheMissByteForByte) {
  MalivaService service(scenario_, SmallConfig().WithResultCache(true));
  RewriteRequest req = Request(0);

  Result<RewriteResponse> miss = service.Serve(req);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().stats.result_cache_hit);

  Result<RewriteResponse> hit = service.Serve(req);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().stats.result_cache_hit);
  EXPECT_FALSE(hit.value().stats.result_cache_coalesced);
  ExpectSameDecision(miss, hit);
  // The replayed template carries the original search's bill; the hit
  // itself did no selectivity work.
  EXPECT_EQ(hit.value().stats.shared_hits, miss.value().stats.shared_hits);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.result_cache_hits, 1u);
  EXPECT_EQ(stats.result_cache_misses, 1u);
  EXPECT_EQ(stats.result_cache_size, 1u);
  EXPECT_EQ(stats.requests, 2u);

  // Distinct query, distinct fingerprint: a miss, not a collision.
  Result<RewriteResponse> other = service.Serve(Request(1));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other.value().stats.result_cache_hit);
  EXPECT_EQ(service.Stats().result_cache_misses, 2u);
}

TEST_F(ResultCacheServiceTest, HitsDoNotRebillSelectivityTelemetry) {
  MalivaService service(scenario_, SmallConfig().WithResultCache(true));
  RewriteRequest req = Request(2);
  ASSERT_TRUE(service.Serve(req).ok());
  uint64_t collected_after_miss = service.Stats().selectivities_collected;
  ASSERT_TRUE(service.Serve(req).ok());
  ASSERT_TRUE(service.Serve(req).ok());
  // Replays bill no new selectivity work; only the request counter moves.
  EXPECT_EQ(service.Stats().selectivities_collected, collected_after_miss);
  EXPECT_EQ(service.Stats().requests, 3u);
}

TEST_F(ResultCacheServiceTest, MissPathMatchesCacheOffServiceByteForByte) {
  MalivaService off(scenario_, SmallConfig().WithNumThreads(1));
  MalivaService on(scenario_,
                   SmallConfig().WithResultCache(true).WithNumThreads(8));

  // Mixed strategies, taus, floors, and error requests: with the cache on,
  // every decision (first-seen misses and replayed duplicates alike) must
  // carry the bytes the cache-off service computes.
  std::vector<RewriteRequest> requests;
  const char* strategies[] = {"baseline", "naive", "mdp/accurate", "bao"};
  for (size_t i = 0; i < 80; ++i) {
    RewriteRequest req = Request(i / 2, strategies[i % 4]);
    if (i % 5 == 0) req.tau_ms = 250.0 + 50.0 * static_cast<double>(i % 4);
    if (i % 7 == 0) req.quality_floor = 0.9;
    if (i % 17 == 0) req.strategy = "definitely/not-a-strategy";
    requests.push_back(req);
  }
  std::vector<Result<RewriteResponse>> expected = off.ServeBatch(requests);
  std::vector<Result<RewriteResponse>> got = on.ServeBatch(requests);
  ASSERT_EQ(expected.size(), got.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameDecision(expected[i], got[i]);
  }
  // And a second identical batch — now served mostly from the cache — still
  // reproduces the same bytes.
  std::vector<Result<RewriteResponse>> replayed = on.ServeBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameDecision(expected[i], replayed[i]);
  }
  EXPECT_GT(on.Stats().result_cache_hits + on.Stats().result_cache_coalesced,
            0u);
}

TEST_F(ResultCacheServiceTest, BatchDedupCoalescesDuplicatesWithinOneBatch) {
  MalivaService service(scenario_,
                        SmallConfig().WithResultCache(true).WithNumThreads(4));
  ASSERT_TRUE(service.Warmup({"mdp/accurate"}).ok());

  // 4 distinct requests, 4 copies each, interleaved. The cache is cold, so
  // every replayed copy can only come from the in-batch dedup pre-pass.
  std::vector<RewriteRequest> requests;
  for (size_t copy = 0; copy < 4; ++copy) {
    for (size_t q = 0; q < 4; ++q) requests.push_back(Request(q));
  }
  std::vector<Result<RewriteResponse>> responses = service.ServeBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(responses[i].ok()) << responses[i].status().ToString();
    ExpectSameDecision(responses[i % 4], responses[i]);
    EXPECT_EQ(responses[i].value().stats.result_cache_coalesced, i >= 4);
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.result_cache_coalesced, 12u);  // 3 replayed copies x 4
  EXPECT_EQ(stats.result_cache_misses, 4u);      // one search per distinct
  EXPECT_EQ(stats.requests, 16u);
}

TEST_F(ResultCacheServiceTest, TauAndFloorBinsShareDecisionsWithinABin) {
  MalivaService service(scenario_, SmallConfig().WithResultCache(true));

  RewriteRequest req = Request(0);
  req.tau_ms = 300.0;
  ASSERT_TRUE(service.Serve(req).ok());
  // 310ms falls in the same 25ms bin (floor(300/25) == floor(310/25) == 12).
  req.tau_ms = 310.0;
  Result<RewriteResponse> same_bin = service.Serve(req);
  ASSERT_TRUE(same_bin.ok());
  EXPECT_TRUE(same_bin.value().stats.result_cache_hit);
  // 330ms crosses into bin 13: its own search.
  req.tau_ms = 330.0;
  Result<RewriteResponse> next_bin = service.Serve(req);
  ASSERT_TRUE(next_bin.ok());
  EXPECT_FALSE(next_bin.value().stats.result_cache_hit);

  // Quality floors bin at 1/100 granularity; absent is its own key.
  RewriteRequest floored = Request(1);
  floored.quality_floor = 0.901;
  ASSERT_TRUE(service.Serve(floored).ok());
  floored.quality_floor = 0.909;
  Result<RewriteResponse> same_floor = service.Serve(floored);
  ASSERT_TRUE(same_floor.ok());
  EXPECT_TRUE(same_floor.value().stats.result_cache_hit);
  floored.quality_floor.reset();
  Result<RewriteResponse> no_floor = service.Serve(floored);
  ASSERT_TRUE(no_floor.ok());
  EXPECT_FALSE(no_floor.value().stats.result_cache_hit);
}

TEST_F(ResultCacheServiceTest, TryServeCachedIsProbeOnly) {
  MalivaService service(scenario_, SmallConfig().WithResultCache(true));
  RewriteRequest req = Request(0);

  // Cold cache, cold strategy: the probe refuses to build or train anything
  // and counts no miss.
  EXPECT_FALSE(service.TryServeCached(req).has_value());
  EXPECT_EQ(service.Stats().result_cache_misses, 0u);

  ASSERT_TRUE(service.Serve(req).ok());
  std::optional<RewriteResponse> cached = service.TryServeCached(req);
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->stats.result_cache_hit);
  EXPECT_EQ(service.Stats().result_cache_hits, 1u);
  EXPECT_EQ(service.Stats().result_cache_misses, 1u);  // the Serve's only
}

TEST_F(ResultCacheServiceTest, ValidateRejectsBadKnobs) {
  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "baseline";
  ServiceConfig bad[] = {
      SmallConfig().WithResultCache(true).WithResultCacheCapacity(0),
      SmallConfig().WithResultCache(true).WithResultCacheShards(0),
      SmallConfig().WithResultCache(true).WithResultCacheCapacity(4).WithResultCacheShards(8),
      SmallConfig().WithResultCache(true).WithResultCacheTauBinMs(0.0),
      SmallConfig().WithResultCache(true).WithResultCacheTauBinMs(-5.0),
      SmallConfig().WithResultCache(true).WithResultCacheFloorBins(0),
  };
  for (size_t i = 0; i < sizeof(bad) / sizeof(bad[0]); ++i) {
    SCOPED_TRACE(i);
    ASSERT_FALSE(bad[i].Validate().ok());
    MalivaService service(scenario_, bad[i]);
    EXPECT_EQ(service.Serve(req).status().code(),
              Status::Code::kInvalidArgument);
  }
  // The knobs are inert while the cache is off.
  EXPECT_TRUE(SmallConfig().WithResultCacheCapacity(0).Validate().ok());
}

TEST_F(ResultCacheServiceTest, FleetRollsUpCacheCountersAcrossShards) {
  MalivaFleet fleet(FleetConfig()
                        .WithDefaults(SmallConfig().WithResultCache(true))
                        .WithWarmupThreads(0));
  ASSERT_TRUE(fleet.RegisterScenario("tweets", scenario_).ok());

  RewriteRequest req = Request(0);
  req.scenario = "tweets";
  ASSERT_TRUE(fleet.Serve(req).ok());
  Result<RewriteResponse> hit = fleet.Serve(req);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().stats.result_cache_hit);

  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.totals.result_cache_hits, 1u);
  EXPECT_EQ(stats.totals.result_cache_misses, 1u);
  EXPECT_EQ(stats.totals.result_cache_size, 1u);
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].second.result_cache_hits, 1u);
}

TEST_F(ResultCacheServiceTest, AdmissionGateServesCacheHitsBeforeDeciding) {
  // Admission on, cache on: a duplicate request must be answered from the
  // cache ahead of the Decide ladder (counted as admitted, never shed or
  // degraded, no scheduler dispatch).
  AdmissionConfig admission;
  admission.enabled = true;
  admission.slack_factor = 10.0;  // lazy first-use training must not shed
  MalivaFleet fleet(FleetConfig()
                        .WithDefaults(SmallConfig().WithResultCache(true))
                        .WithWarmupThreads(0)
                        .WithAdmission(admission));
  ASSERT_TRUE(fleet.RegisterScenario("tweets", scenario_).ok());

  RewriteRequest req = Request(0);
  req.scenario = "tweets";
  Result<RewriteResponse> miss = fleet.Serve(req);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  Result<RewriteResponse> hit = fleet.Serve(req);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().stats.result_cache_hit);
  EXPECT_FALSE(hit.value().stats.degraded);
  ExpectSameDecision(miss, hit);

  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.admission.admitted, 2u);
  EXPECT_EQ(stats.admission.shed_deadline + stats.admission.shed_overload, 0u);
  EXPECT_EQ(stats.totals.result_cache_hits, 1u);
}

// ---------------------------------------------------- invalidation races ---

class ResultCacheRaceTest : public ::testing::Test {
 protected:
  static ServiceConfig SmallConfig() {
    return ServiceConfig().WithTrainerIterations(3).WithAgentSeeds(1);
  }
};

TEST_F(ResultCacheRaceTest, CatalogBumpInvalidatesResidentDecisions) {
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 5000;
  cfg.num_queries = 40;
  cfg.seed = 223;
  Scenario scenario = BuildScenario(cfg);
  MalivaService service(&scenario, SmallConfig().WithResultCache(true));

  RewriteRequest req;
  req.query = scenario.evaluation[0];
  req.strategy = "naive";
  ASSERT_TRUE(service.Serve(req).ok());
  Result<RewriteResponse> warm = service.Serve(req);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm.value().stats.result_cache_hit);

  // A stats refresh moves catalog_version(): the resident decision predates
  // the new ground truth and must never be replayed.
  uint64_t before = scenario.engine->catalog_version();
  ASSERT_TRUE(scenario.engine->BuildSampleTables("tweets", {0.33}, 4242).ok());
  ASSERT_GT(scenario.engine->catalog_version(), before);

  Result<RewriteResponse> recomputed = service.Serve(req);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(recomputed.value().stats.result_cache_hit);
  EXPECT_GE(service.Stats().result_cache_stale_declines, 1u);
  // The recompute re-warms the new epoch in place: same single entry.
  Result<RewriteResponse> rewarmed = service.Serve(req);
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_TRUE(rewarmed.value().stats.result_cache_hit);
  EXPECT_EQ(service.Stats().result_cache_size, 1u);
}

TEST_F(ResultCacheRaceTest, SnapshotPublishInvalidatesResidentDecisions) {
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 20000;
  cfg.num_queries = 120;
  cfg.seed = 227;
  Scenario scenario = BuildScenario(cfg);
  MalivaService service(&scenario, SmallConfig()
                                       .WithResultCache(true)
                                       .WithOnlineLearning(true)
                                       .WithOnlineTrainerThreads(0)
                                       .WithOnlineGradientSteps(4)
                                       .WithOnlineGateTolerance(10.0));
  ASSERT_TRUE(service.Warmup({"mdp/accurate"}).ok());
  const std::string key = "agent/exact-accurate";

  // Misses on distinct queries feed the replay sink (hits record no
  // feedback, so the fine-tune round below runs on miss transitions only).
  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 32; ++i) {
    RewriteRequest req;
    req.query = scenario.evaluation[i % scenario.evaluation.size()];
    req.strategy = "mdp/accurate";
    requests.push_back(req);
  }
  for (const Result<RewriteResponse>& resp : service.ServeBatch(requests)) {
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().stats.agent_snapshot_version, 1u);
  }
  Result<RewriteResponse> v1_hit = service.Serve(requests[0]);
  ASSERT_TRUE(v1_hit.ok());
  ASSERT_TRUE(v1_hit.value().stats.result_cache_hit);

  // Publish snapshot v2: every resident v1 decision is dead, O(1).
  ASSERT_TRUE(service.online_trainer()->RetrainNow(key));
  ASSERT_EQ(service.model_registry()->CurrentVersion(key), 2u);

  Result<RewriteResponse> recomputed = service.Serve(requests[0]);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(recomputed.value().stats.result_cache_hit);
  EXPECT_EQ(recomputed.value().stats.agent_snapshot_version, 2u);
  EXPECT_GE(service.Stats().result_cache_stale_declines, 1u);

  // And the v2 decision is the new resident entry.
  Result<RewriteResponse> v2_hit = service.Serve(requests[0]);
  ASSERT_TRUE(v2_hit.ok());
  EXPECT_TRUE(v2_hit.value().stats.result_cache_hit);
  EXPECT_EQ(v2_hit.value().stats.agent_snapshot_version, 2u);
}

TEST_F(ResultCacheRaceTest, EightThreadsUnderSnapshotAndCatalogChurn) {
  // The suite's TSan/ASan stress leg: 8 serving threads hammering a small
  // hot set (maximal hit/coalesce pressure) while the main thread publishes
  // new agent snapshots concurrently and bumps the catalog epoch between
  // rounds (engine catalog mutation is documented build-phase-only, so the
  // bump itself happens at a barrier; the *invalidations* land mid-stream).
  // Invariants: every response ok, and per thread the served snapshot
  // version never moves backwards — a replayed decision is never older than
  // one the thread already observed.
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 20000;
  cfg.num_queries = 120;
  cfg.seed = 229;
  Scenario scenario = BuildScenario(cfg);
  MalivaService service(&scenario, SmallConfig()
                                       .WithResultCache(true)
                                       .WithResultCacheCapacity(64)
                                       .WithOnlineLearning(true)
                                       .WithOnlineTrainerThreads(0)
                                       .WithOnlineGradientSteps(4)
                                       .WithOnlineGateTolerance(10.0));
  ASSERT_TRUE(service.Warmup({"mdp/accurate"}).ok());
  const std::string key = "agent/exact-accurate";

  std::atomic<bool> failed{false};
  auto run_round = [&] {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        uint64_t last_version = 0;
        for (size_t i = 0; i < 40; ++i) {
          RewriteRequest req;
          req.query = scenario.evaluation[(t + i) % 6];  // 6-query hot set
          req.strategy = "mdp/accurate";
          Result<RewriteResponse> resp = service.Serve(req);
          if (!resp.ok()) {
            failed.store(true);
            return;
          }
          uint64_t version = resp.value().stats.agent_snapshot_version;
          if (version < last_version) {
            failed.store(true);  // stale decision replayed
            return;
          }
          last_version = version;
        }
      });
    }
    // Concurrent snapshot churn while the 8 threads serve.
    for (int round = 0; round < 3; ++round) {
      (void)service.online_trainer()->RetrainNow(key);
    }
    for (std::thread& thread : threads) thread.join();
  };

  run_round();
  uint64_t before = scenario.engine->catalog_version();
  ASSERT_TRUE(scenario.engine->BuildSampleTables("tweets", {0.25}, 4242).ok());
  ASSERT_GT(scenario.engine->catalog_version(), before);
  run_round();

  EXPECT_FALSE(failed.load());
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.requests, 2u * 8u * 40u);
  EXPECT_GT(stats.result_cache_hits, 0u);
  // The catalog bump (and any mid-stream snapshot publish) must have forced
  // context declines rather than stale replays.
  EXPECT_GE(stats.result_cache_stale_declines, 1u);
}

}  // namespace
}  // namespace maliva
