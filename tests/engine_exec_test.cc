// Executor correctness: every hinted plan must compute the same (exact)
// result as a brute-force evaluation, while charging plan-dependent times.

#include <gtest/gtest.h>

#include <set>

#include "engine/optimizer.h"
#include "test_helpers.h"

namespace maliva {
namespace {

using testing_helpers::BruteForceMatch;
using testing_helpers::SmallEngine;
using testing_helpers::SmallQuery;

class ExecAllMasks : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ExecAllMasks, AllHintedPlansReturnSameExactResult) {
  auto engine = SmallEngine(4000, 7);
  Query q = SmallQuery(1, "w1", 2000, 7000, {20, 10, 80, 40});
  const Table& table = *engine->FindEntry("tweets")->table;
  std::vector<RowId> expect_rows = BruteForceMatch(table, q);
  std::set<int64_t> expect_ids(expect_rows.begin(), expect_rows.end());

  PlanSpec spec;
  spec.index_mask = GetParam();
  Result<ExecResult> r = engine->ExecutePlan(q, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<int64_t> got(r.value().vis.ids.begin(), r.value().vis.ids.end());
  EXPECT_EQ(got, expect_ids) << "mask=" << GetParam();
  EXPECT_GT(r.value().exec_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Masks, ExecAllMasks, ::testing::Range(0u, 8u));

TEST(ExecutorTest, DifferentPlansDifferentTimes) {
  auto engine = SmallEngine(4000, 7);
  Query q = SmallQuery(2, "w0", 0, 9999, {0, 0, 100, 50});  // unselective
  PlanSpec full, kw;
  full.index_mask = 0;
  kw.index_mask = 1;
  double t_full = engine->ExecutePlan(q, full).value().exec_ms;
  double t_kw = engine->ExecutePlan(q, kw).value().exec_ms;
  EXPECT_NE(t_full, t_kw);
}

TEST(ExecutorTest, DeterministicRepeatedExecution) {
  auto engine = SmallEngine(2000, 9);
  Query q = SmallQuery(3, "w2", 1000, 8000, {10, 5, 90, 45});
  PlanSpec spec;
  spec.index_mask = 3;
  double a = engine->ExecutePlan(q, spec).value().exec_ms;
  double b = engine->ExecutePlan(q, spec).value().exec_ms;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(ExecutorTest, HeatmapBinsSumToMatchCount) {
  auto engine = SmallEngine(4000, 7);
  Query q = SmallQuery(4, "w1", 0, 9999, {20, 10, 80, 40}, OutputKind::kHeatmap);
  const Table& table = *engine->FindEntry("tweets")->table;
  size_t expect = BruteForceMatch(table, q).size();
  PlanSpec spec;
  spec.index_mask = 1;
  Result<ExecResult> r = engine->ExecutePlan(q, spec);
  ASSERT_TRUE(r.ok());
  int64_t total = 0;
  for (const auto& [bin, count] : r.value().vis.bins) {
    EXPECT_GE(bin, 0);
    EXPECT_LT(bin, static_cast<int64_t>(q.heatmap_bins) * q.heatmap_bins);
    total += count;
  }
  EXPECT_EQ(static_cast<size_t>(total), expect);
}

TEST(ExecutorTest, CardsReflectPlanShape) {
  auto engine = SmallEngine(4000, 7);
  Query q = SmallQuery(5, "w1", 2000, 7000, {20, 10, 80, 40});

  PlanSpec full;
  full.index_mask = 0;
  ExecResult r_full = engine->ExecutePlan(q, full).value();
  EXPECT_GT(r_full.cards.scanned_rows, 0.0);
  EXPECT_TRUE(r_full.cards.postings.empty());

  PlanSpec two;
  two.index_mask = 0b011;
  ExecResult r_two = engine->ExecutePlan(q, two).value();
  EXPECT_EQ(r_two.cards.postings.size(), 2u);
  EXPECT_DOUBLE_EQ(r_two.cards.residual_preds, 1.0);
  EXPECT_EQ(r_two.cards.scanned_rows, 0.0);
}

TEST(ExecutorTest, CardinalityScaleAppliesToCards) {
  EngineProfile p = EngineProfile::PostgresLike();
  p.cardinality_scale = 100.0;
  auto engine = SmallEngine(2000, 11, p);
  Query q = SmallQuery(6, "w0", 0, 9999, {0, 0, 100, 50});
  PlanSpec spec;
  spec.index_mask = 0;
  ExecResult r = engine->ExecutePlan(q, spec).value();
  EXPECT_DOUBLE_EQ(r.cards.scanned_rows, 2000.0 * 100.0);
}

TEST(ExecutorTest, MissingIndexIsFailedPrecondition) {
  // Register without the text index; hinting it must fail cleanly.
  auto engine = std::make_unique<Engine>(EngineProfile::PostgresLike(), 1);
  ASSERT_TRUE(engine
                  ->RegisterTable(testing_helpers::SmallTweets(500, 3),
                                  {"created_at", "coordinates"})
                  .ok());
  Query q = SmallQuery(7, "w0", 0, 9999, {0, 0, 100, 50});
  PlanSpec spec;
  spec.index_mask = 1;  // text index was not built
  Result<ExecResult> r = engine->ExecutePlan(q, spec);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kFailedPrecondition);
}

TEST(ExecutorTest, UnknownTableIsNotFound) {
  auto engine = SmallEngine(500, 3);
  Query q = SmallQuery(8, "w0", 0, 9999, {0, 0, 100, 50});
  q.table = "nope";
  PlanSpec spec;
  Result<ExecResult> r = engine->ExecutePlan(q, spec);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ExecutorTest, ExecuteUnhintedUsesOptimizer) {
  auto engine = SmallEngine(4000, 7);
  Query q = SmallQuery(9, "w3", 1000, 3000, {10, 5, 60, 30});
  RewrittenQuery rq{&q, RewriteOption{}};  // no hints at all
  Result<ExecResult> r = engine->Execute(rq);
  ASSERT_TRUE(r.ok());
  // The plan actually run must equal the optimizer's free choice.
  PlanSpec expected = engine->optimizer().ResolvePlan(q, RewriteOption{});
  EXPECT_EQ(r.value().plan.index_mask, expected.index_mask);
}

TEST(ExecutorTest, TrueSelectivityMatchesBruteForce) {
  auto engine = SmallEngine(3000, 15);
  const Table& table = *engine->FindEntry("tweets")->table;
  Predicate pred = Predicate::Time("created_at", 1000, 4000);
  Result<double> sel = engine->TrueSelectivity("tweets", pred);
  ASSERT_TRUE(sel.ok());
  Query probe;
  probe.table = "tweets";
  probe.predicates = {pred};
  size_t matches = BruteForceMatch(table, probe).size();
  EXPECT_NEAR(sel.value(), static_cast<double>(matches) / 3000.0, 1e-12);
}

TEST(ExecutorTest, NoiseProfileChangesTimesDeterministically) {
  EngineProfile noisy = EngineProfile::PostgresLike();
  noisy.noise_sigma = 0.3;
  auto engine = SmallEngine(2000, 21, noisy);
  Query q1 = SmallQuery(10, "w1", 0, 9999, {0, 0, 100, 50});
  Query q2 = SmallQuery(11, "w1", 0, 9999, {0, 0, 100, 50});
  PlanSpec spec;
  spec.index_mask = 1;
  double a1 = engine->ExecutePlan(q1, spec).value().exec_ms;
  double a1_again = engine->ExecutePlan(q1, spec).value().exec_ms;
  double a2 = engine->ExecutePlan(q2, spec).value().exec_ms;
  EXPECT_DOUBLE_EQ(a1, a1_again);  // deterministic per identity
  EXPECT_NE(a1, a2);               // but varies across query ids
}

TEST(ExecutorTest, EmptyResultQueries) {
  auto engine = SmallEngine(1000, 5);
  Query q = SmallQuery(12, "doesnotexist", 0, 9999, {0, 0, 100, 50});
  for (uint32_t mask : {0u, 1u, 7u}) {
    PlanSpec spec;
    spec.index_mask = mask;
    Result<ExecResult> r = engine->ExecutePlan(q, spec);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().vis.ids.empty());
  }
}

}  // namespace
}  // namespace maliva
