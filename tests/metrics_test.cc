// Metrics plane tests (ISSUE 10). Suite names carry "Metrics" so the
// scripts/ci.sh sanitizer legs (-R '...|Metrics|TraceRing') run them.
//
// Covered contracts:
//   * LatencyHistogram percentiles track an exact sorted-vector baseline
//     within 2% relative error (the ISSUE acceptance bound), are exact for
//     single-tick values, and snapshots merge/subtract bucket-wise;
//   * MetricsRegistry hands out stable, identical handles per (name,
//     labels), stamps base labels, and counts lookups — the proof that the
//     serve hot path performs zero registry map lookups;
//   * both exporters are golden-stable for a fixed label set;
//   * MetricsFlusher cuts windowed deltas and bounds its ring;
//   * MalivaService with metrics on matches metrics-off decision bytes
//     (byte-identity) and never touches the registry map while serving;
//   * FleetStats::metrics aggregation is safe under concurrent serves and
//     snapshots, monotone, and equals the sum of per-shard registries;
//   * ServingTelemetry::WallMsToNs rounds instead of truncating and clamps
//     negatives/NaN/overflow (the PR 10 accounting fix).

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "service/service_fleet.h"
#include "service/serving_telemetry.h"
#include "util/rng.h"
#include "workload/replay_driver.h"
#include "workload/scenario.h"

namespace maliva {
namespace {

// --------------------------------------------------------------- histogram --

/// Deterministic log-uniform latencies spanning 50us .. 2s.
std::vector<double> LogUniformLatencies(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  const double lo = std::log(0.05);
  const double hi = std::log(2000.0);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::exp(rng.Uniform(lo, hi)));
  }
  return out;
}

/// The replay driver's percentile convention: sorted[floor(q * n)].
double ExactPercentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(values.size()));
  if (idx >= values.size()) idx = values.size() - 1;
  return values[idx];
}

TEST(MetricsHistogramTest, PercentilesWithinTwoPercentOfExactSort) {
  const std::vector<double> values = LogUniformLatencies(10000, 17);
  LatencyHistogram hist;
  for (double v : values) hist.Record(v);
  HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = ExactPercentile(values, q);
    const double estimate = snap.Percentile(q);
    EXPECT_NEAR(estimate, exact, std::max(0.002, exact * 0.02))
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(MetricsHistogramTest, SingleTickValuesAreExact) {
  // Ticks below 64 get one bucket each: percentiles are exact, not midpoint.
  LatencyHistogram hist;
  hist.Record(0.004);
  hist.Record(0.004);
  hist.Record(0.004);
  hist.Record(0.063);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 0.004);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 0.063);
  EXPECT_DOUBLE_EQ(snap.min_ms, 0.004);
  EXPECT_DOUBLE_EQ(snap.max_ms, 0.063);
  EXPECT_DOUBLE_EQ(snap.sum_ms, 0.075);
}

TEST(MetricsHistogramTest, TicksForClampsAndRounds) {
  EXPECT_EQ(LatencyHistogram::TicksFor(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::TicksFor(-3.0), 0u);
  EXPECT_EQ(LatencyHistogram::TicksFor(std::nan("")), 0u);
  EXPECT_EQ(LatencyHistogram::TicksFor(0.0015), 2u);  // 1.5us rounds to 2
  EXPECT_EQ(LatencyHistogram::TicksFor(1.0), 1000u);
  EXPECT_EQ(LatencyHistogram::TicksFor(1e18), LatencyHistogram::kMaxTicks);
}

TEST(MetricsHistogramTest, BucketIndexRoundTripsLowerBound) {
  // Every bucket's lower bound must map back to that bucket, and bucket
  // width never exceeds lower_bound/64 above the linear range.
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const uint64_t lo = LatencyHistogram::BucketLowerTicks(i);
    if (lo > LatencyHistogram::kMaxTicks) break;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i) << "lower bound of " << i;
  }
  EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::kMaxTicks),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(MetricsHistogramTest, MergeEqualsCombinedRecording) {
  const std::vector<double> values = LogUniformLatencies(2000, 23);
  LatencyHistogram all;
  LatencyHistogram left;
  LatencyHistogram right;
  for (size_t i = 0; i < values.size(); ++i) {
    all.Record(values[i]);
    (i % 2 == 0 ? left : right).Record(values[i]);
  }
  HistogramSnapshot merged = left.Snapshot();
  merged.MergeFrom(right.Snapshot());
  HistogramSnapshot whole = all.Snapshot();
  EXPECT_EQ(merged.count, whole.count);
  EXPECT_DOUBLE_EQ(merged.sum_ms, whole.sum_ms);
  EXPECT_DOUBLE_EQ(merged.min_ms, whole.min_ms);
  EXPECT_DOUBLE_EQ(merged.max_ms, whole.max_ms);
  ASSERT_EQ(merged.buckets, whole.buckets);
}

TEST(MetricsHistogramTest, DeltaSinceSubtractsWindows) {
  LatencyHistogram hist;
  hist.Record(1.0);
  hist.Record(2.0);
  HistogramSnapshot earlier = hist.Snapshot();
  hist.Record(4.0);
  hist.Record(1.0);
  HistogramSnapshot later = hist.Snapshot();
  HistogramSnapshot delta = later.DeltaSince(earlier);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_DOUBLE_EQ(delta.sum_ms, 5.0);
  uint64_t bucket_total = 0;
  for (const auto& [index, c] : delta.buckets) bucket_total += c;
  EXPECT_EQ(bucket_total, 2u);
}

// ---------------------------------------------------------------- registry --

TEST(MetricsRegistryTest, HandlesAreStableAndLookupsCounted) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.lookups(), 0u);
  Counter* a = reg.GetCounter("maliva_requests_total", {{"verdict", "ok"}});
  Counter* b = reg.GetCounter("maliva_requests_total", {{"verdict", "ok"}});
  Counter* c = reg.GetCounter("maliva_requests_total", {{"verdict", "error"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.lookups(), 3u);
  a->Increment(2);
  b->Increment();
  EXPECT_EQ(a->Value(), 3u);
  // Recording through resolved handles never bumps the lookup counter.
  EXPECT_EQ(reg.lookups(), 3u);
}

TEST(MetricsRegistryTest, BaseLabelsStampEverySeriesAndCallLabelsWin) {
  MetricsRegistry reg(MetricLabels{{"scenario", "tweets"}});
  reg.GetCounter("hits", {})->Increment();
  reg.GetCounter("hits", {{"scenario", "override"}})->Increment(5);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].labels,
            MetricLabels({{"scenario", "override"}}));
  EXPECT_EQ(snap.counters[0].value, 5u);
  EXPECT_EQ(snap.counters[1].labels, MetricLabels({{"scenario", "tweets"}}));
  EXPECT_EQ(snap.counters[1].value, 1u);
}

TEST(MetricsRegistryTest, CounterSumMatchesLabelSubsets) {
  MetricsRegistry reg(MetricLabels{{"scenario", "taxi"}});
  reg.GetCounter("maliva_admission_total", {{"verdict", "admitted"}})->Increment(7);
  reg.GetCounter("maliva_admission_total", {{"verdict", "shed_overload"}})->Increment(3);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterSum("maliva_admission_total"), 10u);
  EXPECT_EQ(snap.CounterSum("maliva_admission_total", {{"verdict", "admitted"}}), 7u);
  EXPECT_EQ(snap.CounterSum("maliva_admission_total", {{"scenario", "taxi"}}), 10u);
  EXPECT_EQ(snap.CounterSum("maliva_admission_total", {{"scenario", "tweets"}}), 0u);
}

/// Fixed registry behind both exporter goldens: two counter series, one
/// gauge, one histogram with exactly known single-tick samples.
MetricsRegistry& GoldenRegistry() {
  static MetricsRegistry* reg = [] {
    auto* r = new MetricsRegistry(MetricLabels{{"scenario", "tweets"}});
    r->GetCounter("maliva_requests_total", {{"verdict", "ok"}})->Increment(3);
    r->GetCounter("maliva_requests_total", {{"verdict", "error"}})->Increment(1);
    r->GetGauge("maliva_result_cache_entries", {})->Set(42);
    LatencyHistogram* h = r->GetHistogram("maliva_serve_latency_ms", {});
    h->Record(0.004);
    h->Record(0.004);
    h->Record(0.004);
    h->Record(0.063);
    return r;
  }();
  return *reg;
}

TEST(MetricsRegistryTest, PrometheusGolden) {
  const std::string expected =
      "# TYPE maliva_requests_total counter\n"
      "maliva_requests_total{scenario=\"tweets\",verdict=\"error\"} 1\n"
      "maliva_requests_total{scenario=\"tweets\",verdict=\"ok\"} 3\n"
      "# TYPE maliva_result_cache_entries gauge\n"
      "maliva_result_cache_entries{scenario=\"tweets\"} 42\n"
      "# TYPE maliva_serve_latency_ms summary\n"
      "maliva_serve_latency_ms{scenario=\"tweets\",quantile=\"0.5\"} 0.004\n"
      "maliva_serve_latency_ms{scenario=\"tweets\",quantile=\"0.9\"} 0.063\n"
      "maliva_serve_latency_ms{scenario=\"tweets\",quantile=\"0.95\"} 0.063\n"
      "maliva_serve_latency_ms{scenario=\"tweets\",quantile=\"0.99\"} 0.063\n"
      "maliva_serve_latency_ms{scenario=\"tweets\",quantile=\"0.999\"} 0.063\n"
      "maliva_serve_latency_ms_sum{scenario=\"tweets\"} 0.075\n"
      "maliva_serve_latency_ms_count{scenario=\"tweets\"} 4\n";
  EXPECT_EQ(GoldenRegistry().RenderPrometheus(), expected);
}

TEST(MetricsRegistryTest, JsonGolden) {
  const std::string expected =
      "{\"counters\": ["
      "{\"name\": \"maliva_requests_total\", \"labels\": {\"scenario\": "
      "\"tweets\", \"verdict\": \"error\"}, \"value\": 1}, "
      "{\"name\": \"maliva_requests_total\", \"labels\": {\"scenario\": "
      "\"tweets\", \"verdict\": \"ok\"}, \"value\": 3}"
      "], \"gauges\": ["
      "{\"name\": \"maliva_result_cache_entries\", \"labels\": {\"scenario\": "
      "\"tweets\"}, \"value\": 42}"
      "], \"histograms\": ["
      "{\"name\": \"maliva_serve_latency_ms\", \"labels\": {\"scenario\": "
      "\"tweets\"}, \"count\": 4, \"sum_ms\": 0.075, \"min_ms\": 0.004, "
      "\"max_ms\": 0.063, \"mean_ms\": 0.01875, \"p50\": 0.004, "
      "\"p90\": 0.063, \"p95\": 0.063, \"p99\": 0.063, \"p999\": 0.063}"
      "]}";
  EXPECT_EQ(GoldenRegistry().RenderJson(), expected);
}

TEST(MetricsRegistryTest, SnapshotMergeSumsAcrossRegistries) {
  MetricsRegistry a(MetricLabels{{"scenario", "a"}});
  MetricsRegistry b(MetricLabels{{"scenario", "b"}});
  a.GetCounter("requests", {})->Increment(2);
  b.GetCounter("requests", {})->Increment(3);
  a.GetHistogram("latency", {})->Record(1.0);
  b.GetHistogram("latency", {})->Record(2.0);
  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  // Distinct label sets stay distinct rows; the cross-scenario total is a
  // CounterSum query, not a lossy merge.
  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.CounterSum("requests"), 5u);
  ASSERT_EQ(merged.histograms.size(), 2u);

  // Identical label sets fold: merging a's snapshot into itself doubles it.
  MetricsSnapshot doubled = a.Snapshot();
  doubled.MergeFrom(a.Snapshot());
  EXPECT_EQ(doubled.CounterSum("requests"), 4u);
  ASSERT_EQ(doubled.histograms.size(), 1u);
  EXPECT_EQ(doubled.histograms[0].hist.count, 2u);
}

// ----------------------------------------------------------------- flusher --

TEST(MetricsFlusherTest, FlushNowCutsWindowedDeltas) {
  MetricsRegistry reg;
  Counter* served = reg.GetCounter("served", {});
  MetricsFlusher flusher([&reg] { return reg.Snapshot(); }, /*interval_ms=*/0);
  served->Increment(5);
  flusher.FlushNow();
  served->Increment(3);
  flusher.FlushNow();
  std::vector<MetricsFlusher::Window> windows = flusher.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].delta.CounterSum("served"), 5u);
  EXPECT_EQ(windows[1].delta.CounterSum("served"), 3u);
  EXPECT_GE(windows[1].start_ms, windows[0].start_ms);
  EXPECT_GE(windows[1].end_ms, windows[1].start_ms);
}

TEST(MetricsFlusherTest, RingKeepsNewestWindows) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c", {});
  MetricsFlusher flusher([&reg] { return reg.Snapshot(); }, /*interval_ms=*/0,
                         /*max_windows=*/2);
  for (uint64_t i = 1; i <= 4; ++i) {
    c->Increment(i);
    flusher.FlushNow();
  }
  std::vector<MetricsFlusher::Window> windows = flusher.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].delta.CounterSum("c"), 3u);
  EXPECT_EQ(windows[1].delta.CounterSum("c"), 4u);
}

// --------------------------------------------------------------- telemetry --

TEST(MetricsTelemetryTest, WallMsToNsRoundsAndClamps) {
  // The PR 10 satellite fix: wall_ms * 1e6 used to truncate (losing up to
  // 1ns per request) and wrapped negative inputs to huge values.
  EXPECT_EQ(ServingTelemetry::WallMsToNs(0.0), 0u);
  EXPECT_EQ(ServingTelemetry::WallMsToNs(-1.5), 0u);
  EXPECT_EQ(ServingTelemetry::WallMsToNs(std::nan("")), 0u);
  EXPECT_EQ(ServingTelemetry::WallMsToNs(1.5), 1500000u);
  // 0.0123456 ms = 12345.6 ns: truncation would say 12345, rounding 12346.
  EXPECT_EQ(ServingTelemetry::WallMsToNs(0.0123456), 12346u);
  EXPECT_EQ(ServingTelemetry::WallMsToNs(1e18),
            std::numeric_limits<uint64_t>::max());
}

// ----------------------------------------------------------------- service --

class MetricsServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig config;
    config.kind = DatasetKind::kTwitter;
    config.num_rows = 8000;
    config.num_queries = 60;
    config.tau_ms = 500.0;
    config.seed = 101;
    scenario_ = new Scenario(BuildScenario(config));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  /// Cheap config: baseline default strategy (no agent training).
  static ServiceConfig BaseConfig() {
    return ServiceConfig()
        .WithTrainerIterations(3)
        .WithAgentSeeds(1)
        .WithDefaultStrategy("baseline");
  }

  static Scenario* scenario_;
};

Scenario* MetricsServiceTest::scenario_ = nullptr;

TEST_F(MetricsServiceTest, MetricsScenarioRequiresMetrics) {
  MalivaService service(scenario_,
                        BaseConfig().WithMetricsScenario("tweets"));
  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  Result<RewriteResponse> resp = service.Serve(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(MetricsServiceTest, OffByDefaultWithNullAccessors) {
  MalivaService service(scenario_, BaseConfig());
  EXPECT_EQ(service.metrics_registry(), nullptr);
  EXPECT_EQ(service.serve_metrics(), nullptr);
}

TEST_F(MetricsServiceTest, ZeroRegistryLookupsOnServeHotPath) {
  MalivaService service(scenario_,
                        BaseConfig().WithMetrics(true).WithResultCache(true));
  ASSERT_NE(service.metrics_registry(), nullptr);
  ASSERT_TRUE(service.Warmup({"baseline"}).ok());
  const uint64_t resolved = service.metrics_registry()->lookups();
  EXPECT_GT(resolved, 0u) << "construction resolves the handles";

  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 24; ++i) {
    RewriteRequest req;
    req.query = scenario_->evaluation[i % scenario_->evaluation.size()];
    requests.push_back(req);
  }
  for (const RewriteRequest& req : requests) ASSERT_TRUE(service.Serve(req).ok());
  std::vector<Result<RewriteResponse>> batch =
      service.ServeBatch(std::span<const RewriteRequest>(requests));
  for (const Result<RewriteResponse>& r : batch) ASSERT_TRUE(r.ok());
  (void)service.Stats();

  EXPECT_EQ(service.metrics_registry()->lookups(), resolved)
      << "serving touched the registry map";
  MetricsSnapshot snap = service.metrics_registry()->Snapshot();
  EXPECT_EQ(snap.CounterSum("maliva_requests_total", {{"verdict", "ok"}}), 48u);
  EXPECT_EQ(snap.CounterSum("maliva_requests_total", {{"verdict", "error"}}), 0u);
  // Every serve recorded a latency sample.
  uint64_t hist_count = 0;
  for (const MetricsSnapshot::HistogramRow& row : snap.histograms) {
    if (row.name == "maliva_serve_latency_ms") hist_count = row.hist.count;
  }
  EXPECT_EQ(hist_count, 48u);
  // Cache outcomes partition the serves.
  EXPECT_EQ(snap.CounterSum("maliva_result_cache_total", {{"outcome", "hit"}}) +
                snap.CounterSum("maliva_result_cache_total", {{"outcome", "miss"}}),
            48u);
}

TEST_F(MetricsServiceTest, MetricsOnOffByteIdentity) {
  MalivaService off(scenario_, BaseConfig());
  MalivaService on(scenario_, BaseConfig().WithMetrics(true));
  ASSERT_TRUE(off.Warmup({"baseline"}).ok());
  ASSERT_TRUE(on.Warmup({"baseline"}).ok());
  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 30; ++i) {
    RewriteRequest req;
    req.query = scenario_->evaluation[i % scenario_->evaluation.size()];
    if (i % 5 == 0) req.tau_ms = 250.0 + 10.0 * static_cast<double>(i);
    requests.push_back(req);
  }
  std::vector<Result<RewriteResponse>> a =
      off.ServeBatch(std::span<const RewriteRequest>(requests));
  std::vector<Result<RewriteResponse>> b =
      on.ServeBatch(std::span<const RewriteRequest>(requests));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(ReplayDriver::ResponseDigest(a[i]), ReplayDriver::ResponseDigest(b[i]))
        << "decision bytes diverged at request " << i;
  }
}

TEST_F(MetricsServiceTest, GaugesRefreshOnStats) {
  MalivaService service(scenario_,
                        BaseConfig().WithMetrics(true).WithResultCache(true));
  ASSERT_TRUE(service.Warmup({"baseline"}).ok());
  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  ASSERT_TRUE(service.Serve(req).ok());
  (void)service.Stats();
  MetricsSnapshot snap = service.metrics_registry()->Snapshot();
  int64_t entries = -1;
  for (const MetricsSnapshot::GaugeRow& row : snap.gauges) {
    if (row.name == "maliva_result_cache_entries") entries = row.value;
  }
  EXPECT_GE(entries, 1) << "the served decision should be resident";
}

// ------------------------------------------------------------------- fleet --

class MetricsFleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig a;
    a.kind = DatasetKind::kTwitter;
    a.num_rows = 8000;
    a.num_queries = 60;
    a.tau_ms = 500.0;
    a.seed = 111;
    scenario_a_ = new Scenario(BuildScenario(a));
    a.seed = 112;
    scenario_b_ = new Scenario(BuildScenario(a));
  }
  static void TearDownTestSuite() {
    delete scenario_a_;
    scenario_a_ = nullptr;
    delete scenario_b_;
    scenario_b_ = nullptr;
  }

  static Scenario* scenario_a_;
  static Scenario* scenario_b_;
};

Scenario* MetricsFleetTest::scenario_a_ = nullptr;
Scenario* MetricsFleetTest::scenario_b_ = nullptr;

TEST_F(MetricsFleetTest, FlusherRequiresMetricsAndSloRequiresFlusher) {
  FleetConfig no_metrics = FleetConfig().WithMetricsFlushMs(100);
  EXPECT_EQ(no_metrics.Validate().code(), Status::Code::kInvalidArgument);
  FleetConfig no_flusher =
      FleetConfig()
          .WithDefaults(ServiceConfig().WithMetrics(true))
          .WithSloWatchdog(true)
          .WithAdmission(AdmissionConfig().WithEnabled(true));
  EXPECT_EQ(no_flusher.Validate().code(), Status::Code::kInvalidArgument);
  FleetConfig no_gate = FleetConfig()
                            .WithDefaults(ServiceConfig().WithMetrics(true))
                            .WithMetricsFlushMs(100)
                            .WithSloWatchdog(true);
  EXPECT_EQ(no_gate.Validate().code(), Status::Code::kInvalidArgument);
}

TEST_F(MetricsFleetTest, ConcurrentServesAndSnapshotsAggregateExactly) {
  // The ISSUE 10 concurrency satellite: 8 serving threads racing a
  // snapshotting thread; every intermediate cut is monotone, and the final
  // merged snapshot equals the sum of the per-shard registries.
  MalivaFleet fleet(FleetConfig()
                        .WithDefaults(ServiceConfig()
                                          .WithTrainerIterations(3)
                                          .WithAgentSeeds(1)
                                          .WithDefaultStrategy("baseline")
                                          .WithMetrics(true))
                        .WithWarmupStrategies({"baseline"}));
  ASSERT_TRUE(fleet.RegisterScenario("a", scenario_a_).ok());
  ASSERT_TRUE(fleet.RegisterScenario("b", scenario_b_).ok());
  fleet.WaitWarmups();

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 30;
  std::atomic<bool> serving_done{false};
  std::atomic<uint64_t> last_seen{0};
  std::atomic<bool> monotone{true};
  std::thread snapshotter([&] {
    while (!serving_done.load(std::memory_order_relaxed)) {
      FleetStats stats = fleet.Stats();
      const uint64_t total = stats.metrics.CounterSum("maliva_requests_total");
      uint64_t prev = last_seen.load(std::memory_order_relaxed);
      if (total < prev) monotone.store(false, std::memory_order_relaxed);
      last_seen.store(total, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> servers;
  for (size_t t = 0; t < kThreads; ++t) {
    servers.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        RewriteRequest req;
        Scenario* s = (t + i) % 2 == 0 ? scenario_a_ : scenario_b_;
        req.scenario = (t + i) % 2 == 0 ? "a" : "b";
        req.query = s->evaluation[(t * kPerThread + i) % s->evaluation.size()];
        ASSERT_TRUE(fleet.Serve(req).ok());
      }
    });
  }
  for (std::thread& th : servers) th.join();
  serving_done.store(true, std::memory_order_relaxed);
  snapshotter.join();
  EXPECT_TRUE(monotone.load()) << "merged counter total went backwards";

  FleetStats final_stats = fleet.Stats();
  const uint64_t expected = kThreads * kPerThread;
  EXPECT_EQ(final_stats.metrics.CounterSum("maliva_requests_total"), expected);
  EXPECT_EQ(final_stats.metrics.CounterSum("maliva_requests_total",
                                           {{"scenario", "a"}}) +
                final_stats.metrics.CounterSum("maliva_requests_total",
                                               {{"scenario", "b"}}),
            expected);

  // Merged histograms equal the bucket-wise sum of the per-shard cuts.
  MetricsSnapshot by_hand;
  for (const std::string& id : {"a", "b"}) {
    Result<std::shared_ptr<const MalivaService>> svc = fleet.ServiceFor(id);
    ASSERT_TRUE(svc.ok());
    by_hand.MergeFrom(svc.value()->metrics_registry()->Snapshot());
  }
  uint64_t merged_count = 0;
  uint64_t by_hand_count = 0;
  for (const MetricsSnapshot::HistogramRow& row : final_stats.metrics.histograms) {
    if (row.name == "maliva_serve_latency_ms") merged_count += row.hist.count;
  }
  for (const MetricsSnapshot::HistogramRow& row : by_hand.histograms) {
    if (row.name == "maliva_serve_latency_ms") by_hand_count += row.hist.count;
  }
  EXPECT_EQ(merged_count, expected);
  EXPECT_EQ(by_hand_count, expected);
}

}  // namespace
}  // namespace maliva
