// Unit tests for storage: Column, Table, sampling.

#include <gtest/gtest.h>

#include "storage/table.h"
#include "util/rng.h"

namespace maliva {
namespace {

Schema TestSchema() {
  return {{"id", ColumnType::kInt64},
          {"price", ColumnType::kDouble},
          {"ts", ColumnType::kTimestamp},
          {"loc", ColumnType::kPoint},
          {"text", ColumnType::kText}};
}

std::unique_ptr<Table> MakeTable(size_t rows) {
  auto t = std::make_unique<Table>("t", TestSchema());
  for (size_t i = 0; i < rows; ++i) {
    t->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(i));
    t->MutableColumnAt(1).AppendDouble(static_cast<double>(i) * 1.5);
    t->MutableColumnAt(2).AppendTimestamp(1000 + static_cast<int64_t>(i));
    t->MutableColumnAt(3).AppendPoint({static_cast<double>(i), -static_cast<double>(i)});
    t->MutableColumnAt(4).AppendText("row " + std::to_string(i));
  }
  EXPECT_TRUE(t->Seal().ok());
  return t;
}

TEST(ColumnTest, TypedAppendAndRead) {
  Column c("x", ColumnType::kInt64);
  c.AppendInt64(5);
  c.AppendInt64(-3);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.Int64At(0), 5);
  EXPECT_EQ(c.Int64At(1), -3);
}

TEST(ColumnTest, NumericAtWidens) {
  Column i("i", ColumnType::kInt64);
  i.AppendInt64(7);
  EXPECT_DOUBLE_EQ(i.NumericAt(0), 7.0);
  Column d("d", ColumnType::kDouble);
  d.AppendDouble(2.5);
  EXPECT_DOUBLE_EQ(d.NumericAt(0), 2.5);
  Column ts("ts", ColumnType::kTimestamp);
  ts.AppendTimestamp(123);
  EXPECT_DOUBLE_EQ(ts.NumericAt(0), 123.0);
}

TEST(ColumnTest, PointAndText) {
  Column p("p", ColumnType::kPoint);
  p.AppendPoint({1.0, 2.0});
  EXPECT_EQ(p.PointAt(0), (GeoPoint{1.0, 2.0}));
  Column t("t", ColumnType::kText);
  t.AppendText("hello");
  EXPECT_EQ(t.TextAt(0), "hello");
}

TEST(TableTest, SchemaAndColumnLookup) {
  auto t = MakeTable(10);
  EXPECT_EQ(t->NumRows(), 10u);
  EXPECT_EQ(t->NumColumns(), 5u);
  Result<size_t> idx = t->ColumnIndex("price");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1u);
  EXPECT_FALSE(t->ColumnIndex("nope").ok());
  EXPECT_EQ(t->GetColumn("ts").type(), ColumnType::kTimestamp);
}

TEST(TableTest, FinishRowValidatesLengths) {
  Table t("t", {{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}});
  t.MutableColumnAt(0).AppendInt64(1);
  EXPECT_FALSE(t.FinishRow().ok());  // column b not appended
  t.MutableColumnAt(1).AppendInt64(2);
  EXPECT_TRUE(t.FinishRow().ok());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, SealRejectsRagged) {
  Table t("t", {{"a", ColumnType::kInt64}, {"b", ColumnType::kInt64}});
  t.MutableColumnAt(0).AppendInt64(1);
  EXPECT_FALSE(t.Seal().ok());
}

TEST(TableTest, SealEmptyOk) {
  Table t("t", TestSchema());
  EXPECT_TRUE(t.Seal().ok());
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST(TableSampleTest, ApproximatesFraction) {
  auto t = MakeTable(10000);
  Rng rng(1);
  auto s = t->Sample(0.2, &rng, "t#s");
  double frac = static_cast<double>(s->NumRows()) / 10000.0;
  EXPECT_NEAR(frac, 0.2, 0.02);
  EXPECT_EQ(s->name(), "t#s");
  EXPECT_EQ(s->NumColumns(), t->NumColumns());
}

TEST(TableSampleTest, PreservesRowValues) {
  auto t = MakeTable(1000);
  Rng rng(2);
  auto s = t->Sample(0.5, &rng, "t#s");
  // Every sampled row must be a faithful copy: id and price stay consistent.
  const Column& ids = s->GetColumn("id");
  const Column& prices = s->GetColumn("price");
  for (RowId r = 0; r < s->NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(prices.DoubleAt(r), static_cast<double>(ids.Int64At(r)) * 1.5);
  }
}

TEST(TableSampleTest, DeterministicPerSeed) {
  auto t = MakeTable(1000);
  Rng rng1(3), rng2(3);
  auto s1 = t->Sample(0.3, &rng1, "a");
  auto s2 = t->Sample(0.3, &rng2, "b");
  ASSERT_EQ(s1->NumRows(), s2->NumRows());
  for (RowId r = 0; r < s1->NumRows(); ++r) {
    EXPECT_EQ(s1->GetColumn("id").Int64At(r), s2->GetColumn("id").Int64At(r));
  }
}

TEST(BoundingBoxTest, ContainsAndIntersects) {
  BoundingBox a{0, 0, 10, 10};
  EXPECT_TRUE(a.Contains({5, 5}));
  EXPECT_TRUE(a.Contains({0, 0}));    // inclusive
  EXPECT_TRUE(a.Contains({10, 10}));  // inclusive
  EXPECT_FALSE(a.Contains({10.01, 5}));
  BoundingBox b{9, 9, 20, 20};
  BoundingBox c{11, 11, 20, 20};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(BoundingBoxTest, UnionExtendArea) {
  BoundingBox a{0, 0, 1, 1};
  BoundingBox u = a.Union({2, 2, 3, 3});
  EXPECT_DOUBLE_EQ(u.max_lon, 3);
  EXPECT_DOUBLE_EQ(u.min_lat, 0);
  BoundingBox e = a.Extend({-1, 0.5});
  EXPECT_DOUBLE_EQ(e.min_lon, -1);
  EXPECT_DOUBLE_EQ(a.Area(), 1.0);
}

TEST(NumericRangeTest, ContainsInclusive) {
  NumericRange r{1.0, 2.0};
  EXPECT_TRUE(r.Contains(1.0));
  EXPECT_TRUE(r.Contains(2.0));
  EXPECT_FALSE(r.Contains(2.0001));
  EXPECT_DOUBLE_EQ(r.Length(), 1.0);
}

TEST(ColumnTypeTest, Names) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt64), "int64");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kText), "text");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kPoint), "point");
}

}  // namespace
}  // namespace maliva
