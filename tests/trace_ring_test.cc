// TraceRing + SloWatchdog tests (ISSUE 10). Suite names carry "TraceRing"
// so the scripts/ci.sh sanitizer legs (-R '...|Metrics|TraceRing') run them.
//
// Covered contracts:
//   * capacity rounds down to a stripe multiple (at least one per stripe)
//     and the ring retains exactly the newest `capacity` events;
//   * TraceEvent::ToJson and ExportJsonLines are golden-stable;
//   * concurrent appends draw unique seqs, never lose the total count, and
//     keep the snapshot bounded;
//   * SloWatchdog evaluates only the newest window_count windows, flags a
//     shed-heavy scenario, leaves a healthy one alone, and never flags a
//     scenario below min_requests;
//   * end to end: a fleet with metrics + admission + trace ring + watchdog
//     records admitted events, and Stats() surfaces an unbreached SLO row.

#include "service/trace_ring.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/service_fleet.h"
#include "workload/scenario.h"

namespace maliva {
namespace {

TraceEvent EventWithFingerprint(uint64_t fp) {
  TraceEvent event;
  event.fingerprint = fp;
  event.scenario = "s";
  event.verdict = "admitted";
  event.cache = "off";
  return event;
}

TEST(TraceRingTest, CapacityRoundsDownToStripeMultiple) {
  TraceRing ring(10, /*stripes=*/4);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.stripes(), 4u);

  // Degenerate shapes: zero capacity still holds one event; stripes clamp
  // to the capacity so no stripe is empty.
  TraceRing tiny(0);
  EXPECT_GE(tiny.capacity(), 1u);
  TraceRing narrow(3, /*stripes=*/8);
  EXPECT_GE(narrow.capacity(), 1u);
  EXPECT_LE(narrow.stripes(), 3u);
}

TEST(TraceRingTest, WrapKeepsNewestEvents) {
  TraceRing ring(4, /*stripes=*/1);
  for (uint64_t i = 0; i < 6; ++i) ring.Append(EventWithFingerprint(i));
  EXPECT_EQ(ring.total_appended(), 6u);
  std::vector<TraceEvent> events = ring.SnapshotEvents();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 2) << "oldest two events must be evicted";
    EXPECT_EQ(events[i].fingerprint, i + 2);
  }
}

TEST(TraceRingTest, EventToJsonGolden) {
  TraceEvent event;
  event.seq = 7;
  event.fingerprint = 0xabc;
  event.scenario = "tweets";
  event.verdict = "admitted";
  event.cache = "hit";
  event.tier_hits[0] = 1;
  event.tier_hits[1] = 2;
  event.tier_hits[2] = 3;
  event.snapshot_version = 5;
  event.queue_wait_ms = 1.25;
  event.serve_ms = 3.5;
  EXPECT_EQ(event.ToJson(),
            "{\"seq\": 7, \"fingerprint\": \"0000000000000abc\", "
            "\"scenario\": \"tweets\", \"verdict\": \"admitted\", "
            "\"cache\": \"hit\", \"tier_hits\": [1, 2, 3], "
            "\"snapshot_version\": 5, \"queue_wait_ms\": 1.250, "
            "\"serve_ms\": 3.500}");
}

TEST(TraceRingTest, ExportJsonLinesOneEventPerLine) {
  TraceRing ring(4, /*stripes=*/1);
  EXPECT_EQ(ring.ExportJsonLines(), "") << "empty ring renders nothing";
  ring.Append(EventWithFingerprint(1));
  ring.Append(EventWithFingerprint(2));
  const std::string jsonl = ring.ExportJsonLines();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  size_t lines = 0;
  for (char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(jsonl.find("\"seq\": 0"), 1u) << "lines come back in seq order";
}

TEST(TraceRingTest, ConcurrentAppendsKeepUniqueSeqsAndBound) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 200;
  TraceRing ring(128, /*stripes=*/8);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        ring.Append(EventWithFingerprint(t * kPerThread + i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(ring.total_appended(), kThreads * kPerThread);
  std::vector<TraceEvent> events = ring.SnapshotEvents();
  EXPECT_EQ(events.size(), ring.capacity());
  std::set<uint64_t> seqs;
  for (const TraceEvent& event : events) {
    EXPECT_LT(event.seq, kThreads * kPerThread);
    seqs.insert(event.seq);
  }
  EXPECT_EQ(seqs.size(), events.size()) << "duplicate seq retained";
}

// ---------------------------------------------------------------- watchdog --

/// One admission-counter row, as the fleet's gate path records it.
MetricsSnapshot::CounterRow AdmissionRow(const std::string& scenario,
                                         const std::string& verdict,
                                         uint64_t value) {
  return {"maliva_admission_total",
          {{"scenario", scenario}, {"verdict", verdict}},
          value};
}

MetricsFlusher::Window WindowOf(std::vector<MetricsSnapshot::CounterRow> rows) {
  MetricsFlusher::Window window;
  window.delta.counters = std::move(rows);
  return window;
}

SloConfig WatchdogConfig() {
  SloConfig config;
  config.enabled = true;
  config.target_hit_rate = 0.95;
  config.window_count = 4;
  config.min_requests = 32;
  return config;
}

TEST(TraceRingSloTest, FlagsShedHeavyScenarioNotSteadyOne) {
  std::vector<MetricsFlusher::Window> windows;
  windows.push_back(WindowOf({AdmissionRow("hot", "admitted", 5),
                              AdmissionRow("hot", "shed_overload", 45),
                              AdmissionRow("steady", "admitted", 98),
                              AdmissionRow("steady", "degraded", 2)}));
  std::vector<SloStatus> statuses = SloWatchdog(WatchdogConfig()).Evaluate(windows);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].scenario, "hot");
  EXPECT_EQ(statuses[0].served, 5u);
  EXPECT_EQ(statuses[0].total, 50u);
  EXPECT_DOUBLE_EQ(statuses[0].hit_rate, 0.1);
  EXPECT_TRUE(statuses[0].breached);
  EXPECT_EQ(statuses[1].scenario, "steady");
  EXPECT_EQ(statuses[1].served, 100u) << "degraded counts as served";
  EXPECT_DOUBLE_EQ(statuses[1].hit_rate, 1.0);
  EXPECT_FALSE(statuses[1].breached);
}

TEST(TraceRingSloTest, BelowMinRequestsNeverBreaches) {
  std::vector<MetricsFlusher::Window> windows;
  windows.push_back(WindowOf({AdmissionRow("cold", "shed_overload", 10)}));
  std::vector<SloStatus> statuses = SloWatchdog(WatchdogConfig()).Evaluate(windows);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].total, 10u);
  EXPECT_DOUBLE_EQ(statuses[0].hit_rate, 0.0);
  EXPECT_FALSE(statuses[0].breached) << "10 verdicts < min_requests 32";
}

TEST(TraceRingSloTest, EvaluatesOnlyNewestWindows) {
  // An old catastrophe followed by recovery: with window_count 1 only the
  // healthy newest window counts.
  std::vector<MetricsFlusher::Window> windows;
  windows.push_back(WindowOf({AdmissionRow("s", "shed_overload", 500)}));
  windows.push_back(WindowOf({AdmissionRow("s", "admitted", 40)}));
  SloConfig config = WatchdogConfig();
  config.window_count = 1;
  std::vector<SloStatus> statuses = SloWatchdog(config).Evaluate(windows);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].total, 40u);
  EXPECT_FALSE(statuses[0].breached);

  // Widen the view to both windows and the burn reappears.
  config.window_count = 4;
  statuses = SloWatchdog(config).Evaluate(windows);
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].total, 540u);
  EXPECT_TRUE(statuses[0].breached);
}

TEST(TraceRingSloTest, NoWindowsMeansNoStatuses) {
  EXPECT_TRUE(SloWatchdog(WatchdogConfig()).Evaluate({}).empty());
}

// ------------------------------------------------------------- integration --

TEST(TraceRingFleetTest, FleetRecordsTracesAndUnbreachedSlo) {
  ScenarioConfig config;
  config.kind = DatasetKind::kTwitter;
  config.num_rows = 8000;
  config.num_queries = 60;
  config.tau_ms = 500.0;
  config.seed = 121;
  Scenario scenario = BuildScenario(config);

  MalivaFleet fleet(
      FleetConfig()
          .WithDefaults(ServiceConfig()
                            .WithTrainerIterations(3)
                            .WithAgentSeeds(1)
                            .WithDefaultStrategy("baseline")
                            .WithMetrics(true))
          .WithWarmupStrategies({"baseline"})
          .WithAdmission(AdmissionConfig().WithEnabled(true).WithSlackFactor(50.0))
          .WithMetricsFlushMs(600000)  // manual FlushNow only in the test
          .WithTraceRingCapacity(64)
          .WithSloWatchdog(true)
          .WithSloMinRequests(4));
  ASSERT_TRUE(fleet.RegisterScenario("tweets", &scenario).ok());
  fleet.WaitWarmups();

  constexpr size_t kRequests = 16;
  for (size_t i = 0; i < kRequests; ++i) {
    RewriteRequest req;
    req.scenario = "tweets";
    req.query = scenario.evaluation[i % scenario.evaluation.size()];
    ASSERT_TRUE(fleet.Serve(req).ok());
  }
  ASSERT_NE(fleet.metrics_flusher(), nullptr);
  fleet.metrics_flusher()->FlushNow();

  const TraceRing* ring = fleet.trace_ring();
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->total_appended(), kRequests);
  std::vector<TraceEvent> events = ring->SnapshotEvents();
  ASSERT_EQ(events.size(), kRequests);
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.scenario, "tweets");
    EXPECT_EQ(event.verdict, "admitted");
    EXPECT_NE(event.fingerprint, 0u);
    EXPECT_GE(event.serve_ms, 0.0);
  }
  size_t lines = 0;
  for (char c : ring->ExportJsonLines()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, kRequests);

  FleetStats stats = fleet.Stats();
  EXPECT_EQ(stats.metrics.CounterSum("maliva_admission_total",
                                     {{"verdict", "admitted"}}),
            kRequests);
  ASSERT_EQ(stats.slo.size(), 1u);
  EXPECT_EQ(stats.slo[0].scenario, "tweets");
  EXPECT_EQ(stats.slo[0].served, kRequests);
  EXPECT_EQ(stats.slo[0].total, kRequests);
  EXPECT_FALSE(stats.slo[0].breached);
}

}  // namespace
}  // namespace maliva
