// Optimizer tests: hint honoring, plan enumeration, estimation structure,
// and the deliberate estimation failures that motivate Maliva.

#include <gtest/gtest.h>

#include "engine/optimizer.h"
#include "test_helpers.h"

namespace maliva {
namespace {

using testing_helpers::SmallEngine;
using testing_helpers::SmallQuery;

TEST(OptimizerTest, FullyHintedPlanIsHonored) {
  auto engine = SmallEngine(2000, 3);
  Query q = SmallQuery(1, "w1", 0, 9999, {0, 0, 100, 50});
  RewriteOption ro;
  ro.hints.index_mask = 0b101;
  PlanSpec spec = engine->optimizer().ResolvePlan(q, ro);
  EXPECT_EQ(spec.index_mask, 0b101u);
}

TEST(OptimizerTest, UnhintedEnumeratesAllMasks) {
  auto engine = SmallEngine(2000, 3);
  Query q = SmallQuery(2, "w1", 0, 9999, {0, 0, 100, 50});
  RewriteOption unhinted;
  std::vector<PlanSpec> plans = engine->optimizer().EnumeratePlans(q, unhinted);
  EXPECT_EQ(plans.size(), 8u);
}

TEST(OptimizerTest, UnhintedPicksMinEstimate) {
  auto engine = SmallEngine(2000, 3);
  Query q = SmallQuery(3, "w2", 4000, 4200, {20, 10, 40, 20});
  const Optimizer& opt = engine->optimizer();
  RewriteOption unhinted;
  PlanSpec chosen = opt.ResolvePlan(q, unhinted);
  double chosen_ms = opt.EstimatePlanTimeMs(q, chosen);
  for (const PlanSpec& spec : opt.EnumeratePlans(q, unhinted)) {
    EXPECT_LE(chosen_ms, opt.EstimatePlanTimeMs(q, spec) + 1e-9);
  }
}

TEST(OptimizerTest, ApproxRuleCarriedThroughResolve) {
  auto engine = SmallEngine(2000, 3);
  Query q = SmallQuery(4, "w1", 0, 9999, {0, 0, 100, 50});
  RewriteOption ro;
  ro.hints.index_mask = 1;
  ro.approx = {ApproxKind::kLimit, 0.1};
  PlanSpec spec = engine->optimizer().ResolvePlan(q, ro);
  EXPECT_EQ(spec.approx.kind, ApproxKind::kLimit);
  EXPECT_DOUBLE_EQ(spec.approx.fraction, 0.1);
}

TEST(OptimizerTest, CardsFromSelectivitiesStructure) {
  auto engine = SmallEngine(2000, 3);
  Query q = SmallQuery(5, "w1", 0, 9999, {0, 0, 100, 50});
  const Optimizer& opt = engine->optimizer();

  SelectivityVector sels;
  sels.base = {0.01, 0.1, 0.5};
  double n_virtual = 2000.0 * engine->profile().cardinality_scale;

  PlanSpec full;
  full.index_mask = 0;
  PlanCards c_full = opt.CardsFromSelectivities(q, full, sels);
  EXPECT_DOUBLE_EQ(c_full.scanned_rows, n_virtual);
  EXPECT_DOUBLE_EQ(c_full.output_rows, n_virtual * 0.01 * 0.1 * 0.5);

  PlanSpec two;
  two.index_mask = 0b011;
  PlanCards c_two = opt.CardsFromSelectivities(q, two, sels);
  ASSERT_EQ(c_two.postings.size(), 2u);
  EXPECT_DOUBLE_EQ(c_two.postings[0], n_virtual * 0.01);
  EXPECT_DOUBLE_EQ(c_two.postings[1], n_virtual * 0.1);
  EXPECT_DOUBLE_EQ(c_two.candidates, n_virtual * 0.001);  // independence
  EXPECT_DOUBLE_EQ(c_two.residual_preds, 1.0);
}

TEST(OptimizerTest, LimitShrinksEstimatedWork) {
  auto engine = SmallEngine(2000, 3);
  Query q = SmallQuery(6, "w1", 0, 9999, {0, 0, 100, 50});
  const Optimizer& opt = engine->optimizer();
  SelectivityVector sels;
  sels.base = {0.1, 0.5, 0.5};

  PlanSpec exact;
  exact.index_mask = 1;
  PlanSpec lim = exact;
  lim.approx = {ApproxKind::kLimit, 0.01};
  PlanCards c_exact = opt.CardsFromSelectivities(q, exact, sels);
  PlanCards c_lim = opt.CardsFromSelectivities(q, lim, sels);
  EXPECT_LT(c_lim.candidates, c_exact.candidates);
  EXPECT_LT(c_lim.output_rows, c_exact.output_rows);
}

TEST(OptimizerTest, SampleTableShrinksVirtualSize) {
  auto engine = SmallEngine(2000, 3);
  Query q = SmallQuery(7, "w1", 0, 9999, {0, 0, 100, 50});
  const Optimizer& opt = engine->optimizer();
  SelectivityVector sels;
  sels.base = {0.1, 0.5, 0.5};
  PlanSpec exact;
  exact.index_mask = 1;
  PlanSpec sampled = exact;
  sampled.approx = {ApproxKind::kSampleTable, 0.2};
  PlanCards c_exact = opt.CardsFromSelectivities(q, exact, sels);
  PlanCards c_sampled = opt.CardsFromSelectivities(q, sampled, sels);
  EXPECT_NEAR(c_sampled.postings[0], 0.2 * c_exact.postings[0], 1e-9);
}

TEST(OptimizerTest, MidTailKeywordUnderestimated) {
  // The motivating failure (paper Fig 1): a bursty keyword outside the MCV
  // list gets the default selectivity, so the optimizer picks the keyword
  // index while the true cost is much higher.
  auto engine = SmallEngine(20000, 17);
  Query probe;
  probe.table = "tweets";
  probe.predicates = {Predicate::Keyword("text", "burst")};
  double est =
      engine->optimizer().EstimatedSelectivities(
          testing_helpers::SmallQuery(8, "burst", 0, 9999, {0, 0, 100, 50})).base[0];
  Result<double> truth = engine->TrueSelectivity("tweets", probe.predicates[0]);
  ASSERT_TRUE(truth.ok());
  // "burst" occurs in ~1.6% of rows but is not among the top-15 tokens.
  EXPECT_GT(truth.value(), 0.005);
  EXPECT_LT(est, truth.value() / 5.0);
}

TEST(OptimizerTest, BaselineMisplansSomeQueries) {
  // End-to-end statement of the phenomenon (paper Fig 1): queries combining a
  // bursty mid-tail keyword (underestimated to the MCV default) with a narrow
  // time window. The truly good plan uses the time index; the optimizer's
  // free choice takes the "cheap-looking" keyword index instead.
  EngineProfile profile = EngineProfile::PostgresLike();
  profile.cardinality_scale = 2000.0;  // emulate a 40M-row deployment
  auto engine = SmallEngine(20000, 17, profile);
  const Optimizer& opt = engine->optimizer();
  RewriteOptionSet options = EnumerateHintOnlyOptions(3);
  size_t misplanned = 0;
  Rng rng(55);
  for (uint64_t id = 0; id < 60; ++id) {
    double t0 = rng.Uniform(5000, 5950);  // inside the burst window
    Query q = testing_helpers::SmallQuery(id, "burst", t0, t0 + 10.0,
                                          {0, 0, 100, 50});
    PlanSpec free = opt.ResolvePlan(q, RewriteOption{});
    double free_ms = engine->ExecutePlan(q, free).value().exec_ms;
    double best_ms = free_ms;
    for (const RewriteOption& ro : options) {
      PlanSpec spec = opt.ResolvePlan(q, ro);
      best_ms = std::min(best_ms, engine->ExecutePlan(q, spec).value().exec_ms);
    }
    if (free_ms > 2.0 * best_ms) ++misplanned;
  }
  EXPECT_GT(misplanned, 10u);
}

}  // namespace
}  // namespace maliva
