// ML substrate tests: gradient correctness (finite differences), learning on
// synthetic regression, replay buffer, epsilon schedule.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/epsilon.h"
#include "ml/mlp.h"
#include "ml/replay_buffer.h"

namespace maliva {
namespace {

TEST(LinearLayerTest, ForwardComputesAffine) {
  Rng rng(1);
  LinearLayer layer(2, 1, &rng);
  std::vector<double> y;
  layer.Forward({1.0, 2.0}, &y);
  ASSERT_EQ(y.size(), 1u);
  double expect = layer.weights()[0] * 1.0 + layer.weights()[1] * 2.0 + layer.bias()[0];
  EXPECT_NEAR(y[0], expect, 1e-12);
}

TEST(MlpTest, OutputDimensions) {
  Rng rng(2);
  Mlp net({5, 8, 8, 3}, &rng);
  EXPECT_EQ(net.input_dim(), 5u);
  EXPECT_EQ(net.output_dim(), 3u);
  EXPECT_EQ(net.Forward({1, 2, 3, 4, 5}).size(), 3u);
  EXPECT_EQ(net.NumParameters(), 5u * 8 + 8 + 8u * 8 + 8 + 8u * 3 + 3);
}

TEST(MlpTest, DeterministicInit) {
  Rng rng1(3), rng2(3);
  Mlp a({4, 6, 2}, &rng1);
  Mlp b({4, 6, 2}, &rng2);
  std::vector<double> x{0.1, -0.2, 0.3, 0.4};
  EXPECT_EQ(a.Forward(x), b.Forward(x));
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  // Compare the analytic loss decrease direction against finite differences
  // through a full accumulate/step cycle on a frozen copy.
  Rng rng(5);
  Mlp net({3, 5, 2}, &rng);
  std::vector<double> x{0.5, -1.0, 2.0};
  int action = 1;
  double target = 0.7;

  auto loss = [&](const Mlp& m) {
    double q = m.Forward(x)[static_cast<size_t>(action)];
    return (q - target) * (q - target);
  };

  double before = loss(net);
  net.AccumulateGradient(x, action, target);
  net.Step(1e-3, 1);
  double after = loss(net);
  EXPECT_LT(after, before);  // one small Adam step must reduce the loss
}

TEST(MlpTest, AccumulateReturnsSquaredError) {
  Rng rng(6);
  Mlp net({2, 4, 2}, &rng);
  std::vector<double> x{1.0, 1.0};
  double q = net.Forward(x)[0];
  double se = net.AccumulateGradient(x, 0, q + 2.0);
  EXPECT_NEAR(se, 4.0, 1e-9);
  net.Step(1e-3, 1);
}

TEST(MlpTest, LearnsLinearRegression) {
  // y = 2*x0 - x1 on [-1,1]^2; a small MLP should fit well.
  Rng rng(7);
  Mlp net({2, 16, 16, 1}, &rng);
  Rng data_rng(8);
  for (int step = 0; step < 3000; ++step) {
    for (int b = 0; b < 8; ++b) {
      double x0 = data_rng.Uniform(-1, 1);
      double x1 = data_rng.Uniform(-1, 1);
      net.AccumulateGradient({x0, x1}, 0, 2.0 * x0 - x1);
    }
    net.Step(3e-3, 8);
  }
  double mse = 0.0;
  for (int i = 0; i < 200; ++i) {
    double x0 = data_rng.Uniform(-1, 1);
    double x1 = data_rng.Uniform(-1, 1);
    double pred = net.Forward({x0, x1})[0];
    double err = pred - (2.0 * x0 - x1);
    mse += err * err;
  }
  mse /= 200.0;
  EXPECT_LT(mse, 0.02);
}

TEST(MlpTest, LearnsNonlinearFunction) {
  // y = x0 * x1 requires the hidden layers (not linearly representable).
  Rng rng(9);
  Mlp net({2, 24, 24, 1}, &rng);
  Rng data_rng(10);
  for (int step = 0; step < 6000; ++step) {
    for (int b = 0; b < 8; ++b) {
      double x0 = data_rng.Uniform(-1, 1);
      double x1 = data_rng.Uniform(-1, 1);
      net.AccumulateGradient({x0, x1}, 0, x0 * x1);
    }
    net.Step(3e-3, 8);
  }
  double mse = 0.0;
  for (int i = 0; i < 200; ++i) {
    double x0 = data_rng.Uniform(-1, 1);
    double x1 = data_rng.Uniform(-1, 1);
    double err = net.Forward({x0, x1})[0] - x0 * x1;
    mse += err * err;
  }
  mse /= 200.0;
  EXPECT_LT(mse, 0.03);
}

TEST(MlpTest, PerActionGradientIsolation) {
  // Training output 0 must not change output 1 much more than output 0.
  Rng rng(11);
  Mlp net({2, 8, 2}, &rng);
  std::vector<double> x{0.3, 0.7};
  double q1_before = net.Forward(x)[1];
  double q0_before = net.Forward(x)[0];
  for (int i = 0; i < 200; ++i) {
    net.AccumulateGradient(x, 0, q0_before + 1.0);
    net.Step(1e-2, 1);
  }
  double q0_after = net.Forward(x)[0];
  double q1_after = net.Forward(x)[1];
  EXPECT_GT(std::abs(q0_after - q0_before), 0.5);
  // Output 1 shares hidden layers so it may drift, but far less.
  EXPECT_LT(std::abs(q1_after - q1_before), std::abs(q0_after - q0_before));
}

TEST(MlpTest, CopyParamsMakesNetworksIdentical) {
  Rng rng1(12), rng2(13);
  Mlp a({3, 6, 2}, &rng1);
  Mlp b({3, 6, 2}, &rng2);
  std::vector<double> x{1, 2, 3};
  EXPECT_NE(a.Forward(x), b.Forward(x));
  b.CopyParamsFrom(a);
  EXPECT_EQ(a.Forward(x), b.Forward(x));
}

TEST(ReplayBufferTest, FifoEviction) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) {
    Experience e;
    e.reward = static_cast<double>(i);
    buf.Add(std::move(e));
  }
  EXPECT_EQ(buf.size(), 3u);
  // Items 0 and 1 were overwritten by 3 and 4.
  Rng rng(1);
  std::vector<const Experience*> all = buf.Sample(3, &rng);
  double min_reward = 100;
  for (const Experience* e : all) min_reward = std::min(min_reward, e->reward);
  EXPECT_GE(min_reward, 2.0);
}

TEST(ReplayBufferTest, SampleSizeCapped) {
  ReplayBuffer buf(10);
  Experience e;
  buf.Add(e);
  buf.Add(e);
  Rng rng(2);
  EXPECT_EQ(buf.Sample(5, &rng).size(), 2u);
  EXPECT_TRUE(ReplayBuffer(4).Sample(2, &rng).empty());
}

TEST(EpsilonScheduleTest, DecaysFromStartToEnd) {
  EpsilonSchedule eps(1.0, 0.05, 100);
  EXPECT_NEAR(eps.ValueAt(0), 1.0, 1e-9);
  EXPECT_LT(eps.ValueAt(100), eps.ValueAt(10));
  EXPECT_NEAR(eps.ValueAt(100000), 0.05, 1e-6);
}

TEST(EpsilonScheduleTest, MonotoneNonIncreasing) {
  EpsilonSchedule eps(0.9, 0.1, 50);
  double prev = 1.0;
  for (int64_t t = 0; t < 500; t += 10) {
    double v = eps.ValueAt(t);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

}  // namespace
}  // namespace maliva
