// Online learning plane tests at the service layer. The suite name carries
// "Service" so the scripts/ci.sh sanitizer legs (-R 'Service|Concurrency')
// run it — the serve+retrain stress test below is the TSan/ASan coverage of
// the ModelRegistry / ContinualTrainer / ShardedReplaySink interplay.
//
// Covered contracts:
//   * off (default): ServeBatch results stay byte-identical at 1/4/8
//     threads, and online-on-before-any-retrain serves decisions identical
//     to the frozen service (snapshot v1 is a faithful clone);
//   * snapshot versions only move up under concurrent serve + background
//     retrain pressure;
//   * a failed validation gate leaves the serving snapshot untouched, and
//     ModelRegistry::Rollback restores the predecessor (never past v1);
//   * ServiceConfig::Validate() rejects online-knob pathologies.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "service/service.h"

namespace maliva {
namespace {

class ServiceOnlineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 20000;
    cfg.num_queries = 120;
    cfg.tau_ms = 500.0;
    cfg.seed = 151;
    scenario_ = new Scenario(BuildScenario(cfg));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static ServiceConfig SmallConfig() {
    return ServiceConfig().WithTrainerIterations(3).WithAgentSeeds(1);
  }

  static std::vector<RewriteRequest> MdpRequests(size_t n) {
    std::vector<RewriteRequest> requests;
    requests.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      RewriteRequest req;
      req.query = scenario_->evaluation[i % scenario_->evaluation.size()];
      req.strategy = "mdp/accurate";
      requests.push_back(req);
    }
    return requests;
  }

  static void ExpectSameDecision(const Result<RewriteResponse>& a,
                                 const Result<RewriteResponse>& b) {
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code());
      return;
    }
    const RewriteResponse& ra = a.value();
    const RewriteResponse& rb = b.value();
    EXPECT_EQ(ra.strategy, rb.strategy);
    EXPECT_EQ(ra.rewritten_sql, rb.rewritten_sql);
    EXPECT_EQ(ra.outcome.option_index, rb.outcome.option_index);
    EXPECT_EQ(ra.outcome.planning_ms, rb.outcome.planning_ms);
    EXPECT_EQ(ra.outcome.exec_ms, rb.outcome.exec_ms);
    EXPECT_EQ(ra.outcome.total_ms, rb.outcome.total_ms);
    EXPECT_EQ(ra.outcome.viable, rb.outcome.viable);
    EXPECT_EQ(ra.outcome.steps, rb.outcome.steps);
    EXPECT_EQ(ra.outcome.quality, rb.outcome.quality);
  }

  static Scenario* scenario_;
};

Scenario* ServiceOnlineTest::scenario_ = nullptr;

TEST_F(ServiceOnlineTest, OffModeStaysByteIdenticalAcrossThreadCounts) {
  // Regression of the PR 2/3 contract with the online code paths compiled
  // in but disabled: identical results at 1/4/8 threads, no online
  // telemetry, no snapshot versions on responses.
  std::vector<RewriteRequest> requests = MdpRequests(48);
  std::vector<Result<RewriteResponse>> reference;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    MalivaService service(scenario_, SmallConfig().WithNumThreads(threads));
    ASSERT_TRUE(service.Warmup({"mdp/accurate"}).ok());
    std::vector<Result<RewriteResponse>> responses = service.ServeBatch(requests);
    ASSERT_EQ(responses.size(), requests.size());
    for (const Result<RewriteResponse>& resp : responses) {
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      EXPECT_EQ(resp.value().stats.agent_snapshot_version, 0u);
    }
    if (threads == 1) {
      reference = std::move(responses);
    } else {
      for (size_t i = 0; i < requests.size(); ++i) {
        ExpectSameDecision(reference[i], responses[i]);
      }
    }
    ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.online_snapshot_version, 0u);
    EXPECT_EQ(stats.online_transitions, 0u);
    EXPECT_EQ(stats.online_retrains, 0u);
    EXPECT_EQ(service.online_trainer(), nullptr);
    EXPECT_EQ(service.model_registry(), nullptr);
  }
}

TEST_F(ServiceOnlineTest, SnapshotV1ServesDecisionsIdenticalToFrozen) {
  MalivaService frozen(scenario_, SmallConfig());
  // No background workers: the plane is on but no round can fire, so the
  // online service keeps serving the offline warm-up clone.
  MalivaService online(scenario_, SmallConfig()
                                      .WithOnlineLearning(true)
                                      .WithOnlineTrainerThreads(0));
  ASSERT_TRUE(frozen.Warmup({"mdp/accurate"}).ok());
  ASSERT_TRUE(online.Warmup({"mdp/accurate"}).ok());

  std::vector<RewriteRequest> requests = MdpRequests(32);
  std::vector<Result<RewriteResponse>> a = frozen.ServeBatch(requests);
  std::vector<Result<RewriteResponse>> b = online.ServeBatch(requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameDecision(a[i], b[i]);
    ASSERT_TRUE(b[i].ok());
    EXPECT_EQ(b[i].value().stats.agent_snapshot_version, 1u);
  }

  ServiceStats stats = online.Stats();
  EXPECT_EQ(stats.online_snapshot_version, 1u);
  EXPECT_GT(stats.online_transitions, 0u);  // feedback flows even before retrains
  EXPECT_EQ(stats.online_retrains, 0u);
  ASSERT_NE(online.model_registry(), nullptr);
  EXPECT_EQ(online.model_registry()->CurrentVersion("agent/exact-accurate"), 1u);
}

TEST_F(ServiceOnlineTest, SnapshotVersionMonotonicUnderServeRetrainStress) {
  // 8 serving threads + background fine-tunes with a low trigger threshold:
  // versions observed by requests and by Stats() must only move up. This is
  // the suite's TSan/ASan stress leg.
  MalivaService service(scenario_, SmallConfig()
                                       .WithOnlineLearning(true)
                                       .WithOnlineMinTransitions(64)
                                       .WithOnlineGradientSteps(8)
                                       .WithOnlineGateTolerance(10.0)
                                       .WithNumThreads(8));
  ASSERT_TRUE(service.Warmup({"mdp/accurate"}).ok());

  std::vector<RewriteRequest> requests = MdpRequests(64);
  uint64_t last_version = 0;
  for (int round = 0; round < 6; ++round) {
    std::vector<Result<RewriteResponse>> responses = service.ServeBatch(requests);
    for (const Result<RewriteResponse>& resp : responses) {
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      EXPECT_GE(resp.value().stats.agent_snapshot_version, 1u);
    }
    uint64_t version = service.Stats().online_snapshot_version;
    EXPECT_GE(version, last_version);
    last_version = version;
  }
  service.online_trainer()->WaitIdle();

  ServiceStats stats = service.Stats();
  EXPECT_GE(stats.online_snapshot_version, last_version);
  EXPECT_GT(stats.online_transitions, 0u);
  // The gate tolerance is wide open, so crossing the trigger threshold six
  // batches in a row must have published at least one fine-tune.
  EXPECT_GE(stats.online_retrains, 1u);
  EXPECT_EQ(stats.online_snapshot_version, 1u + stats.online_retrains);
}

TEST_F(ServiceOnlineTest, FailedValidationGateKeepsServingOldSnapshot) {
  // Strict gate + adversarial feedback: the fine-tuned clone must validate
  // below the warm-up bar, so the round consumes the feedback, rejects the
  // clone, and leaves version 1 live. The poison teaches the clone to
  // *invert* the incumbent's preferences (reward -5 for its best action, +5
  // for its worst, over random states) — a reliably terrible policy on any
  // scenario, unlike "absurd learning rate" destruction, whose degenerate
  // fixed-order policies can accidentally score well on easy validation
  // splits. One Record call keeps the reservoir order deterministic.
  // 16 rewrite options under a 250ms budget make exploration order matter.
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 20000;
  cfg.num_queries = 120;
  cfg.num_attrs = 4;  // 16 rewrite options
  cfg.tau_ms = 250.0;
  cfg.seed = 151;
  Scenario scenario = BuildScenario(cfg);
  MalivaService service(&scenario, SmallConfig()
                                       .WithTrainerIterations(6)
                                       .WithNumThreads(1)
                                       .WithOnlineLearning(true)
                                       .WithOnlineGradientSteps(256)
                                       .WithOnlineLearningRate(1e-2)
                                       .WithOnlineGateTolerance(0.0)
                                       .WithOnlineTrainerThreads(0));
  ASSERT_TRUE(service.Warmup({"mdp/accurate"}).ok());
  const std::string key = "agent/exact-accurate";
  PublishedModel incumbent = service.online_trainer()->Current(key);
  ASSERT_TRUE(incumbent);
  const size_t num_actions = incumbent.agent->num_actions();
  const size_t feature_dim = 2 * num_actions + 1;

  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<Experience> poison;
  for (int i = 0; i < 512; ++i) {
    std::vector<double> state(feature_dim);
    for (double& v : state) v = uniform(gen);
    std::vector<double> q = incumbent.agent->QValues(state);
    size_t best = 0;
    size_t worst = 0;
    for (size_t a = 1; a < q.size(); ++a) {
      if (q[a] > q[best]) best = a;
      if (q[a] < q[worst]) worst = a;
    }
    Experience bad;
    bad.state = state;
    bad.action = static_cast<int>(best);
    bad.reward = -5.0;
    bad.terminal = true;
    bad.next_state = state;
    bad.next_valid.assign(num_actions, 0);
    Experience good = bad;
    good.action = static_cast<int>(worst);
    good.reward = 5.0;
    poison.push_back(std::move(bad));
    poison.push_back(std::move(good));
  }
  service.online_trainer()->Record(key, std::move(poison));
  ASSERT_GT(service.Stats().online_transitions_pending, 0u);

  EXPECT_FALSE(service.online_trainer()->RetrainNow(key));

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.online_rejected, 1u);
  EXPECT_EQ(stats.online_retrains, 0u);
  EXPECT_EQ(stats.online_snapshot_version, 1u);
  EXPECT_LT(stats.last_retrain_reward_post, stats.last_retrain_reward_pre);
  EXPECT_EQ(stats.online_transitions_pending, 0u);  // feedback was consumed

  // Requests keep being served by the untouched version-1 snapshot.
  RewriteRequest req;
  req.query = scenario.evaluation[0];
  req.strategy = "mdp/accurate";
  Result<RewriteResponse> resp = service.Serve(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().stats.agent_snapshot_version, 1u);
}

TEST_F(ServiceOnlineTest, RegistryRollbackRestoresPredecessorButNeverV1) {
  MalivaService service(scenario_, SmallConfig()
                                       .WithOnlineLearning(true)
                                       .WithOnlineTrainerThreads(0)
                                       .WithOnlineGradientSteps(4)
                                       .WithOnlineGateTolerance(10.0));
  ASSERT_TRUE(service.Warmup({"mdp/accurate"}).ok());
  ModelRegistry* registry = service.model_registry();
  ASSERT_NE(registry, nullptr);
  const std::string key = "agent/exact-accurate";

  // Publish version 2 through a real (wide-open gate) fine-tune round.
  std::vector<RewriteRequest> requests = MdpRequests(32);
  for (const Result<RewriteResponse>& resp : service.ServeBatch(requests)) {
    ASSERT_TRUE(resp.ok());
  }
  ASSERT_TRUE(service.online_trainer()->RetrainNow(key));
  ASSERT_EQ(registry->CurrentVersion(key), 2u);
  ASSERT_EQ(registry->ChainLength(key), 2u);
  EXPECT_EQ(registry->Current(key).snapshot->meta().retrain_round, 1u);

  // Rollback restores version 1; requests in flight would keep their own
  // shared_ptr, new requests see the predecessor.
  EXPECT_TRUE(registry->Rollback(key));
  EXPECT_EQ(registry->CurrentVersion(key), 1u);
  Result<RewriteResponse> resp = service.Serve(requests[0]);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().stats.agent_snapshot_version, 1u);

  // The offline warm-up snapshot is never rolled back away.
  EXPECT_FALSE(registry->Rollback(key));
  EXPECT_EQ(registry->CurrentVersion(key), 1u);
  EXPECT_FALSE(registry->Rollback("definitely/unknown-key"));

  // A later publish does not reuse the rolled-back version number.
  for (const Result<RewriteResponse>& r : service.ServeBatch(requests)) {
    ASSERT_TRUE(r.ok());
  }
  ASSERT_TRUE(service.online_trainer()->RetrainNow(key));
  EXPECT_EQ(registry->CurrentVersion(key), 3u);
}

TEST_F(ServiceOnlineTest, BoundedSnapshotChainKeepsWarmupFloorAndNewest) {
  // ServiceConfig::online_max_snapshots bounds each agent key's chain: a
  // long-running online shard must not accumulate every model it ever
  // published. Version 1 (the rollback floor) and the newest versions stay;
  // older middles are pruned on publish.
  MalivaService service(scenario_, SmallConfig()
                                       .WithOnlineLearning(true)
                                       .WithOnlineTrainerThreads(0)
                                       .WithOnlineGradientSteps(4)
                                       .WithOnlineGateTolerance(10.0)
                                       .WithOnlineMaxSnapshots(3));
  ASSERT_TRUE(service.Warmup({"mdp/accurate"}).ok());
  ModelRegistry* registry = service.model_registry();
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->max_retained_per_key(), 3u);
  const std::string key = "agent/exact-accurate";

  // Five wide-open-gate fine-tune rounds publish versions 2..6.
  std::vector<RewriteRequest> requests = MdpRequests(32);
  for (int round = 0; round < 5; ++round) {
    for (const Result<RewriteResponse>& resp : service.ServeBatch(requests)) {
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    }
    ASSERT_TRUE(service.online_trainer()->RetrainNow(key));
  }
  EXPECT_EQ(registry->CurrentVersion(key), 6u);
  EXPECT_EQ(registry->ChainLength(key), 3u);  // v1 + the newest two

  // Rolling back walks the retained versions and stops at the warm-up
  // floor: 6 -> 5 -> 1 (the pruned middles 2..4 are gone), never past v1.
  EXPECT_TRUE(registry->Rollback(key));
  EXPECT_EQ(registry->CurrentVersion(key), 5u);
  EXPECT_TRUE(registry->Rollback(key));
  EXPECT_EQ(registry->CurrentVersion(key), 1u);
  EXPECT_FALSE(registry->Rollback(key));
  EXPECT_EQ(registry->CurrentVersion(key), 1u);
}

TEST_F(ServiceOnlineTest, ValidateRejectsOnlinePathologies) {
  EXPECT_TRUE(ServiceConfig().WithOnlineLearning(true).Validate().ok());

  auto expect_invalid = [](const ServiceConfig& config) {
    Status st = config.Validate();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
  };
  expect_invalid(ServiceConfig().WithOnlineLearning(true).WithOnlineMinTransitions(0));
  expect_invalid(ServiceConfig().WithOnlineLearning(true).WithOnlineReplayCapacity(0));
  expect_invalid(ServiceConfig().WithOnlineLearning(true).WithOnlineReplayShards(0));
  expect_invalid(ServiceConfig()
                     .WithOnlineLearning(true)
                     .WithOnlineReplayCapacity(4)
                     .WithOnlineReplayShards(8));
  // A trigger threshold the bounded sink can never reach would make the
  // plane silently inert.
  expect_invalid(ServiceConfig()
                     .WithOnlineLearning(true)
                     .WithOnlineReplayCapacity(256)
                     .WithOnlineMinTransitions(512));
  expect_invalid(ServiceConfig().WithOnlineLearning(true).WithOnlineGradientSteps(0));
  expect_invalid(
      ServiceConfig().WithOnlineLearning(true).WithOnlineLearningRate(0.0));
  expect_invalid(
      ServiceConfig().WithOnlineLearning(true).WithOnlineLearningRate(-1.0));
  expect_invalid(
      ServiceConfig().WithOnlineLearning(true).WithOnlineGateTolerance(-0.5));
  expect_invalid(ServiceConfig().WithOnlineLearning(true).WithOnlineTrainerThreads(
      static_cast<size_t>(-1)));
  // The snapshot-chain bound needs room for the warm-up floor (version 1)
  // plus the serving head.
  expect_invalid(ServiceConfig().WithOnlineLearning(true).WithOnlineMaxSnapshots(0));
  expect_invalid(ServiceConfig().WithOnlineLearning(true).WithOnlineMaxSnapshots(1));
  EXPECT_TRUE(ServiceConfig().WithOnlineLearning(true).WithOnlineMaxSnapshots(2).Validate().ok());
  // Trainer fields the fine-tune rounds copy are guarded too (a zero
  // target_sync_every would be a modulo divisor of zero).
  {
    ServiceConfig config = ServiceConfig().WithOnlineLearning(true);
    config.trainer.target_sync_every = 0;
    expect_invalid(config);
    EXPECT_TRUE(ServiceConfig{config}.WithOnlineLearning(false).Validate().ok());
  }
  {
    ServiceConfig config = ServiceConfig().WithOnlineLearning(true);
    config.trainer.batch_size = 0;
    expect_invalid(config);
  }

  // With the plane off, online knob values are inert and not rejected.
  EXPECT_TRUE(ServiceConfig().WithOnlineMinTransitions(0).Validate().ok());
}

TEST_F(ServiceOnlineTest, NonAgentStrategiesServeFrozenUnderOnlineMode) {
  MalivaService service(scenario_, SmallConfig()
                                       .WithOnlineLearning(true)
                                       .WithOnlineTrainerThreads(0));
  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  for (const char* strategy : {"baseline", "naive", "bao"}) {
    req.strategy = strategy;
    Result<RewriteResponse> resp = service.Serve(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp.value().stats.agent_snapshot_version, 0u);
  }
  EXPECT_EQ(service.Stats().online_transitions, 0u);
}

}  // namespace
}  // namespace maliva
