// Concurrent serving core tests: parallel ServeBatch byte-equality with
// sequential serving, Warmup semantics, and the per-request session plumbing.
// The suite name carries "Concurrency" so scripts/ci.sh --tsan picks it up
// (ctest -R 'Service|Concurrency').

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/rewrite_session.h"
#include "service/service.h"
#include "util/thread_pool.h"

namespace maliva {
namespace {

class ServiceConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 20000;
    cfg.num_queries = 120;
    cfg.tau_ms = 500.0;
    cfg.seed = 97;
    cfg.approx_sample_rates = {0.2, 0.4};
    scenario_ = new Scenario(BuildScenario(cfg));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  /// Cheap training so every strategy can be built in-test.
  static ServiceConfig SmallConfig() {
    return ServiceConfig()
        .WithTrainerIterations(3)
        .WithAgentSeeds(1)
        .WithApproxRules({{ApproxKind::kSampleTable, 0.2},
                          {ApproxKind::kSampleTable, 0.4}});
  }

  /// >= 200 mixed requests cycling strategies, default-strategy requests,
  /// per-request tau overrides, quality floors, and invalid inputs — the
  /// parallel path must reproduce every response AND every error.
  static std::vector<RewriteRequest> MixedRequests(size_t n) {
    const char* strategies[] = {"baseline",          "naive",
                                "mdp/accurate",      "mdp/sampling",
                                "bao",               "quality/one-stage",
                                "quality/two-stage", ""};  // "" = default
    std::vector<RewriteRequest> requests;
    requests.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      RewriteRequest req;
      req.query = scenario_->evaluation[i % scenario_->evaluation.size()];
      req.strategy = strategies[i % (sizeof(strategies) / sizeof(strategies[0]))];
      if (i % 5 == 0) req.tau_ms = 250.0 + 25.0 * static_cast<double>(i % 20);
      if (i % 7 == 0) req.quality_floor = 0.9;
      if (i % 31 == 0) req.strategy = "definitely/not-a-strategy";  // NotFound
      if (i % 41 == 0) req.tau_ms = -1.0;                           // InvalidArgument
      requests.push_back(req);
    }
    return requests;
  }

  static void ExpectByteIdentical(const Result<RewriteResponse>& a,
                                  const Result<RewriteResponse>& b) {
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), b.status().code());
      EXPECT_EQ(a.status().message(), b.status().message());
      return;
    }
    const RewriteResponse& ra = a.value();
    const RewriteResponse& rb = b.value();
    EXPECT_EQ(ra.strategy, rb.strategy);
    EXPECT_EQ(ra.rewritten_sql, rb.rewritten_sql);
    EXPECT_EQ(ra.exact_fallback, rb.exact_fallback);
    // Exact (not approximate) double comparisons: the guarantee is
    // byte-identity, not closeness.
    EXPECT_EQ(ra.outcome.option_index, rb.outcome.option_index);
    EXPECT_EQ(ra.outcome.planning_ms, rb.outcome.planning_ms);
    EXPECT_EQ(ra.outcome.exec_ms, rb.outcome.exec_ms);
    EXPECT_EQ(ra.outcome.total_ms, rb.outcome.total_ms);
    EXPECT_EQ(ra.outcome.viable, rb.outcome.viable);
    EXPECT_EQ(ra.outcome.steps, rb.outcome.steps);
    EXPECT_EQ(ra.outcome.quality, rb.outcome.quality);
    EXPECT_EQ(ra.outcome.approximate, rb.outcome.approximate);
  }

  static Scenario* scenario_;
};

Scenario* ServiceConcurrencyTest::scenario_ = nullptr;

TEST_F(ServiceConcurrencyTest, ParallelServeBatchMatchesSequentialByteForByte) {
  // Identical seeded training produces identical agents in both services, so
  // the 8-thread batch must reproduce the sequential responses exactly —
  // including the interleaved error responses.
  MalivaService sequential(scenario_, SmallConfig().WithNumThreads(1));
  MalivaService parallel(scenario_, SmallConfig().WithNumThreads(8));

  std::vector<RewriteRequest> requests = MixedRequests(200);
  std::vector<Result<RewriteResponse>> seq = sequential.ServeBatch(requests);
  std::vector<Result<RewriteResponse>> par = parallel.ServeBatch(requests);

  ASSERT_EQ(seq.size(), requests.size());
  ASSERT_EQ(par.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectByteIdentical(seq[i], par[i]);
  }
}

TEST_F(ServiceConcurrencyTest, ParallelServeBatchMatchesIndividualServeCalls) {
  // One service, already warm: the batch fan-out must equal request-order
  // Serve calls on the same instance.
  MalivaService service(scenario_, SmallConfig().WithNumThreads(8));
  ASSERT_TRUE(service.Warmup({"baseline", "mdp/accurate", "naive"}).ok());

  std::vector<RewriteRequest> requests;
  for (size_t i = 0; i < 60; ++i) {
    RewriteRequest req;
    req.query = scenario_->evaluation[i % scenario_->evaluation.size()];
    req.strategy = (i % 3 == 0) ? "baseline" : (i % 3 == 1) ? "mdp/accurate" : "naive";
    requests.push_back(req);
  }

  std::vector<Result<RewriteResponse>> batch = service.ServeBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectByteIdentical(service.Serve(requests[i]), batch[i]);
  }
}

TEST_F(ServiceConcurrencyTest, WarmupIsIdempotent) {
  MalivaService service(scenario_, SmallConfig());
  ASSERT_TRUE(service.Warmup({"baseline", "mdp/accurate"}).ok());

  Result<const Rewriter*> first = service.GetRewriter("mdp/accurate");
  ASSERT_TRUE(first.ok());

  // Second warm-up is a no-op: no retraining, same instances.
  ASSERT_TRUE(service.Warmup({"baseline", "mdp/accurate"}).ok());
  Result<const Rewriter*> second = service.GetRewriter("mdp/accurate");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());

  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "mdp/accurate";
  EXPECT_TRUE(service.Serve(req).ok());
}

TEST_F(ServiceConcurrencyTest, WarmupAllSkipsUnavailableStrategies) {
  // No approx rules: "quality/*" cannot build (FailedPrecondition), but the
  // blanket warm-up still succeeds and warms everything else.
  MalivaService service(scenario_,
                        ServiceConfig().WithTrainerIterations(2).WithAgentSeeds(1));
  ASSERT_TRUE(service.Warmup().ok());
  EXPECT_TRUE(service.GetRewriter("mdp/accurate").ok());
  EXPECT_FALSE(service.GetRewriter("quality/one-stage").ok());
}

TEST_F(ServiceConcurrencyTest, WarmupFailsOnExplicitlyNamedUnknownStrategy) {
  MalivaService service(scenario_, SmallConfig());
  Status st = service.Warmup({"definitely/not-a-strategy"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
}

TEST_F(ServiceConcurrencyTest, UnknownStrategyErrorListsKnownStrategies) {
  MalivaService service(scenario_, SmallConfig());
  RewriteRequest req;
  req.query = scenario_->evaluation[0];
  req.strategy = "definitely/not-a-strategy";
  Result<RewriteResponse> resp = service.Serve(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.status().code(), Status::Code::kNotFound);
  // The message names the bad key and every valid one.
  EXPECT_NE(resp.status().message().find("definitely/not-a-strategy"),
            std::string::npos);
  for (const std::string& known : RewriterFactory::Global().KnownStrategies()) {
    EXPECT_NE(resp.status().message().find(known), std::string::npos)
        << "error message should list known strategy " << known;
  }
}

TEST_F(ServiceConcurrencyTest, NanRequestFieldsAreRejected) {
  MalivaService service(scenario_, SmallConfig());
  const double nan = std::numeric_limits<double>::quiet_NaN();

  RewriteRequest bad_tau;
  bad_tau.query = scenario_->evaluation[0];
  bad_tau.strategy = "baseline";
  bad_tau.tau_ms = nan;
  EXPECT_EQ(service.Serve(bad_tau).status().code(), Status::Code::kInvalidArgument);

  RewriteRequest bad_floor;
  bad_floor.query = scenario_->evaluation[0];
  bad_floor.strategy = "baseline";
  bad_floor.quality_floor = nan;
  EXPECT_EQ(service.Serve(bad_floor).status().code(),
            Status::Code::kInvalidArgument);
}

TEST_F(ServiceConcurrencyTest, SessionSeedsDeriveFromRequestIndexNotThreadOrder) {
  // The per-request seed mapping is a pure function of (base, index): no
  // dependence on which worker serves the request or in what order.
  const uint64_t base = 1234567;
  EXPECT_EQ(RewriteSession::SeedFor(base, 0), RewriteSession::SeedFor(base, 0));
  EXPECT_NE(RewriteSession::SeedFor(base, 0), RewriteSession::SeedFor(base, 1));
  EXPECT_NE(RewriteSession::SeedFor(base, 1), RewriteSession::SeedFor(base, 2));
  EXPECT_NE(RewriteSession::SeedFor(base + 1, 0), RewriteSession::SeedFor(base, 0));
}

TEST_F(ServiceConcurrencyTest, ThreadPoolRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace maliva
