// Tests for the cost model: monotonicity, composition, and the calibrated
// regimes DESIGN.md promises (full scan >> viable index plans).

#include <gtest/gtest.h>

#include "engine/cost_model.h"

namespace maliva {
namespace {

CostModel DefaultModel() { return CostModel(EngineProfile::PostgresLike()); }

TEST(CostModelTest, EmptyCardsCostNothing) {
  PlanCards cards;
  EXPECT_DOUBLE_EQ(DefaultModel().PlanTimeMs(cards), 0.0);
}

TEST(CostModelTest, FullScanScalesWithRows) {
  CostModel m = DefaultModel();
  PlanCards a, b;
  a.scanned_rows = 1e6;
  a.scan_preds = 3;
  b = a;
  b.scanned_rows = 2e6;
  EXPECT_NEAR(m.PlanTimeMs(b), 2.0 * m.PlanTimeMs(a), 1e-9);
}

TEST(CostModelTest, FullScanOf100MRowsIsTensOfSeconds) {
  CostModel m = DefaultModel();
  PlanCards cards;
  cards.scanned_rows = 1e8;
  cards.scan_preds = 3;
  double ms = m.PlanTimeMs(cards);
  EXPECT_GT(ms, 30000.0);   // far beyond any interactive budget
  EXPECT_LT(ms, 300000.0);  // but not absurd
}

TEST(CostModelTest, SelectiveIndexPlanIsInteractive) {
  // A single-index plan over ~50k virtual candidates should fit in ~500ms.
  CostModel m = DefaultModel();
  PlanCards cards;
  cards.postings = {5e4};
  cards.candidates = 5e4;
  cards.residual_preds = 2;
  cards.output_rows = 1e3;
  EXPECT_LT(m.PlanTimeMs(cards), 500.0);
  EXPECT_GT(m.PlanTimeMs(cards), 10.0);
}

TEST(CostModelTest, UnselectiveIndexPlanBlowsBudget) {
  CostModel m = DefaultModel();
  PlanCards cards;
  cards.postings = {2e6};  // keyword with selectivity 0.02 over 100M rows
  cards.candidates = 2e6;
  cards.residual_preds = 2;
  cards.output_rows = 1e4;
  EXPECT_GT(m.PlanTimeMs(cards), 2000.0);
}

TEST(CostModelTest, IntersectionChargedOnlyForMultipleLists) {
  CostModel m = DefaultModel();
  PlanCards one;
  one.postings = {1e5};
  PlanCards two;
  two.postings = {5e4, 5e4};
  // Same total postings, but the two-list plan pays probe + intersection.
  EXPECT_GT(m.SelectionTimeMs(two), m.SelectionTimeMs(one));
}

TEST(CostModelTest, IntersectionBeatsSingleIndexWhenListsModerate) {
  // Two moderate lists with a small intersection beat one big candidate set:
  // the regime where multi-index plans are the only viable ones.
  CostModel m = DefaultModel();
  PlanCards single;
  single.postings = {1e5};
  single.candidates = 1e5;
  single.residual_preds = 2;
  PlanCards both;
  both.postings = {1e5, 1e5};
  both.candidates = 2e3;
  both.residual_preds = 1;
  EXPECT_LT(m.SelectionTimeMs(both), m.SelectionTimeMs(single));
}

TEST(CostModelTest, MonotoneInCandidates) {
  CostModel m = DefaultModel();
  PlanCards a;
  a.postings = {1e4};
  a.candidates = 1e3;
  PlanCards b = a;
  b.candidates = 1e4;
  EXPECT_GT(m.PlanTimeMs(b), m.PlanTimeMs(a));
}

TEST(CostModelTest, HeatmapVsScatterOutput) {
  EngineProfile p = EngineProfile::PostgresLike();
  CostModel m(p);
  PlanCards scatter;
  scatter.output_rows = 1e5;
  scatter.heatmap = false;
  PlanCards heatmap = scatter;
  heatmap.heatmap = true;
  EXPECT_NEAR(m.PlanTimeMs(scatter), 1e5 * p.output_row_ms, 1e-9);
  EXPECT_NEAR(m.PlanTimeMs(heatmap), 1e5 * p.agg_row_ms, 1e-9);
}

TEST(CostModelTest, JoinMethodsUseTheirOwnCards) {
  EngineProfile p = EngineProfile::PostgresLike();
  CostModel m(p);

  PlanCards nl;
  nl.has_join = true;
  nl.join_method = JoinMethod::kNestedLoop;
  nl.nl_outer = 1e4;
  double nl_ms = m.JoinTimeMs(nl);
  EXPECT_NEAR(nl_ms, p.index_probe_ms + 1e4 * p.nl_probe_ms, 1e-9);

  PlanCards hash;
  hash.has_join = true;
  hash.join_method = JoinMethod::kHash;
  hash.right_scanned = 1e5;
  hash.build_rows = 1e5;
  hash.probe_rows = 1e4;
  EXPECT_GT(m.JoinTimeMs(hash), 0.0);

  PlanCards merge;
  merge.has_join = true;
  merge.join_method = JoinMethod::kMerge;
  merge.right_scanned = 1e5;
  merge.sort_rows = 1.1e5;
  merge.merge_rows = 1.1e5;
  EXPECT_GT(m.JoinTimeMs(merge), m.JoinTimeMs(hash));  // sorting dominates
}

TEST(CostModelTest, NestedLoopWinsForSmallOuter) {
  // Small filtered outer vs large build side: NL should beat hash.
  CostModel m = DefaultModel();
  PlanCards nl;
  nl.has_join = true;
  nl.join_method = JoinMethod::kNestedLoop;
  nl.nl_outer = 1e3;
  PlanCards hash;
  hash.has_join = true;
  hash.join_method = JoinMethod::kHash;
  hash.right_scanned = 1e6;
  hash.build_rows = 1e6;
  hash.probe_rows = 1e3;
  EXPECT_LT(m.JoinTimeMs(nl), m.JoinTimeMs(hash));
}

TEST(CostModelTest, HashWinsForLargeOuter) {
  CostModel m = DefaultModel();
  PlanCards nl;
  nl.has_join = true;
  nl.join_method = JoinMethod::kNestedLoop;
  nl.nl_outer = 1e6;
  PlanCards hash;
  hash.has_join = true;
  hash.join_method = JoinMethod::kHash;
  hash.right_scanned = 1e5;
  hash.build_rows = 1e5;
  hash.probe_rows = 1e6;
  EXPECT_LT(m.JoinTimeMs(hash), m.JoinTimeMs(nl));
}

TEST(CostModelTest, PlanTimeIsSelectionPlusJoin) {
  CostModel m = DefaultModel();
  PlanCards cards;
  cards.postings = {1e4};
  cards.candidates = 1e3;
  cards.has_join = true;
  cards.join_method = JoinMethod::kNestedLoop;
  cards.nl_outer = 1e3;
  cards.join_output = 500;
  EXPECT_NEAR(m.PlanTimeMs(cards), m.SelectionTimeMs(cards) + m.JoinTimeMs(cards),
              1e-12);
}

TEST(PlanSpecTest, ToStringShowsMaskJoinApprox) {
  PlanSpec spec;
  spec.index_mask = 0b011;
  spec.join_method = JoinMethod::kHash;
  spec.approx = {ApproxKind::kLimit, 0.04};
  std::string s = spec.ToString(3);
  EXPECT_NE(s.find("110"), std::string::npos);  // bit order: pred 0 first
  EXPECT_NE(s.find("hash"), std::string::npos);
  EXPECT_NE(s.find("limit"), std::string::npos);
}

TEST(ProfileTest, Presets) {
  EngineProfile pg = EngineProfile::PostgresLike();
  EXPECT_EQ(pg.name, "postgres-like");
  EXPECT_EQ(pg.noise_sigma, 0.0);
  EngineProfile com = EngineProfile::CommercialLike();
  EXPECT_EQ(com.name, "commercial-like");
  EXPECT_GT(com.noise_sigma, 0.0);
  EXPECT_GT(com.buffer_hit_prob, 0.0);
  EXPECT_GT(com.plan_instability_prob, 0.0);
  EXPECT_LT(com.cardinality_scale, pg.cardinality_scale);
}

}  // namespace
}  // namespace maliva
