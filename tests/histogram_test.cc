// Accuracy and epoch tests for the full-table selectivity histograms
// (engine/histogram.h): estimates must land within a stated relative-error
// bound of TrueSelectivity on uniform, skewed, and spatially clustered data,
// and the engine's epoch guard must refuse stale reads.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/histogram.h"
#include "query/predicate.h"
#include "util/rng.h"

namespace maliva {
namespace {

constexpr size_t kRows = 20000;

// Shared bound for the accuracy tests below: full-table equi-width
// histograms are exact up to the within-bucket uniformity assumption, so a
// generous 15% relative error (with an absolute floor for tiny
// selectivities) is comfortably met on smooth distributions while still
// catching sign/off-by-one-bucket bugs.
void ExpectWithinRelError(double estimate, double truth, const char* what) {
  double tolerance = std::max(0.15 * truth, 0.01);
  EXPECT_NEAR(estimate, truth, tolerance) << what << ": estimate " << estimate
                                          << " vs true " << truth;
}

std::unique_ptr<Table> NumericTable(const std::string& column,
                                    const std::vector<double>& values) {
  Schema schema = {{"id", ColumnType::kInt64}, {column, ColumnType::kDouble}};
  auto t = std::make_unique<Table>("t", schema);
  for (size_t i = 0; i < values.size(); ++i) {
    t->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(i));
    t->MutableColumnAt(1).AppendDouble(values[i]);
  }
  EXPECT_TRUE(t->Seal().ok());
  return t;
}

std::unique_ptr<Engine> EngineWith(std::unique_ptr<Table> table) {
  auto engine = std::make_unique<Engine>(EngineProfile::PostgresLike(), 7);
  EXPECT_TRUE(engine->RegisterTable(std::move(table), {}).ok());
  return engine;
}

TEST(Histogram, UniformNumericWithinBound) {
  Rng rng(11);
  std::vector<double> values;
  values.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) values.push_back(rng.Uniform(0.0, 1000.0));
  std::unique_ptr<Engine> engine = EngineWith(NumericTable("v", values));

  const double ranges[][2] = {{0, 100}, {250, 300}, {100, 900}, {990, 1000}, {-50, 50}};
  for (const auto& r : ranges) {
    Predicate pred = Predicate::Numeric("v", r[0], r[1]);
    double truth = engine->TrueSelectivity("t", pred).value();
    double est =
        engine->HistogramSelectivity("t", pred, engine->catalog_version()).value();
    ExpectWithinRelError(est, truth, "uniform range");
  }
}

TEST(Histogram, SkewedNumericWithinBound) {
  // Exponentially distributed values: most mass near 0, a long thin tail —
  // the shape equi-width histograms handle worst.
  Rng rng(13);
  std::vector<double> values;
  values.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    double u = rng.Uniform(1e-6, 1.0);
    values.push_back(-100.0 * std::log(u));
  }
  std::unique_ptr<Engine> engine = EngineWith(NumericTable("v", values));

  const double ranges[][2] = {{0, 50}, {0, 200}, {50, 150}, {200, 800}};
  for (const auto& r : ranges) {
    Predicate pred = Predicate::Numeric("v", r[0], r[1]);
    double truth = engine->TrueSelectivity("t", pred).value();
    double est =
        engine->HistogramSelectivity("t", pred, engine->catalog_version()).value();
    ExpectWithinRelError(est, truth, "skewed range");
  }
}

TEST(Histogram, SpatialClusteredWithinBound) {
  // Three dense Gaussian-ish clusters over a sparse uniform background.
  Rng rng(17);
  Schema schema = {{"id", ColumnType::kInt64}, {"pt", ColumnType::kPoint}};
  auto t = std::make_unique<Table>("t", schema);
  const double centers[][2] = {{20, 10}, {70, 40}, {50, 25}};
  for (size_t i = 0; i < kRows; ++i) {
    GeoPoint p;
    if (rng.Bernoulli(0.85)) {
      const auto& c = centers[i % 3];
      // Sum of uniforms: a cheap bell-shaped spread around the center.
      p.lon = c[0] + (rng.Uniform(0, 4) + rng.Uniform(0, 4) - 4.0);
      p.lat = c[1] + (rng.Uniform(0, 3) + rng.Uniform(0, 3) - 3.0);
    } else {
      p.lon = rng.Uniform(0, 100);
      p.lat = rng.Uniform(0, 50);
    }
    t->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(i));
    t->MutableColumnAt(1).AppendPoint(p);
  }
  ASSERT_TRUE(t->Seal().ok());
  std::unique_ptr<Engine> engine = EngineWith(std::move(t));

  const double boxes[][4] = {
      {15, 5, 25, 15},   // covers cluster 1
      {60, 30, 80, 50},  // covers cluster 2
      {0, 0, 100, 50},   // everything
      {40, 20, 60, 30},  // cluster 3 plus background
      {0, 0, 10, 5},     // background only
  };
  for (const auto& b : boxes) {
    Predicate pred = Predicate::Spatial("pt", BoundingBox{b[0], b[1], b[2], b[3]});
    double truth = engine->TrueSelectivity("t", pred).value();
    double est =
        engine->HistogramSelectivity("t", pred, engine->catalog_version()).value();
    ExpectWithinRelError(est, truth, "spatial box");
  }
}

TEST(Histogram, DegenerateAllEqualColumnIsPointMass) {
  std::vector<double> values(100, 42.0);
  std::unique_ptr<Engine> engine = EngineWith(NumericTable("v", values));
  uint64_t epoch = engine->catalog_version();
  EXPECT_DOUBLE_EQ(
      engine->HistogramSelectivity("t", Predicate::Numeric("v", 40, 45), epoch).value(),
      1.0);
  EXPECT_DOUBLE_EQ(
      engine->HistogramSelectivity("t", Predicate::Numeric("v", 43, 45), epoch).value(),
      0.0);
}

TEST(Histogram, KeywordAndUnknownColumnsAreUncovered) {
  Rng rng(19);
  std::vector<double> values;
  for (size_t i = 0; i < 100; ++i) values.push_back(rng.Uniform(0, 1));
  std::unique_ptr<Engine> engine = EngineWith(NumericTable("v", values));
  uint64_t epoch = engine->catalog_version();

  Result<double> keyword =
      engine->HistogramSelectivity("t", Predicate::Keyword("text", "w1"), epoch);
  EXPECT_EQ(keyword.status().code(), Status::Code::kNotFound);
  Result<double> unknown =
      engine->HistogramSelectivity("t", Predicate::Numeric("nope", 0, 1), epoch);
  EXPECT_EQ(unknown.status().code(), Status::Code::kNotFound);
  Result<double> missing_table =
      engine->HistogramSelectivity("zzz", Predicate::Numeric("v", 0, 1), epoch);
  EXPECT_EQ(missing_table.status().code(), Status::Code::kNotFound);
}

TEST(Histogram, StaleEpochIsRefused) {
  Rng rng(23);
  std::vector<double> values;
  for (size_t i = 0; i < 1000; ++i) values.push_back(rng.Uniform(0, 100));
  std::unique_ptr<Engine> engine = EngineWith(NumericTable("v", values));
  uint64_t old_epoch = engine->catalog_version();
  Predicate pred = Predicate::Numeric("v", 0, 50);
  ASSERT_TRUE(engine->HistogramSelectivity("t", pred, old_epoch).ok());

  // Any catalog mutation bumps the version; the old epoch must be refused.
  ASSERT_TRUE(engine->BuildSampleTables("t", {0.1}, 99).ok());
  ASSERT_NE(engine->catalog_version(), old_epoch);
  Result<double> stale = engine->HistogramSelectivity("t", pred, old_epoch);
  EXPECT_EQ(stale.status().code(), Status::Code::kFailedPrecondition);
  EXPECT_TRUE(
      engine->HistogramSelectivity("t", pred, engine->catalog_version()).ok());
}

TEST(Histogram, ConfigureHistogramsRebuildsAndBumpsEpoch) {
  Rng rng(29);
  std::vector<double> values;
  for (size_t i = 0; i < 5000; ++i) values.push_back(rng.Uniform(0, 100));
  std::unique_ptr<Engine> engine = EngineWith(NumericTable("v", values));
  uint64_t before = engine->catalog_version();

  HistogramOptions coarse;
  coarse.buckets = 4;
  coarse.grid_cells = 4;
  engine->ConfigureHistograms(coarse);
  EXPECT_GT(engine->catalog_version(), before);
  EXPECT_EQ(engine->histogram_options().buckets, 4u);

  // Re-applying identical options is a no-op (no epoch churn).
  uint64_t after = engine->catalog_version();
  engine->ConfigureHistograms(coarse);
  EXPECT_EQ(engine->catalog_version(), after);

  // The coarse rebuild still answers (with coarser interpolation).
  Predicate pred = Predicate::Numeric("v", 0, 50);
  double truth = engine->TrueSelectivity("t", pred).value();
  double est =
      engine->HistogramSelectivity("t", pred, engine->catalog_version()).value();
  EXPECT_NEAR(est, truth, 0.05);
}

}  // namespace
}  // namespace maliva
