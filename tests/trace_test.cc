// Trace format + generator tests (ISSUE 9): seeded determinism, exact
// interleave mixes, serialization round-trips, and the promoted
// ArrivalGenerator's contract (src/workload/arrival.h).

#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "workload/arrival.h"

namespace maliva {
namespace {

TraceStream Stream(const std::string& scenario, const std::string& strategy,
                   double weight, uint32_t num_queries) {
  TraceStream s;
  s.scenario = scenario;
  s.strategy = strategy;
  s.weight = weight;
  s.num_queries = num_queries;
  return s;
}

Trace BuildMixedTrace(uint64_t seed) {
  TraceBuilder builder("mixed", seed);
  builder.AddStream(Stream("twitter", "mdp/accurate", 2.0, 16))
      .AddStream(Stream("taxi", "baseline", 1.0, 8))
      .AddStream(Stream("tpch", "", 1.0, 4))
      .SteadyPhase(100.0, 40)
      .RampPhase(100.0, 400.0, 24)
      .GapMs(250.0)
      .BurstPhase(12)
      .DriftPhase(200.0, 24);
  return builder.Build();
}

// ---------------------------------------------------------- ReplayTraceTest

TEST(ReplayTraceTest, SameSeedSameBytes) {
  std::string a = BuildMixedTrace(7).Serialize();
  std::string b = BuildMixedTrace(7).Serialize();
  EXPECT_EQ(a, b);
}

TEST(ReplayTraceTest, DifferentSeedDifferentSchedule) {
  Trace a = BuildMixedTrace(7);
  Trace b = BuildMixedTrace(8);
  ASSERT_EQ(a.records.size(), b.records.size());
  bool any_differs = false;
  for (size_t i = 0; i < a.records.size() && !any_differs; ++i) {
    any_differs = a.records[i].arrival_ms != b.records[i].arrival_ms;
  }
  EXPECT_TRUE(any_differs);
}

TEST(ReplayTraceTest, ArrivalsNonDecreasingAcrossPhases) {
  Trace t = BuildMixedTrace(3);
  ASSERT_TRUE(t.Validate().ok());
  double prev = 0.0;
  for (const TraceRecord& r : t.records) {
    EXPECT_GE(r.arrival_ms, prev);
    prev = r.arrival_ms;
  }
}

TEST(ReplayTraceTest, GapAdvancesTheSchedule) {
  TraceBuilder builder("gap", 1);
  builder.AddStream(Stream("s", "", 1.0, 4))
      .SteadyPhase(1000.0, 5)
      .GapMs(10000.0)
      .SteadyPhase(1000.0, 5);
  Trace t = builder.Build();
  ASSERT_EQ(t.records.size(), 10u);
  EXPECT_GE(t.records[5].arrival_ms - t.records[4].arrival_ms, 10000.0);
}

TEST(ReplayTraceTest, BurstRecordsShareOneOffset) {
  TraceBuilder builder("burst", 1);
  builder.AddStream(Stream("s", "", 1.0, 4)).SteadyPhase(100.0, 3).BurstPhase(5);
  Trace t = builder.Build();
  ASSERT_EQ(t.records.size(), 8u);
  for (size_t i = 3; i < 8; ++i) {
    EXPECT_EQ(t.records[i].arrival_ms, t.records[2].arrival_ms);
  }
}

TEST(ReplayTraceTest, SmoothWrrMixCountsAreExact) {
  // Weights 2:1:1 over 100 records must yield exactly 50/25/25 — smooth WRR
  // is deterministic, not a sampling scheme.
  TraceBuilder builder("mix", 5);
  builder.AddStream(Stream("a", "", 2.0, 4))
      .AddStream(Stream("b", "", 1.0, 4))
      .AddStream(Stream("c", "", 1.0, 4))
      .SteadyPhase(500.0, 100);
  Trace t = builder.Build();
  std::vector<size_t> counts = t.RecordsPerStream();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 50u);
  EXPECT_EQ(counts[1], 25u);
  EXPECT_EQ(counts[2], 25u);
}

TEST(ReplayTraceTest, MultiScenarioInterleaveMatchesMixSpec) {
  Trace t = BuildMixedTrace(11);
  std::vector<size_t> counts = t.RecordsPerStream();
  size_t total = t.records.size();
  ASSERT_EQ(total, 100u);
  // 2:1:1 over every phase: the interleave holds within one record at any
  // prefix, so over 100 records the split is exact.
  EXPECT_EQ(counts[0], 50u);
  EXPECT_EQ(counts[1], 25u);
  EXPECT_EQ(counts[2], 25u);
  std::map<std::string, size_t> by_scenario = t.RecordsPerScenario();
  EXPECT_EQ(by_scenario["twitter"], 50u);
  EXPECT_EQ(by_scenario["taxi"], 25u);
  EXPECT_EQ(by_scenario["tpch"], 25u);
}

TEST(ReplayTraceTest, DriftSlidesQueryWindow) {
  TraceBuilder builder("drift", 9);
  builder.AddStream(Stream("s", "", 1.0, 100)).DriftPhase(100.0, 200);
  Trace t = builder.Build();
  // Early draws come from the front half of the domain, late draws from the
  // back half; the window start moves monotonically with the phase.
  uint32_t early_max = 0, late_min = 100;
  for (size_t i = 0; i < 20; ++i) {
    early_max = std::max(early_max, t.records[i].query_index);
  }
  for (size_t i = 180; i < 200; ++i) {
    late_min = std::min(late_min, t.records[i].query_index);
  }
  EXPECT_LT(early_max, 60u);  // front window: [0, 50)
  EXPECT_GE(late_min, 40u);   // back window: [50, 100)
}

TEST(ReplayTraceTest, DriftRecordsStayInsideDomain) {
  Trace t = BuildMixedTrace(13);
  ASSERT_TRUE(t.Validate().ok());
  for (const TraceRecord& r : t.records) {
    EXPECT_LT(r.query_index, t.streams[r.stream].num_queries);
  }
}

TEST(ReplayTraceTest, SerializeRoundTripsBitExactly) {
  Trace t = BuildMixedTrace(21);
  t.streams[2].tau_ms = 333.125;
  t.streams[2].quality_floor = 0.875;
  std::string text = t.Serialize();
  Result<Trace> round = Trace::Deserialize(text);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().Serialize(), text);
  EXPECT_EQ(round.value().name, "mixed");
  EXPECT_EQ(round.value().seed, 21u);
  ASSERT_EQ(round.value().records.size(), t.records.size());
  for (size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(round.value().records[i].arrival_ms, t.records[i].arrival_ms);
    EXPECT_EQ(round.value().records[i].stream, t.records[i].stream);
    EXPECT_EQ(round.value().records[i].query_index, t.records[i].query_index);
  }
  EXPECT_EQ(round.value().streams[2].tau_ms, 333.125);
  EXPECT_EQ(round.value().streams[2].quality_floor, 0.875);
}

TEST(ReplayTraceTest, EmptyScenarioRoundTripsThroughSentinel) {
  Trace t = BuildMixedTrace(2);
  ASSERT_TRUE(t.streams[2].strategy.empty());
  Result<Trace> round = Trace::Deserialize(t.Serialize());
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round.value().streams[2].strategy.empty());
}

TEST(ReplayTraceTest, SaveLoadRoundTrip) {
  Trace t = BuildMixedTrace(4);
  std::string path = ::testing::TempDir() + "/maliva_trace_roundtrip.txt";
  ASSERT_TRUE(t.SaveTo(path).ok());
  Result<Trace> loaded = Trace::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().Serialize(), t.Serialize());
  std::remove(path.c_str());
}

TEST(ReplayTraceTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Trace::Deserialize("").ok());
  EXPECT_FALSE(Trace::Deserialize("maliva-trace v2\n").ok());
  EXPECT_FALSE(Trace::Deserialize("maliva-trace v1\nname x\nseed 1\n"
                                  "streams 1\nbogus\n").ok());
  // Truncated record list.
  EXPECT_FALSE(Trace::Deserialize("maliva-trace v1\nname x\nseed 1\n"
                                  "streams 1\nstream - - 0 -1 1 4\n"
                                  "records 2\n0 0 1.0\n").ok());
}

TEST(ReplayTraceTest, RecordInternsStreams) {
  Trace t;
  t.name = "recorded";
  t.Record(0.0, "twitter", "mdp/accurate", 500.0, -1.0, 3);
  t.Record(1.0, "twitter", "mdp/accurate", 500.0, -1.0, 7);
  t.Record(2.0, "tpch", "baseline", 0.0, 0.9, 1);
  ASSERT_EQ(t.streams.size(), 2u);
  EXPECT_EQ(t.records.size(), 3u);
  EXPECT_EQ(t.streams[0].num_queries, 8u);  // max query_index + 1
  EXPECT_TRUE(t.Validate().ok());
}

TEST(ReplayTraceTest, ValidateCatchesDefects) {
  Trace t;
  t.streams.push_back(Stream("ok", "", 1.0, 4));
  t.records.push_back({1.0, 0, 0});
  t.records.push_back({0.5, 0, 0});  // decreasing arrival
  EXPECT_FALSE(t.Validate().ok());

  Trace bad_stream;
  bad_stream.streams.push_back(Stream("has space", "", 1.0, 4));
  EXPECT_FALSE(bad_stream.Validate().ok());

  Trace bad_index;
  bad_index.streams.push_back(Stream("ok", "", 1.0, 4));
  bad_index.records.push_back({0.0, 1, 0});  // stream out of range
  EXPECT_FALSE(bad_index.Validate().ok());

  Trace bad_query;
  bad_query.streams.push_back(Stream("ok", "", 1.0, 4));
  bad_query.records.push_back({0.0, 0, 9});  // query outside the domain
  EXPECT_FALSE(bad_query.Validate().ok());
}

// -------------------------------------------------------- ReplayArrivalTest

TEST(ReplayArrivalTest, SameSeedSameSchedule) {
  ArrivalGenerator a(250.0, 42);
  ArrivalGenerator b(250.0, 42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextMs(), b.NextMs());
  }
}

TEST(ReplayArrivalTest, DifferentSeedsDiverge) {
  ArrivalGenerator a(250.0, 42);
  ArrivalGenerator b(250.0, 43);
  bool diverged = false;
  for (int i = 0; i < 100 && !diverged; ++i) {
    diverged = a.NextMs() != b.NextMs();
  }
  EXPECT_TRUE(diverged);
}

TEST(ReplayArrivalTest, RateIsAccurate) {
  // 200k arrivals at 500 QPS: the mean offset must land within 2% of the
  // analytic schedule (law of large numbers on exponential gaps).
  const double rate_qps = 500.0;
  const int n = 200000;
  ArrivalGenerator gen(rate_qps, 7);
  double last = 0.0;
  for (int i = 0; i < n; ++i) last = gen.NextMs();
  double expected_ms = 1000.0 * static_cast<double>(n) / rate_qps;
  EXPECT_NEAR(last, expected_ms, 0.02 * expected_ms);
}

TEST(ReplayArrivalTest, OffsetsAreMonotone) {
  ArrivalGenerator gen(1000.0, 5);
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    double next = gen.NextMs();
    EXPECT_GE(next, prev);
    prev = next;
  }
}

TEST(ReplayArrivalTest, SetRateReaimsTheProcess) {
  ArrivalGenerator gen(10.0, 3);
  gen.SetRateQps(10000.0);
  double first = gen.NextMs();
  // At 10k QPS the expected gap is 0.1ms; even a tail draw stays far under
  // the 100ms expected gap of the original rate.
  EXPECT_LT(first, 50.0);
}

TEST(ReplayArrivalTest, AdvanceToIsForwardOnly) {
  ArrivalGenerator gen(1000.0, 9);
  double t1 = gen.NextMs();
  gen.AdvanceTo(t1 + 500.0);
  EXPECT_EQ(gen.CurrentMs(), t1 + 500.0);
  gen.AdvanceTo(0.0);  // backwards: ignored
  EXPECT_EQ(gen.CurrentMs(), t1 + 500.0);
  EXPECT_GE(gen.NextMs(), t1 + 500.0);
}

TEST(ReplayArrivalTest, NoWallClockReads) {
  // The schedule is purely virtual: two generators constructed at different
  // wall times (with a real sleep between them) still agree exactly.
  ArrivalGenerator a(100.0, 77);
  std::vector<double> first;
  for (int i = 0; i < 50; ++i) first.push_back(a.NextMs());
  // Burn measurable wall time without any timer dependency in the assert.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += std::sqrt(static_cast<double>(i));
  (void)sink;
  ArrivalGenerator b(100.0, 77);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(b.NextMs(), first[i]);
}

}  // namespace
}  // namespace maliva
