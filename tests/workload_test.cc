// Workload tests: dataset generators, query generation invariants,
// difficulty bucketing, scenario assembly.

#include <gtest/gtest.h>

#include <set>

#include "workload/difficulty.h"
#include "workload/query_gen.h"
#include "workload/scenario.h"
#include "workload/taxi.h"
#include "workload/tpch.h"
#include "workload/twitter.h"

namespace maliva {
namespace {

TEST(TwitterGenTest, SchemaAndSize) {
  TwitterConfig cfg;
  cfg.num_rows = 5000;
  cfg.num_users = 500;
  std::unique_ptr<Table> t = GenerateTweetsTable(cfg);
  EXPECT_EQ(t->NumRows(), 5000u);
  EXPECT_EQ(t->name(), "tweets");
  EXPECT_TRUE(t->ColumnIndex("text").ok());
  EXPECT_TRUE(t->ColumnIndex("created_at").ok());
  EXPECT_TRUE(t->ColumnIndex("coordinates").ok());
  EXPECT_TRUE(t->ColumnIndex("user_id").ok());
}

TEST(TwitterGenTest, ValuesWithinDomain) {
  TwitterConfig cfg;
  cfg.num_rows = 3000;
  std::unique_ptr<Table> t = GenerateTweetsTable(cfg);
  const Column& ts = t->GetColumn("created_at");
  const Column& loc = t->GetColumn("coordinates");
  const Column& uid = t->GetColumn("user_id");
  for (RowId r = 0; r < t->NumRows(); ++r) {
    EXPECT_GE(ts.TimestampAt(r), cfg.start_epoch);
    EXPECT_LT(ts.TimestampAt(r), cfg.start_epoch + cfg.duration_s);
    const GeoPoint& p = loc.PointAt(r);
    EXPECT_GE(p.lon, cfg.min_lon);
    EXPECT_LE(p.lon, cfg.max_lon);
    EXPECT_GE(p.lat, cfg.min_lat);
    EXPECT_LE(p.lat, cfg.max_lat);
    EXPECT_GE(uid.Int64At(r), 0);
    EXPECT_LT(uid.Int64At(r), static_cast<int64_t>(cfg.num_users));
  }
}

TEST(TwitterGenTest, DeterministicPerSeed) {
  TwitterConfig cfg;
  cfg.num_rows = 1000;
  auto a = GenerateTweetsTable(cfg);
  auto b = GenerateTweetsTable(cfg);
  for (RowId r = 0; r < 1000; r += 97) {
    EXPECT_EQ(a->GetColumn("text").TextAt(r), b->GetColumn("text").TextAt(r));
  }
  cfg.seed = 43;
  auto c = GenerateTweetsTable(cfg);
  EXPECT_NE(a->GetColumn("text").TextAt(0), c->GetColumn("text").TextAt(0));
}

TEST(TwitterGenTest, EventWordsExistAndAreBursty) {
  TwitterConfig cfg;
  cfg.num_rows = 20000;
  std::unique_ptr<Table> t = GenerateTweetsTable(cfg);
  const Column& text = t->GetColumn("text");
  const Column& ts = t->GetColumn("created_at");
  // Find rows containing "event0"; their timestamps must cluster.
  std::vector<int64_t> hits;
  for (RowId r = 0; r < t->NumRows(); ++r) {
    if (text.TextAt(r).find("event0") != std::string::npos) {
      hits.push_back(ts.TimestampAt(r));
    }
  }
  ASSERT_GT(hits.size(), 10u);
  auto [lo, hi] = std::minmax_element(hits.begin(), hits.end());
  EXPECT_LT(*hi - *lo, 17LL * 24 * 3600);  // within the max event window
}

TEST(TwitterGenTest, UsersTable) {
  TwitterConfig cfg;
  cfg.num_users = 300;
  std::unique_ptr<Table> u = GenerateUsersTable(cfg);
  EXPECT_EQ(u->NumRows(), 300u);
  const Column& ids = u->GetColumn("id");
  for (RowId r = 0; r < 300; ++r) {
    EXPECT_EQ(ids.Int64At(r), static_cast<int64_t>(r));  // dense PK
  }
}

TEST(TaxiGenTest, SchemaAndDomains) {
  TaxiConfig cfg;
  cfg.num_rows = 3000;
  std::unique_ptr<Table> t = GenerateTaxiTable(cfg);
  EXPECT_EQ(t->NumRows(), 3000u);
  EXPECT_EQ(t->name(), "trips");
  const Column& dist = t->GetColumn("trip_distance");
  for (RowId r = 0; r < t->NumRows(); ++r) {
    EXPECT_GT(dist.DoubleAt(r), 0.0);
    EXPECT_LE(dist.DoubleAt(r), 60.0);
  }
}

TEST(TaxiGenTest, RushHourSkew) {
  TaxiConfig cfg;
  cfg.num_rows = 20000;
  std::unique_ptr<Table> t = GenerateTaxiTable(cfg);
  const Column& ts = t->GetColumn("pickup_datetime");
  size_t rush = 0, night = 0;
  for (RowId r = 0; r < t->NumRows(); ++r) {
    int hour = static_cast<int>((ts.TimestampAt(r) / 3600) % 24);
    if (hour >= 7 && hour <= 10) ++rush;
    if (hour >= 1 && hour <= 4) ++night;
  }
  EXPECT_GT(rush, 2 * night);  // rush hours much denser than night
}

TEST(TpchGenTest, ReceiptLagsShipment) {
  TpchConfig cfg;
  cfg.num_rows = 5000;
  std::unique_ptr<Table> t = GenerateLineitemTable(cfg);
  const Column& ship = t->GetColumn("ship_date");
  const Column& receipt = t->GetColumn("receipt_date");
  for (RowId r = 0; r < t->NumRows(); ++r) {
    EXPECT_GE(receipt.TimestampAt(r), ship.TimestampAt(r));
    EXPECT_LE(receipt.TimestampAt(r), ship.TimestampAt(r) + 61LL * 86400);
  }
}

TEST(QueryGenTest, ProducesRequestedShape) {
  TwitterConfig tw;
  tw.num_rows = 5000;
  std::unique_ptr<Table> t = GenerateTweetsTable(tw);
  QueryGenConfig qg;
  qg.attrs = {"text", "created_at", "coordinates"};
  qg.num_queries = 50;
  qg.output_column = "coordinates";
  std::vector<Query> qs = GenerateQueries(*t, nullptr, qg);
  ASSERT_EQ(qs.size(), 50u);
  std::set<uint64_t> ids;
  for (const Query& q : qs) {
    ids.insert(q.id);
    ASSERT_EQ(q.predicates.size(), 3u);
    EXPECT_EQ(q.predicates[0].type, PredicateType::kKeyword);
    EXPECT_EQ(q.predicates[1].type, PredicateType::kTimeRange);
    EXPECT_EQ(q.predicates[2].type, PredicateType::kSpatialBox);
    EXPECT_FALSE(q.join.has_value());
  }
  EXPECT_EQ(ids.size(), 50u);  // unique ids
}

TEST(QueryGenTest, KeywordsAreNonEmptyNonStopwords) {
  TwitterConfig tw;
  tw.num_rows = 8000;
  std::unique_ptr<Table> t = GenerateTweetsTable(tw);
  QueryGenConfig qg;
  qg.attrs = {"text", "created_at", "coordinates"};
  qg.num_queries = 100;
  qg.output_column = "coordinates";
  std::vector<Query> qs = GenerateQueries(*t, nullptr, qg);
  for (const Query& q : qs) {
    EXPECT_FALSE(q.predicates[0].keyword.empty());
  }
}

TEST(QueryGenTest, QueriesAnchoredAtSampledRows) {
  // Every generated range starts at some row's value, so every query matches
  // at least one row (the anchor) unless ranges clip. Check non-emptiness of
  // range predicates structurally.
  TwitterConfig tw;
  tw.num_rows = 5000;
  std::unique_ptr<Table> t = GenerateTweetsTable(tw);
  QueryGenConfig qg;
  qg.attrs = {"text", "created_at", "coordinates"};
  qg.num_queries = 40;
  qg.output_column = "coordinates";
  std::vector<Query> qs = GenerateQueries(*t, nullptr, qg);
  for (const Query& q : qs) {
    EXPECT_LE(q.predicates[1].range.lo, q.predicates[1].range.hi);
    EXPECT_LT(q.predicates[2].box.min_lon, q.predicates[2].box.max_lon);
  }
}

TEST(QueryGenTest, JoinQueriesCarryRightPredicate) {
  TwitterConfig tw;
  tw.num_rows = 3000;
  tw.num_users = 200;
  std::unique_ptr<Table> t = GenerateTweetsTable(tw);
  std::unique_ptr<Table> u = GenerateUsersTable(tw);
  QueryGenConfig qg;
  qg.attrs = {"text", "created_at", "coordinates"};
  qg.num_queries = 20;
  qg.output_column = "coordinates";
  qg.join = true;
  qg.right_table = "users";
  qg.left_key = "user_id";
  qg.right_key = "id";
  qg.right_attr = "tweet_cnt";
  std::vector<Query> qs = GenerateQueries(*t, u.get(), qg);
  for (const Query& q : qs) {
    ASSERT_TRUE(q.join.has_value());
    EXPECT_EQ(q.join->right_table, "users");
    ASSERT_EQ(q.join->right_predicates.size(), 1u);
    EXPECT_EQ(q.join->right_predicates[0].column, "tweet_cnt");
  }
}

TEST(BucketSchemeTest, Exact0To4) {
  BucketScheme s = BucketScheme::Exact0To4();
  EXPECT_EQ(s.num_buckets(), 6u);
  EXPECT_EQ(s.BucketOf(0), 0);
  EXPECT_EQ(s.BucketOf(4), 4);
  EXPECT_EQ(s.BucketOf(5), 5);
  EXPECT_EQ(s.BucketOf(100), 5);
  EXPECT_EQ(s.Label(5), ">=5");
  EXPECT_EQ(s.Label(2), "2");
}

TEST(BucketSchemeTest, RangedSchemes) {
  BucketScheme s16 = BucketScheme::Ranges16();
  EXPECT_EQ(s16.BucketOf(1), 1);
  EXPECT_EQ(s16.BucketOf(2), 1);
  EXPECT_EQ(s16.BucketOf(8), 4);
  EXPECT_EQ(s16.Label(1), "1-2");
  BucketScheme s32 = BucketScheme::Ranges32();
  EXPECT_EQ(s32.BucketOf(16), 4);
  EXPECT_EQ(s32.BucketOf(17), 5);
  BucketScheme join = BucketScheme::JoinRanges();
  EXPECT_EQ(join.BucketOf(10), 5);
}

TEST(ScenarioTest, BuildTwitterScenario) {
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 10000;
  cfg.num_queries = 100;
  Scenario s = BuildScenario(cfg);
  EXPECT_NE(s.engine->FindEntry("tweets"), nullptr);
  EXPECT_NE(s.engine->FindEntry(Engine::SampleTableName("tweets", 0.01)), nullptr);
  EXPECT_EQ(s.queries.size(), 100u);
  EXPECT_EQ(s.options.size(), 8u);
  // Split: half evaluation, then 2/3 train, 1/3 validation.
  EXPECT_EQ(s.evaluation.size(), 50u);
  EXPECT_EQ(s.train.size(), 33u);
  EXPECT_EQ(s.validation.size(), 17u);
  // Disjoint.
  std::set<const Query*> all;
  for (const Query* q : s.train) all.insert(q);
  for (const Query* q : s.validation) all.insert(q);
  for (const Query* q : s.evaluation) all.insert(q);
  EXPECT_EQ(all.size(), 100u);
}

TEST(ScenarioTest, JoinScenarioHas21Options) {
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 8000;
  cfg.num_users = 500;
  cfg.num_queries = 40;
  cfg.join = true;
  Scenario s = BuildScenario(cfg);
  EXPECT_EQ(s.options.size(), 21u);
  EXPECT_NE(s.engine->FindEntry("users"), nullptr);
  for (const Query& q : s.queries) EXPECT_TRUE(q.join.has_value());
}

TEST(ScenarioTest, AttrCountControlsOptionCount) {
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 8000;
  cfg.num_queries = 30;
  cfg.num_attrs = 4;
  Scenario s4 = BuildScenario(cfg);
  EXPECT_EQ(s4.options.size(), 16u);
  cfg.num_attrs = 5;
  Scenario s5 = BuildScenario(cfg);
  EXPECT_EQ(s5.options.size(), 32u);
}

TEST(ScenarioTest, TaxiAndTpchScenarios) {
  ScenarioConfig taxi;
  taxi.kind = DatasetKind::kTaxi;
  taxi.num_rows = 8000;
  taxi.num_queries = 30;
  Scenario st = BuildScenario(taxi);
  EXPECT_NE(st.engine->FindEntry("trips"), nullptr);
  EXPECT_EQ(st.options.size(), 8u);

  ScenarioConfig tpch;
  tpch.kind = DatasetKind::kTpch;
  tpch.num_rows = 8000;
  tpch.num_queries = 30;
  Scenario sp = BuildScenario(tpch);
  EXPECT_NE(sp.engine->FindEntry("lineitem"), nullptr);
  for (const Query& q : sp.queries) {
    EXPECT_EQ(q.output, OutputKind::kScatter);  // no point column in lineitem
  }
}

TEST(DifficultyTest, CountViablePlansMonotoneInTau) {
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 10000;
  cfg.num_queries = 30;
  Scenario s = BuildScenario(cfg);
  for (const Query* q : s.evaluation) {
    size_t v250 = CountViablePlans(*s.oracle, *q, s.options, 250.0);
    size_t v1000 = CountViablePlans(*s.oracle, *q, s.options, 1000.0);
    EXPECT_LE(v250, v1000);
    EXPECT_LE(v1000, s.options.size());
  }
}

TEST(DifficultyTest, BucketQueriesPartitions) {
  ScenarioConfig cfg;
  cfg.kind = DatasetKind::kTwitter;
  cfg.num_rows = 10000;
  cfg.num_queries = 60;
  Scenario s = BuildScenario(cfg);
  BucketedWorkload bw = BucketQueries(*s.oracle, s.evaluation, s.options, 500.0,
                                      BucketScheme::Exact0To4());
  size_t total = bw.out_of_range.size();
  for (const auto& bucket : bw.buckets) total += bucket.size();
  EXPECT_EQ(total, s.evaluation.size());
}

}  // namespace
}  // namespace maliva
