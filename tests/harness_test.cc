// Harness tests: experiment runner aggregation, table rendering, and the
// ExperimentSetup approach factory.

#include <gtest/gtest.h>

#include <sstream>

#include "harness/setup.h"
#include "qte/accurate_qte.h"

namespace maliva {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.kind = DatasetKind::kTwitter;
    cfg.num_rows = 20000;
    cfg.num_queries = 120;
    cfg.tau_ms = 500.0;
    cfg.seed = 51;
    scenario_ = new Scenario(BuildScenario(cfg));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static Scenario* scenario_;
};

Scenario* HarnessTest::scenario_ = nullptr;

Approach ConstantApproach(const std::string& name, double total_ms, bool viable) {
  return {name, [total_ms, viable](const Query&) {
            RewriteOutcome out;
            out.planning_ms = 10.0;
            out.exec_ms = total_ms - 10.0;
            out.total_ms = total_ms;
            out.viable = viable;
            out.quality = 0.5;
            return out;
          }};
}

TEST_F(HarnessTest, RunExperimentAggregates) {
  BucketedWorkload bw = BucketQueries(*scenario_->oracle, scenario_->evaluation,
                                      scenario_->options, 500.0,
                                      BucketScheme::Exact0To4());
  std::vector<Approach> approaches = {ConstantApproach("always", 100.0, true),
                                      ConstantApproach("never", 900.0, false)};
  ExperimentResult r = RunExperiment(approaches, bw);
  ASSERT_EQ(r.approach_names.size(), 2u);
  ASSERT_EQ(r.buckets.size(), 6u);
  for (const BucketMetrics& bm : r.buckets) {
    if (bm.num_queries == 0) continue;
    EXPECT_DOUBLE_EQ(bm.per_approach[0].vqp, 100.0);
    EXPECT_DOUBLE_EQ(bm.per_approach[1].vqp, 0.0);
    EXPECT_DOUBLE_EQ(bm.per_approach[0].aqrt_ms, 100.0);
    EXPECT_DOUBLE_EQ(bm.per_approach[0].plan_ms, 10.0);
    EXPECT_DOUBLE_EQ(bm.per_approach[0].exec_ms, 90.0);
    EXPECT_DOUBLE_EQ(bm.per_approach[0].quality, 0.5);
  }
}

TEST_F(HarnessTest, TablePrintersEmitAllBucketsAndApproaches) {
  BucketedWorkload bw = BucketQueries(*scenario_->oracle, scenario_->evaluation,
                                      scenario_->options, 500.0,
                                      BucketScheme::Exact0To4());
  ExperimentResult r =
      RunExperiment({ConstantApproach("alpha", 50.0, true)}, bw);
  std::ostringstream vqp, aqrt, quality, sizes;
  PrintVqpTable(r, "t", vqp);
  PrintAqrtTable(r, "t", aqrt);
  PrintQualityTable(r, "t", quality);
  PrintBucketSizes(bw, "t", sizes);
  for (const std::string& s :
       {vqp.str(), aqrt.str(), quality.str()}) {
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find(">=5"), std::string::npos);
    EXPECT_NE(s.find("bucket"), std::string::npos);
  }
  EXPECT_NE(sizes.str().find(">=5"), std::string::npos);
}

TEST_F(HarnessTest, SetupBaselineIsCached) {
  ExperimentSetup::Options opt;
  opt.trainer.max_iterations = 3;
  opt.num_agent_seeds = 1;
  ExperimentSetup setup(scenario_, opt);
  Approach a = setup.Baseline();
  Approach b = setup.Baseline();
  const Query& q = *scenario_->evaluation[0];
  EXPECT_DOUBLE_EQ(a.rewrite(q).total_ms, b.rewrite(q).total_ms);
}

TEST_F(HarnessTest, SetupEnvWiring) {
  ExperimentSetup::Options opt;
  opt.trainer.max_iterations = 2;
  opt.num_agent_seeds = 1;
  ExperimentSetup setup(scenario_, opt);
  AccurateQte qte;
  RewriterEnv renv = setup.MakeEnv(&qte);
  EXPECT_EQ(renv.engine, scenario_->engine.get());
  EXPECT_EQ(renv.oracle, scenario_->oracle.get());
  EXPECT_EQ(renv.options, &scenario_->options);
  EXPECT_DOUBLE_EQ(renv.env_config.tau_ms, 500.0);
  EXPECT_DOUBLE_EQ(renv.env_config.beta, 1.0);
  EXPECT_EQ(renv.env_config.quality, nullptr);

  RewriterEnv qa = setup.MakeEnv(&qte, 0.5);
  EXPECT_NE(qa.env_config.quality, nullptr);
}

TEST_F(HarnessTest, TrainAgentOnRecordsHistory) {
  ExperimentSetup::Options opt;
  opt.trainer.max_iterations = 4;
  opt.trainer.patience = 100;
  opt.num_agent_seeds = 1;
  ExperimentSetup setup(scenario_, opt);
  std::vector<Trainer::IterationStats> history;
  std::unique_ptr<QAgent> agent = setup.TrainAgentOn(scenario_->train, 7, &history);
  ASSERT_NE(agent, nullptr);
  EXPECT_EQ(history.size(), 4u);
  double vqp = setup.EvaluateAgentVqp(*agent, scenario_->validation);
  EXPECT_GE(vqp, 0.0);
  EXPECT_LE(vqp, 100.0);
}

TEST_F(HarnessTest, EmptyBucketMetricsAreZeroed) {
  // Force an empty bucket by using an impossible tau for bucketing.
  BucketedWorkload bw = BucketQueries(*scenario_->oracle, scenario_->evaluation,
                                      scenario_->options, 1e-6,
                                      BucketScheme::Exact0To4());
  // Everything lands in bucket 0 (no viable plans at tau ~ 0).
  EXPECT_EQ(bw.buckets[0].size(), scenario_->evaluation.size());
  ExperimentResult r = RunExperiment({ConstantApproach("a", 1.0, true)}, bw);
  for (size_t b = 1; b < r.buckets.size(); ++b) {
    EXPECT_EQ(r.buckets[b].num_queries, 0u);
  }
}

}  // namespace
}  // namespace maliva
