// Golden-trace regression tests (ISSUE 9): the committed trace +
// per-record digest files under tests/data/ pin the end-to-end behavior of
// the whole rewrite stack. Any change to QTE costs, agent training, session
// seeding, SQL rendering, or serving order that alters a single response
// shows up here as a digest mismatch — at 1/4/8 fleet threads, with the
// admission plane off and (permissively) on, with the profiler off and on.
//
// After an *intentional* behavior change, regenerate the goldens:
//   MALIVA_UPDATE_GOLDEN=1 ./build/maliva_tests --gtest_filter='ReplayDriverTest.*'
// and commit the rewritten tests/data/ files with the change.

#include "workload/replay_driver.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/replay_golden.h"

namespace maliva {
namespace {

std::string DataPath(const char* file) {
  return std::string(MALIVA_TEST_DATA_DIR) + "/" + file;
}

bool UpdateGoldenMode() { return std::getenv("MALIVA_UPDATE_GOLDEN") != nullptr; }

bool ReadFileText(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  *out = text.str();
  return true;
}

void WriteFileText(const std::string& path, const std::string& text) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << "cannot write " << path;
  out << text;
}

class ReplayDriverTest : public ::testing::Test {
 protected:
  // The two golden scenarios build once for the whole suite (the expensive
  // part); each leg's fleet borrows them.
  static void SetUpTestSuite() {
    workload_ = new replay_golden::GoldenWorkload(replay_golden::BuildGoldenWorkload());
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
  }

  /// Replays the golden trace closed-loop on one fleet variant.
  static ReplayReport ReplayLeg(size_t threads, bool admission, bool profiled,
                                size_t sample_every = 1) {
    FleetConfig cfg = replay_golden::GoldenFleetConfig(threads, admission);
    if (profiled) {
      cfg.defaults.WithProfileRequests(true).WithProfileSampleEvery(sample_every);
    }
    MalivaFleet fleet(cfg);
    Status registered = replay_golden::RegisterGolden(&fleet, workload_);
    EXPECT_TRUE(registered.ok()) << registered.ToString();
    ReplayDriver driver(&fleet);
    Result<ReplayReport> report =
        driver.Replay(replay_golden::GoldenTrace(), ReplayOptions());
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.value();
  }

  static replay_golden::GoldenWorkload* workload_;
};

replay_golden::GoldenWorkload* ReplayDriverTest::workload_ = nullptr;

TEST_F(ReplayDriverTest, GoldenTraceMatchesCommittedBytes) {
  std::string expected = replay_golden::GoldenTrace().Serialize();
  std::string path = DataPath(replay_golden::kTraceFile);
  if (UpdateGoldenMode()) {
    WriteFileText(path, expected);
    GTEST_SKIP() << "rewrote " << path;
  }
  std::string committed;
  ASSERT_TRUE(ReadFileText(path, &committed))
      << path << " missing — regenerate with MALIVA_UPDATE_GOLDEN=1";
  EXPECT_EQ(committed, expected)
      << "golden trace bytes drifted; if intentional, regenerate with "
         "MALIVA_UPDATE_GOLDEN=1 and commit";
}

TEST_F(ReplayDriverTest, GoldenDigestsStableAcrossFleetVariants) {
  // Reference: 1 thread, admission off, profiler off — the plainest serve
  // path there is.
  ReplayReport reference = ReplayLeg(1, false, false);
  ASSERT_EQ(reference.records, replay_golden::GoldenTrace().records.size());
  ASSERT_EQ(reference.ok, reference.records) << "golden replay must be all-OK";
  ASSERT_EQ(reference.record_digests.size(), reference.records);

  struct Leg {
    size_t threads;
    bool admission;
    bool profiled;
  };
  const Leg legs[] = {
      {4, false, false}, {8, false, false},           // thread counts
      {1, false, true},  {4, false, true}, {8, false, true},  // + profiler
      {4, true, false},  {8, true, true},             // + permissive admission
  };
  for (const Leg& leg : legs) {
    ReplayReport report = ReplayLeg(leg.threads, leg.admission, leg.profiled);
    EXPECT_EQ(report.record_digests, reference.record_digests)
        << "digest drift at threads=" << leg.threads
        << " admission=" << leg.admission << " profiled=" << leg.profiled;
    EXPECT_EQ(report.digest, reference.digest);
  }

  // Compare against (or regenerate) the committed digest file.
  std::string path = DataPath(replay_golden::kDigestFile);
  std::string expected = replay_golden::FormatDigests(reference.record_digests);
  if (UpdateGoldenMode()) {
    WriteFileText(path, expected);
    GTEST_SKIP() << "rewrote " << path;
  }
  std::string committed;
  ASSERT_TRUE(ReadFileText(path, &committed))
      << path << " missing — regenerate with MALIVA_UPDATE_GOLDEN=1";
  std::vector<uint64_t> committed_digests;
  ASSERT_TRUE(replay_golden::ParseDigests(committed, &committed_digests));
  EXPECT_EQ(committed_digests, reference.record_digests)
      << "end-to-end response digests drifted from tests/data/"
      << replay_golden::kDigestFile
      << "; if the behavior change is intentional, regenerate with "
         "MALIVA_UPDATE_GOLDEN=1 and commit";
}

TEST_F(ReplayDriverTest, ReportAggregatesPerScenario) {
  ReplayReport report = ReplayLeg(4, false, false);
  // The golden trace mixes twitter (weights 2+1) and tpch (weight 1) 3:1.
  ASSERT_EQ(report.scenarios.count("twitter"), 1u);
  ASSERT_EQ(report.scenarios.count("tpch"), 1u);
  EXPECT_EQ(report.scenarios["twitter"].records, 36u);
  EXPECT_EQ(report.scenarios["tpch"].records, 12u);
  EXPECT_EQ(report.scenarios["twitter"].ok +
                report.scenarios["tpch"].ok,
            report.ok);
  // tpch's 0.9 quality floor must force at least one exact fallback — the
  // digest set covers that path.
  EXPECT_GT(report.scenarios["tpch"].exact_fallbacks, 0u);
  EXPECT_EQ(report.scenarios["twitter"].exact_fallbacks, 0u);
  EXPECT_GE(report.p95_ms, report.p50_ms);
  EXPECT_GE(report.p99_ms, report.p95_ms);
}

TEST_F(ReplayDriverTest, ProfilerOnCarriesBreakdownsOffDoesNot) {
  ReplayReport off = ReplayLeg(1, false, false);
  EXPECT_EQ(off.profiled, 0u);
  ReplayReport on = ReplayLeg(1, false, true);
  EXPECT_EQ(on.profiled, on.records);
  EXPECT_GT(on.profile.TotalMs(ProfileBreakdown::kSearch), 0.0);
  EXPECT_GT(on.profile.phases[ProfileBreakdown::kSearch].count, 0u);
  // The ladder runs inside search: cumulative search >= nested selectivity.
  EXPECT_GE(on.profile.TotalMs(ProfileBreakdown::kSearch),
            on.profile.TotalMs(ProfileBreakdown::kSelectivity));
  // And the decision bytes are identical either way.
  EXPECT_EQ(on.record_digests, off.record_digests);
}

TEST_F(ReplayDriverTest, ProfileSamplingProfilesEveryNth) {
  ReplayReport sampled = ReplayLeg(1, false, true, /*sample_every=*/2);
  // Sampling is per-shard-index: twitter's 36-record slice profiles 18,
  // tpch's 12-record slice profiles 6.
  EXPECT_EQ(sampled.profiled, 24u);
}

TEST_F(ReplayDriverTest, OpenLoopRequiresAdmission) {
  MalivaFleet fleet(replay_golden::GoldenFleetConfig(2, /*admission=*/false));
  ASSERT_TRUE(replay_golden::RegisterGolden(&fleet, workload_).ok());
  ReplayDriver driver(&fleet);
  ReplayOptions open;
  open.open_loop = true;
  Result<ReplayReport> report = driver.Replay(replay_golden::GoldenTrace(), open);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), Status::Code::kFailedPrecondition);
}

TEST_F(ReplayDriverTest, OpenLoopThroughPermissiveGateMatchesClosedLoop) {
  // A gate too permissive to shed serves everything as asked, and with the
  // caches off each decision is order-independent — so even the open-loop
  // schedule reproduces the reference digests (replayed at 100x speed).
  ReplayReport reference = ReplayLeg(1, false, false);
  MalivaFleet fleet(replay_golden::GoldenFleetConfig(4, /*admission=*/true));
  ASSERT_TRUE(replay_golden::RegisterGolden(&fleet, workload_).ok());
  ReplayDriver driver(&fleet);
  ReplayOptions open;
  open.open_loop = true;
  open.time_scale = 0.01;
  Result<ReplayReport> report = driver.Replay(replay_golden::GoldenTrace(), open);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().ok, report.value().records);
  EXPECT_EQ(report.value().shed_deadline + report.value().shed_overload, 0u);
  EXPECT_EQ(report.value().record_digests, reference.record_digests);
}

TEST_F(ReplayDriverTest, RejectsInvalidReplayInputs) {
  MalivaFleet fleet(replay_golden::GoldenFleetConfig(1, false));
  ASSERT_TRUE(replay_golden::RegisterGolden(&fleet, workload_).ok());
  ReplayDriver driver(&fleet);

  Trace empty;
  empty.name = "empty";
  EXPECT_FALSE(driver.Replay(empty).ok());

  // Unknown scenario routing key.
  TraceBuilder builder("unknown", 1);
  TraceStream s;
  s.scenario = "no-such-shard";
  s.num_queries = 4;
  builder.AddStream(s).SteadyPhase(100.0, 4);
  Result<ReplayReport> report = driver.Replay(builder.Build());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), Status::Code::kNotFound);
}

TEST_F(ReplayDriverTest, DigestIgnoresRunVaryingStats) {
  RewriteResponse a;
  a.strategy = "mdp/accurate";
  a.rewritten_sql = "SELECT 1";
  a.outcome.total_ms = 12.5;
  RewriteResponse b = a;
  b.stats.serve_wall_ms = 99.0;
  b.stats.queue_wait_ms = 3.0;
  b.stats.result_cache_hit = true;
  b.stats.profile.emplace();
  EXPECT_EQ(ReplayDriver::ResponseDigest(Result<RewriteResponse>(a)),
            ReplayDriver::ResponseDigest(Result<RewriteResponse>(b)));
  // But any decision byte matters.
  RewriteResponse c = a;
  c.outcome.total_ms = 12.5000001;
  EXPECT_NE(ReplayDriver::ResponseDigest(Result<RewriteResponse>(a)),
            ReplayDriver::ResponseDigest(Result<RewriteResponse>(c)));
}

TEST_F(ReplayDriverTest, DigestSeparatesErrorCodes) {
  Result<RewriteResponse> shed_deadline(Status::DeadlineExceeded("x"));
  Result<RewriteResponse> shed_overload(Status::ResourceExhausted("y"));
  EXPECT_NE(ReplayDriver::ResponseDigest(shed_deadline),
            ReplayDriver::ResponseDigest(shed_overload));
  // Messages are excluded: same code, different message, same digest.
  Result<RewriteResponse> other(Status::DeadlineExceeded("different message"));
  EXPECT_EQ(ReplayDriver::ResponseDigest(shed_deadline),
            ReplayDriver::ResponseDigest(other));
}

}  // namespace
}  // namespace maliva
