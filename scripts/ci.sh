#!/usr/bin/env bash
# Tier-1 verification sequence: configure, build, test.
#
# The service layer (src/service/) is held to -Wall -Wextra with warnings
# treated as errors; the rest of the tree builds with default flags.
#
#   scripts/ci.sh          # regular build + full test suite
#   scripts/ci.sh --tsan   # additionally: ThreadSanitizer build (build-tsan/)
#                          # running the service/concurrency suites
#   scripts/ci.sh --asan   # additionally: AddressSanitizer build (build-asan/)
#                          # running the same suites (store stress included)
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=0
run_asan=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    --asan) run_asan=1 ;;
    *) echo "unknown option: $arg (supported: --tsan, --asan)" >&2; exit 2 ;;
  esac
done

cmake -B build -S . -DMALIVA_SERVICE_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Both sanitizer legs run the service + concurrency suites (which include
# the SharedSelectivityStore stress test) — training-heavy suites are slow
# under sanitizers and exercise no additional threading or ownership.
sanitizer_suites='Service|Concurrency'

if [[ "$run_tsan" == 1 ]]; then
  # TSan pass over the concurrent serving core: parallel ServeBatch, lazy
  # strategy builds, the memoized oracles, and the sharded shared store.
  cmake -B build-tsan -S . -DMALIVA_TSAN=ON \
    -DMALIVA_BUILD_BENCHES=OFF -DMALIVA_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j"$(nproc)" --target maliva_tests
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
      -R "$sanitizer_suites"
fi

if [[ "$run_asan" == 1 ]]; then
  # ASan pass over the same suites: store eviction/epoch churn, session
  # cache ownership, interned option sets.
  cmake -B build-asan -S . -DMALIVA_ASAN=ON \
    -DMALIVA_BUILD_BENCHES=OFF -DMALIVA_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j"$(nproc)" --target maliva_tests
  ASAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j"$(nproc)" \
      -R "$sanitizer_suites"
fi
