#!/usr/bin/env bash
# Tier-1 verification sequence: docs check, configure, build, test.
#
# The service layer (src/service/) is held to -Wall -Wextra with warnings
# treated as errors; the rest of the tree builds with default flags.
#
#   scripts/ci.sh          # docs check + regular build + full test suite
#   scripts/ci.sh --docs   # docs check only (no build): README/docs/DESIGN
#                          # relative links resolve, and every bench_*.cc has
#                          # a docs/experiments.md entry
#   scripts/ci.sh --tsan   # additionally: ThreadSanitizer build (build-tsan/)
#                          # running the service/concurrency suites
#   scripts/ci.sh --asan   # additionally: AddressSanitizer build (build-asan/)
#                          # running the same suites (store stress included)
set -euo pipefail

cd "$(dirname "$0")/.."

# Docs leg: every relative markdown link in README.md, DESIGN.md, and docs/
# must resolve to a file or directory, and every bench binary must have an
# entry in docs/experiments.md (the authoritative experiment index).
check_docs() {
  echo "== docs check: links + experiment coverage =="
  local fail=0
  local doc dir link target
  for doc in README.md DESIGN.md docs/*.md; do
    [[ -f "$doc" ]] || continue
    dir="$(dirname "$doc")"
    # Markdown link targets: the (...) of ](...) occurrences, with fenced
    # code blocks skipped (example snippets are not links) and optional
    # quoted titles ([text](file "title")) stripped.
    while IFS= read -r link; do
      case "$link" in
        http://*|https://*|mailto:*|\#*) continue ;;
      esac
      target="${link%%#*}"
      target="${target%% \"*}"
      [[ -n "$target" ]] || continue
      if [[ ! -e "$dir/$target" ]]; then
        echo "BROKEN LINK in $doc: ($link)"
        fail=1
      fi
    done < <(awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$doc" \
               | grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//')
  done
  local bench name
  for bench in bench/bench_*.cc; do
    name="$(basename "$bench" .cc)"
    if ! grep -q "$name" docs/experiments.md; then
      echo "MISSING EXPERIMENT DOC: $name has no entry in docs/experiments.md"
      fail=1
    fi
  done
  if [[ "$fail" != 0 ]]; then
    echo "docs check FAILED" >&2
    exit 1
  fi
  echo "docs check OK"
}

run_tsan=0
run_asan=0
docs_only=0
for arg in "$@"; do
  case "$arg" in
    --docs) docs_only=1 ;;
    --tsan) run_tsan=1 ;;
    --asan) run_asan=1 ;;
    *) echo "unknown option: $arg (supported: --docs, --tsan, --asan)" >&2; exit 2 ;;
  esac
done

check_docs
if [[ "$docs_only" == 1 && "$run_tsan" == 0 && "$run_asan" == 0 ]]; then
  exit 0
fi

cmake -B build -S . -DMALIVA_SERVICE_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# Overload-plane smoke: a seconds-scale bench_overload run must pass its own
# acceptance checks (nonzero shed + degrade, admitted p95 inside the budget)
# and emit parseable JSON.
echo "== overload smoke: bench_overload --smoke =="
./build/bench_overload --smoke --out build/BENCH_admission.json
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json; json.load(open('build/BENCH_admission.json'))" \
    || { echo "BENCH_admission.json is not valid JSON" >&2; exit 1; }
  echo "BENCH_admission.json parses as JSON"
else
  echo "python3 unavailable; skipping JSON validation"
fi

# Selectivity-tier smoke: a seconds-scale bench_selectivity_tiers run must
# pass its own acceptance checks (>=2x cold-serve speedup with the histogram
# tier on, estimate error below the demotion threshold, rung-1 hits on the
# warm pass) and emit JSON with the expected schema.
echo "== selectivity-tier smoke: bench_selectivity_tiers --smoke =="
./build/bench_selectivity_tiers --smoke --out build/BENCH_selectivity.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || { echo "BENCH_selectivity.json schema check failed" >&2; exit 1; }
import json
d = json.load(open('build/BENCH_selectivity.json'))
assert d['bench'] == 'bench_selectivity_tiers'
for key in ('off_qps', 'on_qps', 'speedup', 'on_histogram_slots'):
    assert key in d['cold'], key
assert d['cold']['on_histogram_slots'] > 0
assert d['accuracy']['mean_abs_rel_error'] < d['accuracy']['demotion_threshold']
for rung in ('shared', 'histogram', 'probe'):
    assert rung in d['ladder']['pass1'] and rung in d['ladder']['pass2'], rung
EOF
  echo "BENCH_selectivity.json schema OK"
else
  echo "python3 unavailable; skipping JSON validation"
fi

# Rewrite-cache smoke: a seconds-scale bench_rewrite_cache run must pass its
# own acceptance checks (>=3x hot-stream speedup with the cache on, zero
# hit/miss byte mismatches, single-flight + in-batch dedup coalescing) and
# emit JSON with the expected schema.
echo "== rewrite-cache smoke: bench_rewrite_cache --smoke =="
./build/bench_rewrite_cache --smoke --out build/BENCH_rewrite_cache.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || { echo "BENCH_rewrite_cache.json schema check failed" >&2; exit 1; }
import json
d = json.load(open('build/BENCH_rewrite_cache.json'))
assert d['bench'] == 'bench_rewrite_cache'
for key in ('off_qps', 'on_qps', 'speedup', 'hits', 'misses'):
    assert key in d['hot'], key
assert d['hot']['speedup'] >= 3.0
assert d['equality']['compared'] > 0 and d['equality']['mismatches'] == 0
assert d['burst']['searches'] < d['burst']['threads']
assert d['batch']['searches'] == 1
assert d['batch']['replays'] == d['batch']['copies'] - 1
EOF
  echo "BENCH_rewrite_cache.json schema OK"
else
  echo "python3 unavailable; skipping JSON validation"
fi

# Replay smoke: a seconds-scale bench_replay run must pass its own
# acceptance checks (golden-trace digests identical across thread counts and
# profiler/admission variants AND matching the committed tests/data goldens;
# overload phase degrades + sheds; burst phase sheds on queue overflow) and
# emit JSON with the expected schema.
echo "== replay smoke: bench_replay --smoke =="
./build/bench_replay --smoke --out build/BENCH_replay.json
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF' || { echo "BENCH_replay.json schema check failed" >&2; exit 1; }
import json
d = json.load(open('build/BENCH_replay.json'))
assert d['bench'] == 'bench_replay'
assert d['determinism']['match'] is True
assert d['determinism']['golden'] == 'ok'
for phase in ('steady', 'overload_2x', 'flash_burst'):
    p = d['phases'][phase]
    assert 'latency_ms' in p and 'scenarios' in p, phase
    assert p['errors'] == 0, phase
over = d['phases']['overload_2x']
assert over['degraded'] + over['shed_overload'] + over['shed_deadline'] > 0
assert d['phases']['flash_burst']['shed_overload'] > 0
prof = d['phases']['golden_profiled']
assert prof['profiled'] == prof['records'] > 0
assert prof['profile_ms']['search'] > 0.0
EOF
  echo "BENCH_replay.json schema OK"
else
  echo "python3 unavailable; skipping JSON validation"
fi

# Both sanitizer legs run the service + concurrency + fleet + admission
# suites (which include the SharedSelectivityStore stress test, the shard
# plane's register/serve/drain stress test, and the overload plane's
# serve-under-overload stress test) plus the selectivity-ladder suites —
# training-heavy suites are slow under sanitizers and exercise no additional
# threading or ownership.
sanitizer_suites='Service|Concurrency|Fleet|Admission|Histogram|SelectivityTier|ResultCache|Replay|Profiler'

if [[ "$run_tsan" == 1 ]]; then
  # TSan pass over the concurrent serving core: parallel ServeBatch, lazy
  # strategy builds, the memoized oracles, and the sharded shared store.
  cmake -B build-tsan -S . -DMALIVA_TSAN=ON \
    -DMALIVA_BUILD_BENCHES=OFF -DMALIVA_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j"$(nproc)" --target maliva_tests
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
      -R "$sanitizer_suites"
fi

if [[ "$run_asan" == 1 ]]; then
  # ASan pass over the same suites: store eviction/epoch churn, session
  # cache ownership, interned option sets.
  cmake -B build-asan -S . -DMALIVA_ASAN=ON \
    -DMALIVA_BUILD_BENCHES=OFF -DMALIVA_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j"$(nproc)" --target maliva_tests
  ASAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j"$(nproc)" \
      -R "$sanitizer_suites"
fi
