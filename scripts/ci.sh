#!/usr/bin/env bash
# Tier-1 verification sequence: docs check, configure, build, test.
#
# The service layer (src/service/) is held to -Wall -Wextra with warnings
# treated as errors; the rest of the tree builds with default flags.
#
#   scripts/ci.sh          # docs check + regular build + full test suite
#   scripts/ci.sh --docs   # docs check only (no build): README/docs/DESIGN
#                          # relative links resolve, and every bench_*.cc has
#                          # a docs/experiments.md entry
#   scripts/ci.sh --tsan   # additionally: ThreadSanitizer build (build-tsan/)
#                          # running the service/concurrency suites
#   scripts/ci.sh --asan   # additionally: AddressSanitizer build (build-asan/)
#                          # running the same suites (store stress included)
set -euo pipefail

cd "$(dirname "$0")/.."

# Docs leg: every relative markdown link in README.md, DESIGN.md, and docs/
# must resolve to a file or directory, and every bench binary must have an
# entry in docs/experiments.md (the authoritative experiment index).
check_docs() {
  echo "== docs check: links + experiment coverage =="
  local fail=0
  local doc dir link target
  for doc in README.md DESIGN.md docs/*.md; do
    [[ -f "$doc" ]] || continue
    dir="$(dirname "$doc")"
    # Markdown link targets: the (...) of ](...) occurrences, with fenced
    # code blocks skipped (example snippets are not links) and optional
    # quoted titles ([text](file "title")) stripped.
    while IFS= read -r link; do
      case "$link" in
        http://*|https://*|mailto:*|\#*) continue ;;
      esac
      target="${link%%#*}"
      target="${target%% \"*}"
      [[ -n "$target" ]] || continue
      if [[ ! -e "$dir/$target" ]]; then
        echo "BROKEN LINK in $doc: ($link)"
        fail=1
      fi
    done < <(awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$doc" \
               | grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//')
  done
  local bench name
  for bench in bench/bench_*.cc; do
    name="$(basename "$bench" .cc)"
    if ! grep -q "$name" docs/experiments.md; then
      echo "MISSING EXPERIMENT DOC: $name has no entry in docs/experiments.md"
      fail=1
    fi
  done
  if [[ "$fail" != 0 ]]; then
    echo "docs check FAILED" >&2
    exit 1
  fi
  echo "docs check OK"
}

run_tsan=0
run_asan=0
docs_only=0
for arg in "$@"; do
  case "$arg" in
    --docs) docs_only=1 ;;
    --tsan) run_tsan=1 ;;
    --asan) run_asan=1 ;;
    *) echo "unknown option: $arg (supported: --docs, --tsan, --asan)" >&2; exit 2 ;;
  esac
done

check_docs
if [[ "$docs_only" == 1 && "$run_tsan" == 0 && "$run_asan" == 0 ]]; then
  exit 0
fi

cmake -B build -S . -DMALIVA_SERVICE_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

# One bench smoke leg: run `./build/<bench> --smoke --out build/<json>` (the
# binary's own acceptance checks gate the exit code), then validate the
# emitted JSON against the schema snippet fed on stdin (python3 source
# reading the path from $BENCH_JSON; validation is skipped when python3 is
# unavailable).
run_bench_smoke() {
  local title="$1" bench="$2" json="$3"
  local schema
  schema="$(cat)"
  echo "== ${title}: ${bench} --smoke =="
  "./build/${bench}" --smoke --out "build/${json}"
  if command -v python3 >/dev/null 2>&1; then
    BENCH_JSON="build/${json}" python3 -c "$schema" \
      || { echo "${json} schema check failed" >&2; exit 1; }
    echo "${json} schema OK"
  else
    echo "python3 unavailable; skipping JSON validation"
  fi
}

# Overload-plane smoke: nonzero shed + degrade, admitted p95 inside the
# budget (the binary's checks); the JSON must parse.
run_bench_smoke "overload smoke" bench_overload BENCH_admission.json <<'EOF'
import json, os
json.load(open(os.environ['BENCH_JSON']))
EOF

# Selectivity-tier smoke: >=2x cold-serve speedup with the histogram tier
# on, estimate error below the demotion threshold, rung-1 hits on the warm
# pass.
run_bench_smoke "selectivity-tier smoke" bench_selectivity_tiers BENCH_selectivity.json <<'EOF'
import json, os
d = json.load(open(os.environ['BENCH_JSON']))
assert d['bench'] == 'bench_selectivity_tiers'
for key in ('off_qps', 'on_qps', 'speedup', 'on_histogram_slots'):
    assert key in d['cold'], key
assert d['cold']['on_histogram_slots'] > 0
assert d['accuracy']['mean_abs_rel_error'] < d['accuracy']['demotion_threshold']
for rung in ('shared', 'histogram', 'probe'):
    assert rung in d['ladder']['pass1'] and rung in d['ladder']['pass2'], rung
EOF

# Rewrite-cache smoke: >=3x hot-stream speedup with the cache on, zero
# hit/miss byte mismatches, single-flight + in-batch dedup coalescing.
run_bench_smoke "rewrite-cache smoke" bench_rewrite_cache BENCH_rewrite_cache.json <<'EOF'
import json, os
d = json.load(open(os.environ['BENCH_JSON']))
assert d['bench'] == 'bench_rewrite_cache'
for key in ('off_qps', 'on_qps', 'speedup', 'hits', 'misses'):
    assert key in d['hot'], key
assert d['hot']['speedup'] >= 3.0
assert d['equality']['compared'] > 0 and d['equality']['mismatches'] == 0
assert d['burst']['searches'] < d['burst']['threads']
assert d['batch']['searches'] == 1
assert d['batch']['replays'] == d['batch']['copies'] - 1
EOF

# Replay smoke: golden-trace digests identical across thread counts and
# profiler/admission variants AND matching the committed tests/data goldens;
# overload phase degrades + sheds (and trips the SLO watchdog, while the
# steady phase does not); burst phase sheds on queue overflow.
run_bench_smoke "replay smoke" bench_replay BENCH_replay.json <<'EOF'
import json, os
d = json.load(open(os.environ['BENCH_JSON']))
assert d['bench'] == 'bench_replay'
assert d['determinism']['match'] is True
assert d['determinism']['golden'] == 'ok'
for phase in ('steady', 'overload_2x', 'flash_burst'):
    p = d['phases'][phase]
    assert 'latency_ms' in p and 'scenarios' in p, phase
    assert p['errors'] == 0, phase
over = d['phases']['overload_2x']
assert over['degraded'] + over['shed_overload'] + over['shed_deadline'] > 0
assert d['phases']['flash_burst']['shed_overload'] > 0
assert not any(s['breached'] for s in d['slo']['steady'])
assert any(s['breached'] for s in d['slo']['overload_2x'])
prof = d['phases']['golden_profiled']
assert prof['profiled'] == prof['records'] > 0
assert prof['profile_ms']['search'] > 0.0
EOF

# Metrics-plane smoke: zero registry lookups on the serve hot path, decision
# byte-identity with metrics on, one flusher window carrying every serve,
# exporters rendering the expected series, bounded trace-ring retention.
run_bench_smoke "metrics-plane smoke" bench_metrics_plane BENCH_metrics.json <<'EOF'
import json, os
d = json.load(open(os.environ['BENCH_JSON']))
assert d['bench'] == 'bench_metrics_plane'
assert d['serve_lookups'] == 0
assert d['bytes_identical'] is True
assert d['window_requests'] == d['serves'] > 0
assert d['prometheus_bytes'] > 0 and d['json_bytes'] > 0
assert d['ring_appended'] >= d['ring_retained'] > 0
EOF

# Both sanitizer legs run the service + concurrency + fleet + admission
# suites (which include the SharedSelectivityStore stress test, the shard
# plane's register/serve/drain stress test, and the overload plane's
# serve-under-overload stress test) plus the selectivity-ladder suites —
# training-heavy suites are slow under sanitizers and exercise no additional
# threading or ownership.
sanitizer_suites='Service|Concurrency|Fleet|Admission|Histogram|SelectivityTier|ResultCache|Replay|Profiler|Metrics|TraceRing'

if [[ "$run_tsan" == 1 ]]; then
  # TSan pass over the concurrent serving core: parallel ServeBatch, lazy
  # strategy builds, the memoized oracles, and the sharded shared store.
  cmake -B build-tsan -S . -DMALIVA_TSAN=ON \
    -DMALIVA_BUILD_BENCHES=OFF -DMALIVA_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j"$(nproc)" --target maliva_tests
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
      -R "$sanitizer_suites"
fi

if [[ "$run_asan" == 1 ]]; then
  # ASan pass over the same suites: store eviction/epoch churn, session
  # cache ownership, interned option sets.
  cmake -B build-asan -S . -DMALIVA_ASAN=ON \
    -DMALIVA_BUILD_BENCHES=OFF -DMALIVA_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j"$(nproc)" --target maliva_tests
  ASAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j"$(nproc)" \
      -R "$sanitizer_suites"
fi
