#!/usr/bin/env bash
# Tier-1 verification sequence: configure, build, test.
#
# The service layer (src/service/) is held to -Wall -Wextra with warnings
# treated as errors; the rest of the tree builds with default flags.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . -DMALIVA_SERVICE_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
