# Empty dependencies file for maliva.
# This may be replaced when dependencies are built.
