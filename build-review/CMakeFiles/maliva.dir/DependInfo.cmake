
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bao.cc" "CMakeFiles/maliva.dir/src/baselines/bao.cc.o" "gcc" "CMakeFiles/maliva.dir/src/baselines/bao.cc.o.d"
  "/root/repo/src/baselines/baseline.cc" "CMakeFiles/maliva.dir/src/baselines/baseline.cc.o" "gcc" "CMakeFiles/maliva.dir/src/baselines/baseline.cc.o.d"
  "/root/repo/src/core/agent.cc" "CMakeFiles/maliva.dir/src/core/agent.cc.o" "gcc" "CMakeFiles/maliva.dir/src/core/agent.cc.o.d"
  "/root/repo/src/core/query_env.cc" "CMakeFiles/maliva.dir/src/core/query_env.cc.o" "gcc" "CMakeFiles/maliva.dir/src/core/query_env.cc.o.d"
  "/root/repo/src/core/rewriter.cc" "CMakeFiles/maliva.dir/src/core/rewriter.cc.o" "gcc" "CMakeFiles/maliva.dir/src/core/rewriter.cc.o.d"
  "/root/repo/src/core/trainer.cc" "CMakeFiles/maliva.dir/src/core/trainer.cc.o" "gcc" "CMakeFiles/maliva.dir/src/core/trainer.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "CMakeFiles/maliva.dir/src/engine/cost_model.cc.o" "gcc" "CMakeFiles/maliva.dir/src/engine/cost_model.cc.o.d"
  "/root/repo/src/engine/engine.cc" "CMakeFiles/maliva.dir/src/engine/engine.cc.o" "gcc" "CMakeFiles/maliva.dir/src/engine/engine.cc.o.d"
  "/root/repo/src/engine/optimizer.cc" "CMakeFiles/maliva.dir/src/engine/optimizer.cc.o" "gcc" "CMakeFiles/maliva.dir/src/engine/optimizer.cc.o.d"
  "/root/repo/src/engine/profile.cc" "CMakeFiles/maliva.dir/src/engine/profile.cc.o" "gcc" "CMakeFiles/maliva.dir/src/engine/profile.cc.o.d"
  "/root/repo/src/engine/table_stats.cc" "CMakeFiles/maliva.dir/src/engine/table_stats.cc.o" "gcc" "CMakeFiles/maliva.dir/src/engine/table_stats.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "CMakeFiles/maliva.dir/src/harness/experiment.cc.o" "gcc" "CMakeFiles/maliva.dir/src/harness/experiment.cc.o.d"
  "/root/repo/src/harness/setup.cc" "CMakeFiles/maliva.dir/src/harness/setup.cc.o" "gcc" "CMakeFiles/maliva.dir/src/harness/setup.cc.o.d"
  "/root/repo/src/index/btree_index.cc" "CMakeFiles/maliva.dir/src/index/btree_index.cc.o" "gcc" "CMakeFiles/maliva.dir/src/index/btree_index.cc.o.d"
  "/root/repo/src/index/hash_index.cc" "CMakeFiles/maliva.dir/src/index/hash_index.cc.o" "gcc" "CMakeFiles/maliva.dir/src/index/hash_index.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "CMakeFiles/maliva.dir/src/index/inverted_index.cc.o" "gcc" "CMakeFiles/maliva.dir/src/index/inverted_index.cc.o.d"
  "/root/repo/src/index/rowset.cc" "CMakeFiles/maliva.dir/src/index/rowset.cc.o" "gcc" "CMakeFiles/maliva.dir/src/index/rowset.cc.o.d"
  "/root/repo/src/index/rtree_index.cc" "CMakeFiles/maliva.dir/src/index/rtree_index.cc.o" "gcc" "CMakeFiles/maliva.dir/src/index/rtree_index.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "CMakeFiles/maliva.dir/src/ml/mlp.cc.o" "gcc" "CMakeFiles/maliva.dir/src/ml/mlp.cc.o.d"
  "/root/repo/src/ml/replay_buffer.cc" "CMakeFiles/maliva.dir/src/ml/replay_buffer.cc.o" "gcc" "CMakeFiles/maliva.dir/src/ml/replay_buffer.cc.o.d"
  "/root/repo/src/qte/accurate_qte.cc" "CMakeFiles/maliva.dir/src/qte/accurate_qte.cc.o" "gcc" "CMakeFiles/maliva.dir/src/qte/accurate_qte.cc.o.d"
  "/root/repo/src/qte/plan_time_oracle.cc" "CMakeFiles/maliva.dir/src/qte/plan_time_oracle.cc.o" "gcc" "CMakeFiles/maliva.dir/src/qte/plan_time_oracle.cc.o.d"
  "/root/repo/src/qte/qte.cc" "CMakeFiles/maliva.dir/src/qte/qte.cc.o" "gcc" "CMakeFiles/maliva.dir/src/qte/qte.cc.o.d"
  "/root/repo/src/qte/sampling_qte.cc" "CMakeFiles/maliva.dir/src/qte/sampling_qte.cc.o" "gcc" "CMakeFiles/maliva.dir/src/qte/sampling_qte.cc.o.d"
  "/root/repo/src/quality/quality.cc" "CMakeFiles/maliva.dir/src/quality/quality.cc.o" "gcc" "CMakeFiles/maliva.dir/src/quality/quality.cc.o.d"
  "/root/repo/src/query/hints.cc" "CMakeFiles/maliva.dir/src/query/hints.cc.o" "gcc" "CMakeFiles/maliva.dir/src/query/hints.cc.o.d"
  "/root/repo/src/query/predicate.cc" "CMakeFiles/maliva.dir/src/query/predicate.cc.o" "gcc" "CMakeFiles/maliva.dir/src/query/predicate.cc.o.d"
  "/root/repo/src/query/query.cc" "CMakeFiles/maliva.dir/src/query/query.cc.o" "gcc" "CMakeFiles/maliva.dir/src/query/query.cc.o.d"
  "/root/repo/src/service/rewriter_factory.cc" "CMakeFiles/maliva.dir/src/service/rewriter_factory.cc.o" "gcc" "CMakeFiles/maliva.dir/src/service/rewriter_factory.cc.o.d"
  "/root/repo/src/service/service.cc" "CMakeFiles/maliva.dir/src/service/service.cc.o" "gcc" "CMakeFiles/maliva.dir/src/service/service.cc.o.d"
  "/root/repo/src/storage/column.cc" "CMakeFiles/maliva.dir/src/storage/column.cc.o" "gcc" "CMakeFiles/maliva.dir/src/storage/column.cc.o.d"
  "/root/repo/src/storage/table.cc" "CMakeFiles/maliva.dir/src/storage/table.cc.o" "gcc" "CMakeFiles/maliva.dir/src/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "CMakeFiles/maliva.dir/src/storage/value.cc.o" "gcc" "CMakeFiles/maliva.dir/src/storage/value.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/maliva.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/maliva.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/maliva.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/maliva.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/string_util.cc" "CMakeFiles/maliva.dir/src/util/string_util.cc.o" "gcc" "CMakeFiles/maliva.dir/src/util/string_util.cc.o.d"
  "/root/repo/src/workload/difficulty.cc" "CMakeFiles/maliva.dir/src/workload/difficulty.cc.o" "gcc" "CMakeFiles/maliva.dir/src/workload/difficulty.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "CMakeFiles/maliva.dir/src/workload/query_gen.cc.o" "gcc" "CMakeFiles/maliva.dir/src/workload/query_gen.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "CMakeFiles/maliva.dir/src/workload/scenario.cc.o" "gcc" "CMakeFiles/maliva.dir/src/workload/scenario.cc.o.d"
  "/root/repo/src/workload/taxi.cc" "CMakeFiles/maliva.dir/src/workload/taxi.cc.o" "gcc" "CMakeFiles/maliva.dir/src/workload/taxi.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "CMakeFiles/maliva.dir/src/workload/tpch.cc.o" "gcc" "CMakeFiles/maliva.dir/src/workload/tpch.cc.o.d"
  "/root/repo/src/workload/twitter.cc" "CMakeFiles/maliva.dir/src/workload/twitter.cc.o" "gcc" "CMakeFiles/maliva.dir/src/workload/twitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
