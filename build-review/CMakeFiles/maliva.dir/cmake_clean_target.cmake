file(REMOVE_RECURSE
  "libmaliva.a"
)
