# Empty dependencies file for maliva_tests.
# This may be replaced when dependencies are built.
