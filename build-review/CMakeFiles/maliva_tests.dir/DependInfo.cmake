
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "CMakeFiles/maliva_tests.dir/tests/baselines_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/baselines_test.cc.o.d"
  "/root/repo/tests/core_agent_test.cc" "CMakeFiles/maliva_tests.dir/tests/core_agent_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/core_agent_test.cc.o.d"
  "/root/repo/tests/core_env_test.cc" "CMakeFiles/maliva_tests.dir/tests/core_env_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/core_env_test.cc.o.d"
  "/root/repo/tests/core_rewriter_test.cc" "CMakeFiles/maliva_tests.dir/tests/core_rewriter_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/core_rewriter_test.cc.o.d"
  "/root/repo/tests/core_trainer_test.cc" "CMakeFiles/maliva_tests.dir/tests/core_trainer_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/core_trainer_test.cc.o.d"
  "/root/repo/tests/engine_approx_test.cc" "CMakeFiles/maliva_tests.dir/tests/engine_approx_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/engine_approx_test.cc.o.d"
  "/root/repo/tests/engine_cost_test.cc" "CMakeFiles/maliva_tests.dir/tests/engine_cost_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/engine_cost_test.cc.o.d"
  "/root/repo/tests/engine_exec_test.cc" "CMakeFiles/maliva_tests.dir/tests/engine_exec_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/engine_exec_test.cc.o.d"
  "/root/repo/tests/engine_join_test.cc" "CMakeFiles/maliva_tests.dir/tests/engine_join_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/engine_join_test.cc.o.d"
  "/root/repo/tests/engine_stats_test.cc" "CMakeFiles/maliva_tests.dir/tests/engine_stats_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/engine_stats_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "CMakeFiles/maliva_tests.dir/tests/harness_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/harness_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "CMakeFiles/maliva_tests.dir/tests/index_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/index_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "CMakeFiles/maliva_tests.dir/tests/integration_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/integration_test.cc.o.d"
  "/root/repo/tests/ml_test.cc" "CMakeFiles/maliva_tests.dir/tests/ml_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/ml_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "CMakeFiles/maliva_tests.dir/tests/optimizer_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/optimizer_test.cc.o.d"
  "/root/repo/tests/qte_test.cc" "CMakeFiles/maliva_tests.dir/tests/qte_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/qte_test.cc.o.d"
  "/root/repo/tests/quality_test.cc" "CMakeFiles/maliva_tests.dir/tests/quality_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/quality_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "CMakeFiles/maliva_tests.dir/tests/query_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/query_test.cc.o.d"
  "/root/repo/tests/service_concurrency_test.cc" "CMakeFiles/maliva_tests.dir/tests/service_concurrency_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/service_concurrency_test.cc.o.d"
  "/root/repo/tests/service_test.cc" "CMakeFiles/maliva_tests.dir/tests/service_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/service_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "CMakeFiles/maliva_tests.dir/tests/storage_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/storage_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "CMakeFiles/maliva_tests.dir/tests/util_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/util_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "CMakeFiles/maliva_tests.dir/tests/workload_test.cc.o" "gcc" "CMakeFiles/maliva_tests.dir/tests/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/maliva.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
