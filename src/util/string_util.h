// String helpers for keyword tokenization and table rendering.

#ifndef MALIVA_UTIL_STRING_UTIL_H_
#define MALIVA_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace maliva {

/// Lower-cases ASCII letters in place-copy.
std::string ToLower(const std::string& s);

/// Splits on non-alphanumeric characters, lower-casing tokens and dropping
/// empties. This mirrors the tokenizer used to build the inverted text index.
std::vector<std::string> Tokenize(const std::string& text);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, const std::string& sep);

/// Fixed-point rendering with `digits` decimals (for table output).
std::string FormatDouble(double v, int digits);

}  // namespace maliva

#endif  // MALIVA_UTIL_STRING_UTIL_H_
