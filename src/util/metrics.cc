#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace maliva {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

/// Prometheus/JSON label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// {k="v",...} rendering shared by series keys and Prometheus samples;
/// `extra` appends one more pair (the summary quantile label).
std::string RenderLabels(const MetricLabels& labels,
                         const std::pair<std::string, std::string>* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    AppendF(&out, "%s%s=\"%s\"", first ? "" : ",", k.c_str(),
            EscapeLabelValue(v).c_str());
    first = false;
  }
  if (extra != nullptr) {
    AppendF(&out, "%s%s=\"%s\"", first ? "" : ",", extra->first.c_str(),
            EscapeLabelValue(extra->second).c_str());
  }
  out += "}";
  return out;
}

/// Deterministic short float rendering for exporters.
std::string FormatDouble(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

constexpr double kSummaryQuantiles[] = {0.5, 0.9, 0.95, 0.99, 0.999};
constexpr const char* kSummaryQuantileNames[] = {"0.5", "0.9", "0.95", "0.99",
                                                 "0.999"};
constexpr const char* kSummaryJsonKeys[] = {"p50", "p90", "p95", "p99", "p999"};
constexpr size_t kNumSummaryQuantiles =
    sizeof(kSummaryQuantiles) / sizeof(kSummaryQuantiles[0]);

/// Orders snapshot rows by (name, labels) so equal-name series stay
/// contiguous for the one-TYPE-line-per-metric rendering (the combined
/// series-key string would interleave names: '{' compares above letters).
template <typename Row>
bool RowLess(const Row& a, const Row& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

template <typename Row>
void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), RowLess<Row>);
}

/// Merge helper: for each row of `from`, fold into the matching (name,
/// labels) row of `into` via `fold`, inserting a copy when absent.
template <typename Row, typename Fold>
void MergeRows(std::vector<Row>* into, const std::vector<Row>& from, Fold fold) {
  for (const Row& row : from) {
    auto it = std::lower_bound(into->begin(), into->end(), row, RowLess<Row>);
    if (it != into->end() && it->name == row.name && it->labels == row.labels) {
      fold(&*it, row);
    } else {
      into->insert(it, row);
    }
  }
}

/// Delta helper: new_rows minus the matching old rows via `sub` (absent old
/// row = zero).
template <typename Row, typename Sub>
std::vector<Row> DeltaRows(const std::vector<Row>& later,
                           const std::vector<Row>& earlier, Sub sub) {
  std::vector<Row> out;
  out.reserve(later.size());
  for (const Row& row : later) {
    auto it = std::lower_bound(earlier.begin(), earlier.end(), row, RowLess<Row>);
    Row delta = row;
    if (it != earlier.end() && it->name == row.name && it->labels == row.labels) {
      sub(&delta, *it);
    }
    out.push_back(std::move(delta));
  }
  return out;
}

bool LabelsContain(const MetricLabels& labels, const MetricLabels& match) {
  for (const auto& want : match) {
    bool found = false;
    for (const auto& have : labels) {
      if (have == want) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

// ------------------------------------------------------------- histogram ---

uint64_t LatencyHistogram::TicksFor(double ms) {
  if (!(ms > 0.0)) return 0;  // NaN and negatives clamp to zero
  const double us = ms * 1000.0;
  if (us >= static_cast<double>(kMaxTicks)) return kMaxTicks;
  return static_cast<uint64_t>(std::llround(us));
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_ms =
      static_cast<double>(sum_ticks_.load(std::memory_order_relaxed)) / 1000.0;
  if (snap.count > 0) {
    snap.min_ms =
        static_cast<double>(min_ticks_.load(std::memory_order_relaxed)) / 1000.0;
    snap.max_ms =
        static_cast<double>(max_ticks_.load(std::memory_order_relaxed)) / 1000.0;
  }
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) snap.buckets.emplace_back(static_cast<uint32_t>(i), c);
  }
  return snap;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t cumulative = 0;
  for (const auto& [index, c] : buckets) {
    cumulative += c;
    if (cumulative > rank) {
      const uint64_t lo = LatencyHistogram::BucketLowerTicks(index);
      const uint64_t hi = index + 1 < LatencyHistogram::kNumBuckets
                              ? LatencyHistogram::BucketLowerTicks(index + 1)
                              : LatencyHistogram::kMaxTicks + 1;
      // Single-tick buckets are exact; wider buckets report the midpoint
      // (error <= half the <=1/64-relative width).
      const double ticks = hi - lo <= 1 ? static_cast<double>(lo)
                                        : (static_cast<double>(lo) +
                                           static_cast<double>(hi)) /
                                              2.0;
      return ticks / 1000.0;
    }
  }
  return max_ms;  // unreachable for a consistent snapshot
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min_ms = other.min_ms;
    max_ms = other.max_ms;
  } else {
    min_ms = std::min(min_ms, other.min_ms);
    max_ms = std::max(max_ms, other.max_ms);
  }
  count += other.count;
  sum_ms += other.sum_ms;
  std::vector<std::pair<uint32_t, uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  size_t a = 0;
  size_t b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b == other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a == buckets.size() || other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first, buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

HistogramSnapshot HistogramSnapshot::DeltaSince(const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.count = count >= earlier.count ? count - earlier.count : 0;
  delta.sum_ms = std::max(0.0, sum_ms - earlier.sum_ms);
  delta.min_ms = min_ms;  // lifetime envelope (documented approximation)
  delta.max_ms = max_ms;
  size_t b = 0;
  for (const auto& [index, c] : buckets) {
    while (b < earlier.buckets.size() && earlier.buckets[b].first < index) ++b;
    uint64_t prior = 0;
    if (b < earlier.buckets.size() && earlier.buckets[b].first == index) {
      prior = earlier.buckets[b].second;
    }
    if (c > prior) delta.buckets.emplace_back(index, c - prior);
  }
  return delta;
}

// -------------------------------------------------------------- registry ---

std::string MetricSeriesKey(const std::string& name, const MetricLabels& labels) {
  return name + RenderLabels(labels);
}

MetricsRegistry::MetricsRegistry(MetricLabels base_labels)
    : base_labels_(std::move(base_labels)) {
  std::sort(base_labels_.begin(), base_labels_.end());
}

MetricLabels MetricsRegistry::ResolveLabels(MetricLabels labels) const {
  for (const auto& base : base_labels_) {
    bool overridden = false;
    for (const auto& [k, v] : labels) {
      if (k == base.first) {
        overridden = true;
        break;
      }
    }
    if (!overridden) labels.push_back(base);
  }
  std::sort(labels.begin(), labels.end());
  return labels;
}

namespace {

template <typename T>
T* GetSeries(std::map<std::string, std::unique_ptr<T>>* series,
             const std::string& name, MetricLabels labels) {
  const std::string key = MetricSeriesKey(name, labels);
  auto it = series->find(key);
  if (it == series->end()) {
    auto fresh = std::make_unique<T>();
    fresh->name = name;
    fresh->labels = std::move(labels);
    it = series->emplace(key, std::move(fresh)).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name, MetricLabels labels) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  return &GetSeries(&counters_, name, ResolveLabels(std::move(labels)))->instrument;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, MetricLabels labels) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  return &GetSeries(&gauges_, name, ResolveLabels(std::move(labels)))->instrument;
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                MetricLabels labels) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  return &GetSeries(&histograms_, name, ResolveLabels(std::move(labels)))->instrument;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [key, series] : counters_) {
    snap.counters.push_back({series->name, series->labels, series->instrument.Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, series] : gauges_) {
    snap.gauges.push_back({series->name, series->labels, series->instrument.Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, series] : histograms_) {
    snap.histograms.push_back(
        {series->name, series->labels, series->instrument.Snapshot()});
  }
  SortRows(&snap.counters);
  SortRows(&snap.gauges);
  SortRows(&snap.histograms);
  return snap;
}

// -------------------------------------------------------------- snapshot ---

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  MergeRows(&counters, other.counters,
            [](CounterRow* into, const CounterRow& from) { into->value += from.value; });
  MergeRows(&gauges, other.gauges,
            [](GaugeRow* into, const GaugeRow& from) { into->value = from.value; });
  MergeRows(&histograms, other.histograms, [](HistogramRow* into, const HistogramRow& from) {
    into->hist.MergeFrom(from.hist);
  });
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  delta.counters = DeltaRows(counters, earlier.counters,
                             [](CounterRow* row, const CounterRow& prior) {
                               row->value = row->value >= prior.value
                                                ? row->value - prior.value
                                                : 0;
                             });
  delta.gauges = gauges;  // levels: a window reports the closing value
  delta.histograms = DeltaRows(histograms, earlier.histograms,
                               [](HistogramRow* row, const HistogramRow& prior) {
                                 row->hist = row->hist.DeltaSince(prior.hist);
                               });
  return delta;
}

uint64_t MetricsSnapshot::CounterSum(const std::string& name,
                                     const MetricLabels& match) const {
  uint64_t sum = 0;
  for (const CounterRow& row : counters) {
    if (row.name == name && LabelsContain(row.labels, match)) sum += row.value;
  }
  return sum;
}

std::string MetricsSnapshot::RenderPrometheus() const {
  std::string out;
  out.reserve(1024);
  const std::string* prev = nullptr;
  for (const CounterRow& row : counters) {
    if (prev == nullptr || *prev != row.name) {
      AppendF(&out, "# TYPE %s counter\n", row.name.c_str());
      prev = &row.name;
    }
    AppendF(&out, "%s%s %llu\n", row.name.c_str(), RenderLabels(row.labels).c_str(),
            static_cast<unsigned long long>(row.value));
  }
  prev = nullptr;
  for (const GaugeRow& row : gauges) {
    if (prev == nullptr || *prev != row.name) {
      AppendF(&out, "# TYPE %s gauge\n", row.name.c_str());
      prev = &row.name;
    }
    AppendF(&out, "%s%s %lld\n", row.name.c_str(), RenderLabels(row.labels).c_str(),
            static_cast<long long>(row.value));
  }
  prev = nullptr;
  for (const HistogramRow& row : histograms) {
    if (prev == nullptr || *prev != row.name) {
      AppendF(&out, "# TYPE %s summary\n", row.name.c_str());
      prev = &row.name;
    }
    for (size_t q = 0; q < kNumSummaryQuantiles; ++q) {
      const std::pair<std::string, std::string> quantile{"quantile",
                                                         kSummaryQuantileNames[q]};
      AppendF(&out, "%s%s %s\n", row.name.c_str(),
              RenderLabels(row.labels, &quantile).c_str(),
              FormatDouble(row.hist.Percentile(kSummaryQuantiles[q])).c_str());
    }
    AppendF(&out, "%s_sum%s %s\n", row.name.c_str(), RenderLabels(row.labels).c_str(),
            FormatDouble(row.hist.sum_ms).c_str());
    AppendF(&out, "%s_count%s %llu\n", row.name.c_str(),
            RenderLabels(row.labels).c_str(),
            static_cast<unsigned long long>(row.hist.count));
  }
  return out;
}

namespace {

void AppendJsonLabels(std::string* out, const MetricLabels& labels) {
  out->append("\"labels\": {");
  bool first = true;
  for (const auto& [k, v] : labels) {
    AppendF(out, "%s\"%s\": \"%s\"", first ? "" : ", ", k.c_str(),
            EscapeLabelValue(v).c_str());
    first = false;
  }
  out->append("}");
}

}  // namespace

std::string MetricsSnapshot::RenderJson() const {
  std::string out;
  out.reserve(1024);
  out.append("{\"counters\": [");
  bool first = true;
  for (const CounterRow& row : counters) {
    AppendF(&out, "%s{\"name\": \"%s\", ", first ? "" : ", ", row.name.c_str());
    AppendJsonLabels(&out, row.labels);
    AppendF(&out, ", \"value\": %llu}", static_cast<unsigned long long>(row.value));
    first = false;
  }
  out.append("], \"gauges\": [");
  first = true;
  for (const GaugeRow& row : gauges) {
    AppendF(&out, "%s{\"name\": \"%s\", ", first ? "" : ", ", row.name.c_str());
    AppendJsonLabels(&out, row.labels);
    AppendF(&out, ", \"value\": %lld}", static_cast<long long>(row.value));
    first = false;
  }
  out.append("], \"histograms\": [");
  first = true;
  for (const HistogramRow& row : histograms) {
    AppendF(&out, "%s{\"name\": \"%s\", ", first ? "" : ", ", row.name.c_str());
    AppendJsonLabels(&out, row.labels);
    AppendF(&out, ", \"count\": %llu, \"sum_ms\": %s, \"min_ms\": %s, \"max_ms\": %s, \"mean_ms\": %s",
            static_cast<unsigned long long>(row.hist.count),
            FormatDouble(row.hist.sum_ms).c_str(),
            FormatDouble(row.hist.min_ms).c_str(),
            FormatDouble(row.hist.max_ms).c_str(),
            FormatDouble(row.hist.MeanMs()).c_str());
    for (size_t q = 0; q < kNumSummaryQuantiles; ++q) {
      AppendF(&out, ", \"%s\": %s", kSummaryJsonKeys[q],
              FormatDouble(row.hist.Percentile(kSummaryQuantiles[q])).c_str());
    }
    out.append("}");
    first = false;
  }
  out.append("]}");
  return out;
}

// --------------------------------------------------------------- flusher ---

MetricsFlusher::MetricsFlusher(SnapshotFn fn, size_t interval_ms, size_t max_windows)
    : fn_(std::move(fn)),
      interval_ms_(interval_ms),
      max_windows_(max_windows == 0 ? 1 : max_windows),
      origin_(std::chrono::steady_clock::now()) {
  if (interval_ms_ > 0) {
    thread_ = std::thread([this] { Loop(); });
  }
}

MetricsFlusher::~MetricsFlusher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

double MetricsFlusher::NowMs() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   origin_)
      .count();
}

void MetricsFlusher::FlushNow() {
  // The snapshot call runs outside the lock: `fn_` may itself take shard
  // locks and must never nest under the window mutex.
  MetricsSnapshot cut = fn_();
  const double now = NowMs();
  std::lock_guard<std::mutex> lock(mutex_);
  Window window;
  window.start_ms = last_ms_;
  window.end_ms = now;
  window.delta = cut.DeltaSince(last_);
  last_ = std::move(cut);
  last_ms_ = now;
  windows_.push_back(std::move(window));
  if (windows_.size() > max_windows_) {
    windows_.erase(windows_.begin(),
                   windows_.begin() + static_cast<std::ptrdiff_t>(windows_.size() -
                                                                  max_windows_));
  }
}

std::vector<MetricsFlusher::Window> MetricsFlusher::Windows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_;
}

void MetricsFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                          [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    FlushNow();
    lock.lock();
  }
}

}  // namespace maliva
