#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace maliva {

std::string ToLower(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

std::string Join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

}  // namespace maliva
