#include "util/query_profiler.h"

#include <chrono>

namespace maliva {

double QueryProfiler::WallClockMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace maliva
