// Metrics plane: labeled instruments, log-linear latency histograms,
// Prometheus/JSON exporters, and windowed-delta flushing (ISSUE 10).
//
// Three instrument kinds, all wait-free on the record side:
//   * Counter — monotone relaxed-atomic uint64.
//   * Gauge   — last-writer-wins relaxed-atomic int64.
//   * LatencyHistogram — HDR-style log-linear bucketing over microsecond
//     ticks: 64 linear sub-buckets per power-of-two octave, so every bucket
//     is at most 1/64 of its lower bound wide and midpoint estimates carry
//     <= ~0.8% relative error. Mergeable across shards (bucket-wise sums)
//     and subtractable for windowed views.
//
// Instruments live in a MetricsRegistry, addressed by name + label set
// (scenario, strategy, verdict, ...). Get* is mutex-guarded and meant for
// construction time only: callers resolve handles once and the hot path
// performs zero map lookups (the registry counts lookups so tests can prove
// it — the QueryProfiler counting-clock pattern). Returned pointers are
// stable for the registry's lifetime.
//
// Reading happens through MetricsSnapshot — a plain-value cut of every
// series, mergeable across registries (MalivaFleet folds shard registries
// into FleetStats::metrics), subtractable for rate windows, and renderable
// as Prometheus text exposition or a JSON dump. A MetricsFlusher cuts
// windowed deltas every N ms into a bounded ring of time-windowed views,
// which the SLO watchdog (service/trace_ring.h) evaluates burn rates over.
//
// Everything here is wall-clock-only measurement: no instrument ever feeds
// back into a rewriting decision, so decision bytes are identical with
// metrics on or off (the byte-identity contract).

#ifndef MALIVA_UTIL_METRICS_H_
#define MALIVA_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace maliva {

/// Sorted (key, value) label pairs identifying one series of a metric.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event counter. Increment is a relaxed fetch_add — safe from any
/// thread, never a synchronization point.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-writer-wins level (cache residency, snapshot version, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Plain-value cut of one LatencyHistogram (or a merge/delta of several).
/// Buckets are sparse (index, count) pairs sorted by index; indices are
/// LatencyHistogram bucket indices, so snapshots from different histograms
/// merge and subtract bucket-wise.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_ms = 0.0;
  /// Lifetime extrema (0 when count == 0). A windowed delta carries the
  /// *later* cut's extrema — true per-window min/max is not derivable from
  /// two lifetime cuts, and the lifetime envelope is the honest substitute.
  double min_ms = 0.0;
  double max_ms = 0.0;
  std::vector<std::pair<uint32_t, uint64_t>> buckets;

  double MeanMs() const { return count == 0 ? 0.0 : sum_ms / static_cast<double>(count); }

  /// Value at quantile `q` in [0, 1]: the midpoint of the bucket holding the
  /// floor(q * count)-th sample (exact for single-tick buckets). Matches the
  /// sorted-vector convention `sorted[floor(q * n)]` within the bucketing
  /// error (<= ~0.8% relative above 64 us).
  double Percentile(double q) const;

  /// Bucket-wise sum: this += other (count/sum/buckets add, extrema widen).
  void MergeFrom(const HistogramSnapshot& other);

  /// Windowed view: what this cut recorded after `earlier` was taken. Both
  /// cuts must come from the same (or merged-identically) series; counts and
  /// sums subtract, extrema stay this cut's lifetime values.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;
};

/// Lock-free log-linear latency histogram over microsecond ticks.
///
/// Bucketing: ticks below 64 get one bucket each (exact); every higher
/// power-of-two octave [2^h, 2^(h+1)) splits into 64 linear sub-buckets, so
/// bucket width is always <= lower_bound/64. Ticks are clamped to
/// [0, 2^40 - 1] (~12.7 days) — NaN and negatives record as 0, overflow
/// lands in the top bucket. Record is wait-free (relaxed atomics; the
/// min/max CAS loops retry only under contention on a new extreme).
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 6;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBits;  // 64
  static constexpr int kMaxExponent = 40;
  static constexpr uint64_t kMaxTicks = (1ull << kMaxExponent) - 1;
  static constexpr size_t kNumBuckets =
      kSubBuckets * static_cast<size_t>(kMaxExponent - kSubBits + 1);  // 2240

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one latency in milliseconds (sub-microsecond values round to
  /// the nearest tick; NaN/negative clamp to 0).
  void Record(double ms) {
    const uint64_t ticks = TicksFor(ms);
    buckets_[BucketIndex(ticks)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ticks_.fetch_add(ticks, std::memory_order_relaxed);
    uint64_t seen = min_ticks_.load(std::memory_order_relaxed);
    while (ticks < seen &&
           !min_ticks_.compare_exchange_weak(seen, ticks, std::memory_order_relaxed)) {
    }
    seen = max_ticks_.load(std::memory_order_relaxed);
    while (ticks > seen &&
           !max_ticks_.compare_exchange_weak(seen, ticks, std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Consistent-enough cut (each bucket individually exact, not one atomic
  /// cut across buckets — the monitoring contract of ServingTelemetry).
  HistogramSnapshot Snapshot() const;

  /// Millisecond value to clamped microsecond ticks.
  static uint64_t TicksFor(double ms);

  static size_t BucketIndex(uint64_t ticks) {
    if (ticks < kSubBuckets) return static_cast<size_t>(ticks);
    const int h = 63 - std::countl_zero(ticks);
    return static_cast<size_t>(h - kSubBits + 1) * kSubBuckets +
           static_cast<size_t>((ticks >> (h - kSubBits)) & (kSubBuckets - 1));
  }

  /// Inclusive lower bound (ticks) of bucket `index`.
  static uint64_t BucketLowerTicks(size_t index) {
    if (index < kSubBuckets) return index;
    const size_t octave = index / kSubBuckets - 1;
    const uint64_t sub = index & (kSubBuckets - 1);
    return (kSubBuckets + sub) << octave;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ticks_{0};
  std::atomic<uint64_t> min_ticks_{kMaxTicks};
  std::atomic<uint64_t> max_ticks_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Plain-value cut of a whole registry: every series with its name, labels,
/// and value, sorted by (name, labels). Mergeable across registries,
/// subtractable for windows, renderable for scrapers.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    MetricLabels labels;
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    MetricLabels labels;
    int64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    MetricLabels labels;
    HistogramSnapshot hist;
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }

  /// Adds every series of `other` into this snapshot: matching (name,
  /// labels) series sum (counters and histograms) or take `other`'s value
  /// (gauges); unmatched series are inserted. Keeps rows sorted.
  void MergeFrom(const MetricsSnapshot& other);

  /// Windowed view: counters and histograms subtract (`earlier` series
  /// missing here are treated as zero and series that vanished are
  /// dropped); gauges keep this cut's value (levels have no meaningful
  /// difference).
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// Sum of one counter across every series whose labels include all of
  /// `match` (subset match, so a scenario label alone selects all verdicts).
  uint64_t CounterSum(const std::string& name, const MetricLabels& match = {}) const;

  /// Prometheus text exposition: counters and gauges as typed samples,
  /// histograms as summaries (quantile series from the buckets plus _sum
  /// and _count). Deterministic for a fixed snapshot — golden-testable.
  std::string RenderPrometheus() const;

  /// JSON object with "counters"/"gauges"/"histograms" arrays; histogram
  /// entries carry count/sum/min/max/mean and p50..p999. Deterministic.
  std::string RenderJson() const;
};

/// Registry of labeled instruments. Get* resolves (creating on first use)
/// the series for name + labels and returns a pointer stable for the
/// registry's lifetime; base labels (e.g. scenario="tweets") are stamped
/// onto every series at construction. Get* takes a mutex and bumps
/// lookups() — resolve handles once, off the hot path.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(MetricLabels base_labels = {});

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {});
  LatencyHistogram* GetHistogram(const std::string& name, MetricLabels labels = {});

  /// Total Get* calls ever made — the hot-path proof counter: a serve loop
  /// over pre-resolved handles leaves it unchanged (the QueryProfiler
  /// counting-clock pattern, applied to map lookups).
  uint64_t lookups() const { return lookups_.load(std::memory_order_relaxed); }

  MetricsSnapshot Snapshot() const;
  std::string RenderPrometheus() const { return Snapshot().RenderPrometheus(); }
  std::string RenderJson() const { return Snapshot().RenderJson(); }

  const MetricLabels& base_labels() const { return base_labels_; }

 private:
  template <typename T>
  struct Series {
    std::string name;
    MetricLabels labels;
    T instrument;
  };

  /// Full label set of a new series: base labels plus call labels, sorted
  /// by key (call labels win on a duplicate key).
  MetricLabels ResolveLabels(MetricLabels labels) const;

  MetricLabels base_labels_;
  std::atomic<uint64_t> lookups_{0};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Series<Counter>>> counters_;
  std::map<std::string, std::unique_ptr<Series<Gauge>>> gauges_;
  std::map<std::string, std::unique_ptr<Series<LatencyHistogram>>> histograms_;
};

/// Canonical series identity string: name{k="v",...} — the registry's map
/// key, the snapshot sort key, and the Prometheus sample line prefix.
std::string MetricSeriesKey(const std::string& name, const MetricLabels& labels);

/// Background windowed-delta snapshotter: every `interval_ms` it cuts a
/// fresh MetricsSnapshot via `fn`, subtracts the previous cut, and appends
/// the delta (with its wall-clock window) to a bounded ring of the newest
/// `max_windows` views — rates and windowed percentiles, not lifetime sums.
/// interval_ms == 0 starts no thread; FlushNow() cuts a window on demand
/// either way (deterministic tests and benches). The destructor joins the
/// thread; `fn` must stay callable until then.
class MetricsFlusher {
 public:
  using SnapshotFn = std::function<MetricsSnapshot()>;

  struct Window {
    double start_ms = 0.0;  ///< window open, wall ms since flusher start
    double end_ms = 0.0;    ///< window close
    MetricsSnapshot delta;  ///< what the interval recorded
  };

  MetricsFlusher(SnapshotFn fn, size_t interval_ms, size_t max_windows = 64);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  /// Cuts a window now (the background cadence, on demand). Thread-safe.
  void FlushNow();

  /// The retained windows, oldest first. Thread-safe copy.
  std::vector<Window> Windows() const;

  size_t max_windows() const { return max_windows_; }

 private:
  void Loop();
  double NowMs() const;

  SnapshotFn fn_;
  const size_t interval_ms_;
  const size_t max_windows_;
  std::chrono::steady_clock::time_point origin_;

  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  MetricsSnapshot last_;
  double last_ms_ = 0.0;
  std::vector<Window> windows_;

  std::thread thread_;  ///< last member: joins before state above dies
};

}  // namespace maliva

#endif  // MALIVA_UTIL_METRICS_H_
