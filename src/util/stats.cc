#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace maliva {

void RunningStat::Add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  RunningStat rs;
  for (double x : xs) rs.Add(x);
  return rs.stddev();
}

double Percentile(std::vector<double> xs, double p) {
  assert(!xs.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace maliva
