// RAII per-request cost profiler for the serve path (ISSUE 9).
//
// Styled after mapping-gfbio's QueryProfiler guards (see SNIPPETS.md): a
// request-scoped profiler accumulates wall time into named serve phases —
// signature canonicalization, result-cache probe, the selectivity ladder,
// the strategy's MDP search, SQL rendering, publish-out — through RAII
// guards, so early returns and error paths can never leak a running timer
// past its scope.
//
// Two axes of attribution:
//   * self vs cumulative — the selectivity ladder runs *inside* the search
//     phase (QTE calls happen mid-episode), so search's cumulative time
//     includes selectivity; ProfileBreakdown::SelfMs(kSearch) subtracts it
//     back out. All other phases are disjoint.
//   * cached vs uncached — spans that were satisfied by earlier requests'
//     work (shared-store pre-seeding, result-cache replays) are additionally
//     recorded as cached_ms, splitting each phase's bill into "work done
//     here" vs "work inherited".
//
// Determinism contract: the profiler measures host wall time, which is
// run-varying by nature — like RequestStats::serve_wall_ms it is excluded
// from every byte-identity guarantee, and the decision bytes of a response
// are identical with profiling on or off. The off path is free: a
// default-constructed (or enabled=false) profiler never calls its clock —
// tests assert this with a counting clock — and the serve path holds only
// one null-pointer check per would-be span.

#ifndef MALIVA_UTIL_QUERY_PROFILER_H_
#define MALIVA_UTIL_QUERY_PROFILER_H_

#include <cassert>
#include <cstdint>

namespace maliva {

/// One phase's accumulated bill inside a ProfileBreakdown.
struct ProfilePhaseStats {
  double total_ms = 0.0;   ///< summed span wall time (cached spans included)
  double cached_ms = 0.0;  ///< portion attributed to earlier requests' work
  uint64_t count = 0;      ///< spans started (StartTimer calls)
};

/// Plain-value snapshot of a profiler — what a response carries in
/// RequestStats::profile and what the replay driver aggregates across a run.
struct ProfileBreakdown {
  /// Phase indices (QueryProfiler::Phase mirrors these).
  enum Phase : int {
    kSignature = 0,   ///< query canonicalization + catalog epoch read
    kCacheProbe = 1,  ///< result-cache fingerprint + Begin/WaitForLeader
    kSelectivity = 2, ///< selectivity ladder: store seeds, histograms, probes
    kSearch = 3,      ///< strategy episode (QTE + agent); contains kSelectivity
    kRender = 4,      ///< SQL rendering of the decided option
    kPublish = 5,     ///< shared-store + result-cache publish-out
  };
  static constexpr int kNumPhases = 6;

  static const char* PhaseName(int phase) {
    switch (phase) {
      case kSignature: return "signature";
      case kCacheProbe: return "cache_probe";
      case kSelectivity: return "selectivity";
      case kSearch: return "search";
      case kRender: return "render";
      case kPublish: return "publish";
      default: return "unknown";
    }
  }

  ProfilePhaseStats phases[kNumPhases] = {};

  double TotalMs(int phase) const { return phases[phase].total_ms; }

  /// Phase time net of nested phases: kSearch minus the selectivity ladder
  /// that ran inside it; every other phase is disjoint and self == total.
  double SelfMs(int phase) const {
    if (phase == kSearch) {
      double self = phases[kSearch].total_ms - phases[kSelectivity].total_ms;
      return self > 0.0 ? self : 0.0;
    }
    return phases[phase].total_ms;
  }

  /// Whole-request bill: the disjoint top-level phases summed (kSelectivity
  /// excluded — it is already inside kSearch's total).
  double TopLevelMs() const {
    double sum = 0.0;
    for (int p = 0; p < kNumPhases; ++p) {
      if (p == kSelectivity) continue;
      sum += phases[p].total_ms;
    }
    return sum;
  }

  double CachedMs() const {
    double sum = 0.0;
    for (const ProfilePhaseStats& p : phases) sum += p.cached_ms;
    return sum;
  }

  double UncachedMs() const {
    double uncached = TopLevelMs() - CachedMs();
    return uncached > 0.0 ? uncached : 0.0;
  }

  ProfileBreakdown& operator+=(const ProfileBreakdown& other) {
    for (int p = 0; p < kNumPhases; ++p) {
      phases[p].total_ms += other.phases[p].total_ms;
      phases[p].cached_ms += other.phases[p].cached_ms;
      phases[p].count += other.phases[p].count;
    }
    return *this;
  }
};

/// Request-scoped phase timer. Not thread-safe by design: a profiler belongs
/// to exactly one in-flight request (it lives on the serve call's stack and
/// is bound to that request's RewriteSession), the same ownership rule as
/// the session itself.
class QueryProfiler {
 public:
  using Phase = ProfileBreakdown::Phase;
  static constexpr int kNumPhases = ProfileBreakdown::kNumPhases;
  // Phase constants re-exported so call sites read QueryProfiler::kSearch.
  static constexpr Phase kSignature = ProfileBreakdown::kSignature;
  static constexpr Phase kCacheProbe = ProfileBreakdown::kCacheProbe;
  static constexpr Phase kSelectivity = ProfileBreakdown::kSelectivity;
  static constexpr Phase kSearch = ProfileBreakdown::kSearch;
  static constexpr Phase kRender = ProfileBreakdown::kRender;
  static constexpr Phase kPublish = ProfileBreakdown::kPublish;

  /// Monotonic-milliseconds source. Injectable so tests can count (or fake)
  /// clock reads; production uses WallClockMs.
  using ClockFn = double (*)();

  /// std::chrono::steady_clock in milliseconds (query_profiler.cc).
  static double WallClockMs();

  /// Disabled profiler: every operation is a no-op and the clock — there is
  /// none — is provably never read.
  QueryProfiler() = default;

  /// Enabled profiler reading `clock`; pass enabled=false to construct the
  /// off state with a clock wired up (the zero-overhead-when-disabled test).
  explicit QueryProfiler(ClockFn clock, bool enabled = true)
      : clock_(enabled ? clock : nullptr) {
    assert(!enabled || clock != nullptr);
  }

  bool enabled() const { return clock_ != nullptr; }

  /// Opens a span on `phase`. Requires the phase to be idle (phases do not
  /// self-nest; distinct phases nest freely).
  void StartTimer(int phase) {
    if (clock_ == nullptr) return;
    assert(!running_[phase] && "phase timer already running");
    start_ms_[phase] = clock_();
    running_[phase] = true;
    ++phases_[phase].count;
  }

  /// Closes the span and returns its wall ms (0 when disabled) so callers
  /// can re-attribute the same span, e.g. AddCachedMs on a cache hit.
  double StopTimer(int phase) {
    if (clock_ == nullptr) return 0.0;
    assert(running_[phase] && "StopTimer on idle phase");
    double span = clock_() - start_ms_[phase];
    phases_[phase].total_ms += span;
    running_[phase] = false;
    return span;
  }

  /// Pauses a running span ("stopping guard" semantics): elapsed time is
  /// banked, the span count is not re-incremented on Resume. Returns whether
  /// there was a running span to pause (Resume only what was paused).
  bool Pause(int phase) {
    if (clock_ == nullptr || !running_[phase]) return false;
    phases_[phase].total_ms += clock_() - start_ms_[phase];
    running_[phase] = false;
    return true;
  }

  void Resume(int phase) {
    if (clock_ == nullptr) return;
    assert(!running_[phase] && "Resume on running phase");
    start_ms_[phase] = clock_();
    running_[phase] = true;
  }

  /// Re-attributes `ms` of this phase's bill as inherited work (shared-store
  /// seeds, result-cache replays). No clock read; no-op when disabled.
  void AddCachedMs(int phase, double ms) {
    if (clock_ == nullptr) return;
    phases_[phase].cached_ms += ms;
  }

  /// Folds another profiler's closed spans into this one ("running guard"
  /// semantics: a child profiler measures a sub-operation, the parent
  /// absorbs it on scope exit). Pure arithmetic — never reads a clock.
  QueryProfiler& operator+=(const QueryProfiler& other) {
    for (int p = 0; p < kNumPhases; ++p) {
      assert(!other.running_[p] && "folding a profiler with a running span");
      phases_[p].total_ms += other.phases_[p].total_ms;
      phases_[p].cached_ms += other.phases_[p].cached_ms;
      phases_[p].count += other.phases_[p].count;
    }
    return *this;
  }

  /// Value snapshot of the closed spans (running spans are not included —
  /// take the snapshot after the guards have unwound).
  ProfileBreakdown Snapshot() const {
    ProfileBreakdown out;
    for (int p = 0; p < kNumPhases; ++p) out.phases[p] = phases_[p];
    return out;
  }

 private:
  ClockFn clock_ = nullptr;  // nullptr == disabled
  ProfilePhaseStats phases_[kNumPhases] = {};
  double start_ms_[kNumPhases] = {};
  bool running_[kNumPhases] = {};
};

/// Simple guard: StartTimer on construction, StopTimer on destruction.
/// Null-safe — `profiler == nullptr` (profiling off for this request) makes
/// the whole guard a no-op, so instrumented code needs no branches.
class ProfilerSimpleGuard {
 public:
  ProfilerSimpleGuard(QueryProfiler* profiler, int phase)
      : profiler_(profiler), phase_(phase) {
    if (profiler_ != nullptr) profiler_->StartTimer(phase_);
  }
  ~ProfilerSimpleGuard() {
    if (profiler_ != nullptr) profiler_->StopTimer(phase_);
  }
  ProfilerSimpleGuard(const ProfilerSimpleGuard&) = delete;
  ProfilerSimpleGuard& operator=(const ProfilerSimpleGuard&) = delete;

 private:
  QueryProfiler* profiler_;
  int phase_;
};

/// Stopping guard: excludes its scope from a running phase span (pause on
/// construction, resume on destruction). Used around work that must not be
/// billed to the enclosing phase — e.g. a lazy strategy build (training!)
/// inside the search phase. Null-safe, and a no-op when the phase was not
/// running.
class ProfilerStoppingGuard {
 public:
  ProfilerStoppingGuard(QueryProfiler* profiler, int phase)
      : profiler_(profiler), phase_(phase) {
    paused_ = profiler_ != nullptr && profiler_->Pause(phase_);
  }
  ~ProfilerStoppingGuard() {
    if (paused_) profiler_->Resume(phase_);
  }
  ProfilerStoppingGuard(const ProfilerStoppingGuard&) = delete;
  ProfilerStoppingGuard& operator=(const ProfilerStoppingGuard&) = delete;

 private:
  QueryProfiler* profiler_;
  int phase_;
  bool paused_ = false;
};

/// Running guard: a child profiler accounts a sub-operation while the
/// parent's `phase` is paused; on scope exit the child's closed spans fold
/// into the parent (operator+=) and the parent's span resumes. The child
/// must have closed all its spans by then. Null-safe on the parent.
class ProfilerRunningGuard {
 public:
  ProfilerRunningGuard(QueryProfiler* parent, int phase, QueryProfiler* child)
      : parent_(parent), phase_(phase), child_(child) {
    paused_ = parent_ != nullptr && parent_->Pause(phase_);
  }
  ~ProfilerRunningGuard() {
    if (parent_ != nullptr && child_ != nullptr) *parent_ += *child_;
    if (paused_) parent_->Resume(phase_);
  }
  ProfilerRunningGuard(const ProfilerRunningGuard&) = delete;
  ProfilerRunningGuard& operator=(const ProfilerRunningGuard&) = delete;

 private:
  QueryProfiler* parent_;
  int phase_;
  QueryProfiler* child_;
  bool paused_ = false;
};

}  // namespace maliva

#endif  // MALIVA_UTIL_QUERY_PROFILER_H_
