// Minimal fixed-size thread pool for the serving path.
//
// MalivaService::ServeBatch fans requests out over a pool of workers; each
// request is independent (per-request RewriteSession, shared-immutable
// ServingState), so the pool needs no futures or task graphs — just Submit
// and a blocking ParallelFor. Header-only; links against std::thread
// (Threads::Threads in CMake).

#ifndef MALIVA_UTIL_THREAD_POOL_H_
#define MALIVA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace maliva {

/// Fixed set of worker threads draining a FIFO task queue. Destruction waits
/// for every submitted task to finish.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency may
  /// report 0 on exotic platforms).
  static size_t DefaultThreads() {
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<size_t>(n);
  }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++pending_;
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  /// Blocks until every task submitted so far has completed.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Tasks submitted but not yet completed (queued + currently running).
  /// The admission control plane reads this as its load signal; like any
  /// concurrent gauge it is exact only at the instant of the read.
  size_t PendingTasks() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return pending_;
  }

  /// Tasks enqueued but not yet claimed by a worker (PendingTasks() minus
  /// the ones currently running).
  size_t QueueDepth() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Runs fn(0..n-1), spreading indices over the workers, and blocks until
  /// all calls return. Indices are claimed from a shared atomic counter, so
  /// uneven per-index costs balance automatically. Completion is tracked
  /// per call, not via the pool-global Wait(): concurrent ParallelFor calls
  /// sharing one pool (e.g. two fleet batches) only wait for their own
  /// lanes, never for each other's tasks.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    struct CallState {
      std::atomic<size_t> next{0};
      std::mutex mutex;
      std::condition_variable done;
      size_t active_lanes = 0;
    };
    auto state = std::make_shared<CallState>();
    size_t lanes = std::min(n, num_threads());
    state->active_lanes = lanes;
    for (size_t lane = 0; lane < lanes; ++lane) {
      // fn by reference is safe: this call outlives its tasks by design.
      Submit([state, n, &fn] {
        for (size_t i = state->next.fetch_add(1); i < n; i = state->next.fetch_add(1)) {
          fn(i);
        }
        std::unique_lock<std::mutex> lock(state->mutex);
        if (--state->active_lanes == 0) state->done.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&state] { return state->active_lanes == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace maliva

#endif  // MALIVA_UTIL_THREAD_POOL_H_
