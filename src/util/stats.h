// Small descriptive-statistics helpers shared by the harness and tests.

#ifndef MALIVA_UTIL_STATS_H_
#define MALIVA_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace maliva {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than two values.
double Stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double Percentile(std::vector<double> xs, double p);

}  // namespace maliva

#endif  // MALIVA_UTIL_STATS_H_
