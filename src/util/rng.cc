#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace maliva {

int64_t Rng::Zipf(int64_t n, double theta) {
  ZipfTable table(n, theta);
  return table.Sample(this);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm would avoid the O(n) init, but n is small in all of our
  // call sites relative to the work done per sampled element.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i),
                                              static_cast<int64_t>(n - 1)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

ZipfTable::ZipfTable(int64_t n, double theta) {
  assert(n > 0);
  cdf_.resize(static_cast<size_t>(n));
  double acc = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[static_cast<size_t>(r)] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

int64_t ZipfTable::Sample(Rng* rng) const {
  double u = rng->Uniform(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace maliva
