// Status / Result<T> error-handling primitives (RocksDB/Arrow style).
//
// Library code in this project does not throw exceptions across public API
// boundaries; fallible operations return a Status or a Result<T>.

#ifndef MALIVA_UTIL_STATUS_H_
#define MALIVA_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace maliva {

/// Outcome of a fallible operation. Cheap to copy when OK.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kInternal,
    kUnimplemented,
    kDeadlineExceeded,
    kResourceExhausted,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(Code::kNotFound, std::move(msg)); }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(Code::kInternal, std::move(msg)); }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad column".
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kOutOfRange: name = "OutOfRange"; break;
      case Code::kFailedPrecondition: name = "FailedPrecondition"; break;
      case Code::kInternal: name = "Internal"; break;
      case Code::kUnimplemented: name = "Unimplemented"; break;
      case Code::kDeadlineExceeded: name = "DeadlineExceeded"; break;
      case Code::kResourceExhausted: name = "ResourceExhausted"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value or an error Status. Access to value() requires ok().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}           // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace maliva

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define MALIVA_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::maliva::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // MALIVA_UTIL_STATUS_H_
