// Seeded random-number generation used by every stochastic component.
//
// All experiment randomness flows through Rng instances with explicit seeds so
// that the full experiment suite is reproducible run-to-run.

#ifndef MALIVA_UTIL_RNG_H_
#define MALIVA_UTIL_RNG_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace maliva {

/// Deterministic random source. Thin, inlined wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Standard-normal sample scaled to (mean, stddev).
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Log-normal sample with the given underlying normal parameters.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(gen_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

  /// Zipfian rank in [0, n): rank r drawn with weight 1/(r+1)^theta.
  /// Uses rejection-inversion-free CDF sampling over a cached table when n is
  /// small would be overkill; this linear fallback is O(n) per *construction*
  /// via ZipfTable below — prefer ZipfTable for hot paths.
  int64_t Zipf(int64_t n, double theta);

  /// Exponential with the given rate (lambda).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(gen_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), gen_);
  }

  /// k distinct indices sampled uniformly from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Precomputed Zipf CDF for repeated sampling from the same distribution.
class ZipfTable {
 public:
  ZipfTable(int64_t n, double theta);

  /// Draws a rank in [0, n).
  int64_t Sample(Rng* rng) const;

  int64_t size() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace maliva

#endif  // MALIVA_UTIL_RNG_H_
