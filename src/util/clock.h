// Virtual clock used to account planning and execution time.
//
// All times in the system are deterministic virtual milliseconds produced by
// the cost model, so experiments are reproducible and independent of host
// speed (see DESIGN.md "Virtual time").

#ifndef MALIVA_UTIL_CLOCK_H_
#define MALIVA_UTIL_CLOCK_H_

#include <cassert>

namespace maliva {

/// Accumulates elapsed virtual milliseconds.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Advances the clock by `ms` (must be non-negative).
  void Advance(double ms) {
    assert(ms >= 0.0);
    now_ms_ += ms;
  }

  /// Current virtual time in milliseconds since construction/reset.
  double NowMs() const { return now_ms_; }

  void Reset() { now_ms_ = 0.0; }

 private:
  double now_ms_ = 0.0;
};

}  // namespace maliva

#endif  // MALIVA_UTIL_CLOCK_H_
