#include "qte/sampling_qte.h"

#include <cassert>

#include "engine/optimizer.h"
#include "qte/selectivity_tier.h"
#include "util/query_profiler.h"

namespace maliva {

QteEstimate SamplingQte::Estimate(const QteContext& ctx, size_t ro_index,
                                  SelectivityCache* cache) const {
  assert(ctx.query != nullptr && ctx.options != nullptr && ctx.engine != nullptr);
  const Query& query = *ctx.query;
  const RewriteOption& option = (*ctx.options)[ro_index];
  size_t m = query.predicates.size();

  QteEstimate out;
  out.cost_ms = ctx.params.model_eval_ms;

  // Collect missing selectivities down the ladder: histogram estimate when
  // the tier answers (charged its near-zero cost), else count(*) on the QTE
  // sample table at full probe cost. The bill accrues per slot alongside the
  // collection decisions, so cost and collection can never disagree. The
  // ladder runs inside the strategy's search phase; the profiler span nests
  // so search self-time can subtract it back out.
  {
    ProfilerSimpleGuard ladder_span(cache->profiler(), QueryProfiler::kSelectivity);
    for (size_t slot : ctx.NeededSlots(ro_index)) {
      if (cache->Has(slot)) continue;
      QteContext::SlotTarget target = ctx.SlotTargetFor(slot);
      const Predicate& pred = *target.pred;
      const std::string& table = *target.table;
      if (ctx.tier != nullptr) {
        std::optional<double> est = ctx.tier->Estimate(table, pred);
        if (est.has_value()) {
          cache->Set(slot, *est);
          cache->NoteHistogramHit();
          out.cost_ms += ctx.tier->config().histogram_cost_ms;
          continue;
        }
      }
      out.cost_ms += CostFactor() * ctx.ActualSlotCostMs(slot);
      cache->NoteProbe();
      Result<double> sel =
          ctx.engine->SampledSelectivity(table, pred, ctx.params.qte_sample_rate);
      // Fall back to optimizer statistics when no sample table was built for
      // the target (e.g. dimension tables).
      if (!sel.ok()) {
        const TableEntry* entry = ctx.engine->FindEntry(table);
        assert(entry != nullptr);
        cache->Set(slot, entry->stats->EstimateSelectivity(pred));
      } else {
        cache->Set(slot, sel.value());
        // Feedback for the tier's trust windows: the probe is the reference
        // the histogram replaces, so score the histogram against it (demoted
        // columns keep getting scored here, which is their way back in).
        if (ctx.tier != nullptr) ctx.tier->RecordProbe(table, pred, sel.value());
      }
    }
  }

  // Build the selectivity vector: collected slots use sampled values,
  // uncollected ones fall back to (cheap) optimizer statistics.
  const Optimizer& opt = ctx.engine->optimizer();
  SelectivityVector stats_sels = opt.EstimatedSelectivities(query);
  SelectivityVector sels = stats_sels;
  for (size_t i = 0; i < m; ++i) {
    if (cache->Has(i)) sels.base[i] = cache->Get(i);
  }
  for (size_t r = 0; r < sels.right.size(); ++r) {
    if (cache->Has(m + r)) sels.right[r] = cache->Get(m + r);
  }

  PlanSpec spec = opt.ResolvePlan(query, option);
  PlanCards cards = opt.CardsFromSelectivities(query, spec, sels);
  out.est_ms = ctx.engine->cost_model().PlanTimeMs(cards);
  return out;
}

}  // namespace maliva
