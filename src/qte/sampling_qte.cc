#include "qte/sampling_qte.h"

#include <cassert>

#include "engine/optimizer.h"

namespace maliva {

QteEstimate SamplingQte::Estimate(const QteContext& ctx, size_t ro_index,
                                  SelectivityCache* cache) const {
  assert(ctx.query != nullptr && ctx.options != nullptr && ctx.engine != nullptr);
  const Query& query = *ctx.query;
  const RewriteOption& option = (*ctx.options)[ro_index];
  size_t m = query.predicates.size();

  QteEstimate out;
  out.cost_ms = CollectCostMs(ctx, ro_index, *cache);

  // Collect missing selectivities by count(*) on the QTE sample table.
  for (size_t slot : ctx.NeededSlots(ro_index)) {
    if (cache->Has(slot)) continue;
    const Predicate& pred = slot < m ? query.predicates[slot]
                                     : query.join->right_predicates[slot - m];
    const std::string& table = slot < m ? query.table : query.join->right_table;
    Result<double> sel = ctx.engine->SampledSelectivity(table, pred, ctx.params.qte_sample_rate);
    // Fall back to optimizer statistics when no sample table was built for
    // the target (e.g. dimension tables).
    if (!sel.ok()) {
      const TableEntry* entry = ctx.engine->FindEntry(table);
      assert(entry != nullptr);
      cache->Set(slot, entry->stats->EstimateSelectivity(pred));
    } else {
      cache->Set(slot, sel.value());
    }
  }

  // Build the selectivity vector: collected slots use sampled values,
  // uncollected ones fall back to (cheap) optimizer statistics.
  const Optimizer& opt = ctx.engine->optimizer();
  SelectivityVector stats_sels = opt.EstimatedSelectivities(query);
  SelectivityVector sels = stats_sels;
  for (size_t i = 0; i < m; ++i) {
    if (cache->Has(i)) sels.base[i] = cache->Get(i);
  }
  for (size_t r = 0; r < sels.right.size(); ++r) {
    if (cache->Has(m + r)) sels.right[r] = cache->Get(m + r);
  }

  PlanSpec spec = opt.ResolvePlan(query, option);
  PlanCards cards = opt.CardsFromSelectivities(query, spec, sels);
  out.est_ms = ctx.engine->cost_model().PlanTimeMs(cards);
  return out;
}

}  // namespace maliva
