// Per-query cache of collected predicate selectivities.
//
// Collecting one selectivity costs tens of (virtual) milliseconds; once a
// QTE collects it for one rewritten query it is free for every later RQ
// sharing the predicate. This cache is what makes the estimation costs C_i in
// the MDP state drop as the agent explores (paper Fig 7).

#ifndef MALIVA_QTE_SELECTIVITY_CACHE_H_
#define MALIVA_QTE_SELECTIVITY_CACHE_H_

#include <cassert>
#include <optional>
#include <vector>

namespace maliva {

class QueryProfiler;  // util/query_profiler.h

/// Slot-indexed selectivity store: slots [0, m) are the base predicates,
/// slots [m, m + r) the join right-side predicates.
class SelectivityCache {
 public:
  explicit SelectivityCache(size_t num_slots) : slots_(num_slots) {}

  size_t num_slots() const { return slots_.size(); }

  bool Has(size_t slot) const {
    assert(slot < slots_.size());
    return slots_[slot].has_value();
  }

  double Get(size_t slot) const {
    assert(Has(slot));
    return *slots_[slot];
  }

  void Set(size_t slot, double selectivity) {
    assert(slot < slots_.size());
    if (!slots_[slot].has_value()) ++collected_;
    slots_[slot] = selectivity;
  }

  /// Slots holding a value. Maintained incrementally in Set() — this is read
  /// per response for telemetry, so it must not rescan the slots.
  size_t NumCollected() const { return collected_; }

  // Tier accounting (DESIGN.md "Selectivity tiers"): how the collected slots
  // were filled. Shared-store seeds are tracked by the session
  // (RewriteSession::shared_seeded); these two split the remainder between
  // the histogram rung and the probe rung.
  void NoteHistogramHit() { ++histogram_hits_; }
  void NoteProbe() { ++probes_; }
  size_t histogram_hits() const { return histogram_hits_; }
  size_t probes() const { return probes_; }

  /// Cost profiler of the request this cache belongs to (ISSUE 9), stamped
  /// by RewriteSession::NewCache; nullptr means profiling is off. Borrowed —
  /// the QTEs' collection loops time themselves against it without the
  /// session being visible from QteContext.
  void BindProfiler(QueryProfiler* profiler) { profiler_ = profiler; }
  QueryProfiler* profiler() const { return profiler_; }

 private:
  std::vector<std::optional<double>> slots_;
  size_t collected_ = 0;
  size_t histogram_hits_ = 0;
  size_t probes_ = 0;
  QueryProfiler* profiler_ = nullptr;
};

}  // namespace maliva

#endif  // MALIVA_QTE_SELECTIVITY_CACHE_H_
