// SelectivityTier: the middle rung of the three-rung selectivity ladder.
//
//   rung 1  shared-store hit   (qte/shared_selectivity_store.h, free)
//   rung 2  histogram estimate (this file: O(1), near-zero charged cost)
//   rung 3  sample probe       (Engine::SampledSelectivity, unit cost)
//
// The tier arbitrates rung 2 per lookup: it answers from the engine's
// full-table histograms (engine/histogram.h) when (a) its bound epoch still
// matches the engine's catalog_version() — a stats refresh silently demotes
// every lookup back to probing until Refresh() re-arms the tier — and (b) the
// (table, column) pair has not been demoted for inaccuracy.
//
// Trust is learned from serving feedback: whenever a probe does run for a
// slot the histogram could have answered (the QTE declined rung 2, or the
// accurate QTE collected ground truth anyway), RecordProbe logs the
// histogram's relative error against the probed value into a bounded
// per-(table, column) window. A column whose windowed mean error exceeds
// max_rel_error is demoted — its lookups fall through to rung 3, whose
// probes keep feeding the window, so a column re-promotes by itself when its
// recent errors shrink.
//
// Thread safety: Estimate/CanEstimate/RecordProbe are const and internally
// synchronized (sharded mutexes over the error windows, relaxed counters),
// mirroring the shared store's exception to the frozen-after-warm-up rule.
// Like the store, cross-request trust state makes request outcomes
// deterministic given the tier's state, not across interleavings.

#ifndef MALIVA_QTE_SELECTIVITY_TIER_H_
#define MALIVA_QTE_SELECTIVITY_TIER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "query/predicate.h"

namespace maliva {

/// Knobs of the histogram tier (ServiceConfig's histogram_* knobs land here).
struct SelectivityTierConfig {
  /// Virtual cost charged per histogram-answered slot, replacing the probe's
  /// QteParams::unit_cost_ms. Near-zero: the lookup touches no table.
  double histogram_cost_ms = 0.5;
  /// Demotion threshold: a (table, column) whose windowed mean relative
  /// error exceeds this falls back to probing.
  double max_rel_error = 0.35;
  /// Per-(table, column) error samples retained (ring buffer).
  size_t error_window = 32;
};

/// Arbitrates histogram-tier lookups and learns per-column trust.
class SelectivityTier {
 public:
  SelectivityTier(const Engine* engine, SelectivityTierConfig config);

  SelectivityTier(const SelectivityTier&) = delete;
  SelectivityTier& operator=(const SelectivityTier&) = delete;

  /// O(1) histogram estimate, or nullopt when the tier must decline: stale
  /// epoch, no histogram covers the predicate, or the column is demoted.
  /// Counts a histogram hit on success.
  std::optional<double> Estimate(const std::string& table, const Predicate& pred) const;

  /// Would Estimate answer right now? Same arbitration, no counters — used
  /// by QTE cost *prediction* (the C_i entries of the MDP state).
  bool CanEstimate(const std::string& table, const Predicate& pred) const;

  /// Feedback: a probe measured `probed` for this (table, pred). Records the
  /// histogram's relative error into the column's bounded window (no-op when
  /// the epoch is stale or no histogram covers the predicate).
  void RecordProbe(const std::string& table, const Predicate& pred,
                   double probed) const;

  /// Re-arms the tier after a catalog change: binds the current
  /// catalog_version() and clears all error windows (they scored the
  /// previous ground truth).
  void Refresh();

  /// Monitoring snapshot. mean_abs_rel_error averages the *currently
  /// windowed* samples across columns (the trust evidence in force), not
  /// all-time history.
  struct Stats {
    uint64_t histogram_hits = 0;   ///< Estimate calls answered by rung 2
    uint64_t probe_records = 0;    ///< RecordProbe calls that scored an error
    uint64_t error_samples = 0;    ///< samples currently windowed
    double mean_abs_rel_error = 0.0;
    uint64_t demoted_columns = 0;  ///< columns currently past max_rel_error
  };
  Stats Snapshot() const;

  const SelectivityTierConfig& config() const { return config_; }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  /// Bounded per-(table, column) relative-error accumulator.
  struct ErrorWindow {
    std::vector<double> ring;
    size_t next = 0;
    size_t count = 0;
    double sum = 0.0;

    double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, ErrorWindow> windows;
  };

  /// Demotion needs evidence: a column is only distrusted after this many
  /// windowed samples.
  static constexpr size_t kMinErrorSamples = 4;
  /// Relative-error denominator floor: near-zero probed selectivities would
  /// otherwise explode the ratio.
  static constexpr double kRelErrorFloor = 1e-3;
  static constexpr size_t kNumShards = 8;

  bool Fresh() const {
    return engine_->catalog_version() == epoch_.load(std::memory_order_acquire);
  }
  static std::string Key(const std::string& table, const std::string& column) {
    std::string key = table;
    key.push_back('\0');
    key.append(column);
    return key;
  }
  Shard& ShardFor(const std::string& key) const;
  bool Demoted(const std::string& table, const Predicate& pred) const;

  const Engine* engine_;
  SelectivityTierConfig config_;
  std::atomic<uint64_t> epoch_;
  mutable std::vector<Shard> shards_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> probe_records_{0};
};

}  // namespace maliva

#endif  // MALIVA_QTE_SELECTIVITY_TIER_H_
