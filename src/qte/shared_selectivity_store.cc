#include "qte/shared_selectivity_store.h"

#include <algorithm>
#include <mutex>

namespace maliva {

SharedSelectivityStore::SharedSelectivityStore(const Config& config)
    : capacity_(std::max<size_t>(1, config.capacity)) {
  size_t shards = std::clamp<size_t>(config.shards, 1, capacity_);
  per_shard_capacity_ = (capacity_ + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

SharedSelectivityStore::Shard& SharedSelectivityStore::ShardFor(uint64_t key) const {
  // Slot keys are already avalanche-mixed (query/signature.h), so the low
  // bits are uniformly distributed across shards.
  return *shards_[key % shards_.size()];
}

std::optional<double> SharedSelectivityStore::Lookup(uint64_t key,
                                                     uint64_t epoch) const {
  const Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end() || it->second.epoch != epoch) return std::nullopt;
  return it->second.selectivity;
}

bool SharedSelectivityStore::Publish(uint64_t key, uint64_t epoch,
                                     double selectivity) {
  Shard& shard = ShardFor(key);
  {
    // Fast path for the warm steady state: requests re-publish the slots
    // they were seeded with, which are resident by definition — discover
    // the no-op under the shared side of the lock so publishers of known
    // keys never serialize.
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end() && it->second.epoch >= epoch) return false;
  }
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // First writer wins within an epoch, and epochs only move forward: a
    // stale-epoch entry is refreshed in place (keeping its FIFO position —
    // residency age, not value age), while a laggard publisher from an older
    // epoch must not clobber newer knowledge.
    if (it->second.epoch >= epoch) return false;
    it->second = Entry{epoch, selectivity};
    return true;
  }
  while (shard.entries.size() >= per_shard_capacity_ && !shard.fifo.empty()) {
    shard.entries.erase(shard.fifo.front());
    shard.fifo.pop_front();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.entries.emplace(key, Entry{epoch, selectivity});
  shard.fifo.push_back(key);
  return true;
}

size_t SharedSelectivityStore::Size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

void SharedSelectivityStore::Clear() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mutex);
    shard->entries.clear();
    shard->fifo.clear();
  }
}

}  // namespace maliva
