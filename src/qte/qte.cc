#include "qte/qte.h"

#include <cassert>

#include "qte/selectivity_tier.h"

namespace maliva {

namespace {

uint64_t MixSlotSeed(uint64_t seed, uint64_t query_id, uint64_t slot) {
  uint64_t h = seed;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(query_id);
  mix(slot);
  return h;
}

}  // namespace

size_t QteContext::NumSlots() const {
  size_t n = query->predicates.size();
  if (query->join.has_value()) n += query->join->right_predicates.size();
  return n;
}

QteContext::SlotTarget QteContext::SlotTargetFor(size_t slot) const {
  size_t m = query->predicates.size();
  if (slot < m) return {&query->table, &query->predicates[slot]};
  assert(query->join.has_value());
  return {&query->join->right_table, &query->join->right_predicates[slot - m]};
}

std::vector<size_t> QteContext::NeededSlots(size_t ro_index) const {
  assert(ro_index < options->size());
  const RewriteOption& ro = (*options)[ro_index];
  assert(ro.hints.index_mask.has_value() &&
         "rewrite options in Omega must carry explicit index hints");
  uint32_t mask = *ro.hints.index_mask;
  size_t m = query->predicates.size();

  std::vector<size_t> slots;
  if (mask == 0) {
    // Full scan: the output-size estimate needs every base selectivity.
    for (size_t i = 0; i < m; ++i) slots.push_back(i);
  } else {
    for (size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1u) slots.push_back(i);
    }
  }
  if (query->join.has_value()) {
    for (size_t r = 0; r < query->join->right_predicates.size(); ++r) {
      slots.push_back(m + r);
    }
  }
  return slots;
}

double QteContext::ActualSlotCostMs(size_t slot) const {
  // Deterministic +-25% jitter around the unit cost: the state's C_i values
  // are rough estimates, the transition charges the actual cost (Fig 7).
  uint64_t h = MixSlotSeed(params.jitter_seed, query->id, slot);
  double unit = static_cast<double>((h >> 11) % 1000) / 1000.0;  // [0, 1)
  return params.unit_cost_ms * (0.75 + 0.5 * unit);
}

double QueryTimeEstimator::CollectCostMs(const QteContext& ctx, size_t ro_index,
                                         const SelectivityCache& cache) const {
  double cost = ctx.params.model_eval_ms;
  for (size_t slot : ctx.NeededSlots(ro_index)) {
    if (!cache.Has(slot)) cost += CostFactor() * ctx.ActualSlotCostMs(slot);
  }
  return cost;
}

double QueryTimeEstimator::PredictCostMs(const QteContext& ctx, size_t ro_index,
                                         const SelectivityCache& cache) const {
  // The histogram tier shrinks the *predicted* C_i exactly where it will
  // shrink the actual collection bill: slots the tier can answer are charged
  // its near-zero cost instead of the probe's unit cost, so the agent's MDP
  // state sees the cheap rung (paper Fig 7: estimation cost C_i drops as
  // knowledge accumulates).
  bool tiered = UsesHistogramTier() && ctx.tier != nullptr;
  double cost = ctx.params.model_eval_ms;
  for (size_t slot : ctx.NeededSlots(ro_index)) {
    if (cache.Has(slot)) continue;
    QteContext::SlotTarget target = ctx.SlotTargetFor(slot);
    if (tiered && ctx.tier->CanEstimate(*target.table, *target.pred)) {
      cost += ctx.tier->config().histogram_cost_ms;
    } else {
      cost += CostFactor() * ctx.params.unit_cost_ms;
    }
  }
  return cost;
}

}  // namespace maliva
