#include "qte/accurate_qte.h"

#include <cassert>

#include "qte/selectivity_tier.h"
#include "util/query_profiler.h"

namespace maliva {

QteEstimate AccurateQte::Estimate(const QteContext& ctx, size_t ro_index,
                                  SelectivityCache* cache) const {
  assert(ctx.query != nullptr && ctx.options != nullptr && ctx.oracle != nullptr);
  QteEstimate out;
  out.cost_ms = CollectCostMs(ctx, ro_index, *cache);

  // Mark the needed selectivities as collected (with their true values, which
  // later estimators may reuse). The accurate QTE never serves from the
  // histogram tier — exactness is its contract — but its ground-truth probes
  // are the best error signal there is, so each one scores the tier's trust
  // windows (no estimate, cost, or result changes: byte-identity holds).
  {
    ProfilerSimpleGuard ladder_span(cache->profiler(), QueryProfiler::kSelectivity);
    for (size_t slot : ctx.NeededSlots(ro_index)) {
      if (cache->Has(slot)) continue;
      QteContext::SlotTarget target = ctx.SlotTargetFor(slot);
      Result<double> sel = ctx.engine->TrueSelectivity(*target.table, *target.pred);
      cache->Set(slot, sel.ok() ? sel.value() : 0.0);
      cache->NoteProbe();
      if (ctx.tier != nullptr && sel.ok()) {
        ctx.tier->RecordProbe(*target.table, *target.pred, sel.value());
      }
    }
  }

  out.est_ms = ctx.oracle->TrueTimeMs(*ctx.query, (*ctx.options)[ro_index]);
  return out;
}

}  // namespace maliva
