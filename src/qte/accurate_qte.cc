#include "qte/accurate_qte.h"

#include <cassert>

namespace maliva {

QteEstimate AccurateQte::Estimate(const QteContext& ctx, size_t ro_index,
                                  SelectivityCache* cache) const {
  assert(ctx.query != nullptr && ctx.options != nullptr && ctx.oracle != nullptr);
  QteEstimate out;
  out.cost_ms = CollectCostMs(ctx, ro_index, *cache);

  // Mark the needed selectivities as collected (with their true values, which
  // later estimators may reuse).
  size_t m = ctx.query->predicates.size();
  for (size_t slot : ctx.NeededSlots(ro_index)) {
    if (cache->Has(slot)) continue;
    const Predicate& pred =
        slot < m ? ctx.query->predicates[slot]
                 : ctx.query->join->right_predicates[slot - m];
    const std::string& table =
        slot < m ? ctx.query->table : ctx.query->join->right_table;
    Result<double> sel = ctx.engine->TrueSelectivity(table, pred);
    cache->Set(slot, sel.ok() ? sel.value() : 0.0);
  }

  out.est_ms = ctx.oracle->TrueTimeMs(*ctx.query, (*ctx.options)[ro_index]);
  return out;
}

}  // namespace maliva
