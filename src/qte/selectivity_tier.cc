#include "qte/selectivity_tier.h"

#include <cmath>

namespace maliva {

SelectivityTier::SelectivityTier(const Engine* engine, SelectivityTierConfig config)
    : engine_(engine),
      config_(config),
      epoch_(engine->catalog_version()),
      shards_(kNumShards) {
  if (config_.error_window == 0) config_.error_window = 1;
}

SelectivityTier::Shard& SelectivityTier::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kNumShards];
}

bool SelectivityTier::Demoted(const std::string& table, const Predicate& pred) const {
  std::string key = Key(table, pred.column);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.windows.find(key);
  if (it == shard.windows.end()) return false;
  const ErrorWindow& w = it->second;
  return w.count >= kMinErrorSamples && w.Mean() > config_.max_rel_error;
}

std::optional<double> SelectivityTier::Estimate(const std::string& table,
                                                const Predicate& pred) const {
  if (!Fresh()) return std::nullopt;
  if (Demoted(table, pred)) return std::nullopt;
  Result<double> est =
      engine_->HistogramSelectivity(table, pred, epoch_.load(std::memory_order_acquire));
  if (!est.ok()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return est.value();
}

bool SelectivityTier::CanEstimate(const std::string& table, const Predicate& pred) const {
  if (!Fresh()) return false;
  if (Demoted(table, pred)) return false;
  return engine_
      ->HistogramSelectivity(table, pred, epoch_.load(std::memory_order_acquire))
      .ok();
}

void SelectivityTier::RecordProbe(const std::string& table, const Predicate& pred,
                                  double probed) const {
  if (!Fresh()) return;
  Result<double> est =
      engine_->HistogramSelectivity(table, pred, epoch_.load(std::memory_order_acquire));
  if (!est.ok()) return;
  double rel = std::abs(est.value() - probed) / std::max(probed, kRelErrorFloor);

  std::string key = Key(table, pred.column);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ErrorWindow& w = shard.windows[key];
  if (w.ring.empty()) w.ring.assign(config_.error_window, 0.0);
  if (w.count == w.ring.size()) {
    w.sum -= w.ring[w.next];  // evict the oldest sample
  } else {
    ++w.count;
  }
  w.ring[w.next] = rel;
  w.sum += rel;
  w.next = (w.next + 1) % w.ring.size();
  probe_records_.fetch_add(1, std::memory_order_relaxed);
}

void SelectivityTier::Refresh() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.windows.clear();
  }
  epoch_.store(engine_->catalog_version(), std::memory_order_release);
}

SelectivityTier::Stats SelectivityTier::Snapshot() const {
  Stats s;
  s.histogram_hits = hits_.load(std::memory_order_relaxed);
  s.probe_records = probe_records_.load(std::memory_order_relaxed);
  double sum = 0.0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, w] : shard.windows) {
      s.error_samples += w.count;
      sum += w.sum;
      if (w.count >= kMinErrorSamples && w.Mean() > config_.max_rel_error) {
        ++s.demoted_columns;
      }
    }
  }
  s.mean_abs_rel_error =
      s.error_samples == 0 ? 0.0 : sum / static_cast<double>(s.error_samples);
  return s;
}

}  // namespace maliva
