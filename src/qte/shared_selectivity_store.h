// Cross-request selectivity store: the serving fleet's shared knowledge.
//
// A SelectivityCache (qte/selectivity_cache.h) amortizes collection costs
// *within* one request; this store amortizes them *across* requests.
// Entries are keyed by the 64-bit predicate slot keys produced by
// query/signature.h, so any two requests whose canonicalized predicates
// match — dashboard refreshes, pan/zoom neighbours within a literal bin —
// read each other's collected selectivities.
//
// Concurrency: the key space is sharded; each shard holds an
// unordered_map behind its own std::shared_mutex, so readers on the hot
// serve path take a shared lock on one shard only and publishers contend
// per shard, not globally.
//
// Versioning: every entry is tagged with the epoch current when it was
// published. Lookups require an exact epoch match, so bumping the epoch —
// the service derives it from Engine::catalog_version(), which moves when
// tables or sample tables (i.e. the statistics ground truth) change —
// invalidates the entire store in O(1) without touching any shard. Stale
// entries are lazily dropped when a publish lands on them.
//
// Eviction: per-shard FIFO at capacity / shards entries. First-writer-wins
// publishing keeps a key's value stable for the lifetime of its residency,
// which keeps per-request results deterministic given a store snapshot.
//
// Fidelity: the store does not record which estimator produced a value.
// Every QTE's collected selectivity is an estimate of the same per-predicate
// statistic (the accurate QTE's being exact), so values are treated as
// interchangeable — a fleet mixing accurate and sampling strategies shares
// one knowledge pool at the fidelity of whoever collected first. The
// paper's economics concern collection *cost*, not inter-estimator drift;
// deployments that need fidelity isolation can run separate services.

#ifndef MALIVA_QTE_SHARED_SELECTIVITY_STORE_H_
#define MALIVA_QTE_SHARED_SELECTIVITY_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace maliva {

/// Sharded, epoch-versioned map from predicate slot key to selectivity.
class SharedSelectivityStore {
 public:
  struct Config {
    /// Total entry capacity across all shards (FIFO eviction per shard).
    size_t capacity = 1u << 20;
    /// Number of independently locked shards; more shards = less publisher
    /// contention. Capped at `capacity` so every shard holds >= 1 entry.
    size_t shards = 16;
  };

  explicit SharedSelectivityStore(const Config& config);

  SharedSelectivityStore(const SharedSelectivityStore&) = delete;
  SharedSelectivityStore& operator=(const SharedSelectivityStore&) = delete;

  /// Returns the selectivity published for `key` under `epoch`, or nullopt
  /// on miss (absent key or entry from a different epoch).
  std::optional<double> Lookup(uint64_t key, uint64_t epoch) const;

  /// Publishes `selectivity` for `key` under `epoch`. First writer wins
  /// while the entry stays resident: an entry from an older epoch is
  /// replaced in place, a publisher older than the resident entry is
  /// ignored (epochs only move forward). Returns true when this call
  /// inserted new knowledge.
  bool Publish(uint64_t key, uint64_t epoch, double selectivity);

  /// Current number of resident entries (sum over shards; approximate under
  /// concurrent publishing, exact when quiescent).
  size_t Size() const;

  /// Entries dropped by per-shard FIFO eviction so far.
  size_t Evictions() const { return evictions_.load(std::memory_order_relaxed); }

  /// Drops every resident entry (all epochs). Not needed for correctness —
  /// epoch mismatches already read as misses — but reclaims memory after a
  /// stats refresh.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t epoch = 0;
    double selectivity = 0.0;
  };

  /// One lock domain: a map plus the FIFO insertion order used for eviction.
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<uint64_t, Entry> entries;
    std::deque<uint64_t> fifo;
  };

  Shard& ShardFor(uint64_t key) const;

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> evictions_{0};
};

}  // namespace maliva

#endif  // MALIVA_QTE_SHARED_SELECTIVITY_STORE_H_
