// Accurate QTE: returns the true execution time of the rewritten query.
//
// Used by the paper (Section 7.1) to isolate estimation *cost* from
// estimation *error*: estimates are exact, but each estimation still pays the
// unit cost per collected selectivity.

#ifndef MALIVA_QTE_ACCURATE_QTE_H_
#define MALIVA_QTE_ACCURATE_QTE_H_

#include "qte/qte.h"

namespace maliva {

/// Ground-truth estimator with configurable collection cost.
class AccurateQte : public QueryTimeEstimator {
 public:
  const char* name() const override { return "Accurate-QTE"; }

  /// Exact estimates require thorough statistics collection: twice the unit
  /// cost of the sampling QTE (drives the paper's Fig 16 budget crossover).
  double CostFactor() const override { return 2.0; }

  QteEstimate Estimate(const QteContext& ctx, size_t ro_index,
                       SelectivityCache* cache) const override;
};

}  // namespace maliva

#endif  // MALIVA_QTE_ACCURATE_QTE_H_
