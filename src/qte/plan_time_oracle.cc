#include "qte/plan_time_oracle.h"

#include <bit>
#include <cassert>
#include <mutex>

namespace maliva {

uint64_t PlanTimeOracle::Key(const Query& query, const RewriteOption& option) {
  uint64_t h = query.id * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(option.hints.index_mask.has_value() ? (*option.hints.index_mask + 1) : 0);
  mix(static_cast<uint64_t>(option.hints.join_method));
  mix(static_cast<uint64_t>(option.approx.kind));
  mix(std::bit_cast<uint64_t>(option.approx.fraction));
  return h;
}

double PlanTimeOracle::TrueTimeMs(const Query& query, const RewriteOption& option) const {
  uint64_t key = Key(query, option);
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Execute outside the lock: deterministic, so a concurrent duplicate
  // computes the same value and emplace keeps whichever landed first.
  RewrittenQuery rq{&query, option};
  Result<ExecResult> result = engine_->Execute(rq);
  assert(result.ok());
  double ms = result.value().exec_ms;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  cache_.emplace(key, ms);
  return ms;
}

}  // namespace maliva
