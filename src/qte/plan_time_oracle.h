// Cached ground-truth execution times of rewritten queries.
//
// The accurate QTE, the MDP reward function, and the evaluation harness all
// need the true (virtual) execution time of applying a rewrite option to a
// query. Executing a plan is deterministic, so results are computed once and
// memoized here.
//
// Thread-safe: the oracle sits on the concurrent serving path (one instance
// shared by every worker), so the memo table is guarded by a shared mutex.
// Cache misses execute the plan *outside* the lock — execution is
// deterministic, so a racing duplicate computes the identical value and the
// second insert is a no-op.

#ifndef MALIVA_QTE_PLAN_TIME_ORACLE_H_
#define MALIVA_QTE_PLAN_TIME_ORACLE_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "engine/engine.h"
#include "query/rewritten_query.h"

namespace maliva {

/// Memoized Engine::Execute by (query id, rewrite option) identity.
class PlanTimeOracle {
 public:
  explicit PlanTimeOracle(const Engine* engine) : engine_(engine) {}

  /// True virtual execution time of `option` applied to `query`.
  double TrueTimeMs(const Query& query, const RewriteOption& option) const;

  /// Number of distinct (query, option) executions performed so far.
  size_t CacheSize() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return cache_.size();
  }

  const Engine* engine() const { return engine_; }

 private:
  static uint64_t Key(const Query& query, const RewriteOption& option);

  const Engine* engine_;
  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<uint64_t, double> cache_;
};

}  // namespace maliva

#endif  // MALIVA_QTE_PLAN_TIME_ORACLE_H_
