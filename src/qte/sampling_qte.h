// Sampling-based approximate QTE (Section 4.2, after Wu et al. [67]).
//
// Estimates each predicate's selectivity by running count(*) on a small
// sample table, feeds the values into the engine's analytic cost model, and
// returns the model's prediction. Error sources faithfully reproduced:
// sampling noise on rare predicates, the independence assumption across
// conjuncts, and — on the commercial profile — execution behaviours
// (buffering, plan instability) the model cannot see at all.

#ifndef MALIVA_QTE_SAMPLING_QTE_H_
#define MALIVA_QTE_SAMPLING_QTE_H_

#include "qte/qte.h"

namespace maliva {

/// Approximate estimator: sampled selectivities through the analytic model.
class SamplingQte : public QueryTimeEstimator {
 public:
  const char* name() const override { return "Approximate-QTE"; }

  /// With a SelectivityTier bound (QteContext::tier), slots the tier can
  /// answer skip the sample probe entirely and are charged the tier's
  /// near-zero histogram cost.
  bool UsesHistogramTier() const override { return true; }

  QteEstimate Estimate(const QteContext& ctx, size_t ro_index,
                       SelectivityCache* cache) const override;
};

}  // namespace maliva

#endif  // MALIVA_QTE_SAMPLING_QTE_H_
