// Query Time Estimator (QTE) interface and planning context (Section 4.2).

#ifndef MALIVA_QTE_QTE_H_
#define MALIVA_QTE_QTE_H_

#include <cstdint>
#include <vector>

#include "engine/engine.h"
#include "qte/plan_time_oracle.h"
#include "qte/qte_params.h"
#include "qte/selectivity_cache.h"
#include "query/hints.h"
#include "query/query.h"

namespace maliva {

class SelectivityTier;

/// Everything a QTE needs to estimate rewritten queries of one original
/// query: the query, the predefined RO set Omega, the engine, the ground-truth
/// oracle, and the cost parameters of selectivity collection.
struct QteContext {
  const Query* query = nullptr;
  const RewriteOptionSet* options = nullptr;
  const Engine* engine = nullptr;
  const PlanTimeOracle* oracle = nullptr;

  /// Histogram tier (rung 2 of the selectivity ladder); nullptr while
  /// ServiceConfig::histogram_selectivity is off, preserving byte-identity.
  const SelectivityTier* tier = nullptr;

  /// Cost parameters of selectivity collection (see qte/qte_params.h).
  QteParams params;

  /// Number of selectivity slots: base predicates + join right predicates.
  size_t NumSlots() const;

  /// The (table, predicate) a slot resolves to: slots [0, m) are the base
  /// predicates, slots [m, m + r) the join right-side predicates.
  struct SlotTarget {
    const std::string* table;
    const Predicate* pred;
  };
  SlotTarget SlotTargetFor(size_t slot) const;

  /// Slots whose selectivities are needed to estimate option `ro_index`:
  /// the attributes whose index the hint set uses (all of them for the
  /// forced-full-scan option, which needs the output-size estimate), plus the
  /// right-side slots when the query joins.
  std::vector<size_t> NeededSlots(size_t ro_index) const;

  /// Actual cost of collecting `slot` for this query (estimate = unit cost;
  /// actual = unit cost with deterministic per-(query, slot) jitter).
  double ActualSlotCostMs(size_t slot) const;
};

/// Outcome of one QTE invocation.
struct QteEstimate {
  double est_ms = 0.0;   ///< estimated execution time of the rewritten query
  double cost_ms = 0.0;  ///< actual planning time paid for this estimation
};

/// Estimates the execution time of rewritten queries. Implementations charge
/// per-selectivity collection costs against the shared SelectivityCache.
///
/// Implementations must be stateless (const and data-race-free): all mutable
/// per-request state lives in the caller-supplied SelectivityCache, so one
/// estimator instance is shared by every concurrent serving thread.
class QueryTimeEstimator {
 public:
  virtual ~QueryTimeEstimator() = default;

  virtual const char* name() const = 0;

  /// Multiplier on the per-selectivity unit cost. Accurate estimation is
  /// costlier than sampling (paper Section 7.4: at tight budgets the
  /// Accurate-QTE is "too expensive for planning").
  virtual double CostFactor() const { return 1.0; }

  /// Whether this estimator serves slots from the histogram tier when
  /// QteContext::tier is bound. The sampling QTE does (a histogram estimate
  /// replaces its sample probe outright); the accurate QTE keeps probing for
  /// ground truth and only feeds the tier's error windows.
  virtual bool UsesHistogramTier() const { return false; }

  /// Estimates option `ro_index`, collecting missing selectivities into
  /// `cache` (and paying their cost).
  virtual QteEstimate Estimate(const QteContext& ctx, size_t ro_index,
                               SelectivityCache* cache) const = 0;

  /// A-priori cost prediction for estimating option `ro_index` given what is
  /// already cached — the C_i entries of the MDP state.
  double PredictCostMs(const QteContext& ctx, size_t ro_index,
                       const SelectivityCache& cache) const;

 protected:
  /// Actual cost of collecting all missing slots needed by `ro_index`.
  double CollectCostMs(const QteContext& ctx, size_t ro_index,
                       const SelectivityCache& cache) const;
};

}  // namespace maliva

#endif  // MALIVA_QTE_QTE_H_
