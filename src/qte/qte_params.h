// QTE cost parameters (single source of truth).
//
// These knobs price selectivity collection and model evaluation in virtual
// milliseconds (see DESIGN.md "QTE cost accounting"). The defaults reproduce
// the paper's main setting; per-experiment overrides flow ScenarioConfig ->
// ServiceConfig -> QteContext without re-specifying any default.

#ifndef MALIVA_QTE_QTE_PARAMS_H_
#define MALIVA_QTE_QTE_PARAMS_H_

#include <cstdint>

namespace maliva {

/// QTE cost parameters shared by one experiment / service instance.
struct QteParams {
  /// Virtual ms to collect one selectivity value (paper default: 40ms for the
  /// accurate QTE; per-workload values in Section 7.8).
  double unit_cost_ms = 40.0;
  /// Virtual ms to run the estimation model once selectivities are available.
  double model_eval_ms = 2.0;
  /// Sampling rate of the QTE sample table (must be pre-built on the engine).
  double qte_sample_rate = 0.01;
  /// Seed for the deterministic jitter between estimated and actual
  /// collection costs (the paper's "estimated 25ms, actual 30ms").
  uint64_t jitter_seed = 17;
};

}  // namespace maliva

#endif  // MALIVA_QTE_QTE_PARAMS_H_
