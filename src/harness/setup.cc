#include "harness/setup.h"

#include <cassert>
#include <limits>

namespace maliva {

ExperimentSetup::ExperimentSetup(Scenario* scenario, Options options)
    : scenario_(scenario), options_(options) {
  accurate_qte_ = std::make_unique<AccurateQte>();
  sampling_qte_ = std::make_unique<SamplingQte>();
  quality_oracle_ = std::make_unique<QualityOracle>(scenario_->engine.get());
}

ExperimentSetup::~ExperimentSetup() = default;

RewriterEnv ExperimentSetup::MakeEnv(QueryTimeEstimator* qte, double beta,
                                     const RewriteOptionSet* options) const {
  RewriterEnv renv;
  renv.engine = scenario_->engine.get();
  renv.oracle = scenario_->oracle.get();
  renv.options = options != nullptr ? options : &scenario_->options;
  renv.qte = qte;
  renv.qte_params.unit_cost_ms = scenario_->config.unit_cost_ms;
  renv.qte_params.qte_sample_rate = scenario_->config.qte_sample_rate;
  renv.qte_params.jitter_seed = scenario_->config.seed ^ 0x6a697474;
  renv.env_config.tau_ms = scenario_->config.tau_ms;
  renv.env_config.beta = beta;
  if (beta < 1.0) renv.env_config.quality = quality_oracle_.get();
  return renv;
}

std::unique_ptr<QAgent> ExperimentSetup::TrainBest(const RewriterEnv& renv) {
  std::unique_ptr<QAgent> best;
  double best_vqp = -1.0;
  const std::vector<const Query*>& validation = scenario_->validation;

  for (size_t seed = 0; seed < options_.num_agent_seeds; ++seed) {
    TrainerConfig tc = options_.trainer;
    tc.seed = options_.trainer.seed + seed * 7919;
    Trainer trainer(renv, tc);
    std::unique_ptr<QAgent> agent = trainer.Train(scenario_->train);

    // Hold-out validation: keep the best agent by validation VQP.
    size_t viable = 0;
    for (const Query* q : validation) {
      RewriteOutcome out = RunGreedyEpisode(renv, *agent, *q);
      viable += out.viable ? 1 : 0;
    }
    double vqp = validation.empty()
                     ? 0.0
                     : static_cast<double>(viable) / static_cast<double>(validation.size());
    if (vqp > best_vqp) {
      best_vqp = vqp;
      best = std::move(agent);
    }
  }
  assert(best != nullptr);
  return best;
}

Approach ExperimentSetup::Baseline() {
  if (baseline_ == nullptr) {
    baseline_ = std::make_unique<BaselineRewriter>(
        scenario_->engine.get(), scenario_->oracle.get(), scenario_->config.tau_ms);
  }
  BaselineRewriter* r = baseline_.get();
  return {"Baseline", [r](const Query& q) { return r->Rewrite(q); }};
}

Approach ExperimentSetup::MdpAccurate() {
  if (mdp_accurate_ == nullptr) {
    RewriterEnv renv = MakeEnv(accurate_qte_.get());
    mdp_accurate_agent_ = TrainBest(renv);
    mdp_accurate_ = std::make_unique<MalivaRewriter>(renv, mdp_accurate_agent_.get(),
                                                     "MDP (Accurate-QTE)");
  }
  MalivaRewriter* r = mdp_accurate_.get();
  return {r->name(), [r](const Query& q) { return r->Rewrite(q); }};
}

Approach ExperimentSetup::MdpApproximate() {
  if (mdp_approx_ == nullptr) {
    RewriterEnv renv = MakeEnv(sampling_qte_.get());
    mdp_approx_agent_ = TrainBest(renv);
    mdp_approx_ = std::make_unique<MalivaRewriter>(renv, mdp_approx_agent_.get(),
                                                   "MDP (Approx-QTE)");
  }
  MalivaRewriter* r = mdp_approx_.get();
  return {r->name(), [r](const Query& q) { return r->Rewrite(q); }};
}

Approach ExperimentSetup::Bao() {
  if (bao_ == nullptr) {
    BaoTrainer trainer(scenario_->engine.get(), scenario_->oracle.get(),
                       &scenario_->options);
    bao_qte_ = trainer.Train(scenario_->train, scenario_->config.seed ^ 0x62616f);
    bao_ = std::make_unique<BaoRewriter>(
        scenario_->engine.get(), scenario_->oracle.get(), &scenario_->options,
        bao_qte_.get(), scenario_->config.tau_ms, options_.bao_per_plan_cost_ms);
  }
  BaoRewriter* r = bao_.get();
  return {"Bao", [r](const Query& q) { return r->Rewrite(q); }};
}

Approach ExperimentSetup::NaiveApproximate() {
  if (naive_ == nullptr) {
    naive_ = std::make_unique<NaiveRewriter>(MakeEnv(sampling_qte_.get()),
                                             "Naive (Approx-QTE)");
  }
  NaiveRewriter* r = naive_.get();
  return {r->name(), [r](const Query& q) { return r->Rewrite(q); }};
}

Approach ExperimentSetup::OneStageQualityAware(const std::vector<ApproxRule>& rules) {
  if (one_stage_ == nullptr) {
    one_stage_options_ = std::make_unique<RewriteOptionSet>(
        CrossWithApproxRules(scenario_->options, rules, /*include_exact=*/true));
    RewriterEnv renv =
        MakeEnv(accurate_qte_.get(), options_.beta, one_stage_options_.get());
    one_stage_agent_ = TrainBest(renv);
    one_stage_ = std::make_unique<MalivaRewriter>(renv, one_stage_agent_.get(),
                                                  "1-stage MDP (Accu-QTE)");
  }
  MalivaRewriter* r = one_stage_.get();
  return {r->name(), [r](const Query& q) { return r->Rewrite(q); }};
}

Approach ExperimentSetup::TwoStageQualityAware(const std::vector<ApproxRule>& rules) {
  if (two_stage_ == nullptr) {
    // Stage 1: exact options with the efficiency-only reward. Reuse the
    // already-trained exact agent when available.
    RewriterEnv exact_env = MakeEnv(accurate_qte_.get());
    const QAgent* exact_agent = mdp_accurate_agent_.get();
    if (exact_agent == nullptr) {
      two_stage_exact_agent_ = TrainBest(exact_env);
      exact_agent = two_stage_exact_agent_.get();
    }
    // Stage 2: approximate combinations with the quality-aware reward.
    approx_only_options_ = std::make_unique<RewriteOptionSet>(
        CrossWithApproxRules(scenario_->options, rules, /*include_exact=*/false));
    RewriterEnv approx_env =
        MakeEnv(accurate_qte_.get(), options_.beta, approx_only_options_.get());
    two_stage_approx_agent_ = TrainBest(approx_env);
    two_stage_ = std::make_unique<TwoStageRewriter>(
        exact_env, exact_agent, approx_env, two_stage_approx_agent_.get(),
        "2-stage MDP (Accu-QTE)");
  }
  TwoStageRewriter* r = two_stage_.get();
  return {r->name(), [r](const Query& q) { return r->Rewrite(q); }};
}

std::unique_ptr<QAgent> ExperimentSetup::TrainAgentOn(
    const std::vector<const Query*>& workload, uint64_t seed,
    std::vector<Trainer::IterationStats>* history) {
  RewriterEnv renv = MakeEnv(accurate_qte_.get());
  TrainerConfig tc = options_.trainer;
  tc.seed = seed;
  Trainer trainer(renv, tc);
  std::unique_ptr<QAgent> agent = trainer.Train(workload);
  if (history != nullptr) *history = trainer.history();
  return agent;
}

double ExperimentSetup::EvaluateAgentVqp(
    const QAgent& agent, const std::vector<const Query*>& workload) const {
  if (workload.empty()) return 0.0;
  RewriterEnv renv = MakeEnv(accurate_qte_.get());
  size_t viable = 0;
  for (const Query* q : workload) {
    RewriteOutcome out = RunGreedyEpisode(renv, agent, *q);
    viable += out.viable ? 1 : 0;
  }
  return 100.0 * static_cast<double>(viable) / static_cast<double>(workload.size());
}

}  // namespace maliva
