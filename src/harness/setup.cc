#include "harness/setup.h"

#include <cstdio>
#include <cstdlib>

namespace maliva {

namespace {

ServiceConfig ToServiceConfig(const ExperimentSetup::Options& options) {
  ServiceConfig config;
  config.trainer = options.trainer;
  config.num_agent_seeds = options.num_agent_seeds;
  config.bao_per_plan_cost_ms = options.bao_per_plan_cost_ms;
  config.beta = options.beta;
  return config;
}

}  // namespace

Approach ApproachFor(MalivaService& service, const std::string& strategy) {
  Result<const Rewriter*> built = service.GetRewriter(strategy);
  if (!built.ok()) {
    std::fprintf(stderr, "failed to build strategy \"%s\": %s\n", strategy.c_str(),
                 built.status().ToString().c_str());
    std::abort();
  }
  const Rewriter* rewriter = built.value();
  return {rewriter->name(), [rewriter](const Query& q) { return rewriter->Rewrite(q); }};
}

std::vector<Approach> ApproachesFor(MalivaService& service,
                                    std::initializer_list<const char*> strategies) {
  std::vector<Approach> approaches;
  approaches.reserve(strategies.size());
  for (const char* strategy : strategies) {
    approaches.push_back(ApproachFor(service, strategy));
  }
  return approaches;
}

ExperimentSetup::ExperimentSetup(Scenario* scenario, Options options)
    : service_(scenario, ToServiceConfig(options)) {}

Approach ExperimentSetup::OneStageQualityAware(const std::vector<ApproxRule>& rules) {
  service_.SetApproxRules(rules);
  return ApproachNamed("quality/one-stage");
}

Approach ExperimentSetup::TwoStageQualityAware(const std::vector<ApproxRule>& rules) {
  service_.SetApproxRules(rules);
  return ApproachNamed("quality/two-stage");
}

}  // namespace maliva
