#include "harness/experiment.h"

#include <iomanip>

#include "util/string_util.h"

namespace maliva {

ExperimentResult RunExperiment(const std::vector<Approach>& approaches,
                               const BucketedWorkload& workload) {
  ExperimentResult result;
  for (const Approach& a : approaches) result.approach_names.push_back(a.name);

  for (size_t b = 0; b < workload.buckets.size(); ++b) {
    BucketMetrics bm;
    bm.label = workload.scheme.Label(b);
    bm.num_queries = workload.buckets[b].size();
    bm.per_approach.resize(approaches.size());

    for (size_t ai = 0; ai < approaches.size(); ++ai) {
      ApproachMetrics& m = bm.per_approach[ai];
      if (bm.num_queries == 0) continue;
      size_t viable = 0;
      double total = 0.0, plan = 0.0, exec = 0.0, quality = 0.0;
      for (const Query* q : workload.buckets[b]) {
        RewriteOutcome out = approaches[ai].rewrite(*q);
        viable += out.viable ? 1 : 0;
        total += out.total_ms;
        plan += out.planning_ms;
        exec += out.exec_ms;
        quality += out.quality;
      }
      double n = static_cast<double>(bm.num_queries);
      m.vqp = 100.0 * static_cast<double>(viable) / n;
      m.aqrt_ms = total / n;
      m.plan_ms = plan / n;
      m.exec_ms = exec / n;
      m.quality = quality / n;
    }
    result.buckets.push_back(std::move(bm));
  }
  return result;
}

namespace {

void PrintHeader(const ExperimentResult& result, const std::string& title,
                 std::ostream& os) {
  os << "\n== " << title << " ==\n";
  os << std::left << std::setw(8) << "bucket" << std::setw(8) << "n";
  for (const std::string& name : result.approach_names) {
    os << std::setw(22) << name;
  }
  os << "\n";
}

}  // namespace

void PrintVqpTable(const ExperimentResult& result, const std::string& title,
                   std::ostream& os) {
  PrintHeader(result, title + " | viable query % (VQP)", os);
  for (const BucketMetrics& bm : result.buckets) {
    os << std::left << std::setw(8) << bm.label << std::setw(8) << bm.num_queries;
    for (const ApproachMetrics& m : bm.per_approach) {
      os << std::setw(22) << FormatDouble(m.vqp, 1);
    }
    os << "\n";
  }
}

void PrintAqrtTable(const ExperimentResult& result, const std::string& title,
                    std::ostream& os) {
  PrintHeader(result, title + " | avg response time s (plan+query)", os);
  for (const BucketMetrics& bm : result.buckets) {
    os << std::left << std::setw(8) << bm.label << std::setw(8) << bm.num_queries;
    for (const ApproachMetrics& m : bm.per_approach) {
      std::string cell = FormatDouble(m.aqrt_ms / 1000.0, 3) + " (" +
                         FormatDouble(m.plan_ms / 1000.0, 3) + "+" +
                         FormatDouble(m.exec_ms / 1000.0, 3) + ")";
      os << std::setw(22) << cell;
    }
    os << "\n";
  }
}

void PrintQualityTable(const ExperimentResult& result, const std::string& title,
                       std::ostream& os) {
  PrintHeader(result, title + " | avg Jaccard quality", os);
  for (const BucketMetrics& bm : result.buckets) {
    os << std::left << std::setw(8) << bm.label << std::setw(8) << bm.num_queries;
    for (const ApproachMetrics& m : bm.per_approach) {
      os << std::setw(22) << FormatDouble(m.quality, 3);
    }
    os << "\n";
  }
}

void PrintBucketSizes(const BucketedWorkload& workload, const std::string& title,
                      std::ostream& os) {
  os << "\n== " << title << " | queries per viable-plan bucket ==\n";
  for (size_t b = 0; b < workload.buckets.size(); ++b) {
    os << std::left << std::setw(8) << workload.scheme.Label(b)
       << workload.buckets[b].size() << "\n";
  }
  if (!workload.out_of_range.empty()) {
    os << std::left << std::setw(8) << "other" << workload.out_of_range.size() << "\n";
  }
}

}  // namespace maliva
