// Experiment runner: evaluates rewriting approaches per difficulty bucket and
// prints paper-style tables (VQP, AQRT with plan/query breakdown, quality).

#ifndef MALIVA_HARNESS_EXPERIMENT_H_
#define MALIVA_HARNESS_EXPERIMENT_H_

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/rewriter.h"
#include "workload/difficulty.h"

namespace maliva {

/// One query-rewriting approach under evaluation.
struct Approach {
  std::string name;
  std::function<RewriteOutcome(const Query&)> rewrite;
};

/// Aggregated metrics of one approach over one difficulty bucket.
struct ApproachMetrics {
  double vqp = 0.0;        ///< viable-query percentage [0, 100]
  double aqrt_ms = 0.0;    ///< mean total response time
  double plan_ms = 0.0;    ///< mean planning time component
  double exec_ms = 0.0;    ///< mean execution time component
  double quality = 1.0;    ///< mean visualization quality
};

/// Metrics of all approaches for one bucket.
struct BucketMetrics {
  std::string label;
  size_t num_queries = 0;
  std::vector<ApproachMetrics> per_approach;
};

/// A full experiment: approaches x buckets.
struct ExperimentResult {
  std::vector<std::string> approach_names;
  std::vector<BucketMetrics> buckets;
};

/// Runs every approach on every bucketed query.
ExperimentResult RunExperiment(const std::vector<Approach>& approaches,
                               const BucketedWorkload& workload);

/// Paper-style table printers (gnuplot-friendly columns).
void PrintVqpTable(const ExperimentResult& result, const std::string& title,
                   std::ostream& os = std::cout);
void PrintAqrtTable(const ExperimentResult& result, const std::string& title,
                    std::ostream& os = std::cout);
void PrintQualityTable(const ExperimentResult& result, const std::string& title,
                       std::ostream& os = std::cout);
/// Bucket sizes (Table 2 / Table 3 rows).
void PrintBucketSizes(const BucketedWorkload& workload, const std::string& title,
                      std::ostream& os = std::cout);

}  // namespace maliva

#endif  // MALIVA_HARNESS_EXPERIMENT_H_
