// Approach factory: owns QTEs, trains agents, and wires rewriters into
// Approach closures for the experiment runner.

#ifndef MALIVA_HARNESS_SETUP_H_
#define MALIVA_HARNESS_SETUP_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/bao.h"
#include "baselines/baseline.h"
#include "core/trainer.h"
#include "harness/experiment.h"
#include "qte/accurate_qte.h"
#include "qte/sampling_qte.h"
#include "quality/quality.h"
#include "workload/scenario.h"

namespace maliva {

/// Builds and owns everything needed to evaluate the paper's approaches on
/// one scenario. Keep alive while the returned Approach closures are used.
class ExperimentSetup {
 public:
  struct Options {
    TrainerConfig trainer;
    /// Agents trained per approach; the best on the validation workload is
    /// kept (hold-out validation, Section 7.1).
    size_t num_agent_seeds = 2;
    double bao_per_plan_cost_ms = 10.0;
    /// Reward weight for quality-aware agents (Eq 2).
    double beta = 0.5;
  };

  ExperimentSetup(Scenario* scenario, Options options);
  ~ExperimentSetup();

  /// No-rewriting baseline (backend optimizer).
  Approach Baseline();
  /// MDP agent with the accurate QTE. Trains on first call.
  Approach MdpAccurate();
  /// MDP agent with the sampling (approximate) QTE. Trains on first call.
  Approach MdpApproximate();
  /// Bao comparator. Trains its plan-feature QTE on first call.
  Approach Bao();
  /// Brute-force enumeration with the sampling QTE.
  Approach NaiveApproximate();

  /// Quality-aware approaches over hint x approximation-rule options.
  /// `rules` must contain approximate rules only.
  Approach OneStageQualityAware(const std::vector<ApproxRule>& rules);
  Approach TwoStageQualityAware(const std::vector<ApproxRule>& rules);

  /// Trains an MDP agent (accurate QTE) on an explicit workload and returns
  /// per-iteration stats — used by the learning-curve experiment (Fig 21).
  std::unique_ptr<QAgent> TrainAgentOn(const std::vector<const Query*>& workload,
                                       uint64_t seed,
                                       std::vector<Trainer::IterationStats>* history);

  /// Evaluates a trained agent's VQP over a workload (accurate QTE env).
  double EvaluateAgentVqp(const QAgent& agent,
                          const std::vector<const Query*>& workload) const;

  Scenario* scenario() { return scenario_; }
  RewriterEnv MakeEnv(QueryTimeEstimator* qte, double beta = 1.0,
                      const RewriteOptionSet* options = nullptr) const;

 private:
  /// Trains `num_agent_seeds` agents, keeps the best by validation VQP.
  std::unique_ptr<QAgent> TrainBest(const RewriterEnv& renv);

  Scenario* scenario_;
  Options options_;

  std::unique_ptr<AccurateQte> accurate_qte_;
  std::unique_ptr<SamplingQte> sampling_qte_;
  std::unique_ptr<QualityOracle> quality_oracle_;

  std::unique_ptr<QAgent> mdp_accurate_agent_;
  std::unique_ptr<MalivaRewriter> mdp_accurate_;
  std::unique_ptr<QAgent> mdp_approx_agent_;
  std::unique_ptr<MalivaRewriter> mdp_approx_;

  std::unique_ptr<BaoQte> bao_qte_;
  std::unique_ptr<BaoRewriter> bao_;
  std::unique_ptr<BaselineRewriter> baseline_;
  std::unique_ptr<NaiveRewriter> naive_;

  // Quality-aware machinery (option sets must outlive rewriters).
  std::unique_ptr<RewriteOptionSet> one_stage_options_;
  std::unique_ptr<QAgent> one_stage_agent_;
  std::unique_ptr<MalivaRewriter> one_stage_;
  std::unique_ptr<RewriteOptionSet> approx_only_options_;
  std::unique_ptr<QAgent> two_stage_exact_agent_;
  std::unique_ptr<QAgent> two_stage_approx_agent_;
  std::unique_ptr<TwoStageRewriter> two_stage_;
};

}  // namespace maliva

#endif  // MALIVA_HARNESS_SETUP_H_
