// Experiment-harness adapter over MalivaService.
//
// The experiment runner consumes `Approach` closures; this header wraps
// service-built strategies into them. All wiring (QTEs, agents, option sets)
// lives in src/service/ — nothing here constructs rewriters directly.

#ifndef MALIVA_HARNESS_SETUP_H_
#define MALIVA_HARNESS_SETUP_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "service/service.h"
#include "workload/scenario.h"

namespace maliva {

/// Wraps a service strategy into an Approach (display name + closure). The
/// service must outlive the returned closure. Aborts with a readable message
/// when the strategy cannot be built — experiments want loud failures.
Approach ApproachFor(MalivaService& service, const std::string& strategy);

/// Builds several strategies at once, in order.
std::vector<Approach> ApproachesFor(MalivaService& service,
                                    std::initializer_list<const char*> strategies);

/// Thin compatibility facade retaining the historical approach-factory
/// surface. New code should drive MalivaService directly.
class ExperimentSetup {
 public:
  struct Options {
    TrainerConfig trainer;
    /// Agents trained per approach; the best on the validation workload is
    /// kept (hold-out validation, Section 7.1).
    size_t num_agent_seeds = 2;
    double bao_per_plan_cost_ms = 10.0;
    /// Reward weight for quality-aware agents (Eq 2).
    double beta = 0.5;
  };

  ExperimentSetup(Scenario* scenario, Options options);

  MalivaService& service() { return service_; }
  Scenario* scenario() { return service_.scenario(); }

  /// Builds the named strategy through the service (training on first use).
  Approach ApproachNamed(const std::string& strategy) {
    return ApproachFor(service_, strategy);
  }

  Approach Baseline() { return ApproachNamed("baseline"); }
  Approach MdpAccurate() { return ApproachNamed("mdp/accurate"); }
  Approach MdpApproximate() { return ApproachNamed("mdp/sampling"); }
  Approach Bao() { return ApproachNamed("bao"); }
  Approach NaiveApproximate() { return ApproachNamed("naive"); }

  /// Quality-aware approaches over hint x approximation-rule options.
  /// `rules` must contain approximate rules only.
  Approach OneStageQualityAware(const std::vector<ApproxRule>& rules);
  Approach TwoStageQualityAware(const std::vector<ApproxRule>& rules);

  /// Trains an MDP agent (accurate QTE) on an explicit workload and returns
  /// per-iteration stats — used by the learning-curve experiment (Fig 21).
  std::unique_ptr<QAgent> TrainAgentOn(const std::vector<const Query*>& workload,
                                       uint64_t seed,
                                       std::vector<Trainer::IterationStats>* history) {
    return service_.TrainAgentOn(workload, seed, history);
  }

  /// Evaluates a trained agent's VQP over a workload (accurate QTE env).
  double EvaluateAgentVqp(const QAgent& agent,
                          const std::vector<const Query*>& workload) const {
    return service_.EvaluateAgentVqp(agent, workload);
  }

  RewriterEnv MakeEnv(const QueryTimeEstimator* qte, double beta = 1.0,
                      const RewriteOptionSet* options = nullptr) const {
    return service_.MakeEnv(qte, beta, options);
  }

 private:
  MalivaService service_;
};

}  // namespace maliva

#endif  // MALIVA_HARNESS_SETUP_H_
