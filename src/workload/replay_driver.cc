#include "workload/replay_driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <thread>

namespace maliva {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void Mix(uint64_t* h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void MixU64(uint64_t* h, uint64_t v) { Mix(h, &v, sizeof(v)); }

void MixDouble(uint64_t* h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  MixU64(h, bits);
}

void MixString(uint64_t* h, const std::string& s) {
  MixU64(h, s.size());
  Mix(h, s.data(), s.size());
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

/// Latency distribution plus classification counters for one rollup bucket.
/// The histogram is the metrics plane's own log-linear instrument (ISSUE
/// 10): O(1) per sample, percentiles within ~1% of an exact sort, and its
/// snapshot is mergeable with the fleet's serve-latency series.
/// Non-movable (atomic bucket array) — buckets construct in place.
struct Bucket {
  ScenarioRollup rollup;
  LatencyHistogram hist;
};

void Classify(const Result<RewriteResponse>& r, double latency_ms, Bucket* b) {
  ++b->rollup.records;
  if (!r.ok()) {
    switch (r.status().code()) {
      case Status::Code::kDeadlineExceeded:
        ++b->rollup.shed_deadline;
        break;
      case Status::Code::kResourceExhausted:
        ++b->rollup.shed_overload;
        break;
      default:
        ++b->rollup.errors;
        break;
    }
    return;
  }
  ++b->rollup.ok;
  const RewriteResponse& resp = r.value();
  if (resp.stats.degraded) ++b->rollup.degraded;
  if (resp.stats.result_cache_hit) ++b->rollup.result_cache_hits;
  if (resp.exact_fallback) ++b->rollup.exact_fallbacks;
  b->hist.Record(latency_ms);
}

/// Finalizes the rollup's percentiles/qps and returns the distribution.
HistogramSnapshot FinishBucket(Bucket* b, double wall_seconds) {
  HistogramSnapshot snap = b->hist.Snapshot();
  b->rollup.p50_ms = snap.Percentile(0.50);
  b->rollup.p95_ms = snap.Percentile(0.95);
  b->rollup.p99_ms = snap.Percentile(0.99);
  b->rollup.qps = wall_seconds <= 0.0
                      ? 0.0
                      : static_cast<double>(b->rollup.records) / wall_seconds;
  return snap;
}

}  // namespace

uint64_t ReplayDriver::ResponseDigest(const Result<RewriteResponse>& response) {
  uint64_t h = kFnvOffset;
  if (!response.ok()) {
    // Code only: shed/error *messages* may embed run-varying wait times.
    MixU64(&h, 0);
    MixU64(&h, static_cast<uint64_t>(response.status().code()));
    return h;
  }
  const RewriteResponse& r = response.value();
  MixU64(&h, 1);
  MixString(&h, r.strategy);
  MixString(&h, r.rewritten_sql);
  MixU64(&h, r.outcome.option_index);
  MixDouble(&h, r.outcome.planning_ms);
  MixDouble(&h, r.outcome.exec_ms);
  MixDouble(&h, r.outcome.total_ms);
  MixDouble(&h, r.outcome.quality);
  MixU64(&h, r.outcome.viable ? 1 : 0);
  MixU64(&h, r.outcome.steps);
  MixU64(&h, r.outcome.approximate ? 1 : 0);
  MixU64(&h, r.exact_fallback ? 1 : 0);
  return h;
}

uint64_t ReplayDriver::CombineDigests(const std::vector<uint64_t>& digests) {
  uint64_t h = kFnvOffset;
  MixU64(&h, digests.size());
  for (uint64_t d : digests) MixU64(&h, d);
  return h;
}

Result<std::vector<ReplayDriver::ResolvedRecord>> ReplayDriver::BuildRequests(
    const Trace& trace) const {
  // Resolve each stream's scenario once: its shard's service (query source)
  // and its rollup key.
  struct StreamBinding {
    std::shared_ptr<const MalivaService> service;
    std::string key;
  };
  std::string sole_id;
  std::vector<StreamBinding> bindings;
  bindings.reserve(trace.streams.size());
  for (const TraceStream& s : trace.streams) {
    StreamBinding b;
    b.key = s.scenario;
    if (b.key.empty()) {
      if (sole_id.empty()) {
        std::vector<ScenarioInfo> infos = fleet_->ListScenarios();
        if (infos.size() != 1) {
          return Status::InvalidArgument(
              "replay: trace stream with empty scenario needs a single-shard "
              "fleet (" + std::to_string(infos.size()) + " registered)");
        }
        sole_id = infos[0].id;
      }
      b.key = sole_id;
    }
    Result<std::shared_ptr<const MalivaService>> svc = fleet_->ServiceFor(b.key);
    MALIVA_RETURN_NOT_OK(svc.status());
    b.service = svc.value();
    if (b.service->scenario()->evaluation.empty()) {
      return Status::FailedPrecondition("replay: scenario \"" + b.key +
                                        "\" has an empty evaluation split");
    }
    bindings.push_back(std::move(b));
  }

  std::vector<ResolvedRecord> out;
  out.reserve(trace.records.size());
  for (const TraceRecord& r : trace.records) {
    const TraceStream& s = trace.streams[r.stream];
    const StreamBinding& b = bindings[r.stream];
    const std::vector<const Query*>& eval = b.service->scenario()->evaluation;
    ResolvedRecord resolved;
    resolved.scenario_key = b.key;
    resolved.request.query = eval[r.query_index % eval.size()];
    resolved.request.scenario = s.scenario;
    resolved.request.strategy = s.strategy;
    if (s.tau_ms > 0.0) resolved.request.tau_ms = s.tau_ms;
    if (s.quality_floor >= 0.0) resolved.request.quality_floor = s.quality_floor;
    out.push_back(std::move(resolved));
  }
  return out;
}

Result<ReplayReport> ReplayDriver::Replay(const Trace& trace,
                                          const ReplayOptions& options) const {
  MALIVA_RETURN_NOT_OK(trace.Validate());
  if (trace.records.empty()) {
    return Status::InvalidArgument("replay: trace \"" + trace.name +
                                   "\" has no records");
  }
  if (options.open_loop && !fleet_->config().admission.enabled) {
    return Status::FailedPrecondition(
        "replay: open-loop drive requires FleetConfig::admission (ServeAsync's "
        "precondition); use closed-loop or enable the control plane");
  }
  if (options.open_loop &&
      (!std::isfinite(options.time_scale) || options.time_scale <= 0.0)) {
    return Status::InvalidArgument("replay: open-loop time_scale must be > 0");
  }

  Result<std::vector<ResolvedRecord>> resolved = BuildRequests(trace);
  MALIVA_RETURN_NOT_OK(resolved.status());
  const std::vector<ResolvedRecord>& records = resolved.value();
  const size_t n = records.size();

  // Per-record completions in trace order (digest order is trace order no
  // matter how completions interleave).
  std::vector<std::optional<Result<RewriteResponse>>> responses(n);
  std::vector<double> latencies_ms(n, 0.0);

  const auto wall_start = std::chrono::steady_clock::now();
  if (!options.open_loop) {
    std::vector<RewriteRequest> requests;
    requests.reserve(n);
    for (const ResolvedRecord& r : records) requests.push_back(r.request);
    std::vector<Result<RewriteResponse>> batch =
        fleet_->ServeBatch(std::span<const RewriteRequest>(requests));
    for (size_t i = 0; i < n; ++i) {
      if (batch[i].ok()) latencies_ms[i] = batch[i].value().stats.serve_wall_ms;
      responses[i].emplace(std::move(batch[i]));
    }
  } else {
    // Open loop: fire each record at wall offset arrival_ms * time_scale,
    // never waiting for completions — the schedule is the schedule.
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = n;
    for (size_t i = 0; i < n; ++i) {
      const ResolvedRecord& r = records[i];
      const auto scheduled =
          wall_start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               trace.records[i].arrival_ms * options.time_scale));
      std::this_thread::sleep_until(scheduled);
      Status fired = fleet_->ServeAsync(
          r.request, [&, i, scheduled](Result<RewriteResponse> resp) {
            double latency =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - scheduled)
                    .count();
            std::lock_guard<std::mutex> lock(mu);
            latencies_ms[i] = latency < 0.0 ? 0.0 : latency;
            responses[i].emplace(std::move(resp));
            if (--remaining == 0) cv.notify_all();
          });
      if (!fired.ok()) {
        // ServeAsync invokes done inline for sheds; a non-OK return means
        // the call itself was refused (e.g. misconfigured fleet).
        std::lock_guard<std::mutex> lock(mu);
        if (!responses[i].has_value()) {
          responses[i].emplace(fired);
          if (--remaining == 0) cv.notify_all();
        }
      }
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&remaining] { return remaining == 0; });
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  // Fold completions into the report.
  ReplayReport report;
  report.trace_name = trace.name;
  report.mode = options.open_loop ? "open_loop" : "closed_loop";
  report.records = n;
  report.trace_span_ms = trace.DurationMs();
  report.wall_seconds = wall_seconds;
  double offered_span_s = trace.DurationMs() * options.time_scale / 1000.0;
  report.offered_qps = offered_span_s > 0.0
                           ? static_cast<double>(n) / offered_span_s
                           : (wall_seconds > 0.0 ? static_cast<double>(n) / wall_seconds : 0.0);
  report.achieved_qps =
      wall_seconds > 0.0 ? static_cast<double>(n) / wall_seconds : 0.0;

  Bucket total;
  std::map<std::string, Bucket> per_scenario;
  if (options.collect_digests) report.record_digests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Result<RewriteResponse>& r = *responses[i];
    Classify(r, latencies_ms[i], &total);
    Classify(r, latencies_ms[i], &per_scenario[records[i].scenario_key]);
    if (r.ok()) {
      const RequestStats& stats = r.value().stats;
      if (stats.result_cache_coalesced) ++report.result_cache_coalesced;
      if (stats.profile.has_value()) {
        ++report.profiled;
        report.profile += *stats.profile;
      }
    }
    if (options.collect_digests) report.record_digests.push_back(ResponseDigest(r));
  }
  report.latency_hist = FinishBucket(&total, wall_seconds);
  report.ok = total.rollup.ok;
  report.errors = total.rollup.errors;
  report.degraded = total.rollup.degraded;
  report.shed_deadline = total.rollup.shed_deadline;
  report.shed_overload = total.rollup.shed_overload;
  report.result_cache_hits = total.rollup.result_cache_hits;
  report.exact_fallbacks = total.rollup.exact_fallbacks;
  report.p50_ms = total.rollup.p50_ms;
  report.p95_ms = total.rollup.p95_ms;
  report.p99_ms = total.rollup.p99_ms;
  for (auto& [key, bucket] : per_scenario) {
    (void)FinishBucket(&bucket, wall_seconds);
    report.scenarios[key] = bucket.rollup;
  }
  if (options.collect_digests) {
    report.digest = CombineDigests(report.record_digests);
  }
  return report;
}

std::string ReplayReport::ToJson() const {
  std::string out;
  out.reserve(1024);
  AppendF(&out, "{\"trace\": \"%s\", \"mode\": \"%s\", \"records\": %zu, ",
          trace_name.c_str(), mode.c_str(), records);
  AppendF(&out, "\"trace_span_ms\": %.3f, \"wall_seconds\": %.3f, ",
          trace_span_ms, wall_seconds);
  AppendF(&out, "\"offered_qps\": %.2f, \"achieved_qps\": %.2f, ", offered_qps,
          achieved_qps);
  AppendF(&out,
          "\"ok\": %zu, \"errors\": %zu, \"degraded\": %zu, "
          "\"shed_deadline\": %zu, \"shed_overload\": %zu, ",
          ok, errors, degraded, shed_deadline, shed_overload);
  AppendF(&out,
          "\"result_cache_hits\": %zu, \"result_cache_coalesced\": %zu, "
          "\"exact_fallbacks\": %zu, ",
          result_cache_hits, result_cache_coalesced, exact_fallbacks);
  AppendF(&out,
          "\"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}, ",
          p50_ms, p95_ms, p99_ms);
  AppendF(&out,
          "\"latency_hist\": {\"count\": %llu, \"min_ms\": %.3f, "
          "\"max_ms\": %.3f, \"mean_ms\": %.3f, \"buckets\": %zu}, ",
          static_cast<unsigned long long>(latency_hist.count),
          latency_hist.min_ms, latency_hist.max_ms, latency_hist.MeanMs(),
          latency_hist.buckets.size());
  AppendF(&out, "\"profiled\": %zu", profiled);
  if (profiled > 0) {
    out.append(", \"profile_ms\": {");
    for (int p = 0; p < ProfileBreakdown::kNumPhases; ++p) {
      AppendF(&out, "%s\"%s\": %.3f", p == 0 ? "" : ", ",
              ProfileBreakdown::PhaseName(p), profile.TotalMs(p));
    }
    out.append("}");
  }
  out.append(", \"scenarios\": {");
  bool first = true;
  for (const auto& [key, r] : scenarios) {
    AppendF(&out,
            "%s\"%s\": {\"records\": %zu, \"ok\": %zu, \"errors\": %zu, "
            "\"degraded\": %zu, \"shed_deadline\": %zu, \"shed_overload\": %zu, "
            "\"result_cache_hits\": %zu, \"exact_fallbacks\": %zu, "
            "\"qps\": %.2f, "
            "\"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, \"p99\": %.3f}}",
            first ? "" : ", ", key.c_str(), r.records, r.ok, r.errors,
            r.degraded, r.shed_deadline, r.shed_overload, r.result_cache_hits,
            r.exact_fallbacks, r.qps, r.p50_ms, r.p95_ms, r.p99_ms);
    first = false;
  }
  out.append("}");
  AppendF(&out, ", \"digest\": \"%016llx\"}",
          static_cast<unsigned long long>(digest));
  return out;
}

Status ReplayReport::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Internal("replay: cannot open " + path + " for writing");
  }
  std::string text = "{\"report\": " + ToJson() + "}\n";
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.close();
  if (!out) return Status::Internal("replay: short write to " + path);
  return Status::OK();
}

}  // namespace maliva
