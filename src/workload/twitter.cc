#include "workload/twitter.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/rng.h"

namespace maliva {

namespace {

struct Event {
  std::string word;
  int64_t time_center;
  int64_t half_window;
  size_t city;
  double participation;
};

struct City {
  double lon, lat, sigma;
  double weight;
};

}  // namespace

std::unique_ptr<Table> GenerateTweetsTable(const TwitterConfig& cfg) {
  Rng rng(cfg.seed);
  ZipfTable word_dist(static_cast<int64_t>(cfg.vocabulary), cfg.zipf_theta);
  ZipfTable user_dist(static_cast<int64_t>(cfg.num_users), 1.05);

  // Spatial city clusters with Zipfian weights.
  std::vector<City> cities(cfg.num_cities);
  {
    double total = 0.0;
    for (size_t c = 0; c < cities.size(); ++c) {
      cities[c].lon = rng.Uniform(cfg.min_lon + 2.0, cfg.max_lon - 2.0);
      cities[c].lat = rng.Uniform(cfg.min_lat + 1.5, cfg.max_lat - 1.5);
      cities[c].sigma = rng.Uniform(0.3, 1.6);
      cities[c].weight = 1.0 / std::pow(static_cast<double>(c + 1), 0.9);
      total += cities[c].weight;
    }
    for (City& city : cities) city.weight /= total;
  }
  auto pick_city = [&]() {
    double u = rng.Uniform(0.0, 1.0);
    double acc = 0.0;
    for (size_t c = 0; c < cities.size(); ++c) {
      acc += cities[c].weight;
      if (u <= acc) return c;
    }
    return cities.size() - 1;
  };

  // Bursty events: word x time window x city.
  std::vector<Event> events(cfg.num_events);
  for (size_t e = 0; e < events.size(); ++e) {
    events[e].word = "event" + std::to_string(e);
    events[e].time_center =
        cfg.start_epoch + rng.UniformInt(0, cfg.duration_s - 1);
    events[e].half_window = rng.UniformInt(1, 8) * 24 * 3600;  // 1-8 day half-width
    events[e].city = pick_city();
    events[e].participation =
        rng.Uniform(cfg.event_participation_lo, cfg.event_participation_hi);
  }

  Schema schema = {
      {"id", ColumnType::kInt64},
      {"text", ColumnType::kText},
      {"created_at", ColumnType::kTimestamp},
      {"coordinates", ColumnType::kPoint},
      {"user_statuses_count", ColumnType::kInt64},
      {"user_followers_count", ColumnType::kInt64},
      {"user_id", ColumnType::kInt64},
  };
  auto table = std::make_unique<Table>("tweets", schema);
  for (size_t c = 0; c < schema.size(); ++c) table->MutableColumnAt(c).Reserve(cfg.num_rows);

  for (size_t i = 0; i < cfg.num_rows; ++i) {
    // Time: uniform base with a mild weekly rhythm via rejection.
    int64_t ts;
    for (;;) {
      ts = cfg.start_epoch + rng.UniformInt(0, cfg.duration_s - 1);
      double day_phase = static_cast<double>((ts / 86400) % 7) / 7.0;
      double accept = 0.7 + 0.3 * std::sin(day_phase * 2.0 * M_PI);
      if (rng.Uniform(0.0, 1.0) < accept) break;
    }

    // Location: from a city cluster (90%) or uniform noise (10%).
    size_t city = pick_city();
    GeoPoint p;
    if (rng.Bernoulli(0.9)) {
      const City& c = cities[city];
      p.lon = std::clamp(rng.Normal(c.lon, c.sigma), cfg.min_lon, cfg.max_lon);
      p.lat = std::clamp(rng.Normal(c.lat, c.sigma * 0.6), cfg.min_lat, cfg.max_lat);
    } else {
      p.lon = rng.Uniform(cfg.min_lon, cfg.max_lon);
      p.lat = rng.Uniform(cfg.min_lat, cfg.max_lat);
    }

    // Text: Zipfian background words plus event words when this tweet falls
    // inside an event's time window and near its city.
    std::string text;
    for (size_t w = 0; w < cfg.words_per_tweet; ++w) {
      if (w > 0) text += ' ';
      text += 'w';
      text += std::to_string(word_dist.Sample(&rng));
    }
    for (const Event& ev : events) {
      if (std::llabs(ts - ev.time_center) > ev.half_window) continue;
      if (ev.city != city) continue;
      if (rng.Bernoulli(ev.participation)) {
        text += ' ';
        text += ev.word;
      }
    }

    int64_t user = user_dist.Sample(&rng);
    // Heavy (low-rank) users have more statuses/followers — correlated skew.
    double boost = 1.0 / std::sqrt(static_cast<double>(user + 1));
    int64_t statuses = static_cast<int64_t>(rng.LogNormal(4.0, 1.2) * (1.0 + 20.0 * boost));
    int64_t followers = static_cast<int64_t>(rng.LogNormal(3.5, 1.5) * (1.0 + 80.0 * boost));

    table->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(i));
    table->MutableColumnAt(1).AppendText(std::move(text));
    table->MutableColumnAt(2).AppendTimestamp(ts);
    table->MutableColumnAt(3).AppendPoint(p);
    table->MutableColumnAt(4).AppendInt64(statuses);
    table->MutableColumnAt(5).AppendInt64(followers);
    table->MutableColumnAt(6).AppendInt64(user);
  }
  Status st = table->Seal();
  assert(st.ok());
  (void)st;
  return table;
}

std::unique_ptr<Table> GenerateUsersTable(const TwitterConfig& cfg) {
  Rng rng(cfg.seed ^ 0x75736572);  // "user"
  Schema schema = {
      {"id", ColumnType::kInt64},
      {"tweet_cnt", ColumnType::kInt64},
      {"followers_cnt", ColumnType::kInt64},
  };
  auto table = std::make_unique<Table>("users", schema);
  for (size_t u = 0; u < cfg.num_users; ++u) {
    double boost = 1.0 / std::sqrt(static_cast<double>(u + 1));
    int64_t tweet_cnt =
        static_cast<int64_t>(rng.LogNormal(4.5, 1.3) * (1.0 + 50.0 * boost));
    int64_t followers =
        static_cast<int64_t>(rng.LogNormal(3.5, 1.5) * (1.0 + 80.0 * boost));
    table->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(u));
    table->MutableColumnAt(1).AppendInt64(tweet_cnt);
    table->MutableColumnAt(2).AppendInt64(followers);
  }
  Status st = table->Seal();
  assert(st.ok());
  (void)st;
  return table;
}

}  // namespace maliva
