// Scenario assembly: dataset + engine + queries + rewrite options + splits.
//
// A Scenario is one experimental setting of the paper: a dataset loaded into
// an engine (with indexes, statistics, and sample tables), a generated query
// workload split into train/validation/evaluation, and the predefined rewrite
// option set Omega.

#ifndef MALIVA_WORKLOAD_SCENARIO_H_
#define MALIVA_WORKLOAD_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "qte/plan_time_oracle.h"
#include "qte/qte_params.h"
#include "query/hints.h"
#include "query/query.h"

namespace maliva {

/// Which synthetic dataset backs the scenario.
enum class DatasetKind { kTwitter, kTaxi, kTpch };

const char* DatasetKindName(DatasetKind kind);

/// Scenario parameters (defaults reproduce the paper's main setting).
struct ScenarioConfig {
  DatasetKind kind = DatasetKind::kTwitter;
  size_t num_rows = 200000;
  size_t num_users = 20000;      ///< Twitter join dimension table
  size_t num_queries = 1200;
  size_t num_attrs = 3;          ///< Twitter: 3 (8 ROs), 4 (16), 5 (32)
  bool join = false;             ///< Twitter join workload (21 ROs)
  OutputKind output = OutputKind::kHeatmap;

  double tau_ms = 500.0;
  /// QTE cost parameters (defaults live in qte/qte_params.h; `jitter_seed` is
  /// derived from `seed` by the service layer, not read from here).
  QteParams qte;
  std::vector<double> approx_sample_rates;  ///< sample tables for approx rules

  EngineProfile profile = EngineProfile::PostgresLike();
  uint64_t seed = 1;
};

/// A fully built experimental setting.
struct Scenario {
  ScenarioConfig config;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<PlanTimeOracle> oracle;
  std::vector<Query> queries;          ///< owns all queries
  RewriteOptionSet options;            ///< hint-only (or join) option set

  std::vector<const Query*> train;
  std::vector<const Query*> validation;
  std::vector<const Query*> evaluation;

  /// Filter attribute names used by this scenario's queries.
  std::vector<std::string> attrs;
};

/// Builds the engine, generates data and queries, and splits the workload
/// (half evaluation; of the rest, 2/3 train and 1/3 validation — Section 7.1).
Scenario BuildScenario(const ScenarioConfig& config);

}  // namespace maliva

#endif  // MALIVA_WORKLOAD_SCENARIO_H_
