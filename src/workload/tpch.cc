#include "workload/tpch.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace maliva {

std::unique_ptr<Table> GenerateLineitemTable(const TpchConfig& cfg) {
  Rng rng(cfg.seed);

  Schema schema = {
      {"id", ColumnType::kInt64},
      {"extended_price", ColumnType::kDouble},
      {"ship_date", ColumnType::kTimestamp},
      {"receipt_date", ColumnType::kTimestamp},
      {"quantity", ColumnType::kInt64},
      {"discount", ColumnType::kDouble},
  };
  auto table = std::make_unique<Table>("lineitem", schema);
  for (size_t c = 0; c < schema.size(); ++c) table->MutableColumnAt(c).Reserve(cfg.num_rows);

  // Discrete part catalogue: extended_price = quantity x part unit price, so
  // the price distribution is a spiky mixture (as in real TPC-H data) that
  // sampled histograms cannot resolve.
  constexpr size_t kNumParts = 150;
  std::vector<double> unit_price(kNumParts);
  for (double& p : unit_price) p = std::round(rng.LogNormal(6.8, 0.6) * 100.0) / 100.0;
  ZipfTable part_dist(kNumParts, 0.9);

  for (size_t i = 0; i < cfg.num_rows; ++i) {
    int64_t ship = cfg.start_epoch + rng.UniformInt(0, cfg.duration_s - 1);
    // Receipt lags shipment by Exp(mean 12 days), capped at 60 days.
    double lag_days = std::min(60.0, rng.Exponential(1.0 / 12.0));
    int64_t receipt = ship + static_cast<int64_t>(lag_days * 86400.0);
    int64_t quantity = rng.UniformInt(1, 50);
    double price =
        static_cast<double>(quantity) * unit_price[static_cast<size_t>(
                                            part_dist.Sample(&rng))];
    double discount = static_cast<double>(rng.UniformInt(0, 10)) / 100.0;

    table->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(i));
    table->MutableColumnAt(1).AppendDouble(price);
    table->MutableColumnAt(2).AppendTimestamp(ship);
    table->MutableColumnAt(3).AppendTimestamp(receipt);
    table->MutableColumnAt(4).AppendInt64(quantity);
    table->MutableColumnAt(5).AppendDouble(discount);
  }
  Status st = table->Seal();
  assert(st.ok());
  (void)st;
  return table;
}

}  // namespace maliva
