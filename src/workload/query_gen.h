// Visualization-query generator (paper Section 7.1, "Query workloads").
//
// Each query is built from a randomly sampled base row: the keyword condition
// takes a random word of the row's text, range conditions start at the row's
// value with a length drawn from a random zoom level (length = extent / 2^z),
// and the spatial condition is a box centered at the row's point whose area
// shrinks with the zoom level.

#ifndef MALIVA_WORKLOAD_QUERY_GEN_H_
#define MALIVA_WORKLOAD_QUERY_GEN_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "storage/table.h"
#include "util/rng.h"

namespace maliva {

/// Generation knobs.
struct QueryGenConfig {
  std::vector<std::string> attrs;     ///< filter columns on the base table
  size_t num_queries = 1200;
  uint64_t seed = 9;
  uint64_t id_base = 0;               ///< first query id (keeps ids unique)

  OutputKind output = OutputKind::kHeatmap;
  std::string output_column;          ///< point column for heatmaps

  // Zoom-level ranges per condition type (selectivity target ~ 2^-z).
  int range_zoom_min = 1, range_zoom_max = 12;     ///< time/numeric
  int spatial_zoom_min = 2, spatial_zoom_max = 16; ///< box area fraction

  /// Probability that the keyword condition picks the row's most *popular*
  /// token (document-frequency weighted) instead of a uniform one. Real
  /// visualization queries skew toward trending keywords ("covid"), which is
  /// exactly where MCV-fallback estimation fails.
  double keyword_popular_prob = 0.7;
  /// The `stopword_count` globally most frequent tokens are never used as
  /// query keywords (the paper samples "a non-stop word"). Stopwords are also
  /// what the engine's MCV list covers, so excluding them concentrates query
  /// keywords in the trending mid-tail band the statistics misestimate.
  size_t stopword_count = 15;

  // Join generation (optional).
  bool join = false;
  std::string right_table;
  std::string left_key;
  std::string right_key;
  std::string right_attr;             ///< range condition column on the right
  int right_zoom_min = 1, right_zoom_max = 6;
};

/// Generates queries over `base` (and optionally a join against `right`).
/// `right` may be null when `config.join` is false.
std::vector<Query> GenerateQueries(const Table& base, const Table* right,
                                   const QueryGenConfig& config);

}  // namespace maliva

#endif  // MALIVA_WORKLOAD_QUERY_GEN_H_
