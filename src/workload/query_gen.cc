#include "workload/query_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "util/string_util.h"

namespace maliva {

namespace {

/// Min/max of a numeric-ish column.
std::pair<double, double> ColumnExtent(const Column& col) {
  double lo = 0.0, hi = 0.0;
  size_t n = col.size();
  for (RowId r = 0; r < n; ++r) {
    double v = col.NumericAt(r);
    if (r == 0) {
      lo = hi = v;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return {lo, hi};
}

BoundingBox PointExtent(const Column& col) {
  const std::vector<GeoPoint>& pts = col.AsPoint();
  BoundingBox box{};
  if (pts.empty()) return box;
  box = BoundingBox{pts[0].lon, pts[0].lat, pts[0].lon, pts[0].lat};
  for (const GeoPoint& p : pts) box = box.Extend(p);
  return box;
}

}  // namespace

std::vector<Query> GenerateQueries(const Table& base, const Table* right,
                                   const QueryGenConfig& cfg) {
  assert(!cfg.attrs.empty());
  Rng rng(cfg.seed);

  // Pre-compute per-attribute extents.
  struct AttrInfo {
    const Column* col;
    PredicateType type;
    double lo = 0.0, hi = 0.0;
    BoundingBox box{};
  };
  std::vector<AttrInfo> infos;
  for (const std::string& name : cfg.attrs) {
    AttrInfo info;
    info.col = &base.GetColumn(name);
    switch (info.col->type()) {
      case ColumnType::kText:
        info.type = PredicateType::kKeyword;
        break;
      case ColumnType::kTimestamp:
        info.type = PredicateType::kTimeRange;
        std::tie(info.lo, info.hi) = ColumnExtent(*info.col);
        break;
      case ColumnType::kInt64:
      case ColumnType::kDouble:
        info.type = PredicateType::kNumericRange;
        std::tie(info.lo, info.hi) = ColumnExtent(*info.col);
        break;
      case ColumnType::kPoint:
        info.type = PredicateType::kSpatialBox;
        info.box = PointExtent(*info.col);
        break;
    }
    infos.push_back(info);
  }

  // Document frequencies, for popularity-weighted keyword selection, and the
  // stopword cutoff (df of the `stopword_count`-th most frequent token).
  std::unordered_map<std::string, int64_t> doc_freq;
  int64_t stopword_cutoff = std::numeric_limits<int64_t>::max();
  for (const AttrInfo& info : infos) {
    if (info.type != PredicateType::kKeyword) continue;
    const std::vector<std::string>& texts = info.col->AsText();
    for (const std::string& text : texts) {
      std::vector<std::string> tokens = Tokenize(text);
      std::sort(tokens.begin(), tokens.end());
      tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
      for (const std::string& tok : tokens) ++doc_freq[tok];
    }
  }
  if (cfg.stopword_count > 0 && !doc_freq.empty()) {
    std::vector<int64_t> freqs;
    freqs.reserve(doc_freq.size());
    for (const auto& [tok, df] : doc_freq) freqs.push_back(df);
    size_t k = std::min(cfg.stopword_count, freqs.size()) - 1;
    std::nth_element(freqs.begin(), freqs.begin() + static_cast<long>(k), freqs.end(),
                     std::greater<int64_t>());
    stopword_cutoff = freqs[k];
  }

  const Column* right_col = nullptr;
  double right_lo = 0.0, right_hi = 0.0;
  if (cfg.join) {
    assert(right != nullptr);
    right_col = &right->GetColumn(cfg.right_attr);
    std::tie(right_lo, right_hi) = ColumnExtent(*right_col);
  }

  std::vector<Query> queries;
  queries.reserve(cfg.num_queries);
  size_t n = base.NumRows();
  assert(n > 0);

  for (size_t qi = 0; qi < cfg.num_queries; ++qi) {
    RowId row = static_cast<RowId>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    Query q;
    q.id = cfg.id_base + qi;
    q.table = base.name();
    q.output = cfg.output;
    q.output_column = cfg.output_column;

    for (size_t a = 0; a < infos.size(); ++a) {
      const AttrInfo& info = infos[a];
      const std::string& name = cfg.attrs[a];
      switch (info.type) {
        case PredicateType::kKeyword: {
          std::vector<std::string> tokens = Tokenize(info.col->TextAt(row));
          std::sort(tokens.begin(), tokens.end());
          tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
          assert(!tokens.empty());
          // Drop stopwords (keep at least one token as fallback).
          std::vector<std::string> keep;
          for (const std::string& tok : tokens) {
            if (doc_freq[tok] < stopword_cutoff) keep.push_back(tok);
          }
          if (!keep.empty()) tokens = std::move(keep);
          size_t pick;
          if (rng.Bernoulli(cfg.keyword_popular_prob)) {
            // Document-frequency-weighted choice among the row's tokens.
            double total = 0.0;
            for (const std::string& tok : tokens) {
              total += static_cast<double>(doc_freq[tok]);
            }
            double u = rng.Uniform(0.0, total);
            double acc = 0.0;
            pick = tokens.size() - 1;
            for (size_t t = 0; t < tokens.size(); ++t) {
              acc += static_cast<double>(doc_freq[tokens[t]]);
              if (u <= acc) {
                pick = t;
                break;
              }
            }
          } else {
            pick = static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(tokens.size()) - 1));
          }
          q.predicates.push_back(Predicate::Keyword(name, tokens[pick]));
          break;
        }
        case PredicateType::kTimeRange:
        case PredicateType::kNumericRange: {
          int z = static_cast<int>(rng.UniformInt(cfg.range_zoom_min, cfg.range_zoom_max));
          double extent = info.hi - info.lo;
          double length = extent / std::pow(2.0, z);
          double left = info.col->NumericAt(row);
          double lo = left;
          double hi = std::min(info.hi, left + length);
          if (info.type == PredicateType::kTimeRange) {
            q.predicates.push_back(Predicate::Time(name, lo, hi));
          } else {
            q.predicates.push_back(Predicate::Numeric(name, lo, hi));
          }
          break;
        }
        case PredicateType::kSpatialBox: {
          int z = static_cast<int>(
              rng.UniformInt(cfg.spatial_zoom_min, cfg.spatial_zoom_max));
          double frac = std::pow(2.0, -z);        // target area fraction
          double edge = std::sqrt(frac);
          const GeoPoint& center = info.col->PointAt(row);
          double half_w = info.box.Width() * edge / 2.0;
          double half_h = info.box.Height() * edge / 2.0;
          BoundingBox box{center.lon - half_w, center.lat - half_h,
                          center.lon + half_w, center.lat + half_h};
          q.predicates.push_back(Predicate::Spatial(name, box));
          break;
        }
      }
    }

    if (cfg.join) {
      JoinSpec js;
      js.right_table = cfg.right_table;
      js.left_key = cfg.left_key;
      js.right_key = cfg.right_key;
      int z = static_cast<int>(rng.UniformInt(cfg.right_zoom_min, cfg.right_zoom_max));
      double extent = right_hi - right_lo;
      double length = extent / std::pow(2.0, z);
      RowId rrow = static_cast<RowId>(
          rng.UniformInt(0, static_cast<int64_t>(right->NumRows()) - 1));
      double left = right_col->NumericAt(rrow);
      js.right_predicates.push_back(
          Predicate::Numeric(cfg.right_attr, left, std::min(right_hi, left + length)));
      q.join = std::move(js);
    }

    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace maliva
