// Versioned, seed-stamped request traces for the replay driver (ISSUE 9).
//
// A Trace is a timestamped load curve the serving stack can be measured —
// and regression-tested — under: each record is (arrival offset, stream,
// query index), where the stream table carries the request shape (scenario
// routing key, strategy, per-request tau, quality floor) and the interleave
// weight. Arrival offsets are *virtual* ms from the trace origin, in the
// ArrivalGenerator tradition: a trace never contains wall-clock readings, so
// the same trace bytes replay the same schedule on every machine, and the
// replay driver decides how (or whether) to map offsets onto real time.
//
// Traces come from two places:
//   * generators — TraceBuilder synthesizes steady / ramp / flash-burst /
//     drift phases from a seeded schedule, interleaving multiple streams by
//     smooth weighted round-robin (deterministic: per-stream record counts
//     match the mix spec exactly, not just in expectation);
//   * recording — Trace::Record interns one served request at a time, so a
//     live request stream can be captured and replayed later.
//
// The serialized form ("maliva-trace v1", line-based, %.17g doubles for
// exact round-trips) is stable enough to commit: tests/data/ holds a golden
// trace whose replayed response digests are the repo's end-to-end
// regression baseline.

#ifndef MALIVA_WORKLOAD_TRACE_H_
#define MALIVA_WORKLOAD_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"
#include "workload/arrival.h"

namespace maliva {

/// One request stream of a trace: the shape every record pointing at it
/// shares. Sentinels keep the struct POD-serializable: empty scenario routes
/// like RewriteRequest::scenario (sole shard), empty strategy serves the
/// service default, tau_ms <= 0 and quality_floor < 0 mean "unset".
struct TraceStream {
  std::string scenario;
  std::string strategy;
  double tau_ms = 0.0;
  double quality_floor = -1.0;
  /// Interleave share for generated traces: a weight-2 stream receives
  /// twice the records of a weight-1 stream (exactly, via smooth WRR).
  double weight = 1.0;
  /// Query-index domain [0, num_queries) records of this stream draw from;
  /// the replay driver maps indices onto the scenario's evaluation split
  /// (mod its size), so a trace stays valid across workload sizes.
  uint32_t num_queries = 1;
};

/// One request of a trace.
struct TraceRecord {
  double arrival_ms = 0.0;  ///< virtual offset from the trace origin
  uint32_t stream = 0;      ///< index into Trace::streams
  uint32_t query_index = 0; ///< index into the stream's query domain
};

/// A versioned, seed-stamped request trace.
struct Trace {
  static constexpr int kFormatVersion = 1;

  std::string name;
  /// Seed the trace was generated under (0 for recorded traces) — stamped
  /// into the serialized form so a golden file documents its provenance.
  uint64_t seed = 0;
  std::vector<TraceStream> streams;
  std::vector<TraceRecord> records;

  /// Records one served request, interning its shape into the stream table
  /// (streams match on scenario + strategy + tau + floor). Arrivals must be
  /// appended in non-decreasing order (Validate enforces it).
  void Record(double arrival_ms, const std::string& scenario,
              const std::string& strategy, double tau_ms, double quality_floor,
              uint32_t query_index);

  /// Structural checks: finite non-decreasing arrivals, stream indices in
  /// range, positive finite weights, num_queries covering every record's
  /// query_index, and whitespace-free scenario/strategy ids (the line-based
  /// format is token-delimited; a literal "-" id is also rejected — it is
  /// the serialized sentinel for empty).
  Status Validate() const;

  /// Line-based text form (stable across platforms; doubles as %.17g so
  /// Deserialize(Serialize()) reproduces the trace bit-exactly).
  std::string Serialize() const;
  static Result<Trace> Deserialize(const std::string& text);

  Status SaveTo(const std::string& path) const;
  static Result<Trace> LoadFrom(const std::string& path);

  /// Record counts by stream index (the mix a generated trace realized).
  std::vector<size_t> RecordsPerStream() const;
  /// Record counts by scenario id (streams sharing a scenario sum).
  std::map<std::string, size_t> RecordsPerScenario() const;

  /// Last arrival offset (0 for an empty trace) — the trace's virtual span.
  double DurationMs() const {
    return records.empty() ? 0.0 : records.back().arrival_ms;
  }
};

/// Synthesizes traces from seeded schedules. Phases append records in
/// arrival order; streams must all be added before the first phase. Every
/// random draw (arrival gaps, query choice) comes from one Rng seeded at
/// construction, so a given (streams, phases, seed) synthesis is
/// byte-reproducible; stream interleave is deterministic smooth weighted
/// round-robin, so per-stream counts match the weights exactly (within one
/// record), not just in expectation.
class TraceBuilder {
 public:
  TraceBuilder(std::string name, uint64_t seed);

  TraceBuilder& AddStream(TraceStream stream);

  /// Poisson arrivals at a fixed rate.
  TraceBuilder& SteadyPhase(double rate_qps, size_t count);

  /// Poisson arrivals with the rate interpolated linearly from start to end
  /// across the phase's records.
  TraceBuilder& RampPhase(double start_qps, double end_qps, size_t count);

  /// Flash burst: `count` records all arriving at the current offset —
  /// back-to-back, zero gap (the overload bench's queue-overflow pattern).
  TraceBuilder& BurstPhase(size_t count);

  /// Steady arrivals whose *query popularity* drifts: each stream's draws
  /// slide through a half-domain window from the front of its query domain
  /// to the back across the phase — the workload-shift pattern the online
  /// learning plane exists for.
  TraceBuilder& DriftPhase(double rate_qps, size_t count);

  /// Idle gap: the next phase starts `ms` after the current offset.
  TraceBuilder& GapMs(double ms);

  /// Moves the synthesized trace out; the builder is spent afterwards.
  Trace Build();

 private:
  /// Smooth weighted round-robin: highest-credit stream wins (ties to the
  /// lowest index), winner pays the total weight back.
  size_t PickStream();

  void Append(double arrival_ms, double phase_frac, bool drift);

  Trace trace_;
  Rng rng_;
  ArrivalGenerator arrivals_;
  std::vector<double> credits_;
  bool spent_ = false;
};

}  // namespace maliva

#endif  // MALIVA_WORKLOAD_TRACE_H_
