// Query-difficulty measurement: number of viable plans (Section 7.1).
//
// Given a time budget tau, the difficulty of a query is the number of its
// physical plans (over the candidate hint sets) whose execution time fits in
// tau. Evaluation reports metrics per difficulty bucket.

#ifndef MALIVA_WORKLOAD_DIFFICULTY_H_
#define MALIVA_WORKLOAD_DIFFICULTY_H_

#include <string>
#include <vector>

#include "qte/plan_time_oracle.h"
#include "query/hints.h"
#include "query/query.h"

namespace maliva {

/// Number of options in `options` whose true execution time is <= tau.
size_t CountViablePlans(const PlanTimeOracle& oracle, const Query& query,
                        const RewriteOptionSet& options, double tau_ms);

/// Bucketing of viable-plan counts matching the paper's figures.
class BucketScheme {
 public:
  /// Inclusive ranges; the final range may be open-ended (hi = -1 means
  /// "or more").
  explicit BucketScheme(std::vector<std::pair<int, int>> ranges)
      : ranges_(std::move(ranges)) {}

  /// 0,1,2,3,4,>=5 (Fig 12/13, Table 2).
  static BucketScheme Exact0To4();
  /// 0,1-2,3-4,5-6,7-8,>=9 (16 rewrite options, Table 3 top).
  static BucketScheme Ranges16();
  /// 0,1-4,5-8,9-12,13-16,>=17 (32 rewrite options, Table 3 bottom).
  static BucketScheme Ranges32();
  /// 1-2,3-4,5-6,7-8,9-10 (join experiment, Fig 18).
  static BucketScheme JoinRanges();

  size_t num_buckets() const { return ranges_.size(); }

  /// Bucket index for a viable-plan count, or -1 when outside every range.
  int BucketOf(int viable_plans) const;

  /// Human-readable label, e.g. "1-2" or ">=5".
  std::string Label(size_t bucket) const;

 private:
  std::vector<std::pair<int, int>> ranges_;
};

/// Partition of queries into difficulty buckets.
struct BucketedWorkload {
  BucketScheme scheme;
  std::vector<std::vector<const Query*>> buckets;
  std::vector<const Query*> out_of_range;  ///< counts outside every bucket
};

/// Buckets `queries` by viable-plan count under `options` and `tau_ms`.
BucketedWorkload BucketQueries(const PlanTimeOracle& oracle,
                               const std::vector<const Query*>& queries,
                               const RewriteOptionSet& options, double tau_ms,
                               const BucketScheme& scheme);

}  // namespace maliva

#endif  // MALIVA_WORKLOAD_DIFFICULTY_H_
