// Synthetic Twitter-like dataset (paper Table 1, first row).
//
// 100M geo-located US tweets are emulated by `num_rows` actual rows times the
// engine's cardinality scale. The generator plants the structure that defeats
// the optimizer's statistics:
//  * Zipfian background vocabulary — mid-tail words miss the MCV list and
//    fall back to the default selectivity;
//  * bursty "events": a word that co-occurs with a time window and a spatial
//    hotspot, breaking the independence assumption across conjuncts;
//  * spatial city clusters and temporal rhythm, breaking grid uniformity.

#ifndef MALIVA_WORKLOAD_TWITTER_H_
#define MALIVA_WORKLOAD_TWITTER_H_

#include <memory>

#include "storage/table.h"

namespace maliva {

/// Generation knobs for the tweets fact table and the users dimension table.
struct TwitterConfig {
  size_t num_rows = 200000;
  size_t num_users = 20000;
  uint64_t seed = 42;

  size_t vocabulary = 1500;      ///< background word count (Zipf theta 1.1)
  double zipf_theta = 1.1;
  size_t words_per_tweet = 6;
  size_t num_events = 30;        ///< bursty word/time/space events
  double event_participation_lo = 0.2;
  double event_participation_hi = 0.8;

  size_t num_cities = 12;        ///< spatial Gaussian clusters
  // Continental-US bounding box.
  double min_lon = -125.0, max_lon = -66.0;
  double min_lat = 25.0, max_lat = 49.0;

  int64_t start_epoch = 1446336000;          ///< 2015-11-01
  int64_t duration_s = 440LL * 24 * 3600;    ///< ~14.5 months
};

/// tweets(id, text, created_at, coordinates, user_statuses_count,
///        user_followers_count, user_id)
std::unique_ptr<Table> GenerateTweetsTable(const TwitterConfig& config);

/// users(id, tweet_cnt, followers_cnt)
std::unique_ptr<Table> GenerateUsersTable(const TwitterConfig& config);

}  // namespace maliva

#endif  // MALIVA_WORKLOAD_TWITTER_H_
