#include "workload/taxi.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace maliva {

std::unique_ptr<Table> GenerateTaxiTable(const TaxiConfig& cfg) {
  Rng rng(cfg.seed);

  struct Hotspot {
    double lon, lat, sigma, weight, distance_mu;
  };
  // Manhattan core, midtown, downtown, JFK, LaGuardia, Newark-ish.
  std::vector<Hotspot> spots = {
      {-73.985, 40.750, 0.020, 0.42, 0.6},   // midtown
      {-74.005, 40.715, 0.015, 0.18, 0.5},   // downtown
      {-73.955, 40.780, 0.018, 0.16, 0.6},   // upper east
      {-73.780, 40.645, 0.010, 0.10, 2.6},   // JFK (long trips)
      {-73.872, 40.775, 0.008, 0.08, 2.2},   // LGA (long trips)
      {-74.170, 40.690, 0.012, 0.06, 2.8},   // EWR (long trips)
  };

  Schema schema = {
      {"id", ColumnType::kInt64},
      {"pickup_datetime", ColumnType::kTimestamp},
      {"trip_distance", ColumnType::kDouble},
      {"pickup_coordinates", ColumnType::kPoint},
  };
  auto table = std::make_unique<Table>("trips", schema);
  for (size_t c = 0; c < schema.size(); ++c) table->MutableColumnAt(c).Reserve(cfg.num_rows);

  for (size_t i = 0; i < cfg.num_rows; ++i) {
    // Rush-hour rhythm via rejection on hour-of-day.
    int64_t ts;
    for (;;) {
      ts = cfg.start_epoch + rng.UniformInt(0, cfg.duration_s - 1);
      int hour = static_cast<int>((ts / 3600) % 24);
      double accept = 0.25;
      if ((hour >= 7 && hour <= 10) || (hour >= 16 && hour <= 20)) accept = 1.0;
      else if (hour >= 11 && hour <= 15) accept = 0.6;
      if (rng.Uniform(0.0, 1.0) < accept) break;
    }

    // Hotspot mixture.
    double u = rng.Uniform(0.0, 1.0);
    double acc = 0.0;
    const Hotspot* spot = &spots.back();
    for (const Hotspot& s : spots) {
      acc += s.weight;
      if (u <= acc) {
        spot = &s;
        break;
      }
    }
    GeoPoint p;
    p.lon = std::clamp(rng.Normal(spot->lon, spot->sigma), cfg.min_lon, cfg.max_lon);
    p.lat = std::clamp(rng.Normal(spot->lat, spot->sigma), cfg.min_lat, cfg.max_lat);

    // Distance correlated with the pickup hotspot, reported in tenths of a
    // mile like real taxi meters. Quantization concentrates mass on value
    // spikes that sampled histograms cannot resolve — a key source of the
    // optimizer's misestimates on this dataset.
    double dist = rng.LogNormal(spot->distance_mu, 0.7);
    dist = std::min(dist, 60.0);
    dist = std::round(dist * 10.0) / 10.0;
    if (dist < 0.1) dist = 0.1;

    table->MutableColumnAt(0).AppendInt64(static_cast<int64_t>(i));
    table->MutableColumnAt(1).AppendTimestamp(ts);
    table->MutableColumnAt(2).AppendDouble(dist);
    table->MutableColumnAt(3).AppendPoint(p);
  }
  Status st = table->Seal();
  assert(st.ok());
  (void)st;
  return table;
}

}  // namespace maliva
