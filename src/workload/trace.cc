#include "workload/trace.h"

#include <cassert>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace maliva {

namespace {

// "-" stands in for an empty id in the token-delimited serialized form.
const char* IdToken(const std::string& id) { return id.empty() ? "-" : id.c_str(); }

std::string IdFromToken(const std::string& token) {
  return token == "-" ? std::string() : token;
}

Status BadId(const char* what, const std::string& id) {
  return Status::InvalidArgument(std::string("trace: ") + what + " id \"" + id +
                                 "\" must be whitespace-free and not \"-\"");
}

Status CheckId(const char* what, const std::string& id) {
  if (id == "-") return BadId(what, id);
  for (char c : id) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return BadId(what, id);
  }
  return Status::OK();
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
}

}  // namespace

void Trace::Record(double arrival_ms, const std::string& scenario,
                   const std::string& strategy, double tau_ms,
                   double quality_floor, uint32_t query_index) {
  size_t stream_index = streams.size();
  for (size_t i = 0; i < streams.size(); ++i) {
    const TraceStream& s = streams[i];
    if (s.scenario == scenario && s.strategy == strategy && s.tau_ms == tau_ms &&
        s.quality_floor == quality_floor) {
      stream_index = i;
      break;
    }
  }
  if (stream_index == streams.size()) {
    TraceStream s;
    s.scenario = scenario;
    s.strategy = strategy;
    s.tau_ms = tau_ms;
    s.quality_floor = quality_floor;
    streams.push_back(std::move(s));
  }
  TraceStream& s = streams[stream_index];
  if (query_index >= s.num_queries) s.num_queries = query_index + 1;
  TraceRecord r;
  r.arrival_ms = arrival_ms;
  r.stream = static_cast<uint32_t>(stream_index);
  r.query_index = query_index;
  records.push_back(r);
}

Status Trace::Validate() const {
  for (const TraceStream& s : streams) {
    MALIVA_RETURN_NOT_OK(CheckId("scenario", s.scenario));
    MALIVA_RETURN_NOT_OK(CheckId("strategy", s.strategy));
    if (!std::isfinite(s.weight) || s.weight <= 0.0) {
      return Status::InvalidArgument("trace: stream weight must be finite and > 0");
    }
    if (!std::isfinite(s.tau_ms) || !std::isfinite(s.quality_floor)) {
      return Status::InvalidArgument("trace: stream tau/floor must be finite");
    }
    if (s.num_queries == 0) {
      return Status::InvalidArgument("trace: stream num_queries must be >= 1");
    }
  }
  double prev = 0.0;
  for (size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (!std::isfinite(r.arrival_ms) || r.arrival_ms < 0.0) {
      return Status::InvalidArgument("trace: record " + std::to_string(i) +
                                     " arrival must be finite and >= 0");
    }
    if (r.arrival_ms < prev) {
      return Status::InvalidArgument("trace: record " + std::to_string(i) +
                                     " arrival decreases");
    }
    prev = r.arrival_ms;
    if (r.stream >= streams.size()) {
      return Status::InvalidArgument("trace: record " + std::to_string(i) +
                                     " references stream " + std::to_string(r.stream) +
                                     " of " + std::to_string(streams.size()));
    }
    if (r.query_index >= streams[r.stream].num_queries) {
      return Status::InvalidArgument("trace: record " + std::to_string(i) +
                                     " query_index outside its stream's domain");
    }
  }
  return Status::OK();
}

std::string Trace::Serialize() const {
  std::string out;
  out.reserve(64 + streams.size() * 96 + records.size() * 40);
  AppendF(&out, "maliva-trace v%d\n", kFormatVersion);
  AppendF(&out, "name %s\n", name.c_str());
  AppendF(&out, "seed %llu\n", static_cast<unsigned long long>(seed));
  AppendF(&out, "streams %zu\n", streams.size());
  for (const TraceStream& s : streams) {
    AppendF(&out, "stream %s %s %.17g %.17g %.17g %u\n", IdToken(s.scenario),
            IdToken(s.strategy), s.tau_ms, s.quality_floor, s.weight,
            s.num_queries);
  }
  AppendF(&out, "records %zu\n", records.size());
  for (const TraceRecord& r : records) {
    AppendF(&out, "%u %u %.17g\n", r.stream, r.query_index, r.arrival_ms);
  }
  out.append("end\n");
  return out;
}

Result<Trace> Trace::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  auto fail = [&lineno](const std::string& what) {
    return Status::InvalidArgument("trace parse: line " + std::to_string(lineno) +
                                   ": " + what);
  };
  auto next = [&in, &line, &lineno]() -> bool {
    if (!std::getline(in, line)) return false;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++lineno;
    return true;
  };

  if (!next() || line != "maliva-trace v1") {
    return fail("expected header \"maliva-trace v1\"");
  }
  Trace t;
  if (!next() || line.rfind("name ", 0) != 0) return fail("expected \"name ...\"");
  t.name = line.substr(5);
  unsigned long long seed = 0;
  if (!next() || sscanf(line.c_str(), "seed %llu", &seed) != 1) {
    return fail("expected \"seed <u64>\"");
  }
  t.seed = seed;

  size_t num_streams = 0;
  if (!next() || sscanf(line.c_str(), "streams %zu", &num_streams) != 1) {
    return fail("expected \"streams <n>\"");
  }
  t.streams.reserve(num_streams);
  for (size_t i = 0; i < num_streams; ++i) {
    if (!next()) return fail("truncated stream table");
    char scenario[128], strategy[128];
    TraceStream s;
    if (sscanf(line.c_str(), "stream %127s %127s %lg %lg %lg %u", scenario,
               strategy, &s.tau_ms, &s.quality_floor, &s.weight,
               &s.num_queries) != 6) {
      return fail("malformed stream line");
    }
    s.scenario = IdFromToken(scenario);
    s.strategy = IdFromToken(strategy);
    t.streams.push_back(std::move(s));
  }

  size_t num_records = 0;
  if (!next() || sscanf(line.c_str(), "records %zu", &num_records) != 1) {
    return fail("expected \"records <n>\"");
  }
  t.records.reserve(num_records);
  for (size_t i = 0; i < num_records; ++i) {
    if (!next()) return fail("truncated record list");
    TraceRecord r;
    if (sscanf(line.c_str(), "%u %u %lg", &r.stream, &r.query_index,
               &r.arrival_ms) != 3) {
      return fail("malformed record line");
    }
    t.records.push_back(r);
  }
  if (!next() || line != "end") return fail("expected trailing \"end\"");
  MALIVA_RETURN_NOT_OK(t.Validate());
  return t;
}

Status Trace::SaveTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("trace: cannot open " + path + " for writing");
  std::string text = Serialize();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.close();
  if (!out) return Status::Internal("trace: short write to " + path);
  return Status::OK();
}

Result<Trace> Trace::LoadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("trace: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return Deserialize(text.str());
}

std::vector<size_t> Trace::RecordsPerStream() const {
  std::vector<size_t> counts(streams.size(), 0);
  for (const TraceRecord& r : records) {
    if (r.stream < counts.size()) ++counts[r.stream];
  }
  return counts;
}

std::map<std::string, size_t> Trace::RecordsPerScenario() const {
  std::map<std::string, size_t> counts;
  std::vector<size_t> per_stream = RecordsPerStream();
  for (size_t i = 0; i < streams.size(); ++i) {
    counts[streams[i].scenario] += per_stream[i];
  }
  return counts;
}

TraceBuilder::TraceBuilder(std::string name, uint64_t seed)
    : rng_(seed), arrivals_(1.0, seed ^ 0x9e3779b97f4a7c15ULL) {
  trace_.name = std::move(name);
  trace_.seed = seed;
}

TraceBuilder& TraceBuilder::AddStream(TraceStream stream) {
  assert(!spent_ && trace_.records.empty() &&
         "add all streams before the first phase");
  credits_.push_back(0.0);
  trace_.streams.push_back(std::move(stream));
  return *this;
}

size_t TraceBuilder::PickStream() {
  assert(!credits_.empty() && "TraceBuilder needs at least one stream");
  double total = 0.0;
  size_t best = 0;
  for (size_t i = 0; i < credits_.size(); ++i) {
    credits_[i] += trace_.streams[i].weight;
    total += trace_.streams[i].weight;
    if (credits_[i] > credits_[best]) best = i;
  }
  credits_[best] -= total;
  return best;
}

void TraceBuilder::Append(double arrival_ms, double phase_frac, bool drift) {
  size_t stream_index = PickStream();
  const TraceStream& s = trace_.streams[stream_index];
  uint32_t query_index;
  if (drift && s.num_queries > 1) {
    // Slide a half-domain window from the front of the stream's query domain
    // to the back: early records draw the "old" popular set, late records a
    // disjoint-ish "new" one.
    uint32_t window = s.num_queries / 2;
    if (window == 0) window = 1;
    uint32_t span = s.num_queries - window;
    uint32_t start = static_cast<uint32_t>(phase_frac * span + 0.5);
    if (start > span) start = span;
    query_index = start + static_cast<uint32_t>(rng_.UniformInt(0, window - 1));
  } else {
    query_index = static_cast<uint32_t>(rng_.UniformInt(0, s.num_queries - 1));
  }
  TraceRecord r;
  r.arrival_ms = arrival_ms;
  r.stream = static_cast<uint32_t>(stream_index);
  r.query_index = query_index;
  trace_.records.push_back(r);
}

TraceBuilder& TraceBuilder::SteadyPhase(double rate_qps, size_t count) {
  assert(!spent_);
  arrivals_.SetRateQps(rate_qps);
  for (size_t i = 0; i < count; ++i) Append(arrivals_.NextMs(), 0.0, false);
  return *this;
}

TraceBuilder& TraceBuilder::RampPhase(double start_qps, double end_qps,
                                      size_t count) {
  assert(!spent_);
  for (size_t i = 0; i < count; ++i) {
    double frac = count <= 1 ? 1.0 : static_cast<double>(i) / (count - 1);
    arrivals_.SetRateQps(start_qps + frac * (end_qps - start_qps));
    Append(arrivals_.NextMs(), frac, false);
  }
  return *this;
}

TraceBuilder& TraceBuilder::BurstPhase(size_t count) {
  assert(!spent_);
  for (size_t i = 0; i < count; ++i) Append(arrivals_.CurrentMs(), 0.0, false);
  return *this;
}

TraceBuilder& TraceBuilder::DriftPhase(double rate_qps, size_t count) {
  assert(!spent_);
  arrivals_.SetRateQps(rate_qps);
  for (size_t i = 0; i < count; ++i) {
    double frac = count <= 1 ? 1.0 : static_cast<double>(i) / (count - 1);
    Append(arrivals_.NextMs(), frac, true);
  }
  return *this;
}

TraceBuilder& TraceBuilder::GapMs(double ms) {
  assert(!spent_);
  arrivals_.AdvanceTo(arrivals_.CurrentMs() + ms);
  return *this;
}

Trace TraceBuilder::Build() {
  assert(!spent_ && "TraceBuilder::Build may only be called once");
  spent_ = true;
  assert(trace_.Validate().ok());
  return std::move(trace_);
}

}  // namespace maliva
