#include "workload/difficulty.h"

namespace maliva {

size_t CountViablePlans(const PlanTimeOracle& oracle, const Query& query,
                        const RewriteOptionSet& options, double tau_ms) {
  size_t viable = 0;
  for (const RewriteOption& option : options) {
    if (oracle.TrueTimeMs(query, option) <= tau_ms) ++viable;
  }
  return viable;
}

BucketScheme BucketScheme::Exact0To4() {
  return BucketScheme({{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, -1}});
}

BucketScheme BucketScheme::Ranges16() {
  return BucketScheme({{0, 0}, {1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, -1}});
}

BucketScheme BucketScheme::Ranges32() {
  return BucketScheme({{0, 0}, {1, 4}, {5, 8}, {9, 12}, {13, 16}, {17, -1}});
}

BucketScheme BucketScheme::JoinRanges() {
  return BucketScheme({{0, 0}, {1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, -1}});
}

int BucketScheme::BucketOf(int viable_plans) const {
  for (size_t b = 0; b < ranges_.size(); ++b) {
    const auto& [lo, hi] = ranges_[b];
    if (viable_plans >= lo && (hi < 0 || viable_plans <= hi)) {
      return static_cast<int>(b);
    }
  }
  return -1;
}

std::string BucketScheme::Label(size_t bucket) const {
  const auto& [lo, hi] = ranges_[bucket];
  if (hi < 0) return ">=" + std::to_string(lo);
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

BucketedWorkload BucketQueries(const PlanTimeOracle& oracle,
                               const std::vector<const Query*>& queries,
                               const RewriteOptionSet& options, double tau_ms,
                               const BucketScheme& scheme) {
  BucketedWorkload out{scheme, {}, {}};
  out.buckets.resize(scheme.num_buckets());
  for (const Query* q : queries) {
    int count = static_cast<int>(CountViablePlans(oracle, *q, options, tau_ms));
    int b = scheme.BucketOf(count);
    if (b < 0) {
      out.out_of_range.push_back(q);
    } else {
      out.buckets[static_cast<size_t>(b)].push_back(q);
    }
  }
  return out;
}

}  // namespace maliva
