// Seeded open-loop arrival schedule generation.
//
// Promoted out of bench/bench_common.h (ISSUE 9) so the overload benches and
// the trace-replay driver (src/workload/trace.h) share one implementation of
// the paper's load model: Poisson arrivals at a configured rate, with the
// schedule fixed before any request is served.

#ifndef MALIVA_WORKLOAD_ARRIVAL_H_
#define MALIVA_WORKLOAD_ARRIVAL_H_

#include <cstdint>

#include "util/rng.h"

namespace maliva {

/// Seeded open-loop arrival process: i.i.d. exponential gaps at `rate_qps`,
/// i.e. Poisson arrivals. Timestamps are purely virtual offsets from an
/// arbitrary origin — the generator never reads the wall clock, so a given
/// (rate, seed) pair replays the identical arrival trace on every run and on
/// every machine; the *driver* decides how (or whether) to map offsets onto
/// real time. This is what makes overload benches open-loop: arrivals keep
/// their schedule no matter how far behind the server falls, instead of the
/// closed-loop pattern where a slow server politely throttles its own load.
class ArrivalGenerator {
 public:
  ArrivalGenerator(double rate_qps, uint64_t seed)
      : rate_per_ms_(rate_qps / 1000.0), rng_(seed) {}

  /// Next arrival offset in virtual ms; strictly monotone non-decreasing.
  double NextMs() {
    next_ms_ += rng_.Exponential(rate_per_ms_);
    return next_ms_;
  }

  /// Re-aims the process at a new rate mid-schedule without disturbing the
  /// random stream's seeding; the next gap is drawn at the new rate from the
  /// current offset. This is how the trace builder ramps load.
  void SetRateQps(double rate_qps) { rate_per_ms_ = rate_qps / 1000.0; }

  /// Jumps the current offset forward to `offset_ms` (idle gap between trace
  /// phases). Offsets only move forward; a smaller value is ignored.
  void AdvanceTo(double offset_ms) {
    if (offset_ms > next_ms_) next_ms_ = offset_ms;
  }

  /// Current offset (the last arrival handed out, or 0 before the first).
  double CurrentMs() const { return next_ms_; }

 private:
  double rate_per_ms_;
  Rng rng_;
  double next_ms_ = 0.0;
};

}  // namespace maliva

#endif  // MALIVA_WORKLOAD_ARRIVAL_H_
