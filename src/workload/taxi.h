// Synthetic NYC-Taxi-like dataset (paper Table 1, second row).
//
// Emulates 500M trip records: pickup time with rush-hour rhythm, pickup
// location concentrated in Manhattan plus airport hotspots, and trip
// distance correlated with pickup location (airport pickups run long) —
// the correlation that defeats the optimizer's independence assumption.

#ifndef MALIVA_WORKLOAD_TAXI_H_
#define MALIVA_WORKLOAD_TAXI_H_

#include <memory>

#include "storage/table.h"

namespace maliva {

struct TaxiConfig {
  size_t num_rows = 200000;
  uint64_t seed = 4242;

  // Greater-NYC bounding box.
  double min_lon = -74.30, max_lon = -73.60;
  double min_lat = 40.45, max_lat = 41.00;

  int64_t start_epoch = 1262304000;          ///< 2010-01-01
  int64_t duration_s = 3LL * 365 * 24 * 3600;  ///< 2010-2012
};

/// trips(id, pickup_datetime, trip_distance, pickup_coordinates)
std::unique_ptr<Table> GenerateTaxiTable(const TaxiConfig& config);

}  // namespace maliva

#endif  // MALIVA_WORKLOAD_TAXI_H_
