#include "workload/scenario.h"

#include <cassert>

#include "util/rng.h"
#include "workload/query_gen.h"
#include "workload/taxi.h"
#include "workload/tpch.h"
#include "workload/twitter.h"

namespace maliva {

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kTwitter: return "Twitter";
    case DatasetKind::kTaxi: return "NYC Taxi";
    case DatasetKind::kTpch: return "TPC-H";
  }
  return "unknown";
}

Scenario BuildScenario(const ScenarioConfig& config) {
  Scenario s;
  s.config = config;
  s.engine = std::make_unique<Engine>(config.profile, config.seed);

  QueryGenConfig qg;
  qg.num_queries = config.num_queries;
  qg.seed = config.seed ^ 0x71657267;  // "qerg"
  qg.id_base = config.seed * 1000000;
  qg.output = config.output;

  std::string base_table;
  const Table* right_table_ptr = nullptr;

  switch (config.kind) {
    case DatasetKind::kTwitter: {
      TwitterConfig tw;
      tw.num_rows = config.num_rows;
      tw.num_users = config.num_users;
      tw.seed = config.seed;
      std::unique_ptr<Table> tweets = GenerateTweetsTable(tw);

      std::vector<std::string> all_attrs = {"text", "created_at", "coordinates",
                                            "user_statuses_count",
                                            "user_followers_count"};
      assert(config.num_attrs >= 3 && config.num_attrs <= all_attrs.size());
      s.attrs.assign(all_attrs.begin(),
                     all_attrs.begin() + static_cast<long>(config.num_attrs));

      Status st = s.engine->RegisterTable(std::move(tweets), s.attrs,
                                          config.join ? std::vector<std::string>{"user_id"}
                                                      : std::vector<std::string>{});
      assert(st.ok());
      (void)st;
      base_table = "tweets";

      if (config.join) {
        std::unique_ptr<Table> users = GenerateUsersTable(tw);
        Status ust = s.engine->RegisterTable(std::move(users), {"tweet_cnt"}, {"id"});
        assert(ust.ok());
        (void)ust;
        right_table_ptr = s.engine->FindEntry("users")->table.get();
        qg.join = true;
        qg.right_table = "users";
        qg.left_key = "user_id";
        qg.right_key = "id";
        qg.right_attr = "tweet_cnt";
      }
      qg.output_column = "coordinates";
      break;
    }
    case DatasetKind::kTaxi: {
      TaxiConfig tx;
      tx.num_rows = config.num_rows;
      tx.seed = config.seed;
      std::unique_ptr<Table> trips = GenerateTaxiTable(tx);
      s.attrs = {"pickup_datetime", "trip_distance", "pickup_coordinates"};
      Status st = s.engine->RegisterTable(std::move(trips), s.attrs);
      assert(st.ok());
      (void)st;
      base_table = "trips";
      qg.output_column = "pickup_coordinates";
      break;
    }
    case DatasetKind::kTpch: {
      TpchConfig tp;
      tp.num_rows = config.num_rows;
      tp.seed = config.seed;
      std::unique_ptr<Table> lineitem = GenerateLineitemTable(tp);
      s.attrs = {"extended_price", "ship_date", "receipt_date"};
      Status st = s.engine->RegisterTable(std::move(lineitem), s.attrs);
      assert(st.ok());
      (void)st;
      base_table = "lineitem";
      qg.output = OutputKind::kScatter;  // no point column in lineitem
      break;
    }
  }

  // Sample tables: the QTE sample plus any approximation-rule samples.
  std::vector<double> rates = config.approx_sample_rates;
  rates.push_back(config.qte.qte_sample_rate);
  Status st = s.engine->BuildSampleTables(base_table, rates, config.seed ^ 0x73616d70);
  assert(st.ok());
  (void)st;
  if (config.join) {
    Status rst = s.engine->BuildSampleTables("users", {config.qte.qte_sample_rate},
                                             config.seed ^ 0x73616d71);
    assert(rst.ok());
    (void)rst;
  }

  // Queries.
  qg.attrs = s.attrs;
  const Table& base = *s.engine->FindEntry(base_table)->table;
  s.queries = GenerateQueries(base, right_table_ptr, qg);

  // Rewrite options.
  s.options = config.join ? EnumerateJoinOptions(s.attrs.size())
                          : EnumerateHintOnlyOptions(s.attrs.size());

  // Split: half evaluation; of the other half, 2/3 train, 1/3 validation.
  std::vector<const Query*> shuffled;
  shuffled.reserve(s.queries.size());
  for (const Query& q : s.queries) shuffled.push_back(&q);
  Rng rng(config.seed ^ 0x73706c69);  // "spli"
  rng.Shuffle(&shuffled);
  size_t eval_n = shuffled.size() / 2;
  size_t train_n = (shuffled.size() - eval_n) * 2 / 3;
  for (size_t i = 0; i < shuffled.size(); ++i) {
    if (i < eval_n) {
      s.evaluation.push_back(shuffled[i]);
    } else if (i < eval_n + train_n) {
      s.train.push_back(shuffled[i]);
    } else {
      s.validation.push_back(shuffled[i]);
    }
  }

  s.oracle = std::make_unique<PlanTimeOracle>(s.engine.get());
  return s;
}

}  // namespace maliva
