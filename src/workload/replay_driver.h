// ReplayDriver: fires a Trace through a MalivaFleet and aggregates what
// came back (ISSUE 9).
//
// Two drive modes:
//   * closed-loop (default) — the whole trace goes through
//     MalivaFleet::ServeBatch at once, arrival offsets ignored. This is the
//     deterministic mode: with admission off, responses are byte-identical
//     at any fleet thread count (the ServeBatch contract), so the per-record
//     response digests are a golden regression baseline for the entire
//     rewrite stack.
//   * open-loop — a dispatcher thread maps arrival offsets onto wall time
//     (scaled by ReplayOptions::time_scale) and fires each record through
//     MalivaFleet::ServeAsync on schedule, never waiting for completions:
//     the trace keeps offering load no matter how far behind the fleet
//     falls. Requires FleetConfig::admission (ServeAsync's precondition);
//     sheds and degrades are what the mode exists to measure.
//
// Either way the driver folds responses into a ReplayReport: latency
// percentiles, per-scenario rollups, shed/degrade/cache-hit counts, an
// aggregate profiler breakdown when profiling was on, and (optionally) the
// per-record digest vector whose combined hash is the golden-trace check.

#ifndef MALIVA_WORKLOAD_REPLAY_DRIVER_H_
#define MALIVA_WORKLOAD_REPLAY_DRIVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "service/service_fleet.h"
#include "util/metrics.h"
#include "util/query_profiler.h"
#include "util/status.h"
#include "workload/trace.h"

namespace maliva {

struct ReplayOptions {
  /// false = closed-loop ServeBatch (deterministic, offsets ignored);
  /// true = open-loop ServeAsync on the trace's schedule (admission only).
  bool open_loop = false;
  /// Open-loop wall-time multiplier for virtual arrival offsets: 1.0 replays
  /// the trace in real time, 0.5 twice as fast. Must be > 0 in open loop.
  double time_scale = 1.0;
  /// Compute per-record response digests (ReplayReport::record_digests).
  /// Cheap; off only when replaying for load alone.
  bool collect_digests = true;
};

/// Per-scenario slice of a replay.
struct ScenarioRollup {
  size_t records = 0;
  size_t ok = 0;
  size_t errors = 0;           ///< non-OK other than the typed sheds
  size_t degraded = 0;
  size_t shed_deadline = 0;
  size_t shed_overload = 0;
  size_t result_cache_hits = 0;
  size_t exact_fallbacks = 0;
  double qps = 0.0;            ///< this scenario's achieved rate
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Everything a replay measured. Latency is wall-clock and run-varying; the
/// digest fields are decision bytes only and — closed-loop, admission off —
/// run-invariant (the golden-trace regression contract).
struct ReplayReport {
  std::string trace_name;
  std::string mode;            ///< "closed_loop" | "open_loop"
  size_t records = 0;
  double trace_span_ms = 0.0;  ///< virtual span of the trace
  double wall_seconds = 0.0;   ///< host wall clock the replay took
  double offered_qps = 0.0;    ///< trace records over its (scaled) span
  double achieved_qps = 0.0;   ///< completions over wall_seconds

  size_t ok = 0;
  size_t errors = 0;
  size_t degraded = 0;
  size_t shed_deadline = 0;
  size_t shed_overload = 0;
  size_t result_cache_hits = 0;
  size_t result_cache_coalesced = 0;
  size_t exact_fallbacks = 0;

  /// Serve-latency percentiles over OK responses (closed-loop: the service's
  /// serve_wall_ms; open-loop: completion wall time minus scheduled arrival,
  /// so scheduler queueing is included). Estimated from `latency_hist` —
  /// the same log-linear LatencyHistogram the metrics plane serves — with
  /// <= ~1% relative error against an exact sort (the ISSUE 10 bound).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// The full latency distribution behind the percentiles (count, sum,
  /// extrema, sparse log-linear buckets); mergeable across reports.
  HistogramSnapshot latency_hist;

  /// Aggregate phase breakdown over the `profiled` responses that carried
  /// one (ServiceConfig::profile_requests); zero when profiling was off.
  size_t profiled = 0;
  ProfileBreakdown profile;

  /// Rollups keyed by resolved scenario id (a trace stream's empty scenario
  /// resolves to the sole shard's id).
  std::map<std::string, ScenarioRollup> scenarios;

  /// Per-record decision digests in trace order (ReplayOptions::
  /// collect_digests), and their order-sensitive combination.
  std::vector<uint64_t> record_digests;
  uint64_t digest = 0;

  /// JSON object string (no trailing newline) — nestable into a bench's
  /// BENCH_*.json phase entry. Omits record_digests (bulk); carries the
  /// combined digest as hex.
  std::string ToJson() const;
  /// Writes `{"trace": ..., "report": <ToJson()>}` to `path`.
  Status WriteJson(const std::string& path) const;
};

/// Drives traces through a borrowed fleet (which must outlive the driver).
class ReplayDriver {
 public:
  explicit ReplayDriver(const MalivaFleet* fleet) : fleet_(fleet) {}

  /// Replays `trace` per `options`. Fails without serving anything when the
  /// trace fails Validate(), a stream's scenario cannot be routed, or
  /// open_loop is requested of an admission-off fleet.
  Result<ReplayReport> Replay(const Trace& trace,
                              const ReplayOptions& options = ReplayOptions()) const;

  /// FNV-1a over a response's *decision* bytes: status code for failures;
  /// strategy, rewritten SQL, outcome fields (doubles as bit patterns), and
  /// the exact-fallback flag for successes. RequestStats is excluded —
  /// wall-clock latency and cache/profile provenance describe how the
  /// decision was obtained, not the decision, and must not break golden
  /// comparisons.
  static uint64_t ResponseDigest(const Result<RewriteResponse>& response);

  /// Order-sensitive combination of per-record digests into one hash.
  static uint64_t CombineDigests(const std::vector<uint64_t>& digests);

 private:
  /// One resolved trace record: the request plus its rollup key.
  struct ResolvedRecord {
    RewriteRequest request;
    std::string scenario_key;
  };

  /// Maps records onto requests: resolves each stream's scenario to a shard
  /// (empty = sole shard), its query_index onto the shard scenario's
  /// evaluation split (mod size), and stamps strategy/tau/floor.
  Result<std::vector<ResolvedRecord>> BuildRequests(const Trace& trace) const;

  const MalivaFleet* fleet_;
};

}  // namespace maliva

#endif  // MALIVA_WORKLOAD_REPLAY_DRIVER_H_
