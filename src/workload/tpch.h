// TPC-H-like lineitem fact table (paper Table 1, third row).
//
// Emulates a 300M-row lineitem: extended_price (lognormal), ship_date
// (uniform over 7 years), receipt_date = ship_date + exponential lag.
// ship/receipt correlation is the one estimation hazard here; numeric
// histograms are otherwise accurate — matching the paper's observation that
// comparators with optimizer-derived features fare best on TPC-H.

#ifndef MALIVA_WORKLOAD_TPCH_H_
#define MALIVA_WORKLOAD_TPCH_H_

#include <memory>

#include "storage/table.h"

namespace maliva {

struct TpchConfig {
  size_t num_rows = 200000;
  uint64_t seed = 7777;

  int64_t start_epoch = 694224000;            ///< 1992-01-01
  int64_t duration_s = 7LL * 365 * 24 * 3600; ///< 7 years
};

/// lineitem(id, extended_price, ship_date, receipt_date, quantity, discount)
std::unique_ptr<Table> GenerateLineitemTable(const TpchConfig& config);

}  // namespace maliva

#endif  // MALIVA_WORKLOAD_TPCH_H_
