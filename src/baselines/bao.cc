#include "baselines/bao.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>

#include "engine/optimizer.h"

namespace maliva {

BaoQte::BaoQte(uint64_t seed) {
  Rng rng(seed);
  net_ = std::make_unique<Mlp>(std::vector<size_t>{kFeatureDim, 32, 32, 1}, &rng);
}

std::vector<double> BaoQte::Featurize(const Engine& engine, const Query& query,
                                      const RewriteOption& option) const {
  const Optimizer& opt = engine.optimizer();
  PlanSpec spec = opt.ResolvePlan(query, option);
  SelectivityVector sels = opt.EstimatedSelectivities(query);
  PlanCards cards = opt.CardsFromSelectivities(query, spec, sels);

  auto lg = [](double v) { return std::log1p(std::max(0.0, v)); };
  double total_postings = 0.0;
  for (double k : cards.postings) total_postings += k;

  std::vector<double> f;
  f.reserve(kFeatureDim);
  f.push_back(lg(cards.scanned_rows));
  f.push_back(lg(total_postings));
  f.push_back(static_cast<double>(cards.postings.size()));
  f.push_back(lg(cards.candidates));
  f.push_back(cards.residual_preds);
  f.push_back(lg(cards.output_rows));
  f.push_back(static_cast<double>(std::popcount(spec.index_mask)));
  f.push_back(cards.has_join ? 1.0 : 0.0);
  f.push_back(cards.join_method == JoinMethod::kNestedLoop ? 1.0 : 0.0);
  f.push_back(cards.join_method == JoinMethod::kHash ? 1.0 : 0.0);
  f.push_back(cards.join_method == JoinMethod::kMerge ? 1.0 : 0.0);
  f.push_back(lg(cards.build_rows + cards.nl_outer));
  f.push_back(lg(cards.sort_rows));
  f.push_back(lg(cards.join_output));
  assert(f.size() == kFeatureDim);
  return f;
}

double BaoQte::PredictMs(const std::vector<double>& features) const {
  double log_ms = net_->Forward(features)[0];
  return std::max(0.0, std::expm1(std::min(log_ms, 30.0)));
}

void BaoQte::Fit(const std::vector<Sample>& samples, size_t epochs, size_t batch_size,
                 double lr, uint64_t seed) {
  if (samples.empty()) return;
  Rng rng(seed);
  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size(); start += batch_size) {
      size_t end = std::min(order.size(), start + batch_size);
      for (size_t i = start; i < end; ++i) {
        const Sample& s = samples[order[i]];
        net_->AccumulateGradient(s.features, 0, std::log1p(std::max(0.0, s.true_ms)));
      }
      net_->Step(lr, end - start);
    }
  }
}

std::unique_ptr<BaoQte> BaoTrainer::Train(const std::vector<const Query*>& workload,
                                          uint64_t seed) const {
  auto qte = std::make_unique<BaoQte>(seed);
  std::vector<BaoQte::Sample> samples;
  samples.reserve(workload.size() * options_->size());
  for (const Query* q : workload) {
    for (const RewriteOption& option : *options_) {
      BaoQte::Sample s;
      s.features = qte->Featurize(*engine_, *q, option);
      s.true_ms = oracle_->TrueTimeMs(*q, option);
      samples.push_back(std::move(s));
    }
  }
  qte->Fit(samples, /*epochs=*/60, /*batch_size=*/64, /*lr=*/1e-3, seed ^ 0x5bd1e995);
  return qte;
}

RewriteOutcome BaoRewriter::RewriteForSession(const Query& query, double tau_ms,
                                              RewriteSession& session) const {
  (void)session;  // enumeration keeps no per-request state beyond locals
  double planning_ms = engine_->profile().optimizer_ms;
  size_t best = 0;
  double best_pred = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < options_->size(); ++i) {
    std::vector<double> f = qte_->Featurize(*engine_, query, (*options_)[i]);
    double pred = qte_->PredictMs(f);
    planning_ms += per_plan_cost_ms_;
    if (pred < best_pred) {
      best_pred = pred;
      best = i;
    }
  }

  RewriteOutcome out;
  out.option_index = best;
  out.planning_ms = planning_ms;
  out.exec_ms = oracle_->TrueTimeMs(query, (*options_)[best]);
  out.total_ms = out.planning_ms + out.exec_ms;
  out.viable = out.total_ms <= tau_ms;
  out.steps = options_->size();
  out.quality = 1.0;
  return out;
}

}  // namespace maliva
