#include "baselines/baseline.h"

#include <limits>

namespace maliva {

RewriteOutcome BaselineRewriter::RewriteForSession(const Query& query, double tau_ms,
                                                   RewriteSession& session) const {
  (void)session;  // no planning episode, no mutable state
  RewriteOutcome out;
  out.option_index = 0;
  out.planning_ms = engine_->profile().optimizer_ms;
  RewriteOption unhinted;  // optimizer resolves everything
  out.exec_ms = oracle_->TrueTimeMs(query, unhinted);
  out.total_ms = out.planning_ms + out.exec_ms;
  out.viable = out.total_ms <= tau_ms;
  out.steps = 0;
  out.quality = 1.0;
  return out;
}

RewriteOutcome NaiveRewriter::RewriteForSession(const Query& query, double tau_ms,
                                                RewriteSession& session) const {
  QteContext ctx = renv_.MakeContext(query);
  SelectivityCache& cache = session.NewCache(ctx.NumSlots());

  double planning_ms = 0.0;
  size_t best = 0;
  double best_est = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < renv_.options->size(); ++i) {
    QteEstimate est = renv_.qte->Estimate(ctx, i, &cache);
    planning_ms += est.cost_ms;
    if (est.est_ms < best_est) {
      best_est = est.est_ms;
      best = i;
    }
  }

  RewriteOutcome out;
  out.option_index = best;
  out.planning_ms = planning_ms;
  const RewriteOption& option = (*renv_.options)[best];
  out.exec_ms = renv_.oracle->TrueTimeMs(query, option);
  out.total_ms = out.planning_ms + out.exec_ms;
  out.viable = out.total_ms <= tau_ms;
  out.steps = renv_.options->size();
  out.approximate = option.IsApproximate();
  if (renv_.env_config.quality != nullptr) {
    out.quality = renv_.env_config.quality->Quality(query, option);
  }
  return out;
}

}  // namespace maliva
