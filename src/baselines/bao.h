// Bao comparator (Marcus et al., "Bao: Making Learned Query Optimization
// Practical") adapted to the middleware setting, following the paper's
// Section 7.1 description:
//
//  * Bao's QTE is a neural model over features of the physical plan produced
//    by the underlying optimizer — estimated cardinalities and operator
//    costs — so it inherits the optimizer's estimation errors on textual and
//    spatial predicates.
//  * Online, Bao enumerates every candidate hint set, predicts each rewritten
//    query's time, and picks the fastest. Its per-plan inference is cheap but
//    not free; enumeration cost grows linearly with the option count.

#ifndef MALIVA_BASELINES_BAO_H_
#define MALIVA_BASELINES_BAO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/rewriter.h"
#include "ml/mlp.h"

namespace maliva {

/// Plan-feature regression model: features from the optimizer's estimated
/// PlanCards, target log1p(true execution ms).
class BaoQte {
 public:
  static constexpr size_t kFeatureDim = 14;

  explicit BaoQte(uint64_t seed);

  /// Features of `option` applied to `query` (optimizer-estimated cards).
  std::vector<double> Featurize(const Engine& engine, const Query& query,
                                const RewriteOption& option) const;

  /// Predicted execution time (virtual ms).
  double PredictMs(const std::vector<double>& features) const;

  /// Supervised fit on (features, true ms) pairs.
  struct Sample {
    std::vector<double> features;
    double true_ms = 0.0;
  };
  void Fit(const std::vector<Sample>& samples, size_t epochs, size_t batch_size,
           double lr, uint64_t seed);

 private:
  std::unique_ptr<Mlp> net_;
};

/// Trains Bao's QTE over a workload: every (query, option) pair is executed
/// once and used as a regression sample. (The original uses Thompson sampling
/// to reduce training executions; training on full coverage is strictly more
/// favourable to Bao and keeps the comparison conservative.)
class BaoTrainer {
 public:
  BaoTrainer(const Engine* engine, const PlanTimeOracle* oracle,
             const RewriteOptionSet* options)
      : engine_(engine), oracle_(oracle), options_(options) {}

  std::unique_ptr<BaoQte> Train(const std::vector<const Query*>& workload,
                                uint64_t seed) const;

 private:
  const Engine* engine_;
  const PlanTimeOracle* oracle_;
  const RewriteOptionSet* options_;
};

/// Bao's online strategy: enumerate all options, predict, take the argmin.
class BaoRewriter : public Rewriter {
 public:
  BaoRewriter(const Engine* engine, const PlanTimeOracle* oracle,
              const RewriteOptionSet* options, const BaoQte* qte, double tau_ms,
              double per_plan_cost_ms = 10.0)
      : engine_(engine),
        oracle_(oracle),
        options_(options),
        qte_(qte),
        tau_ms_(tau_ms),
        per_plan_cost_ms_(per_plan_cost_ms) {}

  const std::string& name() const override { return name_; }
  double default_tau_ms() const override { return tau_ms_; }

  RewriteOutcome RewriteForSession(const Query& query, double tau_ms,
                                   RewriteSession& session) const override;

  const RewriteOption* DecidedOption(const RewriteOutcome& outcome) const override {
    return &(*options_)[outcome.option_index];
  }

 private:
  const Engine* engine_;
  const PlanTimeOracle* oracle_;
  const RewriteOptionSet* options_;
  const BaoQte* qte_;
  double tau_ms_;
  double per_plan_cost_ms_;
  std::string name_ = "Bao";
};

}  // namespace maliva

#endif  // MALIVA_BASELINES_BAO_H_
