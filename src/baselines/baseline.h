// The no-rewriting baseline: trust the backend optimizer.

#ifndef MALIVA_BASELINES_BASELINE_H_
#define MALIVA_BASELINES_BASELINE_H_

#include <string>

#include "core/rewriter.h"

namespace maliva {

/// Sends the original query with no hints; the engine's cost-based optimizer
/// (with its estimation errors) picks the physical plan.
class BaselineRewriter : public Rewriter {
 public:
  BaselineRewriter(const Engine* engine, const PlanTimeOracle* oracle, double tau_ms)
      : engine_(engine), oracle_(oracle), tau_ms_(tau_ms) {}

  const std::string& name() const override { return name_; }
  double default_tau_ms() const override { return tau_ms_; }

  RewriteOutcome RewriteForSession(const Query& query, double tau_ms,
                                   RewriteSession& session) const override;

 private:
  const Engine* engine_;
  const PlanTimeOracle* oracle_;
  double tau_ms_;
  std::string name_ = "Baseline";
};

/// Brute-force middleware: estimates every rewritten query with the QTE
/// (paying all estimation costs), then picks the fastest estimate. This is
/// the paper's "Naive (Approximate-QTE)" comparator.
class NaiveRewriter : public Rewriter {
 public:
  NaiveRewriter(RewriterEnv renv, std::string name)
      : renv_(std::move(renv)), name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  double default_tau_ms() const override { return renv_.env_config.tau_ms; }

  RewriteOutcome RewriteForSession(const Query& query, double tau_ms,
                                   RewriteSession& session) const override;

  const RewriteOption* DecidedOption(const RewriteOutcome& outcome) const override {
    return &(*renv_.options)[outcome.option_index];
  }

 private:
  RewriterEnv renv_;
  std::string name_;
};

}  // namespace maliva

#endif  // MALIVA_BASELINES_BASELINE_H_
