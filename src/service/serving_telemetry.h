// Serving telemetry: fleet-level counters for the cross-request knowledge
// plane and the serve path.
//
// Every Serve/ServeBatch request folds its per-request accounting (shared
// hits vs local selectivity collections, quality-floor fallbacks, wall-clock
// latency) into one ServingTelemetry owned by the service; benches and
// operators read consistent-enough snapshots through MalivaService::Stats().
// Counters are independent relaxed atomics — cheap on the hot path; a
// snapshot is not a single atomic cut across counters, which is fine for
// monitoring (each counter is individually exact).
//
// Note the two time axes: everything in RewriteOutcome is deterministic
// *virtual* time (DESIGN.md "Virtual time"); serve latency here is host
// wall-clock time, the one quantity that must be measured, not modeled.

#ifndef MALIVA_SERVICE_SERVING_TELEMETRY_H_
#define MALIVA_SERVICE_SERVING_TELEMETRY_H_

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/query_profiler.h"

namespace maliva {

/// Per-request serving telemetry carried on the response. The counters are
/// deterministic given the shared-store snapshot the request saw;
/// selectivities_collected is populated in every mode (it is the request's
/// full bill when cross_request_cache is off), while the shared_* fields
/// are identically zero with the plane off. serve_wall_ms is host
/// wall-clock time — the one non-virtual, run-varying number — and is
/// excluded from byte-identity guarantees (as are the result_cache_* flags,
/// which describe *how* the decision was obtained, not the decision).
struct RequestStats {
  /// Selectivity slots this request collected (and paid for) itself.
  size_t selectivities_collected = 0;
  /// Slots pre-seeded free from the shared store.
  size_t shared_hits = 0;
  /// Per-rung slot accounting of the selectivity ladder: [0] shared-store
  /// seeds (== shared_hits), [1] histogram-tier estimates, [2] probes
  /// (sample/true-selectivity collections, statistics fallbacks included).
  /// [1] + [2] == selectivities_collected; [1] is identically zero while
  /// ServiceConfig::histogram_selectivity is off.
  size_t selectivity_tier_hits[3] = {0, 0, 0};
  /// New entries this request contributed to the shared store.
  size_t shared_published = 0;
  /// Version of the agent snapshot that served this request; 0 when the
  /// online learning plane is off or the strategy serves frozen weights.
  uint64_t agent_snapshot_version = 0;
  /// Rewrite-result cache (service/rewrite_result_cache.h): true when this
  /// response replayed a cached decision instead of running the search. The
  /// selectivity counters above are then the *template* of the miss that
  /// computed the entry — the original search's bill, not new work.
  bool result_cache_hit = false;
  /// True when the decision came from another request's in-flight search
  /// (single-flight follower, or a ServeBatch in-batch dedup replay).
  bool result_cache_coalesced = false;
  /// Overload control plane (service_fleet.h): true when the admission gate
  /// predicted the requested strategy would miss its deadline and forced the
  /// configured degrade strategy instead. Always false off that path.
  bool degraded = false;
  /// Wall ms this request waited in the fleet's deadline scheduler between
  /// arrival and dispatch; 0 off the scheduler path.
  double queue_wait_ms = 0.0;
  /// Host wall-clock serving latency, milliseconds.
  double serve_wall_ms = 0.0;
  /// Per-phase cost breakdown (ISSUE 9): set only when this request was
  /// profiled (ServiceConfig::profile_requests, sampled every
  /// profile_sample_every-th request). Wall-clock based and run-varying like
  /// serve_wall_ms — excluded from byte-identity; the decision bytes of a
  /// response are identical with profiling on or off. Cache-hit responses
  /// carry the hit path's own (partial) breakdown, never the template of the
  /// miss that computed the entry.
  std::optional<ProfileBreakdown> profile;
};

/// One consistent-enough snapshot of the service's serving counters.
struct ServiceStats {
  uint64_t requests = 0;         ///< Serve calls (batch members included)
  uint64_t errors = 0;           ///< requests answered with a non-OK Status
  uint64_t exact_fallbacks = 0;  ///< quality-floor fallbacks to "baseline"

  // Knowledge plane. selectivities_collected is meaningful in every mode
  // (with cross_request_cache off it is simply each request's full bill);
  // the shared_* and store_* fields are identically zero while the plane
  // is off.
  uint64_t selectivities_collected = 0;  ///< slots paid for by requests
  uint64_t shared_hits = 0;              ///< slots served free from the store
  uint64_t shared_published = 0;         ///< new entries contributed
  uint64_t store_size = 0;               ///< resident entries at snapshot time
  uint64_t store_evictions = 0;          ///< FIFO evictions so far
  uint64_t store_epoch = 0;              ///< engine catalog version at snapshot

  // Selectivity ladder (DESIGN.md "Selectivity tiers"). histogram_hits and
  // probe_collections split selectivities_collected by rung: slots answered
  // O(1) from full-table histograms vs slots that paid a sample probe (or
  // statistics fallback). histogram_hits is identically zero while
  // ServiceConfig::histogram_selectivity is off; the health fields below it
  // come from the tier's trust windows at snapshot time.
  uint64_t histogram_hits = 0;        ///< slots answered by the histogram tier
  uint64_t probe_collections = 0;     ///< slots that paid a probe
  double histogram_mean_abs_rel_error = 0.0;  ///< windowed estimate-vs-probe error
  uint64_t histogram_error_samples = 0;       ///< samples behind that mean
  uint64_t histogram_demoted_columns = 0;     ///< columns demoted to probing

  // Rewrite-result cache (DESIGN.md "Rewrite-result cache"; identically
  // zero while ServiceConfig::result_cache is off). hits/misses/coalesced
  // partition the cache-probed requests: replayed from a resident entry,
  // computed (leader or solo), or served by another request's in-flight
  // search. stale_declines counts fingerprint matches refused because their
  // epoch or snapshot context had moved on — the O(1) invalidation at work.
  uint64_t result_cache_hits = 0;       ///< decisions replayed from the cache
  uint64_t result_cache_misses = 0;     ///< decisions computed (and published)
  uint64_t result_cache_coalesced = 0;  ///< served by another's search
  uint64_t result_cache_evictions = 0;  ///< entries the CLOCK hand dropped
  uint64_t result_cache_stale_declines = 0;  ///< context-mismatch refusals
  uint64_t result_cache_size = 0;       ///< resident entries at snapshot time

  // Online learning plane (identically zero while ServiceConfig::
  // online_learning is off). online_snapshot_version is the newest
  // published agent snapshot across agent keys (1 = offline warm-up weights
  // only); the last_retrain_* rewards are the validation gate's evidence
  // from the most recent fine-tune round, whether it published or was
  // rejected.
  uint64_t online_transitions = 0;       ///< serving transitions recorded
  uint64_t online_transitions_dropped = 0;  ///< evicted before training
  uint64_t online_transitions_pending = 0;  ///< buffered, awaiting a round
  uint64_t online_retrains = 0;          ///< fine-tune rounds published
  uint64_t online_rejected = 0;          ///< rounds the validation gate refused
  uint64_t online_snapshot_version = 0;  ///< newest agent snapshot version
  double last_retrain_reward_pre = 0.0;  ///< incumbent validation reward
  double last_retrain_reward_post = 0.0; ///< fine-tuned clone's reward

  // Overload control plane (identically zero for a standalone MalivaService
  // and while FleetConfig::admission is off). The fleet-level admission gate
  // fills these per shard when it snapshots FleetStats — a shard's own
  // telemetry never sees shed requests, which are refused before reaching
  // any service.
  uint64_t admission_admitted = 0;       ///< gate verdicts: served as asked
  uint64_t admission_degraded = 0;       ///< served with the degrade strategy
  uint64_t admission_shed_deadline = 0;  ///< refused: deadline unmakeable
  uint64_t admission_shed_overload = 0;  ///< refused: queue at capacity
  double admission_queue_wait_ms_total = 0.0;  ///< summed scheduler queue wait

  double serve_wall_ms_total = 0.0;  ///< summed host wall-clock serve latency

  /// Fraction of needed selectivities that came free from the shared store.
  double SharedHitRatio() const {
    uint64_t total = shared_hits + selectivities_collected;
    return total == 0 ? 0.0 : static_cast<double>(shared_hits) / static_cast<double>(total);
  }

  double MeanServeWallMs() const {
    return requests == 0 ? 0.0 : serve_wall_ms_total / static_cast<double>(requests);
  }
};

/// Thread-safe accumulator behind MalivaService::Stats().
class ServingTelemetry {
 public:
  /// Wall ms to integer ns for the latency accumulator, rounded to the
  /// nearest nanosecond and clamped: NaN and negative inputs (a clock that
  /// stepped backwards must not wrap the counter by ~2^64) account as 0,
  /// and values beyond the representable range saturate instead of
  /// overflowing the double->uint64 cast (UB).
  static uint64_t WallMsToNs(double wall_ms) {
    if (!(wall_ms > 0.0)) return 0;  // negatives and NaN clamp to zero
    const double ns = wall_ms * 1e6;
    if (ns >= 9.2e18) return UINT64_MAX;  // below 2^63, llround stays defined
    return static_cast<uint64_t>(std::llround(ns));
  }

  void RecordServed(uint64_t collected, uint64_t shared_hits, uint64_t published,
                    uint64_t histogram_hits, uint64_t probes,
                    bool exact_fallback, double wall_ms) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    collected_.fetch_add(collected, std::memory_order_relaxed);
    shared_hits_.fetch_add(shared_hits, std::memory_order_relaxed);
    published_.fetch_add(published, std::memory_order_relaxed);
    histogram_hits_.fetch_add(histogram_hits, std::memory_order_relaxed);
    probes_.fetch_add(probes, std::memory_order_relaxed);
    if (exact_fallback) fallbacks_.fetch_add(1, std::memory_order_relaxed);
    wall_ns_.fetch_add(WallMsToNs(wall_ms), std::memory_order_relaxed);
  }

  /// A request answered from the rewrite-result cache: count the request
  /// (and its response-level fallback flag), but none of the selectivity
  /// counters — the cached template describes work the *original* miss did,
  /// and re-folding it here would double-count the fleet's actual bill.
  void RecordServedCached(bool exact_fallback, double wall_ms) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (exact_fallback) fallbacks_.fetch_add(1, std::memory_order_relaxed);
    wall_ns_.fetch_add(WallMsToNs(wall_ms), std::memory_order_relaxed);
  }

  void RecordError(double wall_ms) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    errors_.fetch_add(1, std::memory_order_relaxed);
    wall_ns_.fetch_add(WallMsToNs(wall_ms), std::memory_order_relaxed);
  }

  /// Counter part of the snapshot; the service layers the store fields on top.
  ServiceStats Snapshot() const {
    ServiceStats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.exact_fallbacks = fallbacks_.load(std::memory_order_relaxed);
    s.selectivities_collected = collected_.load(std::memory_order_relaxed);
    s.shared_hits = shared_hits_.load(std::memory_order_relaxed);
    s.shared_published = published_.load(std::memory_order_relaxed);
    s.histogram_hits = histogram_hits_.load(std::memory_order_relaxed);
    s.probe_collections = probes_.load(std::memory_order_relaxed);
    s.serve_wall_ms_total =
        static_cast<double>(wall_ns_.load(std::memory_order_relaxed)) / 1e6;
    return s;
  }

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> collected_{0};
  std::atomic<uint64_t> shared_hits_{0};
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> histogram_hits_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> wall_ns_{0};
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_SERVING_TELEMETRY_H_
