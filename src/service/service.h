// MalivaService: the middleware's serving facade (see DESIGN.md).
//
// The paper's system is one service: it accepts a visualization query and a
// time budget tau and returns a rewritten query within the budget. This layer
// owns everything behind that contract — engine wiring, QTEs, option sets,
// and trained agents — and serves typed RewriteRequest -> RewriteResponse,
// with strategies selected by name through RewriterFactory.
//
//   Scenario scenario = BuildScenario(cfg);
//   MalivaService service(&scenario, ServiceConfig().WithAgentSeeds(1));
//   service.Warmup({"mdp/accurate", "baseline"});   // optional: train now
//   RewriteRequest req;
//   req.query = scenario.evaluation[0];
//   req.strategy = "mdp/accurate";          // else trained lazily, first use
//   Result<RewriteResponse> resp = service.Serve(req);
//
// Concurrency model (two-phase, see DESIGN.md "Concurrency model"):
//   * build/train phase — Warmup (or the mutex-guarded first use of a
//     strategy) populates an immutable ServingState: engine catalog, trained
//     agents, Bao QTE, interned option sets. Published entries are frozen.
//   * serve phase — Serve is const and data-race-free; every request runs in
//     its own RewriteSession (selectivity caches, RNG, fallback accounting).
//     ServeBatch fans requests out over ServiceConfig::num_threads workers
//     with results byte-identical to sequential Serve calls in request
//     order.
//   * knowledge plane (optional, ServiceConfig::cross_request_cache) — an
//     internally synchronized SharedSelectivityStore lets requests reuse the
//     selectivities earlier requests collected (canonicalized slot keys,
//     epoch-tagged to the engine catalog version). With it on, determinism
//     is per-request given a fixed store snapshot; off preserves the
//     byte-identical-at-any-thread-count contract above.
//   * online learning plane (optional, ServiceConfig::online_learning) —
//     single-agent MDP strategies serve the newest published AgentSnapshot
//     from a ModelRegistry instead of frozen weights; served episodes feed
//     observed transitions to a bounded replay sink, and a background
//     ContinualTrainer fine-tunes a cloned agent on them, publishing a new
//     snapshot version behind a validation gate. Off preserves byte-identity
//     above; on keeps each request deterministic given its snapshot.

#ifndef MALIVA_SERVICE_SERVICE_H_
#define MALIVA_SERVICE_SERVICE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/trainer.h"
#include "query/signature.h"
#include "service/rewriter_factory.h"
#include "service/serving_state.h"
#include "service/serving_telemetry.h"
#include "util/metrics.h"
#include "util/status.h"
#include "workload/scenario.h"

namespace maliva {

class ThreadPool;  // util/thread_pool.h; owned pool is created lazily

/// Configuration of one MalivaService instance. Builder-style setters allow
/// inline construction; every knob has a sensible default.
struct ServiceConfig {
  /// QTE cost parameters. Unset means "use the scenario's parameters"
  /// (ScenarioConfig::qte); either way the resolved values are the single
  /// source of truth for every env the service builds.
  std::optional<QteParams> qte;
  /// Deep Q-learning hyper-parameters used when a strategy trains agents.
  TrainerConfig trainer;
  /// Agents trained per strategy; the best on the validation workload is
  /// kept (hold-out validation, Section 7.1).
  size_t num_agent_seeds = 2;
  /// Bao's per-plan inference cost (virtual ms).
  double bao_per_plan_cost_ms = 10.0;
  /// Reward weight of efficiency vs quality for quality-aware agents (Eq 2).
  double beta = 0.5;
  /// Approximation rules for the "quality/*" strategies. Must be approximate
  /// rules only; empty means those strategies fail with FailedPrecondition.
  std::vector<ApproxRule> approx_rules;
  /// Strategy served when a request does not name one.
  std::string default_strategy = "mdp/accurate";
  /// Worker threads for ServeBatch. 0 = hardware concurrency; 1 = the
  /// sequential path. Results are byte-identical at every thread count.
  /// Validate() rejects values above kMaxNumThreads (catches unsigned
  /// wrap-arounds like size_t(-1)).
  size_t num_threads = 0;

  /// Cross-request knowledge plane (DESIGN.md "Cross-request knowledge
  /// plane"). Off (default): every request starts with cold selectivity
  /// caches and ServeBatch results stay byte-identical at every thread
  /// count. On: requests read selectivities earlier requests collected from
  /// a SharedSelectivityStore and publish their own; each request is
  /// deterministic given a fixed store snapshot, but batch results may
  /// depend on request completion order (who publishes first).
  bool cross_request_cache = false;
  /// Shared store entry capacity (FIFO eviction). Must be > 0 when the
  /// cache is on.
  size_t shared_store_capacity = 1u << 20;
  /// Shared store lock shards. Must be > 0 and <= capacity when the cache
  /// is on.
  size_t shared_store_shards = 16;
  /// Literal-binning granularity of query canonicalization
  /// (SignatureOptions::literal_bins). Must be >= 1 when the cache is on.
  int signature_literal_bins = SignatureOptions{}.literal_bins;

  /// Histogram selectivity tier (DESIGN.md "Selectivity tiers"). Off
  /// (default): cold selectivity lookups pay the sample probe and ServeBatch
  /// stays byte-identical at every thread count. On: the sampling QTE
  /// answers slots from accurate full-table histograms
  /// (Engine::HistogramSelectivity, O(1), no table access) at the near-zero
  /// histogram_cost_ms instead of the probe's unit cost, with per-column
  /// trust learned from estimate-vs-probe error; requests stay deterministic
  /// given the tier's trust state (like the shared store's snapshot
  /// semantics).
  bool histogram_selectivity = false;
  /// Equi-width buckets per numeric column. Must be > 0 when the tier is on.
  size_t histogram_buckets = 64;
  /// Grid cells per axis for point columns. Must be > 0 when the tier is on.
  size_t histogram_grid_cells = 64;
  /// Virtual cost charged per histogram-answered slot (replaces the probe's
  /// QteParams::unit_cost_ms). Must be finite and >= 0 when the tier is on.
  double histogram_cost_ms = 0.5;
  /// Demotion threshold: a (table, column) whose windowed mean relative
  /// error vs probes exceeds this falls back to probing. Must be finite and
  /// > 0 when the tier is on.
  double max_histogram_rel_error = 0.35;
  /// Per-(table, column) error samples retained for the trust decision.
  /// Must be > 0 when the tier is on.
  size_t histogram_error_window = 32;

  /// Rewrite-result cache (DESIGN.md "Rewrite-result cache"). Off (default):
  /// every request runs its strategy's full search and ServeBatch stays
  /// byte-identical at every thread count. On: a request whose decision
  /// context — canonical query signature, strategy, binned tau, binned
  /// quality floor, agent snapshot version, catalog epoch — was already
  /// solved replays the cached decision in O(1) (skipping QTE and agent
  /// entirely, stamped stats.result_cache_hit), concurrent identical misses
  /// coalesce behind one leader's search, and ServeBatch dedups identical
  /// contexts within a batch. Hit responses are byte-identical to the miss
  /// they were cached from; requests whose tau/floor differ only within a
  /// bin share a decision (the documented fidelity trade, like
  /// signature_literal_bins).
  bool result_cache = false;
  /// Cached decisions retained (CLOCK/second-chance eviction, per shard).
  /// Must be > 0 when the cache is on.
  size_t result_cache_capacity = 4096;
  /// Result-cache lock shards. Must be > 0 and <= capacity when on.
  size_t result_cache_shards = 8;
  /// Width of one effective-tau key bin, virtual ms
  /// (FingerprintOptions::tau_bin_ms). Must be finite and > 0 when on.
  double result_cache_tau_bin_ms = 25.0;
  /// Quality-floor key bins across [0, 1]
  /// (FingerprintOptions::quality_floor_bins). Must be >= 1 when on.
  int result_cache_floor_bins = 100;

  /// Online learning plane (DESIGN.md "Online learning plane"). Off
  /// (default): agents stay frozen after warm-up and ServeBatch results are
  /// byte-identical to pre-online behavior at every thread count. On:
  /// single-agent MDP strategies serve the newest published AgentSnapshot
  /// from a ModelRegistry, every served episode's transitions feed a
  /// bounded replay sink, and a background ContinualTrainer periodically
  /// fine-tunes a cloned agent on that feedback, publishing a new snapshot
  /// version when the validation gate passes. Each request stays
  /// deterministic given the snapshot it was served under.
  bool online_learning = false;
  /// Buffered transitions that trigger a background fine-tune round. Must
  /// be > 0 when online learning is on.
  size_t online_min_transitions = 512;
  /// Replay sink bound per agent key (oldest transitions dropped beyond it)
  /// and its lock shards. capacity must be > 0 and shards in [1, capacity]
  /// when online learning is on.
  size_t online_replay_capacity = 16384;
  size_t online_replay_shards = 8;
  /// Minibatch updates per fine-tune round. Must be > 0 when online
  /// learning is on; batch size / discount / target-sync cadence come from
  /// `trainer`.
  size_t online_gradient_steps = 48;
  /// Adam step size of fine-tune rounds, separate from the offline
  /// `trainer.learning_rate` (continual fine-tuning conventionally steps
  /// smaller than from-scratch training). Must be finite and > 0 when
  /// online learning is on.
  double online_learning_rate = 5e-4;
  /// Validation gate slack: a fine-tuned clone is published only when its
  /// mean greedy validation reward stays within this tolerance of the
  /// *offline warm-up snapshot's* reward on the same split — a fixed bar,
  /// so successive rounds keep adapting to drift while catastrophic
  /// forgetting of the base distribution is refused. Must be finite and
  /// >= 0 when online learning is on; 0 demands the warm-up level itself.
  double online_gate_tolerance = 0.05;
  /// Background fine-tune workers (0 = no background retraining; rounds
  /// then run only via ContinualTrainer::RetrainNow). Bounded by
  /// kMaxNumThreads like num_threads.
  size_t online_trainer_threads = 1;
  /// Snapshot versions the ModelRegistry retains per agent key: the offline
  /// warm-up snapshot (version 1, the rollback floor) plus the most recent
  /// versions; older middles are pruned on publish, so a long-running online
  /// shard cannot accumulate every model it ever published. Must be >= 2
  /// when online learning is on (the floor plus the serving head). Requests
  /// holding a pruned version keep it alive through their own shared_ptr.
  size_t online_max_snapshots = 8;

  /// Per-request cost profiling (DESIGN.md "Measurement plane"). Off (the
  /// default): the serve path holds one null-pointer check per would-be
  /// span, never reads a clock, and responses are byte-identical to pre-
  /// profiler behavior. On: every profile_sample_every-th request (by batch
  /// index; index 0 always profiles) carries a wall-clock phase breakdown —
  /// signature / cache probe / selectivity ladder / search / render /
  /// publish — in RequestStats::profile. The breakdown is measurement, not
  /// decision state: decision bytes stay identical with profiling on or off
  /// at every thread count.
  bool profile_requests = false;
  /// Profile every Nth request (1 = all). Must be >= 1 when profiling is on.
  size_t profile_sample_every = 1;

  /// Metrics plane (DESIGN.md "Observability plane"). Off (the default): no
  /// registry is constructed, the serve path holds one null-pointer check
  /// per would-be record, and responses stay byte-identical to pre-metrics
  /// behavior. On: the service owns a MetricsRegistry of labeled counters,
  /// gauges, and latency histograms (serve latency, queue wait, cache/tier/
  /// admission outcomes), with every handle pre-resolved at construction so
  /// the hot path performs zero registry map lookups. Pure measurement —
  /// nothing recorded ever feeds back into a decision.
  bool metrics = false;
  /// Value of the `scenario` base label stamped on every series (the fleet
  /// sets this to the shard's routing key at registration). Empty = no
  /// scenario label. Requires `metrics`.
  std::string metrics_scenario;

  /// Upper bound Validate() accepts for num_threads.
  static constexpr size_t kMaxNumThreads = 4096;

  /// Rejects misconfigurations with InvalidArgument instead of silently
  /// clamping: num_threads pathologies (> kMaxNumThreads), non-finite or
  /// negative cost/reward knobs, and — when cross_request_cache is on —
  /// zero capacities, zero shards, shards exceeding capacity, and
  /// non-positive literal bins. Checked once at service construction; a
  /// failing config turns every Serve/Warmup call into this error.
  Status Validate() const;

  ServiceConfig& WithQte(QteParams params) {
    qte = params;
    return *this;
  }
  ServiceConfig& WithTrainer(TrainerConfig config) {
    trainer = config;
    return *this;
  }
  ServiceConfig& WithTrainerIterations(size_t iterations) {
    trainer.max_iterations = iterations;
    return *this;
  }
  ServiceConfig& WithAgentSeeds(size_t seeds) {
    num_agent_seeds = seeds;
    return *this;
  }
  ServiceConfig& WithBeta(double value) {
    beta = value;
    return *this;
  }
  ServiceConfig& WithBaoPerPlanCostMs(double ms) {
    bao_per_plan_cost_ms = ms;
    return *this;
  }
  ServiceConfig& WithApproxRules(std::vector<ApproxRule> rules) {
    approx_rules = std::move(rules);
    return *this;
  }
  ServiceConfig& WithDefaultStrategy(std::string name) {
    default_strategy = std::move(name);
    return *this;
  }
  ServiceConfig& WithNumThreads(size_t threads) {
    num_threads = threads;
    return *this;
  }
  ServiceConfig& WithCrossRequestCache(bool enabled) {
    cross_request_cache = enabled;
    return *this;
  }
  ServiceConfig& WithSharedStoreCapacity(size_t capacity) {
    shared_store_capacity = capacity;
    return *this;
  }
  ServiceConfig& WithSharedStoreShards(size_t shards) {
    shared_store_shards = shards;
    return *this;
  }
  ServiceConfig& WithSignatureLiteralBins(int bins) {
    signature_literal_bins = bins;
    return *this;
  }
  ServiceConfig& WithHistogramSelectivity(bool enabled) {
    histogram_selectivity = enabled;
    return *this;
  }
  ServiceConfig& WithHistogramBuckets(size_t buckets) {
    histogram_buckets = buckets;
    return *this;
  }
  ServiceConfig& WithHistogramGridCells(size_t cells) {
    histogram_grid_cells = cells;
    return *this;
  }
  ServiceConfig& WithHistogramCostMs(double ms) {
    histogram_cost_ms = ms;
    return *this;
  }
  ServiceConfig& WithMaxHistogramRelError(double rel_error) {
    max_histogram_rel_error = rel_error;
    return *this;
  }
  ServiceConfig& WithHistogramErrorWindow(size_t window) {
    histogram_error_window = window;
    return *this;
  }
  ServiceConfig& WithResultCache(bool enabled) {
    result_cache = enabled;
    return *this;
  }
  ServiceConfig& WithResultCacheCapacity(size_t capacity) {
    result_cache_capacity = capacity;
    return *this;
  }
  ServiceConfig& WithResultCacheShards(size_t shards) {
    result_cache_shards = shards;
    return *this;
  }
  ServiceConfig& WithResultCacheTauBinMs(double ms) {
    result_cache_tau_bin_ms = ms;
    return *this;
  }
  ServiceConfig& WithResultCacheFloorBins(int bins) {
    result_cache_floor_bins = bins;
    return *this;
  }
  ServiceConfig& WithOnlineLearning(bool enabled) {
    online_learning = enabled;
    return *this;
  }
  ServiceConfig& WithOnlineMinTransitions(size_t transitions) {
    online_min_transitions = transitions;
    return *this;
  }
  ServiceConfig& WithOnlineReplayCapacity(size_t capacity) {
    online_replay_capacity = capacity;
    return *this;
  }
  ServiceConfig& WithOnlineReplayShards(size_t shards) {
    online_replay_shards = shards;
    return *this;
  }
  ServiceConfig& WithOnlineGradientSteps(size_t steps) {
    online_gradient_steps = steps;
    return *this;
  }
  ServiceConfig& WithOnlineLearningRate(double rate) {
    online_learning_rate = rate;
    return *this;
  }
  ServiceConfig& WithOnlineGateTolerance(double tolerance) {
    online_gate_tolerance = tolerance;
    return *this;
  }
  ServiceConfig& WithOnlineTrainerThreads(size_t threads) {
    online_trainer_threads = threads;
    return *this;
  }
  ServiceConfig& WithOnlineMaxSnapshots(size_t max_snapshots) {
    online_max_snapshots = max_snapshots;
    return *this;
  }
  ServiceConfig& WithProfileRequests(bool enabled) {
    profile_requests = enabled;
    return *this;
  }
  ServiceConfig& WithProfileSampleEvery(size_t every) {
    profile_sample_every = every;
    return *this;
  }
  ServiceConfig& WithMetrics(bool enabled) {
    metrics = enabled;
    return *this;
  }
  ServiceConfig& WithMetricsScenario(std::string scenario) {
    metrics_scenario = std::move(scenario);
    return *this;
  }
};

/// Pre-resolved metric handles for the serve hot path (ISSUE 10): every
/// pointer is resolved from the service's MetricsRegistry exactly once, at
/// construction, so recording is relaxed atomic ops only — zero map lookups
/// per request (provable via MetricsRegistry::lookups()). All null while
/// ServiceConfig::metrics is off; the admission/queue-wait handles are
/// recorded by the fleet's gate path (a shed request never reaches the
/// shard's own serve path).
struct ServeMetrics {
  Counter* requests_ok = nullptr;       ///< maliva_requests_total{verdict="ok"}
  Counter* requests_error = nullptr;    ///< maliva_requests_total{verdict="error"}
  Counter* exact_fallbacks = nullptr;   ///< maliva_exact_fallbacks_total
  Counter* cache_hits = nullptr;        ///< maliva_result_cache_total{outcome="hit"}
  Counter* cache_misses = nullptr;      ///< maliva_result_cache_total{outcome="miss"}
  Counter* cache_coalesced = nullptr;   ///< maliva_result_cache_total{outcome="coalesced"}
  Counter* tier_shared = nullptr;       ///< maliva_selectivity_slots_total{rung="shared"}
  Counter* tier_histogram = nullptr;    ///< maliva_selectivity_slots_total{rung="histogram"}
  Counter* tier_probe = nullptr;        ///< maliva_selectivity_slots_total{rung="probe"}
  Counter* admission_admitted = nullptr;       ///< maliva_admission_total{verdict="admitted"}
  Counter* admission_degraded = nullptr;       ///< maliva_admission_total{verdict="degraded"}
  Counter* admission_shed_deadline = nullptr;  ///< maliva_admission_total{verdict="shed_deadline"}
  Counter* admission_shed_overload = nullptr;  ///< maliva_admission_total{verdict="shed_overload"}
  LatencyHistogram* serve_latency = nullptr;   ///< maliva_serve_latency_ms
  LatencyHistogram* queue_wait = nullptr;      ///< maliva_queue_wait_ms
  Gauge* result_cache_entries = nullptr;       ///< maliva_result_cache_entries
  Gauge* shared_store_entries = nullptr;       ///< maliva_shared_store_entries
  Gauge* agent_snapshot_version = nullptr;     ///< maliva_agent_snapshot_version
};

/// One rewriting request.
struct RewriteRequest {
  const Query* query = nullptr;
  /// Fleet routing key: which registered scenario serves this request
  /// (service_fleet.h). An empty key routes to a single-shard fleet's sole
  /// scenario; a standalone MalivaService ignores the field entirely.
  std::string scenario;
  /// Strategy name (RewriterFactory key); empty = ServiceConfig default.
  std::string strategy;
  /// Per-request time budget; unset = the strategy's configured tau.
  std::optional<double> tau_ms;
  /// Minimum acceptable visualization quality F(r(Q), r(RQ)). When the
  /// strategy's choice falls below the floor, the service re-serves the
  /// request with the exact "baseline" strategy (quality 1) and flags it;
  /// the first attempt's planning time stays on the outcome's bill.
  std::optional<double> quality_floor;
};

// RequestStats (the per-request telemetry carried on the response) lives in
// serving_telemetry.h: the rewrite-result cache stores a stats template per
// entry and must see the definition without this header.

/// One rewriting response.
struct RewriteResponse {
  /// Strategy that served the request (factory key, not display name); this
  /// is "baseline" when a quality floor forced the exact fallback.
  std::string strategy;
  RewriteOutcome outcome;
  /// The chosen rewrite option, owned by the service; nullptr when the plan
  /// was delegated entirely to the backend optimizer.
  const RewriteOption* option = nullptr;
  /// SQL-ish rendering of the rewritten query (hints included).
  std::string rewritten_sql;
  /// True when quality_floor forced the exact-baseline fallback.
  bool exact_fallback = false;
  /// Per-request serving telemetry (selectivity accounting, wall latency).
  RequestStats stats;
};

/// Owns the serving state for one scenario: QTEs, the quality oracle, interned
/// option sets, trained agents, and built strategies (the shared-immutable
/// ServingState). `scenario` is borrowed and must outlive the service.
///
/// Thread safety: Serve/ServeBatch/GetRewriter are const and safe to call
/// concurrently. Strategy builds (Warmup or lazy first use) run under an
/// exclusive internal lock; once a strategy is published it is immutable.
class MalivaService {
 public:
  MalivaService(Scenario* scenario, ServiceConfig config);
  ~MalivaService();

  MalivaService(const MalivaService&) = delete;
  MalivaService& operator=(const MalivaService&) = delete;

  /// Eagerly builds (training agents as needed) every named strategy, in
  /// order, so later Serve calls never pay training latency or contend on
  /// the build lock. Idempotent: already built strategies are no-ops. Fails
  /// on the first strategy that cannot be built.
  Status Warmup(std::span<const std::string> strategies);
  Status Warmup(std::initializer_list<std::string> strategies) {
    return Warmup(std::span<const std::string>(strategies.begin(), strategies.end()));
  }

  /// Warms every registered strategy. Strategies unavailable under this
  /// configuration (FailedPrecondition, e.g. "quality/*" without
  /// approx_rules) are skipped — each request naming one still gets that
  /// Status from Serve. Any other build error (including InvalidArgument
  /// misconfigurations) fails the warm-up.
  Status Warmup();

  /// Serves one request. Errors (unknown strategy, invalid budget, missing
  /// approximation rules, ...) come back as Status, never as a crash.
  /// Thread-safe; all per-request mutable state lives in an internal
  /// RewriteSession.
  Result<RewriteResponse> Serve(const RewriteRequest& request) const;

  /// Serves a batch over ServiceConfig::num_threads workers (1 = sequential
  /// loop). Strategies the batch needs are built once up front. Determinism:
  /// session RNG seeds derive from the request *index*, not from
  /// shared-stream order, so responses are byte-identical across thread
  /// counts (including the num_threads=1 sequential loop). For strategies
  /// that draw nothing from the session RNG — all built-ins — they also
  /// equal individual Serve calls in request order; a stochastic custom
  /// strategy sees a different session seed per batch position (Serve always
  /// uses index 0).
  std::vector<Result<RewriteResponse>> ServeBatch(
      std::span<const RewriteRequest> requests) const;

  /// Serves one request at an explicit batch position: `request_index` seeds
  /// the per-request session RNG exactly as ServeBatch does for the request
  /// at that position (Serve itself is ServeAt(request, 0)). For external
  /// batch drivers — e.g. MalivaFleet's mixed-scenario ServeBatch — that
  /// partition one batch across services but must reproduce each service's
  /// own batch results byte for byte.
  Result<RewriteResponse> ServeAt(const RewriteRequest& request,
                                  uint64_t request_index) const {
    return ServeIndexed(request, request_index);
  }

  /// Returns (building and training on a miss, behind the exclusive build
  /// lock) strategy `name`. The returned pointer is stable for the service's
  /// lifetime.
  Result<const Rewriter*> GetRewriter(const std::string& name) const;

  /// Probe-only fast path for the admission plane: answers the request from
  /// the rewrite-result cache when its decision context is resident, without
  /// touching QTE, agents, or the build lock (an unbuilt strategy is simply
  /// a miss). Returns nullopt on any miss — cache off, invalid request,
  /// cold strategy, absent or stale entry — in which case nothing was
  /// counted and the caller proceeds down the normal serve path. A hit is
  /// recorded in the service telemetry exactly like a served request.
  std::optional<RewriteResponse> TryServeCached(const RewriteRequest& request) const;

  /// Strategy names registered in the global factory. A given instance may
  /// still fail to build some of them (e.g. "quality/*" without approx_rules
  /// configured) — Serve reports that per request as a Status.
  std::vector<std::string> RegisteredStrategies() const;

  /// Snapshot of the serving counters (requests, errors, fallbacks, shared
  /// hits vs local collections, wall latency) plus the shared store's size,
  /// evictions, and current epoch, and — with online learning on — the
  /// newest agent snapshot version, transitions collected, retrain counts,
  /// and the last round's pre/post validation rewards. Thread-safe; each
  /// counter is individually exact, the snapshot is not a single atomic cut.
  ServiceStats Stats() const;

  /// Online learning plane accessors (null while
  /// ServiceConfig::online_learning is off). The trainer exposes
  /// RetrainNow/WaitIdle for deterministic test/bench control; the registry
  /// exposes snapshot chains and Rollback.
  ContinualTrainer* online_trainer() const { return state_.continual_trainer.get(); }
  ModelRegistry* model_registry() const { return state_.model_registry.get(); }

  /// Metrics plane accessors (null while ServiceConfig::metrics is off).
  /// serve_metrics() hands out the pre-resolved handle struct so external
  /// recorders (the fleet's gate path) never touch the registry map either.
  MetricsRegistry* metrics_registry() const { return metrics_registry_.get(); }
  const ServeMetrics* serve_metrics() const {
    return metrics_registry_ == nullptr ? nullptr : &serve_metrics_;
  }

  /// Decision-context fingerprint of `request` — the same canonicalized
  /// (signature, strategy, tau-bin) key the rewrite-result cache uses.
  /// Returns 0 when the request is invalid, the service is misconfigured, or
  /// the strategy is not yet built (never builds, never counts telemetry).
  /// Cold-path only: the fleet stamps it onto TraceEvents when the trace
  /// ring is enabled.
  uint64_t FingerprintRequest(const RewriteRequest& request) const;

  Scenario* scenario() { return scenario_; }
  const Scenario* scenario() const { return scenario_; }
  const ServiceConfig& config() const { return config_; }

  /// Resolved QTE cost parameters (config override or scenario defaults,
  /// jitter seed mixed from the scenario seed).
  const QteParams& qte_params() const { return qte_params_; }

  /// Replaces the approximation rules used by not-yet-built "quality/*"
  /// strategies (already built strategies are unaffected).
  void SetApproxRules(std::vector<ApproxRule> rules);

  // --- hooks for strategy builders (RewriterFactory) and harnesses ---------
  //
  // TrainedAgent, TrainedBaoQte, and InternOptionSet mutate the serving
  // state and must only be called from a RewriterFactory builder — builders
  // always run under the service's exclusive build lock. The read-only hooks
  // (MakeEnv, the QTE accessors) are safe anywhere.

  /// Env wiring for core-level components: engine, oracle, option set,
  /// resolved QTE params, tau, and the quality oracle when beta < 1.
  RewriterEnv MakeEnv(const QueryTimeEstimator* qte, double beta = 1.0,
                      const RewriteOptionSet* options = nullptr) const;

  const AccurateQte* accurate_qte() const { return state_.accurate_qte.get(); }
  const SamplingQte* sampling_qte() const { return state_.sampling_qte.get(); }
  const QualityOracle* quality_oracle() const { return state_.quality_oracle.get(); }

  /// Trains `num_agent_seeds` agents on the scenario's training split, keeps
  /// the best by validation VQP, and caches it under `cache_key` (strategies
  /// sharing a key share the agent — e.g. "mdp/accurate" and the two-stage
  /// rewriter's exact stage). Builder-only: requires the build lock.
  Result<const QAgent*> TrainedAgent(const std::string& cache_key,
                                     const RewriterEnv& renv);

  /// Trains (and caches) Bao's plan-feature QTE on the training split.
  /// Builder-only: requires the build lock.
  Result<const BaoQte*> TrainedBaoQte();

  /// Takes ownership of an option set and returns a stable pointer (option
  /// sets must outlive the rewriters built over them). Builder-only:
  /// requires the build lock.
  const RewriteOptionSet* InternOptionSet(RewriteOptionSet options);

  /// Trains an MDP agent (accurate QTE) on an explicit workload and returns
  /// per-iteration stats — the learning-curve experiment (Fig 21). Does not
  /// touch the serving state.
  std::unique_ptr<QAgent> TrainAgentOn(const std::vector<const Query*>& workload,
                                       uint64_t seed,
                                       std::vector<Trainer::IterationStats>* history) const;

  /// Evaluates a trained agent's VQP over a workload (accurate QTE env).
  double EvaluateAgentVqp(const QAgent& agent,
                          const std::vector<const Query*>& workload) const;

 private:
  /// Serve body; `request_index` seeds the per-request session RNG (0 for
  /// single Serve calls, the batch position inside ServeBatch). Wraps
  /// ServeImpl with wall-clock timing and telemetry accounting.
  Result<RewriteResponse> ServeIndexed(const RewriteRequest& request,
                                       uint64_t request_index) const;

  Result<RewriteResponse> ServeImpl(const RewriteRequest& request,
                                    uint64_t request_index) const;

  /// Lock-only lookup of an already built strategy; nullptr when cold.
  /// Never builds — the cache probe paths must stay O(1).
  const Rewriter* FindBuiltRewriter(const std::string& name) const;

  /// num_threads with 0 resolved to hardware concurrency.
  size_t ResolvedNumThreads() const;

  /// The batch worker pool, created once on the first parallel ServeBatch
  /// (so purely sequential services never spawn threads).
  ThreadPool& Pool() const;

  Scenario* scenario_;
  ServiceConfig config_;
  /// ServiceConfig::Validate() outcome, computed once at construction;
  /// surfaced by Serve/Warmup/GetRewriter instead of silently clamping.
  Status config_status_;
  QteParams qte_params_;
  /// Base of per-request session seeds (mixed with the request index).
  uint64_t session_seed_base_;
  /// Canonicalization options derived from the config (knowledge plane).
  SignatureOptions signature_options_;
  /// Tau/floor binning of result-cache keys, derived from the config.
  FingerprintOptions fingerprint_options_;

  /// Records the labeled serve-path metrics for one response (no-op while
  /// metrics are off). Split from ServeIndexed so TryServeCached and the
  /// replay phase of ServeBatch share the exact outcome classification.
  void RecordServedMetrics(const RewriteResponse& response, double wall_ms) const;
  void RecordErrorMetrics(double wall_ms) const;

  /// Serving counters behind Stats(); internally atomic.
  mutable ServingTelemetry telemetry_;

  /// Metrics plane (ISSUE 10): constructed only when config_.metrics is on.
  /// All serve_metrics_ handles resolve at construction — the serve path is
  /// one null check plus relaxed atomics, zero registry lookups.
  std::unique_ptr<MetricsRegistry> metrics_registry_;
  ServeMetrics serve_metrics_;

  /// Guards mutation of `state_` (strategy builds, SetApproxRules). Reads
  /// of published entries take the shared side; entries are never removed,
  /// so pointers obtained under the lock stay valid without it.
  mutable std::shared_mutex state_mutex_;
  mutable ServingState state_;

  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_SERVICE_H_
