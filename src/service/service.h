// MalivaService: the middleware's serving facade (see DESIGN.md).
//
// The paper's system is one service: it accepts a visualization query and a
// time budget tau and returns a rewritten query within the budget. This layer
// owns everything behind that contract — engine wiring, QTEs, option sets,
// and trained agents — and serves typed RewriteRequest -> RewriteResponse,
// with strategies selected by name through RewriterFactory.
//
//   Scenario scenario = BuildScenario(cfg);
//   MalivaService service(&scenario, ServiceConfig().WithAgentSeeds(1));
//   RewriteRequest req;
//   req.query = scenario.evaluation[0];
//   req.strategy = "mdp/accurate";          // trained lazily on first use
//   Result<RewriteResponse> resp = service.Serve(req);
//
// ServeBatch serves a request vector with results identical to sequential
// Serve calls; strategies (and their trained agents) are cached after first
// use, sized for high-throughput evaluation.

#ifndef MALIVA_SERVICE_SERVICE_H_
#define MALIVA_SERVICE_SERVICE_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/trainer.h"
#include "service/rewriter_factory.h"
#include "util/status.h"
#include "workload/scenario.h"

namespace maliva {

class AccurateQte;
class SamplingQte;
class QualityOracle;
class BaoQte;

/// Configuration of one MalivaService instance. Builder-style setters allow
/// inline construction; every knob has a sensible default.
struct ServiceConfig {
  /// QTE cost parameters. Unset means "use the scenario's parameters"
  /// (ScenarioConfig::qte); either way the resolved values are the single
  /// source of truth for every env the service builds.
  std::optional<QteParams> qte;
  /// Deep Q-learning hyper-parameters used when a strategy trains agents.
  TrainerConfig trainer;
  /// Agents trained per strategy; the best on the validation workload is
  /// kept (hold-out validation, Section 7.1).
  size_t num_agent_seeds = 2;
  /// Bao's per-plan inference cost (virtual ms).
  double bao_per_plan_cost_ms = 10.0;
  /// Reward weight of efficiency vs quality for quality-aware agents (Eq 2).
  double beta = 0.5;
  /// Approximation rules for the "quality/*" strategies. Must be approximate
  /// rules only; empty means those strategies fail with FailedPrecondition.
  std::vector<ApproxRule> approx_rules;
  /// Strategy served when a request does not name one.
  std::string default_strategy = "mdp/accurate";

  ServiceConfig& WithQte(QteParams params) {
    qte = params;
    return *this;
  }
  ServiceConfig& WithTrainer(TrainerConfig config) {
    trainer = config;
    return *this;
  }
  ServiceConfig& WithTrainerIterations(size_t iterations) {
    trainer.max_iterations = iterations;
    return *this;
  }
  ServiceConfig& WithAgentSeeds(size_t seeds) {
    num_agent_seeds = seeds;
    return *this;
  }
  ServiceConfig& WithBeta(double value) {
    beta = value;
    return *this;
  }
  ServiceConfig& WithBaoPerPlanCostMs(double ms) {
    bao_per_plan_cost_ms = ms;
    return *this;
  }
  ServiceConfig& WithApproxRules(std::vector<ApproxRule> rules) {
    approx_rules = std::move(rules);
    return *this;
  }
  ServiceConfig& WithDefaultStrategy(std::string name) {
    default_strategy = std::move(name);
    return *this;
  }
};

/// One rewriting request.
struct RewriteRequest {
  const Query* query = nullptr;
  /// Strategy name (RewriterFactory key); empty = ServiceConfig default.
  std::string strategy;
  /// Per-request time budget; unset = the strategy's configured tau.
  std::optional<double> tau_ms;
  /// Minimum acceptable visualization quality F(r(Q), r(RQ)). When the
  /// strategy's choice falls below the floor, the service re-serves the
  /// request with the exact "baseline" strategy (quality 1) and flags it;
  /// the first attempt's planning time stays on the outcome's bill.
  std::optional<double> quality_floor;
};

/// One rewriting response.
struct RewriteResponse {
  /// Strategy that served the request (factory key, not display name); this
  /// is "baseline" when a quality floor forced the exact fallback.
  std::string strategy;
  RewriteOutcome outcome;
  /// The chosen rewrite option, owned by the service; nullptr when the plan
  /// was delegated entirely to the backend optimizer.
  const RewriteOption* option = nullptr;
  /// SQL-ish rendering of the rewritten query (hints included).
  std::string rewritten_sql;
  /// True when quality_floor forced the exact-baseline fallback.
  bool exact_fallback = false;
};

/// Owns the serving state for one scenario: QTEs, the quality oracle, interned
/// option sets, trained agents, and lazily built strategies. `scenario` is
/// borrowed and must outlive the service.
class MalivaService {
 public:
  MalivaService(Scenario* scenario, ServiceConfig config);
  ~MalivaService();

  MalivaService(const MalivaService&) = delete;
  MalivaService& operator=(const MalivaService&) = delete;

  /// Serves one request. Errors (unknown strategy, invalid budget, missing
  /// approximation rules, ...) come back as Status, never as a crash.
  Result<RewriteResponse> Serve(const RewriteRequest& request);

  /// Serves a batch. Strategies are built (and trained) once at their first
  /// use and cached, so results are identical to sequential Serve calls.
  std::vector<Result<RewriteResponse>> ServeBatch(
      std::span<const RewriteRequest> requests);

  /// Builds (training agents if needed) and caches strategy `name`.
  Result<const Rewriter*> GetRewriter(const std::string& name);

  /// Strategy names registered in the global factory. A given instance may
  /// still fail to build some of them (e.g. "quality/*" without approx_rules
  /// configured) — Serve reports that per request as a Status.
  std::vector<std::string> RegisteredStrategies() const;

  Scenario* scenario() { return scenario_; }
  const ServiceConfig& config() const { return config_; }

  /// Resolved QTE cost parameters (config override or scenario defaults,
  /// jitter seed mixed from the scenario seed).
  const QteParams& qte_params() const { return qte_params_; }

  /// Replaces the approximation rules used by not-yet-built "quality/*"
  /// strategies (already built strategies are unaffected).
  void SetApproxRules(std::vector<ApproxRule> rules) {
    config_.approx_rules = std::move(rules);
  }

  // --- hooks for strategy builders (RewriterFactory) and harnesses ---------

  /// Env wiring for core-level components: engine, oracle, option set,
  /// resolved QTE params, tau, and the quality oracle when beta < 1.
  RewriterEnv MakeEnv(QueryTimeEstimator* qte, double beta = 1.0,
                      const RewriteOptionSet* options = nullptr) const;

  AccurateQte* accurate_qte() { return accurate_qte_.get(); }
  SamplingQte* sampling_qte() { return sampling_qte_.get(); }
  QualityOracle* quality_oracle() { return quality_oracle_.get(); }

  /// Trains `num_agent_seeds` agents on the scenario's training split, keeps
  /// the best by validation VQP, and caches it under `cache_key` (strategies
  /// sharing a key share the agent — e.g. "mdp/accurate" and the two-stage
  /// rewriter's exact stage).
  Result<const QAgent*> TrainedAgent(const std::string& cache_key,
                                     const RewriterEnv& renv);

  /// Trains (and caches) Bao's plan-feature QTE on the training split.
  Result<const BaoQte*> TrainedBaoQte();

  /// Takes ownership of an option set and returns a stable pointer (option
  /// sets must outlive the rewriters built over them).
  const RewriteOptionSet* InternOptionSet(RewriteOptionSet options);

  /// Trains an MDP agent (accurate QTE) on an explicit workload and returns
  /// per-iteration stats — the learning-curve experiment (Fig 21).
  std::unique_ptr<QAgent> TrainAgentOn(const std::vector<const Query*>& workload,
                                       uint64_t seed,
                                       std::vector<Trainer::IterationStats>* history);

  /// Evaluates a trained agent's VQP over a workload (accurate QTE env).
  double EvaluateAgentVqp(const QAgent& agent,
                          const std::vector<const Query*>& workload) const;

 private:
  Scenario* scenario_;
  ServiceConfig config_;
  QteParams qte_params_;

  std::unique_ptr<AccurateQte> accurate_qte_;
  std::unique_ptr<SamplingQte> sampling_qte_;
  std::unique_ptr<QualityOracle> quality_oracle_;
  std::unique_ptr<BaoQte> bao_qte_;

  std::unordered_map<std::string, std::unique_ptr<QAgent>> agents_;
  std::vector<std::unique_ptr<RewriteOptionSet>> interned_options_;
  std::unordered_map<std::string, std::unique_ptr<Rewriter>> rewriters_;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_SERVICE_H_
