#include "service/model_registry.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace maliva {

PublishedModel ModelRegistry::Publish(const std::string& key,
                                      std::unique_ptr<const QAgent> agent,
                                      AgentSnapshotMeta meta,
                                      uint64_t expected_parent_version) {
  // Cut the snapshot outside the lock: copying the (tiny) networks is the
  // only non-O(1) work, and the agent is exclusively ours until published.
  PublishedModel model;
  model.agent = std::shared_ptr<const QAgent>(std::move(agent));
  Mlp online = model.agent->online_net();
  Mlp target = model.agent->target_net();

  std::unique_lock<std::shared_mutex> lock(mutex_);
  Chain& chain = chains_[key];
  if (expected_parent_version != 0) {
    uint64_t current = chain.versions.empty()
                           ? 0
                           : chain.versions.back().snapshot->meta().version;
    if (current != expected_parent_version) return PublishedModel{};
  }
  meta.version = chain.next_version++;
  model.snapshot =
      std::make_shared<const AgentSnapshot>(std::move(online), std::move(target), meta);
  chain.versions.push_back(model);
  // Bound the chain: keep version 1 (the rollback floor) and the newest
  // versions; prune the oldest middle. Readers holding a pruned version
  // keep it alive through their own shared_ptr.
  while (chain.versions.size() > max_retained_per_key_) {
    chain.versions.erase(chain.versions.begin() + 1);
  }
  return model;
}

PublishedModel ModelRegistry::Current(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.versions.empty()) return PublishedModel{};
  return it->second.versions.back();
}

bool ModelRegistry::Rollback(const std::string& key) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.versions.size() <= 1) return false;
  it->second.versions.pop_back();
  return true;
}

uint64_t ModelRegistry::CurrentVersion(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.versions.empty()) return 0;
  return it->second.versions.back().snapshot->meta().version;
}

size_t ModelRegistry::ChainLength(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = chains_.find(key);
  return it == chains_.end() ? 0 : it->second.versions.size();
}

uint64_t ModelRegistry::MaxVersion() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  uint64_t max_version = 0;
  for (const auto& [key, chain] : chains_) {
    if (!chain.versions.empty()) {
      max_version =
          std::max(max_version, chain.versions.back().snapshot->meta().version);
    }
  }
  return max_version;
}

std::vector<std::string> ModelRegistry::Keys() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(chains_.size());
  for (const auto& [key, chain] : chains_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace maliva
