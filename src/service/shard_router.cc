#include "service/shard_router.h"

#include <utility>

namespace maliva {

const char* ShardStateName(ShardState state) {
  switch (state) {
    case ShardState::kRegistered: return "registered";
    case ShardState::kWarming: return "warming";
    case ShardState::kReady: return "ready";
    case ShardState::kDraining: return "draining";
  }
  return "unknown";
}

std::string ShardRouter::IdsListLocked() const {
  if (shards_.empty()) return "(none registered)";
  std::string list;
  for (const auto& [id, shard] : shards_) {
    if (!list.empty()) list += ", ";
    list += id;
  }
  return list;
}

Status ShardRouter::CheckAvailableLocked(const std::string& id) const {
  if (id.empty()) {
    return Status::InvalidArgument("scenario id must not be empty");
  }
  if (shards_.count(id) != 0) {
    return Status::InvalidArgument("scenario \"" + id +
                                   "\" is already registered (registered scenarios: " +
                                   IdsListLocked() + ")");
  }
  return Status::OK();
}

Status ShardRouter::CheckAvailable(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return CheckAvailableLocked(id);
}

Status ShardRouter::Insert(std::shared_ptr<Shard> shard) {
  if (shard == nullptr) {
    return Status::InvalidArgument("shard must not be null");
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  MALIVA_RETURN_NOT_OK(CheckAvailableLocked(shard->id));
  shards_.emplace(shard->id, std::move(shard));
  return Status::OK();
}

Result<std::shared_ptr<Shard>> ShardRouter::Resolve(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = shards_.find(id);
  if (it == shards_.end()) {
    return Status::NotFound("unknown scenario \"" + id +
                            "\" (registered scenarios: " + IdsListLocked() + ")");
  }
  return it->second;
}

Result<std::shared_ptr<Shard>> ShardRouter::Remove(const std::string& id,
                                                   const Shard* expected) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = shards_.find(id);
  if (it == shards_.end() ||
      (expected != nullptr && it->second.get() != expected)) {
    // Either never registered, or the shard the caller validated was
    // already removed (and possibly replaced by a fresh registration) —
    // from the caller's perspective its shard is gone.
    return Status::NotFound("unknown scenario \"" + id +
                            "\" (registered scenarios: " + IdsListLocked() + ")");
  }
  std::shared_ptr<Shard> shard = std::move(it->second);
  shards_.erase(it);
  return shard;
}

std::vector<std::shared_ptr<Shard>> ShardRouter::List() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::shared_ptr<Shard>> shards;
  shards.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) shards.push_back(shard);
  return shards;  // std::map iteration order is already sorted by id
}

std::vector<std::string> ShardRouter::Ids() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(shards_.size());
  for (const auto& [id, shard] : shards_) ids.push_back(id);
  return ids;
}

size_t ShardRouter::Size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return shards_.size();
}

std::shared_ptr<Shard> ShardRouter::Sole() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  if (shards_.size() != 1) return nullptr;
  return shards_.begin()->second;
}

std::string ShardRouter::IdsList() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return IdsListLocked();
}

}  // namespace maliva
