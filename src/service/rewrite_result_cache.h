// Rewrite-result cache: the decision tier of the serving ladder.
//
// The knowledge plane (qte/shared_selectivity_store.h) amortizes what a
// rewrite search *reads* — per-predicate selectivities. This cache amortizes
// the search itself: the fleet's answer to a decision context it has already
// solved — same canonical query, strategy, tau bin, quality-floor bin, agent
// snapshot, and catalog epoch — is replayed in O(1) instead of re-running
// the MDP/QTE episode. It is the classic DBMS plan-cache tier, invalidated
// by key mismatch rather than sweeps.
//
// Key composition. The map is keyed by the 64-bit RequestFingerprint
// (query/signature.h): canonical query signature × strategy × binned
// effective tau × binned quality floor. The two *volatile* context
// components — the agent snapshot version that would serve the request and
// the engine catalog version — are stored inside the entry and checked on
// every probe: a fingerprint match whose epoch or snapshot disagrees is a
// stale decline (counted, never trusted, replaced in place by the next
// publish). Bumping either version therefore invalidates the whole cache in
// O(1) without touching any shard.
//
// Single-flight coalescing. When N concurrent requests miss on the same
// key, one (the leader) computes while the rest (followers) block on the
// leader's in-flight slot and replay its published result — N searches
// become one. A leader that fails (error path) aborts its flight and wakes
// followers empty-handed; they fall back to computing solo, so coalescing
// can delay but never lose a request. Flights are joined only under the
// exact (key, epoch, snapshot) context: a request whose context differs
// from an in-flight leader's computes solo rather than inheriting a stale
// answer.
//
// Concurrency: sharded like the selectivity store — each shard owns an
// unordered_map + its in-flight slots behind one std::shared_mutex, so
// probes on the hot path lock one shard only. Eviction is per-shard
// CLOCK/second-chance: every hit sets the entry's reference bit; the clock
// hand sweeps at insert time, giving recently replayed decisions a second
// lap before they go.
//
// Determinism: an entry's payload is the byte-exact decision of the miss
// that produced it (strategy, outcome, option pointer, stats template); a
// hit replays those bytes and only re-renders the SQL against the hitting
// request's own query text. Identical computations publish identical
// payloads, so which of several racing publishers lands is unobservable.

#ifndef MALIVA_SERVICE_REWRITE_RESULT_CACHE_H_
#define MALIVA_SERVICE_REWRITE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rewriter.h"
#include "service/serving_telemetry.h"

namespace maliva {

/// One cached rewrite decision: everything a response carries except the
/// per-request SQL rendering and the run-varying wall clock. `option` points
/// into the service's interned option sets (stable for the service's
/// lifetime), so the entry stays valid as long as its owning service.
struct CachedRewrite {
  std::string strategy;
  RewriteOutcome outcome;
  const RewriteOption* option = nullptr;
  bool exact_fallback = false;
  /// Stats template of the miss that computed this entry. Hits replay it
  /// verbatim (the selectivity bill of the original search), then stamp
  /// their own hit/coalesced flags and wall clock on top.
  RequestStats stats;
};

/// Sharded, epoch/snapshot-validated map from request fingerprint to cached
/// rewrite decision, with single-flight coalescing of concurrent misses.
class RewriteResultCache {
 public:
  struct Config {
    /// Total entry capacity across shards (CLOCK eviction per shard).
    size_t capacity = 4096;
    /// Independently locked shards; capped at `capacity` so every shard
    /// holds >= 1 entry.
    size_t shards = 8;
  };

  /// What a Begin() probe resolved to. kHit carries the cached value;
  /// kLeader owns the in-flight slot and must Publish or Abort exactly
  /// once; kFollower must WaitForLeader; kSolo computes without a flight
  /// (an in-flight leader exists under a *different* epoch/snapshot, or a
  /// leader aborted) and publishes directly.
  enum class Role { kHit, kLeader, kFollower, kSolo };

  struct Flight;  // internal; exposed only through shared_ptr in Ticket

  /// Begin()'s result. Move-only state is deliberately avoided: tickets are
  /// small and copies share the flight slot.
  struct Ticket {
    Role role = Role::kSolo;
    /// Set iff role == kHit.
    std::optional<CachedRewrite> value;
    /// The in-flight slot (role kLeader/kFollower), null otherwise.
    std::shared_ptr<Flight> flight;
  };

  explicit RewriteResultCache(const Config& config);
  ~RewriteResultCache();

  RewriteResultCache(const RewriteResultCache&) = delete;
  RewriteResultCache& operator=(const RewriteResultCache&) = delete;

  /// Probes `key` under the (epoch, snapshot) context and enrolls in the
  /// single-flight protocol on a miss: the first misser becomes the leader,
  /// concurrent missers under the same context become followers, and a
  /// context mismatch with an existing flight yields kSolo. A resident
  /// entry under a different context counts one stale decline.
  Ticket Begin(uint64_t key, uint64_t epoch, uint64_t snapshot);

  /// Probe-only lookup for the admission plane: returns the cached value on
  /// a context-exact hit (counted, reference bit set) and nullopt otherwise.
  /// Never counts a miss and never enrolls a flight — the request proceeds
  /// to the normal serve path, whose own Begin() does the accounting.
  std::optional<CachedRewrite> Probe(uint64_t key, uint64_t epoch,
                                     uint64_t snapshot);

  /// Leader/solo completion: inserts `value` for `key` under the context
  /// and — when `ticket` holds a flight — resolves it, waking followers
  /// with the value. A resident entry under the same context is left in
  /// place (first writer wins, payloads are identical by construction);
  /// a stale resident is replaced.
  void Publish(const Ticket& ticket, uint64_t key, uint64_t epoch,
               uint64_t snapshot, CachedRewrite value);

  /// Leader bail-out (error path): resolves the flight empty, waking
  /// followers to compute solo. No entry is inserted. No-op without a
  /// flight.
  void Abort(const Ticket& ticket, uint64_t key);

  /// Follower wait: blocks until the ticket's leader publishes or aborts.
  /// Returns the leader's value (counted as coalesced) or nullopt on abort.
  std::optional<CachedRewrite> WaitForLeader(const Ticket& ticket);

  /// Batch-dedup accounting: `n` requests replayed from one in-batch
  /// computation without enrolling flights (MalivaService::ServeBatch).
  void NoteCoalesced(uint64_t n) {
    coalesced_.fetch_add(n, std::memory_order_relaxed);
  }

  struct Stats {
    uint64_t hits = 0;            ///< context-exact probe hits
    uint64_t misses = 0;          ///< probes that led to a computation
    uint64_t coalesced = 0;       ///< requests served by another's search
    uint64_t evictions = 0;       ///< entries evicted by the CLOCK hand
    uint64_t stale_declines = 0;  ///< fingerprint matches refused on context
    size_t size = 0;              ///< resident entries at snapshot time
  };
  Stats Snapshot() const;

  /// Resident entries (sum over shards; exact when quiescent).
  size_t Size() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t epoch = 0;
    uint64_t snapshot = 0;
    CachedRewrite value;
    /// CLOCK reference bit: set on every hit, cleared by the sweeping hand.
    bool referenced = false;
  };

  /// One lock domain: resident entries, their CLOCK ring, and the in-flight
  /// single-flight slots.
  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<uint64_t, Entry> entries;
    /// Keys in insertion order; the hand sweeps this ring at eviction time.
    std::vector<uint64_t> ring;
    size_t hand = 0;
    std::unordered_map<uint64_t, std::shared_ptr<Flight>> flights;
  };

  Shard& ShardFor(uint64_t key) const;
  /// Inserts (or refreshes) an entry, evicting via CLOCK when the shard is
  /// full. Caller holds the shard's exclusive lock.
  void InsertLocked(Shard& shard, uint64_t key, uint64_t epoch,
                    uint64_t snapshot, CachedRewrite value);

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> stale_declines_{0};
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_REWRITE_RESULT_CACHE_H_
