#include "service/admission_controller.h"

#include <algorithm>
#include <cmath>

#include "service/rewriter_factory.h"
#include "util/string_util.h"

namespace maliva {

namespace {

Status BadKnob(const std::string& knob, const std::string& detail) {
  return Status::InvalidArgument("admission." + knob + " " + detail);
}

}  // namespace

Status AdmissionConfig::Validate() const {
  // Every message names the offending knob: a fleet operator tuning overload
  // behavior should never have to bisect the config to find the bad value.
  if (!(slack_factor > 0.0) || !std::isfinite(slack_factor)) {
    return BadKnob("slack_factor", "must be finite and positive (deadline = "
                   "arrival + tau * slack_factor)");
  }
  if (!(initial_serve_estimate_ms > 0.0) || !std::isfinite(initial_serve_estimate_ms)) {
    return BadKnob("initial_serve_estimate_ms", "must be finite and positive");
  }
  if (!(serve_estimate_alpha > 0.0 && serve_estimate_alpha <= 1.0)) {
    return BadKnob("serve_estimate_alpha", "must be within (0, 1]");
  }
  if (!(default_weight > 0.0) || !std::isfinite(default_weight)) {
    return BadKnob("default_weight", "must be finite and positive");
  }
  for (const ScenarioShare& share : shares) {
    if (!(share.weight > 0.0) || !std::isfinite(share.weight)) {
      return BadKnob("shares", "weight for scenario \"" + share.scenario +
                     "\" must be finite and positive (got a non-positive or "
                     "non-finite scenario weight)");
    }
  }
  if (!degrade_strategy.empty() && !RewriterFactory::Global().Has(degrade_strategy)) {
    return BadKnob("degrade_strategy",
                   "\"" + degrade_strategy + "\" is not a registered strategy "
                   "(known: " + Join(RewriterFactory::Global().KnownStrategies(), ", ") +
                   "; empty disables degradation)");
  }
  return Status::OK();
}

const char* AdmissionDecisionName(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit: return "admit";
    case AdmissionDecision::kDegrade: return "degrade";
    case AdmissionDecision::kShedDeadline: return "shed-deadline";
    case AdmissionDecision::kShedOverload: return "shed-overload";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config)), serve_estimate_ms_(config_.initial_serve_estimate_ms) {}

double AdmissionController::PredictedCompletionMs(size_t queue_depth,
                                                  size_t workers) const {
  double estimate = EstimatedServeMs();
  double lanes = static_cast<double>(std::max<size_t>(workers, 1));
  // queue_depth jobs drain ahead of this one across `lanes` workers, then
  // the request itself runs — the M/M/c-flavored back-of-envelope a load
  // shedder needs, not a queueing-theory exact answer.
  return (static_cast<double>(queue_depth) / lanes) * estimate + estimate;
}

AdmissionDecision AdmissionController::Decide(double now_ms, double deadline_ms,
                                              size_t queue_depth,
                                              size_t workers) const {
  if (queue_depth >= config_.max_queue) return AdmissionDecision::kShedOverload;
  if (now_ms >= deadline_ms) return AdmissionDecision::kShedDeadline;
  if (now_ms + PredictedCompletionMs(queue_depth, workers) > deadline_ms) {
    // The full strategy is predicted to miss; a configured cheap strategy
    // may still make it (degraded work re-enters the same EDF queue).
    return config_.degrade_strategy.empty() ? AdmissionDecision::kShedDeadline
                                            : AdmissionDecision::kDegrade;
  }
  return AdmissionDecision::kAdmit;
}

Status AdmissionController::ShedStatus(AdmissionDecision decision,
                                       const std::string& scenario, double now_ms,
                                       double deadline_ms, size_t queue_depth) {
  std::string who = scenario.empty() ? "request" : "request for \"" + scenario + "\"";
  if (decision == AdmissionDecision::kShedOverload) {
    return Status::ResourceExhausted(
        who + " shed: scheduler queue at capacity (depth " +
        std::to_string(queue_depth) + ")");
  }
  return Status::DeadlineExceeded(
      who + " shed: cannot meet deadline (now " + FormatDouble(now_ms, 2) +
      " ms, deadline " + FormatDouble(deadline_ms, 2) + " ms, queue depth " +
      std::to_string(queue_depth) + ")");
}

void AdmissionController::RecordServeMs(double wall_ms) {
  if (!(wall_ms >= 0.0) || !std::isfinite(wall_ms)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  serve_estimate_ms_ += config_.serve_estimate_alpha * (wall_ms - serve_estimate_ms_);
}

double AdmissionController::EstimatedServeMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return serve_estimate_ms_;
}

void AdmissionController::RecordDecision(const std::string& scenario,
                                         AdmissionDecision decision) {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionCounters* rows[] = {&totals_, &per_scenario_[scenario]};
  for (AdmissionCounters* row : rows) {
    switch (decision) {
      case AdmissionDecision::kAdmit: ++row->admitted; break;
      case AdmissionDecision::kDegrade: ++row->degraded; break;
      case AdmissionDecision::kShedDeadline: ++row->shed_deadline; break;
      case AdmissionDecision::kShedOverload: ++row->shed_overload; break;
    }
  }
}

void AdmissionController::RecordQueueWait(const std::string& scenario,
                                          double wait_ms) {
  if (!(wait_ms >= 0.0) || !std::isfinite(wait_ms)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  totals_.queue_wait_ms_total += wait_ms;
  per_scenario_[scenario].queue_wait_ms_total += wait_ms;
}

double AdmissionController::WeightFor(const std::string& scenario) const {
  for (const ScenarioShare& share : config_.shares) {
    if (share.scenario == scenario) return share.weight;
  }
  return config_.default_weight;
}

int AdmissionController::TierFor(const std::string& scenario) const {
  for (const ScenarioShare& share : config_.shares) {
    if (share.scenario == scenario) return share.tier;
  }
  return 0;
}

AdmissionCounters AdmissionController::TotalCounters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

AdmissionCounters AdmissionController::CountersFor(const std::string& scenario) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = per_scenario_.find(scenario);
  return it == per_scenario_.end() ? AdmissionCounters{} : it->second;
}

}  // namespace maliva
