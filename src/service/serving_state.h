// The shared-immutable half of the serving stack.
//
// MalivaService splits its world in two (see DESIGN.md, "Concurrency
// model"): ServingState is the build/train-phase product — everything that
// is expensive to construct and read-only at serve time — while each request
// carries its own RewriteSession (core/rewrite_session.h) for mutable state.
//
// Population protocol: ServingState is only mutated while holding the
// owning service's state mutex exclusively (MalivaService::Warmup, or the
// lazy first-use path of GetRewriter). Entries are never removed or replaced
// once published — node-based containers and unique_ptr indirection keep
// every pointer handed out to a reader stable for the service's lifetime —
// so after warm-up the whole structure is frozen and serving threads read it
// without locks.

#ifndef MALIVA_SERVICE_SERVING_STATE_H_
#define MALIVA_SERVICE_SERVING_STATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/bao.h"
#include "core/agent.h"
#include "core/rewriter.h"
#include "qte/accurate_qte.h"
#include "qte/sampling_qte.h"
#include "qte/selectivity_tier.h"
#include "qte/shared_selectivity_store.h"
#include "quality/quality.h"
#include "service/continual_trainer.h"
#include "service/model_registry.h"
#include "service/rewrite_result_cache.h"

namespace maliva {

/// Immutable-after-warm-up serving state: QTEs, oracles, trained agents,
/// interned option sets, and built strategies for one scenario.
struct ServingState {
  /// Stateless estimators (const Estimate; per-request state lives in the
  /// session's SelectivityCache). Constructed with the service.
  std::unique_ptr<AccurateQte> accurate_qte;
  std::unique_ptr<SamplingQte> sampling_qte;

  /// Memoizes quality evaluations behind its own lock; safe to share.
  std::unique_ptr<QualityOracle> quality_oracle;

  /// Bao's plan-feature QTE, trained once on first use of "bao".
  std::unique_ptr<BaoQte> bao_qte;

  /// Trained agents by role key ("agent/exact-accurate", ...). Strategies
  /// sharing a key share the agent.
  std::unordered_map<std::string, std::unique_ptr<QAgent>> agents;

  /// Option sets owned on behalf of strategies built over them (rewriters
  /// keep raw pointers into these).
  std::vector<std::unique_ptr<RewriteOptionSet>> interned_options;

  /// Built strategies by factory key. Never erased; pointers are stable.
  std::unordered_map<std::string, std::unique_ptr<Rewriter>> rewriters;

  /// Cross-request selectivity knowledge (null while
  /// ServiceConfig::cross_request_cache is off). The one exception to the
  /// frozen-after-warm-up rule: serving threads publish into it, but it is
  /// internally synchronized (sharded shared_mutex), so the exception does
  /// not leak into the locking protocol above.
  std::unique_ptr<SharedSelectivityStore> shared_store;

  /// Histogram selectivity tier, rung 2 of the ladder (null while
  /// ServiceConfig::histogram_selectivity is off). Internally synchronized
  /// like the shared store: serving threads read estimates and feed probe
  /// errors into its per-column trust windows concurrently.
  std::unique_ptr<SelectivityTier> selectivity_tier;

  /// Rewrite-result cache, the decision tier above the selectivity ladder
  /// (null while ServiceConfig::result_cache is off). Internally
  /// synchronized like the shared store: serving threads probe, publish,
  /// and coalesce concurrently. Entries hold RewriteOption pointers into
  /// `interned_options` / scenario option sets, which are never removed —
  /// so cached decisions stay valid for the service's lifetime.
  std::unique_ptr<RewriteResultCache> result_cache;

  /// Online learning plane (both null while ServiceConfig::online_learning
  /// is off). Like the shared store, these are internally synchronized
  /// exceptions to the frozen-after-warm-up rule: serving threads read
  /// snapshots from the registry and feed transitions to the trainer, while
  /// the trainer's background pool publishes new snapshot versions. The
  /// trainer references the registry, so it is declared after it (destroyed
  /// first, joining in-flight fine-tune rounds).
  std::unique_ptr<ModelRegistry> model_registry;
  std::unique_ptr<ContinualTrainer> continual_trainer;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_SERVING_STATE_H_
