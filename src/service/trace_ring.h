// Trace-event ring + SLO watchdog: per-request structured traces and
// windowed deadline-hit-rate burn evaluation (ISSUE 10).
//
// TraceRing is an off-default, bounded, lock-striped ring of TraceEvents —
// one per completed fleet request, carrying the request fingerprint, the
// scenario, the admission verdict, the cache outcome, the selectivity-tier
// rung split, the agent snapshot version, and the queue-wait/serve wall
// times. It answers "what sequence of verdicts did request X traverse"
// post hoc: ExportJsonLines() renders the retained events (newest
// `capacity`, in append order) as JSON Lines for offline analysis.
//
// Appends stripe by sequence number, so concurrent completions contend on
// capacity/stripes-sized locks, not one. The ring stores measurement only:
// nothing here feeds back into any decision, and with capacity 0 (the
// default) the fleet never constructs a ring — the serve paths hold a single
// null check (the QueryProfiler off-mode bar).
//
// SloWatchdog turns the MetricsFlusher's windowed views into per-scenario
// deadline-hit-rate verdicts: over the newest `window_count` windows, the
// fraction of admission-gate verdicts that were actually served (admitted +
// degraded, vs shed) must stay at or above `target_hit_rate` once at least
// `min_requests` verdicts accumulated. Breaches surface in
// FleetStats::slo — flags for operators, never inputs to the gate.

#ifndef MALIVA_SERVICE_TRACE_RING_H_
#define MALIVA_SERVICE_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace maliva {

/// One completed request, as the fleet saw it.
struct TraceEvent {
  uint64_t seq = 0;             ///< fleet-wide append order (stamped by Append)
  uint64_t fingerprint = 0;     ///< decision-context fingerprint (0 = unresolvable)
  std::string scenario;         ///< routing key the request served under
  std::string verdict;          ///< admitted|degraded|shed_deadline|shed_overload|error|fifo
  std::string cache;            ///< hit|coalesced|miss|off
  uint64_t tier_hits[3] = {0, 0, 0};  ///< ladder rungs: shared/histogram/probe
  uint64_t snapshot_version = 0;      ///< agent snapshot that served it (0 = frozen)
  double queue_wait_ms = 0.0;   ///< scheduler wait (0 off the admission path)
  double serve_ms = 0.0;        ///< host wall serve latency

  /// One JSON object (no trailing newline) — one JSONL line.
  std::string ToJson() const;
};

/// Bounded lock-striped ring of the newest `capacity` TraceEvents.
class TraceRing {
 public:
  /// Capacity rounds down to a multiple of the stripe count (at least one
  /// event per stripe); `capacity()` reports the effective bound.
  explicit TraceRing(size_t capacity, size_t stripes = 8);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Stamps `event.seq` and appends, evicting the stripe's oldest event when
  /// full. Wait-free sequence draw; per-stripe mutex for the slot write.
  void Append(TraceEvent event);

  /// The retained events in append (seq) order. Thread-safe copy; each
  /// stripe is internally consistent, the cut across stripes is
  /// consistent-enough (the monitoring contract).
  std::vector<TraceEvent> SnapshotEvents() const;

  /// JSON Lines rendering of SnapshotEvents() — one event per line,
  /// trailing newline included when any event exists.
  std::string ExportJsonLines() const;

  /// Events ever appended (retained or evicted).
  uint64_t total_appended() const { return seq_.load(std::memory_order_relaxed); }

  size_t capacity() const { return per_stripe_ * stripes_.size(); }
  size_t stripes() const { return stripes_.size(); }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;  ///< circular once full
    size_t next = 0;                 ///< overwrite cursor
  };

  std::atomic<uint64_t> seq_{0};
  size_t per_stripe_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// SLO watchdog configuration (FleetConfig::slo_* knobs).
struct SloConfig {
  bool enabled = false;
  /// Minimum acceptable served fraction of gate verdicts per scenario.
  double target_hit_rate = 0.95;
  /// Newest flusher windows the burn is evaluated over.
  size_t window_count = 4;
  /// Verdicts a scenario must accumulate in those windows before it can
  /// breach (cold scenarios never flag on one shed request).
  uint64_t min_requests = 32;
};

/// One scenario's verdict from SloWatchdog::Evaluate.
struct SloStatus {
  std::string scenario;
  uint64_t served = 0;    ///< admitted + degraded in the evaluated windows
  uint64_t total = 0;     ///< all gate verdicts in the evaluated windows
  double hit_rate = 1.0;  ///< served / total (1 when total == 0)
  bool breached = false;  ///< total >= min_requests and hit_rate < target
};

/// Stateless evaluator over the flusher's windowed views. The admission
/// counters it reads (maliva_admission_total{scenario=...,verdict=...}) are
/// recorded by the fleet's gate path into each shard's registry.
class SloWatchdog {
 public:
  explicit SloWatchdog(SloConfig config) : config_(config) {}

  /// Per-scenario statuses over the newest config.window_count entries of
  /// `windows`, ordered by scenario id. Scenarios with zero verdicts in the
  /// evaluated span report hit_rate 1 and never breach.
  std::vector<SloStatus> Evaluate(
      const std::vector<MetricsFlusher::Window>& windows) const;

  const SloConfig& config() const { return config_; }

 private:
  SloConfig config_;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_TRACE_RING_H_
