// Versioned model registry: per-agent-key chains of published snapshots.
//
// The online learning plane's source of truth for "which weights serve right
// now". Each agent cache key ("agent/exact-accurate", ...) owns a chain of
// AgentSnapshot versions; Publish appends a new version, Current returns the
// newest, and Rollback drops the newest (operator escape hatch — the offline
// warm-up snapshot, version 1, is never rolled back away).
//
// Concurrency follows the serving core's shared_mutex discipline: Publish and
// Rollback take the exclusive side for a pointer push/pop; Current takes the
// shared side and copies two shared_ptrs out. Serving threads therefore never
// block on training — fine-tuning happens entirely outside the lock, and the
// publish critical section is O(1). Requests holding a superseded (or rolled
// back) model keep it alive through their shared_ptr until they finish.

#ifndef MALIVA_SERVICE_MODEL_REGISTRY_H_
#define MALIVA_SERVICE_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/agent.h"
#include "ml/agent_snapshot.h"

namespace maliva {

/// One published model version: the immutable snapshot record (weights +
/// lineage) plus its serve-ready QAgent materialization. Both pointers are
/// set, or both null (unknown key).
struct PublishedModel {
  std::shared_ptr<const AgentSnapshot> snapshot;
  std::shared_ptr<const QAgent> agent;

  explicit operator bool() const { return snapshot != nullptr; }
};

/// Thread-safe per-key snapshot chains.
class ModelRegistry {
 public:
  /// `max_retained_per_key` bounds each chain: version 1 (the rollback
  /// floor) plus the most recent versions are kept, older middles are
  /// pruned on publish — a long-running service must not accumulate every
  /// superseded model ever published. In-flight requests holding a pruned
  /// version keep it alive through their own shared_ptr. Minimum 2; the
  /// service layer exposes this as ServiceConfig::online_max_snapshots
  /// (Validate()-guarded there, clamped here for standalone use).
  explicit ModelRegistry(size_t max_retained_per_key = 8)
      : max_retained_per_key_(max_retained_per_key < 2 ? 2 : max_retained_per_key) {}
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publishes `agent` as the new current version of `key`. Assigns
  /// `meta.version` (monotonic per key from 1; rollbacks never reuse a
  /// version number) and cuts the AgentSnapshot from the agent's networks.
  /// Returns the published model.
  ///
  /// When `expected_parent_version` is nonzero, the publish is conditional:
  /// it succeeds only if the key's current version still equals it, and
  /// returns an empty PublishedModel otherwise. Fine-tune rounds pass the
  /// incumbent they cloned, so a concurrent operator Rollback cannot be
  /// silently undone by publishing a descendant of the rolled-back model.
  PublishedModel Publish(const std::string& key, std::unique_ptr<const QAgent> agent,
                         AgentSnapshotMeta meta,
                         uint64_t expected_parent_version = 0);

  /// The newest published model for `key`, or an empty PublishedModel when
  /// the key has never been published.
  PublishedModel Current(const std::string& key) const;

  /// Drops the newest snapshot of `key`, restoring its predecessor (the
  /// newest still-retained older version). Returns false when the chain
  /// holds at most one version — the offline warm-up snapshot always
  /// remains serveable.
  bool Rollback(const std::string& key);

  /// Version of the newest snapshot for `key` (0 when unknown).
  uint64_t CurrentVersion(const std::string& key) const;

  /// Number of versions currently resident in `key`'s chain.
  size_t ChainLength(const std::string& key) const;

  /// Highest current version across every key (0 when empty) — the Stats()
  /// "snapshot version" headline.
  uint64_t MaxVersion() const;

  std::vector<std::string> Keys() const;

  /// Chain bound in effect (post-clamp).
  size_t max_retained_per_key() const { return max_retained_per_key_; }

 private:
  struct Chain {
    std::vector<PublishedModel> versions;
    uint64_t next_version = 1;
  };

  size_t max_retained_per_key_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, Chain> chains_;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_MODEL_REGISTRY_H_
