// Shard routing for the multi-scenario fleet (DESIGN.md "Multi-scenario
// shard plane").
//
// One MalivaService owns one scenario. A fleet-shaped server hosts many
// scenarios, each wrapped in a Shard: the full per-scenario serving stack
// (ServingState, shared selectivity store, model registry / continual
// trainer, telemetry) plus a lifecycle state machine. The ShardRouter is the
// registry that resolves a request's routing key to its shard behind a
// shared_mutex — resolution is a shared-lock map lookup returning a
// shared_ptr, so registering, draining, or evicting one scenario never
// blocks serves on the others, and in-flight requests keep an evicted
// shard's stack alive until they finish.
//
// Lifecycle:
//
//   RegisterScenario ─► kRegistered ─► kWarming ─► kReady ─► kDraining ─► (evicted)
//                            │     (background      ▲            │
//                            └── warmup_threads=0 ──┘      EvictScenario
//
// Serves are accepted in every state but kDraining (a kRegistered/kWarming
// shard builds strategies lazily, exactly like a standalone MalivaService).
// Drain is a one-way gate: new serves are refused, in-flight ones finish.

#ifndef MALIVA_SERVICE_SHARD_ROUTER_H_
#define MALIVA_SERVICE_SHARD_ROUTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "service/service.h"
#include "util/status.h"

namespace maliva {

/// Where a shard is in its lifecycle. Stored in one atomic; transitions are
/// CAS-guarded so a background warm-up finishing cannot resurrect a shard
/// that was drained mid-warm-up.
enum class ShardState {
  kRegistered,  ///< inserted, background warm-up not started yet
  kWarming,     ///< background Warmup() running (serves still accepted)
  kReady,       ///< warm-up finished (or skipped); steady-state serving
  kDraining,    ///< new serves refused; in-flight requests finishing
};

const char* ShardStateName(ShardState state);

/// One hosted scenario: its full serving stack plus lifecycle state. Shards
/// are handed out as shared_ptr so an eviction cannot pull the stack out
/// from under an in-flight request or a background warm-up.
struct Shard {
  Shard(std::string id_in, std::unique_ptr<MalivaService> service_in)
      : id(std::move(id_in)), service(std::move(service_in)) {}

  const std::string id;
  /// The per-scenario stack: ServingState, optional SharedSelectivityStore,
  /// optional ModelRegistry/ContinualTrainer, telemetry — everything a
  /// standalone MalivaService owns, nothing shared across shards.
  const std::unique_ptr<MalivaService> service;

  std::atomic<ShardState> state{ShardState::kRegistered};

  /// kRegistered -> kWarming; false when the shard was drained first.
  bool BeginWarmup() {
    ShardState expected = ShardState::kRegistered;
    return state.compare_exchange_strong(expected, ShardState::kWarming);
  }
  /// kWarming -> kReady; a concurrent drain wins (no resurrection).
  void FinishWarmup() {
    ShardState expected = ShardState::kWarming;
    state.compare_exchange_strong(expected, ShardState::kReady);
  }
  /// Any state -> kDraining; false when already draining (idempotent).
  bool Drain() { return state.exchange(ShardState::kDraining) != ShardState::kDraining; }

  bool draining() const { return state.load() == ShardState::kDraining; }

  /// Outcome of the background warm-up: OK until the warm-up finishes (or
  /// when warm-up is disabled), then whatever Warmup() returned. A failed
  /// warm-up does not unregister the shard — strategies still build lazily
  /// per request, surfacing the same error — but operators see it in
  /// ListScenarios().
  Status warmup_status() const {
    std::lock_guard<std::mutex> lock(warmup_mutex_);
    return warmup_status_;
  }
  void set_warmup_status(Status status) {
    std::lock_guard<std::mutex> lock(warmup_mutex_);
    warmup_status_ = std::move(status);
  }

 private:
  mutable std::mutex warmup_mutex_;
  Status warmup_status_;
};

/// The routing-key -> shard registry. Internally synchronized: Resolve takes
/// the shared side (the serve path), Insert/Remove the exclusive side for an
/// O(log n) map operation — shard construction, warm-up, and draining all
/// happen outside the lock.
class ShardRouter {
 public:
  /// OK when `id` could be registered right now; InvalidArgument for empty
  /// ids and duplicates (the duplicate message lists the registered
  /// scenarios). Lets callers reject bad ids *before* constructing a whole
  /// per-scenario stack; Insert re-checks under the exclusive lock, so a
  /// racing registration still loses cleanly there.
  Status CheckAvailable(const std::string& id) const;

  /// Registers `shard` under its id; same rejections as CheckAvailable.
  Status Insert(std::shared_ptr<Shard> shard);

  /// The shard serving `id`, or NotFound listing every registered scenario
  /// (mirroring RewriterFactory's unknown-strategy ergonomics).
  Result<std::shared_ptr<Shard>> Resolve(const std::string& id) const;

  /// Removes and returns `id`'s shard; NotFound (with the same listing) when
  /// absent. When `expected` is non-null the removal is conditional: it
  /// succeeds only while `id` still maps to that exact shard, and reports
  /// NotFound otherwise — so an eviction validated against one shard (e.g.
  /// its draining state) cannot remove a different shard re-registered
  /// under the same id in between. Callers still holding the shared_ptr
  /// keep the stack alive.
  Result<std::shared_ptr<Shard>> Remove(const std::string& id,
                                        const Shard* expected = nullptr);

  /// Every registered shard, ordered by id.
  std::vector<std::shared_ptr<Shard>> List() const;

  /// Registered scenario ids, sorted.
  std::vector<std::string> Ids() const;

  size_t Size() const;

  /// The sole registered shard, or null when Size() != 1. Empty routing keys
  /// resolve through this: a single-shard fleet behaves like a standalone
  /// service with no per-request routing ceremony.
  std::shared_ptr<Shard> Sole() const;

  /// Comma-separated Ids() ("(none registered)" when empty) — the one
  /// formatter behind every routing error message.
  std::string IdsList() const;

 private:
  /// IdsList() body; caller holds `mutex_`.
  std::string IdsListLocked() const;
  /// CheckAvailable() body; caller holds `mutex_`.
  Status CheckAvailableLocked(const std::string& id) const;

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::shared_ptr<Shard>> shards_;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_SHARD_ROUTER_H_
