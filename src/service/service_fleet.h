// MalivaFleet: many scenarios behind one routed serving facade.
//
// A MalivaService hosts exactly one scenario. The fleet hosts N of them as
// shards — each a full, isolated per-scenario stack (ServingState, shared
// selectivity store, model registry / continual trainer, telemetry) — and
// routes every request by its RewriteRequest::scenario key:
//
//   MalivaFleet fleet(FleetConfig().WithDefaults(
//       ServiceConfig().WithAgentSeeds(1)));
//   fleet.RegisterScenario("tweets", &tweets);          // fleet defaults
//   fleet.RegisterScenario("taxi", &taxi, [](ServiceConfig& c) {
//     c.WithCrossRequestCache(true);                    // per-shard override
//   });
//   RewriteRequest req;
//   req.scenario = "taxi";
//   req.query = taxi.evaluation[0];
//   Result<RewriteResponse> resp = fleet.Serve(req);
//
// Lifecycle (see shard_router.h): RegisterScenario inserts the shard and
// schedules a background Warmup() on the fleet's warm-up pool, so
// registering scenario N+1 never blocks serves on scenarios 1..N; Drain
// refuses new serves while in-flight ones finish; Evict removes a drained
// shard (requests still holding its shared_ptr keep the stack alive).
//
// Determinism: the fleet-level ServeBatch partitions a mixed-scenario batch
// by routing key and serves each request at its *per-shard* position, so a
// shard's slice of the responses is byte-identical to serving that slice
// through the shard's own ServeBatch — at any fleet thread count, with any
// interleaving of other scenarios in the batch (the PR 2/3 per-shard
// contracts, fleet-wide).

#ifndef MALIVA_SERVICE_SERVICE_FLEET_H_
#define MALIVA_SERVICE_SERVICE_FLEET_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "service/admission_controller.h"
#include "service/shard_router.h"
#include "service/trace_ring.h"
#include "util/metrics.h"

namespace maliva {

class ThreadPool;          // util/thread_pool.h; pools are created lazily
class DeadlineScheduler;   // service/deadline_scheduler.h; created when
                           // admission is on

/// Configuration of one MalivaFleet. `defaults` is the base ServiceConfig
/// every shard starts from; RegisterScenario overloads layer per-shard
/// overrides on top of it (and Validate() the result, so one shard's bad
/// override cannot poison the fleet).
struct FleetConfig {
  /// Base ServiceConfig for every shard (per-shard `num_threads` is unused
  /// by fleet batches — the fleet pool below fans out mixed batches — but
  /// still applies when a shard's service is driven directly).
  ServiceConfig defaults;
  /// Workers of the fleet-level ServeBatch pool, shared by every shard.
  /// 0 = hardware concurrency; 1 = the sequential path. Mixed-batch results
  /// are byte-identical per shard at every value.
  size_t num_threads = 0;
  /// Background warm-up workers. 0 disables background warm-up entirely:
  /// shards are Ready immediately and build strategies lazily on first use.
  size_t warmup_threads = 1;
  /// Strategies each shard's background warm-up builds. Empty = every
  /// registered strategy the shard's configuration supports (Warmup()'s
  /// skip-unavailable semantics).
  std::vector<std::string> warmup_strategies;

  /// Overload control plane (DESIGN.md "Overload control plane"): a
  /// deadline-deriving admission gate plus an EDF / weighted-fair
  /// DeadlineScheduler that replaces the FIFO serve pool. Off (the default)
  /// preserves the fleet's byte-identical-at-any-thread-count serving
  /// contract exactly; on, requests can come back with the typed
  /// DeadlineExceeded/ResourceExhausted rejections or be degraded to
  /// admission.degrade_strategy (flagged in RewriteResponse::stats).
  AdmissionConfig admission;

  /// Metrics flusher cadence (DESIGN.md "Observability plane"): with
  /// defaults.metrics on and this > 0, a background thread snapshots the
  /// merged per-shard registries every `metrics_flush_ms` and retains a
  /// bounded ring of time-windowed deltas (the SLO watchdog's input;
  /// MetricsFlusher::Windows() for operators). 0 (the default) = no thread.
  size_t metrics_flush_ms = 0;
  /// Trace-event ring capacity. 0 (the default) = no ring is constructed
  /// and every serve path holds a single null check; > 0 = the fleet
  /// appends one structured TraceEvent per completed request (FIFO and
  /// admission paths alike), retaining the newest `trace_ring_capacity`.
  size_t trace_ring_capacity = 0;
  /// SLO watchdog (requires metrics_flush_ms > 0 and admission.enabled):
  /// evaluates per-scenario deadline-hit-rate burn over the flusher's
  /// newest slo_window_count windows; breaches surface in FleetStats::slo.
  bool slo_watchdog = false;
  double slo_target_hit_rate = 0.95;
  size_t slo_window_count = 4;
  uint64_t slo_min_requests = 32;

  /// Rejects fleet-level pathologies (thread-count wrap-arounds), any
  /// defect in `defaults` (ServiceConfig::Validate()), any bad admission
  /// knob (AdmissionConfig::Validate()), and inconsistent observability
  /// knobs (a flusher without metrics, a watchdog without a flusher or a
  /// gate); checked once at fleet construction, a failure surfaces from
  /// every Register/Serve call.
  Status Validate() const;

  FleetConfig& WithDefaults(ServiceConfig config) {
    defaults = std::move(config);
    return *this;
  }
  FleetConfig& WithNumThreads(size_t threads) {
    num_threads = threads;
    return *this;
  }
  FleetConfig& WithWarmupThreads(size_t threads) {
    warmup_threads = threads;
    return *this;
  }
  FleetConfig& WithWarmupStrategies(std::vector<std::string> strategies) {
    warmup_strategies = std::move(strategies);
    return *this;
  }
  FleetConfig& WithAdmission(AdmissionConfig config) {
    admission = std::move(config);
    return *this;
  }
  FleetConfig& WithMetricsFlushMs(size_t ms) {
    metrics_flush_ms = ms;
    return *this;
  }
  FleetConfig& WithTraceRingCapacity(size_t capacity) {
    trace_ring_capacity = capacity;
    return *this;
  }
  FleetConfig& WithSloWatchdog(bool enabled) {
    slo_watchdog = enabled;
    return *this;
  }
  FleetConfig& WithSloTargetHitRate(double rate) {
    slo_target_hit_rate = rate;
    return *this;
  }
  FleetConfig& WithSloWindowCount(size_t count) {
    slo_window_count = count;
    return *this;
  }
  FleetConfig& WithSloMinRequests(uint64_t requests) {
    slo_min_requests = requests;
    return *this;
  }
};

/// One row of MalivaFleet::ListScenarios().
struct ScenarioInfo {
  std::string id;
  ShardState state = ShardState::kRegistered;
  /// Dataset behind the shard (DatasetKindName).
  std::string dataset;
  /// Background warm-up outcome: OK until the warm-up finishes (and forever
  /// when warm-up is disabled); a failure leaves the shard serving lazily
  /// but is surfaced here for operators.
  Status warmup;
  /// Requests this shard has served (errors included), from its telemetry.
  uint64_t requests = 0;
};

/// Overload-control snapshot inside FleetStats (all-zero with the plane
/// off; the per-shard ServiceStats rows carry the same counters split by
/// scenario).
struct FleetAdmissionStats {
  bool enabled = false;
  uint64_t admitted = 0;
  uint64_t degraded = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_overload = 0;
  /// Scheduler backlog (queued, undispatched jobs) at snapshot time — the
  /// gate's live load signal.
  size_t queue_depth = 0;
  double queue_wait_ms_total = 0.0;
  /// The gate's current EWMA of per-request serve wall time.
  double estimated_serve_ms = 0.0;
};

/// Fleet-wide counters: per-shard ServiceStats plus cross-shard aggregates.
struct FleetStats {
  /// Shards currently registered (draining included, evicted excluded).
  size_t scenarios = 0;
  /// Requests refused before reaching any shard: empty key with no sole
  /// shard, unknown routing keys, draining shards, misconfigured fleet.
  uint64_t routing_errors = 0;
  /// Counter sums across shards. The epoch/version/last-reward fields are
  /// per-shard quantities with no meaningful sum — `totals` carries the max
  /// for online_snapshot_version and zero for store_epoch and the
  /// last_retrain_* rewards; read the per-shard rows for those.
  ServiceStats totals;
  /// Overload control plane rollup (FleetConfig::admission).
  FleetAdmissionStats admission;
  /// Per-shard snapshots, ordered by scenario id. With admission on, each
  /// row's admission_* fields carry that scenario's gate outcomes.
  std::vector<std::pair<std::string, ServiceStats>> shards;
  /// Merged per-shard metric registries (empty while defaults.metrics is
  /// off): every shard's labeled counters/gauges/histograms in one
  /// snapshot, scenario label included, renderable via RenderPrometheus()/
  /// RenderJson().
  MetricsSnapshot metrics;
  /// SLO watchdog verdicts over the flusher's newest windows, ordered by
  /// scenario (empty while FleetConfig::slo_watchdog is off).
  std::vector<SloStatus> slo;
};

/// Hosts many scenarios behind one facade. Thread safety mirrors the
/// service: Serve/ServeBatch/ListScenarios/Stats are const and safe to call
/// concurrently with each other and with Register/Drain/Evict — shard
/// resolution is a shared-lock lookup, and every per-scenario stack is
/// internally synchronized.
class MalivaFleet {
 public:
  explicit MalivaFleet(FleetConfig config = FleetConfig());
  ~MalivaFleet();

  MalivaFleet(const MalivaFleet&) = delete;
  MalivaFleet& operator=(const MalivaFleet&) = delete;

  /// Registers `scenario` under routing key `id` with the fleet-default
  /// ServiceConfig, scheduling its background warm-up. The scenario is
  /// borrowed and must outlive the fleet (and any in-flight request after an
  /// eviction). Empty and duplicate ids are rejected with InvalidArgument.
  Status RegisterScenario(const std::string& id, Scenario* scenario);

  /// Same, layering per-shard overrides over the fleet defaults: `tune`
  /// receives a copy of FleetConfig::defaults to mutate. The tuned config is
  /// Validate()d before the shard is created — an invalid override is
  /// rejected here (InvalidArgument) and registers nothing.
  Status RegisterScenario(const std::string& id, Scenario* scenario,
                          const std::function<void(ServiceConfig&)>& tune);

  /// One-way gate: `id` refuses new serves from now on; in-flight requests
  /// finish undisturbed. Idempotent. NotFound for unknown ids.
  Status DrainScenario(const std::string& id);

  /// Removes a *drained* shard from the routing table (FailedPrecondition
  /// when not draining — drain first so no new request can race the
  /// removal). Requests still holding the shard finish on its stack; the
  /// stack is destroyed when the last holder lets go.
  Status EvictScenario(const std::string& id);

  /// Routes by request.scenario and serves on that shard. An empty key
  /// routes to the sole registered shard (a single-shard fleet is a drop-in
  /// MalivaService) and is InvalidArgument otherwise; unknown keys are
  /// NotFound listing every registered scenario; draining shards are
  /// FailedPrecondition.
  ///
  /// With FleetConfig::admission on, the request first passes the admission
  /// gate (arrival = now; deadline = arrival + effective tau *
  /// slack_factor, where the effective tau is the request's tau_ms or the
  /// shard scenario's default): shed requests come back as DeadlineExceeded
  /// or ResourceExhausted without touching any shard, degraded ones are
  /// served with admission.degrade_strategy (flagged in response stats),
  /// and admitted work dispatches through the EDF / weighted-fair
  /// DeadlineScheduler — this call blocks until its job completes.
  Result<RewriteResponse> Serve(const RewriteRequest& request) const;

  /// Admission-gated fire-and-forget serve: the gate runs inline (a shed
  /// request invokes `done` with its typed Status before returning), and
  /// admitted/degraded work completes on a scheduler worker, invoking
  /// `done` exactly once with the response. The open-loop bench/replay
  /// entry point — a single driver thread can offer load faster than it is
  /// served, which blocking Serve calls cannot. FailedPrecondition when
  /// admission is off (the FIFO paths have no completion hook).
  Status ServeAsync(const RewriteRequest& request,
                    std::function<void(Result<RewriteResponse>)> done) const;

  /// Serves a mixed-scenario batch: requests are routed per the rules above
  /// (failures land as per-request Status), each shard's strategies are
  /// pre-built, and the batch fans out over the fleet pool. Each request is
  /// served at its position *within its shard's slice*, so per shard the
  /// responses are byte-identical to that shard's own ServeBatch over the
  /// slice — at any fleet thread count.
  ///
  /// With admission on the batch routes through the gate + scheduler
  /// instead (all members share one arrival timestamp); per-shard slice
  /// indices are preserved, but gate decisions depend on live load, so the
  /// byte-identity contract is admission-off only.
  std::vector<Result<RewriteResponse>> ServeBatch(
      std::span<const RewriteRequest> requests) const;

  /// Introspection: every registered scenario with its lifecycle state,
  /// dataset, warm-up outcome, and served-request count; ordered by id.
  std::vector<ScenarioInfo> ListScenarios() const;

  /// Per-shard serving/knowledge/online counters plus fleet aggregates.
  FleetStats Stats() const;

  /// The shard's underlying service — stats drill-down, RetrainNow-style
  /// deterministic driving, registry access. Draining shards resolve too
  /// (operators inspect what they drain). NotFound for unknown ids. The
  /// returned shared_ptr aliases the shard, so holding it keeps the whole
  /// stack alive across a concurrent drain + evict.
  Result<std::shared_ptr<const MalivaService>> ServiceFor(const std::string& id) const;

  /// Blocks until every background warm-up scheduled so far has finished.
  /// Tests and benches use this to make Ready states deterministic; serving
  /// never requires it (cold shards build lazily).
  void WaitWarmups() const;

  const FleetConfig& config() const { return config_; }

  /// Observability plane accessors (null while the respective knob is off).
  /// The ring's SnapshotEvents/ExportJsonLines and the flusher's
  /// Windows()/FlushNow() are thread-safe.
  const TraceRing* trace_ring() const { return trace_ring_.get(); }
  MetricsFlusher* metrics_flusher() const { return flusher_.get(); }

 private:
  /// Resolves a routing key to a serveable shard (the Serve rules above).
  /// Failures count toward FleetStats::routing_errors.
  Result<std::shared_ptr<Shard>> Route(const std::string& key) const;

  /// Admission path shared by Serve/ServeAsync/ServeBatch: gate the routed
  /// request at `arrival_ms`, then either invoke `done` inline with the
  /// shed Status or submit the (possibly degraded) work to the scheduler,
  /// serving at per-shard position `shard_index`. `done` is invoked exactly
  /// once either way.
  void SubmitAdmitted(const std::shared_ptr<Shard>& shard,
                      const RewriteRequest& request, double arrival_ms,
                      uint64_t shard_index,
                      std::function<void(Result<RewriteResponse>)> done) const;

  /// Wall ms since fleet construction — the admission/deadline timeline.
  double NowMs() const;

  /// Appends one TraceEvent for a completed (or shed) request when the ring
  /// is on; a single null check when it is off. `response` may be null
  /// (shed, or the serve errored); `queue_wait_ms` is 0 off the admission
  /// path.
  void AppendTrace(const Shard& shard, const RewriteRequest& request,
                   const char* verdict, const RewriteResponse* response,
                   double queue_wait_ms) const;

  /// Merged MetricsSnapshot across every registered shard's registry (an
  /// empty snapshot while defaults.metrics is off) — the flusher's snapshot
  /// fn and FleetStats::metrics.
  MetricsSnapshot SnapshotMetrics() const;

  /// FleetConfig::num_threads with 0 resolved to hardware concurrency; the
  /// one source for both ServeBatch's sequential-path gate and the pool
  /// size.
  size_t ResolvedNumThreads() const;

  ThreadPool& ServePool() const;
  ThreadPool& WarmupPool() const;
  DeadlineScheduler& Scheduler() const;

  FleetConfig config_;
  /// FleetConfig::Validate() outcome, computed once at construction.
  Status config_status_;
  /// Origin of NowMs() — the fleet's arrival/deadline timeline.
  std::chrono::steady_clock::time_point clock_origin_;

  ShardRouter router_;
  mutable std::atomic<uint64_t> routing_errors_{0};
  /// The overload gate; null while FleetConfig::admission is off.
  std::unique_ptr<AdmissionController> admission_;
  /// Trace-event ring; null while trace_ring_capacity is 0.
  std::unique_ptr<TraceRing> trace_ring_;

  mutable std::once_flag serve_pool_once_;
  mutable std::unique_ptr<ThreadPool> serve_pool_;
  /// Destroyed before the router: joining scheduled warm-ups (which hold
  /// their shard alive via shared_ptr) before the router goes away.
  mutable std::once_flag warmup_pool_once_;
  mutable std::unique_ptr<ThreadPool> warmup_pool_;
  /// Declared last: destroyed first, draining admitted jobs (which hold
  /// their shard via shared_ptr and read admission_/the clock through
  /// `this`) before anything above goes away.
  mutable std::once_flag scheduler_once_;
  mutable std::unique_ptr<DeadlineScheduler> scheduler_;
  /// Declared after the scheduler: its background thread snapshots the
  /// router's shard registries, so it must join before the router (and
  /// everything else it reads through `this`) is destroyed.
  std::unique_ptr<MetricsFlusher> flusher_;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_SERVICE_FLEET_H_
