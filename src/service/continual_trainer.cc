#include "service/continual_trainer.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/thread_pool.h"

namespace maliva {

namespace {

/// FNV-1a over the key bytes: a *fixed* hash, unlike std::hash, whose value
/// is implementation-defined — fine-tune RNG seeds must reproduce across
/// standard libraries for the online plane's byte-reproducibility contract.
uint64_t StableKeyHash(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

ContinualTrainer::ContinualTrainer(ModelRegistry* registry, Config config)
    : registry_(registry), config_(config) {
  if (config_.background_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(config_.background_threads);
  }
}

ContinualTrainer::~ContinualTrainer() = default;

void ContinualTrainer::RegisterKey(const std::string& key, RewriterEnv renv,
                                   const std::vector<const Query*>* validation,
                                   const QAgent& trained) {
  {
    std::unique_lock<std::shared_mutex> lock(keys_mutex_);
    if (keys_.find(key) != keys_.end()) return;
    ShardedReplaySink::Config sink_config;
    sink_config.capacity = config_.replay_capacity;
    sink_config.shards = config_.replay_shards;
    keys_[key] = std::make_unique<KeyState>(key, std::move(renv), validation,
                                            sink_config, config_.replay_capacity);
  }

  // Version 1: a faithful clone of the offline-trained weights, so serving
  // through the registry is byte-identical to serving the frozen agent until
  // the first fine-tune publishes. Its validation reward becomes the gate's
  // fixed bar.
  KeyState& state = *FindKey(key);
  Trainer::IterationStats base =
      Trainer::EvaluateGreedy(state.renv, trained, *state.validation);
  state.baseline_reward = base.mean_reward;
  AgentSnapshotMeta meta;
  meta.retrain_round = 0;
  meta.transitions_trained_on = 0;
  meta.eps_start = config_.eps_start;
  meta.eps_end = config_.eps_end;
  meta.eps_decay_steps = config_.eps_decay_steps;
  meta.validation_reward_pre = base.mean_reward;
  meta.validation_reward_post = base.mean_reward;
  meta.validation_vqp = base.greedy_vqp;
  registry_->Publish(key, trained.Clone(), meta);
}

ContinualTrainer::KeyState* ContinualTrainer::FindKey(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(keys_mutex_);
  auto it = keys_.find(key);
  return it == keys_.end() ? nullptr : it->second.get();
}

PublishedModel ContinualTrainer::Current(const std::string& key) const {
  // Straight delegate: the registry already answers unknown keys with an
  // empty model, and only registered keys are ever published — a FindKey
  // guard here would just add a second contended rwlock acquisition to
  // every online-enabled request.
  return registry_->Current(key);
}

void ContinualTrainer::Record(const std::string& key,
                              std::vector<Experience> transitions) {
  KeyState* state = FindKey(key);
  if (state == nullptr || transitions.empty()) return;
  state->sink.Append(std::move(transitions));
  MaybeScheduleRound(*state);
}

void ContinualTrainer::MaybeScheduleRound(KeyState& state) {
  if (pool_ == nullptr) return;
  if (state.sink.Size() < config_.min_transitions) return;
  // One round in flight per key; exchange() is the claim — losers back off.
  if (state.inflight.exchange(true, std::memory_order_acq_rel)) return;
  pool_->Submit([this, &state] {
    RunRound(state);
    state.inflight.store(false, std::memory_order_release);
    // Re-arm: feedback that crossed the threshold again *during* the round
    // must not wait for the next Record() — traffic may have stopped.
    MaybeScheduleRound(state);
  });
}

bool ContinualTrainer::RetrainNow(const std::string& key) {
  KeyState* state = FindKey(key);
  if (state == nullptr) return false;
  return RunRound(*state);
}

bool ContinualTrainer::RunRound(KeyState& state) {
  // Per-key rounds are serialized; concurrent keys may train in parallel.
  std::lock_guard<std::mutex> round_lock(state.round_mutex);

  // Incumbent first, drain second: a round racing RegisterKey's window
  // between key insertion and the version-1 publish must leave the buffered
  // feedback in the sink for the next round, not destroy it.
  PublishedModel incumbent = registry_->Current(state.key);
  if (!incumbent) return false;
  std::vector<Experience> fresh = state.sink.Drain();
  if (fresh.empty()) return false;

  const size_t consumed = fresh.size();
  const uint64_t round = state.rounds.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t total_consumed =
      state.transitions_consumed.fetch_add(consumed, std::memory_order_relaxed) +
      consumed;

  // Fine-tune a clone with the offline trainer's DQN update rule
  // (core/trainer.cc, Algorithm 1 lines 18-21): uniform minibatches from the
  // key's reservoir — the fresh feedback folded into the (bounded) history
  // of earlier rounds, so adaptation accumulates instead of chasing only the
  // latest batch — with Bellman targets maxed over the successor's still-
  // valid actions on the target network.
  std::unique_ptr<QAgent> clone = incumbent.agent->Clone();
  ReplayBuffer& replay = state.reservoir;
  for (Experience& exp : fresh) replay.Add(std::move(exp));
  Rng rng(config_.seed ^ (round * 0x6f6e6c696e65ULL) ^ StableKeyHash(state.key));

  size_t updates = 0;
  for (size_t step = 0; step < config_.gradient_steps; ++step) {
    std::vector<const Experience*> batch = replay.Sample(config_.batch_size, &rng);
    if (batch.empty()) break;
    Trainer::MinibatchUpdate(clone.get(), batch, config_.gamma,
                             config_.learning_rate);
    if (++updates % config_.target_sync_every == 0) clone->SyncTarget();
  }
  clone->SyncTarget();

  // Validation gate: the clone's greedy reward on the (base-distribution)
  // validation split must stay within the configured tolerance of the
  // *warm-up snapshot's* reward — a fixed bar, so successive rounds keep
  // adapting to drift, but a clone that forgot the base workload is refused.
  // The incumbent's own reward is already recorded in its snapshot metadata
  // (validation is deterministic), so only the clone needs a sweep.
  const double pre_reward = incumbent.snapshot->meta().validation_reward_post;
  Trainer::IterationStats post =
      Trainer::EvaluateGreedy(state.renv, *clone, *state.validation);
  {
    std::lock_guard<std::mutex> lock(last_mutex_);
    last_reward_pre_ = pre_reward;
    last_reward_post_ = post.mean_reward;
  }
  if (post.mean_reward + config_.gate_tolerance < state.baseline_reward) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  AgentSnapshotMeta meta;
  meta.retrain_round = round;
  meta.transitions_trained_on = total_consumed;
  meta.eps_start = config_.eps_start;
  meta.eps_end = config_.eps_end;
  meta.eps_decay_steps = config_.eps_decay_steps;
  meta.validation_reward_pre = pre_reward;
  meta.validation_reward_post = post.mean_reward;
  meta.validation_vqp = post.greedy_vqp;
  // Conditional on the incumbent this round cloned: if an operator rolled
  // it back mid-round, publishing its descendant would silently undo the
  // rollback — the round is dropped instead (its feedback stays in the
  // reservoir for the next one).
  PublishedModel published =
      registry_->Publish(state.key, std::move(clone), meta,
                         incumbent.snapshot->meta().version);
  if (!published) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ContinualTrainer::WaitIdle() {
  if (pool_ != nullptr) pool_->Wait();
}

ContinualTrainer::StatsSnapshot ContinualTrainer::Snapshot() const {
  StatsSnapshot stats;
  {
    std::shared_lock<std::shared_mutex> lock(keys_mutex_);
    for (const auto& [key, state] : keys_) {
      stats.transitions_recorded += state->sink.TotalAppended();
      stats.transitions_dropped += state->sink.TotalDropped();
      stats.transitions_pending += state->sink.Size();
    }
  }
  stats.retrains_published = published_.load(std::memory_order_relaxed);
  stats.retrains_rejected = rejected_.load(std::memory_order_relaxed);
  stats.snapshot_version = registry_->MaxVersion();
  {
    std::lock_guard<std::mutex> lock(last_mutex_);
    stats.last_reward_pre = last_reward_pre_;
    stats.last_reward_post = last_reward_post_;
  }
  return stats;
}

}  // namespace maliva
