#include "service/service.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <mutex>
#include <string>
#include <utility>

#include "baselines/bao.h"
#include "baselines/baseline.h"
#include "qte/accurate_qte.h"
#include "qte/sampling_qte.h"
#include "quality/quality.h"
#include "query/rewritten_query.h"
#include "util/query_profiler.h"
#include "util/thread_pool.h"

namespace maliva {

Status ServiceConfig::Validate() const {
  // One chokepoint for configuration pathologies: reject with
  // InvalidArgument instead of clamping, so misconfigurations surface at the
  // first Serve/Warmup call rather than silently changing behaviour.
  if (num_threads > kMaxNumThreads) {
    return Status::InvalidArgument(
        "num_threads must be <= " + std::to_string(kMaxNumThreads) + " (got " +
        std::to_string(num_threads) + "; likely an unsigned wrap-around)");
  }
  if (!(bao_per_plan_cost_ms >= 0.0) || !std::isfinite(bao_per_plan_cost_ms)) {
    return Status::InvalidArgument(
        "bao_per_plan_cost_ms must be finite and non-negative");
  }
  if (!(beta >= 0.0 && beta <= 1.0)) {
    return Status::InvalidArgument("beta must be within [0, 1] (Eq 2 weight)");
  }
  if (cross_request_cache) {
    if (shared_store_capacity == 0) {
      return Status::InvalidArgument(
          "cross_request_cache requires shared_store_capacity > 0");
    }
    if (shared_store_shards == 0) {
      return Status::InvalidArgument(
          "cross_request_cache requires shared_store_shards > 0");
    }
    if (shared_store_shards > shared_store_capacity) {
      return Status::InvalidArgument(
          "shared_store_shards (" + std::to_string(shared_store_shards) +
          ") must not exceed shared_store_capacity (" +
          std::to_string(shared_store_capacity) + ")");
    }
    if (signature_literal_bins < 1) {
      return Status::InvalidArgument(
          "cross_request_cache requires signature_literal_bins >= 1");
    }
  }
  if (result_cache) {
    if (result_cache_capacity == 0) {
      return Status::InvalidArgument(
          "result_cache requires result_cache_capacity > 0");
    }
    if (result_cache_shards == 0) {
      return Status::InvalidArgument(
          "result_cache requires result_cache_shards > 0");
    }
    if (result_cache_shards > result_cache_capacity) {
      return Status::InvalidArgument(
          "result_cache_shards (" + std::to_string(result_cache_shards) +
          ") must not exceed result_cache_capacity (" +
          std::to_string(result_cache_capacity) + ")");
    }
    if (!(result_cache_tau_bin_ms > 0.0) ||
        !std::isfinite(result_cache_tau_bin_ms)) {
      return Status::InvalidArgument(
          "result_cache_tau_bin_ms must be finite and positive");
    }
    if (result_cache_floor_bins < 1) {
      return Status::InvalidArgument(
          "result_cache requires result_cache_floor_bins >= 1");
    }
    if (signature_literal_bins < 1) {
      return Status::InvalidArgument(
          "result_cache requires signature_literal_bins >= 1 (cache keys "
          "start from the canonical query signature)");
    }
  }
  if (histogram_selectivity) {
    if (histogram_buckets == 0) {
      return Status::InvalidArgument(
          "histogram_selectivity requires histogram_buckets > 0");
    }
    if (histogram_grid_cells == 0) {
      return Status::InvalidArgument(
          "histogram_selectivity requires histogram_grid_cells > 0");
    }
    if (!(histogram_cost_ms >= 0.0) || !std::isfinite(histogram_cost_ms)) {
      return Status::InvalidArgument(
          "histogram_cost_ms must be finite and non-negative");
    }
    if (!(max_histogram_rel_error > 0.0) ||
        !std::isfinite(max_histogram_rel_error)) {
      return Status::InvalidArgument(
          "max_histogram_rel_error must be finite and positive");
    }
    if (histogram_error_window == 0) {
      return Status::InvalidArgument(
          "histogram_selectivity requires histogram_error_window > 0");
    }
  }
  if (profile_requests && profile_sample_every == 0) {
    return Status::InvalidArgument(
        "profile_requests requires profile_sample_every >= 1 (0 would divide "
        "by zero picking sampled requests)");
  }
  if (online_learning) {
    if (online_min_transitions == 0) {
      return Status::InvalidArgument(
          "online_learning requires online_min_transitions > 0");
    }
    if (online_replay_capacity == 0) {
      return Status::InvalidArgument(
          "online_learning requires online_replay_capacity > 0");
    }
    if (online_replay_shards == 0) {
      return Status::InvalidArgument(
          "online_learning requires online_replay_shards > 0");
    }
    if (online_replay_shards > online_replay_capacity) {
      return Status::InvalidArgument(
          "online_replay_shards (" + std::to_string(online_replay_shards) +
          ") must not exceed online_replay_capacity (" +
          std::to_string(online_replay_capacity) + ")");
    }
    if (online_min_transitions > online_replay_capacity) {
      return Status::InvalidArgument(
          "online_min_transitions (" + std::to_string(online_min_transitions) +
          ") must not exceed online_replay_capacity (" +
          std::to_string(online_replay_capacity) +
          "): the sink could never reach the retrain trigger");
    }
    if (online_gradient_steps == 0) {
      return Status::InvalidArgument(
          "online_learning requires online_gradient_steps > 0");
    }
    if (!(online_learning_rate > 0.0) || !std::isfinite(online_learning_rate)) {
      return Status::InvalidArgument(
          "online_learning_rate must be finite and positive");
    }
    // Fine-tune rounds copy these trainer fields, so the chokepoint guards
    // them here: target_sync_every is a modulo divisor and batch_size of 0
    // would silently turn every round into a no-op.
    if (trainer.target_sync_every == 0) {
      return Status::InvalidArgument(
          "online_learning requires trainer.target_sync_every > 0");
    }
    if (trainer.batch_size == 0) {
      return Status::InvalidArgument(
          "online_learning requires trainer.batch_size > 0");
    }
    if (!(online_gate_tolerance >= 0.0) || !std::isfinite(online_gate_tolerance)) {
      return Status::InvalidArgument(
          "online_gate_tolerance must be finite and non-negative");
    }
    if (online_trainer_threads > kMaxNumThreads) {
      return Status::InvalidArgument(
          "online_trainer_threads must be <= " + std::to_string(kMaxNumThreads) +
          " (got " + std::to_string(online_trainer_threads) +
          "; likely an unsigned wrap-around)");
    }
    if (online_max_snapshots < 2) {
      return Status::InvalidArgument(
          "online_max_snapshots must be >= 2 (the warm-up snapshot, version 1, "
          "plus the serving head; got " + std::to_string(online_max_snapshots) +
          ")");
    }
  }
  if (!metrics && !metrics_scenario.empty()) {
    return Status::InvalidArgument(
        "metrics_scenario requires metrics (the label has no registry to "
        "stamp)");
  }
  return Status::OK();
}

MalivaService::MalivaService(Scenario* scenario, ServiceConfig config)
    : scenario_(scenario), config_(std::move(config)) {
  assert(scenario_ != nullptr && "MalivaService requires a built scenario");
  if (config_.qte.has_value()) {
    qte_params_ = *config_.qte;  // explicit override wins, jitter seed included
  } else {
    qte_params_ = scenario_->config.qte;
    // The jitter stream is tied to the scenario seed so rebuilding the
    // service over the same scenario reproduces every estimation cost.
    qte_params_.jitter_seed = scenario_->config.seed ^ 0x6a697474;
  }
  // Per-request session seeds mix this base with the request index, so batch
  // results are independent of thread count and interleaving.
  session_seed_base_ = scenario_->config.seed ^ 0x73657373;  // "sess"
  state_.accurate_qte = std::make_unique<AccurateQte>();
  state_.sampling_qte = std::make_unique<SamplingQte>();
  state_.quality_oracle = std::make_unique<QualityOracle>(scenario_->engine.get());

  config_status_ = config_.Validate();
  signature_options_.literal_bins = config_.signature_literal_bins;
  if (config_status_.ok() && config_.cross_request_cache) {
    SharedSelectivityStore::Config store_config;
    store_config.capacity = config_.shared_store_capacity;
    store_config.shards = config_.shared_store_shards;
    state_.shared_store = std::make_unique<SharedSelectivityStore>(store_config);
  }
  fingerprint_options_.tau_bin_ms = config_.result_cache_tau_bin_ms;
  fingerprint_options_.quality_floor_bins = config_.result_cache_floor_bins;
  if (config_status_.ok() && config_.result_cache) {
    RewriteResultCache::Config cache_config;
    cache_config.capacity = config_.result_cache_capacity;
    cache_config.shards = config_.result_cache_shards;
    state_.result_cache = std::make_unique<RewriteResultCache>(cache_config);
  }
  if (config_status_.ok() && config_.histogram_selectivity) {
    // Rebuild the engine's histograms at the configured resolution first:
    // ConfigureHistograms bumps the catalog version on a resolution change,
    // and the tier must capture the post-rebuild epoch or it would decline
    // every estimate as stale from the first request.
    HistogramOptions hist;
    hist.buckets = config_.histogram_buckets;
    hist.grid_cells = config_.histogram_grid_cells;
    scenario_->engine->ConfigureHistograms(hist);
    SelectivityTierConfig tier_config;
    tier_config.histogram_cost_ms = config_.histogram_cost_ms;
    tier_config.max_rel_error = config_.max_histogram_rel_error;
    tier_config.error_window = config_.histogram_error_window;
    state_.selectivity_tier = std::make_unique<SelectivityTier>(
        scenario_->engine.get(), tier_config);
  }
  if (config_status_.ok() && config_.online_learning) {
    state_.model_registry =
        std::make_unique<ModelRegistry>(config_.online_max_snapshots);
    ContinualTrainer::Config trainer_config;
    trainer_config.min_transitions = config_.online_min_transitions;
    trainer_config.replay_capacity = config_.online_replay_capacity;
    trainer_config.replay_shards = config_.online_replay_shards;
    trainer_config.gradient_steps = config_.online_gradient_steps;
    trainer_config.batch_size = config_.trainer.batch_size;
    trainer_config.learning_rate = config_.online_learning_rate;
    trainer_config.gamma = config_.trainer.gamma;
    trainer_config.target_sync_every = config_.trainer.target_sync_every;
    trainer_config.gate_tolerance = config_.online_gate_tolerance;
    trainer_config.eps_start = config_.trainer.eps_start;
    trainer_config.eps_end = config_.trainer.eps_end;
    trainer_config.eps_decay_steps = config_.trainer.eps_decay_steps;
    trainer_config.seed = config_.trainer.seed ^ 0x6f6e6c696eULL;  // "onlin"
    trainer_config.background_threads = config_.online_trainer_threads;
    state_.continual_trainer = std::make_unique<ContinualTrainer>(
        state_.model_registry.get(), trainer_config);
  }
  if (config_status_.ok() && config_.metrics) {
    // Resolve every hot-path handle exactly once, here: after construction
    // the serve path records through raw pointers — zero registry map
    // lookups per request (metrics_test asserts this via lookups()).
    MetricLabels base;
    if (!config_.metrics_scenario.empty()) {
      base.emplace_back("scenario", config_.metrics_scenario);
    }
    metrics_registry_ = std::make_unique<MetricsRegistry>(std::move(base));
    MetricsRegistry& reg = *metrics_registry_;
    serve_metrics_.requests_ok =
        reg.GetCounter("maliva_requests_total", {{"verdict", "ok"}});
    serve_metrics_.requests_error =
        reg.GetCounter("maliva_requests_total", {{"verdict", "error"}});
    serve_metrics_.exact_fallbacks = reg.GetCounter("maliva_exact_fallbacks_total", {});
    serve_metrics_.cache_hits =
        reg.GetCounter("maliva_result_cache_total", {{"outcome", "hit"}});
    serve_metrics_.cache_misses =
        reg.GetCounter("maliva_result_cache_total", {{"outcome", "miss"}});
    serve_metrics_.cache_coalesced =
        reg.GetCounter("maliva_result_cache_total", {{"outcome", "coalesced"}});
    serve_metrics_.tier_shared =
        reg.GetCounter("maliva_selectivity_slots_total", {{"rung", "shared"}});
    serve_metrics_.tier_histogram =
        reg.GetCounter("maliva_selectivity_slots_total", {{"rung", "histogram"}});
    serve_metrics_.tier_probe =
        reg.GetCounter("maliva_selectivity_slots_total", {{"rung", "probe"}});
    serve_metrics_.admission_admitted =
        reg.GetCounter("maliva_admission_total", {{"verdict", "admitted"}});
    serve_metrics_.admission_degraded =
        reg.GetCounter("maliva_admission_total", {{"verdict", "degraded"}});
    serve_metrics_.admission_shed_deadline =
        reg.GetCounter("maliva_admission_total", {{"verdict", "shed_deadline"}});
    serve_metrics_.admission_shed_overload =
        reg.GetCounter("maliva_admission_total", {{"verdict", "shed_overload"}});
    serve_metrics_.serve_latency = reg.GetHistogram("maliva_serve_latency_ms", {});
    serve_metrics_.queue_wait = reg.GetHistogram("maliva_queue_wait_ms", {});
    serve_metrics_.result_cache_entries =
        reg.GetGauge("maliva_result_cache_entries", {});
    serve_metrics_.shared_store_entries =
        reg.GetGauge("maliva_shared_store_entries", {});
    serve_metrics_.agent_snapshot_version =
        reg.GetGauge("maliva_agent_snapshot_version", {});
  }
}

MalivaService::~MalivaService() = default;

namespace {

// Agent cache keys, defined once and shared by the strategy builders (below),
// the strategy -> key mapping of the online plane, and the online-learnable
// gate — so a renamed key cannot silently strand a strategy on frozen
// weights.
constexpr const char kAgentKeyExactAccurate[] = "agent/exact-accurate";
constexpr const char kAgentKeyExactSampling[] = "agent/exact-sampling";
constexpr const char kAgentKeyQualityOneStage[] = "agent/quality-one-stage";
constexpr const char kAgentKeyQualityTwoStage[] = "agent/quality-two-stage";

/// The single table of online-learnable strategies: which strategies read
/// snapshots, and under which agent key. Single-agent MDP strategies only —
/// the two-stage rewriter coordinates two agents and serves its frozen
/// construction-time pair, and the non-agent strategies (baseline/naive/
/// bao) have nothing to fine-tune. Both lookups below consult this one
/// table, so the strategy->key map and the learnable-key predicate cannot
/// drift apart.
struct OnlineStrategyEntry {
  const char* strategy;
  const char* agent_key;
};
constexpr OnlineStrategyEntry kOnlineStrategies[] = {
    {"mdp/accurate", kAgentKeyExactAccurate},
    {"mdp/sampling", kAgentKeyExactSampling},
    {"quality/one-stage", kAgentKeyQualityOneStage},
};

/// Agent cache key an online-enabled request reads its snapshot from
/// (nullptr = the strategy serves frozen weights).
const char* OnlineAgentKeyFor(const std::string& strategy) {
  for (const OnlineStrategyEntry& entry : kOnlineStrategies) {
    if (strategy == entry.strategy) return entry.agent_key;
  }
  return nullptr;
}

/// True when some strategy can actually serve this key's snapshots; other
/// keys (e.g. the two-stage pair) are not registered with the online plane
/// — a v1 snapshot nothing reads would only waste a validation sweep.
bool IsOnlineLearnableKey(const std::string& cache_key) {
  for (const OnlineStrategyEntry& entry : kOnlineStrategies) {
    if (cache_key == entry.agent_key) return true;
  }
  return false;
}

}  // namespace

RewriterEnv MalivaService::MakeEnv(const QueryTimeEstimator* qte, double beta,
                                   const RewriteOptionSet* options) const {
  RewriterEnv renv;
  renv.engine = scenario_->engine.get();
  renv.oracle = scenario_->oracle.get();
  renv.options = options != nullptr ? options : &scenario_->options;
  renv.qte = qte;
  renv.tier = state_.selectivity_tier.get();
  renv.qte_params = qte_params_;
  renv.env_config.tau_ms = scenario_->config.tau_ms;
  renv.env_config.beta = beta;
  if (beta < 1.0) renv.env_config.quality = state_.quality_oracle.get();
  return renv;
}

Result<const QAgent*> MalivaService::TrainedAgent(const std::string& cache_key,
                                                  const RewriterEnv& renv) {
  auto it = state_.agents.find(cache_key);
  if (it != state_.agents.end()) return static_cast<const QAgent*>(it->second.get());

  if (config_.num_agent_seeds == 0) {
    return Status::FailedPrecondition(
        "cannot train agent \"" + cache_key + "\": num_agent_seeds is 0");
  }
  if (scenario_->train.empty()) {
    return Status::FailedPrecondition(
        "cannot train agent \"" + cache_key + "\": scenario has no training split");
  }

  std::unique_ptr<QAgent> best;
  double best_vqp = -1.0;
  const std::vector<const Query*>& validation = scenario_->validation;
  for (size_t seed = 0; seed < config_.num_agent_seeds; ++seed) {
    TrainerConfig tc = config_.trainer;
    tc.seed = config_.trainer.seed + seed * 7919;
    Trainer trainer(renv, tc);
    std::unique_ptr<QAgent> agent = trainer.Train(scenario_->train);

    // Hold-out validation: keep the best agent by validation VQP.
    size_t viable = 0;
    for (const Query* q : validation) {
      RewriteOutcome out = RunGreedyEpisode(renv, *agent, *q);
      viable += out.viable ? 1 : 0;
    }
    double vqp = validation.empty()
                     ? 0.0
                     : static_cast<double>(viable) / static_cast<double>(validation.size());
    if (vqp > best_vqp) {
      best_vqp = vqp;
      best = std::move(agent);
    }
  }
  assert(best != nullptr);
  const QAgent* ptr = best.get();
  state_.agents[cache_key] = std::move(best);
  // Online plane: the offline-trained weights become snapshot version 1 of
  // this key's chain, so serving reads the registry from the first request.
  if (state_.continual_trainer != nullptr && IsOnlineLearnableKey(cache_key)) {
    state_.continual_trainer->RegisterKey(cache_key, renv, &scenario_->validation,
                                          *ptr);
  }
  return ptr;
}

Result<const BaoQte*> MalivaService::TrainedBaoQte() {
  if (state_.bao_qte == nullptr) {
    if (scenario_->train.empty()) {
      return Status::FailedPrecondition(
          "cannot train Bao's QTE: scenario has no training split");
    }
    BaoTrainer trainer(scenario_->engine.get(), scenario_->oracle.get(),
                       &scenario_->options);
    state_.bao_qte = trainer.Train(scenario_->train, scenario_->config.seed ^ 0x62616f);
  }
  return static_cast<const BaoQte*>(state_.bao_qte.get());
}

const RewriteOptionSet* MalivaService::InternOptionSet(RewriteOptionSet options) {
  state_.interned_options.push_back(
      std::make_unique<RewriteOptionSet>(std::move(options)));
  return state_.interned_options.back().get();
}

void MalivaService::SetApproxRules(std::vector<ApproxRule> rules) {
  // Exclusive with strategy builds, which read the rules mid-build.
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  config_.approx_rules = std::move(rules);
}

Result<const Rewriter*> MalivaService::GetRewriter(const std::string& name) const {
  MALIVA_RETURN_NOT_OK(config_status_);
  {
    std::shared_lock<std::shared_mutex> lock(state_mutex_);
    auto it = state_.rewriters.find(name);
    if (it != state_.rewriters.end()) {
      return static_cast<const Rewriter*>(it->second.get());
    }
  }

  // Build phase: exclusive lock, double-checked. Builders mutate the serving
  // state through the service hooks (TrainedAgent, InternOptionSet, ...),
  // which is why they receive a non-const service — the cast below keeps the
  // serving API const while the warm-up state grows under this lock.
  std::unique_lock<std::shared_mutex> lock(state_mutex_);
  auto it = state_.rewriters.find(name);
  if (it != state_.rewriters.end()) {
    return static_cast<const Rewriter*>(it->second.get());
  }
  Result<std::unique_ptr<Rewriter>> built =
      RewriterFactory::Global().Create(name, const_cast<MalivaService&>(*this));
  if (!built.ok()) return built.status();
  std::unique_ptr<Rewriter> rewriter = std::move(built).value();
  const Rewriter* ptr = rewriter.get();
  state_.rewriters[name] = std::move(rewriter);
  return ptr;
}

const Rewriter* MalivaService::FindBuiltRewriter(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(state_mutex_);
  auto it = state_.rewriters.find(name);
  return it != state_.rewriters.end() ? it->second.get() : nullptr;
}

Status MalivaService::Warmup(std::span<const std::string> strategies) {
  for (const std::string& name : strategies) {
    Result<const Rewriter*> built = GetRewriter(name);
    if (!built.ok()) return built.status();
  }
  return Status::OK();
}

Status MalivaService::Warmup() {
  for (const std::string& name : RewriterFactory::Global().KnownStrategies()) {
    Result<const Rewriter*> built = GetRewriter(name);
    if (built.ok()) continue;
    // Strategies this configuration legitimately cannot build (e.g.
    // "quality/*" without approximation rules) stay cold; requests naming
    // them get this Status. Anything else — including InvalidArgument, which
    // signals a misconfiguration the caller should hear about — fails the
    // warm-up.
    if (built.status().code() == Status::Code::kFailedPrecondition) continue;
    return built.status();
  }
  return Status::OK();
}

std::vector<std::string> MalivaService::RegisteredStrategies() const {
  return RewriterFactory::Global().KnownStrategies();
}

namespace {

/// Builds the response a cached decision replays: the entry's bytes —
/// strategy, outcome, option, fallback flag, stats template — plus a fresh
/// SQL rendering against the hitting request's own query (requests within
/// one fingerprint bin keep their own literals) and the hit/coalesced
/// stamps. serve_wall_ms is stamped by ServeIndexed like any response.
RewriteResponse ReplayCached(const CachedRewrite& cached, const Query& query,
                             bool coalesced) {
  RewriteResponse resp;
  resp.strategy = cached.strategy;
  resp.outcome = cached.outcome;
  resp.option = cached.option;
  resp.exact_fallback = cached.exact_fallback;
  resp.stats = cached.stats;
  // A breakdown describes the request that measured it: replays must not
  // inherit the original miss's profile (the hit path stamps its own partial
  // breakdown when this request is itself profiled).
  resp.stats.profile.reset();
  resp.stats.result_cache_hit = true;
  resp.stats.result_cache_coalesced = coalesced;
  resp.rewritten_sql = cached.option != nullptr
                           ? RewrittenQuery{&query, *cached.option}.ToString()
                           : query.ToString();
  return resp;
}

/// Aborts a leader's in-flight slot on error-path returns between Begin and
/// Publish, so followers wake up and compute solo instead of blocking on a
/// leader that will never publish.
struct FlightAbortGuard {
  RewriteResultCache* cache = nullptr;
  const RewriteResultCache::Ticket* ticket = nullptr;
  uint64_t key = 0;
  bool armed = false;

  void Disarm() { armed = false; }
  ~FlightAbortGuard() {
    if (armed) cache->Abort(*ticket, key);
  }
};

/// Request validation: reject malformed inputs before touching any strategy.
Status ValidateRequest(const RewriteRequest& request) {
  if (request.query == nullptr) {
    return Status::InvalidArgument("RewriteRequest.query must not be null");
  }
  if (request.tau_ms.has_value() && !(*request.tau_ms > 0.0)) {
    return Status::InvalidArgument(
        "per-request tau_ms must be positive (got non-positive or NaN)");
  }
  if (request.quality_floor.has_value() &&
      !(*request.quality_floor >= 0.0 && *request.quality_floor <= 1.0)) {
    return Status::InvalidArgument(
        "quality_floor must be within [0, 1] (got out-of-range or NaN)");
  }
  return Status::OK();
}

}  // namespace

Result<RewriteResponse> MalivaService::Serve(const RewriteRequest& request) const {
  return ServeIndexed(request, 0);
}

std::optional<RewriteResponse> MalivaService::TryServeCached(
    const RewriteRequest& request) const {
  RewriteResultCache* rcache = state_.result_cache.get();
  if (rcache == nullptr || !config_status_.ok()) return std::nullopt;
  if (!ValidateRequest(request).ok()) return std::nullopt;

  auto wall_start = std::chrono::steady_clock::now();
  const std::string& name =
      request.strategy.empty() ? config_.default_strategy : request.strategy;
  // Probe-only discipline: resolving the default tau needs the strategy, but
  // building one here would drag the admission plane through training. A
  // cold strategy is simply a miss — the serve path builds it as usual.
  const Rewriter* strategy = FindBuiltRewriter(name);
  if (strategy == nullptr) return std::nullopt;
  double tau = request.tau_ms.value_or(strategy->default_tau_ms());

  CanonicalQuery canonical = Canonicalize(*request.query, signature_options_);
  uint64_t epoch = scenario_->engine->catalog_version();
  ContinualTrainer* online = state_.continual_trainer.get();
  const char* agent_key = online != nullptr ? OnlineAgentKeyFor(name) : nullptr;
  uint64_t snapshot_version = 0;
  if (agent_key != nullptr) {
    PublishedModel model = online->Current(agent_key);
    if (model) snapshot_version = model.snapshot->meta().version;
  }
  uint64_t fingerprint = MakeRequestFingerprint(canonical.signature, name, tau,
                                                request.quality_floor,
                                                fingerprint_options_)
                             .value;
  std::optional<CachedRewrite> cached =
      rcache->Probe(fingerprint, epoch, snapshot_version);
  if (!cached.has_value()) return std::nullopt;

  RewriteResponse resp =
      ReplayCached(*cached, *request.query, /*coalesced=*/false);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  resp.stats.serve_wall_ms = wall_ms;
  telemetry_.RecordServedCached(resp.exact_fallback, wall_ms);
  RecordServedMetrics(resp, wall_ms);
  return resp;
}

uint64_t MalivaService::FingerprintRequest(const RewriteRequest& request) const {
  // Cold-path mirror of TryServeCached's key derivation, minus the probe:
  // the trace ring stamps this onto events so offline analysis can join a
  // request's trace line against the result-cache decision context. 0 when
  // the context is unresolvable (invalid request, misconfiguration, or a
  // strategy not yet built — fingerprinting must never train one).
  if (!config_status_.ok() || !ValidateRequest(request).ok()) return 0;
  const std::string& name =
      request.strategy.empty() ? config_.default_strategy : request.strategy;
  const Rewriter* strategy = FindBuiltRewriter(name);
  double tau = request.tau_ms.has_value() ? *request.tau_ms
               : strategy != nullptr      ? strategy->default_tau_ms()
                                          : scenario_->config.tau_ms;
  CanonicalQuery canonical = Canonicalize(*request.query, signature_options_);
  return MakeRequestFingerprint(canonical.signature, name, tau,
                                request.quality_floor, fingerprint_options_)
      .value;
}

void MalivaService::RecordServedMetrics(const RewriteResponse& response,
                                        double wall_ms) const {
  const ServeMetrics& m = serve_metrics_;
  if (m.requests_ok == nullptr) return;  // metrics off — the only check paid
  m.requests_ok->Increment();
  m.serve_latency->Record(wall_ms);
  if (response.exact_fallback) m.exact_fallbacks->Increment();
  if (response.stats.result_cache_hit) {
    m.cache_hits->Increment();
    if (response.stats.result_cache_coalesced) m.cache_coalesced->Increment();
    // A replayed decision did no selectivity work of its own (the template's
    // rung split was billed when the original miss served).
    return;
  }
  if (state_.result_cache != nullptr) m.cache_misses->Increment();
  m.tier_shared->Increment(response.stats.selectivity_tier_hits[0]);
  m.tier_histogram->Increment(response.stats.selectivity_tier_hits[1]);
  m.tier_probe->Increment(response.stats.selectivity_tier_hits[2]);
}

void MalivaService::RecordErrorMetrics(double wall_ms) const {
  const ServeMetrics& m = serve_metrics_;
  if (m.requests_error == nullptr) return;
  m.requests_error->Increment();
  m.serve_latency->Record(wall_ms);
}

Result<RewriteResponse> MalivaService::ServeIndexed(const RewriteRequest& request,
                                                    uint64_t request_index) const {
  // Telemetry wrapper: time the request on the host wall clock (the one
  // quantity virtual time cannot provide) and fold its accounting into the
  // service counters, errors included.
  auto wall_start = std::chrono::steady_clock::now();
  Result<RewriteResponse> result = ServeImpl(request, request_index);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  if (result.ok()) {
    RewriteResponse& resp = result.value();
    resp.stats.serve_wall_ms = wall_ms;
    if (resp.stats.result_cache_hit) {
      // A replayed decision: its selectivity counters are the template of
      // the miss that computed it, already folded in when that miss served.
      // Count the request without re-billing work nobody did.
      telemetry_.RecordServedCached(resp.exact_fallback, wall_ms);
    } else {
      telemetry_.RecordServed(resp.stats.selectivities_collected,
                              resp.stats.shared_hits, resp.stats.shared_published,
                              resp.stats.selectivity_tier_hits[1],
                              resp.stats.selectivity_tier_hits[2],
                              resp.exact_fallback, wall_ms);
    }
    RecordServedMetrics(resp, wall_ms);
  } else {
    telemetry_.RecordError(wall_ms);
    RecordErrorMetrics(wall_ms);
  }
  return result;
}

Result<RewriteResponse> MalivaService::ServeImpl(const RewriteRequest& request,
                                                 uint64_t request_index) const {
  MALIVA_RETURN_NOT_OK(config_status_);
  MALIVA_RETURN_NOT_OK(ValidateRequest(request));

  const std::string& name =
      request.strategy.empty() ? config_.default_strategy : request.strategy;
  Result<const Rewriter*> rewriter = GetRewriter(name);
  if (!rewriter.ok()) return rewriter.status();
  const Rewriter& strategy = *rewriter.value();

  // All mutable per-request state lives here; the strategy objects stay
  // shared-immutable across threads.
  RewriteSession session(RewriteSession::SeedFor(session_seed_base_, request_index));
  double tau = request.tau_ms.value_or(strategy.default_tau_ms());

  // Measurement plane (ISSUE 9): a sampled request gets a stack-owned
  // profiler bound to its session. `prof == nullptr` is the off path — no
  // clock is ever read there, and the breakdown never feeds back into any
  // decision, so responses stay byte-identical either way.
  std::optional<QueryProfiler> profiler_storage;
  QueryProfiler* prof = nullptr;
  if (config_.profile_requests &&
      request_index % config_.profile_sample_every == 0) {
    profiler_storage.emplace(&QueryProfiler::WallClockMs);
    prof = &*profiler_storage;
    session.BindProfiler(prof);
  }

  // Knowledge plane: canonicalize the query and bind the shared store so the
  // session's episode caches start pre-seeded with the selectivities earlier
  // requests collected. The epoch pins the store's entries to the current
  // statistics ground truth (catalog changes read as a cold store). The
  // canonical form is computed once and shared with the result cache below.
  SharedSelectivityStore* store = state_.shared_store.get();
  RewriteResultCache* rcache = state_.result_cache.get();
  CanonicalQuery canonical;
  uint64_t epoch = 0;
  if (store != nullptr || rcache != nullptr) {
    ProfilerSimpleGuard span(prof, QueryProfiler::kSignature);
    canonical = Canonicalize(*request.query, signature_options_);
    epoch = scenario_->engine->catalog_version();
  }
  if (store != nullptr) {
    session.BindSharedStore(store, &canonical.slot_keys, epoch);
  }

  // Online learning plane: serve the strategy's newest published snapshot
  // instead of its frozen construction-time weights, and capture the
  // episode's transitions for the feedback path. The shared_ptr keeps the
  // snapshot alive for the whole call even if a retrain publishes (or an
  // operator rolls back) mid-request. The snapshot is fetched *before* the
  // cache probe: its version is a key-context component, so a hit is only
  // ever served against the exact weights that would serve the miss.
  ContinualTrainer* online = state_.continual_trainer.get();
  const char* agent_key = online != nullptr ? OnlineAgentKeyFor(name) : nullptr;
  PublishedModel model;
  if (agent_key != nullptr) model = online->Current(agent_key);
  const uint64_t snapshot_version = model ? model.snapshot->meta().version : 0;

  // Decision tier: replay a resident decision, follow an in-flight leader's
  // search, or lead (publish on the way out). Hits skip QTE, agent, and the
  // whole episode; they also record no online feedback — the decision's
  // transitions were observed once, when the miss computed them.
  uint64_t fingerprint = 0;
  RewriteResultCache::Ticket ticket;
  FlightAbortGuard abort_guard;
  if (rcache != nullptr) {
    // The probe span covers fingerprinting, Begin, and a follower's wait on
    // its leader; on a replayed decision the whole span is inherited work
    // (AddCachedMs) and the response carries the partial breakdown measured
    // so far — the replay itself does no search to bill.
    if (prof != nullptr) prof->StartTimer(QueryProfiler::kCacheProbe);
    fingerprint = MakeRequestFingerprint(canonical.signature, name, tau,
                                         request.quality_floor,
                                         fingerprint_options_)
                      .value;
    ticket = rcache->Begin(fingerprint, epoch, snapshot_version);
    if (ticket.role == RewriteResultCache::Role::kHit) {
      if (prof != nullptr) {
        prof->AddCachedMs(QueryProfiler::kCacheProbe,
                          prof->StopTimer(QueryProfiler::kCacheProbe));
      }
      RewriteResponse hit =
          ReplayCached(*ticket.value, *request.query, /*coalesced=*/false);
      if (prof != nullptr) hit.stats.profile = prof->Snapshot();
      return hit;
    }
    if (ticket.role == RewriteResultCache::Role::kFollower) {
      std::optional<CachedRewrite> led = rcache->WaitForLeader(ticket);
      if (led.has_value()) {
        if (prof != nullptr) {
          prof->AddCachedMs(QueryProfiler::kCacheProbe,
                            prof->StopTimer(QueryProfiler::kCacheProbe));
        }
        RewriteResponse coalesced =
            ReplayCached(*led, *request.query, /*coalesced=*/true);
        if (prof != nullptr) coalesced.stats.profile = prof->Snapshot();
        return coalesced;
      }
      ticket = RewriteResultCache::Ticket{};  // leader aborted: compute solo
    }
    if (prof != nullptr) prof->StopTimer(QueryProfiler::kCacheProbe);
    abort_guard = FlightAbortGuard{rcache, &ticket, fingerprint,
                                   ticket.role == RewriteResultCache::Role::kLeader};
  }

  if (model) {
    session.BindAgentOverride(model.agent.get());
    session.set_capture_transitions(true);
  }

  RewriteResponse resp;
  resp.strategy = name;
  if (prof != nullptr) prof->StartTimer(QueryProfiler::kSearch);
  resp.outcome = strategy.RewriteForSession(*request.query, tau, session);
  resp.option = strategy.DecidedOption(resp.outcome);

  if (request.quality_floor.has_value() &&
      resp.outcome.quality < *request.quality_floor) {
    // The strategy's pick is below the floor: guarantee quality 1 by serving
    // the original query unhinted (possibly sacrificing viability). The first
    // attempt's planning time was really spent, so it stays on the bill —
    // same accounting the two-stage rewriter uses for its stage hand-off.
    // A cold "baseline" builds (trains) here — that is warm-up, not search,
    // so the search span pauses around the lookup.
    bool paused = prof != nullptr && prof->Pause(QueryProfiler::kSearch);
    Result<const Rewriter*> exact = GetRewriter("baseline");
    if (paused) prof->Resume(QueryProfiler::kSearch);
    if (!exact.ok()) return exact.status();
    session.ChargeAbandonedAttempt(resp.outcome.planning_ms, resp.outcome.steps);
    session.set_exact_fallback(true);
    resp.strategy = "baseline";
    resp.outcome = exact.value()->RewriteForSession(*request.query, tau, session);
    resp.outcome.planning_ms += session.abandoned_planning_ms();
    resp.outcome.total_ms += session.abandoned_planning_ms();
    resp.outcome.steps += session.abandoned_steps();
    resp.outcome.viable = resp.outcome.total_ms <= tau;
    resp.option = exact.value()->DecidedOption(resp.outcome);
  }
  if (prof != nullptr) prof->StopTimer(QueryProfiler::kSearch);
  resp.exact_fallback = session.exact_fallback();

  // Knowledge-plane accounting: shared hits were pre-seeded into the
  // session's caches, everything else collected there was paid for by this
  // request and is published back for the fleet. Publish is first-writer-
  // wins, so re-publishing seeded slots is a no-op and does not count.
  size_t total_collected = 0;
  size_t histogram_hits = 0;
  size_t probes = 0;
  for (const SelectivityCache& cache : session.caches()) {
    total_collected += cache.NumCollected();
    histogram_hits += cache.histogram_hits();
    probes += cache.probes();
  }
  resp.stats.shared_hits = session.shared_seeded();
  resp.stats.selectivities_collected =
      total_collected - std::min(total_collected, session.shared_seeded());
  // Ladder accounting, rung by rung: shared seeds, histogram answers, probes.
  resp.stats.selectivity_tier_hits[0] = session.shared_seeded();
  resp.stats.selectivity_tier_hits[1] = histogram_hits;
  resp.stats.selectivity_tier_hits[2] = probes;
  if (store != nullptr) {
    ProfilerSimpleGuard span(prof, QueryProfiler::kPublish);
    for (const SelectivityCache& cache : session.caches()) {
      if (cache.num_slots() != canonical.slot_keys.size()) continue;
      for (size_t slot = 0; slot < cache.num_slots(); ++slot) {
        if (!cache.Has(slot)) continue;
        if (store->Publish(canonical.slot_keys[slot], epoch, cache.Get(slot))) {
          ++resp.stats.shared_published;
        }
      }
    }
  }

  // Online feedback: hand the observed transitions to the replay sink in one
  // batch and stamp the snapshot version that produced the final decision.
  // A quality-floor fallback was re-served by the frozen "baseline"
  // strategy, so the stamp stays 0 there (the documented frozen-weights
  // value) — but the abandoned MDP attempt's transitions are still real
  // observed feedback and are recorded either way.
  if (model) {
    if (!resp.exact_fallback) {
      resp.stats.agent_snapshot_version = model.snapshot->meta().version;
    }
    if (!session.transitions().empty()) {
      online->Record(agent_key, session.TakeTransitions());
    }
  }

  {
    ProfilerSimpleGuard span(prof, QueryProfiler::kRender);
    resp.rewritten_sql =
        resp.option != nullptr
            ? RewrittenQuery{request.query, *resp.option}.ToString()
            : request.query->ToString();
  }

  // Decision tier, publish side: the completed search becomes this context's
  // cached entry (leader resolution wakes any coalesced followers with it).
  // The stats captured here are the entry's replay template — hit flags and
  // the wall clock are per-request and still zero at this point.
  if (rcache != nullptr) {
    ProfilerSimpleGuard span(prof, QueryProfiler::kPublish);
    abort_guard.Disarm();
    CachedRewrite cached;
    cached.strategy = resp.strategy;
    cached.outcome = resp.outcome;
    cached.option = resp.option;
    cached.exact_fallback = resp.exact_fallback;
    cached.stats = resp.stats;
    rcache->Publish(ticket, fingerprint, epoch, snapshot_version,
                    std::move(cached));
  }
  if (prof != nullptr) resp.stats.profile = prof->Snapshot();
  return resp;
}

ServiceStats MalivaService::Stats() const {
  ServiceStats stats = telemetry_.Snapshot();
  // store_* fields stay identically zero while the plane is off (the
  // documented ServiceStats contract).
  if (state_.shared_store != nullptr) {
    stats.store_size = state_.shared_store->Size();
    stats.store_evictions = state_.shared_store->Evictions();
    stats.store_epoch = scenario_->engine->catalog_version();
  }
  // histogram_* tier-health fields stay identically zero while the tier is
  // off; the per-rung hit counters above are recorded unconditionally.
  if (state_.selectivity_tier != nullptr) {
    SelectivityTier::Stats tier = state_.selectivity_tier->Snapshot();
    stats.histogram_mean_abs_rel_error = tier.mean_abs_rel_error;
    stats.histogram_error_samples = tier.error_samples;
    stats.histogram_demoted_columns = tier.demoted_columns;
  }
  // result_cache_* fields stay identically zero while the cache is off
  // (the documented ServiceStats contract, mirroring the store_* fields).
  if (state_.result_cache != nullptr) {
    RewriteResultCache::Stats cache = state_.result_cache->Snapshot();
    stats.result_cache_hits = cache.hits;
    stats.result_cache_misses = cache.misses;
    stats.result_cache_coalesced = cache.coalesced;
    stats.result_cache_evictions = cache.evictions;
    stats.result_cache_stale_declines = cache.stale_declines;
    stats.result_cache_size = cache.size;
  }
  // online_* fields stay identically zero while the plane is off (the
  // documented ServiceStats contract, mirroring the store_* fields).
  if (state_.continual_trainer != nullptr) {
    ContinualTrainer::StatsSnapshot online = state_.continual_trainer->Snapshot();
    stats.online_transitions = online.transitions_recorded;
    stats.online_transitions_dropped = online.transitions_dropped;
    stats.online_transitions_pending = online.transitions_pending;
    stats.online_retrains = online.retrains_published;
    stats.online_rejected = online.retrains_rejected;
    stats.online_snapshot_version = online.snapshot_version;
    stats.last_retrain_reward_pre = online.last_reward_pre;
    stats.last_retrain_reward_post = online.last_reward_post;
  }
  // Gauge refresh (metrics on only): gauges mirror plane sizes at snapshot
  // time, so they update where the sizes are read — Stats() and the fleet's
  // flusher both route through here.
  if (metrics_registry_ != nullptr) {
    serve_metrics_.result_cache_entries->Set(
        static_cast<int64_t>(stats.result_cache_size));
    serve_metrics_.shared_store_entries->Set(static_cast<int64_t>(stats.store_size));
    serve_metrics_.agent_snapshot_version->Set(
        static_cast<int64_t>(stats.online_snapshot_version));
  }
  return stats;
}

size_t MalivaService::ResolvedNumThreads() const {
  return config_.num_threads == 0 ? ThreadPool::DefaultThreads()
                                  : config_.num_threads;
}

ThreadPool& MalivaService::Pool() const {
  // One pool per service, created on the first parallel batch and reused —
  // per-call thread spawn/join would dominate the microsecond-scale planning
  // work of small batches.
  std::call_once(pool_once_,
                 [this] { pool_ = std::make_unique<ThreadPool>(ResolvedNumThreads()); });
  return *pool_;
}

std::vector<Result<RewriteResponse>> MalivaService::ServeBatch(
    std::span<const RewriteRequest> requests) const {
  // Build phase first: warm every strategy the batch names (plus the exact
  // fallback when a quality floor may trigger it), in first-appearance
  // order, so serve-phase workers never contend on the build lock. Training
  // is seeded per agent key, so build order cannot change any result; build
  // failures are not cached and re-surface per request below.
  std::vector<std::string> needed;
  auto want = [&needed](const std::string& name) {
    for (const std::string& have : needed) {
      if (have == name) return;
    }
    needed.push_back(name);
  };
  for (const RewriteRequest& request : requests) {
    want(request.strategy.empty() ? config_.default_strategy : request.strategy);
    if (request.quality_floor.has_value()) want("baseline");
  }
  for (const std::string& name : needed) {
    (void)GetRewriter(name);  // failure handled per request
  }

  // In-batch dedup (result cache on only): members sharing one decision
  // context are grouped behind their first occurrence, so N copies of a
  // query cost one search plus N-1 replays — without even enqueueing N
  // blocked pool tasks for the single-flight protocol to coalesce. The
  // pre-pass runs after the build phase, so default taus resolve without
  // triggering training; anything unresolvable (invalid request, cold
  // strategy) stays unique and serves normally.
  RewriteResultCache* rcache = state_.result_cache.get();
  constexpr size_t kUnique = static_cast<size_t>(-1);
  std::vector<size_t> replay_of(requests.size(), kUnique);
  if (rcache != nullptr) {
    std::unordered_map<uint64_t, size_t> first_by_key;
    first_by_key.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const RewriteRequest& req = requests[i];
      if (!ValidateRequest(req).ok()) continue;
      const std::string& name =
          req.strategy.empty() ? config_.default_strategy : req.strategy;
      const Rewriter* strategy = FindBuiltRewriter(name);
      if (strategy == nullptr) continue;
      double tau = req.tau_ms.value_or(strategy->default_tau_ms());
      CanonicalQuery canonical = Canonicalize(*req.query, signature_options_);
      uint64_t fp = MakeRequestFingerprint(canonical.signature, name, tau,
                                           req.quality_floor,
                                           fingerprint_options_)
                        .value;
      auto [it, inserted] = first_by_key.emplace(fp, i);
      if (!inserted) replay_of[i] = it->second;
    }
  }

  // Serve phase: fan out over the pool (or run inline when sequential).
  // Responses land in their request's slot, so ordering is preserved no
  // matter how threads interleave. Dedup followers are skipped here and
  // replayed from their leader's slot afterwards.
  std::vector<std::optional<Result<RewriteResponse>>> slots(requests.size());
  auto serve_one = [this, &slots, &requests, &replay_of](size_t i) {
    if (replay_of[i] != kUnique) return;
    slots[i] = ServeIndexed(requests[i], i);
  };
  if (std::min(ResolvedNumThreads(), requests.size()) <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) serve_one(i);
  } else {
    Pool().ParallelFor(requests.size(), serve_one);
  }

  // Replay phase: each follower copies its leader's decision bytes, renders
  // SQL against its own query, and stamps hit+coalesced — exactly what a
  // cache hit on the published entry would produce, minus the map probe.
  for (size_t i = 0; i < requests.size(); ++i) {
    if (replay_of[i] == kUnique) continue;
    auto wall_start = std::chrono::steady_clock::now();
    const Result<RewriteResponse>& led = *slots[replay_of[i]];
    if (!led.ok()) {
      // The leader's error is this context's answer (identical requests fail
      // identically); replaying it keeps per-slot outcomes consistent.
      telemetry_.RecordError(0.0);
      RecordErrorMetrics(0.0);
      slots[i] = led.status();
      continue;
    }
    RewriteResponse resp = ReplayCached(
        CachedRewrite{led.value().strategy, led.value().outcome,
                      led.value().option, led.value().exact_fallback,
                      led.value().stats},
        *requests[i].query, /*coalesced=*/true);
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    resp.stats.serve_wall_ms = wall_ms;
    telemetry_.RecordServedCached(resp.exact_fallback, wall_ms);
    RecordServedMetrics(resp, wall_ms);
    rcache->NoteCoalesced(1);
    slots[i] = std::move(resp);
  }

  std::vector<Result<RewriteResponse>> responses;
  responses.reserve(requests.size());
  for (std::optional<Result<RewriteResponse>>& slot : slots) {
    assert(slot.has_value());
    responses.push_back(std::move(*slot));
  }
  return responses;
}

std::unique_ptr<QAgent> MalivaService::TrainAgentOn(
    const std::vector<const Query*>& workload, uint64_t seed,
    std::vector<Trainer::IterationStats>* history) const {
  RewriterEnv renv = MakeEnv(state_.accurate_qte.get());
  TrainerConfig tc = config_.trainer;
  tc.seed = seed;
  Trainer trainer(renv, tc);
  std::unique_ptr<QAgent> agent = trainer.Train(workload);
  if (history != nullptr) *history = trainer.history();
  return agent;
}

double MalivaService::EvaluateAgentVqp(
    const QAgent& agent, const std::vector<const Query*>& workload) const {
  if (workload.empty()) return 0.0;
  RewriterEnv renv = MakeEnv(state_.accurate_qte.get());
  size_t viable = 0;
  for (const Query* q : workload) {
    RewriteOutcome out = RunGreedyEpisode(renv, agent, *q);
    viable += out.viable ? 1 : 0;
  }
  return 100.0 * static_cast<double>(viable) / static_cast<double>(workload.size());
}

// ---------------------------------------------------------------------------
// Built-in strategies.
// ---------------------------------------------------------------------------

namespace {

/// Cheap pre-check mirroring TrainedAgent's failure conditions, so builders
/// can bail out before interning option sets (failed builds are not cached;
/// a retrying caller must not grow interned_options on every attempt).
Status CanTrainAgents(MalivaService& s) {
  if (s.config().num_agent_seeds == 0) {
    return Status::FailedPrecondition("cannot train agents: num_agent_seeds is 0");
  }
  if (s.scenario()->train.empty()) {
    return Status::FailedPrecondition(
        "cannot train agents: scenario has no training split");
  }
  return Status::OK();
}

Status ValidateApproxRules(const std::vector<ApproxRule>& rules) {
  if (rules.empty()) {
    return Status::FailedPrecondition(
        "quality-aware strategies need ServiceConfig.approx_rules");
  }
  for (const ApproxRule& rule : rules) {
    if (!rule.IsApproximate()) {
      return Status::InvalidArgument(
          "approx_rules must contain approximate rules only");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<Rewriter>> BuildBaseline(MalivaService& s) {
  return std::unique_ptr<Rewriter>(std::make_unique<BaselineRewriter>(
      s.scenario()->engine.get(), s.scenario()->oracle.get(),
      s.scenario()->config.tau_ms));
}

Result<std::unique_ptr<Rewriter>> BuildNaive(MalivaService& s) {
  return std::unique_ptr<Rewriter>(std::make_unique<NaiveRewriter>(
      s.MakeEnv(s.sampling_qte()), "Naive (Approx-QTE)"));
}

Result<std::unique_ptr<Rewriter>> BuildMdpAccurate(MalivaService& s) {
  RewriterEnv renv = s.MakeEnv(s.accurate_qte());
  Result<const QAgent*> agent = s.TrainedAgent(kAgentKeyExactAccurate, renv);
  if (!agent.ok()) return agent.status();
  return std::unique_ptr<Rewriter>(std::make_unique<MalivaRewriter>(
      renv, agent.value(), "MDP (Accurate-QTE)"));
}

Result<std::unique_ptr<Rewriter>> BuildMdpSampling(MalivaService& s) {
  RewriterEnv renv = s.MakeEnv(s.sampling_qte());
  Result<const QAgent*> agent = s.TrainedAgent(kAgentKeyExactSampling, renv);
  if (!agent.ok()) return agent.status();
  return std::unique_ptr<Rewriter>(std::make_unique<MalivaRewriter>(
      renv, agent.value(), "MDP (Approx-QTE)"));
}

Result<std::unique_ptr<Rewriter>> BuildBao(MalivaService& s) {
  Result<const BaoQte*> qte = s.TrainedBaoQte();
  if (!qte.ok()) return qte.status();
  return std::unique_ptr<Rewriter>(std::make_unique<BaoRewriter>(
      s.scenario()->engine.get(), s.scenario()->oracle.get(),
      &s.scenario()->options, qte.value(), s.scenario()->config.tau_ms,
      s.config().bao_per_plan_cost_ms));
}

Result<std::unique_ptr<Rewriter>> BuildOneStageQuality(MalivaService& s) {
  const std::vector<ApproxRule>& rules = s.config().approx_rules;
  MALIVA_RETURN_NOT_OK(ValidateApproxRules(rules));
  MALIVA_RETURN_NOT_OK(CanTrainAgents(s));
  const RewriteOptionSet* options = s.InternOptionSet(
      CrossWithApproxRules(s.scenario()->options, rules, /*include_exact=*/true));
  RewriterEnv renv = s.MakeEnv(s.accurate_qte(), s.config().beta, options);
  Result<const QAgent*> agent = s.TrainedAgent(kAgentKeyQualityOneStage, renv);
  if (!agent.ok()) return agent.status();
  return std::unique_ptr<Rewriter>(std::make_unique<MalivaRewriter>(
      renv, agent.value(), "1-stage MDP (Accu-QTE)"));
}

Result<std::unique_ptr<Rewriter>> BuildTwoStageQuality(MalivaService& s) {
  const std::vector<ApproxRule>& rules = s.config().approx_rules;
  MALIVA_RETURN_NOT_OK(ValidateApproxRules(rules));
  MALIVA_RETURN_NOT_OK(CanTrainAgents(s));

  // Stage 1: exact options with the efficiency-only reward; the agent is
  // shared with "mdp/accurate".
  RewriterEnv exact_env = s.MakeEnv(s.accurate_qte());
  Result<const QAgent*> exact_agent = s.TrainedAgent(kAgentKeyExactAccurate, exact_env);
  if (!exact_agent.ok()) return exact_agent.status();

  // Stage 2: approximate combinations with the quality-aware reward.
  const RewriteOptionSet* approx_options = s.InternOptionSet(
      CrossWithApproxRules(s.scenario()->options, rules, /*include_exact=*/false));
  RewriterEnv approx_env = s.MakeEnv(s.accurate_qte(), s.config().beta, approx_options);
  Result<const QAgent*> approx_agent =
      s.TrainedAgent(kAgentKeyQualityTwoStage, approx_env);
  if (!approx_agent.ok()) return approx_agent.status();

  return std::unique_ptr<Rewriter>(std::make_unique<TwoStageRewriter>(
      exact_env, exact_agent.value(), approx_env, approx_agent.value(),
      "2-stage MDP (Accu-QTE)"));
}

}  // namespace

void RegisterBuiltinStrategies(RewriterFactory& factory) {
  auto add = [&factory](const char* name, RewriterFactory::Builder builder) {
    Status st = factory.Register(name, std::move(builder));
    assert(st.ok());
    (void)st;
  };
  add("baseline", BuildBaseline);
  add("naive", BuildNaive);
  add("mdp/accurate", BuildMdpAccurate);
  add("mdp/sampling", BuildMdpSampling);
  add("bao", BuildBao);
  add("quality/one-stage", BuildOneStageQuality);
  add("quality/two-stage", BuildTwoStageQuality);
}

}  // namespace maliva
