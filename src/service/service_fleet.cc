#include "service/service_fleet.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "service/deadline_scheduler.h"
#include "util/thread_pool.h"

namespace maliva {

Status FleetConfig::Validate() const {
  // The shard-level chokepoint already guards every ServiceConfig knob; the
  // fleet adds only its own thread counts (same wrap-around rationale).
  MALIVA_RETURN_NOT_OK(defaults.Validate());
  if (num_threads > ServiceConfig::kMaxNumThreads) {
    return Status::InvalidArgument(
        "fleet num_threads must be <= " +
        std::to_string(ServiceConfig::kMaxNumThreads) + " (got " +
        std::to_string(num_threads) + "; likely an unsigned wrap-around)");
  }
  if (warmup_threads > ServiceConfig::kMaxNumThreads) {
    return Status::InvalidArgument(
        "warmup_threads must be <= " +
        std::to_string(ServiceConfig::kMaxNumThreads) + " (got " +
        std::to_string(warmup_threads) + "; likely an unsigned wrap-around)");
  }
  MALIVA_RETURN_NOT_OK(admission.Validate());
  if (metrics_flush_ms > 0 && !defaults.metrics) {
    return Status::InvalidArgument(
        "metrics_flush_ms requires defaults.metrics (there is no registry to "
        "snapshot)");
  }
  if (slo_watchdog) {
    if (metrics_flush_ms == 0) {
      return Status::InvalidArgument(
          "slo_watchdog requires metrics_flush_ms > 0 (the burn is evaluated "
          "over the flusher's windows)");
    }
    if (!admission.enabled) {
      return Status::InvalidArgument(
          "slo_watchdog requires admission.enabled (it reads the gate's "
          "verdict counters)");
    }
    if (!(slo_target_hit_rate > 0.0) || !(slo_target_hit_rate <= 1.0)) {
      return Status::InvalidArgument(
          "slo_target_hit_rate must be within (0, 1]");
    }
    if (slo_window_count == 0 || slo_window_count > 64) {
      return Status::InvalidArgument(
          "slo_window_count must be within [1, 64] (the flusher retains at "
          "most 64 windows)");
    }
    if (slo_min_requests == 0) {
      return Status::InvalidArgument(
          "slo_min_requests must be >= 1 (0 would flag scenarios that served "
          "nothing)");
    }
  }
  return Status::OK();
}

namespace {

/// Folds one shard's counters into the fleet totals. The epoch/last-reward
/// fields are per-shard quantities with no meaningful sum and stay zero;
/// online_snapshot_version carries the fleet-wide max (the headline "newest
/// model anywhere").
void AccumulateInto(ServiceStats& totals, const ServiceStats& shard) {
  totals.requests += shard.requests;
  totals.errors += shard.errors;
  totals.exact_fallbacks += shard.exact_fallbacks;
  totals.selectivities_collected += shard.selectivities_collected;
  totals.shared_hits += shard.shared_hits;
  totals.shared_published += shard.shared_published;
  totals.store_size += shard.store_size;
  totals.store_evictions += shard.store_evictions;
  // Fleet-wide histogram error is the sample-weighted mean of the shard
  // means — each shard's mean already averages over its error_samples.
  double error_mass = totals.histogram_mean_abs_rel_error *
                          static_cast<double>(totals.histogram_error_samples) +
                      shard.histogram_mean_abs_rel_error *
                          static_cast<double>(shard.histogram_error_samples);
  totals.histogram_hits += shard.histogram_hits;
  totals.probe_collections += shard.probe_collections;
  totals.histogram_error_samples += shard.histogram_error_samples;
  totals.histogram_demoted_columns += shard.histogram_demoted_columns;
  totals.histogram_mean_abs_rel_error =
      totals.histogram_error_samples == 0
          ? 0.0
          : error_mass / static_cast<double>(totals.histogram_error_samples);
  totals.result_cache_hits += shard.result_cache_hits;
  totals.result_cache_misses += shard.result_cache_misses;
  totals.result_cache_coalesced += shard.result_cache_coalesced;
  totals.result_cache_evictions += shard.result_cache_evictions;
  totals.result_cache_stale_declines += shard.result_cache_stale_declines;
  totals.result_cache_size += shard.result_cache_size;
  totals.online_transitions += shard.online_transitions;
  totals.online_transitions_dropped += shard.online_transitions_dropped;
  totals.online_transitions_pending += shard.online_transitions_pending;
  totals.online_retrains += shard.online_retrains;
  totals.online_rejected += shard.online_rejected;
  totals.online_snapshot_version =
      std::max(totals.online_snapshot_version, shard.online_snapshot_version);
  totals.admission_admitted += shard.admission_admitted;
  totals.admission_degraded += shard.admission_degraded;
  totals.admission_shed_deadline += shard.admission_shed_deadline;
  totals.admission_shed_overload += shard.admission_shed_overload;
  totals.admission_queue_wait_ms_total += shard.admission_queue_wait_ms_total;
  totals.serve_wall_ms_total += shard.serve_wall_ms_total;
}

}  // namespace

MalivaFleet::MalivaFleet(FleetConfig config)
    : config_(std::move(config)),
      clock_origin_(std::chrono::steady_clock::now()) {
  config_status_ = config_.Validate();
  if (config_status_.ok() && config_.admission.enabled) {
    admission_ = std::make_unique<AdmissionController>(config_.admission);
  }
  if (config_status_.ok() && config_.trace_ring_capacity > 0) {
    trace_ring_ = std::make_unique<TraceRing>(config_.trace_ring_capacity);
  }
  if (config_status_.ok() && config_.metrics_flush_ms > 0) {
    // Constructed last: its thread starts immediately and snapshots the
    // shard registries through `this`, so everything it reads exists first.
    flusher_ = std::make_unique<MetricsFlusher>(
        [this] { return SnapshotMetrics(); }, config_.metrics_flush_ms);
  }
}

MalivaFleet::~MalivaFleet() = default;

size_t MalivaFleet::ResolvedNumThreads() const {
  return config_.num_threads == 0 ? ThreadPool::DefaultThreads()
                                  : config_.num_threads;
}

ThreadPool& MalivaFleet::ServePool() const {
  std::call_once(serve_pool_once_, [this] {
    serve_pool_ = std::make_unique<ThreadPool>(ResolvedNumThreads());
  });
  return *serve_pool_;
}

ThreadPool& MalivaFleet::WarmupPool() const {
  std::call_once(warmup_pool_once_,
                 [this] { warmup_pool_ = std::make_unique<ThreadPool>(config_.warmup_threads); });
  return *warmup_pool_;
}

DeadlineScheduler& MalivaFleet::Scheduler() const {
  std::call_once(scheduler_once_, [this] {
    scheduler_ = std::make_unique<DeadlineScheduler>(ResolvedNumThreads());
    // Lanes for scenarios without an explicit share are created on first
    // submit with the default weight; configured shares are seeded up front.
    for (const ScenarioShare& share : config_.admission.shares) {
      scheduler_->SetShare(share.scenario, share.weight, share.tier);
    }
  });
  return *scheduler_;
}

double MalivaFleet::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - clock_origin_)
      .count();
}

void MalivaFleet::AppendTrace(const Shard& shard, const RewriteRequest& request,
                              const char* verdict,
                              const RewriteResponse* response,
                              double queue_wait_ms) const {
  if (trace_ring_ == nullptr) return;  // off: the one check every path pays
  TraceEvent event;
  event.scenario = shard.id;
  event.verdict = verdict;
  event.fingerprint = shard.service->FingerprintRequest(request);
  event.queue_wait_ms = queue_wait_ms;
  event.cache = "off";  // no response, or the shard serves without a cache
  if (response != nullptr) {
    const RequestStats& stats = response->stats;
    if (shard.service->config().result_cache) {
      event.cache = stats.result_cache_hit
                        ? (stats.result_cache_coalesced ? "coalesced" : "hit")
                        : "miss";
    }
    for (size_t rung = 0; rung < 3; ++rung) {
      event.tier_hits[rung] =
          static_cast<uint64_t>(stats.selectivity_tier_hits[rung]);
    }
    event.snapshot_version = stats.agent_snapshot_version;
    event.serve_ms = stats.serve_wall_ms;
  }
  trace_ring_->Append(std::move(event));
}

MetricsSnapshot MalivaFleet::SnapshotMetrics() const {
  MetricsSnapshot merged;
  for (const std::shared_ptr<Shard>& shard : router_.List()) {
    MetricsRegistry* registry = shard->service->metrics_registry();
    if (registry == nullptr) continue;
    (void)shard->service->Stats();  // refreshes the plane-size gauges
    merged.MergeFrom(registry->Snapshot());
  }
  return merged;
}

Status MalivaFleet::RegisterScenario(const std::string& id, Scenario* scenario) {
  return RegisterScenario(id, scenario, nullptr);
}

Status MalivaFleet::RegisterScenario(const std::string& id, Scenario* scenario,
                                     const std::function<void(ServiceConfig&)>& tune) {
  MALIVA_RETURN_NOT_OK(config_status_);
  // Cheap pre-check before constructing a whole per-scenario stack for an
  // empty/duplicate id; Insert below re-checks under the exclusive lock.
  MALIVA_RETURN_NOT_OK(router_.CheckAvailable(id));
  if (scenario == nullptr) {
    return Status::InvalidArgument("RegisterScenario requires a built scenario");
  }
  // Layer the shard's overrides over the fleet defaults, then re-validate:
  // a bad override is this registration's error, never a latent Serve error.
  ServiceConfig shard_config = config_.defaults;
  if (tune) tune(shard_config);
  // Stamp the routing key as the shard's scenario label (after tune, so an
  // explicit per-shard override wins; before Validate, which rejects a
  // label without metrics).
  if (shard_config.metrics && shard_config.metrics_scenario.empty()) {
    shard_config.metrics_scenario = id;
  }
  MALIVA_RETURN_NOT_OK(shard_config.Validate());

  auto shard = std::make_shared<Shard>(
      id, std::make_unique<MalivaService>(scenario, std::move(shard_config)));
  MALIVA_RETURN_NOT_OK(router_.Insert(shard));

  if (config_.warmup_threads == 0) {
    // No background warm-up: Ready immediately, strategies build lazily on
    // first use (the standalone-service behavior).
    ShardState expected = ShardState::kRegistered;
    shard->state.compare_exchange_strong(expected, ShardState::kReady);
    return Status::OK();
  }
  // Background warm-up on the fleet's own pool: training scenario N+1 never
  // blocks serves on scenarios 1..N (they only share this pool, not locks).
  // The task holds the shard alive even across a concurrent drain + evict.
  WarmupPool().Submit([shard, strategies = config_.warmup_strategies] {
    if (!shard->BeginWarmup()) return;  // drained before the warm-up began
    Status status = strategies.empty()
                        ? shard->service->Warmup()
                        : shard->service->Warmup(strategies);
    shard->set_warmup_status(std::move(status));
    shard->FinishWarmup();
  });
  return Status::OK();
}

Status MalivaFleet::DrainScenario(const std::string& id) {
  MALIVA_RETURN_NOT_OK(config_status_);
  Result<std::shared_ptr<Shard>> shard = router_.Resolve(id);
  if (!shard.ok()) return shard.status();
  shard.value()->Drain();  // idempotent: repeated drains are no-ops
  return Status::OK();
}

Status MalivaFleet::EvictScenario(const std::string& id) {
  MALIVA_RETURN_NOT_OK(config_status_);
  Result<std::shared_ptr<Shard>> shard = router_.Resolve(id);
  if (!shard.ok()) return shard.status();
  if (!shard.value()->draining()) {
    return Status::FailedPrecondition(
        "scenario \"" + id + "\" must be drained before eviction (state: " +
        ShardStateName(shard.value()->state.load()) + ")");
  }
  // Identity-checked removal: if another eviction won the race — even if a
  // fresh shard was re-registered under this id since — the removal must
  // not touch the newcomer. The loser reports NotFound (its shard is gone).
  Result<std::shared_ptr<Shard>> removed = router_.Remove(id, shard.value().get());
  return removed.ok() ? Status::OK() : removed.status();
}

Result<std::shared_ptr<Shard>> MalivaFleet::Route(const std::string& key) const {
  auto fail = [this](Status status) -> Result<std::shared_ptr<Shard>> {
    routing_errors_.fetch_add(1, std::memory_order_relaxed);
    return status;
  };
  if (!config_status_.ok()) return fail(config_status_);

  std::shared_ptr<Shard> shard;
  if (key.empty()) {
    // Single-shard convenience: a fleet hosting exactly one scenario routes
    // key-less requests there, so ported single-service callers need no
    // per-request ceremony. Ambiguous otherwise.
    shard = router_.Sole();
    if (shard == nullptr) {
      return fail(Status::InvalidArgument(
          "request names no scenario and the fleet does not host exactly one "
          "(registered scenarios: " + router_.IdsList() + ")"));
    }
  } else {
    Result<std::shared_ptr<Shard>> resolved = router_.Resolve(key);
    if (!resolved.ok()) return fail(resolved.status());
    shard = std::move(resolved).value();
  }
  if (shard->draining()) {
    return fail(Status::FailedPrecondition(
        "scenario \"" + shard->id + "\" is draining and refuses new requests"));
  }
  return shard;
}

void MalivaFleet::SubmitAdmitted(
    const std::shared_ptr<Shard>& shard, const RewriteRequest& request,
    double arrival_ms, uint64_t shard_index,
    std::function<void(Result<RewriteResponse>)> done) const {
  // Decision-tier fast path, probed *before* the gate: a cache-resident
  // answer costs no scheduler slot and no search, so a flood of duplicate
  // queries must never shed (or degrade) work the cache can answer — nor
  // count toward the backlog the gate sheds on. Hits are admitted verdicts
  // answered inline; the serve-time EWMA is left untouched (an O(1) replay
  // would talk the degrade predictor into admitting searches it cannot
  // afford).
  if (std::optional<RewriteResponse> cached =
          shard->service->TryServeCached(request)) {
    admission_->RecordDecision(shard->id, AdmissionDecision::kAdmit);
    if (const ServeMetrics* sm = shard->service->serve_metrics()) {
      sm->admission_admitted->Increment();
    }
    AppendTrace(*shard, request, "admitted", &*cached, /*queue_wait_ms=*/0.0);
    done(std::move(*cached));
    return;
  }
  const double tau =
      request.tau_ms.value_or(shard->service->scenario()->config.tau_ms);
  const double deadline_ms = admission_->DeadlineFor(arrival_ms, tau);
  DeadlineScheduler& scheduler = Scheduler();
  const AdmissionDecision decision = admission_->Decide(
      arrival_ms, deadline_ms, scheduler.QueueDepth(), scheduler.workers());
  if (decision == AdmissionDecision::kShedDeadline ||
      decision == AdmissionDecision::kShedOverload) {
    admission_->RecordDecision(shard->id, decision);
    const bool deadline_shed = decision == AdmissionDecision::kShedDeadline;
    if (const ServeMetrics* sm = shard->service->serve_metrics()) {
      (deadline_shed ? sm->admission_shed_deadline : sm->admission_shed_overload)
          ->Increment();
    }
    AppendTrace(*shard, request,
                deadline_shed ? "shed_deadline" : "shed_overload",
                /*response=*/nullptr, /*queue_wait_ms=*/0.0);
    done(AdmissionController::ShedStatus(decision, shard->id, arrival_ms,
                                         deadline_ms,
                                         scheduler.QueueDepth()));
    return;
  }

  RewriteRequest effective = request;
  const bool degraded = decision == AdmissionDecision::kDegrade;
  if (degraded) effective.strategy = config_.admission.degrade_strategy;

  // Idempotent share refresh: creates the lane with its configured (or
  // default) weight on the scenario's first admitted request.
  scheduler.SetShare(shard->id, admission_->WeightFor(shard->id),
                     admission_->TierFor(shard->id));
  SchedulerJob job;
  job.deadline_ms = deadline_ms;
  job.scenario = shard->id;
  job.run = [this, shard, effective = std::move(effective), arrival_ms,
             deadline_ms, shard_index, degraded, decision,
             done = std::move(done)]() mutable {
    const double start_ms = NowMs();
    const double queue_wait_ms = std::max(0.0, start_ms - arrival_ms);
    admission_->RecordQueueWait(shard->id, queue_wait_ms);
    const ServeMetrics* sm = shard->service->serve_metrics();
    if (sm != nullptr) sm->queue_wait->Record(queue_wait_ms);
    if (start_ms >= deadline_ms) {
      // Dispatch-time recheck: the job aged out while queued. EDF makes this
      // the request that was *most* entitled to run, so everything behind it
      // is doomed too unless load lets up — shedding now still beats
      // spending a worker on an answer that already missed its budget.
      admission_->RecordDecision(shard->id, AdmissionDecision::kShedDeadline);
      if (sm != nullptr) sm->admission_shed_deadline->Increment();
      AppendTrace(*shard, effective, "shed_deadline", /*response=*/nullptr,
                  queue_wait_ms);
      done(AdmissionController::ShedStatus(AdmissionDecision::kShedDeadline,
                                           shard->id, start_ms, deadline_ms,
                                           Scheduler().QueueDepth()));
      return;
    }
    Result<RewriteResponse> response =
        shard->service->ServeAt(effective, shard_index);
    admission_->RecordDecision(shard->id, decision);
    admission_->RecordServeMs(NowMs() - start_ms);
    if (sm != nullptr) {
      (degraded ? sm->admission_degraded : sm->admission_admitted)->Increment();
    }
    if (response.ok()) {
      response.value().stats.degraded = degraded;
      response.value().stats.queue_wait_ms = queue_wait_ms;
    }
    AppendTrace(*shard, effective,
                response.ok() ? (degraded ? "degraded" : "admitted") : "error",
                response.ok() ? &response.value() : nullptr, queue_wait_ms);
    done(std::move(response));
  };
  scheduler.Submit(std::move(job));
}

Result<RewriteResponse> MalivaFleet::Serve(const RewriteRequest& request) const {
  Result<std::shared_ptr<Shard>> shard = Route(request.scenario);
  if (!shard.ok()) return shard.status();
  if (admission_ == nullptr) {
    Result<RewriteResponse> response = shard.value()->service->Serve(request);
    AppendTrace(*shard.value(), request, response.ok() ? "fifo" : "error",
                response.ok() ? &response.value() : nullptr,
                /*queue_wait_ms=*/0.0);
    return response;
  }

  // Admission path: gate + scheduler, then block until the job (or its
  // inline shed) delivers. One-shot rendezvous owned by shared_ptr because
  // the scheduler worker may outlive this frame only on the shared state.
  struct Pending {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::optional<Result<RewriteResponse>> result;
  };
  auto pending = std::make_shared<Pending>();
  SubmitAdmitted(shard.value(), request, NowMs(), /*shard_index=*/0,
                 [pending](Result<RewriteResponse> response) {
                   std::unique_lock<std::mutex> lock(pending->mutex);
                   pending->result = std::move(response);
                   pending->done = true;
                   pending->cv.notify_all();
                 });
  std::unique_lock<std::mutex> lock(pending->mutex);
  pending->cv.wait(lock, [&pending] { return pending->done; });
  return std::move(*pending->result);
}

Status MalivaFleet::ServeAsync(
    const RewriteRequest& request,
    std::function<void(Result<RewriteResponse>)> done) const {
  MALIVA_RETURN_NOT_OK(config_status_);
  if (admission_ == nullptr) {
    return Status::FailedPrecondition(
        "ServeAsync requires FleetConfig::admission.enabled (the FIFO serve "
        "paths have no completion hook)");
  }
  Result<std::shared_ptr<Shard>> shard = Route(request.scenario);
  if (!shard.ok()) {
    // Routing failures flow through `done` too: the caller always gets
    // exactly one completion per accepted call.
    done(shard.status());
    return Status::OK();
  }
  SubmitAdmitted(shard.value(), request, NowMs(), /*shard_index=*/0,
                 std::move(done));
  return Status::OK();
}

std::vector<Result<RewriteResponse>> MalivaFleet::ServeBatch(
    std::span<const RewriteRequest> requests) const {
  struct Routed {
    std::shared_ptr<Shard> shard;  // null = routing failed, slot holds the Status
    uint64_t shard_index = 0;      // position within the shard's batch slice
  };
  std::vector<std::optional<Result<RewriteResponse>>> slots(requests.size());
  std::vector<Routed> routed(requests.size());

  // Route phase, sequential: per-shard indices depend only on the batch
  // order, so each shard's slice is served at indices 0..k-1 — exactly what
  // that shard's own ServeBatch would use, whatever else is interleaved.
  std::unordered_map<Shard*, uint64_t> shard_counts;
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<std::shared_ptr<Shard>> shard = Route(requests[i].scenario);
    if (!shard.ok()) {
      slots[i] = shard.status();
      continue;
    }
    routed[i].shard_index = shard_counts[shard.value().get()]++;
    routed[i].shard = std::move(shard).value();
  }

  // Build phase: warm every (shard, strategy) pair the batch needs — plus
  // the exact fallback where a quality floor may trigger it — before fanning
  // out, so serve workers never contend on a build lock. Failures are not
  // cached and re-surface per request.
  {
    std::vector<std::pair<Shard*, std::string>> needed;
    auto want = [&needed](Shard* shard, std::string name) {
      for (const auto& [s, n] : needed) {
        if (s == shard && n == name) return;
      }
      needed.emplace_back(shard, std::move(name));
    };
    for (size_t i = 0; i < requests.size(); ++i) {
      if (routed[i].shard == nullptr) continue;
      Shard* shard = routed[i].shard.get();
      want(shard, requests[i].strategy.empty()
                      ? shard->service->config().default_strategy
                      : requests[i].strategy);
      if (requests[i].quality_floor.has_value()) want(shard, "baseline");
      // The admission gate may rewrite any member to the degrade strategy.
      if (admission_ != nullptr && !config_.admission.degrade_strategy.empty()) {
        want(shard, config_.admission.degrade_strategy);
      }
    }
    for (const auto& [shard, name] : needed) {
      (void)shard->service->GetRewriter(name);  // failure handled per request
    }
  }

  if (admission_ != nullptr) {
    // Admission path: every member shares one arrival stamp (the batch
    // arrived together), each routed member passes the gate, and admitted
    // work dispatches EDF through the scheduler. A countdown latch over the
    // slots replaces the ParallelFor barrier; per-shard slice indices are
    // identical to the FIFO path, only (load-dependent) verdicts and
    // dispatch order differ.
    struct BatchState {
      std::mutex mutex;
      std::condition_variable cv;
      size_t remaining = 0;
    };
    auto state = std::make_shared<BatchState>();
    for (const Routed& r : routed) {
      if (r.shard != nullptr) ++state->remaining;
    }
    const double arrival_ms = NowMs();
    for (size_t i = 0; i < requests.size(); ++i) {
      if (routed[i].shard == nullptr) continue;
      SubmitAdmitted(routed[i].shard, requests[i], arrival_ms,
                     routed[i].shard_index,
                     [state, &slots, i](Result<RewriteResponse> response) {
                       std::unique_lock<std::mutex> lock(state->mutex);
                       slots[i] = std::move(response);
                       if (--state->remaining == 0) state->cv.notify_all();
                     });
    }
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&state] { return state->remaining == 0; });
  } else {
    // Serve phase: one fan-out over the shared fleet pool, all shards at
    // once.
    auto serve_one = [this, &slots, &routed, &requests](size_t i) {
      if (routed[i].shard == nullptr) return;  // routing error already recorded
      slots[i] =
          routed[i].shard->service->ServeAt(requests[i], routed[i].shard_index);
      const Result<RewriteResponse>& response = *slots[i];
      AppendTrace(*routed[i].shard, requests[i],
                  response.ok() ? "fifo" : "error",
                  response.ok() ? &response.value() : nullptr,
                  /*queue_wait_ms=*/0.0);
    };
    if (std::min(ResolvedNumThreads(), requests.size()) <= 1) {
      for (size_t i = 0; i < requests.size(); ++i) serve_one(i);
    } else {
      ServePool().ParallelFor(requests.size(), serve_one);
    }
  }

  std::vector<Result<RewriteResponse>> responses;
  responses.reserve(requests.size());
  for (std::optional<Result<RewriteResponse>>& slot : slots) {
    assert(slot.has_value());
    responses.push_back(std::move(*slot));
  }
  return responses;
}

std::vector<ScenarioInfo> MalivaFleet::ListScenarios() const {
  std::vector<ScenarioInfo> infos;
  for (const std::shared_ptr<Shard>& shard : router_.List()) {
    ScenarioInfo info;
    info.id = shard->id;
    info.state = shard->state.load();
    info.dataset = DatasetKindName(shard->service->scenario()->config.kind);
    info.warmup = shard->warmup_status();
    info.requests = shard->service->Stats().requests;
    infos.push_back(std::move(info));
  }
  return infos;
}

FleetStats MalivaFleet::Stats() const {
  FleetStats stats;
  stats.routing_errors = routing_errors_.load(std::memory_order_relaxed);
  for (const std::shared_ptr<Shard>& shard : router_.List()) {
    ServiceStats shard_stats = shard->service->Stats();
    if (admission_ != nullptr) {
      // The gate's verdicts are fleet-side state (a shed request never
      // reaches the shard); layer them onto the shard's own snapshot here.
      AdmissionCounters gate = admission_->CountersFor(shard->id);
      shard_stats.admission_admitted = gate.admitted;
      shard_stats.admission_degraded = gate.degraded;
      shard_stats.admission_shed_deadline = gate.shed_deadline;
      shard_stats.admission_shed_overload = gate.shed_overload;
      shard_stats.admission_queue_wait_ms_total = gate.queue_wait_ms_total;
    }
    // Merge the shard's labeled metric series (the Stats() call above just
    // refreshed its gauges); scenario labels keep shards distinguishable
    // after the merge.
    if (MetricsRegistry* registry = shard->service->metrics_registry()) {
      stats.metrics.MergeFrom(registry->Snapshot());
    }
    AccumulateInto(stats.totals, shard_stats);
    stats.shards.emplace_back(shard->id, std::move(shard_stats));
  }
  stats.scenarios = stats.shards.size();
  if (admission_ != nullptr) {
    stats.admission.enabled = true;
    AdmissionCounters totals = admission_->TotalCounters();
    stats.admission.admitted = totals.admitted;
    stats.admission.degraded = totals.degraded;
    stats.admission.shed_deadline = totals.shed_deadline;
    stats.admission.shed_overload = totals.shed_overload;
    stats.admission.queue_wait_ms_total = totals.queue_wait_ms_total;
    stats.admission.queue_depth = Scheduler().QueueDepth();
    stats.admission.estimated_serve_ms = admission_->EstimatedServeMs();
  }
  if (config_.slo_watchdog && flusher_ != nullptr) {
    SloConfig slo;
    slo.enabled = true;
    slo.target_hit_rate = config_.slo_target_hit_rate;
    slo.window_count = config_.slo_window_count;
    slo.min_requests = config_.slo_min_requests;
    stats.slo = SloWatchdog(slo).Evaluate(flusher_->Windows());
  }
  return stats;
}

Result<std::shared_ptr<const MalivaService>> MalivaFleet::ServiceFor(
    const std::string& id) const {
  Result<std::shared_ptr<Shard>> shard = router_.Resolve(id);
  if (!shard.ok()) return shard.status();
  // Aliasing shared_ptr: the caller's handle keeps the whole shard alive,
  // so a concurrent drain + evict cannot destroy the stack under it.
  const MalivaService* service = shard.value()->service.get();
  return std::shared_ptr<const MalivaService>(std::move(shard).value(), service);
}

void MalivaFleet::WaitWarmups() const {
  if (config_.warmup_threads == 0) return;  // nothing is ever scheduled
  WarmupPool().Wait();
}

}  // namespace maliva
