#include "service/deadline_scheduler.h"

#include <algorithm>
#include <utility>

namespace maliva {

DeadlineScheduler::DeadlineScheduler(size_t workers) {
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DeadlineScheduler::~DeadlineScheduler() {
  if (workers_.empty()) {
    // Manual mode: nothing will ever drain the queue, so the destructor
    // runs the leftovers itself — queued jobs hold completion promises that
    // must not be dropped.
    while (RunOne()) {
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void DeadlineScheduler::SetShare(const std::string& scenario, double weight,
                                 int tier) {
  std::unique_lock<std::mutex> lock(mutex_);
  Lane& lane = lanes_[scenario];
  lane.weight = weight > 0.0 ? weight : 1.0;
  lane.tier = tier;
}

void DeadlineScheduler::Submit(SchedulerJob job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    Lane& lane = lanes_[job.scenario];
    Entry entry;
    entry.deadline_ms = job.deadline_ms;
    entry.seq = next_seq_++;
    entry.run = std::move(job.run);
    entry.enqueued_at = std::chrono::steady_clock::now();
    lane.jobs.push_back(std::move(entry));
    std::push_heap(lane.jobs.begin(), lane.jobs.end(), EntryLater{});
    ++queued_;
    ++pending_;
    ++submitted_;
  }
  wake_.notify_one();
}

bool DeadlineScheduler::PopNextLocked(Entry* out) {
  // Lane selection: strict tier first, then the smallest SFQ start tag
  // (max(vtime, lane.vfinish) — a long-idle lane re-enters at the global
  // virtual time instead of burning its idle period as credit), then the
  // earliest head deadline, then lane name (lanes_ is an ordered map, so
  // the final tie-break is deterministic).
  Lane* best = nullptr;
  double best_tag = 0.0;
  double best_deadline = 0.0;
  for (auto& kv : lanes_) {
    Lane& lane = kv.second;
    if (lane.jobs.empty()) continue;
    double tag = std::max(vtime_, lane.vfinish);
    double head_deadline = lane.jobs.front().deadline_ms;
    bool take = false;
    if (best == nullptr) {
      take = true;
    } else if (lane.tier != best->tier) {
      take = lane.tier > best->tier;
    } else if (tag != best_tag) {
      take = tag < best_tag;
    } else if (head_deadline != best_deadline) {
      take = head_deadline < best_deadline;
    }
    if (take) {
      best = &lane;
      best_tag = tag;
      best_deadline = head_deadline;
    }
  }
  if (best == nullptr) return false;

  std::pop_heap(best->jobs.begin(), best->jobs.end(), EntryLater{});
  *out = std::move(best->jobs.back());
  best->jobs.pop_back();
  --queued_;
  ++dispatched_;
  vtime_ = best_tag;
  best->vfinish = best_tag + 1.0 / best->weight;
  queue_wait_ms_total_ +=
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                out->enqueued_at)
          .count();
  return true;
}

bool DeadlineScheduler::RunOne() {
  Entry entry;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!PopNextLocked(&entry)) return false;
  }
  entry.run();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (--pending_ == 0) idle_.notify_all();
  }
  return true;
}

void DeadlineScheduler::WorkerLoop() {
  for (;;) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (!PopNextLocked(&entry)) return;  // stop_ and drained
    }
    entry.run();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--pending_ == 0) idle_.notify_all();
    }
  }
}

void DeadlineScheduler::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

size_t DeadlineScheduler::QueueDepth() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queued_;
}

SchedulerStats DeadlineScheduler::GetStats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  SchedulerStats stats;
  stats.submitted = submitted_;
  stats.dispatched = dispatched_;
  stats.queue_wait_ms_total = queue_wait_ms_total_;
  return stats;
}

}  // namespace maliva
