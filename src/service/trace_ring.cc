#include "service/trace_ring.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace maliva {

namespace {

/// Minimal JSON string escaping for the scenario/verdict/cache fields.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string TraceEvent::ToJson() const {
  char buf[256];
  std::string out;
  out.reserve(256);
  snprintf(buf, sizeof(buf), "{\"seq\": %llu, \"fingerprint\": \"%016llx\", ",
           static_cast<unsigned long long>(seq),
           static_cast<unsigned long long>(fingerprint));
  out += buf;
  out += "\"scenario\": \"" + EscapeJson(scenario) + "\", \"verdict\": \"" +
         EscapeJson(verdict) + "\", \"cache\": \"" + EscapeJson(cache) + "\", ";
  snprintf(buf, sizeof(buf),
           "\"tier_hits\": [%llu, %llu, %llu], \"snapshot_version\": %llu, "
           "\"queue_wait_ms\": %.3f, \"serve_ms\": %.3f}",
           static_cast<unsigned long long>(tier_hits[0]),
           static_cast<unsigned long long>(tier_hits[1]),
           static_cast<unsigned long long>(tier_hits[2]),
           static_cast<unsigned long long>(snapshot_version), queue_wait_ms,
           serve_ms);
  out += buf;
  return out;
}

TraceRing::TraceRing(size_t capacity, size_t stripes) {
  if (capacity == 0) capacity = 1;
  if (stripes == 0) stripes = 1;
  if (stripes > capacity) stripes = capacity;
  per_stripe_ = capacity / stripes;
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
    stripes_.back()->events.reserve(per_stripe_);
  }
}

void TraceRing::Append(TraceEvent event) {
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = *stripes_[event.seq % stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (stripe.events.size() < per_stripe_) {
    stripe.events.push_back(std::move(event));
    return;
  }
  stripe.events[stripe.next] = std::move(event);
  stripe.next = (stripe.next + 1) % per_stripe_;
}

std::vector<TraceEvent> TraceRing::SnapshotEvents() const {
  std::vector<TraceEvent> out;
  out.reserve(capacity());
  for (const std::unique_ptr<Stripe>& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    out.insert(out.end(), stripe->events.begin(), stripe->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return out;
}

std::string TraceRing::ExportJsonLines() const {
  std::string out;
  for (const TraceEvent& event : SnapshotEvents()) {
    out += event.ToJson();
    out += '\n';
  }
  return out;
}

std::vector<SloStatus> SloWatchdog::Evaluate(
    const std::vector<MetricsFlusher::Window>& windows) const {
  // Accumulate the newest window_count windows' admission verdicts per
  // scenario. Served = admitted + degraded (the request got an answer);
  // everything else the gate recorded is a miss of the deadline budget.
  const size_t take = std::min(config_.window_count, windows.size());
  struct Tally {
    uint64_t served = 0;
    uint64_t total = 0;
  };
  std::map<std::string, Tally> by_scenario;
  for (size_t w = windows.size() - take; w < windows.size(); ++w) {
    for (const MetricsSnapshot::CounterRow& row : windows[w].delta.counters) {
      if (row.name != "maliva_admission_total") continue;
      const std::string* scenario = nullptr;
      const std::string* verdict = nullptr;
      for (const auto& [k, v] : row.labels) {
        if (k == "scenario") scenario = &v;
        if (k == "verdict") verdict = &v;
      }
      if (scenario == nullptr || verdict == nullptr) continue;
      Tally& tally = by_scenario[*scenario];
      tally.total += row.value;
      if (*verdict == "admitted" || *verdict == "degraded") tally.served += row.value;
    }
  }

  std::vector<SloStatus> out;
  out.reserve(by_scenario.size());
  for (const auto& [scenario, tally] : by_scenario) {
    SloStatus status;
    status.scenario = scenario;
    status.served = tally.served;
    status.total = tally.total;
    status.hit_rate = tally.total == 0 ? 1.0
                                       : static_cast<double>(tally.served) /
                                             static_cast<double>(tally.total);
    status.breached = tally.total >= config_.min_requests &&
                      status.hit_rate < config_.target_hit_rate;
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace maliva
