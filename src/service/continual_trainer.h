// Background continual training from serving feedback.
//
// The online learning plane's write side (DESIGN.md "Online learning
// plane"): serving threads Record() the transitions their greedy episodes
// observed into a per-agent-key ShardedReplaySink; once a key accumulates
// ServiceConfig::online_min_transitions of them, a fine-tune round is
// scheduled on the trainer's own worker pool (util/thread_pool.h — serving
// threads never train). A round clones the current published snapshot,
// replays the drained transitions through the same DQN update rule the
// offline Trainer uses (core/trainer.cc), evaluates the clone against the
// incumbent on the scenario's validation split, and — only if the validation
// gate passes — publishes the clone as the next snapshot version in the
// ModelRegistry. Failed gates consume the feedback but leave the serving
// model untouched.
//
// RetrainNow() runs one round synchronously (tests and benches drive
// retraining deterministically with it); per-key rounds are serialized, so
// it composes safely with the background path.

#ifndef MALIVA_SERVICE_CONTINUAL_TRAINER_H_
#define MALIVA_SERVICE_CONTINUAL_TRAINER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/rewriter.h"
#include "core/trainer.h"
#include "ml/replay_sink.h"
#include "service/model_registry.h"

namespace maliva {

class ThreadPool;  // util/thread_pool.h

/// Owns the feedback sinks and the background fine-tune loop for every
/// online-learnable agent key of one service.
class ContinualTrainer {
 public:
  struct Config {
    /// Buffered transitions that trigger a background fine-tune round.
    size_t min_transitions = 512;
    /// Per-key sink bound (oldest transitions dropped beyond it) and shards.
    size_t replay_capacity = 16384;
    size_t replay_shards = 8;
    /// Minibatch updates per fine-tune round; batch size, learning rate,
    /// discount, and target-sync cadence mirror TrainerConfig.
    size_t gradient_steps = 48;
    size_t batch_size = 64;
    double learning_rate = 1e-3;
    double gamma = 1.0;
    size_t target_sync_every = 64;
    /// Validation gate: publish a fine-tuned clone only when its mean greedy
    /// validation reward stays within `gate_tolerance` of the *offline
    /// warm-up snapshot's* reward on the same split. A fixed bar (rather
    /// than the moving incumbent) lets successive rounds keep adapting to
    /// drift while still refusing catastrophic forgetting of the base
    /// distribution.
    double gate_tolerance = 0.05;
    /// Exploration schedule recorded in snapshot metadata (the offline
    /// schedule the warm-up weights were trained under; fine-tunes learn
    /// from greedy serving transitions and record it unchanged).
    double eps_start = 1.0;
    double eps_end = 0.05;
    double eps_decay_steps = 1500;
    uint64_t seed = 1234;
    /// Background fine-tune workers; 0 disables the background path (rounds
    /// then run only through RetrainNow).
    size_t background_threads = 1;
  };

  /// Aggregate counters for MalivaService::Stats().
  struct StatsSnapshot {
    uint64_t transitions_recorded = 0;  ///< appended to the sinks
    uint64_t transitions_dropped = 0;   ///< evicted before being trained on
    uint64_t transitions_pending = 0;   ///< buffered, awaiting a round
    uint64_t retrains_published = 0;    ///< rounds that passed the gate
    /// Rounds refused by the gate, plus rounds dropped because their
    /// incumbent was rolled back mid-round (conditional publish failed).
    uint64_t retrains_rejected = 0;
    uint64_t snapshot_version = 0;      ///< newest version across keys
    double last_reward_pre = 0.0;       ///< incumbent's reward, last round
    double last_reward_post = 0.0;      ///< clone's reward, last round
  };

  ContinualTrainer(ModelRegistry* registry, Config config);
  ~ContinualTrainer();

  ContinualTrainer(const ContinualTrainer&) = delete;
  ContinualTrainer& operator=(const ContinualTrainer&) = delete;

  /// Makes `key` online-learnable: remembers its env + validation split,
  /// evaluates the offline-trained weights, and publishes them as snapshot
  /// version 1. Idempotent. `validation` is borrowed and must outlive the
  /// trainer (it is the scenario's split). Called under the service's build
  /// lock; safe against concurrent Current()/Record() readers.
  void RegisterKey(const std::string& key, RewriterEnv renv,
                   const std::vector<const Query*>* validation,
                   const QAgent& trained);

  /// The key's current published model (empty when not registered).
  PublishedModel Current(const std::string& key) const;

  /// Feedback path: appends one request's observed transitions and, when the
  /// key's sink crossed the trigger threshold, schedules a background round.
  /// Unregistered keys are ignored.
  void Record(const std::string& key, std::vector<Experience> transitions);

  /// Runs one fine-tune round for `key` synchronously on the caller's
  /// thread, draining whatever feedback is buffered (no minimum). Returns
  /// true when a new snapshot version was published, false when there was
  /// nothing to train on or the validation gate rejected the clone.
  bool RetrainNow(const std::string& key);

  /// Blocks until every scheduled background round has finished.
  void WaitIdle();

  StatsSnapshot Snapshot() const;

  ModelRegistry* registry() const { return registry_; }
  const Config& config() const { return config_; }

 private:
  struct KeyState {
    KeyState(std::string key_in, RewriterEnv renv_in,
             const std::vector<const Query*>* validation_in,
             ShardedReplaySink::Config sink_config, size_t reservoir_capacity)
        : key(std::move(key_in)),
          renv(std::move(renv_in)),
          validation(validation_in),
          sink(sink_config),
          reservoir(reservoir_capacity) {}

    const std::string key;
    const RewriterEnv renv;
    const std::vector<const Query*>* validation;
    /// The offline warm-up snapshot's mean validation reward — the
    /// validation gate's fixed bar (set once in RegisterKey).
    double baseline_reward = 0.0;
    ShardedReplaySink sink;
    /// Persistent training reservoir: every round folds its drained
    /// transitions in (FIFO at replay_capacity) and samples minibatches
    /// from the whole reservoir, so adaptation accumulates across rounds
    /// instead of lurching after whichever feedback arrived last. Guarded
    /// by round_mutex (only RunRound touches it).
    ReplayBuffer reservoir;
    /// Serializes fine-tune rounds for this key (background vs RetrainNow).
    std::mutex round_mutex;
    std::atomic<bool> inflight{false};
    std::atomic<uint64_t> rounds{0};
    std::atomic<uint64_t> transitions_consumed{0};
  };

  KeyState* FindKey(const std::string& key) const;
  void MaybeScheduleRound(KeyState& state);
  bool RunRound(KeyState& state);

  ModelRegistry* registry_;
  Config config_;

  mutable std::shared_mutex keys_mutex_;
  std::unordered_map<std::string, std::unique_ptr<KeyState>> keys_;

  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> rejected_{0};
  mutable std::mutex last_mutex_;
  double last_reward_pre_ = 0.0;
  double last_reward_post_ = 0.0;

  /// Declared last: destroyed first, joining in-flight rounds while the key
  /// states and registry they reference are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_CONTINUAL_TRAINER_H_
