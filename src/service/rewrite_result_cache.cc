#include "service/rewrite_result_cache.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <utility>

namespace maliva {

/// One in-flight single-flight slot. The flight carries its own mutex/cv —
/// separate from the shard lock — so followers blocking on a slow leader
/// never hold (or wait for) the shard, and probes on other keys stay O(1)
/// while a search is in flight. The leader resolves the flight exactly once
/// (Publish or Abort); `done` never goes back to false. The shard's flights
/// map drops its reference at resolution; waiters keep the slot alive
/// through the shared_ptr in their tickets.
struct RewriteResultCache::Flight {
  uint64_t epoch = 0;
  uint64_t snapshot = 0;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  /// Valid iff done && ok: the leader's published value.
  bool ok = false;
  CachedRewrite value;
};

RewriteResultCache::RewriteResultCache(const Config& config)
    : capacity_(std::max<size_t>(1, config.capacity)) {
  size_t shards = std::clamp<size_t>(config.shards, 1, capacity_);
  per_shard_capacity_ = (capacity_ + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

RewriteResultCache::~RewriteResultCache() = default;

RewriteResultCache::Shard& RewriteResultCache::ShardFor(uint64_t key) const {
  // splitmix64 finalizer over the key: fingerprints are already avalanched,
  // but re-mixing keeps the shard choice independent of any bit the map's
  // own hash favors.
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return *shards_[z % shards_.size()];
}

RewriteResultCache::Ticket RewriteResultCache::Begin(uint64_t key,
                                                     uint64_t epoch,
                                                     uint64_t snapshot) {
  Shard& shard = ShardFor(key);
  Ticket ticket;
  std::unique_lock<std::shared_mutex> lock(shard.mutex);

  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    if (it->second.epoch == epoch && it->second.snapshot == snapshot) {
      it->second.referenced = true;
      hits_.fetch_add(1, std::memory_order_relaxed);
      ticket.role = Role::kHit;
      ticket.value = it->second.value;
      return ticket;
    }
    // Fingerprint match from a superseded context: never trusted. The entry
    // stays resident (replaced in place when this context's result
    // publishes), so cross-epoch churn cannot grow the map.
    stale_declines_.fetch_add(1, std::memory_order_relaxed);
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  auto flight_it = shard.flights.find(key);
  if (flight_it != shard.flights.end()) {
    if (flight_it->second->epoch == epoch &&
        flight_it->second->snapshot == snapshot) {
      ticket.role = Role::kFollower;
      ticket.flight = flight_it->second;
    } else {
      // A leader is searching this key under a different context; its answer
      // would be exactly what the entry check above declined. Compute solo.
      ticket.role = Role::kSolo;
    }
    return ticket;
  }

  auto flight = std::make_shared<Flight>();
  flight->epoch = epoch;
  flight->snapshot = snapshot;
  shard.flights.emplace(key, flight);
  ticket.role = Role::kLeader;
  ticket.flight = std::move(flight);
  return ticket;
}

std::optional<CachedRewrite> RewriteResultCache::Probe(uint64_t key,
                                                       uint64_t epoch,
                                                       uint64_t snapshot) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end() || it->second.epoch != epoch ||
      it->second.snapshot != snapshot) {
    return std::nullopt;  // not counted: the serve path's Begin() will be
  }
  it->second.referenced = true;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.value;
}

void RewriteResultCache::InsertLocked(Shard& shard, uint64_t key,
                                      uint64_t epoch, uint64_t snapshot,
                                      CachedRewrite value) {
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // Resident under the same context: first writer wins (racing publishers
    // computed the same bytes, keeping the kept value unobservable). A stale
    // resident is replaced in place — its ring slot carries over, so the
    // CLOCK ring never holds dangling keys.
    if (it->second.epoch == epoch && it->second.snapshot == snapshot) return;
    it->second.epoch = epoch;
    it->second.snapshot = snapshot;
    it->second.value = std::move(value);
    it->second.referenced = false;
    return;
  }

  if (shard.entries.size() >= per_shard_capacity_) {
    // CLOCK/second-chance: sweep the ring from the hand, clearing reference
    // bits until an unreferenced victim turns up; its slot hosts the new
    // key. Bounded: after one full lap every bit is clear.
    assert(!shard.ring.empty());
    for (;;) {
      shard.hand = (shard.hand + 1) % shard.ring.size();
      auto victim = shard.entries.find(shard.ring[shard.hand]);
      assert(victim != shard.entries.end());
      if (victim->second.referenced) {
        victim->second.referenced = false;
        continue;
      }
      shard.entries.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      shard.ring[shard.hand] = key;
      break;
    }
  } else {
    shard.ring.push_back(key);
  }
  Entry entry;
  entry.epoch = epoch;
  entry.snapshot = snapshot;
  entry.value = std::move(value);
  shard.entries.emplace(key, std::move(entry));
}

void RewriteResultCache::Publish(const Ticket& ticket, uint64_t key,
                                 uint64_t epoch, uint64_t snapshot,
                                 CachedRewrite value) {
  Shard& shard = ShardFor(key);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    InsertLocked(shard, key, epoch, snapshot, value);
    if (ticket.flight != nullptr && ticket.role == Role::kLeader) {
      // Deregister first, under the shard lock: once the slot is out of the
      // map no new follower can enroll, so resolving it below races nobody.
      // Existing waiters hold the slot via their tickets.
      auto it = shard.flights.find(key);
      if (it != shard.flights.end() && it->second == ticket.flight) {
        shard.flights.erase(it);
      }
    }
  }
  if (ticket.flight != nullptr && ticket.role == Role::kLeader) {
    std::lock_guard<std::mutex> lock(ticket.flight->mutex);
    ticket.flight->done = true;
    ticket.flight->ok = true;
    ticket.flight->value = std::move(value);
    ticket.flight->cv.notify_all();
  }
}

void RewriteResultCache::Abort(const Ticket& ticket, uint64_t key) {
  if (ticket.flight == nullptr || ticket.role != Role::kLeader) return;
  Shard& shard = ShardFor(key);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    // Erase only our own flight: a successor leader may have re-opened the
    // key after an earlier abort, and its slot must survive ours.
    auto it = shard.flights.find(key);
    if (it != shard.flights.end() && it->second == ticket.flight) {
      shard.flights.erase(it);
    }
  }
  std::lock_guard<std::mutex> lock(ticket.flight->mutex);
  ticket.flight->done = true;
  ticket.flight->ok = false;
  ticket.flight->cv.notify_all();
}

std::optional<CachedRewrite> RewriteResultCache::WaitForLeader(
    const Ticket& ticket) {
  assert(ticket.role == Role::kFollower && ticket.flight != nullptr);
  Flight& flight = *ticket.flight;
  std::unique_lock<std::mutex> lock(flight.mutex);
  flight.cv.wait(lock, [&flight] { return flight.done; });
  if (!flight.ok) return std::nullopt;  // leader aborted: compute solo
  coalesced_.fetch_add(1, std::memory_order_relaxed);
  return flight.value;
}

RewriteResultCache::Stats RewriteResultCache::Snapshot() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.stale_declines = stale_declines_.load(std::memory_order_relaxed);
  s.size = Size();
  return s;
}

size_t RewriteResultCache::Size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace maliva
