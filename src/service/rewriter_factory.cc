#include "service/rewriter_factory.h"

#include <utility>

namespace maliva {

RewriterFactory& RewriterFactory::Global() {
  // Leaked singleton: builders may be registered from static initializers and
  // used until process exit.
  static RewriterFactory* factory = [] {
    auto* f = new RewriterFactory();
    RegisterBuiltinStrategies(*f);
    return f;
  }();
  return *factory;
}

Status RewriterFactory::Register(std::string name, Builder builder) {
  if (name.empty()) return Status::InvalidArgument("strategy name must not be empty");
  if (builder == nullptr) {
    return Status::InvalidArgument("strategy builder must not be null");
  }
  auto [it, inserted] = builders_.emplace(std::move(name), std::move(builder));
  if (!inserted) {
    return Status::InvalidArgument("strategy already registered: " + it->first);
  }
  return Status::OK();
}

bool RewriterFactory::Has(const std::string& name) const {
  return builders_.count(name) != 0;
}

Result<std::unique_ptr<Rewriter>> RewriterFactory::Create(
    const std::string& name, MalivaService& service) const {
  auto it = builders_.find(name);
  if (it == builders_.end()) {
    return Status::NotFound("unknown rewriting strategy: \"" + name +
                            "\" (known strategies: " + KnownStrategiesList() + ")");
  }
  return it->second(service);
}

std::vector<std::string> RewriterFactory::KnownStrategies() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) names.push_back(name);
  return names;  // std::map keeps them sorted
}

std::string RewriterFactory::KnownStrategiesList() const {
  std::string list;
  for (const auto& [name, builder] : builders_) {
    if (!list.empty()) list += ", ";
    list += name;
  }
  return list;
}

}  // namespace maliva
