// EDF + weighted-fair dispatch for the fleet's overload control plane
// (DESIGN.md "Overload control plane").
//
// The fleet's FIFO ThreadPool treats every request equally; under overload
// that serves already-doomed work while requests that could still make
// their deadlines wait. The DeadlineScheduler replaces FIFO with a
// two-level policy over per-scenario lanes:
//
//   * across lanes — strict priority tiers first (a higher tier always
//     dispatches before a lower one), then start-time weighted fair queuing:
//     each dispatched job advances its lane's virtual finish tag by
//     1/weight, and the lane with the smallest effective tag runs next, so
//     a weight-2 scenario gets twice the dispatch slots of a weight-1
//     scenario under contention and one hot scenario cannot starve the
//     rest;
//   * within a lane — earliest deadline first (submission order breaks
//     ties), so the request closest to its budget is always the next one
//     served.
//
// Construction with `workers == 0` creates no threads: jobs queue up and
// the caller drains them with RunOne(), which makes dispatch order itself
// deterministic and unit-testable. With workers > 0 the scheduler owns its
// worker threads (the fleet's serve pool when admission is on); destruction
// drains every queued job before joining, mirroring ThreadPool.

#ifndef MALIVA_SERVICE_DEADLINE_SCHEDULER_H_
#define MALIVA_SERVICE_DEADLINE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace maliva {

/// One unit of admitted work.
struct SchedulerJob {
  /// Absolute deadline on the caller's timeline; only the relative order
  /// matters to the scheduler (EDF within the lane).
  double deadline_ms = 0.0;
  /// Weighted-fair lane key (the fleet uses the scenario id; "" is a valid
  /// lane and gets the default share).
  std::string scenario;
  /// The work; must not throw (same contract as ThreadPool::Submit).
  std::function<void()> run;
};

/// Point-in-time scheduler counters.
struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t dispatched = 0;
  /// Summed wall ms jobs spent queued (submit -> dispatch).
  double queue_wait_ms_total = 0.0;
};

class DeadlineScheduler {
 public:
  /// `workers` dispatch threads; 0 = none (drain manually with RunOne).
  explicit DeadlineScheduler(size_t workers);

  /// Runs every still-queued job (on the caller thread when workers == 0),
  /// then joins the workers.
  ~DeadlineScheduler();

  DeadlineScheduler(const DeadlineScheduler&) = delete;
  DeadlineScheduler& operator=(const DeadlineScheduler&) = delete;

  /// Sets a lane's weighted-fair share before (or between) submissions.
  /// Weight must be > 0 (validated upstream by AdmissionConfig); higher
  /// tiers dispatch strictly first.
  void SetShare(const std::string& scenario, double weight, int tier = 0);

  void Submit(SchedulerJob job);

  /// Blocks until every job submitted so far has completed.
  void Wait();

  /// Dispatches the single next job per the policy above on the caller
  /// thread; false when the queue is empty. The deterministic test hook —
  /// meaningful with workers == 0 (with workers racing, which job "is next"
  /// is already gone by the time the caller asks).
  bool RunOne();

  /// Jobs queued and not yet claimed by a worker: the admission gate's load
  /// signal.
  size_t QueueDepth() const;

  size_t workers() const { return workers_.size(); }

  SchedulerStats GetStats() const;

 private:
  struct Entry {
    double deadline_ms;
    uint64_t seq;  ///< submission order, the EDF tie-break
    std::function<void()> run;
    std::chrono::steady_clock::time_point enqueued_at;
  };
  /// Max-heap comparator that puts the *earliest* deadline on top (std heap
  /// functions build max-heaps; "later is less" inverts them into EDF).
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline_ms != b.deadline_ms) return a.deadline_ms > b.deadline_ms;
      return a.seq > b.seq;
    }
  };
  struct Lane {
    double weight = 1.0;
    int tier = 0;
    /// SFQ virtual finish tag of the lane's last dispatched job.
    double vfinish = 0.0;
    /// EDF heap (push_heap/pop_heap with EntryLater).
    std::vector<Entry> jobs;
  };

  /// Picks and pops the next job per tier -> fair tag -> EDF; caller holds
  /// `mutex_`. Returns false when every lane is empty.
  bool PopNextLocked(Entry* out);

  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::map<std::string, Lane> lanes_;  ///< ordered: deterministic tie-breaks
  double vtime_ = 0.0;                 ///< SFQ global virtual time
  uint64_t next_seq_ = 0;
  size_t queued_ = 0;   ///< entries across lanes, not yet dispatched
  size_t pending_ = 0;  ///< submitted, not yet completed
  bool stop_ = false;
  uint64_t dispatched_ = 0;
  uint64_t submitted_ = 0;
  double queue_wait_ms_total_ = 0.0;
  std::vector<std::thread> workers_;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_DEADLINE_SCHEDULER_H_
