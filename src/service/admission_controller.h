// Admission control for the fleet's overload control plane (DESIGN.md
// "Overload control plane").
//
// The paper's contract is "return a rewritten query within the time budget
// tau" — so under overload the worst spend is a full MDP rewrite for a
// request whose deadline is already blown, starving requests that could
// still make theirs. The AdmissionController is the gate in front of the
// DeadlineScheduler: every request gets an absolute deadline derived from
// its arrival time and effective tau (scaled by a configurable slack
// factor — tau is a *virtual* budget, the slack factor maps the fraction of
// it the middleware may spend on wall-clock rewriting), and the gate decides
// per request, from the current queue depth and an EWMA of observed serve
// times:
//
//   kAdmit         — predicted completion makes the deadline; serve as asked
//   kDegrade       — the full strategy would miss, a cheap configured
//                    strategy (e.g. "baseline") may still make it
//   kShedDeadline  — cannot make the deadline at all (DeadlineExceeded)
//   kShedOverload  — the scheduler queue is at capacity (ResourceExhausted)
//
// Decide() is a pure function of its explicit inputs (now, deadline, queue
// depth, workers) — no hidden wall-clock reads — so replayable tests and
// trace-driven benches exercise every path deterministically.

#ifndef MALIVA_SERVICE_ADMISSION_CONTROLLER_H_
#define MALIVA_SERVICE_ADMISSION_CONTROLLER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace maliva {

/// Weighted-fair share of one scenario in the DeadlineScheduler: `weight`
/// sets the scenario's fraction of dispatch slots relative to other lanes
/// (a weight-2 lane drains twice as fast as a weight-1 lane under
/// contention), `tier` is a strict priority level — higher tiers are always
/// dispatched first, weights apply within a tier.
struct ScenarioShare {
  std::string scenario;
  double weight = 1.0;  ///< must be finite and > 0
  int tier = 0;
};

/// Knobs of the overload control plane, embedded in FleetConfig::admission
/// and checked by FleetConfig::Validate(). Off (the default) preserves the
/// fleet's byte-identical-at-any-thread-count serving contract exactly — no
/// scheduler, no gate, no new failure modes.
struct AdmissionConfig {
  /// Master switch for the plane (gate + EDF scheduler).
  bool enabled = false;
  /// Deadline = arrival + effective tau * slack_factor. tau is virtual ms,
  /// the deadline is wall ms: the slack factor is the fraction (or multiple)
  /// of the user's interactivity budget the middleware may spend rewriting.
  /// Must be finite and > 0.
  double slack_factor = 1.0;
  /// Strategy a kDegrade verdict forces instead of the requested one. Must
  /// name a RewriterFactory::KnownStrategies() key; empty disables
  /// degradation (those requests are shed with DeadlineExceeded instead).
  std::string degrade_strategy = "baseline";
  /// Scheduler queue depth at which new requests are shed with
  /// ResourceExhausted (0 sheds everything — a drain lever, not a typo).
  size_t max_queue = 1024;
  /// Seed of the per-request serve-time EWMA before any request completes.
  /// Must be finite and > 0.
  double initial_serve_estimate_ms = 1.0;
  /// EWMA smoothing factor, in (0, 1].
  double serve_estimate_alpha = 0.05;
  /// Weight of scenarios without an explicit ScenarioShare entry. Must be
  /// finite and > 0.
  double default_weight = 1.0;
  /// Per-scenario overrides (weight and strict-priority tier).
  std::vector<ScenarioShare> shares;

  /// Rejects bad knobs with InvalidArgument naming the knob: non-positive or
  /// non-finite slack_factor / initial_serve_estimate_ms / default_weight /
  /// per-scenario weight, serve_estimate_alpha outside (0, 1], and a
  /// degrade_strategy that is not a registered strategy key.
  Status Validate() const;

  AdmissionConfig& WithEnabled(bool on) {
    enabled = on;
    return *this;
  }
  AdmissionConfig& WithSlackFactor(double slack) {
    slack_factor = slack;
    return *this;
  }
  AdmissionConfig& WithDegradeStrategy(std::string strategy) {
    degrade_strategy = std::move(strategy);
    return *this;
  }
  AdmissionConfig& WithMaxQueue(size_t depth) {
    max_queue = depth;
    return *this;
  }
  AdmissionConfig& WithInitialServeEstimateMs(double ms) {
    initial_serve_estimate_ms = ms;
    return *this;
  }
  AdmissionConfig& WithServeEstimateAlpha(double alpha) {
    serve_estimate_alpha = alpha;
    return *this;
  }
  AdmissionConfig& WithDefaultWeight(double weight) {
    default_weight = weight;
    return *this;
  }
  AdmissionConfig& WithShare(std::string scenario, double weight, int tier = 0) {
    shares.push_back({std::move(scenario), weight, tier});
    return *this;
  }
};

/// The gate's verdict for one request.
enum class AdmissionDecision {
  kAdmit,
  kDegrade,
  kShedDeadline,
  kShedOverload,
};

const char* AdmissionDecisionName(AdmissionDecision decision);

/// Per-scenario (and fleet-total) admission accounting.
struct AdmissionCounters {
  uint64_t admitted = 0;       ///< served with the requested strategy
  uint64_t degraded = 0;       ///< served with the degrade strategy
  uint64_t shed_deadline = 0;  ///< refused: could not make the deadline
  uint64_t shed_overload = 0;  ///< refused: scheduler queue at capacity
  double queue_wait_ms_total = 0.0;  ///< summed arrival->dispatch wall wait
};

/// The decision-making half of the overload control plane. Thread-safe: the
/// EWMA and counters sit behind a mutex, Decide() reads one snapshot of the
/// estimate. Deadlines and decisions are pure functions of their inputs.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  const AdmissionConfig& config() const { return config_; }

  /// Absolute deadline (caller timeline) for a request arriving at
  /// `arrival_ms` with effective budget `tau_ms`.
  double DeadlineFor(double arrival_ms, double tau_ms) const {
    return arrival_ms + tau_ms * config_.slack_factor;
  }

  /// The gate: overload shed (queue at capacity) before deadline shed
  /// (already blown) before degrade (full strategy predicted to miss,
  /// degradation configured) before admit. `queue_depth` is the scheduler's
  /// not-yet-dispatched backlog; `workers` its dispatch parallelism.
  AdmissionDecision Decide(double now_ms, double deadline_ms, size_t queue_depth,
                           size_t workers) const;

  /// Predicted wall ms until a request arriving now would *complete*:
  /// queue_depth/workers serve slots of queueing ahead of it plus its own
  /// serve, each at the current EWMA estimate.
  double PredictedCompletionMs(size_t queue_depth, size_t workers) const;

  /// The typed rejection a shed decision surfaces to the caller.
  static Status ShedStatus(AdmissionDecision decision, const std::string& scenario,
                           double now_ms, double deadline_ms, size_t queue_depth);

  /// Folds one completed serve's wall time into the EWMA load estimate.
  void RecordServeMs(double wall_ms);
  double EstimatedServeMs() const;

  /// Outcome accounting, per scenario. Wait is recorded for dispatched
  /// (admitted or degraded) requests only.
  void RecordDecision(const std::string& scenario, AdmissionDecision decision);
  void RecordQueueWait(const std::string& scenario, double wait_ms);

  /// Share lookup for the scheduler (config default when no override).
  double WeightFor(const std::string& scenario) const;
  int TierFor(const std::string& scenario) const;

  AdmissionCounters TotalCounters() const;
  AdmissionCounters CountersFor(const std::string& scenario) const;

 private:
  const AdmissionConfig config_;

  mutable std::mutex mutex_;
  double serve_estimate_ms_;
  AdmissionCounters totals_;
  std::unordered_map<std::string, AdmissionCounters> per_scenario_;
};

}  // namespace maliva

#endif  // MALIVA_SERVICE_ADMISSION_CONTROLLER_H_
