// String-keyed registry of rewriting strategies.
//
// Strategies are selected by configuration name instead of bespoke
// constructors. The built-in names (registered by MalivaService):
//
//   "baseline"           no rewriting; the backend optimizer plans
//   "naive"              brute-force QTE enumeration (sampling QTE)
//   "mdp/accurate"       MDP agent with the accurate QTE (Algorithm 2)
//   "mdp/sampling"       MDP agent with the sampling (approximate) QTE
//   "bao"                the Bao comparator (plan-feature regression)
//   "quality/one-stage"  quality-aware agent over hint x approx options
//   "quality/two-stage"  exact stage then quality-aware stage (Fig 11)
//
// Custom strategies can be registered at startup; builders receive the
// owning MalivaService and may use its MakeEnv / TrainedAgent / Intern hooks.

#ifndef MALIVA_SERVICE_REWRITER_FACTORY_H_
#define MALIVA_SERVICE_REWRITER_FACTORY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/rewriter.h"
#include "util/status.h"

namespace maliva {

class MalivaService;

/// Maps strategy names to builder callbacks. Thread-compatible: register
/// everything before serving.
class RewriterFactory {
 public:
  using Builder =
      std::function<Result<std::unique_ptr<Rewriter>>(MalivaService& service)>;

  /// The process-wide registry (built-ins are registered on first use).
  static RewriterFactory& Global();

  /// Registers `name`; fails with AlreadyExists-style error on duplicates.
  Status Register(std::string name, Builder builder);

  bool Has(const std::string& name) const;

  /// Builds strategy `name` against `service`. Unknown names return NotFound
  /// with the full list of valid keys in the message; builder errors (e.g.
  /// missing approximation rules) pass through.
  Result<std::unique_ptr<Rewriter>> Create(const std::string& name,
                                           MalivaService& service) const;

  /// All registered strategy keys, sorted.
  std::vector<std::string> KnownStrategies() const;

  /// Deprecated alias of KnownStrategies().
  std::vector<std::string> Names() const { return KnownStrategies(); }

 private:
  /// Comma-separated KnownStrategies(), for error messages.
  std::string KnownStrategiesList() const;

  std::map<std::string, Builder> builders_;
};

/// Registers the seven built-in strategies listed above (defined in
/// service.cc; invoked once by RewriterFactory::Global()).
void RegisterBuiltinStrategies(RewriterFactory& factory);

}  // namespace maliva

#endif  // MALIVA_SERVICE_REWRITER_FACTORY_H_
