#include "index/btree_index.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace maliva {

BTreeIndex::BTreeIndex(const Table& table, const std::string& column) : column_(column) {
  const Column& col = table.GetColumn(column);
  size_t n = table.NumRows();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> vals(n);
  for (size_t i = 0; i < n; ++i) vals[i] = col.NumericAt(static_cast<RowId>(i));
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (vals[a] != vals[b]) return vals[a] < vals[b];
    return a < b;
  });
  keys_.resize(n);
  rows_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    keys_[i] = vals[order[i]];
    rows_[i] = static_cast<RowId>(order[i]);
  }
}

std::pair<size_t, size_t> BTreeIndex::EqualRange(double lo, double hi) const {
  auto first = std::lower_bound(keys_.begin(), keys_.end(), lo);
  auto last = std::upper_bound(first, keys_.end(), hi);
  return {static_cast<size_t>(first - keys_.begin()),
          static_cast<size_t>(last - keys_.begin())};
}

size_t BTreeIndex::RangeCount(double lo, double hi) const {
  if (hi < lo) return 0;
  auto [first, last] = EqualRange(lo, hi);
  return last - first;
}

RowIdList BTreeIndex::RangeScan(double lo, double hi) const {
  if (hi < lo) return {};
  auto [first, last] = EqualRange(lo, hi);
  RowIdList out(rows_.begin() + static_cast<ptrdiff_t>(first),
                rows_.begin() + static_cast<ptrdiff_t>(last));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace maliva
