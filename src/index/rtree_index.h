// STR (Sort-Tile-Recursive) bulk-loaded R-tree over a point column.

#ifndef MALIVA_INDEX_RTREE_INDEX_H_
#define MALIVA_INDEX_RTREE_INDEX_H_

#include <string>
#include <vector>

#include "index/rowset.h"
#include "storage/table.h"

namespace maliva {

/// Read-only spatial index answering bounding-box queries over geo points.
class RTreeIndex {
 public:
  /// Leaf fanout / internal fanout of the packed tree.
  static constexpr size_t kFanout = 64;

  /// Builds the tree over `table[column]` (must be a point column).
  RTreeIndex(const Table& table, const std::string& column);

  const std::string& column() const { return column_; }
  size_t size() const { return points_.size(); }

  /// Sorted row ids whose point lies inside `box` (inclusive).
  RowIdList Query(const BoundingBox& box) const;

  /// Number of matching rows (same traversal, no materialization of misses).
  size_t Count(const BoundingBox& box) const;

  /// Bounding box of all indexed points.
  BoundingBox Bounds() const { return nodes_.empty() ? BoundingBox{} : nodes_.back().box; }

  /// Height of the tree (1 = leaves only). Exposed for tests.
  size_t Height() const { return height_; }

 private:
  struct Node {
    BoundingBox box;
    // Children: for leaves, [first, last) into entries_ (point slots);
    // for internal nodes, [first, last) into nodes_.
    size_t first = 0;
    size_t last = 0;
    bool leaf = true;
  };

  template <typename Visit>
  void Traverse(const BoundingBox& box, size_t node_idx, Visit&& visit) const;

  std::string column_;
  std::vector<GeoPoint> points_;   // copy of indexed points, by entry slot
  std::vector<RowId> entry_rows_;  // row id per entry slot
  std::vector<Node> nodes_;        // packed bottom-up; root is nodes_.back()
  size_t height_ = 0;
};

}  // namespace maliva

#endif  // MALIVA_INDEX_RTREE_INDEX_H_
