// Hash index over an int64 column, used for key lookups in joins.

#ifndef MALIVA_INDEX_HASH_INDEX_H_
#define MALIVA_INDEX_HASH_INDEX_H_

#include <string>
#include <unordered_map>

#include "index/rowset.h"
#include "storage/table.h"

namespace maliva {

/// int64 key -> sorted row ids (duplicates allowed, e.g. FK columns).
class HashIndex {
 public:
  HashIndex(const Table& table, const std::string& column);

  const std::string& column() const { return column_; }

  /// Rows holding `key`; empty when absent. Reference valid for index lifetime.
  const RowIdList& Lookup(int64_t key) const;

  size_t DistinctKeys() const { return buckets_.size(); }

 private:
  std::string column_;
  std::unordered_map<int64_t, RowIdList> buckets_;
  RowIdList empty_;
};

}  // namespace maliva

#endif  // MALIVA_INDEX_HASH_INDEX_H_
