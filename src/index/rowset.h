// Sorted row-id set operations used by index-intersection plans.

#ifndef MALIVA_INDEX_ROWSET_H_
#define MALIVA_INDEX_ROWSET_H_

#include <vector>

#include "storage/value.h"

namespace maliva {

/// Sorted, duplicate-free list of row ids.
using RowIdList = std::vector<RowId>;

/// True when `rows` is strictly increasing.
bool IsSortedUnique(const RowIdList& rows);

/// Intersection of two sorted lists.
RowIdList IntersectSorted(const RowIdList& a, const RowIdList& b);

/// Intersection of k sorted lists (smallest first for efficiency).
/// Returns an empty list when `lists` is empty.
RowIdList IntersectAll(std::vector<const RowIdList*> lists);

/// Union of two sorted lists.
RowIdList UnionSorted(const RowIdList& a, const RowIdList& b);

}  // namespace maliva

#endif  // MALIVA_INDEX_ROWSET_H_
