#include "index/inverted_index.h"

#include <algorithm>

#include "util/string_util.h"

namespace maliva {

InvertedIndex::InvertedIndex(const Table& table, const std::string& column)
    : column_(column) {
  const Column& col = table.GetColumn(column);
  const std::vector<std::string>& texts = col.AsText();
  for (RowId row = 0; row < texts.size(); ++row) {
    std::vector<std::string> tokens = Tokenize(texts[row]);
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (std::string& tok : tokens) {
      postings_[std::move(tok)].push_back(row);
    }
  }
  // Rows are visited in increasing order, so each postings list is sorted.
}

const RowIdList& InvertedIndex::Lookup(const std::string& keyword) const {
  auto it = postings_.find(ToLower(keyword));
  if (it == postings_.end()) return empty_;
  return it->second;
}

}  // namespace maliva
