#include "index/rowset.h"

#include <algorithm>

namespace maliva {

bool IsSortedUnique(const RowIdList& rows) {
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i - 1] >= rows[i]) return false;
  }
  return true;
}

RowIdList IntersectSorted(const RowIdList& a, const RowIdList& b) {
  RowIdList out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

RowIdList IntersectAll(std::vector<const RowIdList*> lists) {
  if (lists.empty()) return {};
  std::sort(lists.begin(), lists.end(),
            [](const RowIdList* x, const RowIdList* y) { return x->size() < y->size(); });
  RowIdList acc = *lists[0];
  for (size_t i = 1; i < lists.size() && !acc.empty(); ++i) {
    acc = IntersectSorted(acc, *lists[i]);
  }
  return acc;
}

RowIdList UnionSorted(const RowIdList& a, const RowIdList& b) {
  RowIdList out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace maliva
