#include "index/rtree_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace maliva {

RTreeIndex::RTreeIndex(const Table& table, const std::string& column) : column_(column) {
  const Column& col = table.GetColumn(column);
  const std::vector<GeoPoint>& pts = col.AsPoint();
  size_t n = pts.size();

  // STR packing: sort by lon into vertical slices of ~sqrt(n/fanout) * fanout
  // entries, then sort each slice by lat and cut into leaves of `kFanout`.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  size_t num_leaves = (n + kFanout - 1) / std::max<size_t>(kFanout, 1);
  size_t slices = std::max<size_t>(1, static_cast<size_t>(std::ceil(
                                          std::sqrt(static_cast<double>(num_leaves)))));
  size_t slice_size = std::max<size_t>(1, (n + slices - 1) / slices);

  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return pts[a].lon < pts[b].lon; });
  for (size_t s = 0; s * slice_size < n; ++s) {
    auto begin = order.begin() + static_cast<ptrdiff_t>(s * slice_size);
    auto end = order.begin() + static_cast<ptrdiff_t>(std::min(n, (s + 1) * slice_size));
    std::sort(begin, end, [&](size_t a, size_t b) { return pts[a].lat < pts[b].lat; });
  }

  points_.resize(n);
  entry_rows_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    points_[i] = pts[order[i]];
    entry_rows_[i] = static_cast<RowId>(order[i]);
  }

  if (n == 0) {
    nodes_.push_back(Node{BoundingBox{}, 0, 0, true});
    height_ = 1;
    return;
  }

  // Build leaves.
  size_t level_first = 0;
  for (size_t i = 0; i < n; i += kFanout) {
    Node leaf;
    leaf.leaf = true;
    leaf.first = i;
    leaf.last = std::min(n, i + kFanout);
    leaf.box = BoundingBox{points_[i].lon, points_[i].lat, points_[i].lon, points_[i].lat};
    for (size_t j = leaf.first; j < leaf.last; ++j) leaf.box = leaf.box.Extend(points_[j]);
    nodes_.push_back(leaf);
  }
  height_ = 1;

  // Pack internal levels bottom-up until a single root remains.
  size_t level_last = nodes_.size();
  while (level_last - level_first > 1) {
    for (size_t i = level_first; i < level_last; i += kFanout) {
      Node inner;
      inner.leaf = false;
      inner.first = i;
      inner.last = std::min(level_last, i + kFanout);
      inner.box = nodes_[inner.first].box;
      for (size_t j = inner.first; j < inner.last; ++j) {
        inner.box = inner.box.Union(nodes_[j].box);
      }
      nodes_.push_back(inner);
    }
    level_first = level_last;
    level_last = nodes_.size();
    ++height_;
  }
}

template <typename Visit>
void RTreeIndex::Traverse(const BoundingBox& box, size_t node_idx, Visit&& visit) const {
  const Node& node = nodes_[node_idx];
  if (!box.Intersects(node.box)) return;
  if (node.leaf) {
    for (size_t i = node.first; i < node.last; ++i) {
      if (box.Contains(points_[i])) visit(entry_rows_[i]);
    }
    return;
  }
  for (size_t c = node.first; c < node.last; ++c) {
    Traverse(box, c, visit);
  }
}

RowIdList RTreeIndex::Query(const BoundingBox& box) const {
  RowIdList out;
  if (points_.empty()) return out;
  Traverse(box, nodes_.size() - 1, [&](RowId r) { out.push_back(r); });
  std::sort(out.begin(), out.end());
  return out;
}

size_t RTreeIndex::Count(const BoundingBox& box) const {
  size_t count = 0;
  if (points_.empty()) return count;
  Traverse(box, nodes_.size() - 1, [&](RowId) { ++count; });
  return count;
}

}  // namespace maliva
