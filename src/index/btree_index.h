// B+-tree-style ordered index over a numeric column.
//
// Implemented as a bulk-loaded sorted (key, row) run with binary search; this
// has the same asymptotics and access pattern as a read-only B+ tree and is
// the standard trick for immutable analytic tables.

#ifndef MALIVA_INDEX_BTREE_INDEX_H_
#define MALIVA_INDEX_BTREE_INDEX_H_

#include <string>
#include <vector>

#include "index/rowset.h"
#include "storage/table.h"

namespace maliva {

/// Ordered secondary index over an int64/double/timestamp column.
class BTreeIndex {
 public:
  /// Builds the index over `table[column]`. The column must be numeric.
  BTreeIndex(const Table& table, const std::string& column);

  const std::string& column() const { return column_; }
  size_t size() const { return keys_.size(); }

  /// Number of rows with key in [lo, hi] (inclusive).
  size_t RangeCount(double lo, double hi) const;

  /// Sorted row ids with key in [lo, hi] (inclusive).
  RowIdList RangeScan(double lo, double hi) const;

  /// Smallest / largest key present (0 when empty).
  double MinKey() const { return keys_.empty() ? 0.0 : keys_.front(); }
  double MaxKey() const { return keys_.empty() ? 0.0 : keys_.back(); }

 private:
  /// [first, last) positions in the sorted run covering [lo, hi].
  std::pair<size_t, size_t> EqualRange(double lo, double hi) const;

  std::string column_;
  std::vector<double> keys_;   // sorted
  std::vector<RowId> rows_;    // rows_[i] holds keys_[i]
};

}  // namespace maliva

#endif  // MALIVA_INDEX_BTREE_INDEX_H_
