#include "index/hash_index.h"

namespace maliva {

HashIndex::HashIndex(const Table& table, const std::string& column) : column_(column) {
  const Column& col = table.GetColumn(column);
  const std::vector<int64_t>& keys = col.AsInt64();
  for (RowId row = 0; row < keys.size(); ++row) {
    buckets_[keys[row]].push_back(row);
  }
}

const RowIdList& HashIndex::Lookup(int64_t key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return empty_;
  return it->second;
}

}  // namespace maliva
