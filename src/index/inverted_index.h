// Inverted keyword index over a text column.

#ifndef MALIVA_INDEX_INVERTED_INDEX_H_
#define MALIVA_INDEX_INVERTED_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "index/rowset.h"
#include "storage/table.h"

namespace maliva {

/// Token -> sorted postings list. Tokens come from util Tokenize (lower-cased
/// alphanumeric runs); each row contributes each distinct token once.
class InvertedIndex {
 public:
  InvertedIndex(const Table& table, const std::string& column);

  const std::string& column() const { return column_; }

  /// Postings for `keyword` (lower-cased exact token match). Empty list when
  /// the token never occurs. The reference stays valid for the index lifetime.
  const RowIdList& Lookup(const std::string& keyword) const;

  /// Document frequency of `keyword`.
  size_t DocFreq(const std::string& keyword) const { return Lookup(keyword).size(); }

  /// Number of distinct tokens indexed.
  size_t VocabularySize() const { return postings_.size(); }

 private:
  std::string column_;
  std::unordered_map<std::string, RowIdList> postings_;
  RowIdList empty_;
};

}  // namespace maliva

#endif  // MALIVA_INDEX_INVERTED_INDEX_H_
