// In-memory columnar table with a simple schema.

#ifndef MALIVA_STORAGE_TABLE_H_
#define MALIVA_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "util/rng.h"
#include "util/status.h"

namespace maliva {

/// Column name + type pair.
struct ColumnSpec {
  std::string name;
  ColumnType type;
};

/// Ordered list of column specs.
using Schema = std::vector<ColumnSpec>;

/// A named table: a schema plus equal-length columns.
///
/// Tables are built once (by the workload generators or by sampling) and are
/// immutable afterwards; the engine and indexes hold const references.
class Table {
 public:
  Table(std::string name, const Schema& schema);

  const std::string& name() const { return name_; }
  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }

  /// Index of the named column, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// The named column; asserts existence (use ColumnIndex to probe safely).
  const Column& GetColumn(const std::string& name) const;
  const Column& ColumnAt(size_t idx) const { return columns_[idx]; }
  Column& MutableColumnAt(size_t idx) { return columns_[idx]; }

  /// Declares one row fully appended across all columns. Verifies lengths.
  Status FinishRow();

  /// Verifies all columns have equal length and fixes the row count.
  Status Seal();

  /// Random sample of rows (each kept with probability `fraction`), preserving
  /// column values (including original ids). Used for sample tables feeding
  /// approximation rules and the sampling-based QTE.
  std::unique_ptr<Table> Sample(double fraction, Rng* rng, std::string sample_name) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace maliva

#endif  // MALIVA_STORAGE_TABLE_H_
