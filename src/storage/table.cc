#include "storage/table.h"

#include <cassert>

namespace maliva {

Table::Table(std::string name, const Schema& schema) : name_(std::move(name)) {
  columns_.reserve(schema.size());
  for (const ColumnSpec& spec : schema) {
    columns_.emplace_back(spec.name, spec.type);
  }
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return Status::NotFound("no column named '" + name + "' in table '" + name_ + "'");
}

const Column& Table::GetColumn(const std::string& name) const {
  Result<size_t> idx = ColumnIndex(name);
  assert(idx.ok());
  return columns_[idx.value()];
}

Status Table::FinishRow() {
  size_t expect = num_rows_ + 1;
  for (const Column& col : columns_) {
    if (col.size() != expect) {
      return Status::FailedPrecondition("column '" + col.name() +
                                        "' not appended before FinishRow");
    }
  }
  num_rows_ = expect;
  return Status::OK();
}

Status Table::Seal() {
  if (columns_.empty()) {
    num_rows_ = 0;
    return Status::OK();
  }
  size_t n = columns_[0].size();
  for (const Column& col : columns_) {
    if (col.size() != n) {
      return Status::FailedPrecondition("ragged columns in table '" + name_ + "'");
    }
  }
  num_rows_ = n;
  return Status::OK();
}

std::unique_ptr<Table> Table::Sample(double fraction, Rng* rng,
                                     std::string sample_name) const {
  assert(fraction > 0.0 && fraction <= 1.0);
  Schema schema;
  schema.reserve(columns_.size());
  for (const Column& col : columns_) schema.push_back({col.name(), col.type()});
  auto sample = std::make_unique<Table>(std::move(sample_name), schema);

  for (RowId row = 0; row < num_rows_; ++row) {
    if (!rng->Bernoulli(fraction)) continue;
    for (size_t c = 0; c < columns_.size(); ++c) {
      const Column& src = columns_[c];
      Column& dst = sample->MutableColumnAt(c);
      switch (src.type()) {
        case ColumnType::kInt64: dst.AppendInt64(src.Int64At(row)); break;
        case ColumnType::kDouble: dst.AppendDouble(src.DoubleAt(row)); break;
        case ColumnType::kTimestamp: dst.AppendTimestamp(src.TimestampAt(row)); break;
        case ColumnType::kPoint: dst.AppendPoint(src.PointAt(row)); break;
        case ColumnType::kText: dst.AppendText(src.TextAt(row)); break;
      }
    }
  }
  Status st = sample->Seal();
  assert(st.ok());
  (void)st;
  return sample;
}

}  // namespace maliva
