// A typed column of values, stored contiguously.

#ifndef MALIVA_STORAGE_COLUMN_H_
#define MALIVA_STORAGE_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "storage/value.h"

namespace maliva {

/// One column of a Table. The active vector alternative matches `type()`.
class Column {
 public:
  Column(std::string name, ColumnType type);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const;

  // Typed appenders. The caller must match the column type (checked by assert;
  // schema mismatches are programming errors, not runtime conditions).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendTimestamp(int64_t v);
  void AppendPoint(GeoPoint v);
  void AppendText(std::string v);

  // Typed accessors.
  int64_t Int64At(RowId row) const { return AsInt64()[row]; }
  double DoubleAt(RowId row) const { return AsDouble()[row]; }
  int64_t TimestampAt(RowId row) const { return AsTimestamp()[row]; }
  const GeoPoint& PointAt(RowId row) const { return AsPoint()[row]; }
  const std::string& TextAt(RowId row) const { return AsText()[row]; }

  /// Numeric view widened to double; valid for int64/double/timestamp columns.
  double NumericAt(RowId row) const;

  // Whole-vector views (asserted type match).
  const std::vector<int64_t>& AsInt64() const;
  const std::vector<double>& AsDouble() const;
  const std::vector<int64_t>& AsTimestamp() const;
  const std::vector<GeoPoint>& AsPoint() const;
  const std::vector<std::string>& AsText() const;

  void Reserve(size_t n);

 private:
  std::string name_;
  ColumnType type_;
  std::variant<std::vector<int64_t>, std::vector<double>, std::vector<GeoPoint>,
               std::vector<std::string>>
      data_;
};

}  // namespace maliva

#endif  // MALIVA_STORAGE_COLUMN_H_
