#include "storage/column.h"

namespace maliva {

Column::Column(std::string name, ColumnType type) : name_(std::move(name)), type_(type) {
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kTimestamp:
      data_ = std::vector<int64_t>();
      break;
    case ColumnType::kDouble:
      data_ = std::vector<double>();
      break;
    case ColumnType::kPoint:
      data_ = std::vector<GeoPoint>();
      break;
    case ColumnType::kText:
      data_ = std::vector<std::string>();
      break;
  }
}

size_t Column::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

void Column::AppendInt64(int64_t v) {
  assert(type_ == ColumnType::kInt64);
  std::get<std::vector<int64_t>>(data_).push_back(v);
}

void Column::AppendDouble(double v) {
  assert(type_ == ColumnType::kDouble);
  std::get<std::vector<double>>(data_).push_back(v);
}

void Column::AppendTimestamp(int64_t v) {
  assert(type_ == ColumnType::kTimestamp);
  std::get<std::vector<int64_t>>(data_).push_back(v);
}

void Column::AppendPoint(GeoPoint v) {
  assert(type_ == ColumnType::kPoint);
  std::get<std::vector<GeoPoint>>(data_).push_back(v);
}

void Column::AppendText(std::string v) {
  assert(type_ == ColumnType::kText);
  std::get<std::vector<std::string>>(data_).push_back(std::move(v));
}

double Column::NumericAt(RowId row) const {
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kTimestamp:
      return static_cast<double>(std::get<std::vector<int64_t>>(data_)[row]);
    case ColumnType::kDouble:
      return std::get<std::vector<double>>(data_)[row];
    default:
      assert(false && "NumericAt on non-numeric column");
      return 0.0;
  }
}

const std::vector<int64_t>& Column::AsInt64() const {
  assert(type_ == ColumnType::kInt64);
  return std::get<std::vector<int64_t>>(data_);
}

const std::vector<double>& Column::AsDouble() const {
  assert(type_ == ColumnType::kDouble);
  return std::get<std::vector<double>>(data_);
}

const std::vector<int64_t>& Column::AsTimestamp() const {
  assert(type_ == ColumnType::kTimestamp);
  return std::get<std::vector<int64_t>>(data_);
}

const std::vector<GeoPoint>& Column::AsPoint() const {
  assert(type_ == ColumnType::kPoint);
  return std::get<std::vector<GeoPoint>>(data_);
}

const std::vector<std::string>& Column::AsText() const {
  assert(type_ == ColumnType::kText);
  return std::get<std::vector<std::string>>(data_);
}

void Column::Reserve(size_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

}  // namespace maliva
