#include "storage/value.h"

namespace maliva {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64: return "int64";
    case ColumnType::kDouble: return "double";
    case ColumnType::kTimestamp: return "timestamp";
    case ColumnType::kPoint: return "point";
    case ColumnType::kText: return "text";
  }
  return "unknown";
}

}  // namespace maliva
