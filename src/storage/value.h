// Scalar value types stored in columns and referenced by predicates.

#ifndef MALIVA_STORAGE_VALUE_H_
#define MALIVA_STORAGE_VALUE_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace maliva {

/// Row identifier within a single table. Tables in this project are bounded
/// by available memory, so 32 bits suffice.
using RowId = uint32_t;

/// Column data types supported by the engine.
enum class ColumnType {
  kInt64,      ///< 64-bit integer (ids, counts)
  kDouble,     ///< double (prices, distances)
  kTimestamp,  ///< seconds since epoch, stored as int64
  kPoint,      ///< geo coordinate (lon, lat)
  kText,       ///< free text, indexed by keyword
};

/// Name of a ColumnType for error messages and table output.
const char* ColumnTypeName(ColumnType type);

/// Geographic coordinate.
struct GeoPoint {
  double lon = 0.0;
  double lat = 0.0;

  bool operator==(const GeoPoint& o) const { return lon == o.lon && lat == o.lat; }
};

/// Axis-aligned rectangle over (lon, lat); inclusive bounds.
struct BoundingBox {
  double min_lon = 0.0;
  double min_lat = 0.0;
  double max_lon = 0.0;
  double max_lat = 0.0;

  bool Contains(const GeoPoint& p) const {
    return p.lon >= min_lon && p.lon <= max_lon && p.lat >= min_lat && p.lat <= max_lat;
  }

  bool Intersects(const BoundingBox& o) const {
    return !(o.min_lon > max_lon || o.max_lon < min_lon || o.min_lat > max_lat ||
             o.max_lat < min_lat);
  }

  /// Smallest box covering both this box and `o`.
  BoundingBox Union(const BoundingBox& o) const {
    return BoundingBox{std::min(min_lon, o.min_lon), std::min(min_lat, o.min_lat),
                       std::max(max_lon, o.max_lon), std::max(max_lat, o.max_lat)};
  }

  /// Smallest box covering this box and point `p`.
  BoundingBox Extend(const GeoPoint& p) const {
    return BoundingBox{std::min(min_lon, p.lon), std::min(min_lat, p.lat),
                       std::max(max_lon, p.lon), std::max(max_lat, p.lat)};
  }

  double Width() const { return max_lon - min_lon; }
  double Height() const { return max_lat - min_lat; }
  double Area() const { return Width() * Height(); }
};

/// Inclusive numeric interval used by range predicates on int64/double/
/// timestamp columns (values are widened to double for comparison).
struct NumericRange {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double v) const { return v >= lo && v <= hi; }
  double Length() const { return hi - lo; }
};

}  // namespace maliva

#endif  // MALIVA_STORAGE_VALUE_H_
