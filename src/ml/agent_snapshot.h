// Versioned, immutable snapshot of a trained agent's networks.
//
// The online learning plane (DESIGN.md "Online learning plane") never mutates
// a serving agent in place: retraining fine-tunes a *clone* and publishes the
// result as a new AgentSnapshot. A snapshot owns copies of the online/target
// networks (Adam state included, so fine-tuning can resume from it), the
// exploration schedule the weights were trained under, and the training
// metadata operators need to audit a model's lineage. Snapshots are immutable
// after construction and shared via shared_ptr — publish is one pointer swap,
// and requests holding an old snapshot keep serving it race-free while a new
// version goes live.
//
// Layering: this file knows nothing about agents or serving. The service
// layer's ModelRegistry pairs each snapshot with a materialized QAgent.

#ifndef MALIVA_ML_AGENT_SNAPSHOT_H_
#define MALIVA_ML_AGENT_SNAPSHOT_H_

#include <cstdint>
#include <utility>

#include "ml/mlp.h"

namespace maliva {

/// Training lineage of one snapshot. `version` is assigned by the
/// ModelRegistry at publish time (monotonic per agent key, starting at 1 for
/// the offline warm-up snapshot); everything else is filled by the trainer
/// that produced the weights.
struct AgentSnapshotMeta {
  uint64_t version = 0;            ///< registry-assigned, monotonic per key
  uint64_t retrain_round = 0;      ///< 0 = offline warm-up training
  uint64_t transitions_trained_on = 0;  ///< cumulative serving transitions consumed

  /// Exploration schedule the weights were trained under (EpsilonSchedule
  /// parameters; the offline trainer's schedule for round 0, recorded
  /// unchanged by fine-tunes, which learn from greedy serving transitions).
  double eps_start = 0.0;
  double eps_end = 0.0;
  double eps_decay_steps = 0.0;

  /// Validation-gate evidence: mean greedy validation reward of the
  /// predecessor snapshot (pre) vs this one (post), and this snapshot's
  /// viable-query fraction on the validation split. For round 0 pre == post.
  double validation_reward_pre = 0.0;
  double validation_reward_post = 0.0;
  double validation_vqp = 0.0;
};

/// Immutable record of one published model version: the Q-network pair plus
/// its lineage. Copies of the networks are taken at construction, so the
/// source agent may keep training after the snapshot is cut.
class AgentSnapshot {
 public:
  AgentSnapshot(Mlp online, Mlp target, AgentSnapshotMeta meta)
      : online_(std::move(online)), target_(std::move(target)), meta_(meta) {}

  AgentSnapshot(const AgentSnapshot&) = delete;
  AgentSnapshot& operator=(const AgentSnapshot&) = delete;

  const Mlp& online() const { return online_; }
  const Mlp& target() const { return target_; }
  const AgentSnapshotMeta& meta() const { return meta_; }

  /// Total parameters across both networks (operator telemetry).
  size_t NumParameters() const;

 private:
  Mlp online_;
  Mlp target_;
  AgentSnapshotMeta meta_;
};

}  // namespace maliva

#endif  // MALIVA_ML_AGENT_SNAPSHOT_H_
