#include "ml/replay_buffer.h"

namespace maliva {

void ReplayBuffer::Add(Experience exp) {
  if (items_.size() < capacity_) {
    items_.push_back(std::move(exp));
    return;
  }
  items_[next_] = std::move(exp);
  next_ = (next_ + 1) % capacity_;
}

std::vector<const Experience*> ReplayBuffer::Sample(size_t k, Rng* rng) const {
  std::vector<const Experience*> out;
  if (items_.empty()) return out;
  k = std::min(k, items_.size());
  std::vector<size_t> idx = rng->SampleWithoutReplacement(items_.size(), k);
  out.reserve(k);
  for (size_t i : idx) out.push_back(&items_[i]);
  return out;
}

}  // namespace maliva
