#include "ml/agent_snapshot.h"

namespace maliva {

size_t AgentSnapshot::NumParameters() const {
  return online_.NumParameters() + target_.NumParameters();
}

}  // namespace maliva
