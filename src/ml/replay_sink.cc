#include "ml/replay_sink.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace maliva {

ShardedReplaySink::ShardedReplaySink(Config config)
    : capacity_(std::max<size_t>(1, config.capacity)) {
  size_t shards = std::max<size_t>(1, std::min(config.shards, capacity_));
  // Round *up*: the sink may hold slightly more than `capacity` but never
  // less — an effective capacity below the configured one could silently
  // starve a retrain trigger set near it.
  per_shard_capacity_ = (capacity_ + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

void ShardedReplaySink::Append(std::vector<Experience> batch) {
  // Round-robin shard pick, in chunks of at most one shard's capacity:
  // appenders spread evenly regardless of how requests are batched, and a
  // batch can never self-drop by out-sizing its own shard — the full
  // configured capacity stays usable even for one huge Record call.
  size_t offset = 0;
  while (offset < batch.size()) {
    size_t chunk = std::min(batch.size() - offset, per_shard_capacity_);
    Shard& shard =
        *shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size()];
    size_t dropped = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (size_t i = offset; i < offset + chunk; ++i) {
        shard.items.push_back(std::move(batch[i]));
      }
      while (shard.items.size() > per_shard_capacity_) {
        shard.items.pop_front();  // oldest feedback is the least valuable
        ++dropped;
      }
      // Counter updates stay under the shard lock: a Drain of this shard is
      // then ordered after them, so size_ can never transiently underflow
      // (items subtracted before they were added).
      appended_.fetch_add(chunk, std::memory_order_relaxed);
      if (dropped > 0) dropped_.fetch_add(dropped, std::memory_order_relaxed);
      size_.fetch_add(chunk - dropped, std::memory_order_relaxed);
    }
    offset += chunk;
  }
}

std::vector<Experience> ShardedReplaySink::Drain() {
  std::vector<Experience> out;
  for (std::unique_ptr<Shard>& shard : shards_) {
    std::deque<Experience> taken;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      taken.swap(shard->items);
      size_.fetch_sub(taken.size(), std::memory_order_relaxed);
    }
    out.reserve(out.size() + taken.size());
    for (Experience& exp : taken) out.push_back(std::move(exp));
  }
  return out;
}

}  // namespace maliva
