// Bounded, sharded sink for serving-time experience transitions.
//
// The feedback path of the online learning plane: every online-enabled Serve
// call appends its episode's (state, action, reward, next state) transitions
// here in one batch, and the background ContinualTrainer drains the sink when
// it fine-tunes. Appends come from many serving threads at once, so the sink
// is sharded (one mutex + deque per shard) — the same contention discipline
// as the SharedSelectivityStore.
// The bound is a hard FIFO: when a shard is full the oldest transitions are
// dropped (fresh serving feedback is worth more than stale), and drops are
// counted so operators can see when retraining lags traffic. Shards are
// assigned round-robin from an internal counter, so capacity is used evenly
// no matter how the caller's requests are distributed (a lone-Serve() loop
// fills all shards, not one).

#ifndef MALIVA_ML_REPLAY_SINK_H_
#define MALIVA_ML_REPLAY_SINK_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "ml/replay_buffer.h"

namespace maliva {

/// Thread-safe bounded transition inbox between serving and retraining.
class ShardedReplaySink {
 public:
  struct Config {
    /// Total transitions resident across all shards. Per-shard bounds round
    /// *up*, so the effective capacity is >= this value (never below — a
    /// retrain trigger set at the capacity must stay reachable).
    size_t capacity = 16384;
    size_t shards = 8;  ///< lock shards (appender contention)
  };

  explicit ShardedReplaySink(Config config);

  ShardedReplaySink(const ShardedReplaySink&) = delete;
  ShardedReplaySink& operator=(const ShardedReplaySink&) = delete;

  /// Appends one request's transitions (one lock acquisition per call).
  void Append(std::vector<Experience> batch);

  /// Removes and returns every buffered transition (training consumes the
  /// feedback; a drained transition is never trained on twice).
  std::vector<Experience> Drain();

  /// Transitions currently buffered. Exact between operations; a racing
  /// reader may see a value mid-append.
  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Monotonic counters for telemetry.
  uint64_t TotalAppended() const { return appended_.load(std::memory_order_relaxed); }
  uint64_t TotalDropped() const { return dropped_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    std::mutex mutex;
    std::deque<Experience> items;
  };

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_shard_{0};
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> appended_{0};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace maliva

#endif  // MALIVA_ML_REPLAY_SINK_H_
