// Epsilon-greedy exploration schedule (Algorithm 1, lines 10-15).

#ifndef MALIVA_ML_EPSILON_H_
#define MALIVA_ML_EPSILON_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace maliva {

/// Exponentially decaying exploration rate: starts high, decays toward `end`
/// with the given step constant (paper: "start with a high probability of
/// exploration and gradually decrease it").
class EpsilonSchedule {
 public:
  EpsilonSchedule(double start, double end, double decay_steps)
      : start_(start), end_(end), decay_steps_(std::max(1.0, decay_steps)) {}

  double ValueAt(int64_t step) const {
    double t = static_cast<double>(step) / decay_steps_;
    return end_ + (start_ - end_) * std::exp(-t);
  }

 private:
  double start_;
  double end_;
  double decay_steps_;
};

}  // namespace maliva

#endif  // MALIVA_ML_EPSILON_H_
