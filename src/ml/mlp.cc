#include "ml/mlp.h"

#include <cassert>
#include <cmath>

namespace maliva {

LinearLayer::LinearLayer(size_t in_dim, size_t out_dim, Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  assert(in_dim > 0 && out_dim > 0);
  w_.resize(in_dim * out_dim);
  b_.assign(out_dim, 0.0);
  // He initialization (ReLU-friendly).
  double stddev = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (double& w : w_) w = rng->Normal(0.0, stddev);
  gw_.assign(w_.size(), 0.0);
  gb_.assign(b_.size(), 0.0);
  mw_.assign(w_.size(), 0.0);
  vw_.assign(w_.size(), 0.0);
  mb_.assign(b_.size(), 0.0);
  vb_.assign(b_.size(), 0.0);
}

void LinearLayer::Forward(const std::vector<double>& x, std::vector<double>* y) const {
  assert(x.size() == in_dim_);
  y->assign(out_dim_, 0.0);
  for (size_t o = 0; o < out_dim_; ++o) {
    const double* row = &w_[o * in_dim_];
    double acc = b_[o];
    for (size_t i = 0; i < in_dim_; ++i) acc += row[i] * x[i];
    (*y)[o] = acc;
  }
}

void LinearLayer::Backward(const std::vector<double>& x, const std::vector<double>& grad_y,
                           std::vector<double>* grad_x) {
  assert(x.size() == in_dim_ && grad_y.size() == out_dim_);
  grad_x->assign(in_dim_, 0.0);
  for (size_t o = 0; o < out_dim_; ++o) {
    double gy = grad_y[o];
    if (gy == 0.0) continue;
    gb_[o] += gy;
    double* grow = &gw_[o * in_dim_];
    const double* wrow = &w_[o * in_dim_];
    for (size_t i = 0; i < in_dim_; ++i) {
      grow[i] += gy * x[i];
      (*grad_x)[i] += gy * wrow[i];
    }
  }
}

void LinearLayer::AdamStep(double lr, double beta1, double beta2, double eps, int64_t t) {
  double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
  double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
  for (size_t i = 0; i < w_.size(); ++i) {
    mw_[i] = beta1 * mw_[i] + (1.0 - beta1) * gw_[i];
    vw_[i] = beta2 * vw_[i] + (1.0 - beta2) * gw_[i] * gw_[i];
    w_[i] -= lr * (mw_[i] / bc1) / (std::sqrt(vw_[i] / bc2) + eps);
  }
  for (size_t i = 0; i < b_.size(); ++i) {
    mb_[i] = beta1 * mb_[i] + (1.0 - beta1) * gb_[i];
    vb_[i] = beta2 * vb_[i] + (1.0 - beta2) * gb_[i] * gb_[i];
    b_[i] -= lr * (mb_[i] / bc1) / (std::sqrt(vb_[i] / bc2) + eps);
  }
  ZeroGrad();
}

void LinearLayer::ScaleGrad(double factor) {
  for (double& g : gw_) g *= factor;
  for (double& g : gb_) g *= factor;
}

void LinearLayer::ZeroGrad() {
  gw_.assign(gw_.size(), 0.0);
  gb_.assign(gb_.size(), 0.0);
}

void LinearLayer::CopyParamsFrom(const LinearLayer& other) {
  assert(in_dim_ == other.in_dim_ && out_dim_ == other.out_dim_);
  w_ = other.w_;
  b_ = other.b_;
}

Mlp::Mlp(const std::vector<size_t>& layer_sizes, Rng* rng) {
  assert(layer_sizes.size() >= 2);
  for (size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
    layers_.emplace_back(layer_sizes[l], layer_sizes[l + 1], rng);
  }
}

std::vector<double> Mlp::Forward(const std::vector<double>& x) const {
  std::vector<double> cur = x;
  std::vector<double> next;
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].Forward(cur, &next);
    if (l + 1 < layers_.size()) {
      for (double& v : next) v = v > 0.0 ? v : 0.0;  // ReLU on hidden layers
    }
    cur = next;
  }
  return cur;
}

double Mlp::AccumulateGradient(const std::vector<double>& x, int action, double target) {
  // Forward pass storing activations (post-ReLU inputs to each layer).
  std::vector<std::vector<double>> inputs;  // inputs[l] is input to layer l
  inputs.reserve(layers_.size());
  std::vector<double> cur = x;
  std::vector<double> next;
  for (size_t l = 0; l < layers_.size(); ++l) {
    inputs.push_back(cur);
    layers_[l].Forward(cur, &next);
    if (l + 1 < layers_.size()) {
      for (double& v : next) v = v > 0.0 ? v : 0.0;
    }
    cur = next;
  }
  assert(action >= 0 && static_cast<size_t>(action) < cur.size());
  double err = cur[static_cast<size_t>(action)] - target;

  // Backward: dL/dq_a = 2 (q_a - y); zero elsewhere.
  std::vector<double> grad(cur.size(), 0.0);
  grad[static_cast<size_t>(action)] = 2.0 * err;
  std::vector<double> grad_in;
  for (size_t l = layers_.size(); l-- > 0;) {
    if (l + 1 < layers_.size()) {
      // Undo ReLU: gradient flows only where the activation was positive.
      // inputs[l + 1] is the post-ReLU output of layer l.
      const std::vector<double>& act = inputs[l + 1];
      for (size_t i = 0; i < grad.size(); ++i) {
        if (act[i] <= 0.0) grad[i] = 0.0;
      }
    }
    layers_[l].Backward(inputs[l], grad, &grad_in);
    grad = grad_in;
  }
  grad_scale_pending_ += 1.0;
  return err * err;
}

void Mlp::Step(double lr, size_t batch_size) {
  assert(batch_size > 0);
  ++adam_t_;
  double scale = 1.0 / static_cast<double>(batch_size);
  for (LinearLayer& layer : layers_) {
    layer.ScaleGrad(scale);
    layer.AdamStep(lr, 0.9, 0.999, 1e-8, adam_t_);
  }
  grad_scale_pending_ = 0.0;
}

void Mlp::CopyParamsFrom(const Mlp& other) {
  assert(layers_.size() == other.layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].CopyParamsFrom(other.layers_[l]);
  }
}

size_t Mlp::NumParameters() const {
  size_t n = 0;
  for (const LinearLayer& layer : layers_) {
    n += layer.in_dim() * layer.out_dim() + layer.out_dim();
  }
  return n;
}

}  // namespace maliva
