// Experience replay memory for deep Q-learning (Algorithm 1, line 18).

#ifndef MALIVA_ML_REPLAY_BUFFER_H_
#define MALIVA_ML_REPLAY_BUFFER_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace maliva {

/// One (s, a, s', r') experience tuple. `next_valid[i]` marks actions still
/// available in s' — the Bellman target maxes only over remaining RQs.
struct Experience {
  std::vector<double> state;
  int action = 0;
  std::vector<double> next_state;
  double reward = 0.0;
  bool terminal = false;
  std::vector<uint8_t> next_valid;
};

/// FIFO ring buffer with uniform sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity) : capacity_(capacity) {}

  void Add(Experience exp);

  /// Uniform sample of up to `k` experiences (with replacement when k exceeds
  /// size is avoided: sampled without replacement, capped at size()).
  std::vector<const Experience*> Sample(size_t k, Rng* rng) const;

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t next_ = 0;  // overwrite cursor once full
  std::vector<Experience> items_;
};

}  // namespace maliva

#endif  // MALIVA_ML_REPLAY_BUFFER_H_
