// Minimal dense neural network with Adam, sufficient for Maliva's Q-network.
//
// The paper's Q-network is an MLP: input layer (state vector), two fully
// connected ReLU hidden layers sized like the input, and a linear output
// layer with one Q-value per action (Fig 8). PyTorch is unavailable offline,
// so forward/backward are hand-written; the network is tiny (tens of units).

#ifndef MALIVA_ML_MLP_H_
#define MALIVA_ML_MLP_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace maliva {

/// One dense layer y = W x + b with Adam-optimized parameters.
class LinearLayer {
 public:
  LinearLayer(size_t in_dim, size_t out_dim, Rng* rng);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

  /// y = W x + b.
  void Forward(const std::vector<double>& x, std::vector<double>* y) const;

  /// Accumulates parameter gradients for (x, grad_y) and writes grad_x.
  void Backward(const std::vector<double>& x, const std::vector<double>& grad_y,
                std::vector<double>* grad_x);

  /// Applies one Adam update with the accumulated gradients, then zeroes them.
  void AdamStep(double lr, double beta1, double beta2, double eps, int64_t t);

  /// Multiplies accumulated gradients by `factor` (batch-mean normalization).
  void ScaleGrad(double factor);

  void ZeroGrad();

  /// Copies parameters (not optimizer state) from `other`.
  void CopyParamsFrom(const LinearLayer& other);

  const std::vector<double>& weights() const { return w_; }
  const std::vector<double>& bias() const { return b_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  std::vector<double> w_;   // row-major out_dim x in_dim
  std::vector<double> b_;
  std::vector<double> gw_, gb_;          // gradient accumulators
  std::vector<double> mw_, vw_, mb_, vb_;  // Adam moments
};

/// Multi-layer perceptron with ReLU hidden activations and linear output.
class Mlp {
 public:
  /// `layer_sizes` = {in, hidden..., out}; requires at least {in, out}.
  Mlp(const std::vector<size_t>& layer_sizes, Rng* rng);

  size_t input_dim() const { return layers_.front().in_dim(); }
  size_t output_dim() const { return layers_.back().out_dim(); }

  /// Forward pass.
  std::vector<double> Forward(const std::vector<double>& x) const;

  /// One supervised sample for DQN-style training: only output `action`
  /// receives gradient toward `target`. Accumulates gradients; returns the
  /// squared error of that output.
  double AccumulateGradient(const std::vector<double>& x, int action, double target);

  /// Adam step over all layers with accumulated (mean) gradients.
  /// `batch_size` normalizes the accumulated gradients.
  void Step(double lr, size_t batch_size);

  /// Copies all parameters from `other` (target-network sync).
  void CopyParamsFrom(const Mlp& other);

  size_t NumParameters() const;

 private:
  std::vector<LinearLayer> layers_;
  int64_t adam_t_ = 0;
  double grad_scale_pending_ = 0.0;  // #samples accumulated since last Step
};

}  // namespace maliva

#endif  // MALIVA_ML_MLP_H_
