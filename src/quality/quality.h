// Visualization quality functions F(r(Q), r(RQ)) (Section 6.1).
//
// Maliva places no restriction on the quality function; we provide the
// Jaccard similarity used by the paper's experiments (Fig 9, Section 7.7)
// over both scatterplot ids and heatmap bins, plus the distribution-precision
// metric of Sample+Seek for aggregate visualizations.

#ifndef MALIVA_QUALITY_QUALITY_H_
#define MALIVA_QUALITY_QUALITY_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "engine/engine.h"
#include "query/rewritten_query.h"

namespace maliva {

/// Jaccard similarity of two id sets (scatterplot visualizations).
double JaccardIds(const VisResult& a, const VisResult& b);

/// Jaccard similarity of the non-empty bin sets (heatmap visualizations).
double JaccardBins(const VisResult& a, const VisResult& b);

/// Distribution precision (Sample+Seek style): 1 - 0.5 * L1 distance between
/// the normalized bin-count distributions.
double DistributionPrecision(const VisResult& exact, const VisResult& approx);

/// Dispatches on the query's output kind: Jaccard over ids for scatterplots,
/// Jaccard over bins for heatmaps. Exact results score 1.
double VisQuality(const Query& query, const VisResult& exact, const VisResult& approx);

/// Memoized quality of rewritten queries against their original query.
/// Executing Q exactly is expensive; the paper only ever pays this cost in
/// the offline training phase, and so do we.
///
/// Thread-safe: one oracle instance is shared by every concurrent serving
/// thread. Lookups take a shared lock; cache misses execute outside the lock
/// (execution is deterministic, so racing duplicates agree) and insert under
/// a unique lock.
class QualityOracle {
 public:
  explicit QualityOracle(const Engine* engine) : engine_(engine) {}

  /// F(r(Q), r(RQ)) for `option` applied to `query`; 1.0 for exact options
  /// (no quality loss) without executing anything.
  double Quality(const Query& query, const RewriteOption& option) const;

 private:
  const Engine* engine_;
  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<uint64_t, VisResult> exact_cache_;   // by query id
  mutable std::unordered_map<uint64_t, double> quality_cache_;    // by (q, ro)
};

}  // namespace maliva

#endif  // MALIVA_QUALITY_QUALITY_H_
