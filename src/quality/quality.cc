#include "quality/quality.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <mutex>
#include <unordered_set>

namespace maliva {

double JaccardIds(const VisResult& a, const VisResult& b) {
  if (a.ids.empty() && b.ids.empty()) return 1.0;
  std::unordered_set<int64_t> sa(a.ids.begin(), a.ids.end());
  size_t inter = 0;
  std::unordered_set<int64_t> sb(b.ids.begin(), b.ids.end());
  for (int64_t id : sb) {
    if (sa.count(id) > 0) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double JaccardBins(const VisResult& a, const VisResult& b) {
  if (a.bins.empty() && b.bins.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& [bin, count] : b.bins) {
    if (a.bins.count(bin) > 0) ++inter;
  }
  size_t uni = a.bins.size() + b.bins.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DistributionPrecision(const VisResult& exact, const VisResult& approx) {
  double total_exact = 0.0;
  double total_approx = 0.0;
  for (const auto& [bin, count] : exact.bins) total_exact += static_cast<double>(count);
  for (const auto& [bin, count] : approx.bins) total_approx += static_cast<double>(count);
  if (total_exact == 0.0 && total_approx == 0.0) return 1.0;
  if (total_exact == 0.0 || total_approx == 0.0) return 0.0;

  double l1 = 0.0;
  for (const auto& [bin, count] : exact.bins) {
    double pe = static_cast<double>(count) / total_exact;
    auto it = approx.bins.find(bin);
    double pa = it == approx.bins.end()
                    ? 0.0
                    : static_cast<double>(it->second) / total_approx;
    l1 += std::abs(pe - pa);
  }
  for (const auto& [bin, count] : approx.bins) {
    if (exact.bins.count(bin) == 0) l1 += static_cast<double>(count) / total_approx;
  }
  return std::max(0.0, 1.0 - 0.5 * l1);
}

double VisQuality(const Query& query, const VisResult& exact, const VisResult& approx) {
  if (query.output == OutputKind::kScatter) return JaccardIds(exact, approx);
  return JaccardBins(exact, approx);
}

namespace {

uint64_t OptionKey(const Query& query, const RewriteOption& option) {
  uint64_t h = query.id * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(option.hints.index_mask.has_value() ? (*option.hints.index_mask + 1) : 0);
  mix(static_cast<uint64_t>(option.hints.join_method));
  mix(static_cast<uint64_t>(option.approx.kind));
  mix(std::bit_cast<uint64_t>(option.approx.fraction));
  return h;
}

}  // namespace

double QualityOracle::Quality(const Query& query, const RewriteOption& option) const {
  if (!option.approx.IsApproximate()) return 1.0;

  uint64_t key = OptionKey(query, option);
  bool have_exact = false;
  VisResult exact_vis;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = quality_cache_.find(key);
    if (it != quality_cache_.end()) return it->second;
    auto exact_it = exact_cache_.find(query.id);
    if (exact_it != exact_cache_.end()) {
      have_exact = true;
      exact_vis = exact_it->second;
    }
  }

  // Execute outside the lock: deterministic, so concurrent duplicates agree
  // and the losing emplace is a no-op.
  if (!have_exact) {
    RewrittenQuery exact_rq{&query, RewriteOption{}};
    Result<ExecResult> exact = engine_->Execute(exact_rq);
    assert(exact.ok());
    exact_vis = std::move(exact.value().vis);
  }

  RewrittenQuery rq{&query, option};
  Result<ExecResult> approx = engine_->Execute(rq);
  assert(approx.ok());
  double q = VisQuality(query, exact_vis, approx.value().vis);

  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!have_exact) exact_cache_.emplace(query.id, std::move(exact_vis));
  quality_cache_.emplace(key, q);
  return q;
}

}  // namespace maliva
