#include "core/query_env.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace maliva {

QueryEnv::QueryEnv(const QteContext* ctx, const QueryTimeEstimator* qte,
                   const EnvConfig& config, double initial_elapsed_ms,
                   const SelectivityCache* inherited_cache)
    : ctx_(ctx),
      qte_(qte),
      config_(config),
      owned_cache_(inherited_cache != nullptr ? *inherited_cache
                                              : SelectivityCache(ctx->NumSlots())),
      cache_(&*owned_cache_),
      elapsed_ms_(initial_elapsed_ms) {
  InitOptionState();
}

QueryEnv::QueryEnv(const QteContext* ctx, const QueryTimeEstimator* qte,
                   const EnvConfig& config, SelectivityCache* session_cache,
                   double initial_elapsed_ms)
    : ctx_(ctx),
      qte_(qte),
      config_(config),
      cache_(session_cache),
      elapsed_ms_(initial_elapsed_ms) {
  assert(session_cache != nullptr);
  assert(session_cache->num_slots() == ctx->NumSlots());
  InitOptionState();
}

void QueryEnv::InitOptionState() {
  size_t n = ctx_->options->size();
  assert(n > 0);
  est_cost_.resize(n);
  est_time_.assign(n, 0.0);
  explored_.assign(n, 0);
  valid_.assign(n, 1);
  for (size_t i = 0; i < n; ++i) {
    est_cost_[i] = qte_->PredictCostMs(*ctx_, i, *cache_);
  }
}

std::vector<double> QueryEnv::Features() const {
  size_t n = est_cost_.size();
  std::vector<double> f;
  f.reserve(2 * n + 1);
  double tau = config_.tau_ms;
  auto clip = [](double v) { return std::clamp(v, 0.0, 5.0); };
  f.push_back(clip(elapsed_ms_ / tau));
  for (size_t i = 0; i < n; ++i) f.push_back(clip(est_cost_[i] / tau));
  for (size_t i = 0; i < n; ++i) f.push_back(clip(est_time_[i] / tau));
  return f;
}

bool QueryEnv::HasRemaining() const {
  return std::any_of(valid_.begin(), valid_.end(), [](uint8_t v) { return v != 0; });
}

double QueryEnv::TerminalReward(size_t decided) {
  terminal_ = true;
  decided_ = decided;
  const RewriteOption& option = (*ctx_->options)[decided];
  decided_exec_ms_ = ctx_->oracle->TrueTimeMs(*ctx_->query, option);

  double tau = config_.tau_ms;
  double efficiency = (tau - elapsed_ms_ - decided_exec_ms_) / tau;
  double reward = efficiency;
  if (config_.beta < 1.0) {
    assert(config_.quality != nullptr);
    double q = config_.quality->Quality(*ctx_->query, option);
    reward = config_.beta * efficiency + (1.0 - config_.beta) * q;
  }
  return std::max(config_.reward_floor, reward);
}

double QueryEnv::Step(size_t action) {
  assert(!terminal_);
  assert(action < valid_.size() && valid_[action] != 0);

  QteEstimate est = qte_->Estimate(*ctx_, action, cache_);
  elapsed_ms_ += est.cost_ms + config_.agent_decision_ms;
  est_time_[action] = est.est_ms;
  explored_[action] = 1;
  valid_[action] = 0;
  est_cost_[action] = est.cost_ms;  // actual paid cost replaces the estimate
  ++steps_;

  // Shared selectivities just got cheaper for the unexplored RQs (Fig 7).
  for (size_t i = 0; i < est_cost_.size(); ++i) {
    if (!explored_[i]) est_cost_[i] = qte_->PredictCostMs(*ctx_, i, *cache_);
  }

  double tau = config_.tau_ms;

  // Case 1: the estimate suggests this RQ is viable — commit to it.
  if (elapsed_ms_ + est.est_ms <= tau) {
    return TerminalReward(action);
  }
  // Cases 2 and 3: budget exhausted or options exhausted — commit to the
  // fastest RQ estimated so far.
  if (elapsed_ms_ >= tau || !HasRemaining()) {
    size_t best = action;
    double best_ms = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < est_time_.size(); ++i) {
      if (explored_[i] && est_time_[i] < best_ms) {
        best_ms = est_time_[i];
        best = i;
      }
    }
    return TerminalReward(best);
  }
  return 0.0;  // intermediate state: no reward yet
}

}  // namespace maliva
