// The MDP environment for query rewriting (Section 4.1).
//
// State  s = (E, C_1..C_n, T_1..T_n): elapsed planning time, predicted
//        estimation cost per rewritten query, estimated execution time per
//        explored rewritten query.
// Action a = explore RQ_a: ask the QTE to estimate its execution time.
// Transition: pay the actual estimation cost, record the estimate, refresh
//        the C_i of unexplored RQs (shared selectivities got cheaper).
// Termination: the last estimate looks viable (E + T_a <= tau), the budget is
//        spent (E >= tau), or every RQ was explored.
// Reward: 0 at intermediate steps; Eq (1)/(2) at termination against the
//        *actual* execution time of the decided rewritten query.

#ifndef MALIVA_CORE_QUERY_ENV_H_
#define MALIVA_CORE_QUERY_ENV_H_

#include <memory>
#include <optional>
#include <vector>

#include "qte/qte.h"
#include "quality/quality.h"

namespace maliva {

/// Environment parameters shared across queries of one experiment.
struct EnvConfig {
  double tau_ms = 500.0;  ///< time budget
  /// Weight of efficiency vs quality in the reward (Eq 2); 1.0 recovers the
  /// efficiency-only reward (Eq 1).
  double beta = 1.0;
  /// Required when beta < 1: supplies F(r(Q), r(RQ)).
  const QualityOracle* quality = nullptr;
  /// Per-decision overhead of the agent itself (NN inference), virtual ms.
  double agent_decision_ms = 0.5;
  /// Rewards below this value are clipped (very slow plans otherwise produce
  /// huge negative targets that destabilize the tiny Q-network).
  double reward_floor = -5.0;
};

/// One planning episode over a fixed query and RO set.
class QueryEnv {
 public:
  /// `ctx` must outlive the env. `initial_elapsed_ms` and a pre-seeded cache
  /// support the two-stage rewriter, whose second stage resumes mid-budget.
  /// The env owns its SelectivityCache (copied from `inherited_cache` when
  /// one is given).
  QueryEnv(const QteContext* ctx, const QueryTimeEstimator* qte,
           const EnvConfig& config, double initial_elapsed_ms = 0.0,
           const SelectivityCache* inherited_cache = nullptr);

  /// Serving-path variant: the episode's cache is owned by the caller (a
  /// RewriteSession), may already hold collected selectivities, and must have
  /// ctx->NumSlots() slots and outlive the env. Multi-stage rewriters pass
  /// the same session cache to every stage to resume collections.
  QueryEnv(const QteContext* ctx, const QueryTimeEstimator* qte,
           const EnvConfig& config, SelectivityCache* session_cache,
           double initial_elapsed_ms = 0.0);

  // Not copyable/movable: cache_ may point into owned_cache_, which a
  // defaulted copy would leave aliasing the source env.
  QueryEnv(const QueryEnv&) = delete;
  QueryEnv& operator=(const QueryEnv&) = delete;

  size_t num_actions() const { return ctx_->options->size(); }

  /// Normalized state features (E, C_1..C_n, T_1..T_n) / tau; dim 2n + 1.
  std::vector<double> Features() const;

  /// Actions (RQ indices) not yet explored.
  const std::vector<uint8_t>& valid_actions() const { return valid_; }
  bool HasRemaining() const;

  /// Explores RQ `action`. Returns the immediate reward (0 unless terminal).
  double Step(size_t action);

  bool terminal() const { return terminal_; }
  /// Index of the decided rewritten query (valid once terminal).
  size_t decided_option() const { return decided_; }
  /// Elapsed planning time so far (the s.E component).
  double elapsed_ms() const { return elapsed_ms_; }
  /// Actual execution time of the decided RQ (valid once terminal).
  double decided_exec_ms() const { return decided_exec_ms_; }
  /// Number of exploration steps taken.
  size_t steps() const { return steps_; }

  const SelectivityCache& cache() const { return *cache_; }
  const QteContext& ctx() const { return *ctx_; }
  const EnvConfig& config() const { return config_; }

 private:
  double TerminalReward(size_t decided);
  void InitOptionState();

  const QteContext* ctx_;
  const QueryTimeEstimator* qte_;
  EnvConfig config_;

  std::optional<SelectivityCache> owned_cache_;
  SelectivityCache* cache_;  // owned_cache_ or the caller's session cache
  double elapsed_ms_ = 0.0;
  std::vector<double> est_cost_;   // C_i
  std::vector<double> est_time_;   // T_i (0 until explored)
  std::vector<uint8_t> explored_;
  std::vector<uint8_t> valid_;
  bool terminal_ = false;
  size_t decided_ = 0;
  double decided_exec_ms_ = 0.0;
  size_t steps_ = 0;
};

}  // namespace maliva

#endif  // MALIVA_CORE_QUERY_ENV_H_
