// Per-request mutable state for one serving call.
//
// The serving stack is split into a shared-immutable half (engine catalog,
// trained agents, QTEs, option sets — frozen after warm-up, see
// src/service/serving_state.h) and this per-request half: everything a single
// Serve call mutates lives in a RewriteSession owned by that call's stack
// frame. Sessions are never shared between threads, so the serve path needs
// no locking beyond the two memoized oracles.
//
// A session owns:
//   * the request's SelectivityCache(s) — rewriters allocate episode caches
//     here instead of keeping any internal scratch state;
//   * a deterministic RNG seeded from the request *index* (not from a shared
//     stream), so batch results are independent of thread interleaving;
//   * the multi-attempt accounting used by the quality-floor fallback (the
//     first attempt's planning time stays on the final bill);
//   * the request's binding to the cross-request knowledge plane: when the
//     service attaches a SharedSelectivityStore, episode caches are
//     pre-seeded with the selectivities earlier requests already collected.

#ifndef MALIVA_CORE_REWRITE_SESSION_H_
#define MALIVA_CORE_REWRITE_SESSION_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "ml/replay_buffer.h"
#include "qte/selectivity_cache.h"
#include "qte/shared_selectivity_store.h"
#include "util/query_profiler.h"
#include "util/rng.h"

namespace maliva {

class QAgent;

/// Mutable state of one in-flight rewrite request.
class RewriteSession {
 public:
  explicit RewriteSession(uint64_t seed) : rng_(seed) {}

  RewriteSession(const RewriteSession&) = delete;
  RewriteSession& operator=(const RewriteSession&) = delete;

  /// Session seed for request `request_index` of a batch served under
  /// `base_seed`: a splitmix64 finalization of the pair, so neighbouring
  /// indices get uncorrelated streams and the mapping is stable across
  /// thread counts and interleavings.
  static uint64_t SeedFor(uint64_t base_seed, uint64_t request_index) {
    uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (request_index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// The request's private random stream. Built-in strategies are fully
  /// deterministic and never draw from it; stochastic custom strategies must
  /// use this (and only this) source so batch serving stays reproducible.
  Rng& rng() { return rng_; }

  /// Attaches the cross-request knowledge plane for this request: caches
  /// allocated after this call are pre-seeded from `store` (slot `i` keyed
  /// by `slot_keys[i]`, entries valid under `epoch`). Seeded slots read as
  /// already collected, so the QTE cost accounting (PredictCostMs /
  /// CollectCostMs) charges nothing for them — shared hits are free exactly
  /// like intra-request hits, the paper's Fig 7 mechanism fleet-wide. Both
  /// pointers are borrowed and must outlive the session.
  void BindSharedStore(const SharedSelectivityStore* store,
                       const std::vector<uint64_t>* slot_keys, uint64_t epoch) {
    store_ = store;
    slot_keys_ = slot_keys;
    epoch_ = epoch;
  }

  /// Allocates a selectivity cache for one planning episode. References stay
  /// valid for the session's lifetime (deque storage), so a multi-stage
  /// rewriter can resume an earlier stage's collected selectivities. With a
  /// shared store bound (and slot keys matching the slot count), the cache
  /// starts pre-seeded with the store's knowledge instead of cold.
  SelectivityCache& NewCache(size_t num_slots) {
    SelectivityCache& cache = caches_.emplace_back(num_slots);
    cache.BindProfiler(profiler_);
    if (store_ != nullptr && slot_keys_ != nullptr &&
        slot_keys_->size() == num_slots) {
      // Pre-seeding is selectivity work inherited from earlier requests, so
      // the whole span is billed to the ladder *and* re-attributed as cached.
      if (profiler_ != nullptr) profiler_->StartTimer(QueryProfiler::kSelectivity);
      for (size_t slot = 0; slot < num_slots; ++slot) {
        std::optional<double> sel = store_->Lookup((*slot_keys_)[slot], epoch_);
        if (sel.has_value()) {
          cache.Set(slot, *sel);
          ++shared_seeded_;
        }
      }
      if (profiler_ != nullptr) {
        double span = profiler_->StopTimer(QueryProfiler::kSelectivity);
        profiler_->AddCachedMs(QueryProfiler::kSelectivity, span);
      }
    }
    return cache;
  }

  size_t num_caches() const { return caches_.size(); }

  /// Episode caches allocated so far (the service walks these after serving
  /// to publish newly collected selectivities back to the shared store).
  const std::deque<SelectivityCache>& caches() const { return caches_; }

  /// Slots pre-seeded from the shared store, summed across caches — the
  /// request's "shared hits". Counted per episode cache deliberately: each
  /// seeding saves that episode one collection, so a multi-cache strategy
  /// that would have re-collected a slot per episode counts the saving per
  /// episode too.
  size_t shared_seeded() const { return shared_seeded_; }

  // --- cost profiler binding (ISSUE 9) -------------------------------------

  /// Attaches the request's cost profiler: caches allocated after this call
  /// carry the pointer, so the QTEs' collection loops can bill the
  /// selectivity ladder. Borrowed; the service owns the profiler on the
  /// serve call's stack. nullptr (the default) keeps profiling off with a
  /// single pointer check per would-be span.
  void BindProfiler(QueryProfiler* profiler) { profiler_ = profiler; }
  QueryProfiler* profiler() const { return profiler_; }

  // --- online learning plane binding ---------------------------------------

  /// Serves this request with `agent` — the online plane's current published
  /// snapshot — instead of the strategy's construction-time weights. Borrowed;
  /// the service keeps the owning snapshot alive for the duration of the
  /// call. Only single-agent strategies (MalivaRewriter) honor the override.
  void BindAgentOverride(const QAgent* agent) { agent_override_ = agent; }
  const QAgent* agent_override() const { return agent_override_; }

  /// When enabled, episode runners record every observed MDP transition
  /// (state, action, reward from the *actual* virtual outcome, next state)
  /// into the session; the service forwards them to the replay sink after
  /// serving. Off by default — capture copies feature vectors, so the frozen
  /// serving path never pays for it.
  void set_capture_transitions(bool on) { capture_transitions_ = on; }
  bool capture_transitions() const { return capture_transitions_; }

  /// Appends one observed transition (called by RunGreedyEpisode when
  /// capture is enabled).
  void RecordTransition(Experience exp) { transitions_.push_back(std::move(exp)); }

  const std::vector<Experience>& transitions() const { return transitions_; }

  /// Moves the captured transitions out (the service hands them to the
  /// ShardedReplaySink in one batch).
  std::vector<Experience> TakeTransitions() { return std::move(transitions_); }

  // --- multi-attempt accounting (quality-floor fallback) -------------------

  /// Records planning effort of an abandoned attempt; the service adds it to
  /// the final outcome's bill.
  void ChargeAbandonedAttempt(double planning_ms, size_t steps) {
    abandoned_planning_ms_ += planning_ms;
    abandoned_steps_ += steps;
  }

  double abandoned_planning_ms() const { return abandoned_planning_ms_; }
  size_t abandoned_steps() const { return abandoned_steps_; }

  bool exact_fallback() const { return exact_fallback_; }
  void set_exact_fallback(bool value) { exact_fallback_ = value; }

 private:
  Rng rng_;
  std::deque<SelectivityCache> caches_;
  const SharedSelectivityStore* store_ = nullptr;
  const std::vector<uint64_t>* slot_keys_ = nullptr;
  uint64_t epoch_ = 0;
  size_t shared_seeded_ = 0;
  QueryProfiler* profiler_ = nullptr;
  const QAgent* agent_override_ = nullptr;
  bool capture_transitions_ = false;
  std::vector<Experience> transitions_;
  double abandoned_planning_ms_ = 0.0;
  size_t abandoned_steps_ = 0;
  bool exact_fallback_ = false;
};

}  // namespace maliva

#endif  // MALIVA_CORE_REWRITE_SESSION_H_
