// Per-request mutable state for one serving call.
//
// The serving stack is split into a shared-immutable half (engine catalog,
// trained agents, QTEs, option sets — frozen after warm-up, see
// src/service/serving_state.h) and this per-request half: everything a single
// Serve call mutates lives in a RewriteSession owned by that call's stack
// frame. Sessions are never shared between threads, so the serve path needs
// no locking beyond the two memoized oracles.
//
// A session owns:
//   * the request's SelectivityCache(s) — rewriters allocate episode caches
//     here instead of keeping any internal scratch state;
//   * a deterministic RNG seeded from the request *index* (not from a shared
//     stream), so batch results are independent of thread interleaving;
//   * the multi-attempt accounting used by the quality-floor fallback (the
//     first attempt's planning time stays on the final bill).

#ifndef MALIVA_CORE_REWRITE_SESSION_H_
#define MALIVA_CORE_REWRITE_SESSION_H_

#include <cstdint>
#include <deque>

#include "qte/selectivity_cache.h"
#include "util/rng.h"

namespace maliva {

/// Mutable state of one in-flight rewrite request.
class RewriteSession {
 public:
  explicit RewriteSession(uint64_t seed) : rng_(seed) {}

  RewriteSession(const RewriteSession&) = delete;
  RewriteSession& operator=(const RewriteSession&) = delete;

  /// Session seed for request `request_index` of a batch served under
  /// `base_seed`: a splitmix64 finalization of the pair, so neighbouring
  /// indices get uncorrelated streams and the mapping is stable across
  /// thread counts and interleavings.
  static uint64_t SeedFor(uint64_t base_seed, uint64_t request_index) {
    uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (request_index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// The request's private random stream. Built-in strategies are fully
  /// deterministic and never draw from it; stochastic custom strategies must
  /// use this (and only this) source so batch serving stays reproducible.
  Rng& rng() { return rng_; }

  /// Allocates a selectivity cache for one planning episode. References stay
  /// valid for the session's lifetime (deque storage), so a multi-stage
  /// rewriter can resume an earlier stage's collected selectivities.
  SelectivityCache& NewCache(size_t num_slots) {
    return caches_.emplace_back(num_slots);
  }

  size_t num_caches() const { return caches_.size(); }

  // --- multi-attempt accounting (quality-floor fallback) -------------------

  /// Records planning effort of an abandoned attempt; the service adds it to
  /// the final outcome's bill.
  void ChargeAbandonedAttempt(double planning_ms, size_t steps) {
    abandoned_planning_ms_ += planning_ms;
    abandoned_steps_ += steps;
  }

  double abandoned_planning_ms() const { return abandoned_planning_ms_; }
  size_t abandoned_steps() const { return abandoned_steps_; }

  bool exact_fallback() const { return exact_fallback_; }
  void set_exact_fallback(bool value) { exact_fallback_ = value; }

 private:
  Rng rng_;
  std::deque<SelectivityCache> caches_;
  double abandoned_planning_ms_ = 0.0;
  size_t abandoned_steps_ = 0;
  bool exact_fallback_ = false;
};

}  // namespace maliva

#endif  // MALIVA_CORE_REWRITE_SESSION_H_
