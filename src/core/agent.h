// The Q-network agent (paper Fig 8).

#ifndef MALIVA_CORE_AGENT_H_
#define MALIVA_CORE_AGENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/mlp.h"
#include "util/rng.h"

namespace maliva {

/// Deep Q-network over MDP states: input (E, C_1..C_n, T_1..T_n), two ReLU
/// hidden layers sized like the input, linear output with one Q-value per RQ.
class QAgent {
 public:
  /// `num_actions` = |Omega|; the input dim is 2 * num_actions + 1.
  QAgent(size_t num_actions, uint64_t seed);

  /// Reconstructs an agent from snapshotted networks (copied). Used by the
  /// online learning plane to materialize a published AgentSnapshot.
  QAgent(size_t num_actions, const Mlp& online, const Mlp& target);

  /// Deep copy — networks and optimizer state — so a fine-tune can train a
  /// clone while the original keeps serving.
  std::unique_ptr<QAgent> Clone() const;

  size_t num_actions() const { return num_actions_; }

  /// Q-values for every action in the given state.
  std::vector<double> QValues(const std::vector<double>& features) const;

  /// argmax over valid actions (valid[i] != 0). Requires one valid action.
  size_t GreedyAction(const std::vector<double>& features,
                      const std::vector<uint8_t>& valid) const;

  /// Epsilon-greedy: random valid action with probability epsilon.
  size_t EpsilonGreedyAction(const std::vector<double>& features,
                             const std::vector<uint8_t>& valid, double epsilon,
                             Rng* rng) const;

  /// Target-network Q-values (for Bellman targets).
  std::vector<double> TargetQValues(const std::vector<double>& features) const;

  /// Copies online weights into the target network.
  void SyncTarget();

  Mlp* online() { return online_.get(); }

  /// Read-only network views (snapshot publication copies from these).
  const Mlp& online_net() const { return *online_; }
  const Mlp& target_net() const { return *target_; }

 private:
  size_t num_actions_;
  std::unique_ptr<Mlp> online_;
  std::unique_ptr<Mlp> target_;
};

}  // namespace maliva

#endif  // MALIVA_CORE_AGENT_H_
