#include "core/trainer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/query_env.h"

namespace maliva {

Trainer::IterationStats Trainer::EvaluateGreedy(
    const RewriterEnv& renv, const QAgent& agent,
    const std::vector<const Query*>& workload) {
  IterationStats stats;
  double reward_sum = 0.0;
  size_t viable = 0;
  for (const Query* q : workload) {
    QteContext ctx = renv.MakeContext(*q);
    QueryEnv env(&ctx, renv.qte, renv.env_config);
    double reward = 0.0;
    while (!env.terminal()) {
      size_t action = agent.GreedyAction(env.Features(), env.valid_actions());
      reward = env.Step(action);
    }
    reward_sum += reward;
    if (env.elapsed_ms() + env.decided_exec_ms() <= renv.env_config.tau_ms) ++viable;
  }
  stats.episodes = workload.size();
  stats.mean_reward = workload.empty() ? 0.0
                                       : reward_sum / static_cast<double>(workload.size());
  stats.greedy_vqp =
      workload.empty() ? 0.0
                       : static_cast<double>(viable) / static_cast<double>(workload.size());
  return stats;
}

Trainer::IterationStats Trainer::Evaluate(
    const QAgent& agent, const std::vector<const Query*>& workload) const {
  return EvaluateGreedy(renv_, agent, workload);
}

void Trainer::MinibatchUpdate(QAgent* agent,
                              const std::vector<const Experience*>& batch,
                              double gamma, double learning_rate) {
  if (batch.empty()) return;
  for (const Experience* e : batch) {
    double target = e->reward;
    if (!e->terminal) {
      std::vector<double> tq = agent->TargetQValues(e->next_state);
      double best = -std::numeric_limits<double>::infinity();
      bool any = false;
      for (size_t i = 0; i < tq.size(); ++i) {
        if (e->next_valid[i]) {
          best = std::max(best, tq[i]);
          any = true;
        }
      }
      if (any) target += gamma * best;
    }
    agent->online()->AccumulateGradient(e->state, e->action, target);
  }
  agent->online()->Step(learning_rate, batch.size());
}

std::unique_ptr<QAgent> Trainer::Train(const std::vector<const Query*>& workload) {
  assert(renv_.options != nullptr && !renv_.options->empty());
  size_t n = renv_.options->size();
  auto agent = std::make_unique<QAgent>(n, config_.seed);
  ReplayBuffer replay(config_.replay_capacity);
  EpsilonSchedule eps(config_.eps_start, config_.eps_end, config_.eps_decay_steps);
  Rng rng(config_.seed ^ 0xabcdef1234567890ULL);

  history_.clear();
  int64_t global_step = 0;
  size_t updates = 0;
  double best_reward = -std::numeric_limits<double>::infinity();
  size_t stale = 0;

  std::vector<const Query*> order(workload);

  for (size_t iter = 0; iter < config_.max_iterations; ++iter) {
    rng.Shuffle(&order);

    for (const Query* q : order) {
      QteContext ctx = renv_.MakeContext(*q);
      QueryEnv env(&ctx, renv_.qte, renv_.env_config);

      while (!env.terminal()) {
        std::vector<double> state = env.Features();
        std::vector<uint8_t> valid = env.valid_actions();
        size_t action = agent->EpsilonGreedyAction(
            state, valid, eps.ValueAt(global_step), &rng);
        ++global_step;
        double reward = env.Step(action);

        Experience exp;
        exp.state = std::move(state);
        exp.action = static_cast<int>(action);
        exp.next_state = env.Features();
        exp.reward = reward;
        exp.terminal = env.terminal();
        exp.next_valid = env.valid_actions();
        replay.Add(std::move(exp));
      }

      // One replay update per processed query (Algorithm 1, line 21).
      if (replay.size() >= config_.batch_size) {
        MinibatchUpdate(agent.get(), replay.Sample(config_.batch_size, &rng),
                        config_.gamma, config_.learning_rate);
        ++updates;
        if (updates % config_.target_sync_every == 0) agent->SyncTarget();
      }
    }

    IterationStats stats = Evaluate(*agent, workload);
    history_.push_back(stats);

    // Convergence: total accumulated reward stops improving by > tol.
    double improvement = stats.mean_reward - best_reward;
    double threshold = config_.convergence_tol * std::max(1.0, std::abs(best_reward));
    if (improvement > threshold) {
      best_reward = stats.mean_reward;
      stale = 0;
    } else if (++stale >= config_.patience) {
      break;
    }
  }
  agent->SyncTarget();
  return agent;
}

}  // namespace maliva
