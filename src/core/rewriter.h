// Online query rewriting with a trained agent (Algorithm 2) and the
// quality-aware one-stage / two-stage rewriters (Section 6.2).
//
// Every rewriting strategy — the paper's MDP approaches and the comparator
// baselines alike — implements the polymorphic `Rewriter` interface, so the
// serving layer (src/service/) can select strategies by configuration name
// instead of bespoke constructors.

#ifndef MALIVA_CORE_REWRITER_H_
#define MALIVA_CORE_REWRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/query_env.h"
#include "core/rewrite_session.h"
#include "qte/qte_params.h"

namespace maliva {

/// Outcome of rewriting (and notionally executing) one query.
struct RewriteOutcome {
  size_t option_index = 0;   ///< chosen RQ within the rewriter's option set
  double planning_ms = 0.0;  ///< middleware planning time (s.E at decision)
  double exec_ms = 0.0;      ///< actual execution time of the chosen RQ
  double total_ms = 0.0;     ///< planning + execution
  bool viable = false;       ///< total <= tau
  size_t steps = 0;          ///< QTE invocations made
  double quality = 1.0;      ///< F(r(Q), r(RQ)); 1 for exact rewrites
  bool approximate = false;  ///< chosen option used an approximation rule
};

/// Shared plumbing for rewriters: builds per-query QTE contexts. Everything
/// reachable from an env is immutable during serving (the QTE is stateless,
/// the oracles memoize behind their own locks), so one env is safely shared
/// by concurrent requests.
struct RewriterEnv {
  const Engine* engine = nullptr;
  const PlanTimeOracle* oracle = nullptr;
  const RewriteOptionSet* options = nullptr;
  const QueryTimeEstimator* qte = nullptr;
  /// Histogram selectivity tier (rung 2 of the ladder); nullptr while
  /// ServiceConfig::histogram_selectivity is off. Internally synchronized,
  /// shared by every env the service builds.
  const SelectivityTier* tier = nullptr;
  QteParams qte_params;
  EnvConfig env_config;

  QteContext MakeContext(const Query& query) const;
};

/// Abstract rewriting strategy: accepts a visualization query and returns the
/// chosen rewritten query plus its time/quality accounting.
///
/// `Rewrite` serves under the budget the strategy was configured (and its
/// agents trained) with; `RewriteWithBudget` overrides the budget for one
/// request — used by MalivaService to honor per-request tau. Agents are not
/// retrained for the override; the paper's Section 7.6 shows trained agents
/// generalize across budgets.
///
/// Statelessness contract: implementations hold only state that is immutable
/// after construction. All per-request mutable state (episode selectivity
/// caches, randomness) comes from the RewriteSession passed to
/// `RewriteForSession` — this is what lets MalivaService share one rewriter
/// instance across serving threads.
class Rewriter {
 public:
  virtual ~Rewriter() = default;

  virtual const std::string& name() const = 0;

  /// The time budget (virtual ms) the strategy was configured with.
  virtual double default_tau_ms() const = 0;

  /// Rewrites `query` under the configured default budget.
  RewriteOutcome Rewrite(const Query& query) const {
    return RewriteWithBudget(query, default_tau_ms());
  }

  /// Rewrites `query` under an explicit time budget `tau_ms` in a throwaway
  /// session (convenience for harnesses and tests; the serving path passes
  /// its own per-request session).
  RewriteOutcome RewriteWithBudget(const Query& query, double tau_ms) const;

  /// Rewrites `query` under `tau_ms`, drawing all mutable episode state
  /// (selectivity caches, randomness) from `session`.
  virtual RewriteOutcome RewriteForSession(const Query& query, double tau_ms,
                                           RewriteSession& session) const = 0;

  /// The rewrite option `outcome` decided on, or nullptr when the strategy
  /// delegated planning entirely to the backend optimizer (no hints). Needed
  /// because an outcome's option_index is relative to the strategy's own
  /// option set (the two-stage rewriter uses two different sets).
  virtual const RewriteOption* DecidedOption(const RewriteOutcome& outcome) const {
    (void)outcome;
    return nullptr;
  }
};

/// Runs one greedy planning episode with `agent`; shared by the online
/// rewriter and the trainer's convergence evaluation. The episode's
/// selectivity cache is env-owned.
RewriteOutcome RunGreedyEpisode(const RewriterEnv& renv, const QAgent& agent,
                                const Query& query);

/// Session variant: the episode's selectivity cache is allocated from (and
/// owned by) `session`.
RewriteOutcome RunGreedyEpisode(const RewriterEnv& renv, const QAgent& agent,
                                const Query& query, RewriteSession& session);

/// Maliva's MDP-based online rewriter (Algorithm 2).
class MalivaRewriter : public Rewriter {
 public:
  MalivaRewriter(RewriterEnv renv, const QAgent* agent, std::string name)
      : renv_(std::move(renv)), agent_(agent), name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  double default_tau_ms() const override { return renv_.env_config.tau_ms; }
  const RewriterEnv& renv() const { return renv_; }

  RewriteOutcome RewriteForSession(const Query& query, double tau_ms,
                                   RewriteSession& session) const override;

  const RewriteOption* DecidedOption(const RewriteOutcome& outcome) const override {
    return &(*renv_.options)[outcome.option_index];
  }

 private:
  RewriterEnv renv_;
  const QAgent* agent_;
  std::string name_;
};

/// Two-stage quality-aware rewriter (Fig 11): run the hint-only agent first;
/// if it exhausts all exact RQs without finding a viable one and budget
/// remains, hand over to the quality-aware agent on the approximate options,
/// carrying over elapsed time and collected selectivities.
class TwoStageRewriter : public Rewriter {
 public:
  /// `exact` covers hint-only options, `approx` the hint x approximation
  /// combinations (exclusive of exact options).
  TwoStageRewriter(RewriterEnv exact, const QAgent* exact_agent, RewriterEnv approx,
                   const QAgent* approx_agent, std::string name)
      : exact_(std::move(exact)),
        exact_agent_(exact_agent),
        approx_(std::move(approx)),
        approx_agent_(approx_agent),
        name_(std::move(name)) {}

  const std::string& name() const override { return name_; }
  double default_tau_ms() const override { return exact_.env_config.tau_ms; }

  RewriteOutcome RewriteForSession(const Query& query, double tau_ms,
                                   RewriteSession& session) const override;

  const RewriteOption* DecidedOption(const RewriteOutcome& outcome) const override {
    const RewriterEnv& env = outcome.approximate ? approx_ : exact_;
    return &(*env.options)[outcome.option_index];
  }

 private:
  RewriterEnv exact_;
  const QAgent* exact_agent_;
  RewriterEnv approx_;
  const QAgent* approx_agent_;
  std::string name_;
};

}  // namespace maliva

#endif  // MALIVA_CORE_REWRITER_H_
