// Online query rewriting with a trained agent (Algorithm 2) and the
// quality-aware one-stage / two-stage rewriters (Section 6.2).

#ifndef MALIVA_CORE_REWRITER_H_
#define MALIVA_CORE_REWRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/query_env.h"

namespace maliva {

/// QTE cost parameters shared by one experiment.
struct QteParams {
  double unit_cost_ms = 40.0;
  double model_eval_ms = 2.0;
  double qte_sample_rate = 0.01;
  uint64_t jitter_seed = 17;
};

/// Outcome of rewriting (and notionally executing) one query.
struct RewriteOutcome {
  size_t option_index = 0;   ///< chosen RQ within the rewriter's option set
  double planning_ms = 0.0;  ///< middleware planning time (s.E at decision)
  double exec_ms = 0.0;      ///< actual execution time of the chosen RQ
  double total_ms = 0.0;     ///< planning + execution
  bool viable = false;       ///< total <= tau
  size_t steps = 0;          ///< QTE invocations made
  double quality = 1.0;      ///< F(r(Q), r(RQ)); 1 for exact rewrites
  bool approximate = false;  ///< chosen option used an approximation rule
};

/// Shared plumbing for rewriters: builds per-query QTE contexts.
struct RewriterEnv {
  const Engine* engine = nullptr;
  const PlanTimeOracle* oracle = nullptr;
  const RewriteOptionSet* options = nullptr;
  QueryTimeEstimator* qte = nullptr;
  QteParams qte_params;
  EnvConfig env_config;

  QteContext MakeContext(const Query& query) const;
};

/// Runs one greedy planning episode with `agent`; shared by the online
/// rewriter and the trainer's convergence evaluation.
RewriteOutcome RunGreedyEpisode(const RewriterEnv& renv, const QAgent& agent,
                                const Query& query);

/// Maliva's MDP-based online rewriter (Algorithm 2).
class MalivaRewriter {
 public:
  MalivaRewriter(RewriterEnv renv, const QAgent* agent, std::string name)
      : renv_(std::move(renv)), agent_(agent), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const RewriterEnv& renv() const { return renv_; }

  RewriteOutcome Rewrite(const Query& query) const;

 private:
  RewriterEnv renv_;
  const QAgent* agent_;
  std::string name_;
};

/// Two-stage quality-aware rewriter (Fig 11): run the hint-only agent first;
/// if it exhausts all exact RQs without finding a viable one and budget
/// remains, hand over to the quality-aware agent on the approximate options,
/// carrying over elapsed time and collected selectivities.
class TwoStageRewriter {
 public:
  /// `exact` covers hint-only options, `approx` the hint x approximation
  /// combinations (exclusive of exact options).
  TwoStageRewriter(RewriterEnv exact, const QAgent* exact_agent, RewriterEnv approx,
                   const QAgent* approx_agent, std::string name)
      : exact_(std::move(exact)),
        exact_agent_(exact_agent),
        approx_(std::move(approx)),
        approx_agent_(approx_agent),
        name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  RewriteOutcome Rewrite(const Query& query) const;

 private:
  RewriterEnv exact_;
  const QAgent* exact_agent_;
  RewriterEnv approx_;
  const QAgent* approx_agent_;
  std::string name_;
};

}  // namespace maliva

#endif  // MALIVA_CORE_REWRITER_H_
