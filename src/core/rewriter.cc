#include "core/rewriter.h"

#include <cassert>
#include <limits>

namespace maliva {

QteContext RewriterEnv::MakeContext(const Query& query) const {
  QteContext ctx;
  ctx.query = &query;
  ctx.options = options;
  ctx.engine = engine;
  ctx.oracle = oracle;
  ctx.tier = tier;
  ctx.params = qte_params;
  return ctx;
}

namespace {

RewriteOutcome OutcomeFromEnv(const RewriterEnv& renv, const QueryEnv& env,
                              const Query& query) {
  RewriteOutcome out;
  out.option_index = env.decided_option();
  out.planning_ms = env.elapsed_ms();
  out.exec_ms = env.decided_exec_ms();
  out.total_ms = out.planning_ms + out.exec_ms;
  out.viable = out.total_ms <= renv.env_config.tau_ms;
  out.steps = env.steps();
  const RewriteOption& option = (*renv.options)[out.option_index];
  out.approximate = option.IsApproximate();
  if (renv.env_config.quality != nullptr) {
    out.quality = renv.env_config.quality->Quality(query, option);
  }
  return out;
}

/// Copy of `renv` serving under `tau_ms` instead of its configured budget.
RewriterEnv WithBudget(const RewriterEnv& renv, double tau_ms) {
  RewriterEnv out = renv;
  out.env_config.tau_ms = tau_ms;
  return out;
}

}  // namespace

RewriteOutcome Rewriter::RewriteWithBudget(const Query& query, double tau_ms) const {
  // Throwaway session: built-in strategies never draw from the session RNG,
  // so this is byte-identical to serving inside a batch session.
  RewriteSession session(RewriteSession::SeedFor(0, query.id));
  return RewriteForSession(query, tau_ms, session);
}

namespace {

/// The one greedy episode loop every serving/evaluation path shares. When
/// `capture` is non-null, each observed MDP transition is also recorded into
/// the session for the online plane's replay sink — the reward is the
/// environment's, computed from the *actual* virtual planning/exec outcome,
/// so retraining learns from ground truth, not estimates. One loop by
/// design: action selection for serving and for captured feedback can never
/// diverge.
RewriteOutcome RunGreedyEpisodeOn(const RewriterEnv& renv, const QAgent& agent,
                                  const Query& query, QueryEnv& env,
                                  RewriteSession* capture) {
  // `state` is refreshed lazily: with capture on, each step's recorded
  // next_state doubles as the following step's state, so Features() runs
  // once per step either way.
  std::vector<double> state = env.Features();
  while (!env.terminal()) {
    size_t action = agent.GreedyAction(state, env.valid_actions());
    double reward = env.Step(action);
    if (capture != nullptr) {
      Experience exp;
      exp.state = std::move(state);
      exp.action = static_cast<int>(action);
      exp.reward = reward;
      exp.next_state = env.Features();
      exp.terminal = env.terminal();
      exp.next_valid = env.valid_actions();
      state = exp.next_state;
      capture->RecordTransition(std::move(exp));
    } else if (!env.terminal()) {
      state = env.Features();
    }
  }
  return OutcomeFromEnv(renv, env, query);
}

}  // namespace

RewriteOutcome RunGreedyEpisode(const RewriterEnv& renv, const QAgent& agent,
                                const Query& query) {
  QteContext ctx = renv.MakeContext(query);
  QueryEnv env(&ctx, renv.qte, renv.env_config);
  return RunGreedyEpisodeOn(renv, agent, query, env, nullptr);
}

RewriteOutcome RunGreedyEpisode(const RewriterEnv& renv, const QAgent& agent,
                                const Query& query, RewriteSession& session) {
  QteContext ctx = renv.MakeContext(query);
  QueryEnv env(&ctx, renv.qte, renv.env_config, &session.NewCache(ctx.NumSlots()));
  return RunGreedyEpisodeOn(renv, agent, query, env,
                            session.capture_transitions() ? &session : nullptr);
}

RewriteOutcome MalivaRewriter::RewriteForSession(const Query& query, double tau_ms,
                                                 RewriteSession& session) const {
  // The online plane substitutes its current published snapshot here; with
  // the plane off (or for frozen strategies) the construction-time agent
  // serves, byte-identical to pre-online behavior.
  const QAgent& agent =
      session.agent_override() != nullptr ? *session.agent_override() : *agent_;
  return RunGreedyEpisode(WithBudget(renv_, tau_ms), agent, query, session);
}

RewriteOutcome TwoStageRewriter::RewriteForSession(const Query& query, double tau,
                                                   RewriteSession& session) const {
  // Stage 1: exact (hint-only) options. The session cache is shared with
  // stage 2, which resumes the collected selectivities.
  RewriterEnv exact = WithBudget(exact_, tau);
  QteContext ctx1 = exact.MakeContext(query);
  SelectivityCache& cache = session.NewCache(ctx1.NumSlots());
  QueryEnv env1(&ctx1, exact.qte, exact.env_config, &cache);

  while (!env1.terminal()) {
    size_t action = exact_agent_->GreedyAction(env1.Features(), env1.valid_actions());
    env1.Step(action);
  }
  // Why did stage 1 terminate?
  bool exhausted = !env1.HasRemaining();
  bool out_of_time = env1.elapsed_ms() >= tau;
  bool found_viable = env1.elapsed_ms() + env1.decided_exec_ms() <= tau;

  if (found_viable || out_of_time || !exhausted) {
    RewriteOutcome out = OutcomeFromEnv(exact, env1, query);
    return out;
  }

  // Track stage 1's best known RQ as a fallback.
  size_t stage1_best = env1.decided_option();
  double stage1_best_est = env1.decided_exec_ms();

  // Stage 2: approximate options, resuming the elapsed budget and the
  // collected selectivities (same session cache).
  RewriterEnv approx = WithBudget(approx_, tau);
  QteContext ctx2 = approx.MakeContext(query);
  QueryEnv env2(&ctx2, approx.qte, approx.env_config, &cache, env1.elapsed_ms());
  while (!env2.terminal()) {
    size_t action = approx_agent_->GreedyAction(env2.Features(), env2.valid_actions());
    env2.Step(action);
  }

  RewriteOutcome out2 = OutcomeFromEnv(approx, env2, query);
  // If stage 2 also failed to find a viable RQ, fall back to whichever option
  // (stage 1 exact best vs stage 2 decision) is faster.
  if (!out2.viable && stage1_best_est < out2.exec_ms) {
    RewriteOutcome out;
    out.option_index = stage1_best;
    out.planning_ms = env2.elapsed_ms();
    out.exec_ms = stage1_best_est;
    out.total_ms = out.planning_ms + out.exec_ms;
    out.viable = out.total_ms <= tau;
    out.steps = env1.steps() + env2.steps();
    out.quality = 1.0;  // exact option
    out.approximate = false;
    return out;
  }
  out2.steps += env1.steps();
  return out2;
}

}  // namespace maliva
