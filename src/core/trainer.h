// Offline training of the MDP agent (Algorithm 1).

#ifndef MALIVA_CORE_TRAINER_H_
#define MALIVA_CORE_TRAINER_H_

#include <memory>
#include <vector>

#include "core/agent.h"
#include "core/rewriter.h"
#include "ml/epsilon.h"
#include "ml/replay_buffer.h"

namespace maliva {

/// Hyper-parameters of deep Q-learning.
struct TrainerConfig {
  double learning_rate = 1e-3;
  size_t batch_size = 64;
  size_t replay_capacity = 50000;
  double gamma = 1.0;            ///< episodes are short; undiscounted
  size_t max_iterations = 40;    ///< passes over the workload
  double convergence_tol = 0.01; ///< stop when reward improves < 1%
  size_t patience = 3;           ///< consecutive non-improving iterations
  double eps_start = 1.0;
  double eps_end = 0.05;
  double eps_decay_steps = 1500;
  size_t target_sync_every = 64; ///< gradient updates between target syncs
  uint64_t seed = 1234;
};

/// Trains a Q-network agent for one workload + RO set + QTE combination.
class Trainer {
 public:
  struct IterationStats {
    double mean_reward = 0.0;   ///< greedy-policy mean terminal reward
    double greedy_vqp = 0.0;    ///< greedy-policy viable-query fraction
    size_t episodes = 0;
  };

  /// Greedy evaluation of `agent` over `workload` in `renv`: mean terminal
  /// reward and viable fraction. Shared by the offline trainer's convergence
  /// check and the online plane's validation gate (continual_trainer.cc).
  static IterationStats EvaluateGreedy(const RewriterEnv& renv, const QAgent& agent,
                                       const std::vector<const Query*>& workload);

  /// One DQN minibatch update (Algorithm 1, lines 19-21): Bellman targets
  /// maxed over each successor's still-valid actions on the target network,
  /// accumulated gradients, one Adam step. The ONE update rule — shared by
  /// offline training and the online plane's fine-tune rounds
  /// (continual_trainer.cc), so the two can never silently diverge. Target
  /// syncing stays with the caller (cadences differ). No-op on an empty
  /// batch.
  static void MinibatchUpdate(QAgent* agent,
                              const std::vector<const Experience*>& batch,
                              double gamma, double learning_rate);

  Trainer(RewriterEnv renv, TrainerConfig config)
      : renv_(std::move(renv)), config_(config) {}

  /// Runs Algorithm 1 over `workload` until convergence or max iterations.
  std::unique_ptr<QAgent> Train(const std::vector<const Query*>& workload);

  const std::vector<IterationStats>& history() const { return history_; }

 private:
  /// Greedy evaluation of `agent` over the workload (convergence signal).
  IterationStats Evaluate(const QAgent& agent,
                          const std::vector<const Query*>& workload) const;

  RewriterEnv renv_;
  TrainerConfig config_;
  std::vector<IterationStats> history_;
};

}  // namespace maliva

#endif  // MALIVA_CORE_TRAINER_H_
