#include "core/agent.h"

#include <cassert>
#include <limits>

namespace maliva {

QAgent::QAgent(size_t num_actions, uint64_t seed) : num_actions_(num_actions) {
  assert(num_actions > 0);
  size_t input = 2 * num_actions + 1;
  // Two hidden layers "with sizes similar to the input layer" (paper Fig 8).
  std::vector<size_t> sizes = {input, input, input, num_actions};
  Rng rng(seed);
  online_ = std::make_unique<Mlp>(sizes, &rng);
  target_ = std::make_unique<Mlp>(sizes, &rng);
  target_->CopyParamsFrom(*online_);
}

QAgent::QAgent(size_t num_actions, const Mlp& online, const Mlp& target)
    : num_actions_(num_actions) {
  assert(num_actions > 0);
  assert(online.output_dim() == num_actions && target.output_dim() == num_actions);
  online_ = std::make_unique<Mlp>(online);
  target_ = std::make_unique<Mlp>(target);
}

std::unique_ptr<QAgent> QAgent::Clone() const {
  auto copy = std::make_unique<QAgent>(num_actions_, *online_, *target_);
  return copy;
}

std::vector<double> QAgent::QValues(const std::vector<double>& features) const {
  return online_->Forward(features);
}

std::vector<double> QAgent::TargetQValues(const std::vector<double>& features) const {
  return target_->Forward(features);
}

size_t QAgent::GreedyAction(const std::vector<double>& features,
                            const std::vector<uint8_t>& valid) const {
  std::vector<double> q = QValues(features);
  assert(q.size() == valid.size());
  size_t best = valid.size();
  double best_q = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < q.size(); ++i) {
    if (valid[i] && q[i] > best_q) {
      best_q = q[i];
      best = i;
    }
  }
  assert(best < valid.size() && "no valid action");
  return best;
}

size_t QAgent::EpsilonGreedyAction(const std::vector<double>& features,
                                   const std::vector<uint8_t>& valid, double epsilon,
                                   Rng* rng) const {
  if (rng->Bernoulli(epsilon)) {
    std::vector<size_t> candidates;
    for (size_t i = 0; i < valid.size(); ++i) {
      if (valid[i]) candidates.push_back(i);
    }
    assert(!candidates.empty());
    return candidates[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
  }
  return GreedyAction(features, valid);
}

void QAgent::SyncTarget() { target_->CopyParamsFrom(*online_); }

}  // namespace maliva
