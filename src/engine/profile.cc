#include "engine/profile.h"

namespace maliva {

EngineProfile EngineProfile::PostgresLike() {
  EngineProfile p;
  p.name = "postgres-like";
  return p;
}

EngineProfile EngineProfile::CommercialLike() {
  EngineProfile p;
  p.name = "commercial-like";
  // Smaller deployment (paper: 10M-row table, 250ms budget).
  p.cardinality_scale = 20.0;
  // Faster raw engine, but with behaviours the sampling QTE cannot model:
  // warm-cache speedups and occasional dynamic re-planning.
  p.heap_fetch_ms = 3e-3;
  p.noise_sigma = 0.35;
  p.buffer_hit_prob = 0.35;
  p.buffer_speedup = 6.0;
  p.plan_instability_prob = 0.15;
  p.optimizer_ms = 3.0;
  return p;
}

}  // namespace maliva
