#include "engine/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <functional>

#include "engine/binning.h"
#include "engine/optimizer.h"
#include "index/rowset.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace maliva {

namespace {

/// Evaluates one predicate against one row by direct column access.
bool EvalPredicate(const Table& table, const Predicate& pred, RowId row) {
  const Column& col = table.GetColumn(pred.column);
  switch (pred.type) {
    case PredicateType::kKeyword: {
      // Token containment; the inverted index is the fast path, this is the
      // residual-filter path.
      std::vector<std::string> tokens = Tokenize(col.TextAt(row));
      return std::find(tokens.begin(), tokens.end(), pred.keyword) != tokens.end();
    }
    case PredicateType::kTimeRange:
    case PredicateType::kNumericRange:
      return pred.range.Contains(col.NumericAt(row));
    case PredicateType::kSpatialBox:
      return pred.box.Contains(col.PointAt(row));
  }
  return false;
}

/// Deterministic 64-bit seed from the execution identity (query, plan).
uint64_t MixSeed(uint64_t engine_seed, const Query& query, const PlanSpec& spec) {
  uint64_t h = engine_seed;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(query.id);
  mix(spec.index_mask);
  mix(static_cast<uint64_t>(spec.join_method));
  mix(static_cast<uint64_t>(spec.approx.kind));
  mix(std::bit_cast<uint64_t>(spec.approx.fraction));
  return h;
}

}  // namespace

namespace {

EngineProfile PlannerBeliefs(const EngineProfile& profile) {
  EngineProfile p = profile;
  p.heap_fetch_ms *= profile.planner_heap_fetch_factor;
  p.scan_row_ms *= profile.planner_scan_factor;
  p.residual_filter_ms *= profile.planner_residual_factor;
  return p;
}

}  // namespace

Engine::Engine(const EngineProfile& profile, uint64_t seed)
    : profile_(profile),
      cost_model_(profile),
      planner_cost_model_(PlannerBeliefs(profile)),
      seed_(seed) {
  optimizer_ = std::make_unique<Optimizer>(this);
}

Engine::~Engine() = default;

Status Engine::RegisterTable(std::unique_ptr<Table> table,
                             const std::vector<std::string>& indexed_columns,
                             const std::vector<std::string>& hash_columns) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  std::string name = table->name();
  if (catalog_.count(name) > 0) {
    return Status::FailedPrecondition("table '" + name + "' already registered");
  }
  TableEntry entry;
  entry.table = std::move(table);
  for (const std::string& col_name : indexed_columns) {
    Result<size_t> idx = entry.table->ColumnIndex(col_name);
    if (!idx.ok()) return idx.status();
    const Column& col = entry.table->ColumnAt(idx.value());
    switch (col.type()) {
      case ColumnType::kInt64:
      case ColumnType::kDouble:
      case ColumnType::kTimestamp:
        entry.btrees[col_name] = std::make_unique<BTreeIndex>(*entry.table, col_name);
        break;
      case ColumnType::kPoint:
        entry.rtrees[col_name] = std::make_unique<RTreeIndex>(*entry.table, col_name);
        break;
      case ColumnType::kText:
        entry.inverted[col_name] =
            std::make_unique<InvertedIndex>(*entry.table, col_name);
        break;
    }
  }
  for (const std::string& col_name : hash_columns) {
    Result<size_t> idx = entry.table->ColumnIndex(col_name);
    if (!idx.ok()) return idx.status();
    entry.hashes[col_name] = std::make_unique<HashIndex>(*entry.table, col_name);
  }
  entry.stats = std::make_unique<TableStats>(*entry.table, TableStats::Options{});
  entry.histograms = std::make_unique<TableHistograms>(*entry.table, histogram_options_);
  catalog_.emplace(std::move(name), std::move(entry));
  // Stats ground truth changed: stale cross-request knowledge. Release pairs
  // with the acquire in catalog_version() so readers that observe the bump
  // also observe the new entry.
  catalog_version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

std::string Engine::SampleTableName(const std::string& base, double rate) {
  int pct_x10 = static_cast<int>(std::lround(rate * 1000.0));
  return base + "#sample" + std::to_string(pct_x10);
}

Status Engine::BuildSampleTables(const std::string& table,
                                 const std::vector<double>& rates, uint64_t seed) {
  auto base_it = catalog_.find(table);
  if (base_it == catalog_.end()) return Status::NotFound("no table '" + table + "'");
  TableEntry& base = base_it->second;

  // Reconstruct which columns were indexed on the base table so the sample
  // tables get the same access paths.
  std::vector<std::string> indexed;
  std::vector<std::string> hashed;
  for (const auto& [col, idx] : base.btrees) indexed.push_back(col);
  for (const auto& [col, idx] : base.rtrees) indexed.push_back(col);
  for (const auto& [col, idx] : base.inverted) indexed.push_back(col);
  for (const auto& [col, idx] : base.hashes) hashed.push_back(col);

  Rng rng(seed);
  for (double rate : rates) {
    int pct_x10 = static_cast<int>(std::lround(rate * 1000.0));
    std::string name = SampleTableName(table, rate);
    if (catalog_.count(name) == 0) {
      std::unique_ptr<Table> sample = base.table->Sample(rate, &rng, name);
      MALIVA_RETURN_NOT_OK(RegisterTable(std::move(sample), indexed, hashed));
    }
    // Hot-path cache: SampledSelectivity resolves the sample entry through
    // this map instead of re-formatting the name string per probe. Catalog
    // entries are node-stable, so the pointer stays valid for the engine's
    // lifetime.
    base.samples[pct_x10] = &catalog_.find(name)->second;
  }
  return Status::OK();
}

const TableEntry* Engine::FindEntry(const std::string& name) const {
  auto it = catalog_.find(name);
  return it == catalog_.end() ? nullptr : &it->second;
}

double Engine::TrueSelectivityOnEntry(const TableEntry& entry,
                                      const Predicate& pred) const {
  size_t n = entry.table->NumRows();
  if (n == 0) return 0.0;

  size_t count = 0;
  switch (pred.type) {
    case PredicateType::kKeyword: {
      auto it = entry.inverted.find(pred.column);
      if (it != entry.inverted.end()) {
        count = it->second->DocFreq(pred.keyword);
        return static_cast<double>(count) / static_cast<double>(n);
      }
      break;
    }
    case PredicateType::kTimeRange:
    case PredicateType::kNumericRange: {
      auto it = entry.btrees.find(pred.column);
      if (it != entry.btrees.end()) {
        count = it->second->RangeCount(pred.range.lo, pred.range.hi);
        return static_cast<double>(count) / static_cast<double>(n);
      }
      break;
    }
    case PredicateType::kSpatialBox: {
      auto it = entry.rtrees.find(pred.column);
      if (it != entry.rtrees.end()) {
        count = it->second->Count(pred.box);
        return static_cast<double>(count) / static_cast<double>(n);
      }
      break;
    }
  }
  // Scan fallback for unindexed predicates.
  for (RowId row = 0; row < n; ++row) {
    if (EvalPredicate(*entry.table, pred, row)) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(n);
}

Result<double> Engine::TrueSelectivity(const std::string& table,
                                       const Predicate& pred) const {
  const TableEntry* entry = FindEntry(table);
  if (entry == nullptr) return Status::NotFound("no table '" + table + "'");
  return TrueSelectivityOnEntry(*entry, pred);
}

Result<double> Engine::SampledSelectivity(const std::string& table, const Predicate& pred,
                                          double sample_rate) const {
  // Hot path: resolve the sample entry through the base entry's per-rate
  // cache (filled by BuildSampleTables) — no name formatting, one lookup.
  const TableEntry* entry = nullptr;
  const TableEntry* base = FindEntry(table);
  if (base != nullptr) {
    auto it = base->samples.find(static_cast<int>(std::lround(sample_rate * 1000.0)));
    if (it != base->samples.end()) entry = it->second;
  }
  if (entry == nullptr) {
    // Cold path (samples registered without BuildSampleTables): format the
    // canonical name and look it up.
    std::string sample_name = SampleTableName(table, sample_rate);
    entry = FindEntry(sample_name);
    if (entry == nullptr) {
      return Status::NotFound("sample table '" + sample_name + "' not built");
    }
  }
  size_t n = entry->table->NumRows();
  if (n == 0) return 0.0;
  // count(*) on the sample with add-half smoothing: rare predicates hit zero
  // sample matches, which is exactly the sampling-QTE error source.
  double count = TrueSelectivityOnEntry(*entry, pred) * static_cast<double>(n);
  return (count + 0.5) / (static_cast<double>(n) + 1.0);
}

Result<double> Engine::HistogramSelectivity(const std::string& table,
                                            const Predicate& pred,
                                            uint64_t epoch) const {
  if (epoch != catalog_version()) {
    return Status::FailedPrecondition(
        "stale histogram epoch " + std::to_string(epoch) + " (catalog is at " +
        std::to_string(catalog_version()) + "); refresh before estimating");
  }
  const TableEntry* entry = FindEntry(table);
  if (entry == nullptr) return Status::NotFound("no table '" + table + "'");
  std::optional<double> est = entry->histograms->Estimate(pred);
  if (!est.has_value()) {
    return Status::NotFound("no histogram covers column '" + pred.column + "'");
  }
  return *est;
}

void Engine::ConfigureHistograms(const HistogramOptions& options) {
  if (options.buckets == histogram_options_.buckets &&
      options.grid_cells == histogram_options_.grid_cells) {
    return;
  }
  histogram_options_ = options;
  for (auto& [name, entry] : catalog_) {
    entry.histograms = std::make_unique<TableHistograms>(*entry.table, histogram_options_);
  }
  // Statistics ground truth changed resolution: stale epochs must not be
  // served (same release/acquire pairing as RegisterTable).
  catalog_version_.fetch_add(1, std::memory_order_release);
}

double Engine::EstimateOutputCardinality(const Query& q) const {
  const TableEntry* entry = FindEntry(q.table);
  assert(entry != nullptr);
  double sel = entry->stats->EstimateConjunction(q.predicates);
  return sel * static_cast<double>(entry->table->NumRows());
}

Result<ExecResult> Engine::Execute(const RewrittenQuery& rq) const {
  assert(rq.query != nullptr);
  PlanSpec spec = optimizer_->ResolvePlan(*rq.query, rq.option);
  return ExecutePlan(*rq.query, spec);
}

Result<ExecResult> Engine::ExecutePlan(const Query& query, const PlanSpec& spec) const {
  Rng rng(MixSeed(seed_, query, spec));

  // Commercial-DB behaviour: occasionally the engine re-plans dynamically and
  // ignores the index hints (paper challenge C2).
  PlanSpec effective = spec;
  if (profile_.plan_instability_prob > 0.0 &&
      rng.Bernoulli(profile_.plan_instability_prob)) {
    RewriteOption free;
    free.approx = spec.approx;
    effective = optimizer_->ResolvePlan(query, free);
    effective.approx = spec.approx;
  }

  std::string exec_table = query.table;
  if (effective.approx.kind == ApproxKind::kSampleTable) {
    exec_table = SampleTableName(query.table, effective.approx.fraction);
  }
  const TableEntry* entry = FindEntry(exec_table);
  if (entry == nullptr) {
    return Status::NotFound("table '" + exec_table + "' not registered");
  }
  const Table& table = *entry->table;
  const size_t m = query.predicates.size();
  const size_t n = table.NumRows();
  const double scale = profile_.cardinality_scale;

  // LIMIT target in actual rows, derived from the optimizer's cardinality
  // estimate of the original query (fixed at rewrite time).
  size_t limit_actual = std::numeric_limits<size_t>::max();
  if (effective.approx.kind == ApproxKind::kLimit) {
    double est = EstimateOutputCardinality(query);
    limit_actual = static_cast<size_t>(
        std::max<double>(1.0, std::llround(effective.approx.fraction * est)));
  }

  ExecResult result;
  result.plan = effective;
  PlanCards& cards = result.cards;
  cards.heatmap = (query.output == OutputKind::kHeatmap);

  // Per-predicate evaluators. Keyword predicates check membership in the
  // (sorted) postings list when an inverted index exists — semantically
  // identical to tokenizing the row, far cheaper for us (the *charged* cost
  // is governed by the cost model, not by how we compute ground truth).
  std::vector<std::function<bool(RowId)>> eval;
  eval.reserve(m);
  for (const Predicate& p : query.predicates) {
    if (p.type == PredicateType::kKeyword) {
      auto it = entry->inverted.find(p.column);
      if (it != entry->inverted.end()) {
        const RowIdList* postings = &it->second->Lookup(p.keyword);
        eval.push_back([postings](RowId row) {
          return std::binary_search(postings->begin(), postings->end(), row);
        });
        continue;
      }
    }
    const Predicate* pred = &p;
    eval.push_back([&table, pred](RowId row) { return EvalPredicate(table, *pred, row); });
  }

  std::vector<RowId> matched;
  uint32_t mask = effective.index_mask;

  if (mask == 0) {
    // Full scan; evaluate cheap (non-keyword) predicates first.
    std::vector<size_t> order;
    for (size_t i = 0; i < m; ++i) {
      if (query.predicates[i].type != PredicateType::kKeyword) order.push_back(i);
    }
    for (size_t i = 0; i < m; ++i) {
      if (query.predicates[i].type == PredicateType::kKeyword) order.push_back(i);
    }
    size_t scanned = 0;
    for (RowId row = 0; row < n; ++row) {
      ++scanned;
      bool ok = true;
      for (size_t i : order) {
        if (!eval[i](row)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        matched.push_back(row);
        if (matched.size() >= limit_actual) break;
      }
    }
    cards.scanned_rows = static_cast<double>(scanned) * scale;
    cards.scan_preds = static_cast<double>(m);
  } else {
    // Index path: fetch postings for hinted predicates, intersect, then
    // residual-filter the survivors.
    std::vector<RowIdList> lists;
    for (size_t i = 0; i < m; ++i) {
      if (((mask >> i) & 1u) == 0) continue;
      const Predicate& p = query.predicates[i];
      RowIdList list;
      switch (p.type) {
        case PredicateType::kKeyword: {
          auto it = entry->inverted.find(p.column);
          if (it == entry->inverted.end()) {
            return Status::FailedPrecondition("no inverted index on " + p.column);
          }
          list = it->second->Lookup(p.keyword);
          break;
        }
        case PredicateType::kTimeRange:
        case PredicateType::kNumericRange: {
          auto it = entry->btrees.find(p.column);
          if (it == entry->btrees.end()) {
            return Status::FailedPrecondition("no btree index on " + p.column);
          }
          list = it->second->RangeScan(p.range.lo, p.range.hi);
          break;
        }
        case PredicateType::kSpatialBox: {
          auto it = entry->rtrees.find(p.column);
          if (it == entry->rtrees.end()) {
            return Status::FailedPrecondition("no rtree index on " + p.column);
          }
          list = it->second->Query(p.box);
          break;
        }
      }
      cards.postings.push_back(static_cast<double>(list.size()) * scale);
      lists.push_back(std::move(list));
    }

    std::vector<const RowIdList*> list_ptrs;
    list_ptrs.reserve(lists.size());
    for (const RowIdList& l : lists) list_ptrs.push_back(&l);
    RowIdList candidates = IntersectAll(list_ptrs);

    size_t residual = m - static_cast<size_t>(std::popcount(mask));
    cards.residual_preds = static_cast<double>(residual);

    size_t processed = 0;
    for (RowId row : candidates) {
      ++processed;
      bool ok = true;
      if (residual > 0) {
        for (size_t i = 0; i < m; ++i) {
          if ((mask >> i) & 1u) continue;
          if (!eval[i](row)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        matched.push_back(row);
        if (matched.size() >= limit_actual) break;
      }
    }
    cards.candidates = static_cast<double>(processed) * scale;
  }

  cards.output_rows = static_cast<double>(matched.size()) * scale;

  // Join stage.
  if (query.join.has_value()) {
    const JoinSpec& js = *query.join;
    const TableEntry* right = FindEntry(js.right_table);
    if (right == nullptr) return Status::NotFound("no table '" + js.right_table + "'");
    const Table& rtable = *right->table;

    cards.has_join = true;
    cards.join_method = effective.join_method;
    cards.output_rows = 0.0;  // emission is accounted by the join

    const Column& fk_col = table.GetColumn(js.left_key);
    std::vector<RowId> joined;

    auto right_row_passes = [&](RowId rrow) {
      for (const Predicate& p : js.right_predicates) {
        if (!EvalPredicate(rtable, p, rrow)) return false;
      }
      return true;
    };

    // Pre-filter the right side for hash/merge via the B+ tree on the first
    // right predicate (residual-check the rest).
    auto filtered_right = [&]() -> RowIdList {
      RowIdList rows;
      if (!js.right_predicates.empty()) {
        const Predicate& p0 = js.right_predicates[0];
        auto it = right->btrees.find(p0.column);
        if (it != right->btrees.end() && p0.type != PredicateType::kKeyword &&
            p0.type != PredicateType::kSpatialBox) {
          rows = it->second->RangeScan(p0.range.lo, p0.range.hi);
          if (js.right_predicates.size() > 1) {
            RowIdList kept;
            for (RowId r : rows) {
              if (right_row_passes(r)) kept.push_back(r);
            }
            rows = std::move(kept);
          }
          return rows;
        }
      }
      for (RowId r = 0; r < rtable.NumRows(); ++r) {
        if (right_row_passes(r)) rows.push_back(r);
      }
      return rows;
    };

    switch (effective.join_method) {
      case JoinMethod::kNestedLoop: {
        auto it = right->hashes.find(js.right_key);
        if (it == right->hashes.end()) {
          return Status::FailedPrecondition("no hash index on " + js.right_key);
        }
        cards.nl_outer = static_cast<double>(matched.size()) * scale;
        for (RowId row : matched) {
          int64_t key = fk_col.Int64At(row);
          for (RowId rrow : it->second->Lookup(key)) {
            if (right_row_passes(rrow)) {
              joined.push_back(row);
              break;
            }
          }
        }
        break;
      }
      case JoinMethod::kHash: {
        RowIdList rrows = filtered_right();
        cards.right_scanned = static_cast<double>(rrows.size()) * scale;
        cards.build_rows = static_cast<double>(rrows.size()) * scale;
        cards.probe_rows = static_cast<double>(matched.size()) * scale;
        const Column& pk_col = rtable.GetColumn(js.right_key);
        std::unordered_map<int64_t, bool> built;
        built.reserve(rrows.size());
        for (RowId r : rrows) built.emplace(pk_col.Int64At(r), true);
        for (RowId row : matched) {
          if (built.count(fk_col.Int64At(row)) > 0) joined.push_back(row);
        }
        break;
      }
      case JoinMethod::kMerge: {
        RowIdList rrows = filtered_right();
        cards.right_scanned = static_cast<double>(rrows.size()) * scale;
        cards.sort_rows =
            static_cast<double>(matched.size() + rrows.size()) * scale;
        cards.merge_rows = cards.sort_rows;
        const Column& pk_col = rtable.GetColumn(js.right_key);
        std::vector<std::pair<int64_t, RowId>> left_sorted;
        left_sorted.reserve(matched.size());
        for (RowId row : matched) left_sorted.emplace_back(fk_col.Int64At(row), row);
        std::sort(left_sorted.begin(), left_sorted.end());
        std::vector<int64_t> right_keys;
        right_keys.reserve(rrows.size());
        for (RowId r : rrows) right_keys.push_back(pk_col.Int64At(r));
        std::sort(right_keys.begin(), right_keys.end());
        size_t ri = 0;
        for (const auto& [key, row] : left_sorted) {
          while (ri < right_keys.size() && right_keys[ri] < key) ++ri;
          if (ri < right_keys.size() && right_keys[ri] == key) joined.push_back(row);
        }
        break;
      }
      case JoinMethod::kOptimizerChoice:
        return Status::Internal("unresolved join method at execution time");
    }
    cards.join_output = static_cast<double>(joined.size()) * scale;
    matched = std::move(joined);
  }

  // Visualization output.
  if (query.output == OutputKind::kHeatmap) {
    BoundingBox viewport{};
    bool have_viewport = false;
    for (const Predicate& p : query.predicates) {
      if (p.type == PredicateType::kSpatialBox) {
        viewport = p.box;
        have_viewport = true;
        break;
      }
    }
    if (!have_viewport) {
      auto it = entry->rtrees.find(query.output_column);
      if (it != entry->rtrees.end()) {
        viewport = it->second->Bounds();
      }
    }
    const Column& out_col = table.GetColumn(query.output_column);
    for (RowId row : matched) {
      ++result.vis.bins[BinId(out_col.PointAt(row), viewport, query.heatmap_bins)];
    }
  } else {
    Result<size_t> id_idx = table.ColumnIndex("id");
    if (id_idx.ok()) {
      const Column& id_col = table.ColumnAt(id_idx.value());
      result.vis.ids.reserve(matched.size());
      for (RowId row : matched) result.vis.ids.push_back(id_col.Int64At(row));
    } else {
      for (RowId row : matched) result.vis.ids.push_back(static_cast<int64_t>(row));
    }
  }

  double ms = cost_model_.PlanTimeMs(cards);

  // Deterministic stochastic behaviours.
  if (profile_.buffer_hit_prob > 0.0 && rng.Bernoulli(profile_.buffer_hit_prob)) {
    ms /= std::max(1.0, profile_.buffer_speedup);
  }
  if (profile_.noise_sigma > 0.0) {
    double sigma = profile_.noise_sigma;
    // Mean-one lognormal noise.
    ms *= std::exp(rng.Normal(0.0, sigma) - 0.5 * sigma * sigma);
  }
  result.exec_ms = ms;
  return result;
}

}  // namespace maliva
