#include "engine/histogram.h"

#include <algorithm>
#include <cmath>

namespace maliva {

ColumnHistogram::ColumnHistogram(const Column& column, size_t buckets)
    : rows_(column.size()) {
  if (buckets == 0) buckets = 1;
  counts_.assign(buckets, 0.0);
  prefix_.assign(buckets + 1, 0.0);
  if (rows_ == 0) return;

  min_ = max_ = column.NumericAt(0);
  for (size_t row = 1; row < rows_; ++row) {
    double v = column.NumericAt(row);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  width_ = (max_ - min_) / static_cast<double>(buckets);
  if (width_ > 0.0) {
    for (size_t row = 0; row < rows_; ++row) {
      double v = column.NumericAt(row);
      size_t b = static_cast<size_t>((v - min_) / width_);
      counts_[std::min(b, buckets - 1)] += 1.0;
    }
  } else {
    // Degenerate all-equal column: the whole mass sits at min_.
    counts_[0] = static_cast<double>(rows_);
  }
  for (size_t i = 0; i < buckets; ++i) prefix_[i + 1] = prefix_[i] + counts_[i];
}

double ColumnHistogram::CdfAt(double x) const {
  if (rows_ == 0 || x < min_) return 0.0;
  if (width_ <= 0.0 || x >= max_) return static_cast<double>(rows_);
  double pos = (x - min_) / width_;
  size_t i = std::min(static_cast<size_t>(pos), counts_.size() - 1);
  double frac = std::min(pos - static_cast<double>(i), 1.0);
  return prefix_[i] + frac * counts_[i];
}

double ColumnHistogram::EstimateRange(double lo, double hi) const {
  if (rows_ == 0 || hi < lo) return 0.0;
  if (width_ <= 0.0) {
    // All values equal: the range either covers the point mass or misses it.
    return (lo <= min_ && min_ <= hi) ? 1.0 : 0.0;
  }
  double sel = (CdfAt(hi) - CdfAt(lo)) / static_cast<double>(rows_);
  return std::clamp(sel, 0.0, 1.0);
}

SpatialGridHistogram::SpatialGridHistogram(const Column& column, size_t cells)
    : cells_(cells == 0 ? 1 : cells), rows_(column.size()) {
  counts_.assign(cells_ * cells_, 0.0);
  sat_.assign((cells_ + 1) * (cells_ + 1), 0.0);
  if (rows_ == 0) return;

  const GeoPoint& first = column.PointAt(0);
  bounds_ = BoundingBox{first.lon, first.lat, first.lon, first.lat};
  for (size_t row = 1; row < rows_; ++row) {
    bounds_ = bounds_.Extend(column.PointAt(row));
  }
  // Degenerate axes (all points on one line) get unit extent so every point
  // lands in a real cell; boxes touching the line then read cell fractions.
  BoundingBox grid = bounds_;
  if (grid.Width() <= 0.0) grid.max_lon = grid.min_lon + 1.0;
  if (grid.Height() <= 0.0) grid.max_lat = grid.min_lat + 1.0;
  bounds_ = grid;
  cell_w_ = grid.Width() / static_cast<double>(cells_);
  cell_h_ = grid.Height() / static_cast<double>(cells_);

  for (size_t row = 0; row < rows_; ++row) {
    const GeoPoint& p = column.PointAt(row);
    size_t ix = std::min(static_cast<size_t>((p.lon - grid.min_lon) / cell_w_),
                         cells_ - 1);
    size_t iy = std::min(static_cast<size_t>((p.lat - grid.min_lat) / cell_h_),
                         cells_ - 1);
    counts_[ix * cells_ + iy] += 1.0;
  }

  // Summed-area table: sat_[i][j] = mass of cells [0, i) x [0, j).
  size_t stride = cells_ + 1;
  for (size_t i = 0; i < cells_; ++i) {
    for (size_t j = 0; j < cells_; ++j) {
      sat_[(i + 1) * stride + (j + 1)] = counts_[i * cells_ + j] +
                                         sat_[i * stride + (j + 1)] +
                                         sat_[(i + 1) * stride + j] -
                                         sat_[i * stride + j];
    }
  }
}

double SpatialGridHistogram::MassBelow(double u, double v) const {
  size_t i = std::min(static_cast<size_t>(u), cells_ - 1);
  size_t j = std::min(static_cast<size_t>(v), cells_ - 1);
  double fu = std::min(u - static_cast<double>(i), 1.0);
  double fv = std::min(v - static_cast<double>(j), 1.0);
  size_t stride = cells_ + 1;
  double s00 = sat_[i * stride + j];
  double s10 = sat_[(i + 1) * stride + j];
  double s01 = sat_[i * stride + (j + 1)];
  return s00 + fu * (s10 - s00) + fv * (s01 - s00) +
         fu * fv * counts_[i * cells_ + j];
}

double SpatialGridHistogram::EstimateBox(const BoundingBox& box) const {
  if (rows_ == 0 || box.max_lon < box.min_lon || box.max_lat < box.min_lat) {
    return 0.0;
  }
  if (!box.Intersects(bounds_)) return 0.0;
  auto u_of = [this](double lon) {
    return std::clamp((lon - bounds_.min_lon) / cell_w_, 0.0,
                      static_cast<double>(cells_));
  };
  auto v_of = [this](double lat) {
    return std::clamp((lat - bounds_.min_lat) / cell_h_, 0.0,
                      static_cast<double>(cells_));
  };
  double u0 = u_of(box.min_lon), u1 = u_of(box.max_lon);
  double v0 = v_of(box.min_lat), v1 = v_of(box.max_lat);
  double mass =
      MassBelow(u1, v1) - MassBelow(u0, v1) - MassBelow(u1, v0) + MassBelow(u0, v0);
  return std::clamp(mass / static_cast<double>(rows_), 0.0, 1.0);
}

TableHistograms::TableHistograms(const Table& table, const HistogramOptions& options) {
  for (size_t idx = 0; idx < table.NumColumns(); ++idx) {
    const Column& col = table.ColumnAt(idx);
    switch (col.type()) {
      case ColumnType::kInt64:
      case ColumnType::kDouble:
      case ColumnType::kTimestamp:
        numeric_.emplace(col.name(), ColumnHistogram(col, options.buckets));
        break;
      case ColumnType::kPoint:
        spatial_.emplace(col.name(), SpatialGridHistogram(col, options.grid_cells));
        break;
      case ColumnType::kText:
        break;  // keyword selectivity stays on the probe rungs
    }
  }
}

std::optional<double> TableHistograms::Estimate(const Predicate& pred) const {
  switch (pred.type) {
    case PredicateType::kKeyword:
      return std::nullopt;
    case PredicateType::kTimeRange:
    case PredicateType::kNumericRange: {
      auto it = numeric_.find(pred.column);
      if (it == numeric_.end()) return std::nullopt;
      return it->second.EstimateRange(pred.range.lo, pred.range.hi);
    }
    case PredicateType::kSpatialBox: {
      auto it = spatial_.find(pred.column);
      if (it == spatial_.end()) return std::nullopt;
      return it->second.EstimateBox(pred.box);
    }
  }
  return std::nullopt;
}

const ColumnHistogram* TableHistograms::Numeric(const std::string& column) const {
  auto it = numeric_.find(column);
  return it == numeric_.end() ? nullptr : &it->second;
}

const SpatialGridHistogram* TableHistograms::Spatial(const std::string& column) const {
  auto it = spatial_.find(column);
  return it == spatial_.end() ? nullptr : &it->second;
}

}  // namespace maliva
