// Accurate O(1) selectivity histograms: the middle rung of the selectivity
// ladder (shared-store hit -> histogram estimate -> sample probe).
//
// Unlike TableStats (engine/table_stats.h), which deliberately reproduces the
// optimizer's miscalibrated statistics (small ANALYZE sample, spatial floor,
// MCV truncation), these histograms are built from the *full* table and exist
// to answer selectivity lookups without touching the table at serve time:
//
//   * ColumnHistogram — equi-width buckets over a numeric/timestamp column
//     with prefix sums, so a range [lo, hi] is two O(1) CDF evaluations
//     (linear interpolation inside the matching bucket).
//   * SpatialGridHistogram — a cells x cells count grid over the column's
//     bounding box with a summed-area table, so a box is four O(1) corner
//     evaluations with fractional edge cells (exact under per-cell
//     uniformity) — contrast the existing GridHistogram2D, which walks
//     O(cells^2) per lookup and applies a deliberate floor.
//
// Histograms are built once per table inside Engine::RegisterTable (sample
// tables get their own via BuildSampleTables' RegisterTable calls) and are
// versioned by the engine's catalog_version() epoching: consumers bind an
// epoch and must refuse stale reads (see qte/selectivity_tier.h).

#ifndef MALIVA_ENGINE_HISTOGRAM_H_
#define MALIVA_ENGINE_HISTOGRAM_H_

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/predicate.h"
#include "storage/table.h"
#include "storage/value.h"

namespace maliva {

/// Resolution knobs for per-table histogram construction.
struct HistogramOptions {
  size_t buckets = 64;     ///< equi-width buckets per numeric column
  size_t grid_cells = 64;  ///< grid cells per axis for point columns
};

/// Equi-width histogram over one numeric/timestamp column with prefix sums:
/// range selectivity in O(1) via two continuous-CDF evaluations.
class ColumnHistogram {
 public:
  ColumnHistogram(const Column& column, size_t buckets);

  /// Selectivity of [lo, hi] under the per-bucket uniformity assumption.
  double EstimateRange(double lo, double hi) const;

  size_t buckets() const { return counts_.size(); }
  size_t rows() const { return rows_; }

 private:
  /// Continuous CDF: rows with value <= x, interpolated inside the bucket.
  double CdfAt(double x) const;

  double min_ = 0.0;
  double max_ = 0.0;
  double width_ = 0.0;  ///< bucket width; 0 for degenerate (all-equal) columns
  size_t rows_ = 0;
  std::vector<double> counts_;  ///< per-bucket row counts
  std::vector<double> prefix_;  ///< prefix_[i] = sum of counts_[0..i)
};

/// 2-D equi-width count grid over a point column's bounding box with a
/// summed-area table: box selectivity in O(1) via four corner evaluations,
/// fractional edge cells included (exact when mass is uniform within cells).
class SpatialGridHistogram {
 public:
  SpatialGridHistogram(const Column& column, size_t cells);

  /// Selectivity of `box` under the per-cell uniformity assumption.
  double EstimateBox(const BoundingBox& box) const;

  size_t cells() const { return cells_; }
  size_t rows() const { return rows_; }
  const BoundingBox& bounds() const { return bounds_; }

 private:
  /// Continuous summed-area lookup: mass of [0, u) x [0, v) in cell units.
  double MassBelow(double u, double v) const;

  BoundingBox bounds_{};
  size_t cells_ = 0;
  size_t rows_ = 0;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
  std::vector<double> counts_;  ///< cells_ x cells_ row counts, x-major
  std::vector<double> sat_;     ///< (cells_+1)^2 summed area of counts_
};

/// Per-table bundle: one histogram per numeric/timestamp/point column. Text
/// columns have no histogram (keyword selectivity stays on the probe rungs).
class TableHistograms {
 public:
  TableHistograms(const Table& table, const HistogramOptions& options);

  /// O(1) estimate for `pred`, or nullopt when no histogram covers it
  /// (keyword predicates, unknown columns).
  std::optional<double> Estimate(const Predicate& pred) const;

  const ColumnHistogram* Numeric(const std::string& column) const;
  const SpatialGridHistogram* Spatial(const std::string& column) const;

 private:
  std::unordered_map<std::string, ColumnHistogram> numeric_;
  std::unordered_map<std::string, SpatialGridHistogram> spatial_;
};

}  // namespace maliva

#endif  // MALIVA_ENGINE_HISTOGRAM_H_
