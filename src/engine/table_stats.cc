#include "engine/table_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "util/rng.h"
#include "util/string_util.h"

namespace maliva {

EquiDepthHistogram::EquiDepthHistogram(const Column& column, size_t num_buckets) {
  size_t n = column.size();
  if (n == 0) return;
  std::vector<double> vals(n);
  for (size_t i = 0; i < n; ++i) vals[i] = column.NumericAt(static_cast<RowId>(i));
  std::sort(vals.begin(), vals.end());
  num_buckets = std::max<size_t>(1, std::min(num_buckets, n));
  bounds_.resize(num_buckets + 1);
  for (size_t b = 0; b <= num_buckets; ++b) {
    size_t idx = std::min(n - 1, b * n / num_buckets);
    bounds_[b] = vals[idx];
  }
  bounds_.back() = vals.back();
}

double EquiDepthHistogram::EstimateSelectivity(double lo, double hi) const {
  if (bounds_.size() < 2 || hi < lo) return 0.0;
  size_t nb = bounds_.size() - 1;
  double per_bucket = 1.0 / static_cast<double>(nb);
  double sel = 0.0;
  for (size_t b = 0; b < nb; ++b) {
    double blo = bounds_[b];
    double bhi = bounds_[b + 1];
    if (bhi < lo || blo > hi) continue;
    if (bhi <= blo) {
      // Degenerate bucket (heavy duplicate value): fully in or out.
      sel += (blo >= lo && blo <= hi) ? per_bucket : 0.0;
      continue;
    }
    double cover_lo = std::max(lo, blo);
    double cover_hi = std::min(hi, bhi);
    sel += per_bucket * std::max(0.0, (cover_hi - cover_lo) / (bhi - blo));
  }
  return std::clamp(sel, 0.0, 1.0);
}

GridHistogram2D::GridHistogram2D(const Column& column, size_t cells_per_axis,
                                 double floor_selectivity)
    : cells_(std::max<size_t>(1, cells_per_axis)),
      floor_selectivity_(floor_selectivity) {
  const std::vector<GeoPoint>& pts = column.AsPoint();
  total_ = pts.size();
  counts_.assign(cells_ * cells_, 0);
  if (pts.empty()) return;
  bounds_ = BoundingBox{pts[0].lon, pts[0].lat, pts[0].lon, pts[0].lat};
  for (const GeoPoint& p : pts) bounds_ = bounds_.Extend(p);
  double w = std::max(1e-12, bounds_.Width());
  double h = std::max(1e-12, bounds_.Height());
  for (const GeoPoint& p : pts) {
    size_t cx = std::min(cells_ - 1,
                         static_cast<size_t>((p.lon - bounds_.min_lon) / w * cells_));
    size_t cy = std::min(cells_ - 1,
                         static_cast<size_t>((p.lat - bounds_.min_lat) / h * cells_));
    ++counts_[cy * cells_ + cx];
  }
}

double GridHistogram2D::EstimateSelectivity(const BoundingBox& box) const {
  if (total_ == 0) return 0.0;
  double w = std::max(1e-12, bounds_.Width());
  double h = std::max(1e-12, bounds_.Height());
  double cell_w = w / static_cast<double>(cells_);
  double cell_h = h / static_cast<double>(cells_);
  double matched = 0.0;
  for (size_t cy = 0; cy < cells_; ++cy) {
    double cell_min_lat = bounds_.min_lat + cell_h * static_cast<double>(cy);
    double cell_max_lat = cell_min_lat + cell_h;
    double cover_lat = std::max(
        0.0, std::min(box.max_lat, cell_max_lat) - std::max(box.min_lat, cell_min_lat));
    if (cover_lat <= 0.0) continue;
    for (size_t cx = 0; cx < cells_; ++cx) {
      int64_t c = counts_[cy * cells_ + cx];
      if (c == 0) continue;
      double cell_min_lon = bounds_.min_lon + cell_w * static_cast<double>(cx);
      double cell_max_lon = cell_min_lon + cell_w;
      double cover_lon =
          std::max(0.0, std::min(box.max_lon, cell_max_lon) -
                            std::max(box.min_lon, cell_min_lon));
      if (cover_lon <= 0.0) continue;
      // Uniformity assumption inside the cell.
      matched += static_cast<double>(c) * (cover_lon / cell_w) * (cover_lat / cell_h);
    }
  }
  double sel = std::clamp(matched / static_cast<double>(total_), 0.0, 1.0);
  return std::max(sel, floor_selectivity_);
}

TextStats::TextStats(const Column& column, size_t mcv_size, double default_selectivity)
    : default_selectivity_(default_selectivity) {
  const std::vector<std::string>& texts = column.AsText();
  std::unordered_map<std::string, int64_t> freq;
  for (const std::string& text : texts) {
    std::vector<std::string> tokens = Tokenize(text);
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (const std::string& tok : tokens) ++freq[tok];
  }
  std::vector<std::pair<std::string, int64_t>> items(freq.begin(), freq.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  size_t keep = std::min(mcv_size, items.size());
  double n = std::max<double>(1.0, static_cast<double>(texts.size()));
  for (size_t i = 0; i < keep; ++i) {
    mcv_[items[i].first] = static_cast<double>(items[i].second) / n;
  }
}

double TextStats::EstimateSelectivity(const std::string& keyword) const {
  auto it = mcv_.find(ToLower(keyword));
  if (it != mcv_.end()) return it->second;
  return default_selectivity_;
}

TableStats::TableStats(const Table& table, const Options& options)
    : num_rows_(table.NumRows()) {
  // ANALYZE-style bounded sampling: statistics see only ~sample_rows rows.
  const Table* stats_source = &table;
  std::unique_ptr<Table> sampled;
  if (options.sample_rows > 0 && table.NumRows() > options.sample_rows) {
    Rng rng(options.sample_seed);
    double fraction =
        static_cast<double>(options.sample_rows) / static_cast<double>(table.NumRows());
    sampled = table.Sample(fraction, &rng, table.name() + "#stats");
    stats_source = sampled.get();
  }
  for (size_t c = 0; c < stats_source->NumColumns(); ++c) {
    const Column& col = stats_source->ColumnAt(c);
    switch (col.type()) {
      case ColumnType::kInt64:
      case ColumnType::kDouble:
      case ColumnType::kTimestamp:
        histograms_[col.name()] =
            std::make_unique<EquiDepthHistogram>(col, options.histogram_buckets);
        break;
      case ColumnType::kPoint:
        grids_[col.name()] = std::make_unique<GridHistogram2D>(
            col, options.grid_cells, options.spatial_floor_selectivity);
        break;
      case ColumnType::kText:
        text_stats_[col.name()] = std::make_unique<TextStats>(
            col, options.text_mcv_size, options.text_default_selectivity);
        break;
    }
  }
}

double TableStats::EstimateSelectivity(const Predicate& pred) const {
  switch (pred.type) {
    case PredicateType::kKeyword: {
      auto it = text_stats_.find(pred.column);
      assert(it != text_stats_.end());
      return it->second->EstimateSelectivity(pred.keyword);
    }
    case PredicateType::kTimeRange:
    case PredicateType::kNumericRange: {
      auto it = histograms_.find(pred.column);
      assert(it != histograms_.end());
      return it->second->EstimateSelectivity(pred.range.lo, pred.range.hi);
    }
    case PredicateType::kSpatialBox: {
      auto it = grids_.find(pred.column);
      assert(it != grids_.end());
      return it->second->EstimateSelectivity(pred.box);
    }
  }
  return 1.0;
}

double TableStats::EstimateConjunction(const std::vector<Predicate>& preds) const {
  double sel = 1.0;
  for (const Predicate& p : preds) sel *= EstimateSelectivity(p);
  return sel;
}

}  // namespace maliva
