// Heatmap binning: BIN_ID(point) over a query's visualization viewport.

#ifndef MALIVA_ENGINE_BINNING_H_
#define MALIVA_ENGINE_BINNING_H_

#include <algorithm>
#include <cstdint>

#include "storage/value.h"

namespace maliva {

/// Maps a point to a heatmap bin id over `viewport` with `bins` cells per
/// axis. Points outside the viewport clamp to the border cells (the frontend
/// clips them; the engine just needs a stable id).
inline int64_t BinId(const GeoPoint& p, const BoundingBox& viewport, int bins) {
  double w = std::max(1e-12, viewport.Width());
  double h = std::max(1e-12, viewport.Height());
  int64_t bx = static_cast<int64_t>((p.lon - viewport.min_lon) / w * bins);
  int64_t by = static_cast<int64_t>((p.lat - viewport.min_lat) / h * bins);
  bx = std::clamp<int64_t>(bx, 0, bins - 1);
  by = std::clamp<int64_t>(by, 0, bins - 1);
  return by * bins + bx;
}

}  // namespace maliva

#endif  // MALIVA_ENGINE_BINNING_H_
